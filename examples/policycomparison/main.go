// Policy comparison: the paper's headline experiment in miniature. Runs
// GS, LS, LP on the multicluster and FCFS on the single-cluster reference
// at a series of offered loads, printing the mean response times side by
// side — the data behind one panel of Fig. 3.
package main

import (
	"fmt"
	"log"

	"coalloc/internal/core"
	"coalloc/internal/workload"
)

func main() {
	der := workload.DeriveDefault()
	const limit = 16

	multiSpec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  limit,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	scSpec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  der.Sizes128.Max(), // total requests: one component
		Clusters:        1,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}

	type system struct {
		policy   string
		clusters []int
		spec     workload.Spec
	}
	systems := []system{
		{"SC", []int{128}, scSpec},
		{"GS", []int{32, 32, 32, 32}, multiSpec},
		{"LS", []int{32, 32, 32, 32}, multiSpec},
		{"LP", []int{32, 32, 32, 32}, multiSpec},
	}

	fmt.Printf("component-size limit %d, balanced local queues\n\n", limit)
	fmt.Printf("%-6s", "util")
	for _, s := range systems {
		fmt.Printf("%10s", s.policy)
	}
	fmt.Println("\n" + "----------------------------------------------")
	for _, util := range []float64{0.30, 0.40, 0.50, 0.55, 0.60} {
		fmt.Printf("%-6.2f", util)
		for _, s := range systems {
			cfg := core.Config{
				ClusterSizes: s.clusters,
				Spec:         s.spec,
				Policy:       s.policy,
				WarmupJobs:   1500,
				MeasureJobs:  15000,
				Seed:         11,
			}
			res, err := core.RunAtUtilization(cfg, util)
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if res.Saturated {
				mark = "*"
			}
			fmt.Printf("%9.0f%s", res.MeanResponse, mark)
			if mark == "" {
				fmt.Print(" ")
			}
		}
		fmt.Println()
	}
	fmt.Println("\nmean response time in seconds; * marks a saturated (unstable) point")
}
