// Saturation: measures the maximal gross and net utilization of each
// policy under a constant backlog (Section 4 / Table 3 of the paper). The
// paper applies the method to the single-global-queue policies GS and SC;
// the multi-queue policies are included here for completeness.
package main

import (
	"fmt"
	"log"

	"coalloc/internal/core"
	"coalloc/internal/workload"
)

func main() {
	der := workload.DeriveDefault()

	fmt.Println("maximal utilization under constant backlog")
	fmt.Println()
	fmt.Println("policy  limit   max gross   max net")
	fmt.Println("-------------------------------------")
	for _, limit := range []int{16, 24, 32} {
		spec := workload.Spec{
			Sizes:           der.Sizes128,
			Service:         der.Service,
			ComponentLimit:  limit,
			Clusters:        4,
			ExtensionFactor: workload.DefaultExtensionFactor,
		}
		for _, policy := range []string{"GS", "LS", "LP"} {
			res, err := core.RunBacklog(core.BacklogConfig{
				ClusterSizes: []int{32, 32, 32, 32},
				Spec:         spec,
				Policy:       policy,
				WarmupTime:   50_000,
				MeasureTime:  400_000,
				Seed:         5,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6s  %5d   %9.3f   %7.3f\n",
				policy, limit, res.MaxGrossUtilization, res.MaxNetUtilization)
		}
	}

	// The single-cluster reference schedules total requests; gross and
	// net utilization coincide (no wide-area communication).
	scSpec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  der.Sizes128.Max(),
		Clusters:        1,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	res, err := core.RunBacklog(core.BacklogConfig{
		ClusterSizes: []int{128},
		Spec:         scSpec,
		Policy:       "SC",
		WarmupTime:   50_000,
		MeasureTime:  400_000,
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s  %5s   %9.3f   %7.3f\n", "SC", "-", res.MaxGrossUtilization, res.MaxGrossUtilization)
}
