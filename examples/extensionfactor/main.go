// Extension factor sweep (beyond the paper): the paper concludes that
// "co-allocation remains a viable option while the duration of the global
// communication is covered by an extension factor of 1.25". This example
// sweeps the extension factor and measures, under a constant backlog, the
// maximal net utilization the multicluster LS policy can sustain — the
// real computational throughput after paying for wide-area communication —
// against the single-cluster reference. Where LS's maximal net utilization
// falls clearly below SC's, co-allocation stops paying off.
package main

import (
	"fmt"
	"log"

	"coalloc/internal/core"
	"coalloc/internal/workload"
)

func main() {
	der := workload.DeriveDefault()
	const limit = 16

	// SC reference: total requests on one 128-processor cluster; no
	// wide-area communication, so gross and net utilization coincide.
	scSpec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  der.Sizes128.Max(),
		Clusters:        1,
		ExtensionFactor: 1,
	}
	scRes, err := core.RunBacklog(core.BacklogConfig{
		ClusterSizes: []int{128},
		Spec:         scSpec,
		Policy:       "SC",
		WarmupTime:   50_000,
		MeasureTime:  400_000,
		Seed:         9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SC reference: maximal utilization %.3f\n\n", scRes.MaxGrossUtilization)

	fmt.Println("ext     LS max gross   LS max net   net vs SC")
	fmt.Println("----------------------------------------------")
	for _, ext := range []float64{1.00, 1.10, 1.20, 1.25, 1.30, 1.40, 1.50} {
		spec := workload.Spec{
			Sizes:           der.Sizes128,
			Service:         der.Service,
			ComponentLimit:  limit,
			Clusters:        4,
			ExtensionFactor: ext,
		}
		res, err := core.RunBacklog(core.BacklogConfig{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         spec,
			Policy:       "LS",
			WarmupTime:   50_000,
			MeasureTime:  400_000,
			Seed:         9,
		})
		if err != nil {
			log.Fatal(err)
		}
		delta := res.MaxNetUtilization - scRes.MaxGrossUtilization
		verdict := "co-allocation viable"
		if delta < -0.10 {
			verdict = "clearly behind SC"
		} else if delta < -0.03 {
			verdict = "paying for wide-area"
		}
		fmt.Printf("%.2f    %12.3f   %10.3f   %+.3f  %s\n",
			ext, res.MaxGrossUtilization, res.MaxNetUtilization, delta, verdict)
	}
	fmt.Println("\nLS's maximal gross utilization barely moves with the extension factor —")
	fmt.Println("the processors stay busy — but the net (computational) share shrinks.")
	fmt.Println("Around the paper's 1.25 the net loss versus SC is still moderate;")
	fmt.Println("well beyond it, co-allocation stops paying off.")
}
