// Trace analysis: builds the synthetic DAS log, writes it in Standard
// Workload Format, reads it back, and prints the Section 2.4 statistics —
// Table 1, the Fig. 1 size density and the Fig. 2 service-time histogram.
package main

import (
	"bytes"
	"fmt"
	"log"

	"coalloc/internal/dastrace"
)

func main() {
	recs := dastrace.Default()

	// Round-trip through the SWF trace format, as a consumer of a real
	// archive trace would.
	var buf bytes.Buffer
	if err := dastrace.WriteSWF(&buf, recs, "Synthetic DAS1-like log"); err != nil {
		log.Fatal(err)
	}
	parsed, err := dastrace.ReadSWF(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SWF round trip: wrote %d jobs, read back %d\n\n", len(recs), len(parsed))

	ls := dastrace.Analyze(parsed)
	fmt.Printf("jobs %d, %d distinct sizes in [%d, %d], mean size %.2f (CV %.2f)\n",
		ls.Jobs, ls.DistinctSizes, ls.MinSize, ls.MaxSize, ls.MeanSize, ls.SizeCV)
	fmt.Printf("mean service %.1f s (CV %.2f); %.1f%% of jobs below the 900 s kill limit\n\n",
		ls.MeanService, ls.ServiceCV, 100*ls.FracServiceUnderKill)

	fmt.Println(dastrace.FormatTable1(ls))

	fmt.Println("service-time density, cut at 900 s (Fig. 2):")
	h := dastrace.ServiceHistogram(parsed, 900, 18)
	fmt.Print(h.Render(48))

	fmt.Println("\nlargest size spikes (Fig. 1):")
	sizes, counts := dastrace.SizeDensity(parsed)
	for i, s := range sizes {
		if counts[i] > int64(len(parsed)/50) {
			fmt.Printf("  size %3d: %5d jobs\n", s, counts[i])
		}
	}
}
