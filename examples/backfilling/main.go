// Backfilling (beyond the paper): the paper explains LS's advantage over
// GS as "a form of backfilling with a window equal to the number of
// clusters". This example quantifies that observation by comparing plain
// FCFS (GS, SC), the multi-queue window (LS), and genuine EASY backfilling
// (GS-EASY, SC-EASY) at increasing loads.
package main

import (
	"fmt"
	"log"

	"coalloc/internal/core"
	"coalloc/internal/workload"
)

func main() {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	scSpec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  der.Sizes128.Max(),
		Clusters:        1,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}

	type system struct {
		policy   string
		clusters []int
		spec     workload.Spec
	}
	systems := []system{
		{"GS", []int{32, 32, 32, 32}, spec},
		{"LS", []int{32, 32, 32, 32}, spec},
		{"GS-EASY", []int{32, 32, 32, 32}, spec},
		{"SC", []int{128}, scSpec},
		{"SC-EASY", []int{128}, scSpec},
	}

	fmt.Println("mean response time (s); * marks saturation")
	fmt.Printf("%-6s", "util")
	for _, s := range systems {
		fmt.Printf("%10s", s.policy)
	}
	fmt.Println()
	fmt.Println("--------------------------------------------------------")
	for _, util := range []float64{0.50, 0.60, 0.70, 0.80, 0.85} {
		fmt.Printf("%-6.2f", util)
		for _, s := range systems {
			cfg := core.Config{
				ClusterSizes: s.clusters,
				Spec:         s.spec,
				Policy:       s.policy,
				WarmupJobs:   1500,
				MeasureJobs:  15000,
				Seed:         23,
			}
			res, err := core.RunAtUtilization(cfg, util)
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if res.Saturated {
				mark = "*"
			}
			fmt.Printf("%9.0f%s", res.MeanResponse, mark)
		}
		fmt.Println()
	}
	fmt.Println("\nLS's C-queue window recovers part of the gap to EASY; full backfilling")
	fmt.Println("(with exact runtimes — an upper bound) runs 20+ points of utilization")
	fmt.Println("beyond plain FCFS before saturating.")
}
