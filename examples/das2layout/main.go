// Heterogeneous clusters (beyond the paper's experiments, within its
// model): the paper simulates four equal clusters of 32 processors, but
// its model explicitly allows "clusters of possibly different sizes" — and
// the real DAS2 consisted of one 72-node and four 32-node clusters. This
// example runs the paper's policies on the actual DAS2 layout and on an
// equal-capacity homogeneous split, showing how the large cluster absorbs
// big components and shifts the LS/GS comparison.
package main

import (
	"fmt"
	"log"

	"coalloc/internal/core"
	"coalloc/internal/workload"
)

func main() {
	der := workload.DeriveDefault()

	layouts := []struct {
		name     string
		clusters []int
		weights  []float64 // local-queue routing; nil = balanced
	}{
		{"DAS2 (72+4x32), balanced routing", []int{72, 32, 32, 32, 32}, nil},
		{"DAS2 (72+4x32), size-proportional routing", []int{72, 32, 32, 32, 32},
			[]float64{72, 32, 32, 32, 32}},
		{"homogeneous 5x40", []int{40, 40, 40, 40, 40}, nil},
	}

	for _, layout := range layouts {
		capacity := 0
		for _, c := range layout.clusters {
			capacity += c
		}
		spec := workload.Spec{
			Sizes:           der.Sizes128,
			Service:         der.Service,
			ComponentLimit:  16,
			Clusters:        len(layout.clusters),
			ExtensionFactor: workload.DefaultExtensionFactor,
		}
		fmt.Printf("%s — %d processors in %d clusters\n", layout.name, capacity, len(layout.clusters))
		fmt.Println("util    GS          LS          LP")
		for _, util := range []float64{0.50, 0.60, 0.70} {
			fmt.Printf("%.2f", util)
			for _, policy := range []string{"GS", "LS", "LP"} {
				cfg := core.Config{
					ClusterSizes: layout.clusters,
					Spec:         spec,
					Policy:       policy,
					QueueWeights: layout.weights,
					WarmupJobs:   1500,
					MeasureJobs:  15000,
					Seed:         31,
				}
				res, err := core.RunAtUtilization(cfg, util)
				if err != nil {
					log.Fatal(err)
				}
				mark := " "
				if res.Saturated {
					mark = "*"
				}
				fmt.Printf("  %8.0f%s ", res.MeanResponse, mark)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("(* marks saturation. With a component-size limit of 16 no component")
	fmt.Println("actually needs the 72-node cluster, so heterogeneity buys nothing by")
	fmt.Println("itself; under balanced routing LS even ties too many single-component")
	fmt.Println("jobs to the small clusters. Size-proportional routing recovers much of")
	fmt.Println("the gap, and the equal-capacity homogeneous split remains best —")
	fmt.Println("fragmentation, not cluster size, dominates at these limits.)")
}
