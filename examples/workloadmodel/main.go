// Workload model (beyond the paper): generates a synthetic log from the
// parametric Feitelson-style model (internal/wmodel) instead of the
// DAS-derived empirical distributions, replays it through the paper's
// policies, and compares the statistics of the two workloads. This is how
// the study's conclusions can be probed for workload sensitivity.
package main

import (
	"fmt"
	"log"

	"coalloc/internal/core"
	"coalloc/internal/dastrace"
	"coalloc/internal/wmodel"
	"coalloc/internal/workload"
)

func main() {
	model, err := wmodel.New(wmodel.Default())
	if err != nil {
		log.Fatal(err)
	}
	modelLog := model.Generate(20000, 77)
	dasLog := dastrace.Default()

	fmt.Println("workload statistics")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s\n", "", "DAS trace", "model")
	mstats := dastrace.Analyze(modelLog)
	dstats := dastrace.Analyze(dasLog)
	fmt.Printf("%-22s %12d %12d\n", "jobs", dstats.Jobs, mstats.Jobs)
	fmt.Printf("%-22s %12.2f %12.2f\n", "mean size", dstats.MeanSize, mstats.MeanSize)
	fmt.Printf("%-22s %12.2f %12.2f\n", "size CV", dstats.SizeCV, mstats.SizeCV)
	fmt.Printf("%-22s %12.3f %12.3f\n", "power-of-two mass", dstats.PowerOfTwoMass, mstats.PowerOfTwoMass)
	fmt.Printf("%-22s %12.1f %12.1f\n", "mean service (s)", dstats.MeanService, mstats.MeanService)
	fmt.Printf("%-22s %12.2f %12.2f\n", "service CV", dstats.ServiceCV, mstats.ServiceCV)
	fmt.Println()

	// Replay both logs through LS and GS at the same compressed load.
	// (The model has a strong daily cycle, so even moderate average load
	// produces daytime overload episodes; keep the compression gentle.)
	const loadFactor = 1.5
	fmt.Printf("trace replay, 4x32 multicluster, limit 16, load factor %g\n", loadFactor)
	fmt.Println()
	fmt.Printf("%-10s %14s %14s\n", "policy", "DAS trace", "model")
	for _, policy := range []string{"GS", "LS"} {
		fmt.Printf("%-10s", policy)
		for _, recs := range [][]dastrace.Record{dasLog[:20000], modelLog} {
			res, err := core.Replay(core.ReplayConfig{
				ClusterSizes:    []int{32, 32, 32, 32},
				Records:         recs,
				Policy:          policy,
				ComponentLimit:  16,
				ExtensionFactor: workload.DefaultExtensionFactor,
				LoadFactor:      loadFactor,
				Seed:            5,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.0f s (%0.2f)", res.MeanResponse, res.GrossUtilization)
			_ = res
		}
		fmt.Println()
	}
	fmt.Println("\n(mean response with the measured gross utilization in parentheses;")
	fmt.Println("the policy ordering carries over from the trace to the model.)")
}
