// Quickstart: simulate the paper's multicluster (4 clusters of 32
// processors) under the LS co-allocation policy at 50% offered gross
// utilization and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"coalloc/internal/core"
	"coalloc/internal/workload"
)

func main() {
	// Derive the DAS-s-128 and DAS-t-900 distributions from the
	// canonical synthetic DAS trace.
	der := workload.DeriveDefault()

	// The workload: total sizes split into components of at most 16
	// processors over 4 clusters; multi-component jobs pay the paper's
	// 1.25 wide-area communication extension.
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}

	cfg := core.Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "LS",
		WarmupJobs:   2000,
		MeasureJobs:  20000,
		Seed:         1,
	}
	res, err := core.RunAtUtilization(cfg, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy                 %s\n", res.Policy)
	fmt.Printf("offered gross util     %.3f\n", res.OfferedGross)
	fmt.Printf("measured gross util    %.3f\n", res.GrossUtilization)
	fmt.Printf("measured net util      %.3f\n", res.NetUtilization)
	fmt.Printf("mean response time     %.1f s\n", res.MeanResponse)
	fmt.Printf("jobs measured          %d\n", res.Jobs)
}
