package coalloc

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Each Table/Fig benchmark executes the corresponding experiment runner at
// reduced (quick) fidelity so `go test -bench=.` regenerates the entire
// evaluation in minutes; use cmd/mcexp without -quick for
// publication-fidelity output.

import (
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/core"
	"coalloc/internal/dastrace"
	"coalloc/internal/experiments"
	"coalloc/internal/faults"
	"coalloc/internal/rng"
	"coalloc/internal/sim"
	"coalloc/internal/workload"
)

// benchEnv returns a reduced-fidelity experiment environment. The derived
// workload is rebuilt per call; its cost is part of every experiment.
func benchEnv() *experiments.Env {
	p := experiments.QuickParams()
	p.WarmupJobs = 200
	p.MeasureJobs = 2000
	p.Utilizations = []float64{0.2, 0.4, 0.55, 0.7}
	p.BacklogWarmup = 10_000
	p.BacklogMeasure = 60_000
	return experiments.NewEnv(p)
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, env)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }

// BenchmarkGrossNetRatio regenerates the Section 4 analytic ratios.
func BenchmarkGrossNetRatio(b *testing.B) { benchExperiment(b, "ratio") }

// BenchmarkFigureWallClock measures the end-to-end wall clock of a
// saturated-heavy figure sweep — several policy curves whose grids reach
// deep into saturation, replications per point — under the two sweep
// regimes:
//
//   - legacy: per-curve scheduling barriers and full-horizon saturated
//     points (the pre-overhaul behavior);
//   - overhauled: the figure-level straggler-free schedule with the
//     deterministic saturation cutoff (the defaults).
//
// The rendered curves are identical between the two (pinned by the
// schedule/cutoff guardrail tests); only the wall clock differs. This is
// the benchmark behind the sweep-overhaul record in BENCH_4.json.
func BenchmarkFigureWallClock(b *testing.B) {
	run := func(cutoff bool, mode experiments.ScheduleMode) func(*testing.B) {
		return func(b *testing.B) {
			p := experiments.QuickParams()
			p.WarmupJobs = 100
			p.MeasureJobs = 20000
			p.Replications = 2
			// The grid is the deep tail of the paper's sweep. The curves
			// below are GS across the component-size limits 16/24/32
			// (the paper's usual figure parameterization); GS tops out
			// near 0.62 gross for all of them, so every point here is far
			// beyond saturation. These are the points that dominate a
			// full figure's wall clock: the runs the cutoff truncates and
			// the stragglers the figure-level schedule stops serializing
			// behind.
			p.Utilizations = []float64{0.9, 0.95}
			p.SaturationCutoff = cutoff
			p.Schedule = mode
			env := experiments.NewEnv(p)
			specs := []experiments.CurveSpec{
				{Label: "GS-16", Policy: "GS", ClusterSizes: experiments.MulticlusterSizes, Spec: env.MultiSpec(16, env.Derived.Sizes128)},
				{Label: "GS-24", Policy: "GS", ClusterSizes: experiments.MulticlusterSizes, Spec: env.MultiSpec(24, env.Derived.Sizes128)},
				{Label: "GS-32", Policy: "GS", ClusterSizes: experiments.MulticlusterSizes, Spec: env.MultiSpec(32, env.Derived.Sizes128)},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sets, err := env.CurveSet(specs)
				if err != nil {
					b.Fatal(err)
				}
				if len(sets) != len(specs) {
					b.Fatalf("%d curves for %d specs", len(sets), len(specs))
				}
			}
		}
	}
	b.Run("legacy", run(false, experiments.SchedulePerCurve))
	b.Run("overhauled", run(true, experiments.ScheduleFigure))
}

// --- ablations -------------------------------------------------------------

// BenchmarkPlacementRules compares Worst Fit (the paper's rule) with First
// Fit and Best Fit placement under the GS policy at a fixed load; the
// reported metric of interest is the mean response time printed per rule.
func BenchmarkPlacementRules(b *testing.B) {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	for _, fit := range []cluster.Fit{cluster.WorstFit, cluster.FirstFit, cluster.BestFit} {
		fit := fit
		b.Run(fit.String(), func(b *testing.B) {
			var last core.Result
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					ClusterSizes: []int{32, 32, 32, 32},
					Spec:         spec,
					Policy:       "GS",
					Fit:          fit,
					WarmupJobs:   300,
					MeasureJobs:  3000,
					Seed:         1,
				}
				res, err := core.RunAtUtilization(cfg, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MeanResponse, "resp-s")
		})
	}
}

// BenchmarkExtensionFactor sweeps the wide-area slowdown around the
// paper's 1.25 and reports LS's maximal net utilization for each value.
func BenchmarkExtensionFactor(b *testing.B) {
	der := workload.DeriveDefault()
	for _, ext := range []float64{1.0, 1.25, 1.5} {
		ext := ext
		b.Run(formatExt(ext), func(b *testing.B) {
			var last core.BacklogResult
			for i := 0; i < b.N; i++ {
				spec := workload.Spec{
					Sizes:           der.Sizes128,
					Service:         der.Service,
					ComponentLimit:  16,
					Clusters:        4,
					ExtensionFactor: ext,
				}
				res, err := core.RunBacklog(core.BacklogConfig{
					ClusterSizes: []int{32, 32, 32, 32},
					Spec:         spec,
					Policy:       "LS",
					WarmupTime:   10_000,
					MeasureTime:  60_000,
					Seed:         1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.MaxNetUtilization, "max-net-util")
		})
	}
}

func formatExt(ext float64) string {
	switch ext {
	case 1.0:
		return "ext1.00"
	case 1.25:
		return "ext1.25"
	default:
		return "ext1.50"
	}
}

// BenchmarkPolicyThroughput measures raw simulator speed per policy: one
// open-system run of 5000 jobs per iteration.
func BenchmarkPolicyThroughput(b *testing.B) {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	for _, policy := range []string{"GS", "LS", "LP"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					ClusterSizes: []int{32, 32, 32, 32},
					Spec:         spec,
					Policy:       policy,
					WarmupJobs:   100,
					MeasureJobs:  5000,
					Seed:         uint64(i + 1),
				}
				if _, err := core.RunAtUtilization(cfg, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineEventRate measures the DES kernel's raw event throughput.
func BenchmarkEngineEventRate(b *testing.B) {
	e := sim.New()
	r := rng.NewStream(1)
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			e.After(r.Exp(1), next)
		}
	}
	e.After(1, next)
	b.ResetTimer()
	e.Run()
}

// BenchmarkTraceGeneration measures synthetic-log construction, the setup
// cost shared by every experiment.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		recs := dastrace.Default()
		if len(recs) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkWorkloadSampling measures job construction (size draw, split,
// service draw) — the per-arrival cost of a simulation.
func BenchmarkWorkloadSampling(b *testing.B) {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	sizeStream := rng.NewStream(1)
	svcStream := rng.NewStream(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if j := spec.Sample(sizeStream, svcStream); j.TotalSize == 0 {
			b.Fatal("bad job")
		}
	}
}

// BenchmarkBackfillAblation regenerates the EASY/conservative backfilling
// comparison at quick fidelity.
func BenchmarkBackfillAblation(b *testing.B) { benchExperiment(b, "backfill") }

// BenchmarkDisciplineAblation regenerates the FCFS/SPF/EASY comparison.
func BenchmarkDisciplineAblation(b *testing.B) { benchExperiment(b, "discipline") }

// BenchmarkRequestTypes regenerates the request-structure ablation.
func BenchmarkRequestTypes(b *testing.B) { benchExperiment(b, "reqtypes") }

// BenchmarkBackfillPolicies measures the per-run cost of the scheduling
// policies with nontrivial per-event work (reservation arithmetic).
func BenchmarkBackfillPolicies(b *testing.B) {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	for _, policy := range []string{"GS-EASY", "GS-CONS", "GS-SPF"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					ClusterSizes: []int{32, 32, 32, 32},
					Spec:         spec,
					Policy:       policy,
					WarmupJobs:   100,
					MeasureJobs:  5000,
					Seed:         uint64(i + 1),
				}
				if _, err := core.RunAtUtilization(cfg, 0.7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaultPathDisabled measures the open-system hot loop with a
// zero-failure-rate fault spec attached. The spec is disabled, so the run
// must cost the same as a plain run — the benchmark pins the "faults off
// means zero overhead" contract (no fault events, no registry tracking,
// no extra allocations) that the guardrail test pins for outputs. The
// GS-CONS variant additionally covers the backfilling fault hooks
// (checkpoint-aware durations, the capacity-change repair plumbing): the
// retained-reservation fast path must stay exactly as free as it is
// without a fault spec.
func BenchmarkFaultPathDisabled(b *testing.B) {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	for _, policy := range []string{"LS", "GS-CONS"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					ClusterSizes: []int{32, 32, 32, 32},
					Spec:         spec,
					Policy:       policy,
					WarmupJobs:   100,
					MeasureJobs:  5000,
					Seed:         uint64(i + 1),
					Faults:       &faults.Spec{MTBF: 0, MTTR: 900},
				}
				if _, err := core.RunAtUtilization(cfg, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecisionPathDisabled measures the open-system hot loop with
// decision tracing off — the default. Every dispatch, head-miss and
// reservation site now carries a tracer hook, but a nil tracer must cost
// one pointer compare: the benchmark pins the "tracing off means zero
// overhead" contract (no probes, no regret accounting, no extra
// allocations) that the core guardrail test pins for outputs. The GS-CONS
// variant covers the backfilling hooks (BeginAlts/AddAlt/Reserve on the
// availability profile); LS covers the FCFS-family dispatch and miss
// hooks.
func BenchmarkDecisionPathDisabled(b *testing.B) {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	for _, policy := range []string{"LS", "GS-CONS"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{
					ClusterSizes: []int{32, 32, 32, 32},
					Spec:         spec,
					Policy:       policy,
					WarmupJobs:   100,
					MeasureJobs:  5000,
					Seed:         uint64(i + 1),
					Decisions:    nil, // tracing off: the hooks must vanish
				}
				if _, err := core.RunAtUtilization(cfg, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplay measures trace-replay throughput (jobs per op reported
// via b.N scaling: one 10k-job replay per iteration).
func BenchmarkReplay(b *testing.B) {
	recs := dastrace.Generate(dastrace.GenConfig{NumJobs: 10000, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Replay(core.ReplayConfig{
			ClusterSizes:    []int{32, 32, 32, 32},
			Records:         recs,
			Policy:          "LS",
			ComponentLimit:  16,
			ExtensionFactor: workload.DefaultExtensionFactor,
			LoadFactor:      2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSizeClasses regenerates the per-size-class response breakdown.
func BenchmarkSizeClasses(b *testing.B) { benchExperiment(b, "sizeclasses") }

// BenchmarkReenableAblation regenerates the LS re-enable-order comparison.
func BenchmarkReenableAblation(b *testing.B) { benchExperiment(b, "reenable") }

// BenchmarkFitRulesAblation regenerates the WF/FF/BF placement comparison.
func BenchmarkFitRulesAblation(b *testing.B) { benchExperiment(b, "fits") }

// BenchmarkExtSweepAblation regenerates the extension-factor sweep.
func BenchmarkExtSweepAblation(b *testing.B) { benchExperiment(b, "extsweep") }
