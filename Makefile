# Tier-1 verification and benchmarking entry points.

GO ?= go

# The hot-path benchmarks recorded in BENCH_1.json. Table/Fig benchmarks
# ride along so end-to-end regeneration time is tracked too.
BENCHES = BenchmarkEngineEventRate|BenchmarkPolicyThroughput|BenchmarkBackfillPolicies|BenchmarkTable1|BenchmarkFig5

.PHONY: verify test bench bench-smoke bench-baseline lint fmt-check

# verify is the tier-1 gate: formatting, vet, build, the detlint
# determinism rules (cmd/mclint), the full test suite, and the test
# suite again under the race detector.
verify: fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/mclint ./...
	$(GO) test ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# lint runs the detlint static-analysis suite: the determinism and
# pooling invariants (nowallclock, noglobalrand, nomaprange,
# eventretain). `go run ./cmd/mclint -help` prints the rule catalog.
lint:
	$(GO) run ./cmd/mclint ./...

# fmt-check fails when any file drifts from gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; \
	fi

# bench re-measures the hot paths and records them under the "after" key
# of BENCH_1.json (preserving the recorded baseline).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key after -o BENCH_1.json

# bench-smoke compiles and runs every recorded benchmark exactly once —
# no timing, no JSON — so CI catches benchmarks that rot (fail to build,
# panic, or start allocating on a zero-alloc path would show in -benchmem).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 1x -benchmem .

# bench-baseline records the same measurements under "baseline"; run it
# before starting an optimization.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key baseline -o BENCH_1.json
