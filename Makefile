# Tier-1 verification and benchmarking entry points.

GO ?= go

# The hot-path benchmarks recorded in BENCH_1.json. Table/Fig benchmarks
# ride along so end-to-end regeneration time is tracked too.
BENCHES = BenchmarkEngineEventRate|BenchmarkPolicyThroughput|BenchmarkBackfillPolicies|BenchmarkTable1|BenchmarkFig5|BenchmarkFaultPathDisabled

.PHONY: verify test bench bench-smoke bench-baseline bench-record lint fmt-check

# verify is the tier-1 gate: formatting, vet, build, the detlint
# determinism rules (cmd/mclint), the full test suite, and the test
# suite again under the race detector.
verify: fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/mclint ./...
	$(GO) test ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# lint runs go vet plus the detlint static-analysis suite: the
# determinism and pooling invariants (nowallclock, noglobalrand,
# nomaprange, eventretain, jobretain). `go run ./cmd/mclint -help`
# prints the rule catalog.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mclint ./...

# fmt-check fails when any file drifts from gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; \
	fi

# bench re-measures the hot paths and records them under the "after" key
# of BENCH_1.json (preserving the recorded baseline).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key after -o BENCH_1.json

# bench-smoke compiles and runs every recorded benchmark exactly once and
# pipes the output through the allocation guard: the run fails when the
# macro benchmarks (Fig5, BackfillPolicies/*) regress more than 10% in
# allocs/op against the "smoke" snapshot of BENCH_2.json — so CI catches
# both benchmarks that rot and hot paths that quietly start allocating.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 1x -benchmem . | $(GO) run ./scripts/benchguard -record BENCH_2.json -key smoke

# bench-record re-measures the hot paths into BENCH_2.json: the amortized
# numbers under "after" (the memory-lean pipeline record README cites) and
# a single-shot run under "smoke", the reference bench-smoke guards
# against. Re-run it whenever an intentional change moves the needle.
bench-record:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key after -o BENCH_2.json
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 1x -benchmem . | $(GO) run ./scripts/benchjson -key smoke -o BENCH_2.json

# bench-baseline records the same measurements under "baseline"; run it
# before starting an optimization.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key baseline -o BENCH_1.json
