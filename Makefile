# Tier-1 verification and benchmarking entry points.

GO ?= go

# The hot-path benchmarks recorded in BENCH_1.json. Table/Fig benchmarks
# ride along so end-to-end regeneration time is tracked too.
BENCHES = BenchmarkEngineEventRate|BenchmarkPolicyThroughput|BenchmarkBackfillPolicies|BenchmarkTable1|BenchmarkFig5

.PHONY: verify test bench bench-baseline

# verify is the tier-1 gate: vet, build, the full test suite, and the
# test suite again under the race detector.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# bench re-measures the hot paths and records them under the "after" key
# of BENCH_1.json (preserving the recorded baseline).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key after -o BENCH_1.json

# bench-baseline records the same measurements under "baseline"; run it
# before starting an optimization.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key baseline -o BENCH_1.json
