# Tier-1 verification and benchmarking entry points.

GO ?= go

# The hot-path benchmarks recorded in BENCH_1.json. Table/Fig benchmarks
# ride along so end-to-end regeneration time is tracked too.
BENCHES = BenchmarkEngineEventRate|BenchmarkPolicyThroughput|BenchmarkBackfillPolicies|BenchmarkTable1|BenchmarkFig5|BenchmarkFaultPathDisabled|BenchmarkDecisionPathDisabled

# The sweep-layer wall-clock benchmark recorded in BENCH_4.json: a
# saturated-heavy figure grid run once with the legacy per-curve schedule
# and no cutoff, once with the overhauled figure schedule and the
# saturation cutoff.
FIGBENCH = BenchmarkFigureWallClock

.PHONY: verify test bench bench-smoke bench-baseline bench-record cpuprofile lint fmt-check

# verify is the tier-1 gate: formatting, vet, build, the detlint
# determinism rules (cmd/mclint), the full test suite, and the test
# suite again under the race detector.
verify: fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) run ./cmd/mclint ./...
	$(GO) test ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

# lint runs go vet plus the detlint static-analysis suite: the
# syntactic determinism and pooling invariants (nowallclock,
# noglobalrand, nomaprange, eventretain, jobretain), their
# interprocedural closures over the whole-module call graph (taintflow,
# handleflow, scratchescape), discarded Close/Flush errors (closecheck),
# the //detlint:noalloc compiler escape gate (noalloc), and dead
# suppression directives (stalesuppress). `go run ./cmd/mclint -help`
# prints the rule catalog; `-json` emits findings for tooling.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mclint ./...

# fmt-check fails when any file drifts from gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; \
	fi

# bench re-measures the hot paths and records them under the "after" key
# of BENCH_1.json (preserving the recorded baseline).
bench:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key after -o BENCH_1.json

# bench-smoke runs every recorded benchmark three times single-shot and
# pipes the output through the regression guard, which takes the
# per-benchmark minimum (the noise filter for shared machines): the run
# fails when the macro benchmarks (Fig5, BackfillPolicies/* — including
# GS-CONS and GS-EASY — FaultPathDisabled/* and DecisionPathDisabled/*,
# the zero-overhead-when-off contracts) regress more than 10% in
# allocs/op or 35% in ns/op against the "smoke" snapshot of
# BENCH_3.json — so CI catches benchmarks that rot, hot paths that
# quietly start allocating, and algorithmic speedups that get
# accidentally reverted. The time gate is deliberately loose
# (single-shot wall clock is noisy); re-record the snapshot when moving
# to slower hardware.
#
# The second guard run covers the sweep layer: both arms of the figure
# wall-clock benchmark are gated against BENCH_4.json, and the
# machine-independent speedup gate fails the run if the overhauled arm
# (figure schedule + saturation cutoff) drops below 3x the legacy arm —
# the record the sweep overhaul claims.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 1x -count 3 -benchmem . | $(GO) run ./scripts/benchguard -record BENCH_3.json -key smoke -max-time-regress 0.35
	$(GO) test -run '^$$' -bench '$(FIGBENCH)' -benchtime 1x -count 3 -benchmem . | $(GO) run ./scripts/benchguard -record BENCH_4.json -key smoke -match '^BenchmarkFigureWallClock/' -max-time-regress 0.35 -speedup-base BenchmarkFigureWallClock/legacy -speedup-test BenchmarkFigureWallClock/overhauled -min-speedup 3

# bench-record re-measures the hot paths into BENCH_3.json: the amortized
# numbers under "after" (the profile-overhaul record README cites) and
# a single-shot run under "smoke", the reference bench-smoke guards
# against. The figure wall-clock benchmark is recorded the same way into
# BENCH_4.json (the sweep-overhaul record README cites). Re-run it
# whenever an intentional change moves the needle.
bench-record:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key after -o BENCH_3.json
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchtime 1x -benchmem . | $(GO) run ./scripts/benchjson -key smoke -o BENCH_3.json
	$(GO) test -run '^$$' -bench '$(FIGBENCH)' -benchmem . | $(GO) run ./scripts/benchjson -key after -o BENCH_4.json
	$(GO) test -run '^$$' -bench '$(FIGBENCH)' -benchtime 1x -benchmem . | $(GO) run ./scripts/benchjson -key smoke -o BENCH_4.json

# cpuprofile captures a pprof CPU profile of the backfilling macro
# benchmark for hot-path work:
#
#	make cpuprofile
#	go tool pprof -top bench.test cpu.prof
cpuprofile:
	$(GO) test -run '^$$' -bench 'BenchmarkBackfillPolicies' -benchtime 30x -cpuprofile cpu.prof -o bench.test .

# bench-baseline records the same measurements under "baseline"; run it
# before starting an optimization.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem . | $(GO) run ./scripts/benchjson -key baseline -o BENCH_1.json
