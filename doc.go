// Package coalloc is a trace-based discrete-event simulator of processor
// co-allocation policies in multicluster systems, reproducing Bucur and
// Epema, "Trace-Based Simulations of Processor Co-Allocation Policies in
// Multiclusters", HPDC 2003.
//
// The library models a homogeneous multicluster (the paper's DAS: four
// clusters of 32 processors) scheduling rigid parallel jobs by pure space
// sharing. Jobs issue unordered requests — tuples of component sizes placed
// Worst Fit on distinct clusters — and are served by one of four policies:
// GS (one global FCFS queue), LS (per-cluster local queues with system-wide
// co-allocation of multi-component jobs), LP (local queues with priority
// over a global queue holding the multi-component jobs), and SC (a
// single-cluster FCFS reference scheduling total requests).
//
// Packages:
//
//   - internal/sim — the discrete-event kernel (event heap, virtual clock)
//   - internal/rng, internal/dist, internal/stats — random streams,
//     variate generators, estimators
//   - internal/dastrace — the synthetic DAS1-like job log and the SWF
//     trace format
//   - internal/workload — DAS-s-128 / DAS-s-64 / DAS-t-900 distributions,
//     the component-splitting rule, the 1.25 wide-area extension factor
//   - internal/cluster, internal/queues, internal/policies — multicluster
//     state, FCFS queues with enable/disable bookkeeping, the policies
//   - internal/core — open-system runs and constant-backlog (maximal
//     utilization) runs
//   - internal/experiments, internal/plot — one runner per paper table and
//     figure, ASCII charts and CSV output
//
// Binaries: cmd/mcsim (one run), cmd/mcexp (paper experiments by id),
// cmd/mctrace (synthetic trace generation and inspection). Runnable
// examples live under examples/. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation; see EXPERIMENTS.md for
// the paper-versus-measured record.
package coalloc
