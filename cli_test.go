package coalloc

// End-to-end tests of the command-line tools: each binary is built once
// into a temporary directory and driven the way a user would drive it.
// Skipped under -short.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCommands compiles every cmd/... binary into a shared temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	for _, name := range []string{"mcsim", "mcexp", "mctrace", "mcreplay", "mcmodel"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = mustRepoRoot(t)
		if output, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, output)
		}
	}
	return dir
}

func mustRepoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// run executes a built binary and returns its stdout+stderr.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// runExpectExit executes a built binary expecting it to fail with the
// given exit status, and returns its stdout+stderr for message checks.
func runExpectExit(t *testing.T, want int, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s: succeeded, want exit %d\n%s", filepath.Base(bin), strings.Join(args, " "), want, out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %s: %v (not an exit error)", filepath.Base(bin), strings.Join(args, " "), err)
	}
	if got := ee.ExitCode(); got != want {
		t.Fatalf("%s %s: exit %d, want %d\n%s", filepath.Base(bin), strings.Join(args, " "), got, want, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	bins := buildCommands(t)
	bin := func(name string) string { return filepath.Join(bins, name) }

	t.Run("mcsim", func(t *testing.T) {
		out := run(t, bin("mcsim"), "-policy", "LS", "-limit", "16", "-util", "0.4",
			"-jobs", "2000", "-warmup", "200")
		for _, w := range []string{"policy", "LS", "mean response", "measured gross util", "saturated"} {
			if !strings.Contains(out, w) {
				t.Errorf("mcsim output missing %q:\n%s", w, out)
			}
		}
	})

	t.Run("mcsim backlog", func(t *testing.T) {
		out := run(t, bin("mcsim"), "-policy", "GS", "-limit", "24", "-backlog")
		if !strings.Contains(out, "max gross util") {
			t.Errorf("mcsim -backlog output:\n%s", out)
		}
	})

	t.Run("mcexp", func(t *testing.T) {
		out := run(t, bin("mcexp"), "-quick", "table2")
		if !strings.Contains(out, "0.009") { // the recovered Table 2 entry
			t.Errorf("mcexp table2 output:\n%s", out)
		}
		list := run(t, bin("mcexp"), "list")
		for _, w := range []string{"fig3", "table3", "backfill"} {
			if !strings.Contains(list, w) {
				t.Errorf("mcexp list missing %q", w)
			}
		}
	})

	t.Run("trace pipeline", func(t *testing.T) {
		swf := filepath.Join(bins, "das.swf")
		run(t, bin("mctrace"), "gen", "-jobs", "3000", "-o", swf)
		stats := run(t, bin("mctrace"), "stats", swf)
		if !strings.Contains(stats, "jobs                3000") {
			t.Errorf("mctrace stats:\n%s", stats)
		}
		filtered := filepath.Join(bins, "das64.swf")
		run(t, bin("mctrace"), "filter", "-maxsize", "64", "-o", filtered, swf)
		fstats := run(t, bin("mctrace"), "stats", filtered)
		if !strings.Contains(fstats, "[1, 64]") {
			t.Errorf("filtered stats:\n%s", fstats)
		}

		gantt := filepath.Join(bins, "gantt.csv")
		replay := run(t, bin("mcreplay"), "-policy", "GS", "-limit", "16",
			"-load", "2", "-schedule", gantt, filtered)
		if !strings.Contains(replay, "jobs replayed") || !strings.Contains(replay, "mean response") {
			t.Errorf("mcreplay output:\n%s", replay)
		}
		data, err := os.ReadFile(gantt)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "id,size,components") {
			t.Errorf("gantt CSV header: %q", string(data[:30]))
		}
	})

	t.Run("mcsim decisions", func(t *testing.T) {
		trace := filepath.Join(bins, "decisions.jsonl")
		out := run(t, bin("mcsim"), "-policy", "GS-CONS", "-limit", "16", "-util", "0.6",
			"-jobs", "1500", "-warmup", "200", "-decisions", "-metrics", "-trace", trace)
		for _, w := range []string{"decisions recorded", "regret", "sched.decisions"} {
			if !strings.Contains(out, w) {
				t.Errorf("mcsim -decisions output missing %q:\n%s", w, out)
			}
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), `"ev":"decision"`) {
			t.Error("trace has no decision records")
		}
	})

	t.Run("flag validation", func(t *testing.T) {
		// Unified exit status 2 for bad flag combinations, with the same
		// wording family across commands.
		cases := []struct {
			bin  string
			args []string
			want string
		}{
			{"mcsim", []string{"-policy", "LS", "-lookahead", "8"}, "conservative backfilling"},
			{"mcsim", []string{"-policy", "GS-CONS", "-lookahead", "-2"}, "must be >= 1"},
			{"mcsim", []string{"-policy", "GS", "-backlog", "-decisions"}, "-decisions"},
			{"mcsim", []string{"-policy", "GS", "-backlog", "-metrics"}, "-backlog"},
			{"mcsim", []string{"-policy", "GS", "-retry-base", "700"}, "retry window"},
			{"mcexp", []string{"-quick", "-lookahead", "8", "fig1"}, "conservative backfilling"},
			{"mcexp", []string{"-quick", "-lookahead", "-2", "backfill"}, "must be >= 1"},
			{"mcexp", []string{"-quick", "-decisions", "table1"}, "-decisions"},
			{"mcexp", []string{"-quick", "-retry-cap", "5", "faults"}, "retry window"},
		}
		for _, c := range cases {
			out := runExpectExit(t, 2, bin(c.bin), c.args...)
			if !strings.Contains(out, c.want) {
				t.Errorf("%s %s: message %q missing %q", c.bin, strings.Join(c.args, " "), out, c.want)
			}
		}
		// Valid combinations of the same flags still run.
		run(t, bin("mcsim"), "-policy", "GS-CONS", "-lookahead", "8", "-util", "0.4",
			"-jobs", "500", "-warmup", "100")
	})

	t.Run("failing trace writer", func(t *testing.T) {
		if _, err := os.Stat("/dev/full"); err != nil {
			t.Skip("/dev/full unavailable")
		}
		out := runExpectExit(t, 1, bin("mcsim"), "-policy", "LS", "-util", "0.4",
			"-jobs", "2000", "-warmup", "200", "-trace", "/dev/full")
		if !strings.Contains(out, "writing trace") {
			t.Errorf("full-disk trace error not surfaced:\n%s", out)
		}
		out = runExpectExit(t, 1, bin("mcreplay"), "-policy", "LS", "-limit", "16",
			"-trace", "/dev/full")
		if !strings.Contains(out, "writing trace") {
			t.Errorf("mcreplay full-disk trace error not surfaced:\n%s", out)
		}
	})

	t.Run("mcmodel", func(t *testing.T) {
		swf := filepath.Join(bins, "model.swf")
		run(t, bin("mcmodel"), "gen", "-jobs", "2000", "-o", swf)
		out := run(t, bin("mcreplay"), "-policy", "LS", "-limit", "16", swf)
		if !strings.Contains(out, "jobs replayed     2000") {
			t.Errorf("replaying a model trace:\n%s", out)
		}
	})
}
