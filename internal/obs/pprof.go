package obs

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
)

// StartPprof serves the net/http/pprof handlers on addr (for example
// "localhost:6060"). The listener is opened synchronously so bind errors
// surface immediately; serving then proceeds on a background goroutine for
// the life of the process. Used by the CLIs' -pprof flag.
func StartPprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		// The server runs until process exit; Serve only returns on
		// listener failure, which has no one left to report to.
		_ = http.Serve(ln, nil)
	}()
	return nil
}
