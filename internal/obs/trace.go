package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"

	"coalloc/internal/dectrace"
)

// Trace is the structured JSONL event sink: one JSON object per line,
// keyed by virtual time and job ID. The encoder is hand-rolled — fields
// are emitted in a fixed order with shortest-roundtrip float formatting —
// so that two runs of the same seed produce byte-identical traces, which
// the tests pin.
//
// Record shapes (all times are virtual seconds):
//
//	{"t":0,"ev":"arrive","job":1,"size":16,"comps":[16],"queue":0}
//	{"t":0,"ev":"start","job":1,"wait":0,"place":[2]}
//	{"t":276.5,"ev":"depart","job":1,"resp":276.5}
//	{"t":276.5,"ev":"disable","queue":1}
//	{"t":300,"ev":"enable","queue":1}
//	{"t":300,"ev":"decision","kind":"dispatch","job":4,"queue":-1,"start":300,"place":[0,2],"regret":23.5,"alts":[{"rule":"FF","start":300,"place":[0,1]}]}
//
// Write errors are sticky: the first error is remembered, later records
// are dropped, and Flush (or Observer.Close) reports it — a full disk
// cannot silently truncate a trace.
type Trace struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewTrace returns a trace sink writing JSONL records to w.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: bufio.NewWriter(w), buf: make([]byte, 0, 128)}
}

// Flush writes out buffered records and returns the first error seen.
func (t *Trace) Flush() error {
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// Err returns the first write error, if any.
func (t *Trace) Err() error { return t.err }

// emit terminates the current record and hands it to the writer.
func (t *Trace) emit() {
	if t.err != nil {
		return
	}
	t.buf = append(t.buf, '}', '\n')
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = err
	}
}

// begin starts a record with its time and event tag.
func (t *Trace) begin(at float64, ev string) {
	t.buf = append(t.buf[:0], `{"t":`...)
	t.buf = strconv.AppendFloat(t.buf, at, 'g', -1, 64)
	t.buf = append(t.buf, `,"ev":"`...)
	t.buf = append(t.buf, ev...)
	t.buf = append(t.buf, '"')
}

func (t *Trace) fieldInt(name string, v int64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':')
	t.buf = strconv.AppendInt(t.buf, v, 10)
}

func (t *Trace) fieldFloat(name string, v float64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':')
	t.buf = strconv.AppendFloat(t.buf, v, 'g', -1, 64)
}

func (t *Trace) fieldInts(name string, vs []int) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':', '[')
	for i, v := range vs {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = strconv.AppendInt(t.buf, int64(v), 10)
	}
	t.buf = append(t.buf, ']')
}

// Arrive records a job arrival.
func (t *Trace) Arrive(at float64, job int64, size int, comps []int, queue int) {
	t.begin(at, "arrive")
	t.fieldInt("job", job)
	t.fieldInt("size", int64(size))
	t.fieldInts("comps", comps)
	t.fieldInt("queue", int64(queue))
	t.emit()
}

// Start records a job start with its placement and queueing delay.
func (t *Trace) Start(at float64, job int64, wait float64, place []int) {
	t.begin(at, "start")
	t.fieldInt("job", job)
	t.fieldFloat("wait", wait)
	t.fieldInts("place", place)
	t.emit()
}

// Depart records a job departure with its response time.
func (t *Trace) Depart(at float64, job int64, resp float64) {
	t.begin(at, "depart")
	t.fieldInt("job", job)
	t.fieldFloat("resp", resp)
	t.emit()
}

// Disable records a queue leaving the scheduling visit order (its head did
// not fit).
func (t *Trace) Disable(at float64, queue int) {
	t.begin(at, "disable")
	t.fieldInt("queue", int64(queue))
	t.emit()
}

// Enable records a queue rejoining the scheduling visit order.
func (t *Trace) Enable(at float64, queue int) {
	t.begin(at, "enable")
	t.fieldInt("queue", int64(queue))
	t.emit()
}

// Fail records a processor failure: the cluster it hit and the system-wide
// up capacity after it.
func (t *Trace) Fail(at float64, cluster, avail int) {
	t.begin(at, "fail")
	t.fieldInt("cluster", int64(cluster))
	t.fieldInt("avail", int64(avail))
	t.emit()
}

// Repair records a processor returning to service.
func (t *Trace) Repair(at float64, cluster, avail int) {
	t.begin(at, "repair")
	t.fieldInt("cluster", int64(cluster))
	t.fieldInt("avail", int64(avail))
	t.emit()
}

// Kill records a running job aborted by a failure, with the
// processor-seconds of service it loses and the processor-seconds this
// dispatch ran that checkpointing preserved.
func (t *Trace) Kill(at float64, job int64, cluster int, lost, saved float64) {
	t.begin(at, "kill")
	t.fieldInt("job", job)
	t.fieldInt("cluster", int64(cluster))
	t.fieldFloat("lost", lost)
	t.fieldFloat("saved", saved)
	t.emit()
}

// fieldStr emits a string field. Values come from fixed in-code vocabularies
// (record kinds, fit-rule names), so no JSON escaping is needed.
func (t *Trace) fieldStr(name, v string) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':', '"')
	t.buf = append(t.buf, v...)
	t.buf = append(t.buf, '"')
}

// Decision records one scheduling decision from the dectrace layer: the
// kind, the chosen start/placement where the decision names one, the
// resolved regret for dispatches, and the unchosen alternatives. The
// record and its slices alias tracer scratch, so the bytes are serialized
// here, synchronously.
func (t *Trace) Decision(r *dectrace.Record) {
	t.begin(r.T, "decision")
	t.fieldStr("kind", r.Kind)
	t.fieldInt("job", r.Job)
	t.fieldInt("queue", int64(r.Queue))
	if !math.IsInf(r.Start, 1) {
		t.fieldFloat("start", r.Start)
	}
	if r.Place != nil {
		t.fieldInts("place", r.Place)
	}
	if r.Kind == dectrace.KindDispatch {
		t.fieldFloat("regret", r.Regret)
	}
	t.buf = append(t.buf, `,"alts":[`...)
	for i := range r.Alts {
		a := &r.Alts[i]
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = append(t.buf, `{"rule":"`...)
		t.buf = append(t.buf, a.Rule...)
		t.buf = append(t.buf, `","start":`...)
		t.buf = strconv.AppendFloat(t.buf, a.Start, 'g', -1, 64)
		if a.Place != nil {
			t.buf = append(t.buf, `,"place":[`...)
			for j, c := range a.Place {
				if j > 0 {
					t.buf = append(t.buf, ',')
				}
				t.buf = strconv.AppendInt(t.buf, int64(c), 10)
			}
			t.buf = append(t.buf, ']')
		}
		t.buf = append(t.buf, '}')
	}
	t.buf = append(t.buf, ']')
	t.emit()
}

// Resubmit records an aborted job re-entering its queue; retry is its
// 1-based abort count.
func (t *Trace) Resubmit(at float64, job int64, retry int) {
	t.begin(at, "resubmit")
	t.fieldInt("job", job)
	t.fieldInt("retry", int64(retry))
	t.emit()
}
