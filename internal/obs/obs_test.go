package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"coalloc/internal/dectrace"
)

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.SetClock(func() float64 { return 1 })
	o.Arrival(0, 1, 16, []int{16}, 0)
	o.Start(0, 1, 0, []int{0})
	o.Departure(1, 1, 1)
	o.Pass()
	o.HeadMiss(0)
	o.BackfillAttempt()
	o.BackfillSuccess()
	o.QueueDisabled(0)
	o.QueueEnabled(0)
	o.QueueDepth(3)
	o.EngineStats(10, 10, 2)
	if err := o.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := o.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := o.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
}

func TestRegistryDedupAndOrder(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("b.second")
	b := m.Counter("a.first")
	if m.Counter("b.second") != a {
		t.Fatal("re-registration returned a new counter")
	}
	a.Add(2)
	b.Inc()
	if m.Gauge("g") != m.Gauge("g") {
		t.Fatal("re-registration returned a new gauge")
	}
	if m.Timer("t") != m.Timer("t") {
		t.Fatal("re-registration returned a new timer")
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "a.first") > strings.Index(out, "b.second") {
		t.Errorf("counters not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "counter b.second") {
		t.Errorf("missing counters:\n%s", out)
	}
}

func TestGaugeTracksLastAndMax(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Set(7)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 7 {
		t.Errorf("last=%g max=%g, want 2 and 7", g.Value(), g.Max())
	}
	// A negative first sample must become the max, not be hidden by the
	// zero value.
	var n Gauge
	n.Set(-4)
	if n.Max() != -4 {
		t.Errorf("negative first sample: max=%g, want -4", n.Max())
	}
}

func TestTimerBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {0.999, 0},
		{1, 1}, {1.5, 1}, {2, 2}, {3.99, 2}, {4, 3},
		{1024, 11},
		{math.MaxFloat64, timerBuckets - 1},
	}
	for _, c := range cases {
		if got := timerBucket(c.v); got != c.want {
			t.Errorf("timerBucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	var tm Timer
	tm.Observe(0.5)
	tm.Observe(3)
	tm.Observe(3)
	tm.Observe(-1) // clamped to 0
	if tm.Count() != 4 || tm.Bucket(0) != 2 || tm.Bucket(2) != 2 {
		t.Errorf("buckets: count=%d b0=%d b2=%d", tm.Count(), tm.Bucket(0), tm.Bucket(2))
	}
	if tm.Min() != 0 || tm.Max() != 3 {
		t.Errorf("min=%g max=%g", tm.Min(), tm.Max())
	}
	if got, want := tm.Mean(), 6.5/4; got != want {
		t.Errorf("mean=%g want %g", got, want)
	}
}

func TestTraceBytes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Arrive(0, 1, 16, []int{8, 8}, 0)
	tr.Start(0.5, 1, 0.5, []int{0, 2})
	tr.Depart(277.25, 1, 277.25)
	tr.Disable(277.25, 1)
	tr.Enable(300, 1)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":0,"ev":"arrive","job":1,"size":16,"comps":[8,8],"queue":0}
{"t":0.5,"ev":"start","job":1,"wait":0.5,"place":[0,2]}
{"t":277.25,"ev":"depart","job":1,"resp":277.25}
{"t":277.25,"ev":"disable","queue":1}
{"t":300,"ev":"enable","queue":1}
`
	if got := buf.String(); got != want {
		t.Errorf("trace bytes:\n got %q\nwant %q", got, want)
	}
}

// failWriter fails after n bytes, modelling a full disk.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errShort
	}
	w.n -= len(p)
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write: disk full" }

func TestTraceStickyError(t *testing.T) {
	tr := NewTrace(&failWriter{n: 8})
	for i := 0; i < 100000; i++ {
		tr.Depart(float64(i), int64(i), 1)
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush swallowed the write error")
	}
	if tr.Err() == nil {
		t.Fatal("Err lost the sticky error")
	}
}

func TestObserverMetricsFlow(t *testing.T) {
	o := New(nil)
	o.Arrival(0, 1, 16, []int{16}, 0)
	o.Start(1, 1, 1, []int{0})
	o.Departure(2, 1, 2)
	o.Pass()
	o.Pass()
	o.HeadMiss(0)
	o.BackfillAttempt()
	o.BackfillSuccess()
	o.QueueDisabled(2)
	o.QueueEnabled(2)
	o.QueueDepth(5)
	o.QueueDepth(3)
	o.EngineStats(100, 101, 3)
	m := o.Metrics
	checks := []struct {
		name string
		want uint64
	}{
		{"jobs.arrivals", 1}, {"jobs.starts", 1}, {"jobs.departures", 1},
		{"sched.passes", 2}, {"sched.head_misses", 1},
		{"sched.backfill.attempts", 1}, {"sched.backfill.successes", 1},
		{"queues.disables", 1}, {"queues.enables", 1},
		{"sim.events", 100}, {"sim.scheduled", 101},
	}
	for _, c := range checks {
		if got := m.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if g := m.Gauge("queues.depth"); g.Value() != 3 || g.Max() != 5 {
		t.Errorf("queues.depth last=%g max=%g", g.Value(), g.Max())
	}
	if hr := m.Gauge("sim.pool.hit_rate").Value(); hr <= 0.9 || hr > 1 {
		t.Errorf("pool hit rate %g", hr)
	}
	if w := m.Timer("jobs.wait"); w.Count() != 1 || w.Sum() != 1 {
		t.Errorf("jobs.wait count=%d sum=%g", w.Count(), w.Sum())
	}
}

func TestObserverClockTimestampsTransitions(t *testing.T) {
	var buf bytes.Buffer
	o := New(&buf)
	now := 0.0
	o.SetClock(func() float64 { return now })
	now = 42.5
	o.QueueDisabled(3)
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), `{"t":42.5,"ev":"disable","queue":3}`+"\n"; got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestDecisionTraceBytes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Decision(&dectrace.Record{
		T: 300, Kind: dectrace.KindDispatch, Job: 4, Queue: -1,
		Start: 300, Place: []int{0, 2}, Regret: 23.5,
		Alts: []dectrace.Alt{
			{Rule: "FF", Start: 300, Place: []int{0, 1}},
			{Rule: "BF", Start: 301.5},
		},
	})
	// Miss-kind records name no start (it is +Inf) and no placement;
	// regret is a dispatch-only field.
	tr.Decision(&dectrace.Record{
		T: 310, Kind: dectrace.KindHeadMiss, Job: 5, Queue: 2,
		Start: math.Inf(1), Regret: 99, // Regret must not leak into the record
		Alts: []dectrace.Alt{{Rule: "cluster", Start: 310, Place: []int{3}}},
	})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":300,"ev":"decision","kind":"dispatch","job":4,"queue":-1,"start":300,"place":[0,2],"regret":23.5,"alts":[{"rule":"FF","start":300,"place":[0,1]},{"rule":"BF","start":301.5}]}
{"t":310,"ev":"decision","kind":"headmiss","job":5,"queue":2,"alts":[{"rule":"cluster","start":310,"place":[3]}]}
`
	if got := buf.String(); got != want {
		t.Errorf("decision bytes:\n got %q\nwant %q", got, want)
	}
}

func TestDecisionStickyWriteError(t *testing.T) {
	tr := NewTrace(&failWriter{n: 8})
	rec := dectrace.Record{T: 1, Kind: dectrace.KindDispatch, Job: 1, Start: 1, Place: []int{0}}
	for i := 0; i < 100000; i++ {
		rec.T = float64(i)
		tr.Decision(&rec)
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush swallowed the decision-path write error")
	}
	if tr.Err() == nil {
		t.Fatal("Err lost the sticky error")
	}
}

func TestObserverDecisionLazyMetricAndClose(t *testing.T) {
	// Without any decision, the summary block must not mention the
	// counter — runs without tracing stay bit-identical.
	o := New(nil)
	o.Arrival(0, 1, 16, []int{16}, 0)
	var before bytes.Buffer
	if err := o.WriteText(&before); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before.String(), "sched.decisions") {
		t.Error("sched.decisions registered without any decision")
	}

	rec := dectrace.Record{T: 1, Kind: dectrace.KindDispatch, Job: 1, Start: 1, Place: []int{0}}
	o.Decision(&rec)
	o.Decision(&rec)
	var after bytes.Buffer
	if err := o.WriteText(&after); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.String(), "sched.decisions") {
		t.Error("sched.decisions missing after decisions were recorded")
	}

	// A failing trace writer must surface through Observer.Close — the
	// commands exit nonzero on it instead of truncating silently.
	fo := New(&failWriter{n: 8})
	for i := 0; i < 100000; i++ {
		rec.T = float64(i)
		fo.Decision(&rec)
	}
	if err := fo.Close(); err == nil {
		t.Fatal("Observer.Close swallowed the decision write error")
	}

	// Nil-safety of the decision path.
	var nilObs *Observer
	nilObs.Decision(&rec)
}
