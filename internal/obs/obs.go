package obs

import (
	"io"

	"coalloc/internal/dectrace"
)

// Observer is one run's observability hub. Every method is safe on a nil
// receiver and does nothing, so simulation code reports unconditionally
// cheap events through nil-safe calls and guards composite reporting
// blocks with a plain `if o != nil` — the disabled path costs one pointer
// compare, allocates nothing, and makes no interface calls.
//
// An Observer is single-threaded, like the simulation run it belongs to.
// Code that runs many simulations against one Observer must run them
// serially (see core.RunReplications and the experiment sweeps).
type Observer struct {
	// Metrics is the run's registry; read it after the run for the
	// summary block, or register additional metrics before it.
	Metrics *Metrics

	trace *Trace
	clock func() float64

	arrivals   *Counter
	starts     *Counter
	departures *Counter

	passes      *Counter
	headMisses  *Counter
	bfAttempts  *Counter
	bfSuccesses *Counter
	qDisables   *Counter
	qEnables    *Counter

	engEvents    *Counter
	engScheduled *Counter
	arenaSlots   *Gauge
	poolHitRate  *Gauge
	queueDepth   *Gauge

	wait *Timer
	resp *Timer

	// passesSkipped and lookaheadTrunc are registered lazily, on first
	// use, for the same reason as the fault metrics below: WriteText
	// prints every registered metric, and runs where no pass is ever
	// elided or truncated must keep their summary block unchanged.
	passesSkipped  *Counter
	passesRepaired *Counter
	lookaheadTrunc *Counter

	// The saturation-cutoff counters are likewise lazy: the monitor never
	// fires on a stable run, and such a run's metric summary must stay
	// byte-identical with the monitor on.
	cutoffFired *Counter
	cutoffTrunc *Counter

	// decisions is lazy too: runs without decision tracing must keep
	// their summary block bit-identical to builds predating dectrace.
	decisions *Counter

	// Fault metrics are registered lazily, on the first fault event of a
	// run: WriteText prints every registered metric, so eager
	// registration would change the summary block of every fault-free
	// run — which the zero-rate bit-identity guardrail pins.
	fFailures  *Counter
	fSkipped   *Counter
	fRepairs   *Counter
	fKills     *Counter
	fResubmits *Counter
	fCapacity  *Gauge
	fLost      *Timer
	fSaved     *Timer
}

// New returns an Observer with a fresh metrics registry. trace, when
// non-nil, receives the JSONL event trace; pass nil for metrics only.
func New(trace io.Writer) *Observer {
	m := NewMetrics()
	o := &Observer{
		Metrics:      m,
		arrivals:     m.Counter("jobs.arrivals"),
		starts:       m.Counter("jobs.starts"),
		departures:   m.Counter("jobs.departures"),
		passes:       m.Counter("sched.passes"),
		headMisses:   m.Counter("sched.head_misses"),
		bfAttempts:   m.Counter("sched.backfill.attempts"),
		bfSuccesses:  m.Counter("sched.backfill.successes"),
		qDisables:    m.Counter("queues.disables"),
		qEnables:     m.Counter("queues.enables"),
		engEvents:    m.Counter("sim.events"),
		engScheduled: m.Counter("sim.scheduled"),
		arenaSlots:   m.Gauge("sim.pool.arena_slots"),
		poolHitRate:  m.Gauge("sim.pool.hit_rate"),
		queueDepth:   m.Gauge("queues.depth"),
		wait:         m.Timer("jobs.wait"),
		resp:         m.Timer("jobs.response"),
	}
	if trace != nil {
		o.trace = NewTrace(trace)
	}
	return o
}

// Enabled reports whether an observer is attached. Every Observer method
// is already nil-safe, so a guard is never needed for safety — use Enabled
// when the point is to skip computing an expensive argument (a queue-depth
// scan, a composite reporting block) while observability is off. Writing
// the guard as o.Enabled() rather than o != nil marks that intent: the
// call is elidable, not load-bearing.
func (o *Observer) Enabled() bool { return o != nil }

// SetClock installs the virtual-clock reader used to timestamp trace
// records that are reported without an explicit time (queue
// enable/disable transitions). The simulation wires the engine's Now here.
func (o *Observer) SetClock(now func() float64) {
	if o == nil {
		return
	}
	o.clock = now
}

// now reads the virtual clock, or 0 before SetClock.
func (o *Observer) now() float64 {
	if o.clock == nil {
		return 0
	}
	return o.clock()
}

// Arrival records a job arrival: counter, and trace record when tracing.
func (o *Observer) Arrival(at float64, job int64, size int, comps []int, queue int) {
	if o == nil {
		return
	}
	o.arrivals.Inc()
	if o.trace != nil {
		o.trace.Arrive(at, job, size, comps, queue)
	}
}

// Start records a job start (dispatch) with its placement; wait is the
// queueing delay, observed into the jobs.wait timer histogram.
func (o *Observer) Start(at float64, job int64, wait float64, place []int) {
	if o == nil {
		return
	}
	o.starts.Inc()
	o.wait.Observe(wait)
	if o.trace != nil {
		o.trace.Start(at, job, wait, place)
	}
}

// Departure records a job departure with its response time.
func (o *Observer) Departure(at float64, job int64, resp float64) {
	if o == nil {
		return
	}
	o.departures.Inc()
	o.resp.Observe(resp)
	if o.trace != nil {
		o.trace.Depart(at, job, resp)
	}
}

// Pass records one scheduling opportunity (a policy Submit/JobDeparted
// scheduling pass).
func (o *Observer) Pass() {
	if o == nil {
		return
	}
	o.passes.Inc()
}

// HeadMiss records a head-of-queue job that did not fit (the FCFS
// blocking event; for multi-queue policies the queue is then disabled).
func (o *Observer) HeadMiss(queue int) {
	if o == nil {
		return
	}
	o.headMisses.Inc()
}

// BackfillAttempt records one backfill candidate evaluation.
func (o *Observer) BackfillAttempt() {
	if o == nil {
		return
	}
	o.bfAttempts.Inc()
}

// BackfillAttempts records n backfill candidate evaluations at once — the
// compensation path of an elided scheduling pass, which must leave the
// counters exactly as the full pass would have.
func (o *Observer) BackfillAttempts(n int) {
	if o == nil || n <= 0 {
		return
	}
	o.bfAttempts.Add(uint64(n))
}

// PassSkipped records a scheduling pass elided as a provable no-op. The
// pass still counts under sched.passes — the compensation keeps every
// pre-existing counter identical to a non-eliding run — and the skip is
// additionally recorded under sched.passes_skipped.
func (o *Observer) PassSkipped() {
	if o == nil {
		return
	}
	if o.passesSkipped == nil {
		o.passesSkipped = o.Metrics.Counter("sched.passes_skipped")
	}
	o.passesSkipped.Inc()
}

// PassRepaired records a scheduling pass served from retained reservations
// after re-verifying only the stale prefix — the middle ground between a
// fully elided pass and a full re-derivation.
func (o *Observer) PassRepaired() {
	if o == nil {
		return
	}
	if o.passesRepaired == nil {
		o.passesRepaired = o.Metrics.Counter("sched.passes_repaired")
	}
	o.passesRepaired.Inc()
}

// LookaheadTruncated records a conservative-backfilling pass that stopped
// at the reservation lookahead cap with jobs still waiting beyond it —
// the "no silent caps" signal that the bounded window actually bound.
func (o *Observer) LookaheadTruncated() {
	if o == nil {
		return
	}
	if o.lookaheadTrunc == nil {
		o.lookaheadTrunc = o.Metrics.Counter("sched.lookahead_truncated")
	}
	o.lookaheadTrunc.Inc()
}

// SaturationCutoff records the divergence monitor halting a run early,
// with the number of measured departures it skipped.
func (o *Observer) SaturationCutoff(truncated int) {
	if o == nil {
		return
	}
	if o.cutoffFired == nil {
		o.cutoffFired = o.Metrics.Counter("run.saturation_cutoffs")
		o.cutoffTrunc = o.Metrics.Counter("run.truncated_jobs")
	}
	o.cutoffFired.Inc()
	if truncated > 0 {
		o.cutoffTrunc.Add(uint64(truncated))
	}
}

// Decision records one dectrace decision record: a lazily registered
// counter (runs without decision tracing keep their summary block
// unchanged) and, when tracing, the JSONL decision record. The record's
// slices alias tracer scratch; Trace.Decision serializes them before
// returning. Wired as the tracer's sink by core.
func (o *Observer) Decision(r *dectrace.Record) {
	if o == nil {
		return
	}
	if o.decisions == nil {
		o.decisions = o.Metrics.Counter("sched.decisions")
	}
	o.decisions.Inc()
	if o.trace != nil {
		o.trace.Decision(r)
	}
}

// BackfillSuccess records a backfill candidate actually started.
func (o *Observer) BackfillSuccess() {
	if o == nil {
		return
	}
	o.bfSuccesses.Inc()
}

// QueueDisabled records a queue leaving the scheduling visit order. The
// trace record is timestamped from the observer's clock.
func (o *Observer) QueueDisabled(queue int) {
	if o == nil {
		return
	}
	o.qDisables.Inc()
	if o.trace != nil {
		o.trace.Disable(o.now(), queue)
	}
}

// QueueEnabled records a queue rejoining the scheduling visit order.
func (o *Observer) QueueEnabled(queue int) {
	if o == nil {
		return
	}
	o.qEnables.Inc()
	if o.trace != nil {
		o.trace.Enable(o.now(), queue)
	}
}

// QueueDepth samples the number of waiting jobs; the gauge keeps the last
// and the maximum sample.
func (o *Observer) QueueDepth(n int) {
	if o == nil {
		return
	}
	o.queueDepth.Set(float64(n))
}

// EngineStats records the event kernel's lifetime counters at the end of
// a run: events executed, events scheduled, and the slot-arena size. The
// pool hit rate is the fraction of scheduled events served by a recycled
// slot — 1 - arena/scheduled — the steady-state pooling indicator.
func (o *Observer) EngineStats(steps, scheduled uint64, arenaSlots int) {
	if o == nil {
		return
	}
	o.engEvents.Add(steps)
	o.engScheduled.Add(scheduled)
	o.arenaSlots.Set(float64(arenaSlots))
	if scheduled > 0 {
		o.poolHitRate.Set(1 - float64(arenaSlots)/float64(scheduled))
	}
}

// faultMetrics registers the fault metric family on first use.
func (o *Observer) faultMetrics() {
	if o.fFailures != nil {
		return
	}
	m := o.Metrics
	o.fFailures = m.Counter("faults.failures")
	o.fSkipped = m.Counter("faults.skipped")
	o.fRepairs = m.Counter("faults.repairs")
	o.fKills = m.Counter("faults.kills")
	o.fResubmits = m.Counter("faults.resubmits")
	o.fCapacity = m.Gauge("faults.avail_capacity")
	o.fLost = m.Timer("faults.lost_work")
	o.fSaved = m.Timer("faults.saved_work")
}

// NodeFailed records a processor failure on a cluster; avail is the
// system-wide up capacity after the failure.
func (o *Observer) NodeFailed(at float64, cluster, avail int) {
	if o == nil {
		return
	}
	o.faultMetrics()
	o.fFailures.Inc()
	o.fCapacity.Set(float64(avail))
	if o.trace != nil {
		o.trace.Fail(at, cluster, avail)
	}
}

// NodeRepaired records a processor returning to service on a cluster;
// avail is the system-wide up capacity after the repair.
func (o *Observer) NodeRepaired(at float64, cluster, avail int) {
	if o == nil {
		return
	}
	o.faultMetrics()
	o.fRepairs.Inc()
	o.fCapacity.Set(float64(avail))
	if o.trace != nil {
		o.trace.Repair(at, cluster, avail)
	}
}

// FaultSkipped records a failure event that found the cluster entirely
// down already (counter only; nothing changed in the system).
func (o *Observer) FaultSkipped(cluster int) {
	if o == nil {
		return
	}
	o.faultMetrics()
	o.fSkipped.Inc()
}

// JobKilled records a running job aborted by a failure on a cluster, with
// the processor-seconds of discarded service and the processor-seconds
// this dispatch ran that checkpointing preserved (zero without
// checkpointing).
func (o *Observer) JobKilled(at float64, job int64, cluster int, lost, saved float64) {
	if o == nil {
		return
	}
	o.faultMetrics()
	o.fKills.Inc()
	o.fLost.Observe(lost)
	o.fSaved.Observe(saved)
	if o.trace != nil {
		o.trace.Kill(at, job, cluster, lost, saved)
	}
}

// JobResubmitted records an aborted job re-entering its queue after its
// retry backoff; retry is the 1-based abort count.
func (o *Observer) JobResubmitted(at float64, job int64, retry int) {
	if o == nil {
		return
	}
	o.faultMetrics()
	o.fResubmits.Inc()
	if o.trace != nil {
		o.trace.Resubmit(at, job, retry)
	}
}

// Flush writes out any buffered trace records and returns the first trace
// error. It is a no-op without a trace sink.
func (o *Observer) Flush() error {
	if o == nil || o.trace == nil {
		return nil
	}
	return o.trace.Flush()
}

// Close flushes the trace. The underlying writer (a file, usually) is
// owned and closed by the caller, whose Close error must also be checked.
func (o *Observer) Close() error { return o.Flush() }

// WriteText renders the metrics summary block (sorted, deterministic).
func (o *Observer) WriteText(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.Metrics.WriteText(w)
}
