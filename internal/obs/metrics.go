// Package obs is the run-scoped observability layer of the simulator: a
// deterministic metrics registry (counters, gauges, timer histograms), an
// optional structured JSONL event-trace sink, and a nil-safe Observer that
// the simulation layers (sim, queues, policies, core, experiments) report
// into.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. A nil *Observer is a valid observer; every
//     method is nil-safe, and the hot paths of the simulator guard their
//     reporting blocks with a plain pointer nil check, so a run without
//     observability executes no observer code at all. The event kernel
//     (internal/sim) never calls the observer from its inner loop — its
//     lifetime counters are read once at the end of a run.
//  2. Determinism. Metric values and trace bytes are pure functions of the
//     simulated event sequence: no wall-clock timestamps, no map
//     iteration, hand-rolled float formatting (strconv, shortest form).
//     Two runs at the same seed produce byte-identical traces and
//     identical metric snapshots.
//  3. Single-threaded, like the simulator itself. An Observer belongs to
//     one run; callers that sweep many runs with one shared Observer must
//     run them serially (core.RunReplications and the experiment sweeps do
//     exactly that when an observer is attached).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name returns the registration name.
func (c *Counter) Name() string { return c.name }

// Gauge records the last and the largest value of a sampled level, such as
// a queue depth.
type Gauge struct {
	name string
	last float64
	max  float64
	set  bool
}

// Set records a sample.
func (g *Gauge) Set(v float64) {
	if !g.set || v > g.max {
		g.max = v
	}
	g.last = v
	g.set = true
}

// Value returns the last sample (0 before the first Set).
func (g *Gauge) Value() float64 { return g.last }

// Max returns the largest sample (0 before the first Set).
func (g *Gauge) Max() float64 { return g.max }

// Name returns the registration name.
func (g *Gauge) Name() string { return g.name }

// timerBuckets is the number of power-of-two histogram buckets: bucket 0
// holds values below 1, bucket i >= 1 holds [2^(i-1), 2^i). 2^39 seconds
// exceeds any simulated duration by orders of magnitude.
const timerBuckets = 40

// Timer is a histogram of virtual-time durations (or any nonnegative
// values) with power-of-two buckets plus count/sum/min/max. "Timer" is the
// conventional name; the clock it observes is the simulation's virtual
// clock, never the wall clock.
type Timer struct {
	name    string
	buckets [timerBuckets]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// Observe records one value. Negative values are clamped to 0 (they can
// only arise from floating-point noise in time subtraction).
func (t *Timer) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if t.count == 0 || v < t.min {
		t.min = v
	}
	if t.count == 0 || v > t.max {
		t.max = v
	}
	t.count++
	t.sum += v
	t.buckets[timerBucket(v)]++
}

// timerBucket maps a value to its histogram bucket.
func timerBucket(v float64) int {
	if v < 1 {
		return 0
	}
	b := math.Ilogb(v) + 1
	if b >= timerBuckets {
		b = timerBuckets - 1
	}
	return b
}

// Count returns the number of observations.
func (t *Timer) Count() uint64 { return t.count }

// Sum returns the sum of the observations.
func (t *Timer) Sum() float64 { return t.sum }

// Mean returns the mean observation, or 0 when empty.
func (t *Timer) Mean() float64 {
	if t.count == 0 {
		return 0
	}
	return t.sum / float64(t.count)
}

// Min and Max return the extreme observations (0 when empty).
func (t *Timer) Min() float64 { return t.min }
func (t *Timer) Max() float64 { return t.max }

// Bucket returns the count of bucket i (see timerBucket).
func (t *Timer) Bucket(i int) uint64 { return t.buckets[i] }

// Name returns the registration name.
func (t *Timer) Name() string { return t.name }

// Metrics is a registry of named counters, gauges and timers. Metrics are
// registered once (repeat registration returns the existing handle) and
// rendered in sorted name order, so the text snapshot is deterministic.
// The registry deliberately avoids maps: registration is rare and a linear
// scan keeps iteration order trivially reproducible.
type Metrics struct {
	counters []*Counter
	gauges   []*Gauge
	timers   []*Timer
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter returns the counter registered under name, creating it on first
// use.
func (m *Metrics) Counter(name string) *Counter {
	for _, c := range m.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	m.counters = append(m.counters, c)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	for _, g := range m.gauges {
		if g.name == name {
			return g
		}
	}
	g := &Gauge{name: name}
	m.gauges = append(m.gauges, g)
	return g
}

// Timer returns the timer registered under name, creating it on first use.
func (m *Metrics) Timer(name string) *Timer {
	for _, t := range m.timers {
		if t.name == name {
			return t
		}
	}
	t := &Timer{name: name}
	m.timers = append(m.timers, t)
	return t
}

// WriteText renders a deterministic summary block: every metric on one
// line, sorted by name within its kind, timers followed by their non-empty
// buckets.
func (m *Metrics) WriteText(w io.Writer) error {
	counters := append([]*Counter(nil), m.counters...)
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	gauges := append([]*Gauge(nil), m.gauges...)
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	timers := append([]*Timer(nil), m.timers...)
	sort.Slice(timers, func(i, j int) bool { return timers[i].name < timers[j].name })

	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "counter %-28s %d\n", c.name, c.n); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "gauge   %-28s %s (max %s)\n",
			g.name, fmtG(g.last), fmtG(g.max)); err != nil {
			return err
		}
	}
	for _, t := range timers {
		if _, err := fmt.Fprintf(w, "timer   %-28s count %d  mean %s  min %s  max %s\n",
			t.name, t.count, fmtG(t.Mean()), fmtG(t.min), fmtG(t.max)); err != nil {
			return err
		}
		for i, n := range t.buckets {
			if n == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "        %-28s %d\n", bucketLabel(i), n); err != nil {
				return err
			}
		}
	}
	return nil
}

// bucketLabel renders the half-open range of timer bucket i.
func bucketLabel(i int) string {
	if i == 0 {
		return "  [0, 1)"
	}
	lo := math.Ldexp(1, i-1)
	hi := math.Ldexp(1, i)
	return fmt.Sprintf("  [%s, %s)", fmtG(lo), fmtG(hi))
}

// fmtG renders a float in shortest-roundtrip form — the same formatting
// the trace sink uses, so metric and trace output agree byte for byte.
func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
