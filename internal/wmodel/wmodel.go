// Package wmodel implements a parametric rigid-job workload model in the
// style of Lublin and Feitelson ("The workload on parallel supercomputers:
// modeling the characteristics of rigid jobs", JPDC 2003) — the standard
// alternative to trace-driven workloads in this literature (the paper's
// reference [10], Chiang & Vernon, characterizes a comparable production
// workload). It generates job sizes, runtimes and arrival times from
// calibratable distributions:
//
//   - sizes: a serial fraction, plus parallel sizes whose log2 follows a
//     two-stage uniform distribution, rounded to integers with a
//     configurable preference for powers of two;
//   - runtimes: a hyper-gamma mixture whose mixing probability depends
//     linearly on the job's log2 size (bigger jobs run longer);
//   - arrivals: exponential gaps modulated by a daily cycle.
//
// The default parameters are calibrated to produce a DAS-like mix (mean
// size ~24 on a 128-processor machine, strongly right-skewed runtimes);
// they are NOT the exact published Lublin-Feitelson constants — the model
// here is a substrate for sensitivity studies, not a claim about any
// specific machine. All outputs are deterministic in the seed.
package wmodel

import (
	"fmt"
	"math"

	"coalloc/internal/dastrace"
	"coalloc/internal/dist"
	"coalloc/internal/rng"
)

// Config parameterizes the model.
type Config struct {
	// MaxProcs is the machine size; sizes are clamped to [1, MaxProcs].
	MaxProcs int
	// SerialProb is the fraction of single-processor jobs.
	SerialProb float64
	// Log2Low, Log2Med, Log2High and Log2Prob define the two-stage
	// uniform distribution of log2(size) for parallel jobs: uniform on
	// [Log2Low, Log2Med] with probability Log2Prob, else on
	// [Log2Med, Log2High].
	Log2Low, Log2Med, Log2High float64
	Log2Prob                   float64
	// PowerOfTwoProb is the probability that a parallel size is rounded
	// to the nearest power of two rather than the nearest integer.
	PowerOfTwoProb float64
	// Runtime hyper-gamma mixture: component 1 (short jobs) and
	// component 2 (long jobs), mixed with probability p(size) =
	// clamp(MixSlope*log2(size) + MixIntercept) of drawing component 1.
	Shape1, Rate1, Shape2, Rate2 float64
	MixSlope, MixIntercept       float64
	// MaxRuntime clamps runtimes (0 = no clamp).
	MaxRuntime float64
	// ArrivalRate is the mean arrival rate in jobs per second, before
	// the daily cycle is applied.
	ArrivalRate float64
	// DailyCycle gives 24 relative hourly arrival intensities; nil
	// disables the cycle. The intensities are normalized to mean 1.
	DailyCycle []float64
}

// Default returns the DAS-like calibration for a 128-processor machine.
func Default() Config {
	return Config{
		MaxProcs:       128,
		SerialProb:     0.09,
		Log2Low:        0.5,
		Log2Med:        4.5,
		Log2High:       7.0,
		Log2Prob:       0.70,
		PowerOfTwoProb: 0.75,
		Shape1:         0.9,
		Rate1:          0.02, // mean 45 s: the short-job mass
		Shape2:         1.2,
		Rate2:          0.002, // mean 600 s: the tail
		MixSlope:       -0.05,
		MixIntercept:   0.85,
		MaxRuntime:     43200, // 12 h
		ArrivalRate:    39356.0 / (90 * 24 * 3600),
		DailyCycle:     defaultDailyCycle(),
	}
}

// defaultDailyCycle peaks during working hours, as production logs do.
func defaultDailyCycle() []float64 {
	cycle := make([]float64, 24)
	for h := range cycle {
		switch {
		case h >= 9 && h < 18:
			cycle[h] = 2.2
		case h >= 7 && h < 9, h >= 18 && h < 22:
			cycle[h] = 1.0
		default:
			cycle[h] = 0.35
		}
	}
	return cycle
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.MaxProcs < 1:
		return fmt.Errorf("wmodel: MaxProcs %d", c.MaxProcs)
	case c.SerialProb < 0 || c.SerialProb > 1:
		return fmt.Errorf("wmodel: SerialProb %g", c.SerialProb)
	case !(c.Log2Low <= c.Log2Med && c.Log2Med <= c.Log2High):
		return fmt.Errorf("wmodel: log2 stages %g <= %g <= %g violated", c.Log2Low, c.Log2Med, c.Log2High)
	case c.Log2Prob < 0 || c.Log2Prob > 1:
		return fmt.Errorf("wmodel: Log2Prob %g", c.Log2Prob)
	case c.PowerOfTwoProb < 0 || c.PowerOfTwoProb > 1:
		return fmt.Errorf("wmodel: PowerOfTwoProb %g", c.PowerOfTwoProb)
	case c.Shape1 <= 0 || c.Rate1 <= 0 || c.Shape2 <= 0 || c.Rate2 <= 0:
		return fmt.Errorf("wmodel: hyper-gamma parameters must be positive")
	case c.ArrivalRate <= 0:
		return fmt.Errorf("wmodel: ArrivalRate %g", c.ArrivalRate)
	case c.DailyCycle != nil && len(c.DailyCycle) != 24:
		return fmt.Errorf("wmodel: DailyCycle has %d entries, want 24", len(c.DailyCycle))
	}
	return nil
}

// Model samples jobs. Obtain one from New.
type Model struct {
	cfg   Config
	g1    dist.Gamma
	g2    dist.Gamma
	cycle []float64 // normalized hourly intensities
}

// New validates the configuration and returns a model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg: cfg,
		g1:  dist.NewGamma(cfg.Shape1, cfg.Rate1),
		g2:  dist.NewGamma(cfg.Shape2, cfg.Rate2),
	}
	if cfg.DailyCycle != nil {
		var sum float64
		for _, v := range cfg.DailyCycle {
			if v < 0 {
				return nil, fmt.Errorf("wmodel: negative cycle intensity %g", v)
			}
			sum += v
		}
		if sum == 0 {
			return nil, fmt.Errorf("wmodel: daily cycle is identically zero")
		}
		m.cycle = make([]float64, 24)
		for h, v := range cfg.DailyCycle {
			m.cycle[h] = v * 24 / sum
		}
	}
	return m, nil
}

// SampleSize draws a job size in [1, MaxProcs].
func (m *Model) SampleSize(r *rng.Stream) int {
	if r.Float64() < m.cfg.SerialProb {
		return 1
	}
	var l2 float64
	if r.Float64() < m.cfg.Log2Prob {
		l2 = m.cfg.Log2Low + (m.cfg.Log2Med-m.cfg.Log2Low)*r.Float64()
	} else {
		l2 = m.cfg.Log2Med + (m.cfg.Log2High-m.cfg.Log2Med)*r.Float64()
	}
	var size int
	if r.Float64() < m.cfg.PowerOfTwoProb {
		size = 1 << uint(math.Round(l2))
	} else {
		size = int(math.Round(math.Exp2(l2)))
	}
	if size < 1 {
		size = 1
	}
	if size > m.cfg.MaxProcs {
		size = m.cfg.MaxProcs
	}
	return size
}

// SampleRuntime draws a runtime in seconds for a job of the given size.
func (m *Model) SampleRuntime(r *rng.Stream, size int) float64 {
	p := m.cfg.MixSlope*math.Log2(float64(size)+1) + m.cfg.MixIntercept
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	var t float64
	if r.Float64() < p {
		t = m.g1.Sample(r)
	} else {
		t = m.g2.Sample(r)
	}
	if t < 1 {
		t = 1
	}
	if m.cfg.MaxRuntime > 0 && t > m.cfg.MaxRuntime {
		t = m.cfg.MaxRuntime
	}
	return t
}

// NextGap draws the next interarrival gap given the current time of day,
// thinning the base exponential process by the hourly intensity.
func (m *Model) NextGap(r *rng.Stream, now float64) float64 {
	if m.cycle == nil {
		return r.Exp(m.cfg.ArrivalRate)
	}
	// Thinning: propose gaps from the peak-rate exponential process and
	// accept with probability intensity(hour)/peak.
	peak := 0.0
	for _, v := range m.cycle {
		if v > peak {
			peak = v
		}
	}
	t := now
	for {
		t += r.Exp(m.cfg.ArrivalRate * peak)
		hour := int(math.Mod(t, 86400) / 3600)
		if hour < 0 {
			hour += 24
		}
		if hour > 23 {
			hour = 23
		}
		if r.Float64()*peak < m.cycle[hour] {
			return t - now
		}
	}
}

// Generate produces a job log of n records, compatible with the rest of
// the toolchain (SWF output, replay, distribution derivation).
func (m *Model) Generate(n int, seed uint64) []dastrace.Record {
	if n <= 0 {
		panic(fmt.Sprintf("wmodel: Generate(%d)", n))
	}
	src := rng.NewSource(seed)
	arr := src.Stream("wmodel/arrivals")
	sizes := src.Stream("wmodel/sizes")
	times := src.Stream("wmodel/runtimes")
	recs := make([]dastrace.Record, n)
	var now float64
	for i := range recs {
		now += m.NextGap(arr, now)
		size := m.SampleSize(sizes)
		recs[i] = dastrace.Record{
			ID:      i + 1,
			Submit:  now,
			Size:    size,
			Service: m.SampleRuntime(times, size),
		}
	}
	return recs
}
