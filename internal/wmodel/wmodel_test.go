package wmodel

import (
	"math"
	"testing"

	"coalloc/internal/rng"
	"coalloc/internal/stats"
)

func defaultModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	def := Default()
	if err := def.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.MaxProcs = 0 },
		func(c *Config) { c.SerialProb = 1.5 },
		func(c *Config) { c.Log2Med = c.Log2High + 1 },
		func(c *Config) { c.Log2Prob = -0.1 },
		func(c *Config) { c.PowerOfTwoProb = 2 },
		func(c *Config) { c.Shape1 = 0 },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.DailyCycle = []float64{1, 2} },
	}
	for i, f := range bad {
		c := Default()
		f(&c)
		if _, err := New(c); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	c := Default()
	c.DailyCycle = make([]float64, 24) // all zero
	if _, err := New(c); err == nil {
		t.Error("zero cycle accepted")
	}
	c = Default()
	c.DailyCycle[3] = -1
	if _, err := New(c); err == nil {
		t.Error("negative intensity accepted")
	}
}

func TestSizesInRangeAndSkewed(t *testing.T) {
	m := defaultModel(t)
	r := rng.NewStream(1)
	c := stats.NewIntCounter()
	for i := 0; i < 50000; i++ {
		s := m.SampleSize(r)
		if s < 1 || s > 128 {
			t.Fatalf("size %d out of range", s)
		}
		c.Add(s)
	}
	if mean := c.Mean(); mean < 5 || mean > 50 {
		t.Errorf("mean size %.1f implausible", mean)
	}
	// Powers of two dominate.
	var powMass float64
	for p := 1; p <= 128; p *= 2 {
		powMass += c.Fraction(p)
	}
	if powMass < 0.5 {
		t.Errorf("power-of-two mass %.2f, want the model's strong preference", powMass)
	}
	// Serial fraction near the configured value.
	if f := c.Fraction(1); math.Abs(f-Default().SerialProb) > 0.1 {
		t.Errorf("serial fraction %.3f", f)
	}
}

func TestRuntimesPositiveBoundedSkewed(t *testing.T) {
	m := defaultModel(t)
	r := rng.NewStream(2)
	var w stats.Welford
	for i := 0; i < 50000; i++ {
		rt := m.SampleRuntime(r, 1+i%128)
		if rt < 1 || rt > Default().MaxRuntime {
			t.Fatalf("runtime %g out of [1, %g]", rt, Default().MaxRuntime)
		}
		w.Add(rt)
	}
	if w.Mean() < 10 || w.Mean() > 2000 {
		t.Errorf("mean runtime %.1f implausible", w.Mean())
	}
	if w.CV() < 1 {
		t.Errorf("runtime CV %.2f; production runtimes are highly variable", w.CV())
	}
}

func TestBiggerJobsRunLonger(t *testing.T) {
	m := defaultModel(t)
	r := rng.NewStream(3)
	var small, large stats.Welford
	for i := 0; i < 40000; i++ {
		small.Add(m.SampleRuntime(r, 2))
		large.Add(m.SampleRuntime(r, 128))
	}
	if large.Mean() <= small.Mean() {
		t.Errorf("mean runtime of size-128 jobs %.1f not above size-2 jobs %.1f",
			large.Mean(), small.Mean())
	}
}

func TestDailyCycleShapesArrivals(t *testing.T) {
	m := defaultModel(t)
	r := rng.NewStream(4)
	counts := make([]int, 24)
	var now float64
	for i := 0; i < 200000; i++ {
		now += m.NextGap(r, now)
		hour := int(math.Mod(now, 86400) / 3600)
		counts[hour]++
	}
	day := 0
	night := 0
	for h := 9; h < 18; h++ {
		day += counts[h]
	}
	for h := 0; h < 6; h++ {
		night += counts[h]
	}
	// 9 working hours at intensity 2.2 vs 6 night hours at 0.35:
	// the per-hour ratio should be large.
	perDay := float64(day) / 9
	perNight := float64(night) / 6
	if perDay < 3*perNight {
		t.Errorf("working-hour rate %.0f not well above night rate %.0f", perDay, perNight)
	}
}

func TestNoCycleIsPlainPoisson(t *testing.T) {
	c := Default()
	c.DailyCycle = nil
	m, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewStream(5)
	var w stats.Welford
	for i := 0; i < 100000; i++ {
		w.Add(m.NextGap(r, 0))
	}
	want := 1 / c.ArrivalRate
	if math.Abs(w.Mean()-want)/want > 0.02 {
		t.Errorf("mean gap %.1f, want %.1f", w.Mean(), want)
	}
	if math.Abs(w.CV()-1) > 0.03 {
		t.Errorf("gap CV %.3f, want 1 (exponential)", w.CV())
	}
}

func TestThinningPreservesMeanRate(t *testing.T) {
	m := defaultModel(t)
	r := rng.NewStream(6)
	var now float64
	const n = 100000
	for i := 0; i < n; i++ {
		now += m.NextGap(r, now)
	}
	gotRate := n / now
	want := Default().ArrivalRate
	if math.Abs(gotRate-want)/want > 0.05 {
		t.Errorf("overall rate %.6f, want %.6f", gotRate, want)
	}
}

func TestGenerateRecords(t *testing.T) {
	m := defaultModel(t)
	recs := m.Generate(5000, 7)
	if len(recs) != 5000 {
		t.Fatalf("%d records", len(recs))
	}
	prev := 0.0
	for i, r := range recs {
		if r.ID != i+1 || r.Submit < prev || r.Size < 1 || r.Service <= 0 {
			t.Fatalf("bad record %+v", r)
		}
		prev = r.Submit
	}
	// Determinism.
	again := m.Generate(5000, 7)
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatal("Generate is not deterministic in the seed")
		}
	}
	other := m.Generate(5000, 8)
	same := 0
	for i := range recs {
		if recs[i].Size == other[i].Size {
			same++
		}
	}
	if same == len(recs) {
		t.Error("different seeds gave identical sizes")
	}
}

func TestGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate(0) did not panic")
		}
	}()
	defaultModel(t).Generate(0, 1)
}
