package policies

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/obs"
	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

// consStream drives one Conservative policy through a random engine-like
// event stream — arrivals, exact-time departures, departure/arrival ties,
// and early departures — and returns the dispatch log (job, time,
// placement, in order) plus the metrics summary. The stream derives from
// the seed and the policy's own decisions, so two runs that behave
// identically consume the generator identically; any behavioral divergence
// surfaces as a dispatch-log mismatch.
func consStream(t *testing.T, seed uint64, lookahead int) (string, string) {
	t.Helper()
	r := rng.NewStream(seed)
	nc := 1 + r.Intn(4)
	size := 16 + r.Intn(17)
	sizes := make([]int, nc)
	for i := range sizes {
		sizes[i] = size
	}
	ctx := newMockCtx(sizes...)
	ctx.obs = obs.New(nil)
	var p *Conservative
	if nc == 1 {
		p = NewSCConservative(lookahead)
	} else {
		p = NewConservative([]cluster.Fit{cluster.WorstFit, cluster.BestFit, cluster.FirstFit}[r.Intn(3)], lookahead)
	}

	finish := map[*workload.Job]float64{}
	var log strings.Builder
	logged := 0
	record := func() {
		for ; logged < len(ctx.dispatched); logged++ {
			j := ctx.dispatched[logged]
			finish[j] = ctx.now + j.ExtendedServiceTime
			fmt.Fprintf(&log, "%d@%g%v\n", j.ID, ctx.now, j.Placement)
		}
	}
	var nextID int64
	submit := func() {
		nextID++
		n := 1 + r.Intn(nc)
		comps := make([]int, n)
		for i := range comps {
			comps[i] = 1 + r.Intn(size)
		}
		for i := 1; i < n; i++ {
			if comps[i] > comps[i-1] {
				comps[i] = comps[i-1]
			}
		}
		p.Submit(ctx, svcJob(nextID, 1+r.Float64()*100, comps...))
	}

	for step := 0; step < 200; step++ {
		var dj *workload.Job
		dt := math.Inf(1)
		for j, f := range finish {
			if f < dt || (f == dt && j.ID < dj.ID) {
				dj, dt = j, f
			}
		}
		if dj != nil && r.Float64() < 0.10 {
			// Early departure: releaseEarly plus full-pass invalidation.
			run := make([]*workload.Job, 0, len(finish))
			for j := range finish {
				run = append(run, j)
			}
			sort.Slice(run, func(a, b int) bool { return run[a].ID < run[b].ID })
			ej := run[r.Intn(len(run))]
			if f := finish[ej]; f > ctx.now {
				ctx.now += r.Float64() * (math.Min(dt, f) - ctx.now)
			}
			delete(finish, ej)
			ctx.finish(p, ej)
			record()
			continue
		}
		if dj == nil || (p.Queued() < 3*lookahead && r.Float64() < 0.6) {
			// Arrival; sometimes exactly at the next finish (the FIFO event
			// tie where the overdue-departure guard must force a full pass).
			if dj != nil && r.Float64() < 0.2 {
				ctx.now = dt
			} else if dj != nil {
				ctx.now += r.Float64() * (dt - ctx.now)
			} else {
				ctx.now += r.Float64() * 20
			}
			submit()
			record()
		} else {
			ctx.now = dt
			delete(finish, dj)
			ctx.finish(p, dj)
			record()
		}
	}

	var metrics strings.Builder
	if err := ctx.obs.WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	return log.String(), metrics.String()
}

// stripElisionMetrics removes the sched.passes_skipped and
// sched.passes_repaired lines — the only metrics allowed to differ between
// elided and full-pass runs.
func stripElisionMetrics(s string) string {
	lines := strings.Split(s, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.Contains(l, "sched.passes_skipped") || strings.Contains(l, "sched.passes_repaired") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// TestConservativeElisionEquivalence pins the retained-reservation fast
// pass bit-identical to the full re-derivation: for random event streams
// and every lookahead regime (1 = head-only, small values that force
// constant window slide-in, and the default), the dispatch sequence (job,
// time, placement) and every scheduler counter except sched.passes_skipped
// must match between elision off and on.
func TestConservativeElisionEquivalence(t *testing.T) {
	for _, lookahead := range []int{1, 2, 4, DefaultLookahead} {
		for seed := uint64(1); seed <= 12; seed++ {
			prev := SetPassElision(false)
			logOff, metOff := consStream(t, seed, lookahead)
			SetPassElision(true)
			logOn, metOn := consStream(t, seed, lookahead)
			SetPassElision(prev)
			if logOff != logOn {
				t.Fatalf("lookahead %d seed %d: dispatch logs diverge\n--- full passes ---\n%s--- elided ---\n%s",
					lookahead, seed, logOff, logOn)
			}
			if a, b := stripElisionMetrics(metOff), stripElisionMetrics(metOn); a != b {
				t.Fatalf("lookahead %d seed %d: metrics diverge\n--- full passes ---\n%s\n--- elided ---\n%s",
					lookahead, seed, a, b)
			}
			if !strings.Contains(metOn, "sched.passes_skipped") {
				t.Fatalf("lookahead %d seed %d: elided run skipped no passes", lookahead, seed)
			}
		}
	}
}
