package policies

import (
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/workload"
)

func orderedJob(id int64, comps, placement []int) *workload.Job {
	total := 0
	for _, c := range comps {
		total += c
	}
	return &workload.Job{
		ID: id, TotalSize: total, Components: comps,
		Type: workload.Ordered, OrderedPlacement: placement,
	}
}

func flexJob(id int64, total int) *workload.Job {
	return &workload.Job{
		ID: id, TotalSize: total, Components: []int{total},
		Type: workload.Flexible, ServiceTime: 1, ExtendedServiceTime: 1,
	}
}

func totalJob(id int64, total int) *workload.Job {
	return &workload.Job{
		ID: id, TotalSize: total, Components: []int{total}, Type: workload.Total,
	}
}

func TestGSOrderedUsesFixedClusters(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	j := orderedJob(1, []int{16, 8}, []int{3, 1})
	p.Submit(ctx, j)
	wantIDs(t, ctx.ids(), 1)
	if j.Placement[0] != 3 || j.Placement[1] != 1 {
		t.Errorf("ordered job placed on %v, want [3 1]", j.Placement)
	}
}

func TestGSOrderedBlocksOnItsCluster(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	hog := mj(1, 0, 32) // Worst Fit puts it on cluster 0
	p.Submit(ctx, hog)
	target := hog.Placement[0]
	// An ordered job naming the busy cluster must wait, even though
	// three other clusters are idle.
	j := orderedJob(2, []int{8}, []int{target})
	p.Submit(ctx, j)
	wantIDs(t, ctx.ids(), 1)
	ctx.finish(p, hog)
	wantIDs(t, ctx.ids(), 1, 2)
}

func TestGSFlexibleSpansClusters(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	j := flexJob(1, 100) // needs 4 clusters: 32+32+32+4
	p.Submit(ctx, j)
	wantIDs(t, ctx.ids(), 1)
	if len(j.Components) != 4 {
		t.Errorf("flexible split %v", j.Components)
	}
	sum := 0
	for _, c := range j.Components {
		sum += c
	}
	if sum != 100 {
		t.Errorf("split %v sums to %d", j.Components, sum)
	}
}

func TestGSFlexibleFitsWhereUnorderedCannot(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	// Leave idle (12, 12, 12, 12): an unordered request (16, 16) split
	// under limit 16 cannot fit, but a flexible request of 32 can.
	for c := 0; c < 4; c++ {
		ctx.m.Alloc([]int{20}, []int{c})
	}
	u := mj(1, 0, 16, 16)
	p.Submit(ctx, u)
	if len(ctx.ids()) != 0 {
		t.Fatal("unordered (16,16) should not fit on (12,12,12,12)")
	}
	// Drain the queue for the flexible test: new policy instance.
	p2 := NewGS(cluster.WorstFit)
	f := flexJob(2, 32)
	p2.Submit(ctx, f)
	if len(ctx.ids()) != 1 || ctx.dispatched[0].ID != 2 {
		t.Fatalf("flexible 32 should fit: dispatched %v", ctx.ids())
	}
}

func TestGSTotalNeedsOneCluster(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	// 33 processors exist in aggregate but no single cluster has them.
	j := totalJob(1, 33)
	p.Submit(ctx, j)
	if len(ctx.ids()) != 0 {
		t.Error("total request of 33 started on 32-processor clusters")
	}
	j2 := totalJob(2, 32)
	p.Submit(ctx, j2)
	// FCFS: job 2 is behind the unschedulable job 1 and must wait
	// forever — exactly why total requests need a size cap.
	if len(ctx.ids()) != 0 {
		t.Error("FCFS let job 2 pass the blocked head")
	}
}
