package policies

import (
	"math"
	"testing"
	"testing/quick"

	"coalloc/internal/cluster"
	"coalloc/internal/rng"
)

// --- profile unit tests ---

func TestProfileFromRunning(t *testing.T) {
	m := cluster.New([]int{32, 32})
	m.Alloc([]int{16, 8}, []int{0, 1})
	running := []runInfo{
		{finish: 10, comps: []int{16}, placement: []int{0}},
		{finish: 20, comps: []int{8}, placement: []int{1}},
	}
	p := newProfile(m, 0, running)
	// Segments: [0,10): (16,24); [10,20): (32,24); [20,inf): (32,32).
	if p.n != 3 {
		t.Fatalf("segments %d, want 3", p.n)
	}
	if s := p.seg(0); s[0] != 16 || s[1] != 24 {
		t.Errorf("segment 0 idle %v", s)
	}
	if s := p.seg(1); s[0] != 32 || s[1] != 24 {
		t.Errorf("segment 1 idle %v", s)
	}
	if s := p.seg(2); s[0] != 32 || s[1] != 32 {
		t.Errorf("segment 2 idle %v", s)
	}
}

func TestProfileEarliestStart(t *testing.T) {
	m := cluster.New([]int{32, 32})
	m.Alloc([]int{32}, []int{0})
	running := []runInfo{{finish: 100, comps: []int{32}, placement: []int{0}}}
	p := newProfile(m, 0, running)
	// (16,16) needs both clusters: earliest at t=100.
	tm, placement := p.earliestStart([]int{16, 16}, 50, cluster.WorstFit)
	if tm != 100 || len(placement) != 2 {
		t.Errorf("earliest start %g, placement %v", tm, placement)
	}
	// A single 16 fits immediately on cluster 1.
	tm, placement = p.earliestStart([]int{16}, 50, cluster.WorstFit)
	if tm != 0 || placement[0] != 1 {
		t.Errorf("immediate start %g on %v", tm, placement)
	}
	// A 33-wide component never fits.
	tm, _ = p.earliestStart([]int{33}, 1, cluster.WorstFit)
	if !math.IsInf(tm, 1) {
		t.Errorf("impossible component starts at %g", tm)
	}
}

func TestProfileReserveCarvesWindow(t *testing.T) {
	m := cluster.New([]int{32}) // one cluster, all idle
	p := newProfile(m, 0, nil)
	p.reserve([]int{20}, []int{0}, 50, 25) // occupy [50, 75)
	// A 20-wide job of duration 50 no longer fits at t=0 (would overlap
	// the reservation at 50); earliest start where a 40-wide total...
	// 20+20 > 32 in [50,75).
	tm, _ := p.earliestStart([]int{20}, 100, cluster.WorstFit)
	if tm != 75 {
		t.Errorf("long job starts at %g, want 75 (after the reservation)", tm)
	}
	// A short job that ends by t=50 backfills at once.
	tm, _ = p.earliestStart([]int{20}, 50, cluster.WorstFit)
	if tm != 0 {
		t.Errorf("short job starts at %g, want 0", tm)
	}
	// A 12-wide job fits alongside the 20-wide reservation at any time.
	tm, _ = p.earliestStart([]int{12}, 1000, cluster.WorstFit)
	if tm != 0 {
		t.Errorf("narrow job starts at %g, want 0", tm)
	}
}

func TestProfileReservePanicsOnOverlap(t *testing.T) {
	m := cluster.New([]int{32})
	p := newProfile(m, 0, nil)
	p.reserve([]int{20}, []int{0}, 0, 10)
	defer func() {
		if recover() == nil {
			t.Error("over-reservation did not panic")
		}
	}()
	p.reserve([]int{20}, []int{0}, 5, 10)
}

// TestProfileRandomConsistency: reservations never drive idle negative and
// earliestStart always returns a feasible window.
func TestProfileRandomConsistency(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		m := cluster.Uniform(1+r.Intn(4), 16+r.Intn(32))
		p := newProfile(m, 0, nil)
		for step := 0; step < 40; step++ {
			n := 1 + r.Intn(m.NumClusters())
			comps := make([]int, n)
			for i := range comps {
				comps[i] = 1 + r.Intn(16)
			}
			for i := 1; i < n; i++ {
				if comps[i] > comps[i-1] {
					comps[i] = comps[i-1]
				}
			}
			dur := 1 + r.Float64()*100
			tm, placement := p.earliestStart(comps, dur, cluster.WorstFit)
			if math.IsInf(tm, 1) {
				continue
			}
			// The returned window must be feasible: reserve panics
			// otherwise.
			p.reserve(comps, placement, tm, dur)
		}
		for s := 0; s < p.n; s++ {
			for _, v := range p.seg(s) {
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// --- policy behavior ---

func TestConservativeBackfillsWithoutDelayingAnyReservation(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCConservative(DefaultLookahead)
	p.Submit(ctx, svcJob(1, 100, 20)) // runs; 12 idle
	p.Submit(ctx, svcJob(2, 50, 32))  // reserved at t=100
	p.Submit(ctx, svcJob(3, 10, 30))  // reserved at t=150 (after job 2)
	// Job 4: 10 procs for 80 s ends at t=80 <= 100: backfills.
	p.Submit(ctx, svcJob(4, 80, 10))
	wantIDs(t, ctx.ids(), 1, 4)
	// Job 5: 10 procs for 200 s would delay job 2: only reserved.
	p.Submit(ctx, svcJob(5, 200, 10))
	wantIDs(t, ctx.ids(), 1, 4)
	if p.Queued() != 3 {
		t.Errorf("queued %d, want 3", p.Queued())
	}
}

// In EASY, a candidate may delay the THIRD job as long as the head is
// protected; conservative backfilling must refuse such a candidate.
func TestConservativeStricterThanEASY(t *testing.T) {
	// Scenario on one 32-processor cluster:
	//   job1: 24 procs, 100 s  (runs; 8 idle)
	//   job2: 16 procs, 10 s   (head; blocked, reserved at t=100)
	//   job3: 16 procs, 10 s   (fits beside job2's reservation: also
	//                           reserved at t=100 — 16+16 = 32)
	//   job4:  8 procs, 150 s  (fits now and leaves the HEAD's t=100
	//                           start intact, but at t=100 only
	//                           32-8 = 24 processors are free, so job3
	//                           would slip to t=110)
	// EASY protects only the head and backfills job4; conservative
	// backfilling protects job3's reservation and refuses.
	easyCtx := newMockCtx(32)
	easy := NewSCEASY()
	consCtx := newMockCtx(32)
	cons := NewSCConservative(DefaultLookahead)
	jobs := [][2]float64{ // {service, size}
		{100, 24},
		{10, 16},
		{10, 16},
		{150, 8},
	}
	for i, spec := range jobs {
		easy.Submit(easyCtx, svcJob(int64(i+1), spec[0], int(spec[1])))
		cons.Submit(consCtx, svcJob(int64(i+1), spec[0], int(spec[1])))
	}
	wantIDs(t, easyCtx.ids(), 1, 4) // EASY backfills job 4
	wantIDs(t, consCtx.ids(), 1)    // conservative protects job 3
}

func TestConservativeFCFSWhenNothingBackfills(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCConservative(DefaultLookahead)
	j1 := svcJob(1, 10, 32)
	p.Submit(ctx, j1)
	p.Submit(ctx, svcJob(2, 10, 32))
	p.Submit(ctx, svcJob(3, 10, 32))
	wantIDs(t, ctx.ids(), 1)
	ctx.finish(p, j1)
	wantIDs(t, ctx.ids(), 1, 2)
}

func TestConservativeImpossibleJobDoesNotBlockOthers(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCConservative(DefaultLookahead)
	// An impossible job (33 procs) holds no reservation; unlike FCFS
	// and EASY, conservative backfilling schedules around it.
	p.Submit(ctx, svcJob(1, 10, 33))
	p.Submit(ctx, svcJob(2, 10, 8))
	wantIDs(t, ctx.ids(), 2)
	if p.Queued() != 1 {
		t.Errorf("queued %d", p.Queued())
	}
}

func TestConservativeMulticluster(t *testing.T) {
	ctx := newMockCtx()
	p := NewConservative(cluster.WorstFit, DefaultLookahead)
	p.Submit(ctx, svcJob(1, 100, 32, 32, 32))    // 1 cluster free
	p.Submit(ctx, svcJob(2, 10, 32, 32, 32, 32)) // whole system, t=125
	p.Submit(ctx, svcJob(3, 10, 16))             // backfills now
	wantIDs(t, ctx.ids(), 1, 3)
	if p.Name() != "GS-CONS" {
		t.Error("name")
	}
}

func TestConservativeQueuedAt(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCConservative(DefaultLookahead)
	p.Submit(ctx, svcJob(1, 10, 32))
	p.Submit(ctx, svcJob(2, 10, 32))
	if p.QueuedAt(-1) != 1 || p.QueuedAt(0) != 0 {
		t.Error("QueuedAt")
	}
}
