// Package policies implements the four scheduling policies the paper
// evaluates: GS (one global queue), LS (one local queue per cluster, all
// jobs submitted locally), LP (local queues for single-component jobs with
// priority over a global queue holding the multi-component jobs), and SC
// (the single-cluster FCFS reference, which is GS on a one-cluster system).
//
// All queues are FCFS. The policies decide when a queue may start its head
// job and on which clusters; the simulator (package core) owns the clock,
// performs the allocation, and schedules the departure.
package policies

import (
	"coalloc/internal/cluster"
	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

// Ctx is the slice of the simulator a policy sees: the processors, and a
// way to start a job. Dispatch must allocate components[i] processors on
// cluster placement[i] and schedule the job's departure.
type Ctx interface {
	// Cluster returns the multicluster state.
	Cluster() *cluster.Multicluster
	// Now returns the current virtual time in seconds.
	Now() float64
	// Dispatch starts the job on the given placement now.
	Dispatch(j *workload.Job, placement []int)
	// Obs returns the run's observer, or nil when observability is off.
	// Policies report scheduling passes, head-of-queue misses and
	// backfill decisions into it; all observer methods are nil-safe.
	Obs() *obs.Observer
}

// ObserverSetter is implemented by policies with internal state that
// reports into the observer directly (the enable/disable bookkeeping of
// LS and LP). The simulator wires the run observer through it after
// building the policy.
type ObserverSetter interface {
	SetObserver(o *obs.Observer)
}

// Policy is a co-allocation scheduling policy. Implementations are not safe
// for concurrent use; a simulation run is single-threaded.
type Policy interface {
	// Name returns the paper's abbreviation (GS, LS, LP, SC).
	Name() string
	// Submit enqueues an arriving job and performs a scheduling pass.
	// For multi-queue policies the job's Queue field selects the local
	// queue; policies with a global queue overwrite Queue for jobs they
	// route globally.
	Submit(ctx Ctx, j *workload.Job)
	// JobDeparted tells the policy that a job released its processors;
	// the policy re-enables queues per its rules and performs a
	// scheduling pass.
	JobDeparted(ctx Ctx, j *workload.Job)
	// Queued returns the total number of waiting jobs.
	Queued() int
	// QueuedAt returns the number of waiting jobs in the given queue;
	// use workload.GlobalQueue for the global queue. Policies without
	// that queue return 0.
	QueuedAt(q int) int
}
