// Package policies implements the four scheduling policies the paper
// evaluates: GS (one global queue), LS (one local queue per cluster, all
// jobs submitted locally), LP (local queues for single-component jobs with
// priority over a global queue holding the multi-component jobs), and SC
// (the single-cluster FCFS reference, which is GS on a one-cluster system).
//
// All queues are FCFS. The policies decide when a queue may start its head
// job and on which clusters; the simulator (package core) owns the clock,
// performs the allocation, and schedules the departure.
package policies

import (
	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

// Ctx is the slice of the simulator a policy sees: the processors, and a
// way to start a job. Dispatch must allocate components[i] processors on
// cluster placement[i] and schedule the job's departure.
type Ctx interface {
	// Cluster returns the multicluster state.
	Cluster() *cluster.Multicluster
	// Now returns the current virtual time in seconds.
	Now() float64
	// Dispatch starts the job on the given placement now. The placement
	// slice may point into shared scratch (see Scratch): Dispatch must
	// copy it before retaining, and must leave j.Placement holding a
	// stable copy that stays valid for the job's lifetime — the
	// backfilling policies read it back for their reservation records.
	Dispatch(j *workload.Job, placement []int)
	// Obs returns the run's observer, or nil when observability is off.
	// Policies report scheduling passes, head-of-queue misses and
	// backfill decisions into it; all observer methods are nil-safe.
	Obs() *obs.Observer
	// Dec returns the run's decision tracer, or nil when decision
	// tracing is off. Policies report the counterfactual side of their
	// decisions into it — head misses with feasible unchosen placements,
	// reservations with the alternatives the profile offered, rejected
	// backfill candidates; all tracer methods are nil-safe.
	Dec() *dectrace.Tracer
	// Scratch returns the run's shared scheduling scratch buffers.
	// Exactly one policy pass runs at a time (a simulation run is
	// single-threaded), so one set per run suffices.
	Scratch() *Scratch
}

// Scratch is the bundle of reusable buffers a scheduling pass works in,
// owned by the run and handed to the policies through Ctx. It exists so
// the steady-state scheduling passes — placement probes, visit-order
// snapshots, backfill candidate collection — allocate nothing.
//
// Contents are valid only within one pass step: any placement a policy
// wants to keep must be copied (Ctx.Dispatch does exactly that).
type Scratch struct {
	// Place receives candidate placements (one entry per component; sized
	// to the cluster count, the maximum component count).
	Place []int
	// Used marks clusters taken by a partial placement (one entry per
	// cluster).
	Used []bool
	// Round snapshots a visit order for one round of a multi-queue pass.
	Round []int
	// Started collects the jobs a backfilling pass dispatched, for batch
	// removal from the queue. Cleared at the start of each pass.
	Started []*workload.Job
}

// NewScratch returns scratch buffers for a system with the given number
// of clusters.
func NewScratch(clusters int) *Scratch {
	return &Scratch{
		Place: make([]int, clusters),
		Used:  make([]bool, clusters),
		Round: make([]int, 0, clusters),
	}
}

// ObserverSetter is implemented by policies with internal state that
// reports into the observer directly (the enable/disable bookkeeping of
// LS and LP). The simulator wires the run observer through it after
// building the policy.
type ObserverSetter interface {
	SetObserver(o *obs.Observer)
}

// FaultAware is implemented by policies that tolerate fault injection
// (package faults): capacity shrinking under them, running jobs being
// aborted, and repaired processors returning. The simulator rejects fault
// configurations for policies without it.
//
// All three hooks name the affected cluster, because policies that keep a
// forecast of future idle capacity (the backfilling profile) must fold the
// capacity change into it — a failure or repair is neither an arrival nor
// a departure, so no other event repairs the forecast. Policies without
// persistent capacity state use the index only for symmetry.
//
// CapacityRestored and JobKilled carry JobDeparted's contract: queues
// disabled by head misses are re-enabled under the policy's usual ordering
// rules (disable order for LS, global-first for LP) and a scheduling pass
// runs — a repair frees a processor exactly like a departure does, and a
// kill releases the victim's processors (minus the one that failed).
// CapacityLost may skip the pass: an idle processor going down can never
// admit a queued job (placement is monotone in the idle vector), so
// FCFS-family policies no-op it and the backfilling policies only repair
// their forecast state.
type FaultAware interface {
	// CapacityLost tells the policy that a failure took one idle
	// processor of cluster c down without aborting anything.
	CapacityLost(ctx Ctx, c int)
	// CapacityRestored tells the policy that a repaired processor of
	// cluster c returned to the idle pool.
	CapacityRestored(ctx Ctx, c int)
	// JobKilled tells the policy that a failure on cluster c aborted the
	// victim job: its processors were released and the capacity of c
	// shrank by the processor the failure consumed. The victim is NOT
	// resubmitted here; it re-enters the policy through Submit when its
	// retry backoff elapses.
	JobKilled(ctx Ctx, victim *workload.Job, c int)
}

// Policy is a co-allocation scheduling policy. Implementations are not safe
// for concurrent use; a simulation run is single-threaded.
type Policy interface {
	// Name returns the paper's abbreviation (GS, LS, LP, SC).
	Name() string
	// Submit enqueues an arriving job and performs a scheduling pass.
	// For multi-queue policies the job's Queue field selects the local
	// queue; policies with a global queue overwrite Queue for jobs they
	// route globally.
	Submit(ctx Ctx, j *workload.Job)
	// JobDeparted tells the policy that a job released its processors;
	// the policy re-enables queues per its rules and performs a
	// scheduling pass.
	JobDeparted(ctx Ctx, j *workload.Job)
	// Queued returns the total number of waiting jobs.
	Queued() int
	// QueuedAt returns the number of waiting jobs in the given queue;
	// use workload.GlobalQueue for the global queue. Policies without
	// that queue return 0.
	QueuedAt(q int) int
}
