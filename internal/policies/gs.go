package policies

import (
	"coalloc/internal/cluster"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// GS is the global-scheduler policy: one global FCFS queue for single- and
// multi-component jobs alike. The scheduler knows the idle counts of every
// cluster and places components Worst Fit on distinct clusters. Under
// strict FCFS a scheduling pass stops at the first head job that does not
// fit (with a single queue, "disable until the next departure" and
// "stop the pass" coincide).
type GS struct {
	name string
	q    queues.FIFO
	fit  cluster.Fit
	// blocked is the pass-elision watermark: the last pass ended on a
	// head miss. Until capacity changes — and every departure, repair and
	// kill runs a full pass that recomputes it — the same head fails the
	// same deterministic placement, so a Submit pass is a provable no-op.
	blocked bool
}

// NewGS returns the GS policy with the given placement rule (the paper
// uses cluster.WorstFit).
func NewGS(fit cluster.Fit) *GS { return &GS{name: "GS", fit: fit} }

// NewSC returns the single-cluster FCFS reference policy. SC is GS run on
// a one-cluster system scheduling total requests; only the reported name
// differs.
func NewSC() *GS { return &GS{name: "SC", fit: cluster.WorstFit} }

// Name returns "GS" or "SC".
func (p *GS) Name() string { return p.name }

// Submit enqueues the job at the global queue and runs a scheduling pass,
// skipping it (with the head miss the unchanged head would re-emit
// compensated) when the head was already blocked and nothing released.
func (p *GS) Submit(ctx Ctx, j *workload.Job) {
	j.Queue = workload.GlobalQueue
	p.q.Push(j)
	if elidePasses && p.blocked {
		o := ctx.Obs()
		o.Pass()
		o.HeadMiss(workload.GlobalQueue)
		o.PassSkipped()
		return
	}
	p.pass(ctx)
}

// JobDeparted runs a scheduling pass; freed processors may admit the head.
func (p *GS) JobDeparted(ctx Ctx, _ *workload.Job) { p.pass(ctx) }

// CapacityLost is a no-op: GS keeps no capacity forecast, and an idle
// processor going down can never admit the head — placement is monotone in
// the idle vector (policies.FaultAware).
func (p *GS) CapacityLost(Ctx, int) {}

// CapacityRestored runs a scheduling pass: a repaired processor may admit
// the head, exactly like a departure (policies.FaultAware).
func (p *GS) CapacityRestored(ctx Ctx, _ int) { p.pass(ctx) }

// JobKilled runs a scheduling pass over the processors the aborted victim
// released (policies.FaultAware).
func (p *GS) JobKilled(ctx Ctx, _ *workload.Job, _ int) { p.pass(ctx) }

// pass starts jobs from the head of the queue while they fit.
func (p *GS) pass(ctx Ctx) {
	m := ctx.Cluster()
	o := ctx.Obs()
	s := ctx.Scratch()
	o.Pass()
	p.blocked = false
	for {
		head := p.q.Head()
		if head == nil {
			return
		}
		placement, ok := p.placeFor(m, head, s)
		if !ok {
			o.HeadMiss(workload.GlobalQueue)
			ctx.Dec().HeadMiss(ctx.Now(), head, m, p.fit)
			p.blocked = true
			return
		}
		p.q.Pop()
		ctx.Dispatch(head, placement)
	}
}

// placeFor finds processors for a job according to its request type. GS is
// the only policy supporting all four types; LS and LP are defined by the
// paper for unordered requests only. The returned placement may live in
// the pass scratch; Dispatch copies it.
func (p *GS) placeFor(m *cluster.Multicluster, j *workload.Job, s *Scratch) ([]int, bool) {
	switch j.Type {
	case workload.Ordered:
		if m.FitsOrdered(j.Components, j.OrderedPlacement) {
			return j.OrderedPlacement, true
		}
		return nil, false
	case workload.Flexible:
		components, placement, ok := m.CarveFlexible(j.TotalSize)
		if !ok {
			return nil, false
		}
		// The dispatcher recomputes the extension from this split.
		j.Components = components
		return placement, true
	default: // Unordered and Total (a single pseudo-component).
		if !m.PlaceInto(j.Components, p.fit, s.Place, s.Used) {
			return nil, false
		}
		return s.Place[:len(j.Components)], true
	}
}

// Queued returns the queue length.
func (p *GS) Queued() int { return p.q.Len() }

// QueuedAt returns the global queue length for workload.GlobalQueue and 0
// otherwise.
func (p *GS) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return p.q.Len()
	}
	return 0
}
