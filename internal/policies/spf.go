package policies

import (
	"sort"

	"coalloc/internal/cluster"
	"coalloc/internal/workload"
)

// SPF is GS with a shortest-processing-time-first queue discipline instead
// of FCFS — an extension ablation. All the paper's policies serve queues
// FCFS; SPF shows how much of the response-time gap between FCFS and
// backfilling comes purely from the service order rather than from the
// packing. Note that SPF is unfair: long jobs can be postponed
// indefinitely under sustained load, which is exactly the trade the
// experiment exposes.
//
// The discipline is non-preemptive: the pending job with the shortest
// extended service time is considered first, and the pass stops at the
// first job that does not fit (the analogue of FCFS head blocking; without
// it SPF would degenerate into best-effort packing).
type SPF struct {
	jobs []*workload.Job // kept sorted by ascending service time
	fit  cluster.Fit
	// blocked is the pass-elision watermark: the last pass ended on a
	// head miss. A Submit that inserts behind the head cannot unblock it
	// (capacity is unchanged; departures and fault events run full
	// passes), so its pass is a provable no-op.
	blocked bool
}

// NewSPF returns the shortest-processing-first global scheduler.
func NewSPF(fit cluster.Fit) *SPF { return &SPF{fit: fit} }

// Name returns "GS-SPF".
func (p *SPF) Name() string { return "GS-SPF" }

// Submit inserts the job in service-time order and runs a pass. The order
// key is the remaining time: identical to the extended service time except
// for checkpointed resubmissions, whose preserved progress makes them
// genuinely shorter.
func (p *SPF) Submit(ctx Ctx, j *workload.Job) {
	j.Queue = workload.GlobalQueue
	i := sort.Search(len(p.jobs), func(i int) bool {
		return p.jobs[i].RemainingTime() > j.RemainingTime()
	})
	p.jobs = append(p.jobs, nil)
	copy(p.jobs[i+1:], p.jobs[i:])
	p.jobs[i] = j
	if elidePasses && p.blocked && i > 0 {
		o := ctx.Obs()
		o.Pass()
		o.HeadMiss(workload.GlobalQueue)
		o.PassSkipped()
		return
	}
	p.pass(ctx)
}

// JobDeparted runs a scheduling pass.
func (p *SPF) JobDeparted(ctx Ctx, _ *workload.Job) { p.pass(ctx) }

// CapacityLost is a no-op: SPF keeps no capacity forecast, and shrinking
// the idle pool admits nothing (policies.FaultAware).
func (p *SPF) CapacityLost(Ctx, int) {}

// CapacityRestored runs a scheduling pass (policies.FaultAware).
func (p *SPF) CapacityRestored(ctx Ctx, _ int) { p.pass(ctx) }

// JobKilled runs a scheduling pass; the resubmitted victim re-enters the
// sorted queue through Submit after its backoff (policies.FaultAware).
func (p *SPF) JobKilled(ctx Ctx, _ *workload.Job, _ int) { p.pass(ctx) }

// pass starts the shortest jobs while they fit.
func (p *SPF) pass(ctx Ctx) {
	m := ctx.Cluster()
	o := ctx.Obs()
	s := ctx.Scratch()
	o.Pass()
	p.blocked = false
	for len(p.jobs) > 0 {
		head := p.jobs[0]
		if !m.PlaceInto(head.Components, p.fit, s.Place, s.Used) {
			o.HeadMiss(workload.GlobalQueue)
			ctx.Dec().HeadMiss(ctx.Now(), head, m, p.fit)
			p.blocked = true
			return
		}
		p.jobs = p.jobs[1:]
		ctx.Dispatch(head, s.Place[:len(head.Components)])
	}
}

// Queued returns the number of waiting jobs.
func (p *SPF) Queued() int { return len(p.jobs) }

// QueuedAt returns the global queue length for workload.GlobalQueue.
func (p *SPF) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return len(p.jobs)
	}
	return 0
}
