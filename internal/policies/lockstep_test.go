package policies

import (
	"math"
	"sort"
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

// TestConservativeLockstepAudit runs two Conservative policies through one
// random stream in lockstep — one forced to full passes, one with elision —
// and after every event checks (a) the dispatch decisions match exactly,
// and (b) whenever the elided policy claims its retained reservations are
// valid (resvOK), re-deriving every stored reservation from a fresh clone
// of the base profile reproduces the stored start time and placement. The
// audit is the direct statement of the retained-reservation invariant the
// fast pass and tryRepair rely on; the end-to-end equivalence test
// (TestConservativeElisionEquivalence) only observes its consequences.
func TestConservativeLockstepAudit(t *testing.T) {
	for _, lookahead := range []int{2, 4, DefaultLookahead} {
		for seed := uint64(1); seed <= 6; seed++ {
			lockstepAudit(t, seed, lookahead, 0)
		}
	}
}

// TestConservativeLockstepAuditFaults reruns the lockstep audit with the
// three FaultAware events mixed into the stream, applied identically to
// both policies: every fault invalidates the retained state and forces a
// full pass, and the audit verifies the re-derived reservations whenever
// the elided side publishes them again.
func TestConservativeLockstepAuditFaults(t *testing.T) {
	for _, lookahead := range []int{2, DefaultLookahead} {
		for seed := uint64(1); seed <= 6; seed++ {
			lockstepAudit(t, seed, lookahead, 0.12)
		}
	}
}

func lockstepAudit(t *testing.T, seed uint64, lookahead int, faultRate float64) {
	t.Helper()
	r := rng.NewStream(seed)
	nc := 1 + r.Intn(4)
	size := 16 + r.Intn(17)
	sizes := make([]int, nc)
	for i := range sizes {
		sizes[i] = size
	}
	ctxA := newMockCtx(sizes...) // full passes
	ctxB := newMockCtx(sizes...) // elided
	fit := []cluster.Fit{cluster.WorstFit, cluster.BestFit, cluster.FirstFit}[r.Intn(3)]
	var pA, pB *Conservative
	if nc == 1 {
		pA, pB = NewSCConservative(lookahead), NewSCConservative(lookahead)
	} else {
		pA, pB = NewConservative(fit, lookahead), NewConservative(fit, lookahead)
	}

	finish := map[*workload.Job]float64{}
	loggedA, loggedB := 0, 0
	var nextID int64
	jobsB := map[int64]*workload.Job{}

	audit := func(what string) {
		t.Helper()
		if !pB.resvOK {
			return
		}
		var tmp profile
		pB.base.trim(ctxB.now)
		prof := pB.base.cloneInto(&tmp)
		for i := range pB.resvs {
			rv := pB.resvs[i]
			j := rv.job
			if math.IsInf(rv.t, 1) {
				continue // never-fits: +Inf is invariant, holds no window
			}
			tt, place := prof.earliestStart(j.Components, j.RemainingTime(), pB.fit)
			if tt != rv.t {
				t.Fatalf("seed %d lookahead %d: audit %s at t=%g: resv %d job %d stored t=%g, re-derived %g",
					seed, lookahead, what, ctxB.now, i, j.ID, rv.t, tt)
			}
			for c := 0; c < len(j.Components); c++ {
				if place[c] != pB.resvPlace[i*nc+c] {
					t.Fatalf("seed %d lookahead %d: audit %s at t=%g: resv %d job %d stored place %v, re-derived %v",
						seed, lookahead, what, ctxB.now, i, j.ID, pB.resvPlace[i*nc:i*nc+len(j.Components)], place)
				}
			}
			prof.reserve(j.Components, place, tt, rv.dur)
		}
	}

	checkSync := func(what string) {
		t.Helper()
		audit(what)
		newA := ctxA.dispatched[loggedA:]
		newB := ctxB.dispatched[loggedB:]
		if len(newA) != len(newB) {
			t.Fatalf("seed %d lookahead %d: after %s at t=%g: full dispatched %d jobs, elided %d",
				seed, lookahead, what, ctxA.now, len(newA), len(newB))
		}
		for i := range newA {
			if newA[i].ID != newB[i].ID {
				t.Fatalf("seed %d lookahead %d: after %s at t=%g: full started job %d, elided %d",
					seed, lookahead, what, ctxA.now, newA[i].ID, newB[i].ID)
			}
			for c := range newA[i].Placement {
				if newA[i].Placement[c] != newB[i].Placement[c] {
					t.Fatalf("seed %d lookahead %d: after %s at t=%g job %d: placement %v vs %v",
						seed, lookahead, what, ctxA.now, newA[i].ID, newA[i].Placement, newB[i].Placement)
				}
			}
		}
		for ; loggedA < len(ctxA.dispatched); loggedA++ {
			j := ctxA.dispatched[loggedA]
			finish[j] = ctxA.now + j.ExtendedServiceTime
		}
		loggedB = len(ctxB.dispatched)
	}

	submitBoth := func() {
		nextID++
		n := 1 + r.Intn(nc)
		comps := make([]int, n)
		for i := range comps {
			comps[i] = 1 + r.Intn(size)
		}
		for i := 1; i < n; i++ {
			if comps[i] > comps[i-1] {
				comps[i] = comps[i-1]
			}
		}
		svc := 1 + r.Float64()*100
		jA := svcJob(nextID, svc, comps...)
		jB := svcJob(nextID, svc, comps...)
		jobsB[nextID] = jB
		prev := SetPassElision(false)
		pA.Submit(ctxA, jA)
		SetPassElision(true)
		pB.Submit(ctxB, jB)
		SetPassElision(prev)
	}
	finishBoth := func(j *workload.Job) {
		jB := jobsB[j.ID]
		prev := SetPassElision(false)
		ctxA.finish(pA, j)
		SetPassElision(true)
		ctxB.finish(pB, jB)
		SetPassElision(prev)
	}

	// faultEvent applies one fault event identically to both policies,
	// reporting whether an applicable one existed; the audit runs after it
	// like after any other event. Victim choice is deterministic (highest ID
	// on the cluster) because the mock never sets StartTime.
	faultEvent := func(now float64) bool {
		t.Helper()
		c := r.Intn(nc)
		both := func(what string, ev func(p *Conservative, ctx *mockCtx)) {
			ctxA.now, ctxB.now = now, now
			prev := SetPassElision(false)
			ev(pA, ctxA)
			SetPassElision(true)
			ev(pB, ctxB)
			SetPassElision(prev)
			checkSync(what)
		}
		switch r.Intn(3) {
		case 0: // silent failure
			if ctxA.m.Idle(c) == 0 {
				return false
			}
			both("silent failure", func(p *Conservative, ctx *mockCtx) {
				ctx.m.Fail(c)
				p.CapacityLost(ctx, c)
			})
		case 1: // kill a running job with a component on c
			var victim *workload.Job
			for j := range finish {
				for _, pc := range j.Placement {
					if pc == c && (victim == nil || j.ID > victim.ID) {
						victim = j
						break
					}
				}
			}
			if victim == nil {
				return false
			}
			delete(finish, victim)
			vB := jobsB[victim.ID]
			both("kill", func(p *Conservative, ctx *mockCtx) {
				v := victim
				if p == pB {
					v = vB
				}
				ctx.m.Release(v.Components, v.Placement)
				ctx.m.Fail(c)
				p.JobKilled(ctx, v, c)
			})
		case 2: // repair
			if ctxA.m.Down(c) == 0 {
				return false
			}
			both("repair", func(p *Conservative, ctx *mockCtx) {
				ctx.m.Repair(c)
				p.CapacityRestored(ctx, c)
			})
		}
		return true
	}

	for step := 0; step < 200; step++ {
		var dj *workload.Job
		dt := math.Inf(1)
		for j, f := range finish {
			if f < dt || (f == dt && j.ID < dj.ID) {
				dj, dt = j, f
			}
		}
		if faultRate > 0 && r.Float64() < faultRate {
			// A fault arrives strictly before the next departure fires.
			now := ctxA.now
			if dj != nil {
				now += r.Float64() * (dt - now)
			} else {
				now += r.Float64() * 20
			}
			if faultEvent(now) {
				continue
			}
		}
		if dj != nil && r.Float64() < 0.10 {
			run := make([]*workload.Job, 0, len(finish))
			for j := range finish {
				run = append(run, j)
			}
			sort.Slice(run, func(a, b int) bool { return run[a].ID < run[b].ID })
			ej := run[r.Intn(len(run))]
			if f := finish[ej]; f > ctxA.now {
				now := ctxA.now + r.Float64()*(math.Min(dt, f)-ctxA.now)
				ctxA.now, ctxB.now = now, now
			}
			delete(finish, ej)
			finishBoth(ej)
			checkSync("early departure")
			continue
		}
		if dj == nil || (pA.Queued() < 3*lookahead && r.Float64() < 0.6) {
			var now float64
			if dj != nil && r.Float64() < 0.2 {
				now = dt
			} else if dj != nil {
				now = ctxA.now + r.Float64()*(dt-ctxA.now)
			} else {
				now = ctxA.now + r.Float64()*20
			}
			ctxA.now, ctxB.now = now, now
			submitBoth()
			checkSync("arrival")
		} else {
			ctxA.now, ctxB.now = dt, dt
			delete(finish, dj)
			finishBoth(dj)
			checkSync("departure")
		}
	}
}
