package policies

import (
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/workload"
)

// svcJob builds a job with a service time, for reservation arithmetic.
func svcJob(id int64, svc float64, comps ...int) *workload.Job {
	j := mj(id, 0, comps...)
	j.ServiceTime = svc
	j.ExtendedServiceTime = svc
	if j.Multi() {
		j.ExtendedServiceTime = svc * 1.25
	}
	return j
}

func TestEASYNames(t *testing.T) {
	if NewEASY(cluster.WorstFit).Name() != "GS-EASY" || NewSCEASY().Name() != "SC-EASY" {
		t.Error("EASY policy names")
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	// Job 1 occupies 20 of 32 processors until t=100.
	p.Submit(ctx, svcJob(1, 100, 20))
	// Job 2 needs the whole machine: blocked, reservation at t=100.
	p.Submit(ctx, svcJob(2, 50, 32))
	// Job 3 (10 procs, 80 s) fits in the 12 idle processors and ends
	// before the reservation: EASY starts it. Plain FCFS would not.
	p.Submit(ctx, svcJob(3, 80, 10))
	wantIDs(t, ctx.ids(), 1, 3)
	// Job 4 (10 procs, 200 s) also fits now but would push job 2's
	// start from t=100 to t=200: rejected.
	p.Submit(ctx, svcJob(4, 200, 10))
	wantIDs(t, ctx.ids(), 1, 3)
	if p.Queued() != 2 {
		t.Errorf("queued %d, want 2 (head + rejected candidate)", p.Queued())
	}
}

func TestEASYHeadStartsAtReservation(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	j1 := svcJob(1, 100, 20)
	p.Submit(ctx, j1)
	p.Submit(ctx, svcJob(2, 50, 32))
	j3 := svcJob(3, 80, 10)
	p.Submit(ctx, j3)
	// Finish the backfilled job first (t would be 80), then the blocker:
	// the head must start right after the blocker departs.
	ctx.finish(p, j3)
	wantIDs(t, ctx.ids(), 1, 3) // head still blocked (20 busy)
	ctx.finish(p, j1)
	wantIDs(t, ctx.ids(), 1, 3, 2)
}

func TestEASYBackfillsDeepInQueue(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	p.Submit(ctx, svcJob(1, 100, 30)) // 2 idle
	p.Submit(ctx, svcJob(2, 10, 32))  // head, reservation t=100
	p.Submit(ctx, svcJob(3, 10, 20))  // does not fit now
	p.Submit(ctx, svcJob(4, 50, 2))   // fits, ends at 50 <= 100: backfill
	wantIDs(t, ctx.ids(), 1, 4)
	if p.Queued() != 2 {
		t.Errorf("queued %d", p.Queued())
	}
}

func TestEASYPreservesFCFSOrderOfRemainder(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	j1 := svcJob(1, 100, 30)
	p.Submit(ctx, j1)
	p.Submit(ctx, svcJob(2, 10, 32)) // head
	p.Submit(ctx, svcJob(3, 10, 20))
	p.Submit(ctx, svcJob(4, 50, 2)) // backfilled
	p.Submit(ctx, svcJob(5, 10, 25))
	wantIDs(t, ctx.ids(), 1, 4)
	// Job 1 finishes: the head (32) is still blocked by job 4, but job 3
	// (20 procs, ending before job 4's release) backfills into the 30
	// idle processors — deep backfilling keeps working as jobs drain.
	ctx.finish(p, j1)
	wantIDs(t, ctx.ids(), 1, 4, 3)
	// After jobs 4 and 3 finish the machine empties; FCFS resumes with
	// the head (2) and only then 5 — order is preserved.
	ctx.finish(p, ctx.dispatched[1])
	wantIDs(t, ctx.ids(), 1, 4, 3)
	ctx.finish(p, ctx.dispatched[2])
	wantIDs(t, ctx.ids(), 1, 4, 3, 2)
	ctx.finish(p, ctx.dispatched[3])
	wantIDs(t, ctx.ids(), 1, 4, 3, 2, 5)
}

func TestEASYMulticlusterBackfill(t *testing.T) {
	ctx := newMockCtx() // 4 x 32
	p := NewEASY(cluster.WorstFit)
	// Fill three clusters until t=125 (100 s, 1.25 extension).
	p.Submit(ctx, svcJob(1, 100, 32, 32, 32))
	// The head needs the whole system: blocked, reservation at t=125.
	p.Submit(ctx, svcJob(2, 10, 32, 32, 32, 32))
	// A short 16-processor job fits on the free cluster and is gone
	// before the reservation: backfilled.
	p.Submit(ctx, svcJob(3, 10, 16))
	wantIDs(t, ctx.ids(), 1, 3)
	// A 1000 s 16-processor job would still hold part of the free
	// cluster at t=125, delaying the whole-system head: rejected.
	p.Submit(ctx, svcJob(4, 1000, 16))
	wantIDs(t, ctx.ids(), 1, 3)
}

func TestEASYBehavesLikeFCFSWhenNothingFits(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	big := svcJob(1, 10, 32)
	p.Submit(ctx, big)
	p.Submit(ctx, svcJob(2, 10, 32))
	p.Submit(ctx, svcJob(3, 10, 32))
	wantIDs(t, ctx.ids(), 1)
	ctx.finish(p, big)
	wantIDs(t, ctx.ids(), 1, 2)
}

func TestEASYImpossibleHeadBlocksLikeFCFS(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	// A 33-processor job can never run on a 32-processor cluster; EASY
	// keeps FCFS semantics and does NOT backfill past an impossible
	// head (the pathological case is reported by the replay driver).
	p.Submit(ctx, svcJob(1, 10, 33))
	p.Submit(ctx, svcJob(2, 10, 8))
	wantIDs(t, ctx.ids())
	if p.Queued() != 2 {
		t.Errorf("queued %d", p.Queued())
	}
}

func TestEASYQueuedAt(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	p.Submit(ctx, svcJob(1, 10, 32))
	p.Submit(ctx, svcJob(2, 10, 32))
	if p.QueuedAt(workload.GlobalQueue) != 1 || p.QueuedAt(0) != 0 {
		t.Error("EASY QueuedAt")
	}
}

func TestEASYRunningSetBookkeeping(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	j1 := svcJob(1, 100, 16)
	j2 := svcJob(2, 100, 16)
	p.Submit(ctx, j1)
	p.Submit(ctx, j2)
	if len(p.running) != 2 {
		t.Fatalf("running set %d, want 2", len(p.running))
	}
	ctx.finish(p, j1)
	if len(p.running) != 1 || p.running[0].job != j2 {
		t.Error("running set not maintained on departure")
	}
	ctx.finish(p, j2)
	if len(p.running) != 0 {
		t.Error("running set not emptied")
	}
}
