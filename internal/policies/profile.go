package policies

import (
	"math"
	"sort"

	"coalloc/internal/cluster"
)

// profile is a piecewise-constant forecast of per-cluster idle processors,
// the data structure behind conservative backfilling: segment i covers
// [time(i), time(i+1)) (the last segment extends to infinity) with the
// idle vector seg(i).
//
// Storage is flat: one stride-nc backing array holds every segment's idle
// vector, and a dead-prefix offset makes trim an O(1) bump with batched
// physical compaction. cloneInto is two bulk copies, segment splits are a
// single memmove each, and the minimum scan walks contiguous memory with
// no per-segment pointer chase. refProfile (refprofile.go) keeps the
// original slice-of-slices implementation as the reference the
// differential tests compare against.
//
// A profile can be used two ways. newProfile builds a throwaway forecast
// from the current running set (the reference semantics, and what the
// equivalence tests compare against). The backfilling policies instead
// maintain one profile incrementally across events — reserve on job start,
// trim on the advance of the clock — and clone it into reusable scratch
// storage once per scheduling pass.
type profile struct {
	nc    int       // clusters per segment (the stride)
	times []float64 // segment start times; live window [off, off+n)
	flat  []int     // idle vectors, stride nc; live window [off*nc, (off+n)*nc)
	off   int       // dead segments trimmed but not yet compacted away
	n     int       // live segments

	// earliestStart scratch, sized on demand and reused across calls so
	// the steady state allocates nothing.
	min   []int  // assembled window minimum per cluster
	prev  []int  // window minimum of the last greedy-evaluated candidate
	deq   []int  // nc monotonic deques of segment indexes, deqCap each
	dqh   []int  // per-cluster deque head
	dqt   []int  // per-cluster deque tail
	used  []bool // placement scratch
	place []int  // placement scratch
}

// newProfile builds a profile from the current idle vector and the future
// releases of the running jobs.
func newProfile(m *cluster.Multicluster, now float64, running []runInfo) *profile {
	nc := m.NumClusters()
	p := &profile{
		nc:    nc,
		times: make([]float64, 1, 8),
		flat:  make([]int, nc, 8*nc),
		n:     1,
	}
	p.times[0] = now
	for c := 0; c < nc; c++ {
		p.flat[c] = m.Idle(c)
	}
	releases := append([]runInfo(nil), running...)
	sort.Slice(releases, func(a, b int) bool { return releases[a].finish < releases[b].finish })
	for _, r := range releases {
		if r.finish <= now {
			continue
		}
		idx := p.segmentAt(r.finish, true)
		for s := idx; s < p.n; s++ {
			seg := p.seg(s)
			for i, c := range r.placement {
				seg[c] += r.comps[i]
			}
		}
	}
	return p
}

// time returns the start time of live segment i.
func (p *profile) time(i int) float64 { return p.times[p.off+i] }

// seg returns the idle vector of live segment i (a view into the backing
// array; mutations write through).
func (p *profile) seg(i int) []int {
	a := (p.off + i) * p.nc
	return p.flat[a : a+p.nc : a+p.nc]
}

// segmentAt returns the index of the segment starting exactly at t,
// inserting a breakpoint (split) when split is true and none exists.
func (p *profile) segmentAt(t float64, split bool) int {
	live := p.times[p.off : p.off+p.n]
	i := sort.SearchFloat64s(live, t)
	if i < p.n && live[i] == t {
		return i
	}
	if !split {
		return i - 1
	}
	// Split segment i-1 at t: shift the tail right by one segment and
	// copy the covering segment's idle vector into the gap.
	a := p.off + i
	p.times = append(p.times, 0)
	copy(p.times[a+1:], p.times[a:])
	p.times[a] = t
	end := (p.off + p.n) * p.nc
	if cap(p.flat) < end+p.nc {
		grown := make([]int, end, 2*(end+p.nc))
		copy(grown, p.flat)
		p.flat = grown
	}
	p.flat = p.flat[:end+p.nc]
	copy(p.flat[(a+1)*p.nc:], p.flat[a*p.nc:end])
	copy(p.flat[a*p.nc:(a+1)*p.nc], p.flat[(a-1)*p.nc:a*p.nc])
	p.n++
	return i
}

// trim advances the profile start to now: segments entirely in the past
// are dropped and the segment covering now becomes the first, clipped to
// start at now. Breakpoints at exactly now survive as the new start. The
// drop is an offset bump; the dead prefix is physically compacted only
// once it is at least as large as the live region, keeping trim amortized
// O(1) per dropped segment.
func (p *profile) trim(now float64) {
	live := p.times[p.off : p.off+p.n]
	i := sort.SearchFloat64s(live, now)
	if i == p.n || live[i] != now {
		i-- // live[i] is the segment covering now
	}
	if i <= 0 {
		if live[0] < now {
			live[0] = now
		}
		return
	}
	p.off += i
	p.n -= i
	p.times[p.off] = now
	if p.off >= p.n {
		copy(p.times, p.times[p.off:p.off+p.n])
		copy(p.flat, p.flat[p.off*p.nc:(p.off+p.n)*p.nc])
		p.times = p.times[:p.n]
		p.flat = p.flat[:p.n*p.nc]
		p.off = 0
	}
}

// shiftCapacity folds a capacity change of cluster c into the forecast:
// delta is -1 for a processor going down, +1 for a repair. A capacity flap
// has no release time, so unlike a reservation it shifts every live
// segment — the processor is gone (or back) for the entire horizon. The
// breakpoints are untouched; only the level moves.
//
// The caller must trim the profile to the current time first, and for a
// loss the first segment must have an idle processor on c to give up (the
// simulator guarantees it: a failure either lands on an idle processor or
// aborts a victim whose release was folded in before this call). Because
// the base profile's per-cluster values are nondecreasing in time — future
// segments only add releases — a valid first segment makes every later
// segment valid too; the panic guards the precondition.
func (p *profile) shiftCapacity(c, delta int) {
	for i := 0; i < p.n; i++ {
		s := p.seg(i)
		s[c] += delta
		if s[c] < 0 {
			panic("policies: capacity shift below zero idle forecast")
		}
	}
}

// removeBreak deletes live segment i, extending segment i-1 over its span
// — the cleanup for a breakpoint whose two sides became identical (an
// early release returning exactly the capacity its forecast breakpoint
// encoded). Rare path: one O(S) shift.
func (p *profile) removeBreak(i int) {
	a := p.off + i
	end := p.off + p.n
	copy(p.times[a:], p.times[a+1:end])
	copy(p.flat[a*p.nc:], p.flat[(a+1)*p.nc:end*p.nc])
	p.n--
	p.times = p.times[:end-1]
	p.flat = p.flat[:(end-1)*p.nc]
}

// cloneInto copies the profile's live segments into dst's storage (two
// bulk copies) and returns dst. The clone shares no state with p; it is
// the per-pass working copy transient reservations go into.
//
//detlint:noalloc
func (p *profile) cloneInto(dst *profile) *profile {
	dst.nc = p.nc
	dst.off = 0
	dst.n = p.n
	dst.times = append(dst.times[:0], p.times[p.off:p.off+p.n]...)
	dst.flat = append(dst.flat[:0], p.flat[p.off*p.nc:(p.off+p.n)*p.nc]...)
	return dst
}

// ensureScratch sizes the earliestStart scratch for the current segment
// count and component count.
func (p *profile) ensureScratch(comps int) {
	if cap(p.min) < p.nc {
		p.min = make([]int, p.nc)
		p.prev = make([]int, p.nc)
		p.dqh = make([]int, p.nc)
		p.dqt = make([]int, p.nc)
		p.used = make([]bool, p.nc)
	}
	if cap(p.deq) < p.nc*p.n {
		p.deq = make([]int, p.nc*(p.n+p.n/2+4))
	}
	if cap(p.place) < comps {
		p.place = make([]int, comps)
	}
}

// earliestStart returns the earliest time >= the profile start at which
// components can hold the same distinct clusters for the whole duration,
// together with the placement. It returns +Inf when the components can
// never fit.
//
// The candidate starts are the segment breakpoints. The per-cluster
// minimum over the duration window is maintained incrementally with one
// monotonic deque per cluster, so a full scan is O(S·nc) amortized
// instead of the O(S²·nc) of rescanning the window per candidate. The
// greedy placement itself runs only for the first candidate and for
// candidates where some in-window minimum actually rose: the placement
// rule is monotone in the idle vector (TestPlacementMonotone pins this
// exhaustively), so a candidate whose window minima are pointwise <= the
// last failed candidate's must fail too.
//
// The returned placement is the profile's scratch buffer: it is valid
// only until the next earliestStart call on this profile, so callers must
// consume it (reserve, dispatch — Dispatch copies) before probing again.
//
//detlint:scratch
//detlint:noalloc
func (p *profile) earliestStart(comps []int, dur float64, fit cluster.Fit) (float64, []int) {
	nc, S := p.nc, p.n
	p.ensureScratch(len(comps)) //detlint:ignore noalloc amortized high-water-mark growth of the retained scratch; steady state allocates nothing
	times := p.times[p.off : p.off+S]
	flat := p.flat[p.off*nc : (p.off+S)*nc]
	deqCap := S
	min, prev := p.min[:nc], p.prev[:nc]
	for c := 0; c < nc; c++ {
		p.dqh[c], p.dqt[c] = 0, 0
	}
	r := 0 // next segment to enter the window
	havePrev := false
	for s := 0; s < S; s++ {
		// Expire window-left segments (before the candidate start).
		for c := 0; c < nc; c++ {
			h := p.dqh[c]
			for h < p.dqt[c] && p.deq[c*deqCap+h] < s {
				h++
			}
			p.dqh[c] = h
		}
		// Admit segments starting before the window end. The candidate's
		// own segment is always in the window, matching the reference
		// minWindow even for a degenerate zero duration.
		end := times[s] + dur
		for ; r <= s || (r < S && times[r] < end); r++ {
			for c := 0; c < nc; c++ {
				v := flat[r*nc+c]
				t := p.dqt[c]
				for t > p.dqh[c] && flat[p.deq[c*deqCap+t-1]*nc+c] >= v {
					t--
				}
				p.deq[c*deqCap+t] = r
				p.dqt[c] = t + 1
			}
		}
		// Assemble the window minimum and check whether any cluster's
		// minimum rose since the last evaluated candidate.
		rose := !havePrev
		for c := 0; c < nc; c++ {
			v := flat[p.deq[c*deqCap+p.dqh[c]]*nc+c]
			min[c] = v
			if v > prev[c] {
				rose = true
			}
		}
		if !rose {
			continue
		}
		if placeVectorInto(min, comps, fit, p.place[:len(comps)], p.used[:nc]) {
			return times[s], p.place[:len(comps)]
		}
		copy(prev, min)
		havePrev = true
	}
	return math.Inf(1), nil
}

// reserve subtracts the components from the profile over [t, t+dur).
func (p *profile) reserve(comps, placement []int, t, dur float64) {
	start := p.segmentAt(t, true)
	end := p.segmentAt(t+dur, true)
	for s := start; s < end; s++ {
		seg := p.seg(s)
		for i, c := range placement {
			seg[c] -= comps[i]
			if seg[c] < 0 {
				panic("policies: reservation overlaps beyond capacity")
			}
		}
	}
}

// placeVectorInto is the greedy distinct-cluster placement on a plain idle
// vector, writing into caller-provided storage: placement receives the
// chosen cluster per component, used is scratch of length len(idle). It
// reports whether the components fit.
//
// The rule is monotone for every fit: if the components fit on idle
// vector w, they fit on any v >= w pointwise (see TestPlacementMonotone).
// earliestStart's candidate pruning and the policies' capacity fast exits
// rely on the contrapositive — a failure on v implies failure on any
// w <= v.
func placeVectorInto(idle, comps []int, fit cluster.Fit, placement []int, used []bool) bool {
	if len(comps) > len(idle) {
		return false
	}
	for c := range used {
		used[c] = false
	}
	for ci, need := range comps {
		best := -1
		for c := range idle {
			if used[c] || idle[c] < need {
				continue
			}
			switch fit {
			case cluster.WorstFit:
				if best < 0 || idle[c] > idle[best] {
					best = c
				}
			case cluster.BestFit:
				if best < 0 || idle[c] < idle[best] {
					best = c
				}
			default: // FirstFit
				if best < 0 {
					best = c
				}
			}
		}
		if best < 0 {
			return false
		}
		used[best] = true
		placement[ci] = best
	}
	return true
}
