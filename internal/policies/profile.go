package policies

import (
	"math"
	"sort"

	"coalloc/internal/cluster"
)

// profile is a piecewise-constant forecast of per-cluster idle processors,
// the data structure behind conservative backfilling: segment i covers
// [times[i], times[i+1]) (the last segment extends to infinity) with the
// idle vector idle[i].
type profile struct {
	times []float64
	idle  [][]int
}

// newProfile builds a profile from the current idle vector and the future
// releases of the running jobs.
func newProfile(m *cluster.Multicluster, now float64, running []runInfo) *profile {
	p := &profile{
		times: []float64{now},
		idle:  [][]int{make([]int, m.NumClusters())},
	}
	for c := 0; c < m.NumClusters(); c++ {
		p.idle[0][c] = m.Idle(c)
	}
	releases := append([]runInfo(nil), running...)
	sort.Slice(releases, func(a, b int) bool { return releases[a].finish < releases[b].finish })
	for _, r := range releases {
		if r.finish <= now {
			continue
		}
		idx := p.segmentAt(r.finish, true)
		for s := idx; s < len(p.times); s++ {
			for i, c := range r.placement {
				p.idle[s][c] += r.comps[i]
			}
		}
	}
	return p
}

// segmentAt returns the index of the segment starting exactly at t,
// inserting a breakpoint (split) when split is true and none exists.
func (p *profile) segmentAt(t float64, split bool) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	if !split {
		return i - 1
	}
	// Split segment i-1 at t.
	prev := p.idle[i-1]
	cp := make([]int, len(prev))
	copy(cp, prev)
	p.times = append(p.times, 0)
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.idle = append(p.idle, nil)
	copy(p.idle[i+1:], p.idle[i:])
	p.idle[i] = cp
	return i
}

// minWindow returns the pointwise minimum idle vector over [t, t+dur).
func (p *profile) minWindow(t, dur float64) []int {
	end := t + dur
	start := sort.SearchFloat64s(p.times, t)
	if start == len(p.times) || p.times[start] != t {
		start--
	}
	min := make([]int, len(p.idle[0]))
	copy(min, p.idle[start])
	for s := start + 1; s < len(p.times) && p.times[s] < end; s++ {
		for c, v := range p.idle[s] {
			if v < min[c] {
				min[c] = v
			}
		}
	}
	return min
}

// earliestStart returns the earliest time >= now at which components can
// hold the same distinct clusters for the whole duration, together with
// the placement. It returns +Inf when the components can never fit.
func (p *profile) earliestStart(comps []int, dur float64, fit cluster.Fit) (float64, []int) {
	for s := 0; s < len(p.times); s++ {
		t := p.times[s]
		min := p.minWindow(t, dur)
		if placement, ok := placeVector(min, comps, fit); ok {
			return t, placement
		}
	}
	return math.Inf(1), nil
}

// reserve subtracts the components from the profile over [t, t+dur).
func (p *profile) reserve(comps, placement []int, t, dur float64) {
	start := p.segmentAt(t, true)
	end := p.segmentAt(t+dur, true)
	for s := start; s < end; s++ {
		for i, c := range placement {
			p.idle[s][c] -= comps[i]
			if p.idle[s][c] < 0 {
				panic("policies: reservation overlaps beyond capacity")
			}
		}
	}
}

// placeVector is the greedy distinct-cluster placement on a plain idle
// vector, returning the chosen clusters.
func placeVector(idle []int, comps []int, fit cluster.Fit) ([]int, bool) {
	if len(comps) > len(idle) {
		return nil, false
	}
	used := make([]bool, len(idle))
	placement := make([]int, len(comps))
	for ci, need := range comps {
		best := -1
		for c := range idle {
			if used[c] || idle[c] < need {
				continue
			}
			switch fit {
			case cluster.WorstFit:
				if best < 0 || idle[c] > idle[best] {
					best = c
				}
			case cluster.BestFit:
				if best < 0 || idle[c] < idle[best] {
					best = c
				}
			default: // FirstFit
				if best < 0 {
					best = c
				}
			}
		}
		if best < 0 {
			return nil, false
		}
		used[best] = true
		placement[ci] = best
	}
	return placement, true
}
