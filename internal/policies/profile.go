package policies

import (
	"math"
	"sort"

	"coalloc/internal/cluster"
)

// profile is a piecewise-constant forecast of per-cluster idle processors,
// the data structure behind conservative backfilling: segment i covers
// [times[i], times[i+1]) (the last segment extends to infinity) with the
// idle vector idle[i].
//
// A profile can be used two ways. newProfile builds a throwaway forecast
// from the current running set (the reference semantics, and what the
// equivalence tests compare against). The backfilling policies instead
// maintain one profile incrementally across events — reserve on job start,
// trim on the advance of the clock — and clone it into reusable scratch
// storage once per scheduling pass, turning the per-pass cost from
// "re-sort and re-apply every running job" into "copy the current
// forecast". Retired idle vectors are recycled through a spare list so the
// steady state allocates nothing.
type profile struct {
	times []float64
	idle  [][]int

	spare [][]int // retired idle vectors, reused by splits and clones
	min   []int   // scratch for minWindow
	used  []bool  // scratch for earliestStart placement
	place []int   // scratch for earliestStart placement
}

// newProfile builds a profile from the current idle vector and the future
// releases of the running jobs.
func newProfile(m *cluster.Multicluster, now float64, running []runInfo) *profile {
	p := &profile{
		times: []float64{now},
		idle:  [][]int{make([]int, m.NumClusters())},
	}
	for c := 0; c < m.NumClusters(); c++ {
		p.idle[0][c] = m.Idle(c)
	}
	releases := append([]runInfo(nil), running...)
	sort.Slice(releases, func(a, b int) bool { return releases[a].finish < releases[b].finish })
	for _, r := range releases {
		if r.finish <= now {
			continue
		}
		idx := p.segmentAt(r.finish, true)
		for s := idx; s < len(p.times); s++ {
			for i, c := range r.placement {
				p.idle[s][c] += r.comps[i]
			}
		}
	}
	return p
}

// allocVec returns a recycled or fresh idle vector of length n.
func (p *profile) allocVec(n int) []int {
	if k := len(p.spare); k > 0 {
		v := p.spare[k-1]
		p.spare[k-1] = nil
		p.spare = p.spare[:k-1]
		return v[:n]
	}
	return make([]int, n)
}

// segmentAt returns the index of the segment starting exactly at t,
// inserting a breakpoint (split) when split is true and none exists.
func (p *profile) segmentAt(t float64, split bool) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	if !split {
		return i - 1
	}
	// Split segment i-1 at t.
	cp := p.allocVec(len(p.idle[i-1]))
	copy(cp, p.idle[i-1])
	p.times = append(p.times, 0)
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.idle = append(p.idle, nil)
	copy(p.idle[i+1:], p.idle[i:])
	p.idle[i] = cp
	return i
}

// trim advances the profile start to now: segments entirely in the past
// are dropped (their idle vectors are recycled) and the segment covering
// now becomes the first, clipped to start at now. Breakpoints at exactly
// now survive as the new start.
func (p *profile) trim(now float64) {
	i := sort.SearchFloat64s(p.times, now)
	if i == len(p.times) || p.times[i] != now {
		i-- // p.times[i] is the segment covering now
	}
	if i <= 0 {
		if p.times[0] < now {
			p.times[0] = now
		}
		return
	}
	for s := 0; s < i; s++ {
		p.spare = append(p.spare, p.idle[s])
	}
	nt := copy(p.times, p.times[i:])
	ni := copy(p.idle, p.idle[i:])
	for s := ni; s < len(p.idle); s++ {
		p.idle[s] = nil
	}
	p.times = p.times[:nt]
	p.idle = p.idle[:ni]
	p.times[0] = now
}

// cloneInto copies the profile's segments into dst's storage (reusing its
// slices and spare vectors) and returns dst. The clone shares no state
// with p; it is the per-pass working copy transient reservations go into.
func (p *profile) cloneInto(dst *profile) *profile {
	dst.times = append(dst.times[:0], p.times...)
	// Recycle whatever vectors dst currently holds, then take them back.
	for s := range dst.idle {
		if dst.idle[s] != nil {
			dst.spare = append(dst.spare, dst.idle[s])
			dst.idle[s] = nil
		}
	}
	dst.idle = dst.idle[:0]
	for s := range p.idle {
		v := dst.allocVec(len(p.idle[s]))
		copy(v, p.idle[s])
		dst.idle = append(dst.idle, v)
	}
	return dst
}

// minWindow returns the pointwise minimum idle vector over [t, t+dur).
// The returned slice is the profile's scratch buffer; callers must not
// retain it across profile calls.
func (p *profile) minWindow(t, dur float64) []int {
	end := t + dur
	start := sort.SearchFloat64s(p.times, t)
	if start == len(p.times) || p.times[start] != t {
		start--
	}
	if cap(p.min) < len(p.idle[0]) {
		p.min = make([]int, len(p.idle[0]))
	}
	min := p.min[:len(p.idle[0])]
	copy(min, p.idle[start])
	for s := start + 1; s < len(p.times) && p.times[s] < end; s++ {
		for c, v := range p.idle[s] {
			if v < min[c] {
				min[c] = v
			}
		}
	}
	return min
}

// earliestStart returns the earliest time >= now at which components can
// hold the same distinct clusters for the whole duration, together with
// the placement. It returns +Inf when the components can never fit.
//
// The returned placement is the profile's scratch buffer: it is valid
// only until the next earliestStart call on this profile, so callers must
// consume it (reserve, dispatch — Dispatch copies) before probing again.
func (p *profile) earliestStart(comps []int, dur float64, fit cluster.Fit) (float64, []int) {
	n := len(p.idle[0])
	if cap(p.used) < n {
		p.used = make([]bool, n)
	}
	if cap(p.place) < len(comps) {
		p.place = make([]int, len(comps))
	}
	for s := 0; s < len(p.times); s++ {
		t := p.times[s]
		min := p.minWindow(t, dur)
		if placeVectorInto(min, comps, fit, p.place[:len(comps)], p.used[:n]) {
			return t, p.place[:len(comps)]
		}
	}
	return math.Inf(1), nil
}

// reserve subtracts the components from the profile over [t, t+dur).
func (p *profile) reserve(comps, placement []int, t, dur float64) {
	start := p.segmentAt(t, true)
	end := p.segmentAt(t+dur, true)
	for s := start; s < end; s++ {
		for i, c := range placement {
			p.idle[s][c] -= comps[i]
			if p.idle[s][c] < 0 {
				panic("policies: reservation overlaps beyond capacity")
			}
		}
	}
}

// placeVector is the greedy distinct-cluster placement on a plain idle
// vector, returning the chosen clusters.
func placeVector(idle []int, comps []int, fit cluster.Fit) ([]int, bool) {
	if len(comps) > len(idle) {
		return nil, false
	}
	placement := make([]int, len(comps))
	if !placeVectorInto(idle, comps, fit, placement, make([]bool, len(idle))) {
		return nil, false
	}
	return placement, true
}

// placeVectorInto is placeVector writing into caller-provided storage:
// placement receives the chosen cluster per component, used is scratch of
// length len(idle). It reports whether the components fit.
func placeVectorInto(idle, comps []int, fit cluster.Fit, placement []int, used []bool) bool {
	if len(comps) > len(idle) {
		return false
	}
	for c := range used {
		used[c] = false
	}
	for ci, need := range comps {
		best := -1
		for c := range idle {
			if used[c] || idle[c] < need {
				continue
			}
			switch fit {
			case cluster.WorstFit:
				if best < 0 || idle[c] > idle[best] {
					best = c
				}
			case cluster.BestFit:
				if best < 0 || idle[c] < idle[best] {
					best = c
				}
			default: // FirstFit
				if best < 0 {
					best = c
				}
			}
		}
		if best < 0 {
			return false
		}
		used[best] = true
		placement[ci] = best
	}
	return true
}
