package policies

import (
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

// mockCtx implements Ctx with a real multicluster and a dispatch log.
type mockCtx struct {
	m          *cluster.Multicluster
	scratch    *Scratch
	dispatched []*workload.Job
	now        float64
	obs        *obs.Observer
	dec        *dectrace.Tracer
}

func newMockCtx(sizes ...int) *mockCtx {
	if len(sizes) == 0 {
		sizes = []int{32, 32, 32, 32}
	}
	return &mockCtx{m: cluster.New(sizes), scratch: NewScratch(len(sizes))}
}

func (c *mockCtx) Cluster() *cluster.Multicluster { return c.m }

func (c *mockCtx) Now() float64 { return c.now }

func (c *mockCtx) Obs() *obs.Observer { return c.obs }

func (c *mockCtx) Dec() *dectrace.Tracer { return c.dec }

func (c *mockCtx) Scratch() *Scratch { return c.scratch }

func (c *mockCtx) Dispatch(j *workload.Job, placement []int) {
	c.m.Alloc(j.Components, placement)
	// Per the Ctx contract, placement may be pass scratch: keep a copy.
	j.Placement = append([]int(nil), placement...)
	c.dispatched = append(c.dispatched, j)
}

// finish releases a running job's processors and notifies the policy.
func (c *mockCtx) finish(p Policy, j *workload.Job) {
	c.m.Release(j.Components, j.Placement)
	p.JobDeparted(c, j)
}

func (c *mockCtx) ids() []int64 {
	var ids []int64
	for _, j := range c.dispatched {
		ids = append(ids, j.ID)
	}
	return ids
}

func mj(id int64, queue int, comps ...int) *workload.Job {
	total := 0
	for _, c := range comps {
		total += c
	}
	return &workload.Job{ID: id, Queue: queue, TotalSize: total, Components: comps}
}

func wantIDs(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
}

// --- GS ---

func TestGSDispatchesFCFS(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	p.Submit(ctx, mj(1, 0, 16))
	p.Submit(ctx, mj(2, 0, 16, 16))
	wantIDs(t, ctx.ids(), 1, 2)
	if p.Queued() != 0 {
		t.Errorf("queued %d", p.Queued())
	}
}

func TestGSHeadOfLineBlocking(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	// Fill the system almost completely.
	filler := mj(1, 0, 32, 32, 32, 31)
	p.Submit(ctx, filler)
	// A large job blocks the head; a tiny job behind it must NOT start
	// (strict FCFS, no backfilling).
	p.Submit(ctx, mj(2, 0, 8))
	p.Submit(ctx, mj(3, 0, 1))
	wantIDs(t, ctx.ids(), 1)
	if p.Queued() != 2 {
		t.Errorf("queued %d, want 2", p.Queued())
	}
	// After the filler departs, both start in order.
	ctx.finish(p, filler)
	wantIDs(t, ctx.ids(), 1, 2, 3)
}

func TestGSPlacesComponentsOnDistinctClusters(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	j := mj(1, 0, 16, 16, 16)
	p.Submit(ctx, j)
	seen := map[int]bool{}
	for _, c := range j.Placement {
		if seen[c] {
			t.Fatalf("placement %v reuses a cluster", j.Placement)
		}
		seen[c] = true
	}
}

func TestGSSetsGlobalQueueTag(t *testing.T) {
	ctx := newMockCtx()
	p := NewGS(cluster.WorstFit)
	j := mj(1, 3, 16)
	p.Submit(ctx, j)
	if j.Queue != workload.GlobalQueue {
		t.Errorf("GS job queue tag %d", j.Queue)
	}
	if p.QueuedAt(workload.GlobalQueue) != 0 || p.QueuedAt(0) != 0 {
		t.Error("QueuedAt after dispatch")
	}
}

func TestSCName(t *testing.T) {
	if NewSC().Name() != "SC" || NewGS(cluster.WorstFit).Name() != "GS" {
		t.Error("policy names")
	}
}

func TestSCOnSingleCluster(t *testing.T) {
	ctx := newMockCtx(128)
	p := NewSC()
	big := mj(1, 0, 128)
	p.Submit(ctx, big)
	p.Submit(ctx, mj(2, 0, 1))
	wantIDs(t, ctx.ids(), 1)
	ctx.finish(p, big)
	wantIDs(t, ctx.ids(), 1, 2)
}

// --- LS ---

func TestLSSingleComponentRestrictedToLocalCluster(t *testing.T) {
	ctx := newMockCtx()
	p := NewLS(4, cluster.WorstFit)
	// Fill cluster 2 completely; other clusters stay empty.
	blocker := mj(1, 2, 32)
	p.Submit(ctx, blocker)
	// A single-component job submitted to queue 2 must wait even though
	// three other clusters are idle.
	waiting := mj(2, 2, 8)
	p.Submit(ctx, waiting)
	wantIDs(t, ctx.ids(), 1)
	if p.QueuedAt(2) != 1 {
		t.Errorf("queue 2 length %d", p.QueuedAt(2))
	}
	ctx.finish(p, blocker)
	wantIDs(t, ctx.ids(), 1, 2)
	if waiting.Placement[0] != 2 {
		t.Errorf("local job placed on cluster %d, want its own cluster 2", waiting.Placement[0])
	}
}

func TestLSMultiComponentUsesAnyCluster(t *testing.T) {
	ctx := newMockCtx()
	p := NewLS(4, cluster.WorstFit)
	j := mj(1, 0, 16, 16, 16, 16)
	p.Submit(ctx, j)
	wantIDs(t, ctx.ids(), 1)
	if len(j.Placement) != 4 {
		t.Errorf("placement %v", j.Placement)
	}
}

func TestLSBackfillsAcrossQueues(t *testing.T) {
	ctx := newMockCtx()
	p := NewLS(4, cluster.WorstFit)
	// Queue 0's head does not fit (needs 4 clusters of 32, one busy).
	p.Submit(ctx, mj(1, 1, 20)) // occupies cluster 1
	big := mj(2, 0, 32, 32, 32, 32)
	p.Submit(ctx, big)
	wantIDs(t, ctx.ids(), 1)
	// A job in another queue still starts: the multi-queue backfilling
	// window of the paper.
	p.Submit(ctx, mj(3, 3, 8))
	wantIDs(t, ctx.ids(), 1, 3)
	if p.QueuedAt(0) != 1 {
		t.Errorf("queue 0 length %d", p.QueuedAt(0))
	}
}

func TestLSQueueDisabledUntilDeparture(t *testing.T) {
	ctx := newMockCtx()
	p := NewLS(4, cluster.WorstFit)
	hog := mj(1, 0, 32)
	p.Submit(ctx, hog) // fills cluster 0
	p.Submit(ctx, mj(2, 0, 16))
	wantIDs(t, ctx.ids(), 1) // head miss: queue 0 disabled
	// Free cluster 0 WITHOUT a departure event is impossible in the real
	// simulator; instead verify that a fitting job arriving at the
	// disabled queue does not start even though its queue head now also
	// fits nowhere else — i.e. the disable persists across arrivals.
	p.Submit(ctx, mj(3, 0, 1))
	wantIDs(t, ctx.ids(), 1)
	if p.QueuedAt(0) != 2 {
		t.Errorf("queue 0 length %d, want 2", p.QueuedAt(0))
	}
	// Departure re-enables the queue; both jobs start FCFS.
	ctx.finish(p, hog)
	wantIDs(t, ctx.ids(), 1, 2, 3)
}

func TestLSArrivalAtEnabledQueueStartsImmediately(t *testing.T) {
	ctx := newMockCtx()
	p := NewLS(4, cluster.WorstFit)
	// Disable queue 0 via a head miss.
	p.Submit(ctx, mj(1, 0, 32))
	p.Submit(ctx, mj(2, 0, 16))
	// Queue 1 is still enabled: an arriving fitting job starts at once.
	p.Submit(ctx, mj(3, 1, 16))
	wantIDs(t, ctx.ids(), 1, 3)
}

func TestLSRoundRobinStartsOnePerQueuePerRound(t *testing.T) {
	ctx := newMockCtx()
	p := NewLS(4, cluster.WorstFit)
	// Pre-block all clusters so nothing starts on submit.
	blocker := mj(1, 0, 32, 32, 32, 32)
	p.Submit(ctx, blocker)
	for _, sub := range []struct {
		id int64
		q  int
	}{{2, 0}, {3, 0}, {4, 1}, {5, 2}} {
		p.Submit(ctx, mj(sub.id, sub.q, 4))
	}
	wantIDs(t, ctx.ids(), 1)
	ctx.finish(p, blocker)
	// All four start; the first round starts one job per queue, so the
	// second job of queue 0 (id 3) starts last.
	if len(ctx.dispatched) != 5 {
		t.Fatalf("dispatched %v", ctx.ids())
	}
	if last := ctx.dispatched[4]; last.ID != 3 {
		t.Errorf("last dispatched %d, want 3 (second job of queue 0)", last.ID)
	}
}

func TestLSQueuedCounts(t *testing.T) {
	ctx := newMockCtx()
	p := NewLS(4, cluster.WorstFit)
	p.Submit(ctx, mj(1, 0, 32))
	p.Submit(ctx, mj(2, 0, 32))
	p.Submit(ctx, mj(3, 1, 32))
	p.Submit(ctx, mj(4, 1, 32))
	// 1 and 3 run; 2 and 4 wait.
	if p.Queued() != 2 || p.QueuedAt(0) != 1 || p.QueuedAt(1) != 1 {
		t.Errorf("queued %d (per queue %d/%d)", p.Queued(), p.QueuedAt(0), p.QueuedAt(1))
	}
	if p.QueuedAt(workload.GlobalQueue) != 0 || p.QueuedAt(99) != 0 {
		t.Error("LS has no global queue")
	}
}

func TestLSBadQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LS submit to invalid queue did not panic")
		}
	}()
	NewLS(4, cluster.WorstFit).Submit(newMockCtx(), mj(1, 7, 8))
}

func TestNewLSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLS(0) did not panic")
		}
	}()
	NewLS(0, cluster.WorstFit)
}

// --- LP ---

func TestLPRoutesMultiToGlobal(t *testing.T) {
	ctx := newMockCtx()
	p := NewLP(4, cluster.WorstFit)
	multi := mj(1, 2, 16, 16)
	p.Submit(ctx, multi)
	if multi.Queue != workload.GlobalQueue {
		t.Errorf("multi-component job queue tag %d", multi.Queue)
	}
	wantIDs(t, ctx.ids(), 1) // all locals empty, global eligible
}

func TestLPGlobalNeedsEmptyLocalQueue(t *testing.T) {
	ctx := newMockCtx()
	p := NewLP(4, cluster.WorstFit)
	// Occupy 30 of 32 processors on every cluster; local queues empty.
	var hogs []*workload.Job
	for q := 0; q < 4; q++ {
		hog := mj(int64(q+1), q, 30)
		p.Submit(ctx, hog)
		hogs = append(hogs, hog)
	}
	// A size-4 waiter in every local queue (2 idle per cluster): every
	// local queue is now non-empty.
	for q := 0; q < 4; q++ {
		p.Submit(ctx, mj(int64(q+10), q, 4))
	}
	// The global job (1,1) HAS room (2 idle on two clusters) but must
	// wait: no local queue is empty, so the global scheduler is not
	// eligible to run — the paper's local-priority rule.
	p.Submit(ctx, mj(100, 0, 1, 1))
	if p.QueuedAt(workload.GlobalQueue) != 1 {
		t.Fatalf("global queue length %d, want 1 (locals have priority)", p.QueuedAt(workload.GlobalQueue))
	}
	// One hog departs: queue 0's waiter starts and empties its queue, the
	// global queue becomes eligible, and (1,1) fits.
	ctx.finish(p, hogs[0])
	if p.QueuedAt(workload.GlobalQueue) != 0 {
		t.Errorf("global job still queued after a local queue emptied")
	}
}

func TestLPGlobalBlockedWhileLocalsBusy(t *testing.T) {
	ctx := newMockCtx()
	p := NewLP(4, cluster.WorstFit)
	// Local queues 0..3 each hold a waiting job; clusters full.
	var hogs []*workload.Job
	for q := 0; q < 4; q++ {
		hog := mj(int64(q+1), q, 32)
		p.Submit(ctx, hog)
		hogs = append(hogs, hog)
	}
	for q := 0; q < 4; q++ {
		p.Submit(ctx, mj(int64(q+10), q, 30))
	}
	p.Submit(ctx, mj(100, 0, 1, 1)) // global
	// Departure of hog 0: local waiter 10 starts (30 on cluster 0),
	// queue 0 empties, global job (1,1) should then fit (2 idle on
	// cluster 0 spread across 0 and nothing else)... cluster 0 has 2
	// idle but the job needs two DISTINCT clusters; only cluster 0 has
	// room, so the global job must stay queued.
	ctx.finish(p, hogs[0])
	if p.QueuedAt(workload.GlobalQueue) != 1 {
		t.Errorf("global job started without two available clusters")
	}
	// Another departure frees cluster 1 for its waiter (30), leaving 2
	// idle there too; now (1,1) fits on clusters 0 and 1.
	ctx.finish(p, hogs[1])
	if p.QueuedAt(workload.GlobalQueue) != 0 {
		t.Errorf("global job still queued with two clusters available")
	}
}

func TestLPLocalJobsRunOnOwnCluster(t *testing.T) {
	ctx := newMockCtx()
	p := NewLP(4, cluster.WorstFit)
	j := mj(1, 3, 8)
	p.Submit(ctx, j)
	if j.Placement[0] != 3 {
		t.Errorf("LP local job placed on cluster %d, want 3", j.Placement[0])
	}
}

func TestLPGlobalHeadMissDisablesUntilDeparture(t *testing.T) {
	ctx := newMockCtx()
	p := NewLP(4, cluster.WorstFit)
	// Fill clusters 0 and 1 with local jobs; queues stay empty so the
	// global queue remains eligible.
	a := mj(1, 0, 32)
	b := mj(2, 1, 32)
	p.Submit(ctx, a)
	p.Submit(ctx, b)
	// Global job needing three clusters of 20: does not fit (only two
	// clusters free) -> head miss disables the global queue.
	p.Submit(ctx, mj(3, 0, 20, 20, 20))
	if p.QueuedAt(workload.GlobalQueue) != 1 {
		t.Fatal("global job should wait")
	}
	// A second, small global job arrives; even though it would fit, the
	// global queue is FCFS and disabled, so it waits too.
	p.Submit(ctx, mj(4, 0, 2, 2))
	if p.QueuedAt(workload.GlobalQueue) != 2 {
		t.Errorf("global queue %d, want 2 (disabled until departure)", p.QueuedAt(workload.GlobalQueue))
	}
	// Departure re-enables the global queue; now the head fits.
	ctx.finish(p, a)
	wantIDs(t, ctx.ids(), 1, 2, 3, 4)
}

func TestLPQueuedCounts(t *testing.T) {
	ctx := newMockCtx()
	p := NewLP(4, cluster.WorstFit)
	p.Submit(ctx, mj(1, 0, 32))
	p.Submit(ctx, mj(2, 0, 5))
	p.Submit(ctx, mj(3, 0, 20, 20, 20, 20))
	// Job 1 runs; job 2 waits (cluster 0 full); job 3 runs (global,
	// clusters 1-3 + ... wait: needs 4 distinct clusters of 20, cluster 0
	// has 0 idle -> does not fit; waits).
	if p.Queued() != 2 {
		t.Errorf("queued %d", p.Queued())
	}
	if p.QueuedAt(0) != 1 || p.QueuedAt(workload.GlobalQueue) != 1 {
		t.Errorf("per-queue %d/%d", p.QueuedAt(0), p.QueuedAt(workload.GlobalQueue))
	}
	if p.QueuedAt(42) != 0 {
		t.Error("out-of-range queue")
	}
}

func TestLPBadQueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LP submit to invalid queue did not panic")
		}
	}()
	NewLP(4, cluster.WorstFit).Submit(newMockCtx(), mj(1, -3, 8))
}

func TestNewLPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLP(-1) did not panic")
		}
	}()
	NewLP(-1, cluster.WorstFit)
}

func TestPolicyNames(t *testing.T) {
	if NewLS(4, cluster.WorstFit).Name() != "LS" || NewLP(4, cluster.WorstFit).Name() != "LP" {
		t.Error("policy names")
	}
}
