package policies

import (
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/workload"
)

func TestSPFOrdersByServiceTime(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSPF(cluster.WorstFit)
	// Fill the machine so submissions queue up.
	blocker := svcJob(1, 10, 32)
	p.Submit(ctx, blocker)
	p.Submit(ctx, svcJob(2, 300, 8))
	p.Submit(ctx, svcJob(3, 50, 8))
	p.Submit(ctx, svcJob(4, 100, 8))
	wantIDs(t, ctx.ids(), 1)
	ctx.finish(p, blocker)
	// All three fit at once; they start shortest-first: 3, 4, 2.
	wantIDs(t, ctx.ids(), 1, 3, 4, 2)
}

func TestSPFBlocksOnShortestNonFitting(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSPF(cluster.WorstFit)
	p.Submit(ctx, svcJob(1, 1000, 30)) // runs; 2 idle
	p.Submit(ctx, svcJob(2, 10, 8))    // shortest, does not fit
	p.Submit(ctx, svcJob(3, 50, 2))    // fits, but waits behind job 2
	wantIDs(t, ctx.ids(), 1)
	if p.Queued() != 2 {
		t.Errorf("queued %d", p.Queued())
	}
}

func TestSPFName(t *testing.T) {
	p := NewSPF(cluster.WorstFit)
	if p.Name() != "GS-SPF" {
		t.Error("name")
	}
	if p.QueuedAt(workload.GlobalQueue) != 0 || p.QueuedAt(0) != 0 {
		t.Error("QueuedAt on empty policy")
	}
}

func TestSPFStableForEqualServiceTimes(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSPF(cluster.WorstFit)
	blocker := svcJob(1, 10, 32)
	p.Submit(ctx, blocker)
	// Equal service times: FCFS order must be preserved among ties.
	p.Submit(ctx, svcJob(2, 50, 4))
	p.Submit(ctx, svcJob(3, 50, 4))
	p.Submit(ctx, svcJob(4, 50, 4))
	ctx.finish(p, blocker)
	wantIDs(t, ctx.ids(), 1, 2, 3, 4)
}
