package policies

import (
	"fmt"
	"math"
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/rng"
)

// profileMatchesRef compares the flat profile against the reference
// slice-of-slices implementation, segment by segment.
func profileMatchesRef(p *profile, ref *refProfile) error {
	if p.n != len(ref.times) {
		return fmt.Errorf("flat has %d segments, reference %d:\nflat %s\nref  times %v idle %v",
			p.n, len(ref.times), profileString(p), ref.times, ref.idle)
	}
	for i := 0; i < p.n; i++ {
		if p.time(i) != ref.times[i] {
			return fmt.Errorf("segment %d starts at %g, reference %g", i, p.time(i), ref.times[i])
		}
		s := p.seg(i)
		for c := range s {
			if s[c] != ref.idle[i][c] {
				return fmt.Errorf("segment %d cluster %d idle %d, reference %d", i, c, s[c], ref.idle[i][c])
			}
		}
	}
	return nil
}

// TestProfileDifferential fuzzes random operation streams — earliestStart
// probes, reservations, and clock advances — through the flat
// sliding-window profile and the naive O(S²) reference in lockstep,
// asserting identical (start, placement) answers and identical segment
// contents after every step. This is the bit-identity oracle for the
// whole optimization: any divergence in the deque window, the rise-skip
// pruning, or the flat storage bookkeeping shows up here.
func TestProfileDifferential(t *testing.T) {
	fits := []cluster.Fit{cluster.WorstFit, cluster.BestFit, cluster.FirstFit}
	for seed := uint64(1); seed <= 60; seed++ {
		r := rng.NewStream(seed)
		nc := 1 + r.Intn(4)
		size := 8 + r.Intn(25)
		m := cluster.Uniform(nc, size)
		fit := fits[r.Intn(3)]

		// A random running set seeds both profiles with release breakpoints.
		var running []runInfo
		alloc := make([]int, nc)
		for i := 0; i < r.Intn(6); i++ {
			c := r.Intn(nc)
			w := 1 + r.Intn(size-alloc[c])
			m.Alloc([]int{w}, []int{c})
			alloc[c] += w
			running = append(running, runInfo{
				finish: 1 + r.Float64()*50, comps: []int{w}, placement: []int{c},
			})
			if alloc[c] == size {
				break
			}
		}
		p := newProfile(m, 0, running)
		ref := newRefProfile(m, 0, running)
		if err := profileMatchesRef(p, ref); err != nil {
			t.Fatalf("seed %d after build: %v", seed, err)
		}

		now := 0.0
		for step := 0; step < 80; step++ {
			switch op := r.Intn(10); {
			case op < 6: // probe, and reserve when feasible
				n := 1 + r.Intn(nc)
				comps := make([]int, n)
				for i := range comps {
					comps[i] = 1 + r.Intn(size)
				}
				for i := 1; i < n; i++ {
					if comps[i] > comps[i-1] {
						comps[i] = comps[i-1]
					}
				}
				dur := r.Float64() * 40 // zero-duration probes included
				gt, gp := p.earliestStart(comps, dur, fit)
				wt, wp := ref.earliestStart(comps, dur, fit)
				if gt != wt {
					t.Fatalf("seed %d step %d: earliestStart(%v, %g) = %g, reference %g\nflat %s",
						seed, step, comps, dur, gt, wt, profileString(p))
				}
				if len(gp) != len(wp) {
					t.Fatalf("seed %d step %d: placement %v, reference %v", seed, step, gp, wp)
				}
				for i := range gp {
					if gp[i] != wp[i] {
						t.Fatalf("seed %d step %d: placement %v, reference %v", seed, step, gp, wp)
					}
				}
				if !math.IsInf(gt, 1) && dur > 0 {
					p.reserve(comps, gp, gt, dur)
					ref.reserve(comps, wp, wt, dur)
				}
			case op < 9: // advance the clock into or exactly onto a segment
				if p.n > 1 && r.Intn(2) == 0 {
					// Land exactly on an existing breakpoint — including
					// ones that reserve's segmentAt splits created.
					now = p.time(1 + r.Intn(p.n-1))
				} else {
					now += r.Float64() * 15
				}
				p.trim(now)
				ref.trim(now)
			default: // clone must preserve the forecast
				var scratch profile
				p.cloneInto(&scratch).trim(now)
			}
			if err := profileMatchesRef(p, ref); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
		}
	}
}

// TestPlacementMonotone exhaustively verifies the property earliestStart's
// candidate pruning and the policies' capacity fast exits are built on:
// for every fit rule, if the greedy distinct-cluster placement succeeds on
// an idle vector, it succeeds on every pointwise-greater vector. The
// bounded enumeration (3 clusters with idle 0..4, every non-increasing
// component vector) covers all the structural cases — ties, equal idle
// values, components hitting exactly the minimum — that a sampled check
// could miss.
func TestPlacementMonotone(t *testing.T) {
	const nc, maxIdle = 3, 4
	var compSets [][]int
	for a := 1; a <= maxIdle; a++ {
		compSets = append(compSets, []int{a})
		for b := 1; b <= a; b++ {
			compSets = append(compSets, []int{a, b})
			for c := 1; c <= b; c++ {
				compSets = append(compSets, []int{a, b, c})
			}
		}
	}
	place := make([]int, nc)
	used := make([]bool, nc)
	var lo, hi [nc]int
	for _, fit := range []cluster.Fit{cluster.WorstFit, cluster.BestFit, cluster.FirstFit} {
		for h := 0; h < (maxIdle+1)*(maxIdle+1)*(maxIdle+1); h++ {
			hi[0], hi[1], hi[2] = h%(maxIdle+1), h/(maxIdle+1)%(maxIdle+1), h/((maxIdle+1)*(maxIdle+1))
			for lo[0] = 0; lo[0] <= hi[0]; lo[0]++ {
				for lo[1] = 0; lo[1] <= hi[1]; lo[1]++ {
					for lo[2] = 0; lo[2] <= hi[2]; lo[2]++ {
						for _, comps := range compSets {
							if !placeVectorInto(lo[:], comps, fit, place[:len(comps)], used) {
								continue
							}
							if !placeVectorInto(hi[:], comps, fit, place[:len(comps)], used) {
								t.Fatalf("fit %v: comps %v fit on %v but not on %v >= it",
									fit, comps, lo, hi)
							}
						}
					}
				}
			}
		}
	}
}
