package policies

import (
	"math"
	"sort"

	"coalloc/internal/cluster"
)

// refProfile is the naive reference implementation of the free-capacity
// profile: slice-of-slices segment storage and an O(S²·nc) earliestStart
// that rescans the whole duration window for every candidate start. It is
// the pre-optimization semantics, kept verbatim as the oracle for the
// differential property tests (TestProfileDifferential and friends) that
// pin the flat sliding-window profile bit-identical to it. It is not used
// by any policy.
type refProfile struct {
	times []float64
	idle  [][]int

	min   []int
	used  []bool
	place []int
}

// newRefProfile builds a reference profile from the current idle vector
// and the future releases of the running jobs.
func newRefProfile(m *cluster.Multicluster, now float64, running []runInfo) *refProfile {
	p := &refProfile{
		times: []float64{now},
		idle:  [][]int{make([]int, m.NumClusters())},
	}
	for c := 0; c < m.NumClusters(); c++ {
		p.idle[0][c] = m.Idle(c)
	}
	releases := append([]runInfo(nil), running...)
	sort.Slice(releases, func(a, b int) bool { return releases[a].finish < releases[b].finish })
	for _, r := range releases {
		if r.finish <= now {
			continue
		}
		idx := p.segmentAt(r.finish, true)
		for s := idx; s < len(p.times); s++ {
			for i, c := range r.placement {
				p.idle[s][c] += r.comps[i]
			}
		}
	}
	return p
}

// segmentAt returns the index of the segment starting exactly at t,
// inserting a breakpoint (split) when split is true and none exists.
func (p *refProfile) segmentAt(t float64, split bool) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	if !split {
		return i - 1
	}
	cp := append([]int(nil), p.idle[i-1]...)
	p.times = append(p.times, 0)
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.idle = append(p.idle, nil)
	copy(p.idle[i+1:], p.idle[i:])
	p.idle[i] = cp
	return i
}

// trim advances the profile start to now, dropping past segments.
func (p *refProfile) trim(now float64) {
	i := sort.SearchFloat64s(p.times, now)
	if i == len(p.times) || p.times[i] != now {
		i--
	}
	if i <= 0 {
		if p.times[0] < now {
			p.times[0] = now
		}
		return
	}
	nt := copy(p.times, p.times[i:])
	ni := copy(p.idle, p.idle[i:])
	p.times = p.times[:nt]
	p.idle = p.idle[:ni]
	p.times[0] = now
}

// minWindow returns the pointwise minimum idle vector over [t, t+dur) by
// rescanning every in-window segment — the quadratic inner loop the flat
// profile's monotonic deques replace.
func (p *refProfile) minWindow(t, dur float64) []int {
	end := t + dur
	start := sort.SearchFloat64s(p.times, t)
	if start == len(p.times) || p.times[start] != t {
		start--
	}
	if cap(p.min) < len(p.idle[0]) {
		p.min = make([]int, len(p.idle[0]))
	}
	min := p.min[:len(p.idle[0])]
	copy(min, p.idle[start])
	for s := start + 1; s < len(p.times) && p.times[s] < end; s++ {
		for c, v := range p.idle[s] {
			if v < min[c] {
				min[c] = v
			}
		}
	}
	return min
}

// earliestStart is the reference O(S²·nc) scan: every segment start is a
// candidate, and every candidate rescans its window and runs the greedy
// placement.
func (p *refProfile) earliestStart(comps []int, dur float64, fit cluster.Fit) (float64, []int) {
	n := len(p.idle[0])
	if cap(p.used) < n {
		p.used = make([]bool, n)
	}
	if cap(p.place) < len(comps) {
		p.place = make([]int, len(comps))
	}
	for s := 0; s < len(p.times); s++ {
		t := p.times[s]
		min := p.minWindow(t, dur)
		if placeVectorInto(min, comps, fit, p.place[:len(comps)], p.used[:n]) {
			return t, p.place[:len(comps)]
		}
	}
	return math.Inf(1), nil
}

// reserve subtracts the components from the profile over [t, t+dur).
func (p *refProfile) reserve(comps, placement []int, t, dur float64) {
	start := p.segmentAt(t, true)
	end := p.segmentAt(t+dur, true)
	for s := start; s < end; s++ {
		for i, c := range placement {
			p.idle[s][c] -= comps[i]
			if p.idle[s][c] < 0 {
				panic("policies: reservation overlaps beyond capacity")
			}
		}
	}
}
