package policies

// elidePasses gates the no-op scheduling pass elision: a Submit whose
// pass provably cannot start or re-reserve anything (head still blocked,
// no capacity released since the last pass, the new arrival out of reach)
// is skipped, with the observable counters the full pass would have
// emitted compensated exactly and the skip recorded under
// sched.passes_skipped. Every provable case rests on the same two facts:
// every capacity-changing event (departure, fault kill or repair) runs
// its own full pass, so between a pass and a following Submit only the
// new arrival changed; and the placement rules are monotone in the idle
// vector, so a head that failed on unchanged capacity fails again.
//
// The knob exists for the guardrail tests, which run the same seeds with
// elision on and off and require bit-identical results, traces and
// metrics (modulo the skip counter itself). It is read-only during a run;
// tests flip it serially.
var elidePasses = true

// SetPassElision toggles the no-op pass elision and returns the previous
// setting. It is not safe to call concurrently with running simulations.
func SetPassElision(enabled bool) bool {
	prev := elidePasses
	elidePasses = enabled
	return prev
}
