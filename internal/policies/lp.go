package policies

import (
	"fmt"

	"coalloc/internal/cluster"
	"coalloc/internal/obs"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// LP is the local-priority policy: single-component jobs are distributed
// among per-cluster local queues, and all multi-component jobs go to one
// global queue. The local schedulers have priority — the global scheduler
// may start jobs only while at least one local queue is empty.
//
// Disable bookkeeping follows the paper: a queue (local or global) whose
// head does not fit is disabled until the next departure. At a departure,
// if at least one local queue is empty, the global queue and the local
// queues are all enabled, starting with the global queue; otherwise only
// the local queues are enabled, and the global queue joins the visit list
// as soon as a local queue becomes empty.
type LP struct {
	locals        []queues.FIFO
	global        queues.FIFO
	set           *queues.EnableSet // local queues only
	globalEnabled bool              // head-miss disable state of the global queue
	fit           cluster.Fit
}

// NewLP returns the LP policy for a system of the given number of clusters.
func NewLP(clusters int, fit cluster.Fit) *LP {
	if clusters <= 0 {
		panic(fmt.Sprintf("policies: NewLP(%d)", clusters))
	}
	return &LP{
		locals:        make([]queues.FIFO, clusters),
		set:           queues.NewEnableSet(clusters),
		globalEnabled: true,
		fit:           fit,
	}
}

// Name returns "LP".
func (p *LP) Name() string { return "LP" }

// SetObserver wires the run observer into the local-queue enable/disable
// bookkeeping (policies.ObserverSetter). Global-queue transitions are
// reported from the pass itself.
func (p *LP) SetObserver(o *obs.Observer) { p.set.SetObserver(o) }

// Submit routes multi-component jobs to the global queue and
// single-component jobs to their local queue, then runs a scheduling pass.
func (p *LP) Submit(ctx Ctx, j *workload.Job) {
	// Pass elision: a pass leaves every enabled local queue empty, and an
	// enabled, eligible global queue empty too (a nonempty visited head
	// either starts or disables its queue); between passes only pushes
	// happen, so eligibility (some local queue empty) can only shrink. A
	// job landing in a disabled queue — or in a global queue the local
	// priority keeps ineligible — is therefore invisible to its pass:
	// nothing can start, a provable no-op.
	elide := false
	if j.Multi() {
		j.Queue = workload.GlobalQueue
		p.global.Push(j)
		elide = !p.globalEnabled || !p.anyLocalEmpty()
	} else {
		if j.Queue < 0 || j.Queue >= len(p.locals) {
			panic(fmt.Sprintf("policies: LP job %d routed to queue %d of %d", j.ID, j.Queue, len(p.locals)))
		}
		p.locals[j.Queue].Push(j)
		elide = !p.set.IsEnabled(j.Queue)
	}
	if elidePasses && elide {
		o := ctx.Obs()
		o.Pass()
		o.PassSkipped()
		return
	}
	p.pass(ctx)
}

// JobDeparted re-enables the queues (global first, per the paper) and runs
// a pass.
func (p *LP) JobDeparted(ctx Ctx, _ *workload.Job) {
	if !p.globalEnabled {
		ctx.Obs().QueueEnabled(workload.GlobalQueue)
	}
	p.globalEnabled = true
	p.set.EnableAll()
	p.pass(ctx)
}

// CapacityLost is a no-op: LP keeps no capacity forecast, and shrinking
// the idle pool admits nothing (policies.FaultAware).
func (p *LP) CapacityLost(Ctx, int) {}

// CapacityRestored re-enables the queues global-first, the same ordering
// contract as a departure (policies.FaultAware).
func (p *LP) CapacityRestored(ctx Ctx, _ int) { p.JobDeparted(ctx, nil) }

// JobKilled reacts to an aborted job like a departure (policies.FaultAware).
func (p *LP) JobKilled(ctx Ctx, _ *workload.Job, _ int) { p.JobDeparted(ctx, nil) }

// anyLocalEmpty reports whether some local queue is empty — the paper's
// precondition for the global scheduler to run jobs.
func (p *LP) anyLocalEmpty() bool {
	for i := range p.locals {
		if p.locals[i].Empty() {
			return true
		}
	}
	return false
}

// pass visits the global queue (when eligible) and then the enabled local
// queues, in rounds, until a full round starts nothing.
func (p *LP) pass(ctx Ctx) {
	m := ctx.Cluster()
	o := ctx.Obs()
	s := ctx.Scratch()
	o.Pass()
	for {
		progress := false
		// The global queue is visited first, and only while it is both
		// enabled (no unserviced head miss) and eligible (some local
		// queue empty).
		if p.globalEnabled && p.anyLocalEmpty() {
			if head := p.global.Head(); head != nil {
				if m.PlaceInto(head.Components, p.fit, s.Place, s.Used) {
					p.global.Pop()
					ctx.Dispatch(head, s.Place[:len(head.Components)])
					progress = true
				} else {
					p.globalEnabled = false
					o.HeadMiss(workload.GlobalQueue)
					ctx.Dec().HeadMiss(ctx.Now(), head, m, p.fit)
					o.QueueDisabled(workload.GlobalQueue)
				}
			}
		}
		round := append(s.Round[:0], p.set.Enabled()...)
		for _, q := range round {
			head := p.locals[q].Head()
			if head == nil {
				continue
			}
			if m.FitsOn(q, head.Components[0]) {
				p.locals[q].Pop()
				s.Place[0] = q
				ctx.Dispatch(head, s.Place[:1])
				progress = true
			} else {
				o.HeadMiss(q)
				ctx.Dec().LocalMiss(ctx.Now(), head, m, q)
				p.set.Disable(q)
			}
		}
		if !progress {
			return
		}
	}
}

// Queued returns the total number of waiting jobs (global + local).
func (p *LP) Queued() int {
	n := p.global.Len()
	for i := range p.locals {
		n += p.locals[i].Len()
	}
	return n
}

// QueuedAt returns the length of local queue q, or of the global queue for
// workload.GlobalQueue.
func (p *LP) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return p.global.Len()
	}
	if q < 0 || q >= len(p.locals) {
		return 0
	}
	return p.locals[q].Len()
}
