package policies

import (
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

// arenaCtx is a Ctx whose Dispatch copies the placement into an arena,
// exactly as the simulator's does — the setup under which the scheduling
// hot path is supposed to be allocation-free.
type arenaCtx struct {
	m       *cluster.Multicluster
	scratch *Scratch
	arena   *workload.Arena
	last    *workload.Job
}

func (c *arenaCtx) Cluster() *cluster.Multicluster { return c.m }
func (c *arenaCtx) Now() float64                   { return 0 }
func (c *arenaCtx) Obs() *obs.Observer             { return nil }
func (c *arenaCtx) Dec() *dectrace.Tracer          { return nil }
func (c *arenaCtx) Scratch() *Scratch              { return c.scratch }

func (c *arenaCtx) Dispatch(j *workload.Job, placement []int) {
	c.m.Alloc(j.Components, placement)
	j.Placement = c.arena.CopyInts(placement)
	c.last = j
}

// TestLSSteadyStateZeroAlloc pins the memory-lean pipeline end to end for
// a fixed LS cycle: sampling a job from a warmed arena, submitting it
// (queue push, enable-set bookkeeping, placement into shared scratch,
// dispatch with an arena-carved placement copy) and retiring it must
// allocate nothing. Any regression — a policy growing per-pass garbage, a
// queue re-allocating scratch, the arena losing its consolidated block —
// shows up as a nonzero count here.
func TestLSSteadyStateZeroAlloc(t *testing.T) {
	spec := workload.Spec{ComponentLimit: 16, Clusters: 4, ExtensionFactor: 1.25}
	arena := workload.NewArena()
	ctx := &arenaCtx{
		m:       cluster.New([]int{32, 32, 32, 32}),
		scratch: NewScratch(4),
		arena:   arena,
	}
	p := NewLS(4, cluster.WorstFit)
	// A mix of 1-, 2- and 3-component totals, cycled deterministically.
	sizes := []int{5, 24, 48, 17, 3, 31}
	var id int64
	si, qi := 0, 0
	cycle := func() {
		arena.Reset()
		j := spec.JobFromDraws(arena, sizes[si], 10)
		si = (si + 1) % len(sizes)
		id++
		j.ID = id
		j.Queue = qi
		qi = (qi + 1) % 4
		p.Submit(ctx, j)
		if ctx.last != j {
			t.Fatal("job not dispatched into an empty system")
		}
		ctx.last = nil
		ctx.m.Release(j.Components, j.Placement)
		p.JobDeparted(ctx, j)
	}
	// Warm up: let the arena, queues and enable-set reach capacity.
	for i := 0; i < 200; i++ {
		cycle()
	}
	if a := testing.AllocsPerRun(500, cycle); a != 0 {
		t.Fatalf("LS steady-state cycle allocates %.2f times per job, want 0", a)
	}
}
