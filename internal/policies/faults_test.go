package policies

import (
	"math"
	"sort"
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

// TestProfileRepairDifferential is the fault-path counterpart of
// TestIncrementalProfileMatchesRebuilt: it drives a Conservative policy
// through random streams that interleave arrivals, departures, and the
// three FaultAware events — silent capacity loss, a kill that aborts a
// running job, and a repair — and checks after every event that the
// incrementally repaired pass profile is identical to one rebuilt from
// scratch out of the multicluster state and the running set. The fault
// probability stands in for the MTBF axis of the core-level tests: a
// higher rate packs more capacity churn into the same stream length.
func TestProfileRepairDifferential(t *testing.T) {
	// check() rebuilds into the policy's retained scratch profile; run with
	// full passes only so the policy never trusts clobbered scratch.
	defer SetPassElision(SetPassElision(false))
	for _, rate := range []float64{0.05, 0.15, 0.30} {
		for seed := uint64(1); seed <= 12; seed++ {
			profileRepairDifferential(t, seed, rate)
		}
	}
}

func profileRepairDifferential(t *testing.T, seed uint64, rate float64) {
	t.Helper()
	r := rng.NewStream(seed)
	nc := 1 + r.Intn(4)
	size := 16 + r.Intn(17)
	sizes := make([]int, nc)
	for i := range sizes {
		sizes[i] = size
	}
	ctx := newMockCtx(sizes...)
	var p *Conservative
	if nc == 1 {
		p = NewSCConservative(DefaultLookahead)
	} else {
		p = NewConservative([]cluster.Fit{cluster.WorstFit, cluster.BestFit, cluster.FirstFit}[r.Intn(3)], DefaultLookahead)
	}

	finish := map[*workload.Job]float64{}
	dispatched := 0
	var nextID int64

	submit := func() {
		nextID++
		n := 1 + r.Intn(nc)
		comps := make([]int, n)
		for i := range comps {
			comps[i] = 1 + r.Intn(size)
		}
		for i := 1; i < n; i++ {
			if comps[i] > comps[i-1] {
				comps[i] = comps[i-1]
			}
		}
		p.Submit(ctx, svcJob(nextID, 1+r.Float64()*100, comps...))
	}
	check := func(what string) {
		t.Helper()
		got := p.passProfile(ctx.m, ctx.now)
		want := newProfile(ctx.m, ctx.now, p.running)
		if !profilesEqual(got, want) {
			t.Fatalf("seed %d rate %g after %s at t=%g:\nincremental %s\nrebuilt     %s",
				seed, rate, what, ctx.now, profileString(got), profileString(want))
		}
	}
	record := func() {
		for ; dispatched < len(ctx.dispatched); dispatched++ {
			j := ctx.dispatched[dispatched]
			finish[j] = ctx.now + j.ExtendedServiceTime
		}
	}
	// faultEvent applies one randomly chosen fault event on a random
	// cluster, reporting whether an applicable one existed. Victim choice is
	// deterministic (highest ID with a component on the cluster) because the
	// mock never sets StartTime, the key faults.SelectVictim orders by.
	faultEvent := func() bool {
		t.Helper()
		c := r.Intn(nc)
		switch r.Intn(3) {
		case 0: // silent failure of an idle processor
			if ctx.m.Idle(c) == 0 {
				return false
			}
			ctx.m.Fail(c)
			p.CapacityLost(ctx, c)
			record()
			check("silent failure")
		case 1: // failure aborts a running job with a component on c
			var victim *workload.Job
			for j := range finish {
				for _, pc := range j.Placement {
					if pc == c && (victim == nil || j.ID > victim.ID) {
						victim = j
						break
					}
				}
			}
			if victim == nil {
				return false
			}
			delete(finish, victim)
			ctx.m.Release(victim.Components, victim.Placement)
			ctx.m.Fail(c)
			p.JobKilled(ctx, victim, c)
			record()
			check("kill")
		case 2: // repair returns one down processor
			if ctx.m.Down(c) == 0 {
				return false
			}
			ctx.m.Repair(c)
			p.CapacityRestored(ctx, c)
			record()
			check("repair")
		}
		return true
	}

	for step := 0; step < 120; step++ {
		// Find the earliest pending departure.
		var dj *workload.Job
		dt := math.Inf(1)
		for j, f := range finish {
			if f < dt || (f == dt && j.ID < dj.ID) {
				dj, dt = j, f
			}
		}
		if r.Float64() < rate {
			// A fault arrives strictly before the next departure fires.
			if dj != nil {
				ctx.now += r.Float64() * (dt - ctx.now)
			} else {
				ctx.now += r.Float64() * 20
			}
			if faultEvent() {
				continue
			}
		}
		if dj != nil && r.Float64() < 0.12 {
			run := make([]*workload.Job, 0, len(finish))
			for j := range finish {
				run = append(run, j)
			}
			sort.Slice(run, func(a, b int) bool { return run[a].ID < run[b].ID })
			ej := run[r.Intn(len(run))]
			if f := finish[ej]; f > ctx.now {
				ctx.now += r.Float64() * (math.Min(dt, f) - ctx.now)
			}
			delete(finish, ej)
			ctx.finish(p, ej)
			record()
			check("early departure")
			continue
		}
		if dj == nil || (p.Queued() < 24 && r.Float64() < 0.55) {
			if dj != nil && r.Float64() < 0.25 {
				ctx.now = dt
			} else if dj != nil {
				ctx.now += r.Float64() * (dt - ctx.now)
			} else {
				ctx.now += r.Float64() * 20
			}
			submit()
			record()
			check("arrival")
		} else {
			ctx.now = dt
			delete(finish, dj)
			ctx.finish(p, dj)
			record()
			check("departure")
		}
	}
}

// TestConservativeJobKilledRepairsProfile pins the kill repair on a
// deterministic scenario: the victim leaves the running set, its window
// returns to the profile minus the processor the failure consumed, and the
// forced full pass dispatches a queued job into the released capacity.
func TestConservativeJobKilledRepairsProfile(t *testing.T) {
	defer SetPassElision(SetPassElision(false))
	ctx := newMockCtx(32)
	p := NewSCConservative(DefaultLookahead)
	j1 := svcJob(1, 100, 20)
	j2 := svcJob(2, 100, 12)
	p.Submit(ctx, j1)
	p.Submit(ctx, j2)
	p.Submit(ctx, svcJob(3, 10, 11)) // blocked: 0 idle; reserved at t=100
	wantIDs(t, ctx.ids(), 1, 2)

	// A failure lands on the fully busy cluster at t=30 and aborts job 2:
	// 12 processors come back, one of them goes down.
	ctx.now = 30
	ctx.m.Release(j2.Components, j2.Placement)
	ctx.m.Fail(0)
	p.JobKilled(ctx, j2, 0)

	// The repair pass sees 11 idle survivors and starts job 3 into them.
	wantIDs(t, ctx.ids(), 1, 2, 3)
	for i := range p.running {
		if p.running[i].job == j2 {
			t.Fatal("killed job still in the running set")
		}
	}
	if p.availVec[0] != 31 {
		t.Errorf("availVec[0] = %d after the kill, want 31", p.availVec[0])
	}
	got := p.passProfile(ctx.m, ctx.now)
	want := newProfile(ctx.m, ctx.now, p.running)
	if !profilesEqual(got, want) {
		t.Errorf("repaired profile differs from rebuild:\nincremental %s\nrebuilt     %s",
			profileString(got), profileString(want))
	}
}

// TestConservativeCapacityRoundTrip pins the silent-failure/repair pair: a
// shrink updates the never-fits vector (a full-machine job becomes +Inf),
// and the repair re-derives the verdict — the job gets its finite
// reservation back. The profile matches a rebuild at every stage.
func TestConservativeCapacityRoundTrip(t *testing.T) {
	defer SetPassElision(SetPassElision(false))
	ctx := newMockCtx(32)
	p := NewSCConservative(DefaultLookahead)
	p.Submit(ctx, svcJob(1, 100, 24)) // runs until t=100; 8 idle

	checkProfile := func(stage string) {
		t.Helper()
		got := p.passProfile(ctx.m, ctx.now)
		want := newProfile(ctx.m, ctx.now, p.running)
		if !profilesEqual(got, want) {
			t.Fatalf("%s: profile differs from rebuild:\nincremental %s\nrebuilt     %s",
				stage, profileString(got), profileString(want))
		}
	}

	ctx.m.Fail(0)
	p.CapacityLost(ctx, 0)
	if p.availVec[0] != 31 {
		t.Fatalf("availVec[0] = %d after the failure, want 31", p.availVec[0])
	}
	checkProfile("after silent failure")

	// A full-machine job can never fit at capacity 31: +Inf, holds no
	// window, so a small job behind it starts immediately.
	p.Submit(ctx, svcJob(2, 50, 32))
	p.Submit(ctx, svcJob(3, 10, 7))
	wantIDs(t, ctx.ids(), 1, 3)
	if len(p.resvs) != 1 || !math.IsInf(p.resvs[0].t, 1) {
		t.Fatalf("full-machine job at capacity 31: resvs %+v, want one +Inf entry", p.resvs)
	}

	ctx.m.Repair(0)
	p.CapacityRestored(ctx, 0)
	checkProfile("after repair")
	if p.availVec[0] != 32 {
		t.Fatalf("availVec[0] = %d after the repair, want 32", p.availVec[0])
	}
	// The restored capacity re-derives the +Inf verdict: the job now holds
	// a finite reservation at t=100, when the machine empties.
	if len(p.resvs) != 1 || p.resvs[0].t != 100 {
		t.Errorf("full-machine job after repair: resvs %+v, want one entry at t=100", p.resvs)
	}
}

// TestEASYJobKilledReleasesVictim pins the EASY kill path: the victim
// leaves the running set and the forced pass backfills a queued job into
// the capacity the abort released (minus the failed processor).
func TestEASYJobKilledReleasesVictim(t *testing.T) {
	ctx := newMockCtx(32)
	p := NewSCEASY()
	j1 := svcJob(1, 100, 20)
	j2 := svcJob(2, 100, 12)
	p.Submit(ctx, j1)
	p.Submit(ctx, j2)                // machine full
	p.Submit(ctx, svcJob(3, 10, 11)) // queued
	wantIDs(t, ctx.ids(), 1, 2)

	ctx.m.Release(j2.Components, j2.Placement)
	ctx.m.Fail(0)
	p.JobKilled(ctx, j2, 0)

	// 12 released, 1 down: job 3 (11 procs) fits the 11 survivors.
	wantIDs(t, ctx.ids(), 1, 2, 3)
	for i := range p.running {
		if p.running[i].job == j2 {
			t.Fatal("killed job still in the running set")
		}
	}
}

// TestEASYStuckHeadUnsticksOnRepair pins the stuck-watermark lifecycle
// under faults: a head exceeding the post-failure up capacity sets the
// watermark, elided passes preserve it (and FCFS semantics), and the
// repair's full pass re-derives it against the restored capacity and
// starts the head.
func TestEASYStuckHeadUnsticksOnRepair(t *testing.T) {
	defer SetPassElision(SetPassElision(true))
	ctx := newMockCtx(8)
	p := NewSCEASY()
	ctx.m.Fail(0)
	p.CapacityLost(ctx, 0) // capacity 7

	p.Submit(ctx, svcJob(1, 10, 8))
	if !p.stuck {
		t.Fatal("head exceeding the up capacity did not set the stuck watermark")
	}
	p.Submit(ctx, svcJob(2, 10, 4))
	wantIDs(t, ctx.ids()) // nothing starts behind an unreservable head
	if !p.stuck {
		t.Fatal("elided pass cleared the watermark")
	}

	ctx.m.Repair(0)
	p.CapacityRestored(ctx, 0)
	wantIDs(t, ctx.ids(), 1)
	if p.stuck {
		t.Error("watermark survived the pass that started the head")
	}
}
