package policies

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

// splitBreakpoint returns a base-profile breakpoint strictly inside
// (now, limit), or now when there is none — the target for arrivals that
// land exactly on a reservation split.
func splitBreakpoint(p *profile, now, limit float64) float64 {
	if p == nil {
		return now
	}
	for i := 1; i < p.n; i++ {
		if t := p.time(i); t > now && t < limit {
			return t
		}
	}
	return now
}

// profilesEqual reports whether two profiles describe identical forecasts:
// same breakpoints, same idle vector on every segment. It compares through
// the accessors, so profiles with different physical offsets into their
// flat backing arrays still compare equal when they describe the same
// forecast.
func profilesEqual(a, b *profile) bool {
	if a.n != b.n || a.nc != b.nc {
		return false
	}
	for i := 0; i < a.n; i++ {
		if a.time(i) != b.time(i) {
			return false
		}
		sa, sb := a.seg(i), b.seg(i)
		for c := range sa {
			if sa[c] != sb[c] {
				return false
			}
		}
	}
	return true
}

// profileString renders a profile for failure messages.
func profileString(p *profile) string {
	var times []float64
	var idle [][]int
	for i := 0; i < p.n; i++ {
		times = append(times, p.time(i))
		idle = append(idle, p.seg(i))
	}
	return fmt.Sprintf("times %v idle %v", times, idle)
}

// TestIncrementalProfileMatchesRebuilt drives a Conservative policy
// through random engine-like job streams (arrivals and exact-time
// departures, including arrivals that tie with a departure and are
// processed first, as the FIFO event order allows) and checks after every
// event that the incrementally maintained pass profile is identical to
// one rebuilt from scratch out of the running set. The stream also
// exercises two corners of the incremental bookkeeping: arrivals landing
// exactly on a breakpoint that a reservation's segmentAt split created
// (trim-after-split), and jobs departing strictly before their forecast
// finish (the releaseEarly path a preemptive Ctx or a fault kill takes).
func TestIncrementalProfileMatchesRebuilt(t *testing.T) {
	// check() calls passProfile directly, which rebuilds into the policy's
	// retained scratch profile; run with full passes only so the policy
	// never trusts scratch contents this test has clobbered.
	defer SetPassElision(SetPassElision(false))
	for seed := uint64(1); seed <= 30; seed++ {
		r := rng.NewStream(seed)
		nc := 1 + r.Intn(4)
		size := 16 + r.Intn(17)
		sizes := make([]int, nc)
		for i := range sizes {
			sizes[i] = size
		}
		ctx := newMockCtx(sizes...)
		var p *Conservative
		if nc == 1 {
			p = NewSCConservative(DefaultLookahead)
		} else {
			p = NewConservative([]cluster.Fit{cluster.WorstFit, cluster.BestFit, cluster.FirstFit}[r.Intn(3)], DefaultLookahead)
		}

		finish := map[*workload.Job]float64{}
		dispatched := 0
		var nextID int64

		submit := func() {
			nextID++
			n := 1 + r.Intn(nc)
			comps := make([]int, n)
			for i := range comps {
				comps[i] = 1 + r.Intn(size)
			}
			for i := 1; i < n; i++ {
				if comps[i] > comps[i-1] {
					comps[i] = comps[i-1]
				}
			}
			p.Submit(ctx, svcJob(nextID, 1+r.Float64()*100, comps...))
		}
		check := func(what string) {
			t.Helper()
			got := p.passProfile(ctx.m, ctx.now)
			want := newProfile(ctx.m, ctx.now, p.running)
			if !profilesEqual(got, want) {
				t.Fatalf("seed %d after %s at t=%g:\nincremental %s\nrebuilt     %s",
					seed, what, ctx.now, profileString(got), profileString(want))
			}
		}
		record := func() {
			for ; dispatched < len(ctx.dispatched); dispatched++ {
				j := ctx.dispatched[dispatched]
				finish[j] = ctx.now + j.ExtendedServiceTime
			}
		}

		for step := 0; step < 120; step++ {
			// Find the earliest pending departure.
			var dj *workload.Job
			dt := math.Inf(1)
			for j, f := range finish {
				if f < dt || (f == dt && j.ID < dj.ID) {
					dj, dt = j, f
				}
			}
			if dj != nil && r.Float64() < 0.12 {
				// Early departure: a random running job leaves strictly
				// before its forecast finish, so JobDeparted must give the
				// remaining reservation back (releaseEarly).
				run := make([]*workload.Job, 0, len(finish))
				for j := range finish {
					run = append(run, j)
				}
				sort.Slice(run, func(a, b int) bool { return run[a].ID < run[b].ID })
				ej := run[r.Intn(len(run))]
				if f := finish[ej]; f > ctx.now {
					ctx.now += r.Float64() * (math.Min(dt, f) - ctx.now)
				}
				delete(finish, ej)
				ctx.finish(p, ej)
				record()
				check("early departure")
				continue
			}
			if dj == nil || (p.Queued() < 24 && r.Float64() < 0.55) {
				// Arrival: sometimes exactly at the next finish time,
				// before that departure fires — the event tie the FIFO
				// engine order permits; sometimes exactly on a base-profile
				// breakpoint, which a reservation split may have created.
				if bp := splitBreakpoint(p.base, ctx.now, dt); bp > ctx.now && r.Float64() < 0.25 {
					ctx.now = bp
				} else if dj != nil && r.Float64() < 0.25 {
					ctx.now = dt
				} else if dj != nil {
					ctx.now += r.Float64() * (dt - ctx.now)
				} else {
					ctx.now += r.Float64() * 20
				}
				submit()
				record()
				check("arrival")
			} else {
				ctx.now = dt
				delete(finish, dj)
				ctx.finish(p, dj)
				record()
				check("departure")
			}
		}
	}
}

// TestProfileTrimAndClone pins the low-level invariants the incremental
// path relies on: trim drops past segments, keeps a breakpoint landing
// exactly on now, and cloneInto produces an independent copy.
func TestProfileTrimAndClone(t *testing.T) {
	m := cluster.New([]int{32})
	m.Alloc([]int{12}, []int{0})
	p := newProfile(m, 0, []runInfo{
		{finish: 10, comps: []int{8}, placement: []int{0}},
		{finish: 20, comps: []int{4}, placement: []int{0}},
	})
	// Segments: [0,10): 20, [10,20): 28, [20,inf): 32.
	p.trim(5)
	if p.n != 3 || p.time(0) != 5 || p.seg(0)[0] != 20 {
		t.Fatalf("trim(5): %s", profileString(p))
	}
	p.trim(10)
	if p.n != 2 || p.time(0) != 10 || p.seg(0)[0] != 28 {
		t.Fatalf("trim(10): %s", profileString(p))
	}
	if p.off != 1 {
		t.Errorf("trim(10) offset %d, want 1 (logical drop, no copy)", p.off)
	}
	var scratch profile
	cp := p.cloneInto(&scratch)
	if !profilesEqual(cp, p) {
		t.Fatalf("clone differs: %s vs %s", profileString(cp), profileString(p))
	}
	if cp.off != 0 {
		t.Errorf("clone offset %d, want 0 (clones start compacted)", cp.off)
	}
	cp.seg(0)[0] = -999
	cp.times[0] = -999
	if p.seg(0)[0] != 28 || p.time(0) != 10 {
		t.Error("clone shares storage with the original")
	}
}

// TestProfileTrimCompacts drives the offset past the live length so the
// batched physical compaction runs, and checks against the reference
// profile that the forecast survives it.
func TestProfileTrimCompacts(t *testing.T) {
	m := cluster.New([]int{32, 32})
	m.Alloc([]int{4, 4}, []int{0, 1})
	var running []runInfo
	for i := 0; i < 8; i++ {
		running = append(running, runInfo{
			finish: float64(10 * (i + 1)), comps: []int{1}, placement: []int{i % 2},
		})
	}
	m.Alloc([]int{8}, []int{0})
	running = append(running, runInfo{finish: 200, comps: []int{8}, placement: []int{0}})
	p := newProfile(m, 0, running)
	ref := newRefProfile(m, 0, running)
	for _, now := range []float64{10, 20, 30, 40, 50, 60, 70} {
		p.trim(now)
		ref.trim(now)
		if p.off != 0 && p.off >= p.n {
			t.Fatalf("trim(%g): offset %d not compacted with %d live segments", now, p.off, p.n)
		}
		if err := profileMatchesRef(p, ref); err != nil {
			t.Fatalf("trim(%g): %v", now, err)
		}
	}
}
