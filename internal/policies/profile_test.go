package policies

import (
	"math"
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

// profilesEqual reports whether two profiles describe identical forecasts:
// same breakpoints, same idle vector on every segment.
func profilesEqual(a, b *profile) bool {
	if len(a.times) != len(b.times) {
		return false
	}
	for i := range a.times {
		if a.times[i] != b.times[i] {
			return false
		}
		if len(a.idle[i]) != len(b.idle[i]) {
			return false
		}
		for c := range a.idle[i] {
			if a.idle[i][c] != b.idle[i][c] {
				return false
			}
		}
	}
	return true
}

// TestIncrementalProfileMatchesRebuilt drives a Conservative policy
// through random engine-like job streams (arrivals and exact-time
// departures, including arrivals that tie with a departure and are
// processed first, as the FIFO event order allows) and checks after every
// event that the incrementally maintained pass profile is identical to
// one rebuilt from scratch out of the running set.
func TestIncrementalProfileMatchesRebuilt(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		r := rng.NewStream(seed)
		nc := 1 + r.Intn(4)
		size := 16 + r.Intn(17)
		sizes := make([]int, nc)
		for i := range sizes {
			sizes[i] = size
		}
		ctx := newMockCtx(sizes...)
		var p *Conservative
		if nc == 1 {
			p = NewSCConservative()
		} else {
			p = NewConservative([]cluster.Fit{cluster.WorstFit, cluster.BestFit, cluster.FirstFit}[r.Intn(3)])
		}

		finish := map[*workload.Job]float64{}
		dispatched := 0
		var nextID int64

		submit := func() {
			nextID++
			n := 1 + r.Intn(nc)
			comps := make([]int, n)
			for i := range comps {
				comps[i] = 1 + r.Intn(size)
			}
			for i := 1; i < n; i++ {
				if comps[i] > comps[i-1] {
					comps[i] = comps[i-1]
				}
			}
			p.Submit(ctx, svcJob(nextID, 1+r.Float64()*100, comps...))
		}
		check := func(what string) {
			t.Helper()
			got := p.passProfile(ctx.m, ctx.now)
			want := newProfile(ctx.m, ctx.now, p.running)
			if !profilesEqual(got, want) {
				t.Fatalf("seed %d after %s at t=%g:\nincremental times %v idle %v\nrebuilt     times %v idle %v",
					seed, what, ctx.now, got.times, got.idle, want.times, want.idle)
			}
		}
		record := func() {
			for ; dispatched < len(ctx.dispatched); dispatched++ {
				j := ctx.dispatched[dispatched]
				finish[j] = ctx.now + j.ExtendedServiceTime
			}
		}

		for step := 0; step < 120; step++ {
			// Find the earliest pending departure.
			var dj *workload.Job
			dt := math.Inf(1)
			for j, f := range finish {
				if f < dt || (f == dt && j.ID < dj.ID) {
					dj, dt = j, f
				}
			}
			if dj == nil || (p.Queued() < 24 && r.Float64() < 0.55) {
				// Arrival: sometimes exactly at the next finish time,
				// before that departure fires — the event tie the FIFO
				// engine order permits.
				if dj != nil && r.Float64() < 0.25 {
					ctx.now = dt
				} else if dj != nil {
					ctx.now += r.Float64() * (dt - ctx.now)
				} else {
					ctx.now += r.Float64() * 20
				}
				submit()
				record()
				check("arrival")
			} else {
				ctx.now = dt
				delete(finish, dj)
				ctx.finish(p, dj)
				record()
				check("departure")
			}
		}
	}
}

// TestProfileTrimAndClone pins the low-level invariants the incremental
// path relies on: trim drops past segments, keeps a breakpoint landing
// exactly on now, and cloneInto produces an independent copy.
func TestProfileTrimAndClone(t *testing.T) {
	m := cluster.New([]int{32})
	p := newProfile(m, 0, []runInfo{
		{finish: 10, comps: []int{8}, placement: []int{0}},
		{finish: 20, comps: []int{4}, placement: []int{0}},
	})
	m.Alloc([]int{12}, []int{0})
	p = newProfile(m, 0, []runInfo{
		{finish: 10, comps: []int{8}, placement: []int{0}},
		{finish: 20, comps: []int{4}, placement: []int{0}},
	})
	// Segments: [0,10): 20, [10,20): 28, [20,inf): 32.
	p.trim(5)
	if p.times[0] != 5 || p.idle[0][0] != 20 || len(p.times) != 3 {
		t.Fatalf("trim(5): times %v idle %v", p.times, p.idle)
	}
	p.trim(10)
	if len(p.times) != 2 || p.times[0] != 10 || p.idle[0][0] != 28 {
		t.Fatalf("trim(10): times %v idle %v", p.times, p.idle)
	}
	if len(p.spare) == 0 {
		t.Error("trim did not recycle the dropped idle vector")
	}
	var scratch profile
	cp := p.cloneInto(&scratch)
	if !profilesEqual(cp, p) {
		t.Fatalf("clone differs: %v %v vs %v %v", cp.times, cp.idle, p.times, p.idle)
	}
	cp.idle[0][0] = -999
	cp.times[0] = -999
	if p.idle[0][0] != 28 || p.times[0] != 10 {
		t.Error("clone shares storage with the original")
	}
}
