package policies

import (
	"math"
	"sort"

	"coalloc/internal/cluster"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// EASY is GS with EASY (aggressive) backfilling over unordered requests —
// an extension beyond the paper, which notes that LS's multiple queues act
// as "a form of backfilling with a window equal to the number of
// clusters". EASY removes the window limit: when the head of the global
// queue does not fit, it receives a reservation at the earliest time it
// will fit given the known finish times of the running jobs, and any later
// job in the queue may start immediately as long as doing so does not
// delay that reservation.
//
// Because the simulator knows exact service times, the reservation uses
// exact runtimes; a production EASY scheduler relies on user estimates,
// making real backfilling somewhat less effective. This implementation is
// therefore an upper bound on EASY's benefit (see DESIGN.md section 6).
type EASY struct {
	name    string
	q       queues.FIFO
	fit     cluster.Fit
	running []runInfo // kept sorted by ascending finish time

	// Scratch buffers for earliestFit/fitsVector, sized to the cluster
	// count on first use; they keep the reservation arithmetic
	// allocation-free.
	scrIdle  []int
	scrUsed  []bool
	scrPlace []int
}

// runInfo tracks one running job for reservation arithmetic.
type runInfo struct {
	job       *workload.Job
	finish    float64
	comps     []int
	placement []int
}

// NewEASY returns the EASY-backfilling global scheduler.
func NewEASY(fit cluster.Fit) *EASY { return &EASY{name: "GS-EASY", fit: fit} }

// NewSCEASY returns the single-cluster FCFS + EASY reference policy.
func NewSCEASY() *EASY { return &EASY{name: "SC-EASY", fit: cluster.WorstFit} }

// Name returns "GS-EASY" or "SC-EASY".
func (p *EASY) Name() string { return p.name }

// Submit enqueues the job at the global queue and runs a scheduling pass.
func (p *EASY) Submit(ctx Ctx, j *workload.Job) {
	j.Queue = workload.GlobalQueue
	p.q.Push(j)
	p.pass(ctx)
}

// JobDeparted drops the job from the running set and runs a pass. The
// removal preserves the finish-time ordering.
func (p *EASY) JobDeparted(ctx Ctx, j *workload.Job) {
	for i := range p.running {
		if p.running[i].job == j {
			p.running = append(p.running[:i], p.running[i+1:]...)
			break
		}
	}
	p.pass(ctx)
}

// start dispatches a job and inserts it into the running set in
// finish-time order, so earliestFit never needs to sort. The runInfo
// records j.Placement — the stable copy Dispatch is contracted to leave
// on the job — because the placement argument may live in pass scratch.
func (p *EASY) start(ctx Ctx, j *workload.Job, placement []int) {
	ctx.Dispatch(j, placement)
	r := runInfo{
		job:       j,
		finish:    ctx.Now() + j.ExtendedServiceTime,
		comps:     j.Components,
		placement: j.Placement,
	}
	i := sort.Search(len(p.running), func(k int) bool { return p.running[k].finish > r.finish })
	p.running = append(p.running, runInfo{})
	copy(p.running[i+1:], p.running[i:])
	p.running[i] = r
}

// pass starts head jobs while they fit, then backfills behind a blocked
// head without delaying its reservation.
func (p *EASY) pass(ctx Ctx) {
	m := ctx.Cluster()
	o := ctx.Obs()
	s := ctx.Scratch()
	o.Pass()
	// Phase 1: plain FCFS starts from the head.
	for {
		head := p.q.Head()
		if head == nil {
			return
		}
		if !m.PlaceInto(head.Components, p.fit, s.Place, s.Used) {
			o.HeadMiss(workload.GlobalQueue)
			break
		}
		p.q.Pop()
		p.start(ctx, head, s.Place[:len(head.Components)])
	}
	// Phase 2: the head is blocked; compute its reservation.
	head := p.q.Head()
	shadow := p.earliestFit(m, head.Components, ctx.Now(), nil)
	if math.IsInf(shadow, 1) {
		// The head can never fit (a component exceeds every cluster);
		// it blocks the queue forever, exactly as plain FCFS would.
		return
	}
	// Phase 3: scan the rest of the queue for backfill candidates.
	// Pop/re-push is avoided: collect indices to start, then rebuild.
	s.Started = s.Started[:0]
	p.q.ForEachWaiting(func(idx int, j *workload.Job) bool {
		if idx == 0 {
			return true // the head itself
		}
		o.BackfillAttempt()
		if !m.PlaceInto(j.Components, p.fit, s.Place, s.Used) {
			return true
		}
		placement := s.Place[:len(j.Components)]
		// Would starting j delay the head's reservation? Evaluate the
		// head's earliest fit with j hypothetically running.
		hypo := runInfo{
			finish:    ctx.Now() + j.ExtendedServiceTime,
			comps:     j.Components,
			placement: placement,
		}
		m.Alloc(j.Components, placement)
		delayed := p.earliestFit(m, head.Components, ctx.Now(), &hypo) > shadow
		if delayed {
			m.Release(j.Components, placement)
			return true
		}
		// Start j for real: the processors are already allocated, so
		// dispatch must not allocate again — start via dispatchHeld.
		p.dispatchHeld(ctx, j, placement)
		o.BackfillSuccess()
		s.Started = append(s.Started, j)
		return true
	})
	if len(s.Started) > 0 {
		p.q.RemoveAll(s.Started)
	}
}

// dispatchHeld records and dispatches a job whose processors were already
// allocated during candidate evaluation. It releases them first so the
// ordinary Dispatch path (which allocates) stays the single source of
// truth for the cluster bookkeeping.
func (p *EASY) dispatchHeld(ctx Ctx, j *workload.Job, placement []int) {
	ctx.Cluster().Release(j.Components, placement)
	p.start(ctx, j, placement)
}

// earliestFit returns the earliest time the components fit, given the
// current idle state plus the future releases of the running jobs (and an
// optional extra hypothetical job). It returns +Inf when the components
// cannot fit even on an empty system.
//
// The running set is already sorted by finish time, so the releases are
// walked in order directly, merging the hypothetical job in at its finish
// position — no per-call sort, no per-call allocation.
func (p *EASY) earliestFit(m *cluster.Multicluster, comps []int, now float64, extra *runInfo) float64 {
	n := m.NumClusters()
	if cap(p.scrIdle) < n {
		p.scrIdle = make([]int, n)
		p.scrUsed = make([]bool, n)
		p.scrPlace = make([]int, n)
	}
	idle := p.scrIdle[:n]
	for c := range idle {
		idle[c] = m.Idle(c)
	}
	if p.fitsVector(idle, comps) {
		return now
	}
	extraDone := extra == nil
	i := 0
	for {
		var r *runInfo
		if i < len(p.running) && (extraDone || p.running[i].finish <= extra.finish) {
			r = &p.running[i]
			i++
		} else if !extraDone {
			r = extra
			extraDone = true
		} else {
			break
		}
		for ci, c := range r.placement {
			idle[c] += r.comps[ci]
		}
		if p.fitsVector(idle, comps) {
			return r.finish
		}
	}
	return math.Inf(1)
}

// fitsVector is the greedy distinct-cluster fit test on a plain idle
// vector — the same rule Multicluster.Place applies, evaluated on a
// hypothetical state (see placeVectorInto in profile.go). It uses the
// policy's scratch buffers, which earliestFit sizes before the first call.
func (p *EASY) fitsVector(idle []int, comps []int) bool {
	if len(comps) > len(idle) {
		return false
	}
	return placeVectorInto(idle, comps, p.fit, p.scrPlace[:len(comps)], p.scrUsed[:len(idle)])
}

// Queued returns the queue length.
func (p *EASY) Queued() int { return p.q.Len() }

// QueuedAt returns the global queue length for workload.GlobalQueue.
func (p *EASY) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return p.q.Len()
	}
	return 0
}
