package policies

import (
	"fmt"
	"math"
	"sort"

	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// EASY is GS with EASY (aggressive) backfilling over unordered requests —
// an extension beyond the paper, which notes that LS's multiple queues act
// as "a form of backfilling with a window equal to the number of
// clusters". EASY removes the window limit: when the head of the global
// queue does not fit, it receives a reservation at the earliest time it
// will fit given the known finish times of the running jobs, and any later
// job in the queue may start immediately as long as doing so does not
// delay that reservation.
//
// Because the simulator knows exact service times, the reservation uses
// exact runtimes; a production EASY scheduler relies on user estimates,
// making real backfilling somewhat less effective. This implementation is
// therefore an upper bound on EASY's benefit (see DESIGN.md section 6).
type EASY struct {
	name    string
	q       queues.FIFO
	fit     cluster.Fit
	running []runInfo // kept sorted by ascending finish time

	// Scratch buffers for earliestFit/fitsVector, sized to the cluster
	// count on first use; they keep the reservation arithmetic
	// allocation-free.
	scrIdle   []int
	scrUsed   []bool
	scrPlace  []int
	scrShadow []int // idle vector at the head's shadow time
	scrTmp    []int

	// stuck is the pass-elision watermark: the head can never fit (its
	// reservation is +Inf even with every running job released). Such a
	// head blocks the queue until capacity grows — no release or failure
	// raises the up capacity, and EASY backfills nothing behind an
	// unreservable head — so every later pass is a provable no-op. The one
	// event that can unstick the head is a repair: CapacityRestored runs a
	// full pass, which re-derives the watermark against the restored
	// capacity (pass clears it on entry).
	stuck bool
}

// runInfo tracks one running job for reservation arithmetic.
type runInfo struct {
	job       *workload.Job
	finish    float64
	comps     []int
	placement []int
}

// NewEASY returns the EASY-backfilling global scheduler.
func NewEASY(fit cluster.Fit) *EASY { return &EASY{name: "GS-EASY", fit: fit} }

// NewSCEASY returns the single-cluster FCFS + EASY reference policy.
func NewSCEASY() *EASY { return &EASY{name: "SC-EASY", fit: cluster.WorstFit} }

// Name returns "GS-EASY" or "SC-EASY".
func (p *EASY) Name() string { return p.name }

// Submit enqueues the job at the global queue and runs a scheduling pass.
func (p *EASY) Submit(ctx Ctx, j *workload.Job) {
	j.Queue = workload.GlobalQueue
	p.q.Push(j)
	if elidePasses && p.stuck {
		p.elidedPass(ctx)
		return
	}
	p.pass(ctx)
}

// JobDeparted drops the job from the running set and runs a pass. The
// removal preserves the finish-time ordering.
func (p *EASY) JobDeparted(ctx Ctx, j *workload.Job) {
	for i := range p.running {
		if p.running[i].job == j {
			p.running = append(p.running[:i], p.running[i+1:]...)
			break
		}
	}
	if elidePasses && p.stuck {
		p.elidedPass(ctx)
		return
	}
	p.pass(ctx)
}

// JobKilled removes the aborted victim from the running set and runs a
// full pass over the released processors (policies.FaultAware). The kill
// shrank cluster c's capacity by one, which keeps a stuck watermark valid
// — the head fits even less than before — but the reservation arithmetic
// holds no state beyond the running set, so removal plus a pass is the
// whole repair.
func (p *EASY) JobKilled(ctx Ctx, victim *workload.Job, _ int) {
	for i := range p.running {
		if p.running[i].job == victim {
			p.running = append(p.running[:i], p.running[i+1:]...)
			p.pass(ctx)
			return
		}
	}
	panic(fmt.Sprintf("policies: killed job %d not in the running set", victim.ID))
}

// CapacityLost is a no-op (policies.FaultAware): EASY derives every
// reservation from the live idle vector and the running set, so a silent
// failure needs no state repair, and the shrink can admit nothing —
// placement is monotone in the idle vector. A stuck watermark stays valid
// for the same reason.
func (p *EASY) CapacityLost(Ctx, int) {}

// CapacityRestored runs a full pass (policies.FaultAware): the repaired
// processor may admit the head or a backfill candidate, and — unlike every
// other event — it raises the up capacity, so the pass re-derives the
// stuck watermark from scratch.
func (p *EASY) CapacityRestored(ctx Ctx, _ int) { p.pass(ctx) }

// elidedPass emits the counters a full pass over a forever-stuck head
// would: the pass, the head miss, and then the +Inf reservation returns
// before any backfill attempt.
func (p *EASY) elidedPass(ctx Ctx) {
	o := ctx.Obs()
	o.Pass()
	o.HeadMiss(workload.GlobalQueue)
	o.PassSkipped()
}

// start dispatches a job and inserts it into the running set in
// finish-time order, so earliestFit never needs to sort. The runInfo
// records j.Placement — the stable copy Dispatch is contracted to leave
// on the job — because the placement argument may live in pass scratch.
func (p *EASY) start(ctx Ctx, j *workload.Job, placement []int) {
	ctx.Dispatch(j, placement)
	r := runInfo{
		job:       j,
		finish:    ctx.Now() + j.RemainingTime(),
		comps:     j.Components,
		placement: j.Placement,
	}
	i := sort.Search(len(p.running), func(k int) bool { return p.running[k].finish > r.finish })
	p.running = append(p.running, runInfo{})
	copy(p.running[i+1:], p.running[i:])
	p.running[i] = r
}

// pass starts head jobs while they fit, then backfills behind a blocked
// head without delaying its reservation.
func (p *EASY) pass(ctx Ctx) {
	m := ctx.Cluster()
	o := ctx.Obs()
	s := ctx.Scratch()
	o.Pass()
	// Re-derive the stuck watermark from scratch: a pass that drains the
	// queue or reserves a finite start leaves it clear, and phase 2 sets it
	// again when the head still can never fit. Fault-free this cannot flip
	// a true watermark back (capacity never grows), but after a repair the
	// stale verdict must not survive the pass.
	p.stuck = false
	// Phase 1: plain FCFS starts from the head.
	for {
		head := p.q.Head()
		if head == nil {
			return
		}
		if !m.PlaceInto(head.Components, p.fit, s.Place, s.Used) {
			o.HeadMiss(workload.GlobalQueue)
			ctx.Dec().HeadMiss(ctx.Now(), head, m, p.fit)
			break
		}
		p.q.Pop()
		p.start(ctx, head, s.Place[:len(head.Components)])
	}
	// Phase 2: the head is blocked; compute its reservation.
	head := p.q.Head()
	shadow := p.earliestFit(m, head.Components, ctx.Now(), p.fit)
	if math.IsInf(shadow, 1) {
		// The head can never fit (a component exceeds every cluster);
		// it blocks the queue forever, exactly as plain FCFS would.
		p.stuck = true
		return
	}
	if dt := ctx.Dec(); dt != nil {
		// Record the reservation with the starts the unchosen fit rules
		// find on the same running-set release schedule. The probes reuse
		// the earliestFit scratch sequentially, before phase 3 builds the
		// shadow idle vector.
		dt.BeginAlts()
		for _, f := range dectrace.FitRules {
			if f == p.fit {
				continue
			}
			if at := p.earliestFit(m, head.Components, ctx.Now(), f); !math.IsInf(at, 1) {
				dt.AddAlt(f.String(), at, nil)
			}
		}
		dt.Reserve(ctx.Now(), head, shadow, nil)
	}
	// Phase 3: scan the rest of the queue for backfill candidates.
	// Pop/re-push is avoided: collect indices to start, then rebuild.
	//
	// Whether a candidate delays the head reduces to one vector test
	// against the idle state at the shadow time. With the candidate
	// hypothetically running, the head still fails everywhere it failed
	// before (idle only shrank), so its reservation moves iff it no
	// longer fits exactly at the shadow — that is, iff it does not fit in
	// the shadow idle vector minus the candidate's components. The
	// precomputed vector replaces the per-candidate O(running) release
	// walk (and the alloc/release round trip) the hypothetical
	// re-reservation used to take.
	nc := m.NumClusters()
	shadowIdle := p.scrShadow[:nc]
	for c := range shadowIdle {
		shadowIdle[c] = m.Idle(c)
	}
	for i := range p.running {
		r := &p.running[i]
		if r.finish > shadow {
			break // sorted by finish: nothing further releases by the shadow
		}
		for ci, c := range r.placement {
			shadowIdle[c] += r.comps[ci]
		}
	}
	s.Started = s.Started[:0]
	p.q.ForEachWaiting(func(idx int, j *workload.Job) bool {
		if idx == 0 {
			return true // the head itself
		}
		o.BackfillAttempt()
		if !m.PlaceInto(j.Components, p.fit, s.Place, s.Used) {
			return true
		}
		placement := s.Place[:len(j.Components)]
		// A candidate finishing by the shadow time cannot delay the head:
		// its processors are back before (or exactly when) the head's
		// reserved start, so the idle vector the head sees at the shadow
		// is unchanged and the head still fits there.
		if ctx.Now()+j.RemainingTime() <= shadow {
			p.start(ctx, j, placement)
			o.BackfillSuccess()
			s.Started = append(s.Started, j)
			return true
		}
		// The candidate outlives the shadow: it delays the head unless
		// the head fits at the shadow with the candidate's processors
		// still held.
		tmp := p.scrTmp[:nc]
		copy(tmp, shadowIdle)
		for ci, c := range placement {
			tmp[c] -= j.Components[ci]
		}
		if !p.fitsVector(tmp, head.Components, p.fit) {
			ctx.Dec().BackfillReject(ctx.Now(), j, p.fit, placement)
			return true
		}
		p.start(ctx, j, placement)
		// The candidate holds its processors past the shadow, so later
		// candidates see them missing from the shadow idle state too.
		for ci, c := range placement {
			shadowIdle[c] -= j.Components[ci]
		}
		o.BackfillSuccess()
		s.Started = append(s.Started, j)
		return true
	})
	if len(s.Started) > 0 {
		p.q.RemoveAll(s.Started)
	}
}

// earliestFit returns the earliest time the components fit under the given
// placement rule, given the current idle state plus the future releases of
// the running jobs. It returns +Inf when the components cannot fit even on
// an empty system. The policy's own rule is p.fit; the decision tracer
// probes the others against the same release schedule.
//
// The running set is already sorted by finish time, so the releases are
// walked in order directly — no per-call sort, no per-call allocation.
func (p *EASY) earliestFit(m *cluster.Multicluster, comps []int, now float64, fit cluster.Fit) float64 {
	n := m.NumClusters()
	if cap(p.scrIdle) < n {
		p.scrIdle = make([]int, n)
		p.scrUsed = make([]bool, n)
		p.scrPlace = make([]int, n)
		p.scrShadow = make([]int, n)
		p.scrTmp = make([]int, n)
	}
	idle := p.scrIdle[:n]
	for c := range idle {
		idle[c] = m.Idle(c)
	}
	if p.fitsVector(idle, comps, fit) {
		return now
	}
	for i := range p.running {
		r := &p.running[i]
		for ci, c := range r.placement {
			idle[c] += r.comps[ci]
		}
		if p.fitsVector(idle, comps, fit) {
			return r.finish
		}
	}
	return math.Inf(1)
}

// fitsVector is the greedy distinct-cluster fit test on a plain idle
// vector — the same rule Multicluster.Place applies, evaluated on a
// hypothetical state (see placeVectorInto in profile.go). It uses the
// policy's scratch buffers, which earliestFit sizes before the first call.
func (p *EASY) fitsVector(idle []int, comps []int, fit cluster.Fit) bool {
	if len(comps) > len(idle) {
		return false
	}
	return placeVectorInto(idle, comps, fit, p.scrPlace[:len(comps)], p.scrUsed[:len(idle)])
}

// Queued returns the queue length.
func (p *EASY) Queued() int { return p.q.Len() }

// QueuedAt returns the global queue length for workload.GlobalQueue.
func (p *EASY) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return p.q.Len()
	}
	return 0
}
