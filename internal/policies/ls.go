package policies

import (
	"fmt"

	"coalloc/internal/cluster"
	"coalloc/internal/obs"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// LS is the local-schedulers policy: each cluster has a local FCFS queue
// receiving both single- and multi-component jobs. Every local scheduler
// has global knowledge of idle processors, but single-component jobs may
// run only on their own cluster, while multi-component jobs are
// co-allocated over the whole system.
//
// Scheduling visits all enabled queues in rounds, starting at most one job
// per queue per round. A queue whose head does not fit is disabled until
// the next departure from the system; at each departure the queues are
// re-enabled in the order in which they were disabled. The paper notes
// that picking jobs from any of the C queue heads acts as a form of
// backfilling with a window equal to the number of clusters.
type LS struct {
	qs          []queues.FIFO
	set         *queues.EnableSet
	fit         cluster.Fit
	sortedOrder bool
}

// NewLS returns the LS policy for a system of the given number of clusters.
func NewLS(clusters int, fit cluster.Fit) *LS {
	if clusters <= 0 {
		panic(fmt.Sprintf("policies: NewLS(%d)", clusters))
	}
	return &LS{
		qs:  make([]queues.FIFO, clusters),
		set: queues.NewEnableSet(clusters),
		fit: fit,
	}
}

// NewLSSortedReenable returns an LS variant that, at each departure,
// re-enables the queues in fixed index order instead of the paper's
// disable order — the re-enable-order ablation of DESIGN.md.
func NewLSSortedReenable(clusters int, fit cluster.Fit) *LS {
	p := NewLS(clusters, fit)
	p.sortedOrder = true
	return p
}

// Name returns "LS".
func (p *LS) Name() string { return "LS" }

// SetObserver wires the run observer into the enable/disable bookkeeping
// (policies.ObserverSetter).
func (p *LS) SetObserver(o *obs.Observer) { p.set.SetObserver(o) }

// Submit enqueues the job at its local queue and runs a scheduling pass.
// The job's Queue field must name a valid local queue.
func (p *LS) Submit(ctx Ctx, j *workload.Job) {
	if j.Queue < 0 || j.Queue >= len(p.qs) {
		panic(fmt.Sprintf("policies: LS job %d routed to queue %d of %d", j.ID, j.Queue, len(p.qs)))
	}
	p.qs[j.Queue].Push(j)
	// A pass leaves every enabled queue empty (a nonempty enabled head
	// either started or disabled its queue), and only pushes happen
	// between passes. A job landing in a disabled queue is therefore
	// invisible to its pass: every visited queue is empty, nothing can
	// start — a provable no-op, elided.
	if elidePasses && !p.set.IsEnabled(j.Queue) {
		o := ctx.Obs()
		o.Pass()
		o.PassSkipped()
		return
	}
	p.pass(ctx)
}

// JobDeparted re-enables all queues in disable order (or fixed index
// order for the ablation variant) and runs a pass.
func (p *LS) JobDeparted(ctx Ctx, _ *workload.Job) {
	if p.sortedOrder {
		p.set.EnableAllSorted()
	} else {
		p.set.EnableAll()
	}
	p.pass(ctx)
}

// CapacityLost is a no-op: LS keeps no capacity forecast, and shrinking
// the idle pool can only keep disabled heads disabled (policies.FaultAware).
func (p *LS) CapacityLost(Ctx, int) {}

// CapacityRestored re-enables the queues under the same ordering contract
// as a departure — a repaired processor frees capacity exactly like one —
// and runs a pass (policies.FaultAware).
func (p *LS) CapacityRestored(ctx Ctx, _ int) { p.JobDeparted(ctx, nil) }

// JobKilled reacts to an aborted job like a departure: its released
// processors may admit disabled queue heads (policies.FaultAware).
func (p *LS) JobKilled(ctx Ctx, _ *workload.Job, _ int) { p.JobDeparted(ctx, nil) }

// pass repeatedly visits the enabled queues, starting at most one job per
// queue per round, until a full round starts nothing.
func (p *LS) pass(ctx Ctx) {
	m := ctx.Cluster()
	o := ctx.Obs()
	s := ctx.Scratch()
	o.Pass()
	for {
		progress := false
		// Snapshot the visit order: Disable mutates the enabled list.
		round := append(s.Round[:0], p.set.Enabled()...)
		for _, q := range round {
			head := p.qs[q].Head()
			if head == nil {
				continue // an empty queue is skipped, not disabled
			}
			placement, ok := p.place(m, head, q, s)
			if !ok {
				o.HeadMiss(q)
				if dt := ctx.Dec(); dt != nil {
					if head.Multi() {
						dt.HeadMiss(ctx.Now(), head, m, p.fit)
					} else {
						dt.LocalMiss(ctx.Now(), head, m, q)
					}
				}
				p.set.Disable(q)
				continue
			}
			p.qs[q].Pop()
			ctx.Dispatch(head, placement)
			progress = true
		}
		if !progress {
			return
		}
	}
}

// place finds processors for the head job of queue q: multi-component jobs
// anywhere in the system, single-component jobs only on cluster q. The
// returned placement lives in the pass scratch; Dispatch copies it.
func (p *LS) place(m *cluster.Multicluster, j *workload.Job, q int, s *Scratch) ([]int, bool) {
	if j.Multi() {
		if !m.PlaceInto(j.Components, p.fit, s.Place, s.Used) {
			return nil, false
		}
		return s.Place[:len(j.Components)], true
	}
	if m.FitsOn(q, j.Components[0]) {
		s.Place[0] = q
		return s.Place[:1], true
	}
	return nil, false
}

// Queued returns the total number of waiting jobs across the local queues.
func (p *LS) Queued() int {
	var n int
	for i := range p.qs {
		n += p.qs[i].Len()
	}
	return n
}

// QueuedAt returns the length of local queue q (0 for the global queue id,
// which LS does not have).
func (p *LS) QueuedAt(q int) int {
	if q < 0 || q >= len(p.qs) {
		return 0
	}
	return p.qs[q].Len()
}
