package policies

import (
	"fmt"
	"math"

	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// DefaultLookahead is the default bound on the number of queued jobs that
// receive reservations per conservative-backfilling pass (the -lookahead
// knob on mcsim/mcexp).
const DefaultLookahead = 32

// resv is one queued job's standing reservation: the start time and
// duration of the window it holds in the pass profile. t is +Inf for a job
// whose components can never fit (it holds no window). The placement lives
// in the policy's flat resvPlace arena, slot-aligned with the resvs slice.
type resv struct {
	job *workload.Job
	t   float64
	dur float64
}

// Conservative is GS with conservative backfilling: every queued job holds
// a reservation, and a job may start early only if doing so delays no
// earlier job's reservation. Compared to EASY (which protects only the
// queue head), conservative backfilling trades some throughput for strict
// FCFS start-time guarantees — the classic comparison in the backfilling
// literature, provided here as an ablation alongside GS-EASY.
//
// The free-capacity profile of the running jobs is maintained
// incrementally: a job start reserves its window in the base profile, a
// departure merely lets the clock advance past the release breakpoint the
// reservation already encoded, and each full scheduling pass trims the
// base to the current time and clones it into scratch storage for the
// pass's queue reservations. The equivalence of the incremental base and a
// rebuild-from-scratch is pinned by TestIncrementalProfileMatchesRebuilt.
//
// On top of that, the reservations themselves are retained between passes.
// Between two capacity-changing events the forecast does not change — a
// departure merely reaches a release breakpoint the profile already
// encoded — so re-deriving every queued job's reservation would reproduce
// it exactly (the recomputation argument in DESIGN.md §13). A pass
// therefore runs in one of two modes: a fast pass fires the reservations
// whose start time has arrived (a dispatch straight from the stored
// placement, no profile scan) and evaluates only jobs newly inside the
// lookahead window; a full pass re-derives everything from the base
// profile. Any event the stability argument does not cover — an early
// release, an overdue-departure tie, the very first pass — invalidates
// resvOK and forces the full pass. TestConservativeElisionEquivalence pins
// the two modes bit-identical over random streams.
type Conservative struct {
	name      string
	q         queues.FIFO
	fit       cluster.Fit
	lookahead int
	running   []runInfo
	base      *profile // incremental forecast of the running jobs' releases
	scratch   profile  // working profile; between passes it holds the reservations
	availVec  []int    // per-cluster up-processor counts, for the never-fits exit

	// Retained-reservation state. resvs holds one entry per reserved
	// queued job, in FCFS order, covering a prefix of the queue; resvPlace
	// is the stride-nc placement arena backing it. resvOK marks the state
	// (and the scratch profile) as reusable; nextFinish is the earliest
	// forecast finish of the running set, the guard against
	// overdue-departure ties.
	resvOK     bool
	nextFinish float64
	resvs      []resv
	resvPlace  []int
	fired      []int // per-pass scratch: resv indices fired

	// Per-pass staleness tracking. A backfill start that happens while some
	// finite reservation is outstanding shrinks the profile underneath that
	// reservation: its start time provably cannot move (the backfill was
	// placed to not delay it), but a re-derivation may break placement ties
	// differently — so such a pass must not publish its reservations
	// wholesale. Firing a stored reservation is exempt: it converts a
	// reserved window into an identical running window, leaving the
	// forecast unchanged.
	//
	// Staleness is a prefix property: a start at queue position k grows the
	// derivation input only of the entries ahead of it (position > k saw
	// the started job's window as a reservation already). staleBound is the
	// number of leading resv entries a stale pass invalidated, and
	// staleWinEnd the latest end time of the windows it started — together
	// they let the next pass repair the prefix instead of re-deriving the
	// whole queue (tryRepair).
	sawFinite   bool
	staleStart  bool
	staleBound  int
	staleWinEnd float64
	repairOK    bool
	repair      profile // tryRepair's working profile (scratch stays retained)
}

// NewConservative returns the conservative-backfilling global scheduler.
// lookahead bounds the reserved queue prefix per pass; it must be >= 1
// (DefaultLookahead is the conventional 32).
func NewConservative(fit cluster.Fit, lookahead int) *Conservative {
	if lookahead < 1 {
		panic(fmt.Sprintf("policies: NewConservative lookahead %d < 1", lookahead))
	}
	return &Conservative{name: "GS-CONS", fit: fit, lookahead: lookahead}
}

// NewSCConservative returns the single-cluster conservative-backfilling
// reference policy.
func NewSCConservative(lookahead int) *Conservative {
	p := NewConservative(cluster.WorstFit, lookahead)
	p.name = "SC-CONS"
	return p
}

// Name returns "GS-CONS" or "SC-CONS".
func (p *Conservative) Name() string { return p.name }

// Submit enqueues the job and runs a scheduling pass. With retained
// reservations the common case is the fast pass: existing reservations are
// unchanged (no capacity event since the last pass), so only the newcomer
// — when it falls inside the lookahead window — needs a profile scan.
func (p *Conservative) Submit(ctx Ctx, j *workload.Job) {
	j.Queue = workload.GlobalQueue
	p.q.Push(j)
	if elidePasses {
		if p.fastPass(ctx) {
			return
		}
		if p.tryRepair(ctx) && p.fastPass(ctx) {
			return
		}
	}
	p.pass(ctx)
}

// JobDeparted drops the job from the running set and runs a pass. The
// departure fires exactly at the release breakpoint the profile already
// encodes, so the retained reservations stay valid: the fast pass starts
// the jobs whose reserved time has arrived and scans nothing else. A
// departure before its forecast finish (an early release) changes the
// profile and forces the full pass.
func (p *Conservative) JobDeparted(ctx Ctx, j *workload.Job) {
	for i := range p.running {
		if p.running[i].job == j {
			r := p.running[i]
			p.running = append(p.running[:i], p.running[i+1:]...)
			if r.finish > ctx.Now() {
				p.releaseEarly(ctx.Now(), r)
				p.resvOK = false
				p.repairOK = false
			}
			break
		}
	}
	p.recomputeNextFinish()
	if elidePasses {
		if p.fastPass(ctx) {
			return
		}
		if p.tryRepair(ctx) && p.fastPass(ctx) {
			return
		}
	}
	p.pass(ctx)
}

// JobKilled repairs the policy state after a failure on cluster c aborted
// the victim (policies.FaultAware): the victim leaves the running set, its
// remaining window returns to the base profile through the same early-
// release path a preemptive departure takes, and the profile's capacity on
// c drops by the processor the failure consumed. A kill is neither an
// arrival nor a departure — the retained-reservation stability argument
// does not cover it — so the elision state is invalidated wholesale and a
// full pass re-derives every reservation against the repaired forecast.
func (p *Conservative) JobKilled(ctx Ctx, victim *workload.Job, c int) {
	for i := range p.running {
		if p.running[i].job == victim {
			r := p.running[i]
			p.running = append(p.running[:i], p.running[i+1:]...)
			p.releaseEarly(ctx.Now(), r)
			p.recomputeNextFinish()
			p.adjustCapacity(ctx, c, -1)
			return
		}
	}
	panic(fmt.Sprintf("policies: killed job %d not in the running set", victim.ID))
}

// CapacityLost folds a silent failure — one idle processor of cluster c
// went down — into the forecast (policies.FaultAware). The shrink can
// admit nothing (placement is monotone in the idle vector), but the stored
// reservations were derived against the larger capacity and may now
// overlap windows that no longer exist, so the state is re-derived.
func (p *Conservative) CapacityLost(ctx Ctx, c int) { p.adjustCapacity(ctx, c, -1) }

// CapacityRestored folds a repaired processor of cluster c back into the
// forecast (policies.FaultAware). The full pass it forces also re-derives
// every never-fits (+Inf) reservation, which is only valid per capacity
// regime — see neverFits.
func (p *Conservative) CapacityRestored(ctx Ctx, c int) { p.adjustCapacity(ctx, c, +1) }

// adjustCapacity applies a one-processor capacity change on cluster c: the
// base profile's whole horizon shifts by delta, the never-fits vector
// follows, the retained reservations are invalidated (the staleness theory
// covers only arrivals and departures), and a full pass rebuilds them.
// State not yet built (before the first pass) needs no adjustment — it is
// constructed from the multicluster's post-event capacity when first used.
func (p *Conservative) adjustCapacity(ctx Ctx, c, delta int) {
	if p.base != nil {
		p.base.trim(ctx.Now())
		p.base.shiftCapacity(c, delta)
	}
	if p.availVec != nil {
		p.availVec[c] += delta
	}
	p.resvOK = false
	p.repairOK = false
	p.pass(ctx)
}

// releaseEarly returns a job's remaining reservation to the base profile
// when it leaves the running set before its forecast finish time. The
// event engine fires departures exactly at the forecast finish, so for
// ordinary departures this is a no-op; a fault kill (JobKilled) is the
// real user — an abort releases the processors mid-window, and the
// remaining window must come back before the capacity shift is applied.
func (p *Conservative) releaseEarly(now float64, r runInfo) {
	if p.base == nil || r.finish <= now {
		return
	}
	p.base.trim(now)
	end := p.base.segmentAt(r.finish, true)
	for s := 0; s < end; s++ {
		seg := p.base.seg(s)
		for i, c := range r.placement {
			seg[c] += r.comps[i]
		}
	}
	// The job's release breakpoint at r.finish is now redundant unless
	// another job's boundary shares it: merge it away so the profile stays
	// in the canonical form a rebuild produces (no equal adjacent segments).
	if end > 0 && end < p.base.n {
		a, b := p.base.seg(end-1), p.base.seg(end)
		equal := true
		for c := range a {
			if a[c] != b[c] {
				equal = false
				break
			}
		}
		if equal {
			p.base.removeBreak(end)
		}
	}
}

// recomputeNextFinish refreshes the earliest forecast finish of the
// running set.
func (p *Conservative) recomputeNextFinish() {
	p.nextFinish = math.Inf(1)
	for i := range p.running {
		if p.running[i].finish < p.nextFinish {
			p.nextFinish = p.running[i].finish
		}
	}
}

// passProfile produces the working profile for one full scheduling pass:
// the incrementally maintained base, trimmed to now and cloned into
// scratch. Jobs whose finish time has arrived but whose departure event
// has not yet fired still hold their processors, so their release — which
// the base encoded when they started — is subtracted back out, exactly as
// a rebuild-from-scratch (which skips finish <= now) would produce.
func (p *Conservative) passProfile(m *cluster.Multicluster, now float64) *profile {
	if p.base == nil {
		p.base = newProfile(m, now, p.running)
	} else {
		p.base.trim(now)
	}
	prof := p.base.cloneInto(&p.scratch)
	for i := range p.running {
		r := &p.running[i]
		if r.finish > now {
			continue
		}
		for s := 0; s < prof.n; s++ {
			seg := prof.seg(s)
			for ci, c := range r.placement {
				seg[c] -= r.comps[ci]
			}
		}
	}
	return prof
}

// ensureCap builds the per-cluster up-capacity vector on first use; fault
// events keep it current through adjustCapacity. Without faults it is the
// static cluster sizes.
func (p *Conservative) ensureCap(m *cluster.Multicluster) {
	if p.availVec == nil {
		p.availVec = make([]int, m.NumClusters())
		for c := range p.availVec {
			p.availVec[c] = m.Avail(c)
		}
	}
}

// neverFits reports that the components cannot fit even with every up
// processor idle. The placement rule is monotone in the idle vector, so a
// failure at full up capacity implies failure on every profile window —
// exactly the queries earliestStart would answer +Inf — without scanning
// any segments. Under fault injection the vector tracks the post-failure
// capacity, so the verdict holds only for the current capacity regime: a
// repair raises the vector and forces a full pass (CapacityRestored), which
// re-derives every +Inf entry against the restored capacity.
func (p *Conservative) neverFits(m *cluster.Multicluster, comps []int, s *Scratch) bool {
	p.ensureCap(m)
	return !placeVectorInto(p.availVec, comps, p.fit, s.Place, s.Used)
}

// appendResv records a reservation, copying the placement into the arena
// slot aligned with its index.
func (p *Conservative) appendResv(j *workload.Job, t, dur float64, place []int, nc int) {
	if !math.IsInf(t, 1) {
		p.sawFinite = true
	}
	i := len(p.resvs)
	p.resvs = append(p.resvs, resv{job: j, t: t, dur: dur})
	if cap(p.resvPlace) < (i+1)*nc {
		grown := make([]int, i*nc, 2*(i+1)*nc)
		copy(grown, p.resvPlace)
		p.resvPlace = grown
	}
	p.resvPlace = p.resvPlace[:(i+1)*nc]
	copy(p.resvPlace[i*nc:], place)
}

// start dispatches a job, adds it to the running set, folds its window
// into the base profile, and tracks the earliest forecast finish.
func (p *Conservative) start(ctx Ctx, j *workload.Job, placement []int, now, dur float64) {
	// placement may be profile or arena scratch; Dispatch leaves the
	// stable copy in j.Placement, which the persistent records use.
	ctx.Dispatch(j, placement)
	p.running = append(p.running, runInfo{
		job:       j,
		finish:    now + dur,
		comps:     j.Components,
		placement: j.Placement,
	})
	p.base.reserve(j.Components, j.Placement, now, dur)
	if now+dur < p.nextFinish {
		p.nextFinish = now + dur
	}
}

// evalFast evaluates one job newly inside the lookahead window against the
// retained scratch profile — exactly the work the full pass would do for
// it at the same queue position, with every earlier job's reservation
// already in the profile. Attempt counters are emitted in bulk by the
// caller.
func (p *Conservative) evalFast(ctx Ctx, m *cluster.Multicluster, prof *profile, s *Scratch, idx int, j *workload.Job, now float64, nc int) {
	o := ctx.Obs()
	if p.neverFits(m, j.Components, s) {
		p.appendResv(j, math.Inf(1), 0, nil, nc)
		return
	}
	dur := j.RemainingTime()
	if dt := ctx.Dec(); dt != nil {
		p.probeAlts(dt, prof, j, dur)
	}
	t, placement := prof.earliestStart(j.Components, dur, p.fit)
	if math.IsInf(t, 1) {
		p.appendResv(j, t, 0, nil, nc)
		return
	}
	prof.reserve(j.Components, placement, t, dur)
	if idx == 0 && t > now {
		o.HeadMiss(workload.GlobalQueue)
	}
	if t == now {
		if idx > 0 {
			o.BackfillSuccess()
		}
		if p.sawFinite {
			p.markStale(len(p.resvs), now+dur)
		}
		p.start(ctx, j, placement, now, dur)
		s.Started = append(s.Started, j)
	} else {
		p.appendResv(j, t, dur, placement, nc)
		ctx.Dec().Reserve(now, j, t, placement)
	}
}

// probeAlts accumulates, as reservation alternatives, the starts the
// unchosen fit rules find on the same working profile the chosen
// reservation is about to be derived from. Every probed placement lives in
// profile scratch and is clobbered by the next earliestStart query — AddAlt
// copies it immediately, and the probes run before the chosen query for the
// same reason. The probes only read the profile, so the chosen derivation
// is unchanged (the tracing-enabled guardrail pins this).
func (p *Conservative) probeAlts(dt *dectrace.Tracer, prof *profile, j *workload.Job, dur float64) {
	dt.BeginAlts()
	for _, f := range dectrace.FitRules {
		if f == p.fit {
			continue
		}
		if t, place := prof.earliestStart(j.Components, dur, f); !math.IsInf(t, 1) {
			dt.AddAlt(f.String(), t, place)
		}
	}
}

// fastPass handles one scheduling opportunity from the retained
// reservations, reporting whether it could. It fires the reservations
// whose start time has arrived (dispatching straight from the stored
// placements), extends reservation coverage to jobs newly inside the
// lookahead window, and emits exactly the counters the full pass would.
// It refuses — leaving the caller to run the full pass — whenever the
// reservation-stability argument does not apply: no valid retained state,
// a running job at or past its forecast finish whose departure has not
// fired (the full pass would subtract its overdue holding), or a
// reservation somehow missed in the past.
func (p *Conservative) fastPass(ctx Ctx) bool {
	if !p.resvOK {
		return false
	}
	L := p.q.Len()
	if L == 0 {
		return true // a pass over an empty queue does nothing
	}
	now := ctx.Now()
	if now >= p.nextFinish {
		return false
	}
	for i := range p.resvs {
		if p.resvs[i].t < now {
			return false
		}
	}
	m := ctx.Cluster()
	o := ctx.Obs()
	o.Pass()
	nc := len(p.availVec)
	prof := &p.scratch
	prof.trim(now)
	p.base.trim(now)
	s := ctx.Scratch()
	s.Started = s.Started[:0]

	// Fire due reservations: the full pass would re-derive each at exactly
	// its stored time and placement, so start them directly. Firing past an
	// unfired finite reservation moves the fired window into the base —
	// into the derivation input of the jobs ahead of it, which saw it as
	// behind them — so such a pass cannot keep its reservations wholesale;
	// the kept entries ahead of the fired one become the stale prefix.
	p.sawFinite, p.staleStart = false, false
	p.staleBound, p.staleWinEnd = 0, 0
	p.fired = p.fired[:0]
	headStarted := false
	unfiredFinite := false
	kept := 0
	for i := range p.resvs {
		r := p.resvs[i]
		if r.t != now {
			if !math.IsInf(r.t, 1) {
				unfiredFinite = true
			}
			kept++
			continue
		}
		if unfiredFinite {
			p.markStale(kept, now+r.dur)
		}
		j := r.job
		p.start(ctx, j, p.resvPlace[i*nc:i*nc+len(j.Components)], now, r.dur)
		if i == 0 {
			headStarted = true
		} else {
			o.BackfillSuccess()
		}
		s.Started = append(s.Started, j)
		p.fired = append(p.fired, i)
	}
	if len(p.fired) > 0 {
		w, f := 0, 0
		for i := range p.resvs {
			if f < len(p.fired) && p.fired[f] == i {
				f++
				continue
			}
			if w != i {
				p.resvs[w] = p.resvs[i]
				copy(p.resvPlace[w*nc:(w+1)*nc], p.resvPlace[i*nc:(i+1)*nc])
			}
			w++
		}
		p.resvs = p.resvs[:w]
		p.resvPlace = p.resvPlace[:w*nc]
	}

	// Counter compensation for the re-derivation the full pass would run
	// over the first min(L, lookahead) queue positions.
	evaluated := L
	if evaluated > p.lookahead {
		evaluated = p.lookahead
	}
	o.BackfillAttempts(evaluated - 1)
	if L > p.lookahead {
		o.LookaheadTruncated()
	}
	for i := range p.resvs {
		if !math.IsInf(p.resvs[i].t, 1) {
			p.sawFinite = true
			break
		}
	}
	covered := len(p.fired) + len(p.resvs)
	if covered > 0 && !headStarted && !math.IsInf(p.resvs[0].t, 1) {
		// The head stayed queued on a finite future reservation: the full
		// pass re-emits its miss every time. (A head newly inside the
		// window — covered == 0 — gets its miss from evalFast instead.)
		o.HeadMiss(workload.GlobalQueue)
	}
	if covered < evaluated {
		// Jobs newly inside the window (a newcomer, or jobs a start shifted
		// in) get their first evaluation, in FCFS order, against a profile
		// already holding every earlier reservation.
		p.q.ForEachWaiting(func(idx int, j *workload.Job) bool {
			if idx < covered {
				return true
			}
			if idx >= evaluated {
				return false
			}
			p.evalFast(ctx, m, prof, s, idx, j, now, nc)
			return true
		})
	}
	if len(s.Started) > 0 {
		p.q.RemoveAll(s.Started)
	}
	if p.staleStart {
		p.resvOK = false
		p.repairOK = true
	}
	o.PassSkipped()
	return true
}

// markStale records that the pass just started a job with bound resv
// entries ahead of it: those entries form the stale prefix the next pass
// must re-verify, and the started window's end extends the horizon beyond
// which stored reservations provably cannot have changed.
func (p *Conservative) markStale(bound int, winEnd float64) {
	p.staleStart = true
	if bound > p.staleBound {
		p.staleBound = bound
	}
	if winEnd > p.staleWinEnd {
		p.staleWinEnd = winEnd
	}
}

// tryRepair recovers the retained reservations after a stale pass by
// re-verifying only the invalidated prefix, reporting whether the state is
// valid again (the caller then runs the ordinary fast pass).
//
// A start with stored entries ahead of it grows only those entries'
// derivation inputs — entries behind it already saw its window — so the
// suffix beyond staleBound needs no work at all. Within the prefix, each
// entry is re-derived against a fresh clone of the base (reproducing the
// full pass's input exactly) and compared with the stored reservation:
// start times provably cannot move (the start was placed to delay no
// reservation), but a placement tie may break differently, and any
// mismatch falls back to the full pass. Two classes of entries skip even
// the re-derivation: never-fits entries (+Inf is invariant under capacity
// loss), and entries whose whole window lies at or beyond staleWinEnd —
// the placement depends only on the per-cluster minima over the entry's
// own window, which no started window reaches.
func (p *Conservative) tryRepair(ctx Ctx) bool {
	if !p.repairOK {
		return false
	}
	p.repairOK = false
	if p.q.Empty() {
		return false
	}
	now := ctx.Now()
	if now >= p.nextFinish {
		return false
	}
	for i := range p.resvs {
		if p.resvs[i].t < now {
			return false
		}
	}
	nc := len(p.availVec)
	bound := p.staleBound
	if bound > len(p.resvs) {
		bound = len(p.resvs)
	}
	p.base.trim(now)
	prof := p.base.cloneInto(&p.repair)
	ok := true
	p.q.ForEachWaiting(func(idx int, j *workload.Job) bool {
		if idx >= bound {
			return false
		}
		r := p.resvs[idx]
		if r.job != j {
			ok = false
			return false
		}
		if math.IsInf(r.t, 1) {
			return true
		}
		if r.t >= p.staleWinEnd {
			prof.reserve(j.Components, p.resvPlace[idx*nc:idx*nc+len(j.Components)], r.t, r.dur)
			return true
		}
		t, place := prof.earliestStart(j.Components, r.dur, p.fit)
		if t != r.t {
			ok = false
			return false
		}
		for c := range j.Components {
			if place[c] != p.resvPlace[idx*nc+c] {
				ok = false
				return false
			}
		}
		prof.reserve(j.Components, place, t, r.dur)
		return true
	})
	if !ok {
		return false
	}
	p.resvOK = true
	ctx.Obs().PassRepaired()
	return true
}

// pass is the full re-derivation: it rebuilds the working profile from the
// base and walks the queue in FCFS order, dispatching the jobs whose
// earliest feasible start is now and reserving future windows for the
// rest, which become the retained state the fast passes run on.
func (p *Conservative) pass(ctx Ctx) {
	p.resvOK = false
	p.repairOK = false
	p.resvs = p.resvs[:0]
	p.resvPlace = p.resvPlace[:0]
	p.sawFinite, p.staleStart = false, false
	p.staleBound, p.staleWinEnd = 0, 0
	if p.q.Empty() {
		return
	}
	m := ctx.Cluster()
	p.ensureCap(m)
	nc := len(p.availVec)
	now := ctx.Now()
	o := ctx.Obs()
	o.Pass()
	prof := p.passProfile(m, now)
	// A running job at its forecast finish whose departure event has not
	// yet fired (an event-order tie) makes passProfile subtract its holding
	// from the whole forecast — a temporary distortion no later pass will
	// reproduce. Reservations derived against it must not be retained.
	overdue := false
	for i := range p.running {
		if p.running[i].finish <= now {
			overdue = true
			break
		}
	}
	s := ctx.Scratch()
	s.Started = s.Started[:0]
	truncated := false
	p.q.ForEachWaiting(func(idx int, j *workload.Job) bool {
		if idx >= p.lookahead {
			truncated = true
			return false
		}
		if idx > 0 {
			o.BackfillAttempt()
		}
		if p.neverFits(m, j.Components, s) {
			// Can never fit; it holds no window (it blocks nothing: all
			// other jobs keep their own reservations).
			p.appendResv(j, math.Inf(1), 0, nil, nc)
			return true
		}
		dur := j.RemainingTime()
		if dt := ctx.Dec(); dt != nil {
			p.probeAlts(dt, prof, j, dur)
		}
		t, placement := prof.earliestStart(j.Components, dur, p.fit)
		if math.IsInf(t, 1) {
			p.appendResv(j, t, 0, nil, nc)
			return true
		}
		prof.reserve(j.Components, placement, t, dur)
		if idx == 0 && t > now {
			o.HeadMiss(workload.GlobalQueue)
		}
		if t == now {
			if idx > 0 {
				o.BackfillSuccess()
			}
			if p.sawFinite {
				p.markStale(len(p.resvs), now+dur)
			}
			p.start(ctx, j, placement, now, dur)
			s.Started = append(s.Started, j)
		} else {
			p.appendResv(j, t, dur, placement, nc)
			ctx.Dec().Reserve(now, j, t, placement)
		}
		return true
	})
	if truncated {
		o.LookaheadTruncated()
	}
	if len(s.Started) > 0 {
		p.q.RemoveAll(s.Started)
	}
	p.recomputeNextFinish()
	p.resvOK = !overdue && !p.staleStart
	p.repairOK = !overdue && p.staleStart
}

// Queued returns the queue length.
func (p *Conservative) Queued() int { return p.q.Len() }

// QueuedAt returns the global queue length for workload.GlobalQueue.
func (p *Conservative) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return p.q.Len()
	}
	return 0
}
