package policies

import (
	"math"

	"coalloc/internal/cluster"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// Conservative is GS with conservative backfilling: every queued job holds
// a reservation, and a job may start early only if doing so delays no
// earlier job's reservation. Compared to EASY (which protects only the
// queue head), conservative backfilling trades some throughput for strict
// FCFS start-time guarantees — the classic comparison in the backfilling
// literature, provided here as an ablation alongside GS-EASY.
//
// The free-capacity profile of the running jobs is maintained
// incrementally: a job start reserves its window in the base profile, a
// departure merely lets the clock advance past the release breakpoint the
// reservation already encoded, and each scheduling pass trims the base to
// the current time and clones it into scratch storage for the pass's
// transient queue reservations. Rebuilding from scratch — sorting the
// running set and re-applying every release — happens only once, on the
// first pass; the equivalence of the two constructions over random job
// streams is pinned down by TestIncrementalProfileMatchesRebuilt. The pass
// then walks the queue in FCFS order, dispatching the jobs whose earliest
// feasible start is now and reserving future slots for the rest. Because
// new jobs join at the tail and departures only add capacity,
// recomputation never pushes an earlier job's start later — the
// conservative guarantee holds.
type Conservative struct {
	name    string
	q       queues.FIFO
	fit     cluster.Fit
	running []runInfo
	base    *profile // incremental forecast of the running jobs' releases
	scratch profile  // reusable per-pass working copy
}

// NewConservative returns the conservative-backfilling global scheduler.
func NewConservative(fit cluster.Fit) *Conservative {
	return &Conservative{name: "GS-CONS", fit: fit}
}

// NewSCConservative returns the single-cluster conservative-backfilling
// reference policy.
func NewSCConservative() *Conservative {
	return &Conservative{name: "SC-CONS", fit: cluster.WorstFit}
}

// Name returns "GS-CONS" or "SC-CONS".
func (p *Conservative) Name() string { return p.name }

// Submit enqueues the job and runs a scheduling pass.
func (p *Conservative) Submit(ctx Ctx, j *workload.Job) {
	j.Queue = workload.GlobalQueue
	p.q.Push(j)
	p.pass(ctx)
}

// JobDeparted drops the job from the running set and runs a pass.
func (p *Conservative) JobDeparted(ctx Ctx, j *workload.Job) {
	for i := range p.running {
		if p.running[i].job == j {
			r := p.running[i]
			p.running = append(p.running[:i], p.running[i+1:]...)
			p.releaseEarly(ctx.Now(), r)
			break
		}
	}
	p.pass(ctx)
}

// releaseEarly returns a job's remaining reservation to the base profile
// when it departs before its forecast finish time. The event engine fires
// departures exactly at the forecast finish, so in simulation runs this is
// a no-op; it keeps the incremental profile correct for any Ctx (unit
// tests, a future preemptive variant) whose clock says otherwise.
func (p *Conservative) releaseEarly(now float64, r runInfo) {
	if p.base == nil || r.finish <= now {
		return
	}
	p.base.trim(now)
	end := p.base.segmentAt(r.finish, true)
	for s := 0; s < end; s++ {
		for i, c := range r.placement {
			p.base.idle[s][c] += r.comps[i]
		}
	}
}

// reservationCap bounds the number of queued jobs that receive
// reservations per pass. Production conservative schedulers bound their
// lookahead the same way: beyond the cap the profile becomes quadratically
// expensive to maintain while the reservations it produces lie so far in
// the future that they never bind. Jobs beyond the cap simply wait; they
// join the reserved set as the queue drains, so the FCFS guarantee holds
// for every job that ever reaches the lookahead window.
const reservationCap = 32

// passProfile produces the working profile for one scheduling pass: the
// incrementally maintained base, trimmed to now and cloned into scratch.
// Jobs whose finish time has arrived but whose departure event has not yet
// fired still hold their processors, so their release — which the base
// encoded when they started — is subtracted back out, exactly as a
// rebuild-from-scratch (which skips finish <= now) would produce.
func (p *Conservative) passProfile(m *cluster.Multicluster, now float64) *profile {
	if p.base == nil {
		p.base = newProfile(m, now, p.running)
	} else {
		p.base.trim(now)
	}
	prof := p.base.cloneInto(&p.scratch)
	for i := range p.running {
		r := &p.running[i]
		if r.finish > now {
			continue
		}
		for s := range prof.idle {
			for ci, c := range r.placement {
				prof.idle[s][c] -= r.comps[ci]
			}
		}
	}
	return prof
}

// pass walks the head of the queue in FCFS order over the pass profile.
func (p *Conservative) pass(ctx Ctx) {
	if p.q.Empty() {
		return
	}
	m := ctx.Cluster()
	now := ctx.Now()
	o := ctx.Obs()
	o.Pass()
	prof := p.passProfile(m, now)
	s := ctx.Scratch()
	s.Started = s.Started[:0]
	p.q.ForEachWaiting(func(idx int, j *workload.Job) bool {
		if idx >= reservationCap {
			return false
		}
		if idx > 0 {
			o.BackfillAttempt()
		}
		t, placement := prof.earliestStart(j.Components, j.ExtendedServiceTime, p.fit)
		if math.IsInf(t, 1) {
			// Can never fit; leave it queued (it blocks nothing: all
			// other jobs keep their own reservations).
			return true
		}
		prof.reserve(j.Components, placement, t, j.ExtendedServiceTime)
		if idx == 0 && t > now {
			o.HeadMiss(workload.GlobalQueue)
		}
		if t == now {
			if idx > 0 {
				o.BackfillSuccess()
			}
			// placement is profile scratch; Dispatch leaves the stable
			// copy in j.Placement, which the persistent records use.
			ctx.Dispatch(j, placement)
			p.running = append(p.running, runInfo{
				job:       j,
				finish:    now + j.ExtendedServiceTime,
				comps:     j.Components,
				placement: j.Placement,
			})
			// The start becomes part of the persistent forecast.
			p.base.reserve(j.Components, j.Placement, now, j.ExtendedServiceTime)
			s.Started = append(s.Started, j)
		}
		return true
	})
	if len(s.Started) > 0 {
		p.q.RemoveAll(s.Started)
	}
}

// Queued returns the queue length.
func (p *Conservative) Queued() int { return p.q.Len() }

// QueuedAt returns the global queue length for workload.GlobalQueue.
func (p *Conservative) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return p.q.Len()
	}
	return 0
}
