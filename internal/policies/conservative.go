package policies

import (
	"math"

	"coalloc/internal/cluster"
	"coalloc/internal/queues"
	"coalloc/internal/workload"
)

// Conservative is GS with conservative backfilling: every queued job holds
// a reservation, and a job may start early only if doing so delays no
// earlier job's reservation. Compared to EASY (which protects only the
// queue head), conservative backfilling trades some throughput for strict
// FCFS start-time guarantees — the classic comparison in the backfilling
// literature, provided here as an ablation alongside GS-EASY.
//
// Each scheduling pass rebuilds the free-capacity profile from scratch and
// walks the queue in FCFS order, dispatching the jobs whose earliest
// feasible start is now and reserving future slots for the rest. Because
// new jobs join at the tail and departures only add capacity,
// recomputation never pushes an earlier job's start later — the
// conservative guarantee holds.
type Conservative struct {
	name    string
	q       queues.FIFO
	fit     cluster.Fit
	running []runInfo
}

// NewConservative returns the conservative-backfilling global scheduler.
func NewConservative(fit cluster.Fit) *Conservative {
	return &Conservative{name: "GS-CONS", fit: fit}
}

// NewSCConservative returns the single-cluster conservative-backfilling
// reference policy.
func NewSCConservative() *Conservative {
	return &Conservative{name: "SC-CONS", fit: cluster.WorstFit}
}

// Name returns "GS-CONS" or "SC-CONS".
func (p *Conservative) Name() string { return p.name }

// Submit enqueues the job and runs a scheduling pass.
func (p *Conservative) Submit(ctx Ctx, j *workload.Job) {
	j.Queue = workload.GlobalQueue
	p.q.Push(j)
	p.pass(ctx)
}

// JobDeparted drops the job from the running set and runs a pass.
func (p *Conservative) JobDeparted(ctx Ctx, j *workload.Job) {
	for i := range p.running {
		if p.running[i].job == j {
			p.running = append(p.running[:i], p.running[i+1:]...)
			break
		}
	}
	p.pass(ctx)
}

// reservationCap bounds the number of queued jobs that receive
// reservations per pass. Production conservative schedulers bound their
// lookahead the same way: beyond the cap the profile becomes quadratically
// expensive to maintain while the reservations it produces lie so far in
// the future that they never bind. Jobs beyond the cap simply wait; they
// join the reserved set as the queue drains, so the FCFS guarantee holds
// for every job that ever reaches the lookahead window.
const reservationCap = 32

// pass rebuilds the profile and walks the head of the queue in FCFS order.
func (p *Conservative) pass(ctx Ctx) {
	if p.q.Empty() {
		return
	}
	m := ctx.Cluster()
	now := ctx.Now()
	prof := newProfile(m, now, p.running)
	var started []*workload.Job
	p.q.ForEachWaiting(func(idx int, j *workload.Job) bool {
		if idx >= reservationCap {
			return false
		}
		t, placement := prof.earliestStart(j.Components, j.ExtendedServiceTime, p.fit)
		if math.IsInf(t, 1) {
			// Can never fit; leave it queued (it blocks nothing: all
			// other jobs keep their own reservations).
			return true
		}
		prof.reserve(j.Components, placement, t, j.ExtendedServiceTime)
		if t == now {
			ctx.Dispatch(j, placement)
			p.running = append(p.running, runInfo{
				job:       j,
				finish:    now + j.ExtendedServiceTime,
				comps:     j.Components,
				placement: placement,
			})
			started = append(started, j)
		}
		return true
	})
	if len(started) > 0 {
		p.q.RemoveAll(started)
	}
}

// Queued returns the queue length.
func (p *Conservative) Queued() int { return p.q.Len() }

// QueuedAt returns the global queue length for workload.GlobalQueue.
func (p *Conservative) QueuedAt(q int) int {
	if q == workload.GlobalQueue {
		return p.q.Len()
	}
	return 0
}
