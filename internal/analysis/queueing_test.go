package analysis

import (
	"math"
	"testing"

	"coalloc/internal/dastrace"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMM1(t *testing.T) {
	if got := MM1MeanResponse(0.5, 1); got != 2 {
		t.Errorf("MM1MeanResponse(0.5,1) = %g", got)
	}
	if !math.IsInf(MM1MeanResponse(1, 1), 1) {
		t.Error("unstable M/M/1 should be +Inf")
	}
	if got := MM1MeanQueueLength(0.5, 1); got != 1 {
		t.Errorf("MM1MeanQueueLength(0.5,1) = %g", got)
	}
	if !math.IsInf(MM1MeanQueueLength(2, 1), 1) {
		t.Error("unstable queue length should be +Inf")
	}
	func() {
		defer func() { recover() }()
		MM1MeanResponse(-1, 1)
		t.Error("negative lambda did not panic")
	}()
}

func TestErlangBKnownValues(t *testing.T) {
	// Classic table values.
	cases := []struct {
		a    float64
		c    int
		want float64
	}{
		{1, 1, 0.5},
		{1, 2, 0.2},
		{2, 2, 0.4},
		{10, 10, 0.215},   // ~0.2146
		{0.5, 1, 1.0 / 3}, // a/(1+a)
	}
	for _, cse := range cases {
		got := ErlangB(cse.a, cse.c)
		if !almost(got, cse.want, 5e-4) {
			t.Errorf("ErlangB(%g, %d) = %.4f, want %.4f", cse.a, cse.c, got, cse.want)
		}
	}
	if ErlangB(0, 5) != 0 || ErlangB(0, 0) != 1 {
		t.Error("ErlangB zero-load edge cases")
	}
}

func TestErlangBMonotone(t *testing.T) {
	// Blocking increases with load, decreases with servers.
	prev := 0.0
	for a := 0.5; a <= 20; a += 0.5 {
		b := ErlangB(a, 8)
		if b < prev {
			t.Fatalf("ErlangB not increasing in load at a=%g", a)
		}
		prev = b
	}
	for c := 1; c < 20; c++ {
		if ErlangB(5, c+1) > ErlangB(5, c) {
			t.Fatalf("ErlangB not decreasing in servers at c=%d", c)
		}
	}
}

func TestErlangC(t *testing.T) {
	// M/M/1: P(wait) = rho.
	if got := ErlangC(0.6, 1); !almost(got, 0.6, 1e-12) {
		t.Errorf("ErlangC(0.6, 1) = %g, want 0.6", got)
	}
	if got := ErlangC(5, 4); got != 1 {
		t.Errorf("overloaded ErlangC = %g, want 1", got)
	}
	// Known value: a=2, c=3 -> ~0.444.
	if got := ErlangC(2, 3); !almost(got, 0.4444, 5e-4) {
		t.Errorf("ErlangC(2,3) = %.4f", got)
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		mmc := MMcMeanResponse(rho, 1, 1)
		mm1 := MM1MeanResponse(rho, 1)
		if !almost(mmc, mm1, 1e-9) {
			t.Errorf("M/M/1 via MMc at rho=%g: %g vs %g", rho, mmc, mm1)
		}
	}
}

func TestMMcWaitAndStability(t *testing.T) {
	w := MMcMeanWait(2.8, 1, 4)
	if w <= 0 {
		t.Errorf("wait %g at rho=0.7", w)
	}
	if !math.IsInf(MMcMeanResponse(4, 1, 4), 1) {
		t.Error("unstable M/M/c should be +Inf")
	}
	if !math.IsInf(MMcMeanWait(4, 1, 4), 1) {
		t.Error("unstable M/M/c wait should be +Inf")
	}
}

func TestMG1PollaczekKhinchine(t *testing.T) {
	// With cv=1 (exponential), M/G/1 reduces to M/M/1.
	lambda, es := 0.5, 1.0
	mg1 := MG1MeanResponse(lambda, es, 1)
	mm1 := MM1MeanResponse(lambda, 1/es)
	if !almost(mg1, mm1, 1e-9) {
		t.Errorf("M/G/1 with cv=1: %g vs M/M/1 %g", mg1, mm1)
	}
	// Deterministic service halves the waiting time.
	det := MG1MeanResponse(lambda, es, 0)
	wantWq := (mm1 - es) / 2
	if !almost(det-es, wantWq, 1e-9) {
		t.Errorf("M/D/1 wait %g, want %g", det-es, wantWq)
	}
	if !math.IsInf(MG1MeanResponse(2, 1, 1), 1) {
		t.Error("unstable M/G/1 should be +Inf")
	}
}

func TestBatchServerBound(t *testing.T) {
	// Unit-size jobs pack perfectly: bound = 1.
	if got := BatchServerMaxUtilization([]int{1}, []float64{1}, 8); !almost(got, 1, 1e-9) {
		t.Errorf("unit jobs bound = %g, want 1", got)
	}
	// Jobs of size 3 on capacity 8: pack 2, waste 2 -> bound 6/8.
	if got := BatchServerMaxUtilization([]int{3}, []float64{1}, 8); !almost(got, 0.75, 1e-9) {
		t.Errorf("size-3 bound = %g, want 0.75", got)
	}
	// Jobs of size p pack perfectly.
	if got := BatchServerMaxUtilization([]int{8}, []float64{1}, 8); !almost(got, 1, 1e-9) {
		t.Errorf("full-machine jobs bound = %g, want 1", got)
	}
}

func TestBatchServerBoundDominatesSimulation(t *testing.T) {
	// The renewal bound must sit at or above the simulated SC maximal
	// utilization for the DAS workload (the bound ignores temporal
	// fragmentation). The simulated value is ~0.675.
	values, probs := dastrace.SizeSpec()
	bound := BatchServerMaxUtilization(values, probs, 128)
	if bound < 0.675 {
		t.Errorf("bound %.3f below the simulated SC maximum ~0.675", bound)
	}
	if bound > 1 {
		t.Errorf("bound %.3f above 1", bound)
	}
}

func TestBatchServerBoundPanics(t *testing.T) {
	func() {
		defer func() { recover() }()
		BatchServerMaxUtilization(nil, nil, 8)
		t.Error("empty inputs did not panic")
	}()
	func() {
		defer func() { recover() }()
		BatchServerMaxUtilization([]int{0}, []float64{1}, 8)
		t.Error("zero size did not panic")
	}()
}
