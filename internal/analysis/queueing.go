// Package analysis provides closed-form queueing results used to validate
// the simulator on degenerate configurations (single cluster, unit-size
// jobs) and to sanity-bound the multicluster measurements. The paper's
// companion work (Bucur & Epema, IPDPS 2003) studies the maximal
// utilization of co-allocation analytically for exponential service times;
// the helpers here cover the textbook building blocks of that analysis.
package analysis

import (
	"fmt"
	"math"
)

// MM1MeanResponse returns the mean response time of an M/M/1 queue with
// arrival rate lambda and service rate mu: 1/(mu - lambda). It returns
// +Inf for an unstable queue.
func MM1MeanResponse(lambda, mu float64) float64 {
	if lambda < 0 || mu <= 0 {
		panic(fmt.Sprintf("analysis: MM1MeanResponse(%g, %g)", lambda, mu))
	}
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1MeanQueueLength returns the mean number in system of an M/M/1 queue:
// rho/(1-rho).
func MM1MeanQueueLength(lambda, mu float64) float64 {
	rho := lambda / mu
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// ErlangB returns the Erlang-B blocking probability for offered load a
// (in Erlangs) and c servers, computed by the standard stable recurrence.
func ErlangB(a float64, c int) float64 {
	if a < 0 || c < 0 {
		panic(fmt.Sprintf("analysis: ErlangB(%g, %d)", a, c))
	}
	if a == 0 {
		if c == 0 {
			return 1
		}
		return 0
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the probability that an arriving job must wait in an
// M/M/c queue with offered load a = lambda/mu Erlangs. It returns 1 for
// a >= c (an unstable system never has a free server in steady state).
func ErlangC(a float64, c int) float64 {
	if c <= 0 {
		panic(fmt.Sprintf("analysis: ErlangC(%g, %d)", a, c))
	}
	if a >= float64(c) {
		return 1
	}
	b := ErlangB(a, c)
	rho := a / float64(c)
	return b / (1 - rho + rho*b)
}

// MMcMeanResponse returns the mean response time of an M/M/c queue with
// arrival rate lambda and per-server service rate mu.
func MMcMeanResponse(lambda, mu float64, c int) float64 {
	if lambda < 0 || mu <= 0 || c <= 0 {
		panic(fmt.Sprintf("analysis: MMcMeanResponse(%g, %g, %d)", lambda, mu, c))
	}
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	wq := ErlangC(a, c) / (float64(c)*mu - lambda)
	return wq + 1/mu
}

// MMcMeanWait returns the mean waiting time (excluding service) of an
// M/M/c queue.
func MMcMeanWait(lambda, mu float64, c int) float64 {
	r := MMcMeanResponse(lambda, mu, c)
	if math.IsInf(r, 1) {
		return r
	}
	return r - 1/mu
}

// MG1MeanResponse returns the Pollaczek-Khinchine mean response time of an
// M/G/1 queue with arrival rate lambda, mean service time es and service
// coefficient of variation cv.
func MG1MeanResponse(lambda, es, cv float64) float64 {
	if lambda < 0 || es <= 0 || cv < 0 {
		panic(fmt.Sprintf("analysis: MG1MeanResponse(%g, %g, %g)", lambda, es, cv))
	}
	rho := lambda * es
	if rho >= 1 {
		return math.Inf(1)
	}
	wq := lambda * es * es * (1 + cv*cv) / (2 * (1 - rho))
	return es + wq
}

// BatchServerMaxUtilization bounds the maximal utilization of a
// single-cluster FCFS system with processor capacity p serving jobs whose
// sizes are given by the discrete distribution (sizes, probs): under
// constant backlog, consecutive head-of-line jobs are packed greedily into
// the machine, and utilization cannot exceed the expected packed fraction
//
//	E[sum of sizes packed before overflow] / (p * E[number of fills]).
//
// This is a simple renewal upper bound — packing stops at the first job
// that does not fit (strict FCFS), so the expected wasted capacity per
// "fill" is driven by the overshoot of the size distribution. The bound
// ignores the temporal dimension (jobs finish at different times), which
// makes it optimistic; the simulated maximal utilization must stay below
// it. Both the bound and the comparison are exercised in the tests.
func BatchServerMaxUtilization(sizes []int, probs []float64, p int) float64 {
	if len(sizes) == 0 || len(sizes) != len(probs) || p <= 0 {
		panic("analysis: BatchServerMaxUtilization needs matching non-empty inputs")
	}
	// Dynamic program over residual capacity: expected packed amount
	// starting from capacity r, E[r] = sum_s P(s) * (s + E[r-s] if s<=r
	// else 0 stopping). Expected fill = E[p]; utilization bound =
	// E[p]/p.
	memo := make([]float64, p+1)
	computed := make([]bool, p+1)
	var fill func(r int) float64
	fill = func(r int) float64 {
		if r <= 0 {
			return 0
		}
		if computed[r] {
			return memo[r]
		}
		computed[r] = true // guard against cycles (sizes >= 1 ensures none)
		var e float64
		for i, s := range sizes {
			if s <= 0 {
				panic("analysis: non-positive job size")
			}
			if s <= r {
				e += probs[i] * (float64(s) + fill(r-s))
			}
		}
		memo[r] = e
		return e
	}
	return fill(p) / float64(p)
}
