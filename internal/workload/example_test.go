package workload_test

import (
	"fmt"

	"coalloc/internal/workload"
)

// Split divides a total job size into components of at most the given
// limit over at most the given number of clusters, as equal as possible —
// the paper's Section 2.4 rule. A size-64 job is the paper's worked
// example.
func ExampleSplit() {
	for _, limit := range []int{16, 24, 32} {
		fmt.Printf("limit %2d: %v\n", limit, workload.Split(64, limit, 4))
	}
	// Output:
	// limit 16: [16 16 16 16]
	// limit 24: [22 21 21]
	// limit 32: [32 32]
}

// The cluster count caps the number of components: a 128-processor job
// cannot split into more than four parts on a four-cluster system, so its
// components exceed a limit of 16.
func ExampleSplit_clusterCap() {
	fmt.Println(workload.Split(128, 16, 4))
	// Output:
	// [32 32 32 32]
}

// NumComponents predicts how a workload divides into single- and
// multi-component jobs without building the split.
func ExampleNumComponents() {
	fmt.Println(workload.NumComponents(16, 16, 4), workload.NumComponents(17, 16, 4))
	// Output:
	// 1 2
}
