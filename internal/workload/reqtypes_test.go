package workload

import (
	"math"
	"testing"
	"testing/quick"

	"coalloc/internal/rng"
)

func TestRequestTypeString(t *testing.T) {
	cases := map[RequestType]string{
		Unordered: "unordered", Ordered: "ordered", Flexible: "flexible", Total: "total",
	}
	for rt, want := range cases {
		if rt.String() != want {
			t.Errorf("%d.String() = %q", int(rt), rt.String())
		}
	}
	if RequestType(99).String() == "" {
		t.Error("unknown type should render")
	}
}

func streams() (a, b, c *rng.Stream) {
	return rng.NewStream(1), rng.NewStream(2), rng.NewStream(3)
}

func TestSampleTypedUnorderedMatchesSample(t *testing.T) {
	spec := specFor(t, 16)
	s1, s2, s3 := streams()
	r1, r2 := rng.NewStream(1), rng.NewStream(2)
	for i := 0; i < 100; i++ {
		a := spec.SampleTyped(Unordered, s1, s2, s3)
		b := spec.Sample(r1, r2)
		if a.TotalSize != b.TotalSize || a.ServiceTime != b.ServiceTime {
			t.Fatal("unordered SampleTyped diverges from Sample")
		}
		if a.Type != Unordered || a.OrderedPlacement != nil {
			t.Fatal("unordered job carries ordered metadata")
		}
	}
}

func TestSampleTypedOrdered(t *testing.T) {
	spec := specFor(t, 16)
	s1, s2, s3 := streams()
	for i := 0; i < 2000; i++ {
		j := spec.SampleTyped(Ordered, s1, s2, s3)
		if j.Type != Ordered {
			t.Fatal("type not set")
		}
		if len(j.OrderedPlacement) != len(j.Components) {
			t.Fatalf("placement %v for components %v", j.OrderedPlacement, j.Components)
		}
		seen := map[int]bool{}
		for _, c := range j.OrderedPlacement {
			if c < 0 || c >= spec.Clusters {
				t.Fatalf("cluster %d out of range", c)
			}
			if seen[c] {
				t.Fatalf("duplicate cluster in %v", j.OrderedPlacement)
			}
			seen[c] = true
		}
	}
}

func TestSampleTypedOrderedPlacementUniform(t *testing.T) {
	spec := specFor(t, 16)
	s1, s2, s3 := streams()
	counts := make([]int, spec.Clusters)
	n := 0
	for i := 0; i < 20000; i++ {
		j := spec.SampleTyped(Ordered, s1, s2, s3)
		if len(j.Components) == 1 {
			counts[j.OrderedPlacement[0]]++
			n++
		}
	}
	for c, cnt := range counts {
		frac := float64(cnt) / float64(n)
		if math.Abs(frac-0.25) > 0.03 {
			t.Errorf("single components assigned to cluster %d with frequency %.3f", c, frac)
		}
	}
}

func TestSampleTypedFlexibleAndTotal(t *testing.T) {
	spec := specFor(t, 16)
	s1, s2, s3 := streams()
	for i := 0; i < 1000; i++ {
		f := spec.SampleTyped(Flexible, s1, s2, s3)
		if f.Type != Flexible || len(f.Components) != 1 || f.Components[0] != f.TotalSize {
			t.Fatalf("flexible job %+v", f)
		}
		// Provisional extension: large jobs marked extended.
		if f.TotalSize > spec.ComponentLimit && f.ExtendedServiceTime <= f.ServiceTime {
			t.Fatalf("large flexible job not provisionally extended: %+v", f)
		}
		tt := spec.SampleTyped(Total, s1, s2, s3)
		if tt.Type != Total || len(tt.Components) != 1 {
			t.Fatalf("total job %+v", tt)
		}
		if tt.ExtendedServiceTime != tt.ServiceTime {
			t.Fatal("total requests never pay the extension factor")
		}
	}
}

func TestSampleTypedUnknownPanics(t *testing.T) {
	spec := specFor(t, 16)
	s1, s2, s3 := streams()
	defer func() {
		if recover() == nil {
			t.Error("unknown request type did not panic")
		}
	}()
	spec.SampleTyped(RequestType(42), s1, s2, s3)
}

func TestFinalizeFlexible(t *testing.T) {
	j := &Job{Type: Flexible, TotalSize: 40, Components: []int{40}, ServiceTime: 100, ExtendedServiceTime: 125}
	j.FinalizeFlexible([]int{20, 20}, 1.25)
	if j.ExtendedServiceTime != 125 {
		t.Errorf("two-cluster split extended %g, want 125", j.ExtendedServiceTime)
	}
	j2 := &Job{Type: Flexible, TotalSize: 40, Components: []int{40}, ServiceTime: 100, ExtendedServiceTime: 125}
	j2.FinalizeFlexible([]int{40}, 1.25)
	if j2.ExtendedServiceTime != 100 {
		t.Errorf("single-cluster split extended %g, want 100 (no extension)", j2.ExtendedServiceTime)
	}
}

func TestFinalizeFlexiblePanics(t *testing.T) {
	func() {
		defer func() { recover() }()
		j := &Job{Type: Unordered, TotalSize: 40, ServiceTime: 1}
		j.FinalizeFlexible([]int{40}, 1.25)
		t.Error("FinalizeFlexible on unordered job did not panic")
	}()
	func() {
		defer func() { recover() }()
		j := &Job{Type: Flexible, TotalSize: 40, ServiceTime: 1}
		j.FinalizeFlexible([]int{30}, 1.25)
		t.Error("mismatched split did not panic")
	}()
}

// TestSampleDistinctClustersProperty: any (k, n) draw yields k distinct
// in-range clusters.
func TestSampleDistinctClustersProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 1 + r.Intn(8)
		k := 1 + r.Intn(n)
		got := sampleDistinctClusters(r, k, n)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, c := range got {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
