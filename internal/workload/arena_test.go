package workload

import (
	"reflect"
	"testing"

	"coalloc/internal/rng"
)

func TestArenaJobZeroedAfterReset(t *testing.T) {
	a := NewArena()
	j := a.Job()
	j.ID = 42
	j.TotalSize = 7
	j.Components = a.Ints(3)
	a.Reset()
	j2 := a.Job()
	if j2.ID != 0 || j2.TotalSize != 0 || j2.Components != nil {
		t.Fatalf("recycled job slot not zeroed: %+v", j2)
	}
}

func TestArenaIntsCapPinned(t *testing.T) {
	a := NewArena()
	s1 := a.Ints(3)
	s2 := a.Ints(3)
	if cap(s1) != 3 {
		t.Fatalf("carved slice cap = %d, want 3 (full slice expression)", cap(s1))
	}
	s1 = append(s1, 99) // must reallocate, not scribble on s2
	if s2[0] != 0 {
		t.Fatalf("append to one carve corrupted its neighbour: %v", s2)
	}
	_ = s1
}

func TestArenaIntsZeroed(t *testing.T) {
	a := NewArena()
	s := a.Ints(4)
	copy(s, []int{1, 2, 3, 4})
	a.Reset()
	s2 := a.Ints(4)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled carve not zeroed at %d: %v", i, s2)
		}
	}
}

func TestArenaLargeCarve(t *testing.T) {
	a := NewArena()
	s := a.Ints(3 * arenaIntBlock)
	if len(s) != 3*arenaIntBlock {
		t.Fatalf("oversized carve length %d", len(s))
	}
}

func TestArenaNilFallback(t *testing.T) {
	var a *Arena
	j := a.Job()
	if j == nil {
		t.Fatal("nil arena Job returned nil")
	}
	if s := a.Ints(2); len(s) != 2 {
		t.Fatalf("nil arena Ints(2) = %v", s)
	}
	if s := a.CopyInts([]int{5, 6}); !reflect.DeepEqual(s, []int{5, 6}) {
		t.Fatalf("nil arena CopyInts = %v", s)
	}
	a.Reset() // must not panic
}

func TestAppendSplitMatchesSplit(t *testing.T) {
	for total := 1; total <= 128; total++ {
		for _, limit := range []int{16, 24, 32} {
			want := Split(total, limit, 4)
			got := AppendSplit(make([]int, 0, 8), total, limit, 4)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("AppendSplit(%d,%d,4) = %v, want %v", total, limit, got, want)
			}
		}
	}
}

// TestSampleIntoMatchesSample pins the arena-vs-heap bit-identity of the
// sampling path: for the same stream state, SampleInto with an arena must
// produce jobs whose every field equals Sample's, draw for draw.
func TestSampleIntoMatchesSample(t *testing.T) {
	d := DeriveDefault()
	spec := Spec{
		Sizes:           d.Sizes128,
		Service:         d.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: DefaultExtensionFactor,
	}
	for _, typ := range []RequestType{Unordered, Ordered, Flexible, Total} {
		src1 := rng.NewSource(99)
		src2 := rng.NewSource(99)
		sz1, sv1, pl1 := src1.Stream("s"), src1.Stream("v"), src1.Stream("p")
		sz2, sv2, pl2 := src2.Stream("s"), src2.Stream("v"), src2.Stream("p")
		a := NewArena()
		for i := 0; i < 500; i++ {
			if i == 250 {
				a.Reset() // mid-run reset must not perturb the draws
			}
			heap := spec.SampleTyped(typ, sz1, sv1, pl1)
			pooled := spec.SampleTypedInto(a, typ, sz2, sv2, pl2)
			if !reflect.DeepEqual(*heap, *pooled) {
				t.Fatalf("%s draw %d: heap %+v != arena %+v", typ, i, *heap, *pooled)
			}
		}
	}
}

// TestSampleIntoZeroAlloc pins the steady-state allocation count of
// arena-backed sampling at zero.
func TestSampleIntoZeroAlloc(t *testing.T) {
	d := DeriveDefault()
	spec := Spec{
		Sizes:           d.Sizes128,
		Service:         d.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: DefaultExtensionFactor,
	}
	src := rng.NewSource(7)
	sz, sv := src.Stream("s"), src.Stream("v")
	a := NewArena()
	// Warm the arena past its first blocks, then reset: the steady state.
	for i := 0; i < 5000; i++ {
		spec.SampleInto(a, sz, sv)
	}
	a.Reset()
	n := 0
	allocs := testing.AllocsPerRun(2000, func() {
		spec.SampleInto(a, sz, sv)
		n++
	})
	if allocs != 0 {
		t.Fatalf("SampleInto allocates %.1f objects per job in steady state, want 0", allocs)
	}
}
