package workload

import (
	"math"
	"testing"
	"testing/quick"

	"coalloc/internal/dastrace"
	"coalloc/internal/dist"
	"coalloc/internal/rng"
)

func TestSplitExamples(t *testing.T) {
	cases := []struct {
		total, limit, clusters int
		want                   []int
	}{
		// The paper's worked example: a job of size 64.
		{64, 16, 4, []int{16, 16, 16, 16}},
		{64, 24, 4, []int{22, 21, 21}},
		{64, 32, 4, []int{32, 32}},
		// Small jobs stay single-component.
		{1, 16, 4, []int{1}},
		{16, 16, 4, []int{16}},
		{17, 16, 4, []int{9, 8}},
		// The cluster cap binds: size 128 at limit 16 still gets only 4
		// components (of 32).
		{128, 16, 4, []int{32, 32, 32, 32}},
		{128, 32, 4, []int{32, 32, 32, 32}},
		{100, 32, 4, []int{25, 25, 25, 25}},
		{65, 32, 4, []int{22, 22, 21}}, // 2x32 cannot hold 65, so 3 components
		{96, 32, 4, []int{32, 32, 32}},
		// Single-cluster system: everything is a total request.
		{64, 128, 1, []int{64}},
		{128, 16, 1, []int{128}},
	}
	for _, c := range cases {
		got := Split(c.total, c.limit, c.clusters)
		if len(got) != len(c.want) {
			t.Errorf("Split(%d,%d,%d) = %v, want %v", c.total, c.limit, c.clusters, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Split(%d,%d,%d) = %v, want %v", c.total, c.limit, c.clusters, got, c.want)
				break
			}
		}
	}
}

// TestSplitProperties checks the splitting invariants for arbitrary inputs:
// the components sum to the total, there are at most `clusters` of them,
// they differ by at most one, are nonincreasing, and respect the limit
// whenever the cluster cap does not bind.
func TestSplitProperties(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		total := 1 + r.Intn(128)
		limit := 1 + r.Intn(64)
		clusters := 1 + r.Intn(8)
		comps := Split(total, limit, clusters)
		if len(comps) < 1 || len(comps) > clusters {
			return false
		}
		if len(comps) != NumComponents(total, limit, clusters) {
			return false
		}
		sum := 0
		for i, c := range comps {
			if c <= 0 {
				return false
			}
			sum += c
			if i > 0 && comps[i] > comps[i-1] {
				return false // not nonincreasing
			}
		}
		if sum != total {
			return false
		}
		if comps[0]-comps[len(comps)-1] > 1 {
			return false // not as equal as possible
		}
		capBinds := (total+limit-1)/limit > clusters
		if !capBinds && comps[0] > limit {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSplitPanics(t *testing.T) {
	for _, c := range [][3]int{{0, 16, 4}, {10, 0, 4}, {10, 16, 0}} {
		func() {
			defer func() { recover() }()
			Split(c[0], c[1], c[2])
			t.Errorf("Split(%v) did not panic", c)
		}()
	}
}

func TestJobAccessors(t *testing.T) {
	j := &Job{
		Components:  []int{8, 8},
		ArrivalTime: 10,
		StartTime:   15,
		FinishTime:  40,
	}
	if !j.Multi() {
		t.Error("two-component job should be Multi")
	}
	if j.ResponseTime() != 30 || j.WaitTime() != 5 {
		t.Errorf("response %g wait %g", j.ResponseTime(), j.WaitTime())
	}
	if (&Job{Components: []int{4}}).Multi() {
		t.Error("one-component job should not be Multi")
	}
}

func deriveTest(t *testing.T) Derived {
	t.Helper()
	return Derive(dastrace.Default())
}

func TestDeriveDistributions(t *testing.T) {
	d := deriveTest(t)
	if d.Sizes128.Max() != 128 || d.Sizes64.Max() != 64 {
		t.Errorf("size maxima %d/%d", d.Sizes128.Max(), d.Sizes64.Max())
	}
	if d.Service.Max() > ServiceCut {
		t.Errorf("service distribution not cut at %g: max %g", ServiceCut, d.Service.Max())
	}
	if d.ExcludedBy64 <= 0 || d.ExcludedBy64 > 0.05 {
		t.Errorf("cut at 64 excludes %.3f of jobs, want a small positive fraction", d.ExcludedBy64)
	}
	if d.Sizes64.Mean() >= d.Sizes128.Mean() {
		t.Error("cutting the largest jobs must lower the mean size")
	}
}

func TestDeriveEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Derive(nil) did not panic")
		}
	}()
	Derive(nil)
}

func specFor(t *testing.T, limit int) Spec {
	t.Helper()
	d := deriveTest(t)
	return Spec{
		Sizes:           d.Sizes128,
		Service:         d.Service,
		ComponentLimit:  limit,
		Clusters:        4,
		ExtensionFactor: DefaultExtensionFactor,
	}
}

// TestComponentCountsMatchPaperTable2 is the headline workload validation:
// the component-count fractions must reproduce the paper's Table 2.
func TestComponentCountsMatchPaperTable2(t *testing.T) {
	want := map[int][4]float64{
		16: {0.513, 0.267, 0.009, 0.211},
		24: {0.738, 0.051, 0.194, 0.017},
		32: {0.780, 0.200, 0.003, 0.017},
	}
	for limit, row := range want {
		spec := specFor(t, limit)
		fr := spec.ComponentCountFractions()
		if len(fr) != 4 {
			t.Fatalf("limit %d: %d component-count entries", limit, len(fr))
		}
		var sum float64
		for i, got := range fr {
			sum += got
			if math.Abs(got-row[i]) > 0.02 {
				t.Errorf("limit %d, %d components: %.3f, paper %.3f", limit, i+1, got, row[i])
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("limit %d: fractions sum to %g", limit, sum)
		}
	}
}

func TestMultiComponentFraction(t *testing.T) {
	spec := specFor(t, 16)
	multi := spec.MultiComponentFraction()
	fr := spec.ComponentCountFractions()
	if math.Abs(multi-(1-fr[0])) > 1e-9 {
		t.Errorf("multi fraction %g inconsistent with 1 - single %g", multi, 1-fr[0])
	}
	// The paper: ~48.7% multi-component jobs at limit 16.
	if math.Abs(multi-0.487) > 0.02 {
		t.Errorf("multi fraction at limit 16 = %.3f, paper ~0.487", multi)
	}
}

func TestGrossNetRatio(t *testing.T) {
	// Ratios shrink as the limit grows and sit in (1, 1.25).
	var prev float64 = 2
	for _, limit := range []int{16, 24, 32} {
		spec := specFor(t, limit)
		r := spec.GrossNetRatio()
		if r <= 1 || r >= DefaultExtensionFactor {
			t.Errorf("limit %d: ratio %g outside (1, 1.25)", limit, r)
		}
		if r >= prev {
			t.Errorf("ratio did not shrink with the limit: %g then %g", prev, r)
		}
		prev = r
	}
	// With extension factor 1 the ratio is exactly 1.
	spec := specFor(t, 16)
	spec.ExtensionFactor = 1
	if got := spec.GrossNetRatio(); math.Abs(got-1) > 1e-12 {
		t.Errorf("ratio with ext=1 is %g", got)
	}
}

func TestSampleJobInvariants(t *testing.T) {
	spec := specFor(t, 16)
	sizeStream := rng.NewStream(1)
	svcStream := rng.NewStream(2)
	for i := 0; i < 5000; i++ {
		j := spec.Sample(sizeStream, svcStream)
		sum := 0
		for _, c := range j.Components {
			sum += c
		}
		if sum != j.TotalSize {
			t.Fatalf("components %v sum to %d, total %d", j.Components, sum, j.TotalSize)
		}
		if len(j.Components) > spec.Clusters {
			t.Fatalf("%d components for %d clusters", len(j.Components), spec.Clusters)
		}
		if j.ServiceTime <= 0 || j.ServiceTime > ServiceCut {
			t.Fatalf("service %g outside (0, %g]", j.ServiceTime, ServiceCut)
		}
		wantExt := j.ServiceTime
		if j.Multi() {
			wantExt *= spec.ExtensionFactor
		}
		if math.Abs(j.ExtendedServiceTime-wantExt) > 1e-12 {
			t.Fatalf("extended %g, want %g", j.ExtendedServiceTime, wantExt)
		}
	}
}

func TestArrivalRateInversion(t *testing.T) {
	spec := specFor(t, 16)
	const procs = 128
	for _, util := range []float64{0.1, 0.5, 0.9} {
		lambda := spec.ArrivalRateForGrossUtilization(util, procs)
		back := lambda * spec.MeanGrossWork() / procs
		if math.Abs(back-util) > 1e-9 {
			t.Errorf("utilization %g round-trips to %g", util, back)
		}
	}
	func() {
		defer func() { recover() }()
		spec.ArrivalRateForGrossUtilization(0, procs)
		t.Error("zero utilization did not panic")
	}()
}

func TestMeanWorkRelations(t *testing.T) {
	spec := specFor(t, 16)
	gross, net := spec.MeanGrossWork(), spec.MeanNetWork()
	if gross <= net {
		t.Errorf("gross work %g should exceed net %g", gross, net)
	}
	if math.Abs(gross/net-spec.GrossNetRatio()) > 1e-9 {
		t.Errorf("gross/net work ratio %g != utilization ratio %g",
			gross/net, spec.GrossNetRatio())
	}
}

func TestSpecValidate(t *testing.T) {
	d := deriveTest(t)
	good := Spec{Sizes: d.Sizes128, Service: d.Service, ComponentLimit: 16, Clusters: 4, ExtensionFactor: 1.25}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Service: d.Service, ComponentLimit: 16, Clusters: 4, ExtensionFactor: 1.25},
		{Sizes: d.Sizes128, ComponentLimit: 16, Clusters: 4, ExtensionFactor: 1.25},
		{Sizes: d.Sizes128, Service: d.Service, Clusters: 4, ExtensionFactor: 1.25},
		{Sizes: d.Sizes128, Service: d.Service, ComponentLimit: 16, ExtensionFactor: 1.25},
		{Sizes: d.Sizes128, Service: d.Service, ComponentLimit: 16, Clusters: 4, ExtensionFactor: 0.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec %d accepted", i)
		}
	}
}

func TestSingleClusterSpecNeverExtends(t *testing.T) {
	d := deriveTest(t)
	spec := Spec{
		Sizes:           d.Sizes128,
		Service:         d.Service,
		ComponentLimit:  d.Sizes128.Max(),
		Clusters:        1,
		ExtensionFactor: DefaultExtensionFactor,
	}
	if got := spec.MultiComponentFraction(); got != 0 {
		t.Errorf("single-cluster spec has %g multi-component jobs", got)
	}
	if got := spec.GrossNetRatio(); math.Abs(got-1) > 1e-12 {
		t.Errorf("single-cluster gross/net ratio %g, want 1", got)
	}
	sizeStream, svcStream := rng.NewStream(1), rng.NewStream(2)
	for i := 0; i < 1000; i++ {
		if j := spec.Sample(sizeStream, svcStream); j.Multi() {
			t.Fatal("single-cluster spec produced a multi-component job")
		}
	}
}

func TestExponentialServiceSpec(t *testing.T) {
	// Spec works with any Continuous service distribution, not just the
	// trace-derived one.
	d := deriveTest(t)
	spec := Spec{
		Sizes:           d.Sizes128,
		Service:         dist.NewExponential(1.0 / 150),
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: 1.25,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(spec.MeanNetWork()-d.Sizes128.Mean()*150) > 1e-6 {
		t.Errorf("mean net work %g", spec.MeanNetWork())
	}
}
