// Package workload implements the paper's workload model: total job sizes
// drawn from the DAS-derived distributions (DAS-s-128, DAS-s-64), service
// times from DAS-t-900, the rule that splits a total size into at most C
// components no larger than the component-size limit, the 1.25 wide-area
// extension factor for multi-component jobs, and the arithmetic connecting
// arrival rates to offered (gross and net) utilization.
package workload

import "fmt"

// Job is one rigid parallel job. A job with a single component is "local"
// in the paper's terminology; a job with several components requires
// co-allocation and has its service time extended by the wide-area
// communication factor.
type Job struct {
	ID int64
	// TotalSize is the total number of processors requested.
	TotalSize int
	// Components holds the per-cluster processor counts, in nonincreasing
	// order. len(Components) >= 1; the sum equals TotalSize.
	Components []int
	// ServiceTime is the net service time (computation plus fast local
	// communication) in seconds.
	ServiceTime float64
	// ExtendedServiceTime is the time the job actually occupies its
	// processors: ServiceTime for single-component jobs, ServiceTime
	// times the extension factor for multi-component jobs.
	ExtendedServiceTime float64
	// Queue is the index of the local queue the job is submitted to, or
	// GlobalQueue for jobs routed to a global queue by the policy.
	Queue int
	// Type is the request structure (Unordered unless set otherwise).
	Type RequestType
	// OrderedPlacement fixes the cluster of every component for Ordered
	// requests; nil for all other types.
	OrderedPlacement []int

	// Filled in by the simulator.
	ArrivalTime float64
	StartTime   float64
	FinishTime  float64
	Placement   []int // cluster index per component
	// Retries counts how many times a processor failure aborted this job;
	// it scales the resubmission backoff (see package faults).
	Retries int
	// Checkpointed is the extended-service progress (in seconds) preserved
	// across failure aborts by periodic checkpointing (see
	// faults.Spec.CheckpointInterval): always a multiple of the checkpoint
	// interval, and zero unless checkpointing is enabled and the job has
	// been aborted at least once past its first checkpoint. A dispatched
	// job runs only for RemainingTime.
	Checkpointed float64
}

// GlobalQueue marks a job queued at a policy's global queue.
const GlobalQueue = -1

// Multi reports whether the job needs co-allocation (more than one component).
func (j *Job) Multi() bool { return len(j.Components) > 1 }

// RemainingTime returns the extended service time the job still has to
// run: the full extended service minus the progress preserved by
// checkpointing. Without checkpointing it is exactly ExtendedServiceTime
// (x - 0 == x bitwise), which the fault-free determinism guardrails rely
// on.
func (j *Job) RemainingTime() float64 { return j.ExtendedServiceTime - j.Checkpointed }

// ResponseTime returns finish minus arrival time.
func (j *Job) ResponseTime() float64 { return j.FinishTime - j.ArrivalTime }

// WaitTime returns start minus arrival time.
func (j *Job) WaitTime() float64 { return j.StartTime - j.ArrivalTime }

// Split divides a total job size into components per Section 2.4 of the
// paper: the number of components is the smallest n with ceil(total/n) <=
// limit, capped at clusters; the component sizes are as equal as possible
// (they differ by at most one) and are returned in nonincreasing order.
//
// When total exceeds clusters*limit the cap binds and components exceed the
// limit; with the paper's parameters (max size 128 = 4 clusters x limit 32)
// this happens only for limits below 32, where e.g. size 128 at limit 16
// still becomes 4 components of 32. This mirrors the paper's rule "as long
// as the number of components does not exceed the number of clusters".
func Split(total, limit, clusters int) []int {
	return AppendSplit(nil, total, limit, clusters)
}

// AppendSplit appends the component sizes of Split(total, limit, clusters)
// to dst and returns the extended slice. When dst has enough spare
// capacity (NumComponents elements) no allocation takes place — this is
// the sampling hot path, fed by Arena-carved slices.
func AppendSplit(dst []int, total, limit, clusters int) []int {
	if total <= 0 {
		panic(fmt.Sprintf("workload: Split with non-positive total %d", total))
	}
	if limit <= 0 {
		panic(fmt.Sprintf("workload: Split with non-positive limit %d", limit))
	}
	if clusters <= 0 {
		panic(fmt.Sprintf("workload: Split with non-positive cluster count %d", clusters))
	}
	n := (total + limit - 1) / limit
	if n > clusters {
		n = clusters
	}
	if n < 1 {
		n = 1
	}
	base := total / n
	extra := total % n
	for i := 0; i < n; i++ {
		c := base
		if i < extra {
			c++
		}
		dst = append(dst, c) // already nonincreasing: larger components first
	}
	return dst
}

// NumComponents returns len(Split(total, limit, clusters)) without
// allocating.
func NumComponents(total, limit, clusters int) int {
	n := (total + limit - 1) / limit
	if n > clusters {
		n = clusters
	}
	if n < 1 {
		n = 1
	}
	return n
}
