package workload

import (
	"fmt"

	"coalloc/internal/rng"
)

// Arena is a per-run bump allocator for jobs. It block-allocates Job
// values and carves every per-job int slice (Components, Placement,
// OrderedPlacement) out of a shared []int backing store, so sampling and
// dispatching a job costs zero heap allocations in the steady state.
//
// Ownership rules (see DESIGN.md §11):
//
//   - Every *Job returned by Job (and every slice returned by Ints or
//     CopyInts) is valid only until the next Reset. Resetting recycles
//     the blocks wholesale; stale handles silently alias new jobs.
//   - An arena belongs to exactly one run at a time. Nothing that
//     outlives the run — results, observers, package-level state — may
//     retain arena-owned *Job handles or slices (the detlint jobretain
//     rule enforces the global/channel cases).
//   - Arenas are not safe for concurrent use; each replication gets its
//     own (internal/core recycles them through a sync.Pool).
//
// The zero value is ready to use. All methods are nil-safe: a nil *Arena
// falls back to ordinary heap allocation, so code paths can be written
// once and run with or without pooling.
type Arena struct {
	jobBlocks [][]Job
	jobUsed   int // slots used in the last job block
	intBlocks [][]int
	intUsed   int // ints used in the last int block

	perm []int // scratch for sampleDistinctClusters; never handed out
}

// Block sizing: jobs are ~160 B each, so 1024-job blocks are ~160 KiB;
// int blocks hold the Components+Placement of ~2048 typical jobs. After
// the first Reset the arena consolidates to one right-sized block per
// kind, so later replications allocate nothing at all.
const (
	arenaJobBlock = 1024
	arenaIntBlock = 8192
)

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Job returns a zeroed job. The handle is owned by the arena: it is valid
// only until the next Reset. A nil arena allocates from the heap.
func (a *Arena) Job() *Job {
	if a == nil {
		return &Job{}
	}
	if len(a.jobBlocks) == 0 || a.jobUsed == len(a.jobBlocks[len(a.jobBlocks)-1]) {
		a.jobBlocks = append(a.jobBlocks, make([]Job, arenaJobBlock))
		a.jobUsed = 0
	}
	blk := a.jobBlocks[len(a.jobBlocks)-1]
	j := &blk[a.jobUsed]
	a.jobUsed++
	*j = Job{} // recycled slot: clear the previous replication's job
	return j
}

// Ints carves a zeroed slice of n ints from the shared backing store. The
// slice's capacity is pinned to n (full slice expression), so appending to
// it can never scribble over a neighbouring carve — append reallocates to
// the heap instead. Valid only until the next Reset. A nil arena (or
// n == 0) falls back to make.
func (a *Arena) Ints(n int) []int {
	if n <= 0 {
		return nil
	}
	if a == nil {
		return make([]int, n)
	}
	if len(a.intBlocks) == 0 || a.intUsed+n > len(a.intBlocks[len(a.intBlocks)-1]) {
		size := arenaIntBlock
		if n > size {
			size = n
		}
		a.intBlocks = append(a.intBlocks, make([]int, size))
		a.intUsed = 0
	}
	blk := a.intBlocks[len(a.intBlocks)-1]
	s := blk[a.intUsed : a.intUsed+n : a.intUsed+n]
	a.intUsed += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// CopyInts carves an arena-owned copy of src. Empty src returns nil.
func (a *Arena) CopyInts(src []int) []int {
	if len(src) == 0 {
		return nil
	}
	dst := a.Ints(len(src))
	copy(dst, src)
	return dst
}

// Reset recycles every job and slice the arena has handed out since the
// last Reset. Outstanding handles become invalid. Memory is retained:
// when more than one block of a kind was needed, the blocks are merged
// into a single right-sized one, so a steady-state replication loop
// reaches zero allocations after the first pass.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	if len(a.jobBlocks) > 1 {
		total := 0
		for _, b := range a.jobBlocks {
			total += len(b)
		}
		a.jobBlocks = [][]Job{make([]Job, total)}
	}
	a.jobUsed = 0
	if len(a.intBlocks) > 1 {
		total := 0
		for _, b := range a.intBlocks {
			total += len(b)
		}
		a.intBlocks = [][]int{make([]int, total)}
	}
	a.intUsed = 0
}

// SampleInto draws one job exactly like Spec.Sample but allocates the Job
// and its Components from the arena. A nil arena degrades to per-job heap
// allocation. Both paths consume identical stream draws in identical
// order, so for a given stream state the sampled values are bit-identical
// with and without an arena (pinned by TestSampleIntoMatchesSample).
func (s *Spec) SampleInto(a *Arena, sizeStream, svcStream *rng.Stream) *Job {
	total := s.Sizes.Sample(sizeStream)
	svc := s.Service.Sample(svcStream)
	return s.JobFromDraws(a, total, svc)
}

// JobFromDraws materializes the job Sample would have built from raw
// draws (a total size and a net service time) already taken from the
// streams. Trace replay in internal/core goes through it so a recorded
// workload reconstructs jobs with the very same arithmetic as live
// sampling — the bit-identity of the two paths is by construction.
func (s *Spec) JobFromDraws(a *Arena, total int, svc float64) *Job {
	j := a.Job()
	j.TotalSize = total
	n := NumComponents(total, s.ComponentLimit, s.Clusters)
	j.Components = AppendSplit(a.Ints(n)[:0], total, s.ComponentLimit, s.Clusters)
	j.ServiceTime = svc
	j.ExtendedServiceTime = svc
	if n > 1 {
		j.ExtendedServiceTime = svc * s.ExtensionFactor
	}
	return j
}

// SampleTypedInto draws one job of the given request type from the arena,
// mirroring Spec.SampleTyped draw for draw (nil arena = heap).
func (s *Spec) SampleTypedInto(a *Arena, t RequestType, sizeStream, svcStream, placeStream *rng.Stream) *Job {
	switch t {
	case Unordered:
		return s.SampleInto(a, sizeStream, svcStream)
	case Ordered:
		j := s.SampleInto(a, sizeStream, svcStream)
		j.Type = Ordered
		j.OrderedPlacement = sampleDistinctClustersInto(a, placeStream, len(j.Components), s.Clusters)
		return j
	case Flexible, Total:
		total := s.Sizes.Sample(sizeStream)
		svc := s.Service.Sample(svcStream)
		j := a.Job()
		j.Type = t
		j.TotalSize = total
		comps := a.Ints(1)
		comps[0] = total
		j.Components = comps
		j.ServiceTime = svc
		j.ExtendedServiceTime = svc
		if t == Flexible && NumComponents(total, s.ComponentLimit, s.Clusters) > 1 {
			// Provisional estimate for offered-load arithmetic; the
			// dispatcher recomputes it from the actual split.
			j.ExtendedServiceTime = svc * s.ExtensionFactor
		}
		return j
	default:
		panic(fmt.Sprintf("workload: unknown request type %d", int(t)))
	}
}

// sampleDistinctClustersInto is sampleDistinctClusters drawing into the
// arena: the Fisher-Yates permutation lives in arena scratch and only the
// k chosen indices are carved from the backing store. The stream draw
// sequence is identical to the heap version.
func sampleDistinctClustersInto(a *Arena, r *rng.Stream, k, n int) []int {
	if a == nil {
		return sampleDistinctClusters(r, k, n)
	}
	if k > n {
		panic(fmt.Sprintf("workload: %d components for %d clusters", k, n))
	}
	if cap(a.perm) < n {
		a.perm = make([]int, n)
	}
	perm := a.perm[:n]
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return a.CopyInts(perm[:k])
}
