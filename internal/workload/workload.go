package workload

import (
	"fmt"

	"coalloc/internal/dastrace"
	"coalloc/internal/dist"
	"coalloc/internal/rng"
	"coalloc/internal/stats"
)

// DefaultExtensionFactor is the paper's wide-area communication slowdown
// applied to multi-component jobs (Section 2.4: "We use 1.25 as the
// extension factor of the service times of multi-component jobs").
const DefaultExtensionFactor = 1.25

// ServiceCut is the DAS-t-900 cutoff in seconds.
const ServiceCut = 900.0

// Spec bundles everything needed to sample jobs.
type Spec struct {
	// Sizes is the total-job-size distribution (DAS-s-128 or DAS-s-64).
	Sizes *dist.EmpiricalInt
	// Service is the net service-time distribution (DAS-t-900).
	Service dist.Continuous
	// ComponentLimit is the maximum job-component size (16, 24 or 32).
	ComponentLimit int
	// Clusters is the number of clusters jobs may be split across. For
	// the single-cluster reference system use 1: every request then has
	// one component (a "total request").
	Clusters int
	// ExtensionFactor multiplies the service time of multi-component
	// jobs. 1.0 disables the wide-area penalty.
	ExtensionFactor float64
}

// Validate reports configuration errors.
func (s *Spec) Validate() error {
	switch {
	case s.Sizes == nil:
		return fmt.Errorf("workload: Spec.Sizes is nil")
	case s.Service == nil:
		return fmt.Errorf("workload: Spec.Service is nil")
	case s.ComponentLimit <= 0:
		return fmt.Errorf("workload: component limit %d must be positive", s.ComponentLimit)
	case s.Clusters <= 0:
		return fmt.Errorf("workload: cluster count %d must be positive", s.Clusters)
	case s.ExtensionFactor < 1:
		return fmt.Errorf("workload: extension factor %g must be >= 1", s.ExtensionFactor)
	}
	return nil
}

// Sample draws one job (sizes, components, service time). The caller
// assigns ID, arrival time and queue.
//
// The returned Job and its slices are owned by the caller: they are
// freshly heap-allocated and never aliased by later Sample calls, so
// callers may retain or mutate them freely. (Arena-backed sampling via
// SampleInto has the opposite contract — see Arena.)
func (s *Spec) Sample(sizeStream, svcStream *rng.Stream) *Job {
	return s.SampleInto(nil, sizeStream, svcStream)
}

// MeanGrossWork returns the expected gross work per job in
// processor-seconds: E[size * service * extension], using the independence
// of sizes and service times assumed by the model.
func (s *Spec) MeanGrossWork() float64 {
	return s.weightedMeanSize(s.ExtensionFactor) * s.Service.Mean()
}

// MeanNetWork returns the expected net work per job in processor-seconds:
// E[size * service].
func (s *Spec) MeanNetWork() float64 {
	return s.Sizes.Mean() * s.Service.Mean()
}

// GrossNetRatio returns the ratio of gross to net utilization for this
// workload: the quotient of the mean total job size weighted by the
// extension factor for multi-component jobs, and the unweighted mean
// (Section 4 of the paper). It is independent of the scheduling policy.
func (s *Spec) GrossNetRatio() float64 {
	return s.weightedMeanSize(s.ExtensionFactor) / s.Sizes.Mean()
}

// weightedMeanSize returns E[size * w(size)] where w is ext for sizes that
// split into more than one component and 1 otherwise.
func (s *Spec) weightedMeanSize(ext float64) float64 {
	var m float64
	for _, v := range s.Sizes.Values() {
		w := 1.0
		if NumComponents(v, s.ComponentLimit, s.Clusters) > 1 {
			w = ext
		}
		m += float64(v) * w * s.Sizes.Prob(v)
	}
	return m
}

// MultiComponentFraction returns the probability that a job has more than
// one component — the quantity the paper quotes per component-size limit
// (e.g. "48.7% multi-component jobs" at limit 16).
func (s *Spec) MultiComponentFraction() float64 {
	var f float64
	for _, v := range s.Sizes.Values() {
		if NumComponents(v, s.ComponentLimit, s.Clusters) > 1 {
			f += s.Sizes.Prob(v)
		}
	}
	return f
}

// ComponentCountFractions returns the distribution of the number of
// components per job, indexed 1..Clusters — the paper's Table 2.
func (s *Spec) ComponentCountFractions() []float64 {
	fr := make([]float64, s.Clusters+1)
	for _, v := range s.Sizes.Values() {
		fr[NumComponents(v, s.ComponentLimit, s.Clusters)] += s.Sizes.Prob(v)
	}
	return fr[1:]
}

// ArrivalRateForGrossUtilization returns the Poisson arrival rate lambda
// that offers the given gross utilization on a system with the given total
// processor count: rho_gross = lambda * E[gross work] / P.
func (s *Spec) ArrivalRateForGrossUtilization(util float64, processors int) float64 {
	if util <= 0 || processors <= 0 {
		panic(fmt.Sprintf("workload: bad utilization %g or processors %d", util, processors))
	}
	return util * float64(processors) / s.MeanGrossWork()
}

// Distributions derived from a trace ----------------------------------------

// Derived holds the empirical distributions sampled from a job log.
type Derived struct {
	// Sizes128 is the full job-size distribution (DAS-s-128).
	Sizes128 *dist.EmpiricalInt
	// Sizes64 is the distribution cut at 64 (DAS-s-64).
	Sizes64 *dist.EmpiricalInt
	// Service is the service-time distribution cut at 900 s (DAS-t-900).
	Service *dist.EmpiricalCont
	// ExcludedBy64 is the fraction of jobs the 64-processor cap removes.
	ExcludedBy64 float64
}

// Derive builds the paper's three distributions from a log.
func Derive(recs []dastrace.Record) Derived {
	if len(recs) == 0 {
		panic("workload: Derive with empty trace")
	}
	sizeCount := stats.NewIntCounter()
	var svc []float64
	for _, r := range recs {
		sizeCount.Add(r.Size)
		if r.Service <= ServiceCut {
			svc = append(svc, r.Service)
		}
	}
	values := sizeCount.Values()
	weights := make([]float64, len(values))
	for i, v := range values {
		weights[i] = float64(sizeCount.Count(v))
	}
	s128 := dist.NewEmpiricalInt(values, weights)
	return Derived{
		Sizes128:     s128,
		Sizes64:      s128.CutAt(64),
		Service:      dist.NewEmpiricalCont(svc),
		ExcludedBy64: s128.MassAbove(64),
	}
}

// DeriveDefault derives the distributions from the canonical synthetic DAS
// log (fixed seed), the workload used by all paper experiments.
func DeriveDefault() Derived { return Derive(dastrace.Default()) }
