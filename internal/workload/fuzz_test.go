package workload

import "testing"

// FuzzSplit checks the splitting invariants over the whole input domain.
func FuzzSplit(f *testing.F) {
	f.Add(64, 16, 4)
	f.Add(1, 1, 1)
	f.Add(128, 32, 4)
	f.Add(97, 24, 5)
	f.Fuzz(func(t *testing.T, total, limit, clusters int) {
		if total <= 0 || limit <= 0 || clusters <= 0 ||
			total > 1<<16 || clusters > 1024 {
			t.Skip()
		}
		comps := Split(total, limit, clusters)
		if len(comps) < 1 || len(comps) > clusters {
			t.Fatalf("Split(%d,%d,%d) = %v: bad count", total, limit, clusters, comps)
		}
		sum := 0
		for i, c := range comps {
			if c <= 0 {
				t.Fatalf("Split(%d,%d,%d) = %v: non-positive component", total, limit, clusters, comps)
			}
			if i > 0 && comps[i] > comps[i-1] {
				t.Fatalf("Split(%d,%d,%d) = %v: not nonincreasing", total, limit, clusters, comps)
			}
			sum += c
		}
		if sum != total {
			t.Fatalf("Split(%d,%d,%d) = %v: sums to %d", total, limit, clusters, comps, sum)
		}
		if comps[0]-comps[len(comps)-1] > 1 {
			t.Fatalf("Split(%d,%d,%d) = %v: not as equal as possible", total, limit, clusters, comps)
		}
	})
}
