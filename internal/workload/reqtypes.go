package workload

import (
	"fmt"

	"coalloc/internal/rng"
)

// RequestType is the structure of a job request, following the taxonomy of
// the authors' companion study (Bucur & Epema, JSSPP 2000, cited as [6]):
// the present paper evaluates unordered requests against total requests in
// a single cluster; ordered and flexible requests are provided for the
// request-structure ablation.
type RequestType int

const (
	// Unordered requests specify component sizes; the scheduler picks
	// the clusters (the paper's main subject).
	Unordered RequestType = iota
	// Ordered requests additionally fix the cluster of every component;
	// the scheduler has no placement freedom.
	Ordered
	// Flexible requests specify only the total size; the scheduler may
	// split them arbitrarily over the clusters.
	Flexible
	// Total requests specify only the total size but must be served
	// within one cluster.
	Total
)

// String returns the taxonomy name.
func (t RequestType) String() string {
	switch t {
	case Unordered:
		return "unordered"
	case Ordered:
		return "ordered"
	case Flexible:
		return "flexible"
	case Total:
		return "total"
	default:
		return fmt.Sprintf("RequestType(%d)", int(t))
	}
}

// SampleTyped draws one job of the given request type. Unordered behaves
// exactly like Spec.Sample. Ordered jobs get the unordered split plus a
// fixed assignment of components to distinct clusters, drawn uniformly.
// Flexible and Total jobs carry a single pseudo-component holding the
// total size; for Flexible the simulator rewrites the components at
// dispatch time to whatever split it chooses, and recomputes the wide-area
// extension accordingly.
//
// Like Sample, the returned Job and its slices are caller-owned.
func (s *Spec) SampleTyped(t RequestType, sizeStream, svcStream, placeStream *rng.Stream) *Job {
	return s.SampleTypedInto(nil, t, sizeStream, svcStream, placeStream)
}

// sampleDistinctClusters draws k distinct cluster indices out of n,
// uniformly, by a partial Fisher-Yates shuffle.
func sampleDistinctClusters(r *rng.Stream, k, n int) []int {
	if k > n {
		panic(fmt.Sprintf("workload: %d components for %d clusters", k, n))
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

// FinalizeFlexible rewrites a flexible job's components to the split the
// scheduler chose and recomputes the wide-area extension: a flexible job
// pays the extension factor only when its chosen split actually spans more
// than one cluster.
func (j *Job) FinalizeFlexible(components []int, ext float64) {
	if j.Type != Flexible {
		panic(fmt.Sprintf("workload: FinalizeFlexible on %s job %d", j.Type, j.ID))
	}
	sum := 0
	for _, c := range components {
		sum += c
	}
	if sum != j.TotalSize {
		panic(fmt.Sprintf("workload: flexible split %v does not cover total %d", components, j.TotalSize))
	}
	j.Components = components
	j.ExtendedServiceTime = j.ServiceTime
	if len(components) > 1 {
		j.ExtendedServiceTime = j.ServiceTime * ext
	}
}
