package dectrace

import (
	"math"
	"testing"

	"coalloc/internal/cluster"
	"coalloc/internal/workload"
)

func testJob(id int64, comps ...int) *workload.Job {
	total := 0
	for _, c := range comps {
		total += c
	}
	return &workload.Job{ID: id, TotalSize: total, Components: comps}
}

// capture collects deep copies of emitted records (the live Record aliases
// tracer scratch and is only valid during the sink call).
type capture struct {
	recs []Record
}

func (c *capture) sink(r *Record) {
	cp := *r
	cp.Place = append([]int(nil), r.Place...)
	cp.Alts = make([]Alt, len(r.Alts))
	for i, a := range r.Alts {
		cp.Alts[i] = Alt{Rule: a.Rule, Start: a.Start, Place: append([]int(nil), a.Place...)}
	}
	c.recs = append(c.recs, cp)
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	m := cluster.New([]int{4, 4})
	j := testJob(1, 2)
	// Every method must be a nil-safe no-op.
	tr.SetSink(func(*Record) { t.Error("sink called on nil tracer") })
	tr.BeginAlts()
	tr.AddAlt("FF", 1, []int{0})
	tr.Dispatch(1, j, m, cluster.WorstFit, []int{0})
	tr.HeadMiss(1, j, m, cluster.WorstFit)
	tr.LocalMiss(1, j, m, 0)
	tr.BackfillReject(1, j, cluster.WorstFit, []int{0})
	tr.Reserve(1, j, 5, []int{0})
}

func TestNilTracerPathAllocsPerRun(t *testing.T) {
	var tr *Tracer
	m := cluster.New([]int{4, 4})
	j := testJob(1, 2)
	placement := []int{0}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Dispatch(1, j, m, cluster.WorstFit, placement)
		tr.HeadMiss(1, j, m, cluster.WorstFit)
		tr.Reserve(1, j, 5, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled tracer path allocates %g per run, want 0", allocs)
	}
}

func TestHeadMissThenDispatchResolvesRegret(t *testing.T) {
	tr := New(Options{})
	var c capture
	tr.SetSink(c.sink)
	m := cluster.New([]int{8, 8})
	j := testJob(7, 2, 2)
	j.Queue = 1

	// The tracer trusts the caller that the policy's rule missed; the
	// probe finds the unchosen rules' placements on the live idle vector.
	tr.HeadMiss(10, j, m, cluster.WorstFit)
	if len(c.recs) != 1 || c.recs[0].Kind != KindHeadMiss {
		t.Fatalf("records after first miss: %+v", c.recs)
	}
	if got := c.recs[0]; got.Job != 7 || got.Queue != 1 || !math.IsInf(got.Start, 1) || got.Place != nil {
		t.Errorf("headmiss record %+v", got)
	}
	if len(c.recs[0].Alts) == 0 {
		t.Fatal("headmiss with idle capacity found no alternative placements")
	}

	// A second miss in the same waiting spell folds silently: it cannot
	// reveal an earlier start than the first.
	tr.HeadMiss(12, j, m, cluster.WorstFit)
	if len(c.recs) != 1 {
		t.Fatalf("second miss of the spell emitted a record: %+v", c.recs)
	}

	tr.Dispatch(25, j, m, cluster.WorstFit, []int{0, 1})
	if len(c.recs) != 2 || c.recs[1].Kind != KindDispatch {
		t.Fatalf("records after dispatch: %+v", c.recs)
	}
	// Regret = dispatch time - earliest alternative start = 25 - 10.
	if got := c.recs[1].Regret; got != 15 {
		t.Errorf("regret = %g, want 15", got)
	}
	if tr.RegretTotal != 15 || tr.RegretMax != 15 || tr.RegretDecisions != 1 {
		t.Errorf("aggregates total=%g max=%g n=%d", tr.RegretTotal, tr.RegretMax, tr.RegretDecisions)
	}
	if tr.Decisions != 2 {
		t.Errorf("Decisions = %d, want 2", tr.Decisions)
	}

	// The pending entry was consumed: a re-dispatch sees no stale regret.
	tr.Dispatch(30, j, m, cluster.WorstFit, []int{0, 1})
	if tr.RegretTotal != 15 {
		t.Errorf("stale pending entry leaked regret: total %g", tr.RegretTotal)
	}
}

func TestDispatchWithoutMissHasZeroRegret(t *testing.T) {
	tr := New(Options{})
	m := cluster.New([]int{8, 8})
	j := testJob(1, 2)
	tr.Dispatch(5, j, m, cluster.WorstFit, []int{0})
	if tr.RegretTotal != 0 || tr.RegretDecisions != 0 {
		t.Errorf("regret without any observed alternative: total=%g n=%d", tr.RegretTotal, tr.RegretDecisions)
	}
	if tr.Decisions != 1 {
		t.Errorf("Decisions = %d, want 1", tr.Decisions)
	}
}

func TestLocalMissNamesOtherClusters(t *testing.T) {
	tr := New(Options{})
	var c capture
	tr.SetSink(c.sink)
	m := cluster.New([]int{4, 4, 4})
	m.Alloc([]int{3}, []int{0}) // cluster 0 nearly full
	j := testJob(3, 2)

	tr.LocalMiss(10, j, m, 0)
	if len(c.recs) != 1 || c.recs[0].Kind != KindLocalMiss {
		t.Fatalf("records: %+v", c.recs)
	}
	alts := c.recs[0].Alts
	if len(alts) != 2 {
		t.Fatalf("alts = %+v, want clusters 1 and 2", alts)
	}
	for i, want := range []int{1, 2} {
		if alts[i].Rule != "cluster" || alts[i].Start != 10 || len(alts[i].Place) != 1 || alts[i].Place[0] != want {
			t.Errorf("alt %d = %+v, want cluster %d at t=10", i, alts[i], want)
		}
	}

	// No feasible other cluster: nothing recorded, nothing pending.
	big := testJob(4, 9)
	tr.LocalMiss(11, big, m, 0)
	if len(c.recs) != 1 {
		t.Errorf("infeasible local miss emitted a record: %+v", c.recs)
	}
	tr.Dispatch(20, big, m, cluster.WorstFit, []int{1})
	if tr.RegretTotal != 0 {
		t.Errorf("infeasible miss accrued regret %g", tr.RegretTotal)
	}
}

func TestBackfillRejectRegret(t *testing.T) {
	tr := New(Options{})
	var c capture
	tr.SetSink(c.sink)
	m := cluster.New([]int{8})
	j := testJob(9, 2)

	tr.BackfillReject(100, j, cluster.WorstFit, []int{0})
	if len(c.recs) != 1 || c.recs[0].Kind != KindBackfillReject {
		t.Fatalf("records: %+v", c.recs)
	}
	a := c.recs[0].Alts
	if len(a) != 1 || a[0].Rule != "WF" || a[0].Start != 100 || len(a[0].Place) != 1 {
		t.Fatalf("reject alt %+v, want the rejected WF placement at t=100", a)
	}
	// Repeated rejections of the same waiting spell stay silent.
	tr.BackfillReject(105, j, cluster.WorstFit, []int{0})
	if len(c.recs) != 1 {
		t.Fatalf("repeat rejection emitted: %+v", c.recs)
	}
	tr.Dispatch(130, j, m, cluster.WorstFit, []int{0})
	if tr.RegretTotal != 30 {
		t.Errorf("regret = %g, want 130-100 = 30", tr.RegretTotal)
	}
}

func TestReserveDedupAndRegret(t *testing.T) {
	tr := New(Options{})
	var c capture
	tr.SetSink(c.sink)
	m := cluster.New([]int{8})
	j := testJob(5, 4)

	// First reservation: an alternative rule found an earlier hole.
	tr.BeginAlts()
	tr.AddAlt("FF", 40, []int{0})
	tr.AddAlt("BF", 90, []int{0}) // later than the chosen start: ignored
	tr.Reserve(10, j, 60, []int{0})
	if len(c.recs) != 1 || c.recs[0].Kind != KindReserve || c.recs[0].Start != 60 {
		t.Fatalf("records: %+v", c.recs)
	}

	// The same reservation re-derived next pass is deduped.
	tr.BeginAlts()
	tr.AddAlt("FF", 40, []int{0})
	tr.Reserve(12, j, 60, []int{0})
	if len(c.recs) != 1 {
		t.Fatalf("re-derived reservation emitted: %+v", c.recs)
	}

	// A different start is a new decision.
	tr.BeginAlts()
	tr.Reserve(14, j, 55, []int{0})
	if len(c.recs) != 2 || c.recs[1].Start != 55 {
		t.Fatalf("moved reservation: %+v", c.recs)
	}

	// Dispatch at 50: regret against the earliest alternative (40).
	tr.Dispatch(50, j, m, cluster.WorstFit, []int{0})
	if tr.RegretTotal != 10 {
		t.Errorf("regret = %g, want 50-40 = 10", tr.RegretTotal)
	}
}

func TestDispatchBeforeAlternativeClampsToZero(t *testing.T) {
	tr := New(Options{})
	j := testJob(2, 2)
	m := cluster.New([]int{8})
	// The best alternative start (70) is later than the actual dispatch
	// (50): the policy beat its counterfactual, regret clamps to zero.
	tr.BeginAlts()
	tr.AddAlt("FF", 70, nil)
	tr.Reserve(10, j, 80, nil)
	tr.Dispatch(50, j, m, cluster.WorstFit, []int{0})
	if tr.RegretTotal != 0 || tr.RegretDecisions != 0 {
		t.Errorf("negative regret not clamped: total=%g n=%d", tr.RegretTotal, tr.RegretDecisions)
	}
}

func TestTopKBoundsAlternatives(t *testing.T) {
	tr := New(Options{TopK: 1})
	var c capture
	tr.SetSink(c.sink)
	j := testJob(1, 2)
	tr.BeginAlts()
	tr.AddAlt("FF", 10, []int{0})
	tr.AddAlt("BF", 11, []int{1})
	tr.AddAlt("WF", 12, []int{2})
	tr.Reserve(5, j, 100, nil)
	if len(c.recs) != 1 || len(c.recs[0].Alts) != 1 {
		t.Fatalf("topK=1 records: %+v", c.recs)
	}
	if c.recs[0].Alts[0].Rule != "FF" {
		t.Errorf("kept alt %+v, want the first (FF)", c.recs[0].Alts[0])
	}
	if New(Options{}).topK != DefaultTopK {
		t.Errorf("default TopK = %d, want %d", New(Options{}).topK, DefaultTopK)
	}
}

func TestAddAltCopiesCallerScratch(t *testing.T) {
	tr := New(Options{})
	var got []int
	tr.SetSink(func(r *Record) {
		got = append([]int(nil), r.Alts[0].Place...)
	})
	j := testJob(1, 2)
	scratch := []int{3}
	tr.BeginAlts()
	tr.AddAlt("FF", 10, scratch)
	scratch[0] = 99 // the caller reuses its scratch before the emit
	tr.Reserve(5, j, 100, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("alt placement %v, want the value at AddAlt time [3]", got)
	}
}

func TestProbeFitsSkipsNonPlaceableRequestTypes(t *testing.T) {
	tr := New(Options{})
	var c capture
	tr.SetSink(c.sink)
	m := cluster.New([]int{8, 8})
	j := testJob(1, 2, 2)
	j.Type = workload.Ordered // placement is fixed; no rule alternatives
	tr.HeadMiss(10, j, m, cluster.WorstFit)
	if len(c.recs) != 0 {
		t.Fatalf("ordered request produced fit alternatives: %+v", c.recs)
	}
	tr.Dispatch(20, j, m, cluster.WorstFit, []int{0, 1})
	if len(c.recs) != 1 || len(c.recs[0].Alts) != 0 {
		t.Fatalf("ordered dispatch: %+v", c.recs)
	}
}

func TestSinklessTracerStillAggregates(t *testing.T) {
	tr := New(Options{})
	m := cluster.New([]int{8, 8})
	j := testJob(1, 2)
	tr.HeadMiss(10, j, m, cluster.WorstFit)
	tr.Dispatch(25, j, m, cluster.WorstFit, []int{0})
	if tr.Decisions != 2 {
		t.Errorf("Decisions = %d, want 2 (counted even without a sink)", tr.Decisions)
	}
	if tr.RegretTotal != 15 {
		t.Errorf("RegretTotal = %g, want 15", tr.RegretTotal)
	}
}
