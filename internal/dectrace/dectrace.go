// Package dectrace is the run-scoped decision-trace layer: it records, for
// every dispatch, head-miss, reservation and backfill-rejection decision a
// policy takes, the chosen placement, the top-K unchosen alternatives the
// scheduler could have taken instead, and a per-job counterfactual regret —
// how much earlier the job could have started under the best unchosen
// placement it observed while the job waited.
//
// Regret is computed against exactly the availability state the policy
// consulted when it declined the alternative (the live idle vector for the
// FCFS-family policies, the free-capacity profile for the backfilling
// pair); no second simulation runs. The accounting is one map entry per
// waiting job: every decision that reveals a feasible unchosen start folds
// its time into the entry with min, and the job's dispatch resolves the
// entry into regret = start time - earliest alternative start.
//
// The layer follows the simulator's zero-cost-when-off contract: a nil
// *Tracer is inert — every method is nil-safe and returns after one pointer
// compare — so the kernel inner loop is untouched and a run without
// Config.Decisions is bit-identical to one built before this package
// existed. Tracing itself is pure observation: it probes placements only
// into tracer-owned scratch, never mutates cluster or policy state, and
// draws from no random stream, so an enabled run's scheduling outcome is
// bit-identical to a disabled one (pinned by the core guardrail test) and
// its decision records are byte-identical per seed.
package dectrace

import (
	"math"

	"coalloc/internal/cluster"
	"coalloc/internal/workload"
)

// DefaultTopK is the default bound on recorded alternatives per decision.
const DefaultTopK = 3

// FitRules lists every placement rule an alternative probe considers, in a
// fixed deterministic order.
var FitRules = [3]cluster.Fit{cluster.WorstFit, cluster.FirstFit, cluster.BestFit}

// Options configures a tracer.
type Options struct {
	// TopK bounds the number of alternatives recorded per decision
	// (0 = DefaultTopK).
	TopK int
}

// Record kinds.
const (
	// KindDispatch: a job started; Start is the dispatch time, Place the
	// chosen placement, Regret the resolved counterfactual regret, and
	// Alts the placements other fit rules would have chosen right now.
	KindDispatch = "dispatch"
	// KindHeadMiss: a queue head did not fit under the policy's rule but
	// an unchosen fit rule could have placed it immediately (Alts).
	KindHeadMiss = "headmiss"
	// KindLocalMiss: a single-component job confined to its own cluster
	// did not fit there while other clusters had room (Alts).
	KindLocalMiss = "localmiss"
	// KindBackfillReject: a backfill candidate fit right now but was
	// rejected because starting it would delay the head's reservation.
	KindBackfillReject = "bfreject"
	// KindReserve: a backfilling policy reserved a future start; Alts are
	// the starts other fit rules found on the same profile.
	KindReserve = "reserve"
)

// Alt is one unchosen alternative: the rule that produced it, the time the
// job could have started under it, and the placement (nil when the
// alternative names a start time only). Place aliases tracer scratch and is
// valid only during the sink callback.
type Alt struct {
	Rule  string
	Start float64
	Place []int
}

// Record is one decision. Place and Alts alias tracer-owned scratch that
// the next decision overwrites: a sink must consume them synchronously
// (the obs JSONL sink serializes them immediately).
type Record struct {
	T      float64
	Kind   string
	Job    int64
	Queue  int
	Start  float64 // +Inf when the decision names no start time
	Place  []int   // chosen placement, nil for miss-kind records
	Regret float64 // dispatch records only
	Alts   []Alt
}

// pend is the per-waiting-job regret accounting.
type pend struct {
	// alt is the earliest alternative start observed for the job while it
	// waited (+Inf until one is seen).
	alt float64
	// missed marks that a miss-kind record was already emitted for this
	// waiting spell; later misses only fold into alt.
	missed bool
	// lastResv dedupes reserve records: one per distinct reserved start.
	hasResv  bool
	lastResv float64
}

// Tracer records one run's decisions. It is single-threaded, like the
// simulation run that owns it. The zero tracer is not valid; use New. All
// methods are nil-safe no-ops, so disabled call sites pay one pointer
// compare.
type Tracer struct {
	// Aggregates, read after the run (core folds them into Result).
	// Decisions counts emitted records of every kind; RegretTotal,
	// RegretMax and RegretDecisions cover dispatch records only
	// (RegretDecisions counts dispatches with nonzero regret).
	Decisions       int
	RegretTotal     float64
	RegretMax       float64
	RegretDecisions int

	topK    int
	sink    func(*Record)
	pending map[int64]pend

	// Reusable record assembly and probe scratch; the chosen placement and
	// the Alt placements are copied into the recPlace/altPlace arenas so
	// records alias only tracer-owned storage and repeated decisions
	// allocate nothing in steady state.
	rec      Record
	recPlace []int
	alts     []Alt
	altPlace []int
	place    []int
	used     []bool
}

// New returns a tracer with the given options and no sink: decisions are
// counted and regret accounted, but no records leave the tracer until
// SetSink.
func New(opts Options) *Tracer {
	k := opts.TopK
	if k <= 0 {
		k = DefaultTopK
	}
	return &Tracer{topK: k, pending: make(map[int64]pend)}
}

// SetSink installs the record consumer (the obs JSONL sink). The *Record
// and its slices are valid only during the call.
func (t *Tracer) SetSink(sink func(*Record)) {
	if t == nil {
		return
	}
	t.sink = sink
}

// Enabled reports whether a tracer is attached.
func (t *Tracer) Enabled() bool { return t != nil }

// ensureScratch sizes the probe buffers for a system of nc clusters.
func (t *Tracer) ensureScratch(nc int) {
	if cap(t.place) < nc {
		t.place = make([]int, nc)
		t.used = make([]bool, nc)
	}
}

// beginAlts resets the alternative accumulator for a new decision.
func (t *Tracer) beginAlts() {
	t.alts = t.alts[:0]
	t.altPlace = t.altPlace[:0]
}

// addAlt appends an alternative, copying the placement into the arena.
func (t *Tracer) addAlt(rule string, start float64, place []int) {
	if len(t.alts) >= t.topK {
		return
	}
	var stable []int
	if place != nil {
		off := len(t.altPlace)
		t.altPlace = append(t.altPlace, place...)
		stable = t.altPlace[off : off+len(place) : off+len(place)]
	}
	t.alts = append(t.alts, Alt{Rule: rule, Start: start, Place: stable})
}

// BeginAlts starts alternative accumulation for a Reserve decision; the
// policy probes its own availability profile and hands each feasible
// alternative to AddAlt.
func (t *Tracer) BeginAlts() {
	if t == nil {
		return
	}
	t.beginAlts()
}

// AddAlt records one profile-probed alternative (Reserve decisions). The
// placement may live in caller scratch; it is copied.
func (t *Tracer) AddAlt(rule string, start float64, place []int) {
	if t == nil {
		return
	}
	t.addAlt(rule, start, place)
}

// observe folds an alternative start into the job's pending entry.
func (t *Tracer) observe(p *pend, at float64) {
	if at < p.alt {
		p.alt = at
	}
}

// take returns the job's pending entry (fresh when absent).
func (t *Tracer) take(job int64) pend {
	if p, ok := t.pending[job]; ok {
		return p
	}
	return pend{alt: math.Inf(1)}
}

// emit publishes the assembled record and counts it. The chosen placement
// may live in policy pass scratch, so it is copied into the tracer's own
// arena first — the record hands the sink tracer-owned storage only.
func (t *Tracer) emit(at float64, kind string, j *workload.Job, start float64, place []int, regret float64) {
	t.Decisions++
	if t.sink == nil {
		return
	}
	var stable []int
	if place != nil {
		t.recPlace = append(t.recPlace[:0], place...)
		stable = t.recPlace
	}
	t.rec = Record{
		T:      at,
		Kind:   kind,
		Job:    j.ID,
		Queue:  j.Queue,
		Start:  start,
		Place:  stable,
		Regret: regret,
		Alts:   t.alts,
	}
	t.sink(&t.rec)
}

// probeFits accumulates, as alternatives, the placements every fit rule
// other than chosen finds on the live idle vector, skipping any identical
// to the given placement. Only unordered and total requests have
// rule-dependent placements; other request types accumulate nothing.
func (t *Tracer) probeFits(j *workload.Job, m *cluster.Multicluster, chosen cluster.Fit, placement []int, at float64) {
	if j.Type != workload.Unordered && j.Type != workload.Total {
		return
	}
	t.ensureScratch(m.NumClusters())
	for _, f := range FitRules {
		if f == chosen {
			continue
		}
		if !m.PlaceInto(j.Components, f, t.place, t.used) {
			continue
		}
		alt := t.place[:len(j.Components)]
		if placement != nil && samePlacement(alt, placement) {
			continue
		}
		t.addAlt(f.String(), at, alt)
	}
}

func samePlacement(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Dispatch records a job start: it resolves the job's pending regret,
// probes the placements the unchosen fit rules would take on the same
// pre-allocation idle vector, and emits the dispatch record. The caller
// must invoke it before allocating the placement (core.simulation.Dispatch
// does), so the probe sees exactly the state the policy placed against.
func (t *Tracer) Dispatch(now float64, j *workload.Job, m *cluster.Multicluster, chosen cluster.Fit, placement []int) {
	if t == nil {
		return
	}
	regret := 0.0
	if p, ok := t.pending[j.ID]; ok {
		if p.alt < now {
			regret = now - p.alt
		}
		delete(t.pending, j.ID)
	}
	t.RegretTotal += regret
	if regret > t.RegretMax {
		t.RegretMax = regret
	}
	if regret > 0 {
		t.RegretDecisions++
	}
	t.beginAlts()
	t.probeFits(j, m, chosen, placement, now)
	t.emit(now, KindDispatch, j, now, placement, regret)
}

// HeadMiss records a queue head that did not fit under the policy's rule.
// The probe asks whether an unchosen fit rule could place the head right
// now — the greedy distinct-cluster rules are not optimal, so this does
// happen — and, if so, folds now into the job's regret accounting. Only
// the first such miss of a waiting spell emits a record; later misses can
// only observe later (never smaller) alternative starts, so they update
// nothing the record would show.
func (t *Tracer) HeadMiss(now float64, j *workload.Job, m *cluster.Multicluster, chosen cluster.Fit) {
	if t == nil {
		return
	}
	t.beginAlts()
	t.probeFits(j, m, chosen, nil, now)
	if len(t.alts) == 0 {
		return
	}
	p := t.take(j.ID)
	t.observe(&p, now)
	if p.missed {
		t.pending[j.ID] = p
		return
	}
	p.missed = true
	t.pending[j.ID] = p
	t.emit(now, KindHeadMiss, j, math.Inf(1), nil, 0)
}

// LocalMiss records a single-component job that did not fit on the one
// cluster its policy confines it to (LS and LP local queues) while other
// clusters had the capacity — the structural restriction the paper's
// local policies pay for. Alternatives name the feasible other clusters.
func (t *Tracer) LocalMiss(now float64, j *workload.Job, m *cluster.Multicluster, q int) {
	if t == nil {
		return
	}
	size := j.Components[0]
	t.ensureScratch(m.NumClusters())
	t.beginAlts()
	for c := 0; c < m.NumClusters(); c++ {
		if c == q || m.Idle(c) < size {
			continue
		}
		t.place[0] = c
		t.addAlt("cluster", now, t.place[:1])
	}
	if len(t.alts) == 0 {
		return
	}
	p := t.take(j.ID)
	t.observe(&p, now)
	if p.missed {
		t.pending[j.ID] = p
		return
	}
	p.missed = true
	t.pending[j.ID] = p
	t.emit(now, KindLocalMiss, j, math.Inf(1), nil, 0)
}

// BackfillReject records a backfill candidate that fit right now under the
// policy's own rule but was rejected because starting it would delay the
// head's reservation. The rejected placement is itself the unchosen
// alternative; the job could have started at now.
func (t *Tracer) BackfillReject(now float64, j *workload.Job, rule cluster.Fit, placement []int) {
	if t == nil {
		return
	}
	t.beginAlts()
	t.addAlt(rule.String(), now, placement)
	p := t.take(j.ID)
	t.observe(&p, now)
	if p.missed {
		t.pending[j.ID] = p
		return
	}
	p.missed = true
	t.pending[j.ID] = p
	t.emit(now, KindBackfillReject, j, math.Inf(1), nil, 0)
}

// Reserve records a backfilling policy reserving a future start for a
// queued job. Alternatives accumulated since BeginAlts (the starts the
// unchosen fit rules found on the same availability profile) that are
// strictly earlier than the chosen start fold into the job's regret
// accounting. One record is emitted per distinct reserved start: the
// backfilling policies re-derive identical reservations every pass, and
// repeating them would say nothing new.
func (t *Tracer) Reserve(now float64, j *workload.Job, start float64, placement []int) {
	if t == nil {
		return
	}
	p := t.take(j.ID)
	for i := range t.alts {
		if t.alts[i].Start < start {
			t.observe(&p, t.alts[i].Start)
		}
	}
	if p.hasResv && p.lastResv == start {
		t.pending[j.ID] = p
		return
	}
	p.hasResv, p.lastResv = true, start
	t.pending[j.ID] = p
	t.emit(now, KindReserve, j, start, placement, 0)
}
