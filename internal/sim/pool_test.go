package sim

import (
	"testing"
)

// TestSlotPoolReuse drives many schedule/fire cycles and checks that the
// arena stays at the high-water mark of concurrent events instead of
// growing with the total event count.
func TestSlotPoolReuse(t *testing.T) {
	e := New()
	const width = 8 // concurrent pending events
	var next func()
	fired := 0
	next = func() {
		fired++
		if fired < 10_000 {
			e.After(1, next)
		}
	}
	for i := 0; i < width; i++ {
		e.After(1, next)
	}
	e.Run()
	if fired < 10_000 {
		t.Fatalf("fired %d events, want >= 10000", fired)
	}
	if len(e.slots) > 2*width {
		t.Errorf("arena grew to %d slots for %d concurrent events", len(e.slots), width)
	}
	if cap(e.heap) > 4*width {
		t.Errorf("heap capacity %d for %d concurrent events", cap(e.heap), width)
	}
}

// TestCancelRecyclesSlot checks that a cancelled event's slot returns to
// the free list and that its stale handle cannot touch the slot's next
// tenant.
func TestCancelRecyclesSlot(t *testing.T) {
	e := New()
	stale := e.At(5, func() { t.Error("cancelled event ran") })
	if !e.Cancel(stale) {
		t.Fatal("Cancel reported false for a pending event")
	}
	ran := false
	fresh := e.At(3, func() { ran = true })
	if fresh.id != stale.id {
		t.Fatalf("fresh event got slot %d, want recycled slot %d", fresh.id, stale.id)
	}
	// The stale handle must not cancel or observe the recycled slot.
	if stale.Pending() {
		t.Error("stale handle reports pending")
	}
	if e.Cancel(stale) {
		t.Error("stale handle cancelled the slot's new tenant")
	}
	if !fresh.Pending() {
		t.Error("fresh event not pending after stale Cancel attempt")
	}
	e.Run()
	if !ran {
		t.Error("recycled-slot event did not run")
	}
	if e.live != 0 {
		t.Errorf("live = %d after drain, want 0", e.live)
	}
}

// TestFiredSlotHandleGoesStale checks generation hygiene across firing.
func TestFiredSlotHandleGoesStale(t *testing.T) {
	e := New()
	ev := e.At(1, func() {})
	e.Run()
	if ev.Pending() {
		t.Error("fired event reports pending")
	}
	if e.Cancel(ev) {
		t.Error("Cancel of a fired event reported true")
	}
	// Reuse the slot and verify the old handle stays inert.
	ev2 := e.At(2, func() {})
	if e.Cancel(ev) {
		t.Error("stale handle cancelled recycled slot")
	}
	if !ev2.Pending() {
		t.Error("recycled event lost pending state")
	}
}

// TestSteadyStateAllocationFree verifies the pooled kernel's core promise:
// once warmed up, schedule+fire cycles perform no heap allocation.
func TestSteadyStateAllocationFree(t *testing.T) {
	e := New()
	var next func()
	next = func() { e.After(1, next) }
	e.After(1, next)
	for i := 0; i < 100; i++ { // warm the arena and heap capacity
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.2f objects/op, want 0", allocs)
	}
}

// TestTypedEventsAllocationFree verifies the typed-payload path stays
// allocation-free when the payload is a pointer (the arrival/departure
// case: payloads are *workload.Job).
func TestTypedEventsAllocationFree(t *testing.T) {
	type job struct{ id int }
	j := &job{id: 1}
	e := New()
	e.SetHandler(func(kind int32, payload any) {
		e.ScheduleAfter(1, kind, payload)
	})
	e.ScheduleAfter(1, 7, j)
	for i := 0; i < 100; i++ {
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("typed Step allocates %.2f objects/op, want 0", allocs)
	}
}

// TestTypedDispatch checks that kinds and payloads arrive intact and in
// (time, seq) order alongside closure events.
func TestTypedDispatch(t *testing.T) {
	e := New()
	type fire struct {
		kind    int32
		payload any
	}
	var got []fire
	e.SetHandler(func(kind int32, payload any) {
		got = append(got, fire{kind, payload})
	})
	p1, p2 := &struct{ n int }{1}, &struct{ n int }{2}
	e.Schedule(2, 1, p2)
	e.Schedule(1, 0, p1)
	closureRan := false
	e.At(1.5, func() { closureRan = true })
	e.Run()
	if len(got) != 2 || got[0].kind != 0 || got[0].payload != any(p1) ||
		got[1].kind != 1 || got[1].payload != any(p2) {
		t.Errorf("typed dispatch got %+v", got)
	}
	if !closureRan {
		t.Error("closure event between typed events did not run")
	}
}

// TestScheduleWithoutHandlerPanics guards the misconfiguration.
func TestScheduleWithoutHandlerPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("Schedule without SetHandler did not panic")
		}
	}()
	e.Schedule(1, 0, nil)
}
