package sim

import (
	"testing"

	"coalloc/internal/obs"
)

// TestReportStats: the engine's lifetime counters reach the observer only
// through ReportStats — the inner loop never touches the observer — and
// the reported values match the engine's own accessors.
func TestReportStats(t *testing.T) {
	o := obs.New(nil)
	e := New()
	e.SetObserver(o)
	if e.Observer() != o {
		t.Fatal("Observer() did not return the attached observer")
	}
	for i := 0; i < 10; i++ {
		e.After(float64(i), func() {})
	}
	e.Run()
	// Nothing reported until ReportStats runs.
	if v := o.Metrics.Counter("sim.events").Value(); v != 0 {
		t.Fatalf("sim.events = %d before ReportStats, want 0", v)
	}
	e.ReportStats()
	if got, want := o.Metrics.Counter("sim.events").Value(), e.Steps(); got != want {
		t.Errorf("sim.events = %d, want Steps() = %d", got, want)
	}
	if got, want := o.Metrics.Counter("sim.scheduled").Value(), e.Scheduled(); got != want {
		t.Errorf("sim.scheduled = %d, want Scheduled() = %d", got, want)
	}
	if got, want := o.Metrics.Gauge("sim.pool.arena_slots").Value(), float64(e.ArenaSize()); got != want {
		t.Errorf("sim.pool.arena_slots = %g, want ArenaSize() = %g", got, want)
	}
}

// TestReportStatsNilObserver: ReportStats with no observer attached is a
// no-op, not a panic.
func TestReportStatsNilObserver(t *testing.T) {
	e := New()
	e.After(1, func() {})
	e.Run()
	e.ReportStats()
}
