package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New()
	var got []float64
	times := []float64{5, 1, 3, 2, 4, 0.5, 2.5}
	for _, tm := range times {
		tm := tm
		e.At(tm, func() { got = append(got, tm) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events ran out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Errorf("ran %d events, want %d", len(got), len(times))
	}
	if e.Now() != 5 {
		t.Errorf("clock at %g, want 5", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events ran in order %v, want FIFO", got)
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	e := New()
	var finish float64
	e.After(1, func() {
		e.After(2, func() {
			finish = e.Now()
		})
	})
	e.Run()
	if finish != 3 {
		t.Errorf("nested After finished at %g, want 3", finish)
	}
}

func TestScheduleAtNowRunsAfterCurrent(t *testing.T) {
	e := New()
	var order []string
	e.At(1, func() {
		e.At(1, func() { order = append(order, "same-time") })
		order = append(order, "first")
	})
	e.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "same-time" {
		t.Errorf("order = %v", order)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	ev := e.At(1, func() { ran = true })
	if !ev.Pending() {
		t.Error("event should be pending before run")
	}
	if !e.Cancel(ev) {
		t.Error("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Error("double Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []float64
	var evs []Event
	for _, tm := range []float64{1, 2, 3, 4, 5, 6, 7, 8} {
		tm := tm
		evs = append(evs, e.At(tm, func() { got = append(got, tm) }))
	}
	e.Cancel(evs[3]) // t=4
	e.Cancel(evs[0]) // t=1
	e.Run()
	want := []float64{2, 3, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var ran []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func() { ran = append(ran, tm) })
	}
	e.RunUntil(3)
	if len(ran) != 3 {
		t.Errorf("RunUntil(3) ran %d events, want 3", len(ran))
	}
	if e.Now() != 3 {
		t.Errorf("clock at %g after RunUntil(3)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("%d events pending, want 2", e.Pending())
	}
	e.RunUntil(10)
	if len(ran) != 5 {
		t.Errorf("after second RunUntil ran %d events, want 5", len(ran))
	}
	if e.Now() != 10 {
		t.Errorf("clock at %g, want 10 (advances to the bound)", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop at 3", count)
	}
	// Run resumes.
	e.Run()
	if count != 10 {
		t.Errorf("resumed run finished %d events, want 10", count)
	}
}

func TestPastEventPanics(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestNilHandlerPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("At with nil handler did not panic")
		}
	}()
	e.At(1, nil)
}

func TestSteps(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", e.Steps())
	}
}

// TestHeapRandomOrdering is a property test: any batch of events with
// random times runs in nondecreasing time order with FIFO tie-breaks.
func TestHeapRandomOrdering(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		n := 50 + r.Intn(200)
		type stamp struct {
			time float64
			seq  int
		}
		var got []stamp
		for i := 0; i < n; i++ {
			tm := float64(r.Intn(20)) // many ties
			i := i
			e.At(tm, func() { got = append(got, stamp{tm, i}) })
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			if got[i].time < got[i-1].time {
				return false
			}
			if got[i].time == got[i-1].time && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestHeapRandomCancels interleaves scheduling and cancelling and checks
// that exactly the surviving events run, in order.
func TestHeapRandomCancels(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := New()
		type rec struct {
			ev        Event
			time      float64
			cancelled bool
		}
		var recs []*rec
		ran := make(map[*rec]bool)
		for i := 0; i < 100; i++ {
			tm := r.Float64() * 100
			rc := &rec{time: tm}
			rc.ev = e.At(tm, func() { ran[rc] = true })
			recs = append(recs, rc)
		}
		for _, rc := range recs {
			if r.Float64() < 0.3 {
				rc.cancelled = true
				if !e.Cancel(rc.ev) {
					return false
				}
			}
		}
		e.Run()
		for _, rc := range recs {
			if rc.cancelled == ran[rc] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := New()
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			e.After(1, next)
		}
	}
	e.After(1, next)
	b.ResetTimer()
	e.Run()
}
