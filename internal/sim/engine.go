// Package sim is a small discrete-event simulation kernel.
//
// It plays the role the commercial CSIM18 package plays in the paper: it
// maintains a virtual clock and an ordered set of pending events, and runs
// event handlers in nondecreasing time order. The kernel is deliberately
// event-oriented rather than process-oriented: the multicluster model needs
// only job arrivals and departures, and an explicit event loop keeps the
// scheduler-policy code free of goroutines and therefore exactly
// reproducible.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking on a monotone sequence number), which the
// queueing policies rely on: a departure handler must release processors
// before the scheduling pass triggered by the same instant's arrival runs.
//
// The kernel is allocation-free on its steady-state hot path. Event state
// lives in a slot arena recycled through a free list, the pending-event
// heap holds small value entries rather than pointers, and cancellation is
// lazy (a cancelled event's heap entry is dropped when it reaches the top),
// so push and pop never maintain back-pointers from events into the heap.
// Simulations that schedule one event per fired event — the open-system
// arrival/departure loop — therefore run without any per-event heap
// allocation once the arena has warmed up.
package sim

import (
	"errors"
	"fmt"
	"math"

	"coalloc/internal/obs"
)

// Event is a handle to a scheduled callback. It is a small value (copy it
// freely); the zero value is not useful — obtain events from At, After,
// Schedule or ScheduleAfter. Handles are generation-checked: once the event
// fires or is cancelled, the handle goes stale and Cancel/Pending report
// false even if the kernel has recycled the underlying slot.
type Event struct {
	e    *Engine
	id   int32
	gen  uint32
	time float64
}

// Time returns the virtual time at which the event fires (or fired).
func (ev Event) Time() float64 { return ev.time }

// Pending reports whether the event is still queued.
func (ev Event) Pending() bool {
	if ev.e == nil {
		return false
	}
	sl := &ev.e.slots[ev.id]
	return sl.gen == ev.gen && sl.live
}

// slot is the arena record behind one scheduled event. Exactly one of fn
// and (kind, payload) is meaningful: closure events carry fn, typed events
// carry a kind tag and payload for the engine-wide handler.
type slot struct {
	fn      func()
	payload any
	kind    int32
	gen     uint32 // bumped on release; stale handles/entries compare !=
	next    int32  // free-list link, -1 = end
	live    bool
}

// entry is one pending-event heap element: the full ordering key plus the
// slot reference. Keeping the key inline means heap sifts never chase slot
// pointers, and keeping gen means a popped entry can detect that its slot
// was cancelled (and possibly recycled) without any heap-position
// bookkeeping on the slot.
type entry struct {
	time float64
	seq  uint64
	id   int32
	gen  uint32
}

// Engine is the simulation executive: a virtual clock plus a pending-event
// queue. Engines are not safe for concurrent use; a simulation run is a
// single-threaded computation.
type Engine struct {
	now     float64
	heap    []entry
	slots   []slot
	free    int32 // free-list head into slots, -1 = empty
	live    int   // pending (scheduled and not cancelled) events
	seq     uint64
	stopped bool
	steps   uint64
	handler func(kind int32, payload any)
	obs     *obs.Observer
}

// New returns an Engine with the clock at zero.
func New() *Engine {
	return &Engine{free: -1}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Scheduled returns the number of events ever scheduled (fired, pending or
// cancelled).
func (e *Engine) Scheduled() uint64 { return e.seq }

// ArenaSize returns the number of slots in the event arena — the peak
// pending-event population. Scheduled events beyond this count were served
// by recycled slots (the pool steady state).
func (e *Engine) ArenaSize() int { return len(e.slots) }

// SetObserver attaches a run observer. The kernel never calls the
// observer from its inner loop — observability must not perturb the event
// hot path — so the observer only receives the engine's lifetime counters
// when ReportStats is called, normally once at the end of a run.
func (e *Engine) SetObserver(o *obs.Observer) { e.obs = o }

// Observer returns the attached observer (nil when none).
func (e *Engine) Observer() *obs.Observer { return e.obs }

// ReportStats dumps the engine's lifetime counters (events executed,
// events scheduled, arena size) into the attached observer. It is safe to
// call with no observer attached.
func (e *Engine) ReportStats() {
	e.obs.EngineStats(e.steps, e.seq, len(e.slots))
}

// ErrPastEvent is returned by At when the requested time precedes the clock.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// SetHandler installs the dispatcher for typed events (Schedule,
// ScheduleAfter). One handler serves the whole engine; the kind tag tells
// it which event class fired. Typed events exist so that the simulation's
// hot loop — arrivals and departures carrying a job pointer — needs no
// per-event closure allocation.
func (e *Engine) SetHandler(h func(kind int32, payload any)) { e.handler = h }

// At schedules fn to run at virtual time t. Scheduling at the current time
// is allowed; the event runs after all events already scheduled for that
// time. It panics if t precedes the current time or is not a finite number.
func (e *Engine) At(t float64, fn func()) Event {
	if fn == nil {
		panic("sim: At with nil handler")
	}
	return e.schedule(t, fn, 0, nil)
}

// After schedules fn to run delay time units from now. Negative delays panic.
func (e *Engine) After(delay float64, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: After(%g): negative delay", delay))
	}
	return e.At(e.now+delay, fn)
}

// Schedule schedules a typed event at virtual time t: when it fires, the
// engine handler (SetHandler) receives the kind tag and the payload. The
// same time-validation rules as At apply.
func (e *Engine) Schedule(t float64, kind int32, payload any) Event {
	if e.handler == nil {
		panic("sim: Schedule without SetHandler")
	}
	return e.schedule(t, nil, kind, payload)
}

// ScheduleAfter schedules a typed event delay time units from now.
func (e *Engine) ScheduleAfter(delay float64, kind int32, payload any) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAfter(%g): negative delay", delay))
	}
	return e.Schedule(e.now+delay, kind, payload)
}

// schedule is the kernel allocation path: slots come from the recycled
// pool and the heap entry is a value push, so steady-state scheduling
// must not touch the garbage collector.
//
//detlint:noalloc
func (e *Engine) schedule(t float64, fn func(), kind int32, payload any) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%g) precedes now=%g: %v", t, e.now, ErrPastEvent))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: At(%g): time must be finite", t))
	}
	id := e.allocSlot()
	sl := &e.slots[id]
	sl.fn = fn
	sl.kind = kind
	sl.payload = payload
	sl.live = true
	seq := e.seq
	e.seq++
	e.push(entry{time: t, seq: seq, id: id, gen: sl.gen})
	e.live++
	return Event{e: e, id: id, gen: sl.gen, time: t}
}

// allocSlot pops a recycled slot or grows the arena.
func (e *Engine) allocSlot() int32 {
	if e.free >= 0 {
		id := e.free
		e.free = e.slots[id].next
		return id
	}
	e.slots = append(e.slots, slot{next: -1})
	return int32(len(e.slots) - 1)
}

// releaseSlot returns a slot to the free list, invalidating outstanding
// handles and heap entries via the generation bump.
func (e *Engine) releaseSlot(id int32) {
	sl := &e.slots[id]
	sl.fn = nil
	sl.payload = nil
	sl.live = false
	sl.gen++
	sl.next = e.free
	e.free = id
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired or was already cancelled is a no-op and reports false.
// Cancellation is O(1): the slot is recycled immediately and the heap entry
// is dropped lazily when it surfaces at the top of the queue.
func (e *Engine) Cancel(ev Event) bool {
	if ev.e != e || ev.e == nil {
		return false
	}
	sl := &e.slots[ev.id]
	if sl.gen != ev.gen || !sl.live {
		return false
	}
	e.releaseSlot(ev.id)
	e.live--
	return true
}

// peek prunes stale (cancelled) entries off the heap top and returns the
// earliest live entry without removing it.
func (e *Engine) peek() (entry, bool) {
	for len(e.heap) > 0 {
		ent := e.heap[0]
		sl := &e.slots[ent.id]
		if sl.gen != ent.gen || !sl.live {
			e.pop()
			continue
		}
		return ent, true
	}
	return entry{}, false
}

// Step executes the single earliest pending event, advancing the clock to
// its time. It reports false when the queue is empty.
//
//detlint:noalloc
func (e *Engine) Step() bool {
	ent, ok := e.peek()
	if !ok {
		return false
	}
	e.pop()
	sl := &e.slots[ent.id]
	fn, kind, payload := sl.fn, sl.kind, sl.payload
	// Recycle before running the handler so the slot is immediately
	// reusable by events the handler schedules — the pool steady state.
	e.releaseSlot(ent.id)
	e.live--
	e.now = ent.time
	e.steps++
	if fn != nil {
		fn()
	} else {
		e.handler(kind, payload)
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%g) precedes now=%g", t, e.now))
	}
	e.stopped = false
	for !e.stopped {
		ent, ok := e.peek()
		if !ok || ent.time > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop makes the innermost Run or RunUntil return after the current event
// handler completes. It may only be called from inside an event handler.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.live }

// --- binary min-heap of entries ordered by (time, seq) ---
//
// The heap holds value entries, not pointers, and nothing points back into
// it: sift operations are pure memory moves with inline key comparisons,
// and pop never repairs event-side indices (cancellation is lazy). This is
// the index-free fast path that lets the kernel run allocation-free.

func (ents entryHeap) less(i, j int) bool {
	a, b := &ents[i], &ents[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

type entryHeap []entry

func (e *Engine) push(ent entry) {
	e.heap = append(e.heap, ent)
	// Sift up.
	h := entryHeap(e.heap)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes the top entry (callers read it via peek first).
func (e *Engine) pop() {
	h := entryHeap(e.heap)
	last := len(h) - 1
	if last == 0 {
		e.heap = e.heap[:0]
		return
	}
	h[0] = h[last]
	e.heap = e.heap[:last]
	// Sift down.
	h = e.heap
	n := len(h)
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
