// Package sim is a small discrete-event simulation kernel.
//
// It plays the role the commercial CSIM18 package plays in the paper: it
// maintains a virtual clock and an ordered set of pending events, and runs
// event handlers in nondecreasing time order. The kernel is deliberately
// event-oriented rather than process-oriented: the multicluster model needs
// only job arrivals and departures, and an explicit event loop keeps the
// scheduler-policy code free of goroutines and therefore exactly
// reproducible.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking on a monotone sequence number), which the
// queueing policies rely on: a departure handler must release processors
// before the scheduling pass triggered by the same instant's arrival runs.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Event is a scheduled callback. The zero value is not useful; obtain
// events from Engine.At or Engine.After.
type Event struct {
	time  float64
	seq   uint64
	fn    func()
	index int // position in the heap, -1 when not queued
}

// Time returns the virtual time at which the event fires (or fired).
func (ev *Event) Time() float64 { return ev.time }

// Pending reports whether the event is still queued.
func (ev *Event) Pending() bool { return ev.index >= 0 }

// Engine is the simulation executive: a virtual clock plus a pending-event
// queue. Engines are not safe for concurrent use; a simulation run is a
// single-threaded computation.
type Engine struct {
	now     float64
	heap    []*Event
	seq     uint64
	stopped bool
	steps   uint64
}

// New returns an Engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// ErrPastEvent is returned by At when the requested time precedes the clock.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at virtual time t. Scheduling at the current time
// is allowed; the event runs after all events already scheduled for that
// time. It panics if t precedes the current time or is not a finite number.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%g) precedes now=%g: %v", t, e.now, ErrPastEvent))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: At(%g): time must be finite", t))
	}
	if fn == nil {
		panic("sim: At with nil handler")
	}
	ev := &Event{time: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	e.push(ev)
	return ev
}

// After schedules fn to run delay time units from now. Negative delays panic.
func (e *Engine) After(delay float64, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: After(%g): negative delay", delay))
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired or was already cancelled is a no-op and reports false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	e.remove(ev.index)
	ev.index = -1
	return true
}

// Step executes the single earliest pending event, advancing the clock to
// its time. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.time
	e.steps++
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%g) precedes now=%g", t, e.now))
	}
	e.stopped = false
	for !e.stopped {
		if len(e.heap) == 0 || e.heap[0].time > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// Stop makes the innermost Run or RunUntil return after the current event
// handler completes. It may only be called from inside an event handler.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// --- binary min-heap ordered by (time, seq) ---

func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].index = i
	e.heap[j].index = j
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.up(ev.index)
}

func (e *Engine) pop() *Event {
	ev := e.heap[0]
	last := len(e.heap) - 1
	e.swap(0, last)
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 0 {
		e.down(0)
	}
	ev.index = -1
	return ev
}

func (e *Engine) remove(i int) {
	last := len(e.heap) - 1
	if i != last {
		e.swap(i, last)
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		if !e.down(i) {
			e.up(i)
		}
	}
}

func (e *Engine) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

// down sifts element i toward the leaves; it reports whether i moved.
func (e *Engine) down(i int) bool {
	start := i
	n := len(e.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && e.less(right, left) {
			smallest = right
		}
		if !e.less(smallest, i) {
			break
		}
		e.swap(i, smallest)
		i = smallest
	}
	return i > start
}
