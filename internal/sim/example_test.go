package sim_test

import (
	"fmt"

	"coalloc/internal/sim"
)

// A minimal event-driven simulation: two events scheduled out of order run
// in virtual-time order, and handlers can schedule further events.
func Example() {
	eng := sim.New()
	eng.At(10, func() {
		fmt.Printf("t=%g second\n", eng.Now())
		eng.After(5, func() { fmt.Printf("t=%g third\n", eng.Now()) })
	})
	eng.At(1, func() { fmt.Printf("t=%g first\n", eng.Now()) })
	eng.Run()
	// Output:
	// t=1 first
	// t=10 second
	// t=15 third
}

// RunUntil executes events up to a bound and leaves the rest pending.
func ExampleEngine_RunUntil() {
	eng := sim.New()
	for _, t := range []float64{1, 2, 3} {
		t := t
		eng.At(t, func() { fmt.Println("event at", t) })
	}
	eng.RunUntil(2)
	fmt.Println("pending:", eng.Pending())
	// Output:
	// event at 1
	// event at 2
	// pending: 1
}
