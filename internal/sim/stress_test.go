package sim

import (
	"math/rand"
	"testing"
)

// TestEngineRandomizedStress interleaves At, After, Cancel and RunUntil in
// random orders against the pooled kernel and asserts the fundamental
// contract: every surviving event fires exactly once, in nondecreasing
// time order with FIFO (sequence) tie-breaks, and no cancelled event ever
// fires. Handlers themselves randomly schedule and cancel, exercising slot
// recycling under reentrancy.
func TestEngineRandomizedStress(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		r := rand.New(rand.NewSource(seed))
		e := New()

		type rec struct {
			ev        Event
			time      float64
			seq       int // global scheduling order, the FIFO tie-break
			cancelled bool
			fired     bool
		}
		var recs []*rec
		var firedOrder []*rec
		nextSeq := 0

		var schedule func(horizon float64)
		schedule = func(horizon float64) {
			rc := &rec{seq: nextSeq}
			nextSeq++
			recs = append(recs, rc)
			fn := func() {
				rc.fired = true
				firedOrder = append(firedOrder, rc)
				// Reentrant activity: sometimes schedule a follow-up or
				// cancel a random pending event from inside a handler.
				if r.Float64() < 0.3 && e.Now() < horizon {
					schedule(horizon)
				}
				if r.Float64() < 0.15 {
					victim := recs[r.Intn(len(recs))]
					if e.Cancel(victim.ev) {
						victim.cancelled = true
					}
				}
			}
			// Mix At (absolute) and After (relative) scheduling.
			if r.Float64() < 0.5 {
				tm := e.Now() + r.Float64()*20
				if r.Float64() < 0.2 { // force ties
					tm = e.Now() + float64(r.Intn(5))
				}
				rc.time = tm
				rc.ev = e.At(tm, fn)
			} else {
				d := r.Float64() * 20
				rc.time = e.Now() + d
				rc.ev = e.After(d, fn)
			}
		}

		now := 0.0
		for round := 0; round < 40; round++ {
			for i, k := 0, r.Intn(20); i < k; i++ {
				schedule(now + 100)
			}
			// Cancel a random subset from outside handlers.
			for _, rc := range recs {
				if !rc.fired && !rc.cancelled && r.Float64() < 0.1 {
					if e.Cancel(rc.ev) {
						rc.cancelled = true
					}
				}
			}
			// Alternate RunUntil hops with full drains.
			if r.Float64() < 0.8 {
				now += r.Float64() * 15
				e.RunUntil(now)
				if e.Now() != now {
					t.Fatalf("seed %d: clock %g after RunUntil(%g)", seed, e.Now(), now)
				}
			} else {
				e.Run()
				now = e.Now()
			}
		}
		e.Run()

		// Every event either fired or was cancelled, never both.
		pending := 0
		for _, rc := range recs {
			if rc.fired && rc.cancelled {
				t.Fatalf("seed %d: event seq %d both fired and cancelled", seed, rc.seq)
			}
			if !rc.fired && !rc.cancelled {
				pending++
			}
		}
		if pending != 0 {
			t.Fatalf("seed %d: %d events neither fired nor cancelled after drain", seed, pending)
		}
		if e.Pending() != 0 {
			t.Fatalf("seed %d: engine reports %d pending after drain", seed, e.Pending())
		}
		// Fired order respects (time, seq).
		for i := 1; i < len(firedOrder); i++ {
			a, b := firedOrder[i-1], firedOrder[i]
			if b.time < a.time {
				t.Fatalf("seed %d: event at t=%g fired after t=%g", seed, b.time, a.time)
			}
			if b.time == a.time && b.seq < a.seq {
				t.Fatalf("seed %d: tie at t=%g fired seq %d before seq %d",
					seed, a.time, b.seq, a.seq)
			}
		}
	}
}
