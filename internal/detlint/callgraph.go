package detlint

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// callGraph is the whole-module call graph the interprocedural analyzers
// (taintflow, handleflow, scratchescape) run their dataflow passes over.
//
// Nodes are the module's own functions and methods — every *types.Func
// whose declaration (with a body) was loaded. Edges are resolved
// statically:
//
//   - direct calls to package-level functions and concrete methods bind
//     to their single declaration;
//   - calls through an interface method are resolved with the method-set
//     heuristic (class-hierarchy analysis): the callee set is every
//     module-declared method that implements the interface method, so a
//     property proven for all implementations holds at the call site;
//   - calls through plain function values (fields, parameters, closures)
//     resolve to nothing. This is the deliberate precision limit: the
//     module's hot paths call through interfaces (policies.Ctx,
//     policies.Policy), not function tables, and the few func-typed hooks
//     (sim event closures, workpool bodies) never carry the facts these
//     analyzers track. DESIGN.md §14 documents the gap.
//
// The graph is built once per Run (inside Module.buildFacts) and is
// immutable afterwards, so the per-package analyzer goroutines can share
// it without locks.
type callGraph struct {
	mod *Module

	// funcs holds every module function in deterministic declaration
	// order (packages sorted by import path, files and declarations in
	// parse order); infos indexes the same records by object.
	funcs []*funcInfo
	infos map[*types.Func]*funcInfo

	// callees maps a function to the deduplicated, deterministically
	// ordered set of module-internal functions it may call.
	callees map[*types.Func][]*types.Func

	// named lists every named (non-alias) type declared in the module,
	// for interface-implementation resolution.
	named []*types.Named

	// implMemo caches interface-method -> implementations lookups. The
	// mutex covers post-build misses (a call expression in a package
	// loaded for type information only is not walked during build).
	implMu   sync.Mutex
	implMemo map[*types.Func][]*types.Func
}

// funcInfo ties a module function object to its syntax and package.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// buildCallGraph constructs the graph over every loaded package.
func buildCallGraph(mod *Module) *callGraph {
	cg := &callGraph{
		mod:      mod,
		infos:    make(map[*types.Func]*funcInfo),
		callees:  make(map[*types.Func][]*types.Func),
		implMemo: make(map[*types.Func][]*types.Func),
	}
	pkgs := mod.allPackages()
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				info := &funcInfo{fn: fn, decl: fd, pkg: pkg}
				cg.funcs = append(cg.funcs, info)
				cg.infos[fn] = info
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				cg.named = append(cg.named, named)
			}
		}
	}
	// Edge construction; this walk also warms the CHA memo for every
	// interface method the module calls.
	for _, fi := range cg.funcs {
		seen := make(map[*types.Func]bool)
		var edges []*types.Func
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range cg.resolveCall(fi.pkg.Info, call) {
				if !seen[callee] {
					seen[callee] = true
					edges = append(edges, callee)
				}
			}
			return true
		})
		sort.Slice(edges, func(i, j int) bool { return declLess(cg.infos[edges[i]], cg.infos[edges[j]]) })
		cg.callees[fi.fn] = edges
	}
	return cg
}

// declLess orders function records by source position for deterministic
// iteration.
func declLess(a, b *funcInfo) bool {
	if a.pkg.ImportPath != b.pkg.ImportPath {
		return a.pkg.ImportPath < b.pkg.ImportPath
	}
	return a.decl.Pos() < b.decl.Pos()
}

// resolveCall returns the module-declared functions a call expression may
// invoke: one for a direct call, the implementation set for an interface
// method call, nothing for a plain function-value call.
func (cg *callGraph) resolveCall(info *types.Info, call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if _, declared := cg.infos[fn]; declared {
				return []*types.Func{fn}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				return cg.implementations(m, iface)
			}
			if _, declared := cg.infos[m]; declared {
				return []*types.Func{m}
			}
			return nil
		}
		// Qualified package function (pkg.F).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if _, declared := cg.infos[fn]; declared {
				return []*types.Func{fn}
			}
		}
	}
	return nil
}

// implementations resolves an interface method to every module-declared
// concrete method that satisfies it (CHA over the module's method sets).
func (cg *callGraph) implementations(m *types.Func, iface *types.Interface) []*types.Func {
	cg.implMu.Lock()
	defer cg.implMu.Unlock()
	if impls, ok := cg.implMemo[m]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range cg.named {
		if types.IsInterface(named) {
			continue
		}
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if _, declared := cg.infos[fn]; declared {
			impls = append(impls, fn)
		}
	}
	sort.Slice(impls, func(i, j int) bool { return declLess(cg.infos[impls[i]], cg.infos[impls[j]]) })
	cg.implMemo[m] = impls
	return impls
}

// qualifiedName renders a function for findings: Name for package-level
// functions, (*Recv).Name / Recv.Name for methods, qualified with the
// package name when the function lives in another package.
func (cg *callGraph) qualifiedName(fn *types.Func, from *Package) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + "." + name
		if recv, ok := sig.Recv().Type().(*types.Pointer); ok {
			name = "(*" + types.TypeString(recv.Elem(), types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
		}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() != from.ImportPath {
		if fi, ok := cg.infos[fn]; ok {
			return fi.pkg.Name + "." + name
		}
		return fn.Pkg().Name() + "." + name
	}
	return name
}
