package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// NoAlloc verifies //detlint:noalloc annotations against the compiler's
// own escape analysis: when any annotated function exists, Run invokes
// `go build -gcflags=-m` on the annotated packages and parses the
// diagnostics. A heap allocation attributed inside an annotated
// function's body — including allocations from inlined callees, which
// the compiler reports at the call site — is a finding at the
// diagnostic's position, so hot-path regressions surface at lint time
// instead of bench time.
//
// Two diagnostic classes are not allocations and are filtered:
// constant strings "escaping" to the heap are static data, and
// allocations whose position falls inside a panic(...) argument list are
// failure-path only (a panic tears the run down anyway). An amortized
// allocation the annotation deliberately tolerates (a high-water-mark
// scratch grow) is suppressed at its line with //detlint:ignore noalloc.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //detlint:noalloc must show no heap allocation under -gcflags=-m",
	Run:  runNoAlloc,
}

// escapeDiag is one parsed allocation diagnostic.
type escapeDiag struct {
	line, col int
	msg       string
}

// escapeDiags indexes allocation diagnostics by absolute file path.
type escapeDiags struct {
	byFile map[string][]escapeDiag
}

// buildNoAllocFacts runs the compiler probe for every package containing
// a //detlint:noalloc annotation. A build failure is a load error (it
// means the module does not compile), propagated to Run's caller —
// mclint exits 2. With no annotations in the module the probe is
// skipped entirely.
func (m *Module) buildNoAllocFacts() error {
	if len(m.ann.noalloc) == 0 {
		return nil
	}
	// One `go build` per package set; main packages are built separately
	// with -o to the null device so no binary lands in the module root.
	pkgSet := make(map[string]*Package)
	for _, a := range m.ann.noalloc {
		pkgSet[a.pkg.ImportPath] = a.pkg
	}
	var rest, mains []string
	for path, pkg := range pkgSet {
		if pkg.Name == "main" {
			mains = append(mains, path)
		} else {
			rest = append(rest, path)
		}
	}
	sort.Strings(rest)
	sort.Strings(mains)
	m.escm = &escapeDiags{byFile: make(map[string][]escapeDiag)}
	if len(rest) > 0 {
		if err := m.escapeProbe(append([]string{"build", "-gcflags=-m"}, rest...)); err != nil {
			return err
		}
	}
	for _, main := range mains {
		if err := m.escapeProbe([]string{"build", "-gcflags=-m", "-o", os.DevNull, main}); err != nil {
			return err
		}
	}
	for _, diags := range m.escm.byFile {
		sort.Slice(diags, func(i, j int) bool {
			if diags[i].line != diags[j].line {
				return diags[i].line < diags[j].line
			}
			if diags[i].col != diags[j].col {
				return diags[i].col < diags[j].col
			}
			return diags[i].msg < diags[j].msg
		})
	}
	return nil
}

// escapeProbe runs one `go <args...>` in the module root and collects
// allocation diagnostics from its stderr. The go build cache replays
// compiler diagnostics on cache hits, so repeat lint runs stay fast.
func (m *Module) escapeProbe(args []string) error {
	cmd := exec.Command("go", args...)
	cmd.Dir = m.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("detlint: noalloc escape-analysis probe failed: go %s: %v\n%s",
			strings.Join(args, " "), err, strings.TrimSpace(string(out)))
	}
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		file, l, c, msg, ok := parseDiagLine(line)
		if !ok || !isAllocDiag(msg) {
			continue
		}
		if !strings.HasPrefix(file, string(os.PathSeparator)) {
			file = m.Root + string(os.PathSeparator) + file
		}
		m.escm.byFile[file] = append(m.escm.byFile[file], escapeDiag{line: l, col: c, msg: msg})
	}
	return nil
}

// parseDiagLine splits `path/file.go:12:34: message`.
func parseDiagLine(s string) (file string, line, col int, msg string, ok bool) {
	rest := s
	i := strings.Index(rest, ".go:")
	if i < 0 {
		return
	}
	file = rest[:i+3]
	rest = rest[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return
	}
	line, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return
	}
	return file, line, col, strings.TrimSpace(parts[2]), true
}

// isAllocDiag classifies a -m diagnostic as a heap allocation. Constant
// strings report "escapes to heap" but are static data, not an
// allocation.
func isAllocDiag(msg string) bool {
	if strings.HasPrefix(msg, "moved to heap: ") {
		return true
	}
	subj, found := strings.CutSuffix(msg, " escapes to heap")
	if !found {
		// -m=1 sometimes renders "x escapes to heap:" with trailing
		// detail on deeper verbosity; plain -m has no such suffix form,
		// so anything else is not an allocation report.
		return false
	}
	subj = strings.TrimSpace(subj)
	if strings.HasPrefix(subj, `"`) || strings.HasPrefix(subj, "`") {
		return false
	}
	return true
}

func runNoAlloc(p *Pass) {
	diags := p.Module.escm
	if diags == nil {
		return
	}
	fset := p.Module.Fset
	for _, a := range p.Module.ann.noalloc {
		if a.pkg != p.Pkg {
			continue
		}
		start := fset.Position(a.decl.Body.Pos())
		end := fset.Position(a.decl.Body.End())
		panics := panicArgRanges(fset, a.decl.Body)
		for _, d := range diags.byFile[start.Filename] {
			at := diagPoint{d.line, d.col}
			if !at.within(point(start), point(end)) || inAnyRange(at, panics) {
				continue
			}
			p.reportAt(token.Position{Filename: start.Filename, Line: d.line, Column: d.col},
				"%s is annotated //detlint:noalloc but the compiler reports: %s", a.fn.Name(), d.msg)
		}
	}
}

// diagPoint is a (line, column) pair ordered lexicographically.
type diagPoint struct{ line, col int }

func point(p token.Position) diagPoint { return diagPoint{p.Line, p.Column} }

func (p diagPoint) before(q diagPoint) bool {
	return p.line < q.line || (p.line == q.line && p.col <= q.col)
}

func (p diagPoint) within(start, end diagPoint) bool {
	return start.before(p) && p.before(end)
}

type diagRange struct{ start, end diagPoint }

func inAnyRange(p diagPoint, ranges []diagRange) bool {
	for _, r := range ranges {
		if p.within(r.start, r.end) {
			return true
		}
	}
	return false
}

// panicArgRanges collects the source ranges of panic(...) calls so
// failure-path allocations (a formatted panic message) do not fail the
// gate: the run is being torn down when they happen.
func panicArgRanges(fset *token.FileSet, body *ast.BlockStmt) []diagRange {
	var out []diagRange
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			out = append(out, diagRange{point(fset.Position(call.Pos())), point(fset.Position(call.End()))})
		}
		return true
	})
	return out
}
