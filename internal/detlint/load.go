package detlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Module is one loaded Go module: the shared FileSet, the module path
// from go.mod, and every package type-checked so far.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path declared by go.mod
	Fset *token.FileSet

	pkgs map[string]*Package // keyed by import path
	std  types.Importer      // stdlib resolver (shared go/importer "source")

	// Filled in by Run before the analysis phase; immutable during it.
	sup   *suppressions // parsed //detlint:ignore directives
	ann   *annotations  // //detlint:noalloc and //detlint:scratch sites
	facts *moduleFacts  // call graph + dataflow summaries (semantic rules)
	escm  *escapeDiags  // parsed `go build -gcflags=-m` output (noalloc)
}

// allPackages returns every successfully loaded package — the analysis
// targets plus their module-internal dependencies — sorted by import
// path. The interprocedural facts are built over this set so call chains
// through non-target packages are still followed.
func (m *Module) allPackages() []*Package {
	pkgs := make([]*Package, 0, len(m.pkgs))
	for _, p := range m.pkgs {
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs
}

// Package is one parsed and type-checked package of the module.
type Package struct {
	ImportPath string // e.g. "coalloc/internal/sim"
	Rel        string // module-relative dir, "" for the root package
	Dir        string // absolute directory
	Name       string // package name from the package clauses
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// load locates the module containing dir, expands the patterns to package
// directories, and parses and type-checks each (plus any module-internal
// dependencies) bottom-up. Only non-test files are loaded: the rules
// govern production code, and tests legitimately use wall clocks and maps.
func load(dir string, patterns []string) (*Module, []*Package, error) {
	base, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	root, modPath, err := findModule(base)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{
		Root: root,
		Path: modPath,
		Fset: fset,
		pkgs: make(map[string]*Package),
		std:  stdImporter{},
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := expandPattern(base, pat)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var targets []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, nil, fmt.Errorf("detlint: %s is outside module %s", d, root)
		}
		pkg, err := mod.ensure(importPathFor(modPath, rel), nil)
		if err != nil {
			return nil, nil, err
		}
		if pkg != nil {
			targets = append(targets, pkg)
		}
	}
	return mod, targets, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("detlint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("detlint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// importPathFor maps a module-relative directory to an import path.
func importPathFor(modPath, rel string) string {
	if rel == "." || rel == "" {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

// expandPattern resolves one package pattern to absolute directories. The
// recursive form "dir/..." walks the tree, skipping hidden directories
// and, per Go tool convention, "testdata" and "vendor".
func expandPattern(base, pat string) ([]string, error) {
	recursive := false
	switch {
	case pat == "...":
		recursive, pat = true, "."
	case strings.HasSuffix(pat, "/..."):
		recursive, pat = true, strings.TrimSuffix(pat, "/...")
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(base, dir)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("detlint: pattern %q: %s is not a directory", pat, dir)
	}
	if !recursive {
		if ok, err := hasGoFiles(dir); err != nil {
			return nil, err
		} else if !ok {
			return nil, fmt.Errorf("detlint: no Go files in %s", dir)
		}
		return []string{dir}, nil
	}
	var dirs []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// ensure parses and type-checks the package at importPath (which must be
// inside the module), loading module-internal dependencies first. stack
// detects import cycles. It returns nil for directories with no non-test
// Go files.
func (m *Module) ensure(importPath string, stack []string) (*Package, error) {
	if pkg, ok := m.pkgs[importPath]; ok {
		return pkg, nil
	}
	for _, s := range stack {
		if s == importPath {
			return nil, fmt.Errorf("detlint: import cycle: %s", strings.Join(append(stack, importPath), " -> "))
		}
	}
	rel := "."
	if importPath != m.Path {
		rel = strings.TrimPrefix(importPath, m.Path+"/")
	}
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("detlint: %s: %w", importPath, err)
	}
	var files []*ast.File
	name := ""
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = f.Name.Name
		} else if f.Name.Name != name {
			return nil, fmt.Errorf("detlint: %s: mixed packages %s and %s", dir, name, f.Name.Name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		m.pkgs[importPath] = nil
		return nil, nil
	}
	// Load module-internal imports first so the importer below can hand
	// their *types.Package straight back.
	stack = append(stack, importPath)
	for _, f := range files {
		for _, imp := range f.Imports {
			path := quoteImportPath(imp.Path.Value)
			if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
				if _, err := m.ensure(path, stack); err != nil {
					return nil, err
				}
			}
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: moduleImporter{m},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, m.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, 3)
		for i, e := range typeErrs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-3))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("detlint: type errors in %s:\n  %s", importPath, strings.Join(msgs, "\n  "))
	}
	pkg := &Package{
		ImportPath: importPath,
		Rel:        relOrEmpty(rel),
		Dir:        dir,
		Name:       name,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	m.pkgs[importPath] = pkg
	return pkg, nil
}

func relOrEmpty(rel string) string {
	if rel == "." {
		return ""
	}
	return filepath.ToSlash(rel)
}

// stdImporter is the process-wide stdlib resolver. The go/importer
// "source" importer parses and type-checks each standard-library package
// from source, which dominates load time; one shared instance means fmt,
// time, os and friends are resolved once per process instead of once per
// Run (the importer caches checked packages internally). Stdlib positions
// land in a private FileSet that is never rendered — findings only ever
// point into module files — so sharing across Runs with distinct module
// FileSets is safe. The mutex serializes concurrent Runs; within one Run
// loading is single-threaded already.
type stdImporter struct{}

var (
	stdImpMu sync.Mutex
	stdImp   types.Importer
)

func (stdImporter) Import(path string) (*types.Package, error) {
	stdImpMu.Lock()
	defer stdImpMu.Unlock()
	if stdImp == nil {
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	return stdImp.Import(path)
}

// moduleImporter resolves module-internal imports to already-checked
// packages and delegates everything else to the stdlib source importer.
type moduleImporter struct{ m *Module }

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	m := mi.m
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, ok := m.pkgs[path]
		if !ok || pkg == nil {
			return nil, fmt.Errorf("detlint: internal import %s not loaded", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}
