package detlint

import "go/types"

// moduleFacts bundles the interprocedural dataflow the semantic rules
// share: the whole-module call graph, the taint closure, and the escape
// summaries. Run builds it once, single-threaded, before the parallel
// per-package analysis phase; afterwards it is immutable.
type moduleFacts struct {
	cg      *callGraph
	taint   map[*types.Func]*taintFact
	event   *escapeFacts
	job     *escapeFacts
	scratch *scratchFacts
}

// buildFacts constructs the call graph and all dataflow summaries. The
// fact builders honor existing //detlint:ignore directives at store and
// source sites (crediting them for the staleness pass), so m.sup must be
// populated first.
func (m *Module) buildFacts() {
	cg := buildCallGraph(m)
	m.facts = &moduleFacts{
		cg:      cg,
		taint:   buildTaint(cg),
		event:   buildEscapeFacts(cg, eventSpec(m)),
		job:     buildEscapeFacts(cg, jobSpec(m)),
		scratch: buildScratchFacts(cg),
	}
}
