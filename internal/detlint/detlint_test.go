package detlint_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"coalloc/internal/detlint"
)

// TestFixtureFindings runs the full rule set over the detmod fixture
// module and compares the findings against the `// want <rule>` markers
// in its sources: every marked line must be reported under exactly the
// marked rules, and nothing else may be reported.
func TestFixtureFindings(t *testing.T) {
	checkFixtureModule(t, filepath.Join("testdata", "src", "detmod"))
}

// TestNoAllocFixture runs the suite over a module whose annotated
// functions exercise the compiler escape gate: the probe shells out to
// `go build -gcflags=-m`, so this lives outside the pure-Go fixture
// test.
func TestNoAllocFixture(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	checkFixtureModule(t, filepath.Join("testdata", "src", "noallocmod"))
}

// checkFixtureModule compares Run's findings over one fixture module
// against the module's want markers, in both directions.
func checkFixtureModule(t *testing.T, dir string) {
	t.Helper()
	findings, err := detlint.Run(detlint.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, f := range findings {
		rel, err := filepath.Rel(abs, f.Pos.Filename)
		if err != nil {
			t.Fatalf("finding outside fixture: %v", f)
		}
		got[fmt.Sprintf("%s:%d: %s", filepath.ToSlash(rel), f.Pos.Line, f.Rule)]++
	}
	want := parseWants(t, abs)
	for key := range want {
		if got[key] == 0 {
			t.Errorf("missing finding: %s", key)
		}
	}
	for key, n := range got {
		if want[key] == 0 {
			t.Errorf("unexpected finding (%d): %s", n, key)
		}
	}
}

var wantRE = regexp.MustCompile(`// want ([a-z ]+)$`)

// parseWants scans every fixture source file for `// want rule [rule...]`
// markers and returns the expected (file:line: rule) keys.
func parseWants(t *testing.T, root string) map[string]int {
	t.Helper()
	want := make(map[string]int)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, rule := range strings.Fields(m[1]) {
				want[fmt.Sprintf("%s:%d: %s", filepath.ToSlash(rel), line, rule)]++
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no want markers found in fixtures")
	}
	return want
}

// TestMalformedSuppressions checks that directives without a rule,
// without a reason, naming an unknown rule, or trying to silence the
// staleness reporter — plus a floating //detlint:noalloc annotation —
// are reported under the pseudo-rule "detlint".
func TestMalformedSuppressions(t *testing.T) {
	dir := filepath.Join("testdata", "src", "badsuppress")
	findings, err := detlint.Run(detlint.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, f := range findings {
		if f.Rule != "detlint" {
			t.Errorf("unexpected rule %q: %v", f.Rule, f)
			continue
		}
		if filepath.Base(f.Pos.Filename) != "bad.go" {
			t.Errorf("finding in unexpected file: %v", f)
		}
		lines = append(lines, f.Pos.Line)
	}
	sort.Ints(lines)
	if want := []int{6, 9, 12, 15, 18}; !equalInts(lines, want) {
		t.Errorf("detlint findings on lines %v, want %v", lines, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSingleAnalyzer checks that Config.Analyzers restricts the rule set:
// with only noglobalrand active, the wall-clock and map-range violations
// in the fixture module go unreported.
func TestSingleAnalyzer(t *testing.T) {
	dir := filepath.Join("testdata", "src", "detmod")
	findings, err := detlint.Run(detlint.Config{
		Dir:       dir,
		Analyzers: []*detlint.Analyzer{detlint.NoGlobalRand},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (the two rand imports): %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Rule != "noglobalrand" {
			t.Errorf("unexpected rule %q: %v", f.Rule, f)
		}
	}
}

// TestPatternSubset checks that a non-recursive pattern restricts the
// analysis to one package even though its module-internal dependencies
// are still loaded for type information.
func TestPatternSubset(t *testing.T) {
	dir := filepath.Join("testdata", "src", "detmod")
	findings, err := detlint.Run(detlint.Config{
		Dir:      dir,
		Patterns: []string{"internal/dist"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Rule != "noglobalrand" {
		t.Fatalf("got %v, want exactly the dist noglobalrand finding", findings)
	}
}

// TestRepoClean is the acceptance guardrail: the repository's own tree
// must be free of findings. Every determinism invariant the analyzers
// encode is enforced on every `go test ./...` run by this test, not just
// when mclint runs.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	findings, err := detlint.Run(detlint.Config{Dir: filepath.Join("..", "..")})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestRunErrors exercises the load-failure paths.
func TestRunErrors(t *testing.T) {
	if _, err := detlint.Run(detlint.Config{Dir: t.TempDir()}); err == nil {
		t.Error("Run outside a module: want error")
	}
	if _, err := detlint.Run(detlint.Config{
		Dir:      filepath.Join("testdata", "src", "detmod"),
		Patterns: []string{"no/such/dir"},
	}); err == nil {
		t.Error("Run with missing pattern dir: want error")
	}
}
