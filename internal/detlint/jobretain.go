package detlint

import (
	"go/ast"
	"go/types"
)

// JobRetain flags code that stores arena-owned *workload.Job handles where
// they can outlive the run that allocated them. Jobs are block-allocated
// from a per-run workload.Arena; at the end of the run the arena is reset
// and recycled, so a retained handle silently aliases a different
// replication's job. Results and summaries must copy the scalar fields
// they need instead of keeping the handle.
//
// Flagged shapes, everywhere outside internal/workload and tests:
//
//   - package-level variables whose type contains workload.Job (directly
//     or through pointers, slices, arrays, maps, or structs)
//   - channel types — anywhere — whose element type contains workload.Job:
//     a channel hands the job to another goroutine, which is never inside
//     the sending run's scope
//
// Struct fields are deliberately NOT flagged: queues, policies and the
// simulation itself legitimately hold jobs for the duration of the run,
// and that run-scoped state dies with the run. The hazard is state that
// survives it — globals and cross-goroutine channels.
var JobRetain = &Analyzer{
	Name: "jobretain",
	Doc:  "no storing arena-owned workload.Job handles in globals or sending them over channels",
	Run:  runJobRetain,
}

const jobRetainAdvice = "arena-owned jobs are recycled when their run resets the arena; copy the fields you need instead of retaining the handle"

func runJobRetain(pass *Pass) {
	wlPath := pass.Module.Path + "/internal/workload"
	if pass.Pkg.ImportPath == wlPath {
		return
	}
	c := jobChecker{wlPath: wlPath, memo: make(map[types.Type]bool)}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Package-level variables. The checker does not traverse into
		// channel types here — channels are reported once, below, at the
		// channel type itself.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // a blank var discards the value
					}
					obj := info.Defs[name]
					if obj != nil && c.contains(obj.Type()) {
						pass.Reportf(name.Pos(),
							"package-level variable %s retains a workload.Job handle; %s", name.Name, jobRetainAdvice)
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ct, ok := n.(*ast.ChanType)
			if !ok {
				return true
			}
			t := info.TypeOf(ct)
			ch, ok := t.(*types.Chan)
			if !ok {
				return true
			}
			if c.contains(ch.Elem()) {
				pass.Reportf(ct.Pos(),
					"channel carries workload.Job handles across run scope; %s", jobRetainAdvice)
			}
			return true
		})
	}
}

// jobChecker decides whether a type transitively contains workload.Job.
// Channels terminate the traversal: the channel check reports them itself.
type jobChecker struct {
	wlPath string
	memo   map[types.Type]bool
}

func (c *jobChecker) contains(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	// Pre-seed false to terminate on recursive types.
	c.memo[t] = false
	v := c.containsUncached(t)
	c.memo[t] = v
	return v
}

func (c *jobChecker) containsUncached(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Name() == "Job" && obj.Pkg() != nil && obj.Pkg().Path() == c.wlPath {
			return true
		}
		return c.contains(t.Underlying())
	case *types.Alias:
		return c.contains(types.Unalias(t))
	case *types.Pointer:
		return c.contains(t.Elem())
	case *types.Slice:
		return c.contains(t.Elem())
	case *types.Array:
		return c.contains(t.Elem())
	case *types.Map:
		return c.contains(t.Key()) || c.contains(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.contains(t.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return false
}
