package detlint

import (
	"go/ast"
	"go/types"
)

// CloseCheck flags statement-position calls to Close() or Flush() whose
// error result is silently discarded — as a bare statement, a defer, or
// a go statement. On buffered writers the write error often only
// surfaces at Close/Flush, so dropping it means a truncated CSV or trace
// reads as a successful run. PR 3 fixed every writer site by hand; this
// rule locks the fix in module-wide.
//
// Read-only handles genuinely have nothing to report at Close; suppress
// those sites with //detlint:ignore closecheck <reason>. An explicit
// `_ = f.Close()` is not flagged — the discard is visible in the code —
// but the suppression comment is preferred because it carries the why.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc:  "no discarded error results from Close() or Flush() at statement position",
	Run:  runCloseCheck,
}

var errorType = types.Universe.Lookup("error").Type()

func runCloseCheck(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(n.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Close" && name != "Flush" {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 ||
				!types.Identical(sig.Results().At(0).Type(), errorType) {
				return true
			}
			p.Reportf(call.Pos(),
				"error result of %s is discarded; buffered writers surface write errors at %s — check it (read-only handles: //detlint:ignore closecheck <reason>)",
				name, name)
			return true
		})
	}
}
