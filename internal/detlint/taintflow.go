package detlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TaintFlow is the interprocedural closure of nowallclock and
// noglobalrand: it flags a call, inside a deterministic package, to any
// module function that transitively reaches the wall clock or the global
// math/rand generator — however many helper hops sit in between. The
// direct use itself is reported by the syntactic rules when it sits in a
// deterministic package; taintflow catches the laundered case where the
// nondeterminism hides in a helper outside the deterministic set (a cmd
// utility, a script helper) that deterministic code then calls.
var TaintFlow = &Analyzer{
	Name:  "taintflow",
	Doc:   "no calls in deterministic packages to functions that transitively reach time.Now or math/rand",
	Run:   runTaintFlow,
	facts: true,
}

// taintFact explains why one module function is tainted: the ultimate
// source it reaches and the next hop toward it (nil when the function
// touches the source directly). Following via links reconstructs a
// shortest witness chain for the finding message.
type taintFact struct {
	source string
	via    *types.Func
}

// buildTaint seeds taint at every module function that directly touches a
// wall-clock function or a math/rand selector, then propagates it to
// callers over the call graph (BFS, so each fact records a shortest
// witness chain). A directly-touching site whose line carries a
// nowallclock/noglobalrand suppression is a documented-safe use and does
// not seed taint — the engine credits the directive so it is not reported
// stale.
func buildTaint(cg *callGraph) map[*types.Func]*taintFact {
	taint := make(map[*types.Func]*taintFact)
	var queue []*types.Func
	for _, fi := range cg.funcs {
		if src := directTaint(cg, fi); src != "" {
			taint[fi.fn] = &taintFact{source: src}
			queue = append(queue, fi.fn)
		}
	}
	callers := make(map[*types.Func][]*types.Func)
	for _, fi := range cg.funcs {
		for _, callee := range cg.callees[fi.fn] {
			callers[callee] = append(callers[callee], fi.fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range callers[fn] {
			if _, done := taint[caller]; done {
				continue
			}
			taint[caller] = &taintFact{source: taint[fn].source, via: fn}
			queue = append(queue, caller)
		}
	}
	return taint
}

// directTaint returns the name of the first nondeterminism source the
// function touches directly, or "".
func directTaint(cg *callGraph, fi *funcInfo) string {
	src := ""
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if src != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := fi.pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pn.Imported().Path() {
		case "time":
			if wallClockFuncs[sel.Sel.Name] &&
				!cg.mod.sup.sanctions(cg.mod.Fset.Position(sel.Pos()), NoWallClock.Name) {
				src = "time." + sel.Sel.Name
			}
		case "math/rand", "math/rand/v2":
			if !cg.mod.sup.sanctions(cg.mod.Fset.Position(sel.Pos()), NoGlobalRand.Name) {
				src = "rand." + sel.Sel.Name
			}
		}
		return true
	})
	return src
}

func runTaintFlow(p *Pass) {
	if !p.Deterministic() {
		return
	}
	facts := p.Module.facts
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range facts.cg.resolveCall(p.Pkg.Info, call) {
				t := facts.taint[callee]
				if t == nil {
					continue
				}
				p.Reportf(call.Pos(),
					"call to %s reaches %s in deterministic package %s (%s); use virtual time and internal/rng streams",
					facts.cg.qualifiedName(callee, p.Pkg), t.source, p.Pkg.ImportPath,
					facts.taintChain(callee, p.Pkg))
			}
			return true
		})
	}
}

// taintChain renders the witness path from fn to its source.
func (f *moduleFacts) taintChain(fn *types.Func, from *Package) string {
	var parts []string
	for cur := fn; cur != nil; {
		parts = append(parts, f.cg.qualifiedName(cur, from))
		t := f.taint[cur]
		if t == nil {
			break
		}
		if t.via == nil {
			parts = append(parts, t.source)
			break
		}
		cur = t.via
	}
	return strings.Join(parts, " -> ")
}
