package detlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScratchEscape machine-enforces the scratch-lifetime contract from
// DESIGN.md §11: storage handed out by policies.Ctx.Scratch() — the
// bundle itself and the slices inside it — is valid only for the current
// scheduling pass. Dispatch copies what it must keep (the stable copy
// lands in j.Placement); everything else derived from scratch dies when
// the pass returns. The same applies to the backfilling profile's
// retained arrays, which earliestStart hands out under a
// //detlint:scratch annotation.
//
// The analyzer tracks scratch-derived values through local assignments,
// reslicing, and module-internal calls (a function returning a
// scratch-derived value propagates the fact to its callers), and flags:
//
//   - stores into struct fields (except back into the Scratch bundle),
//     package-level variables, or slice/array/map elements
//   - channel sends and composite literals capturing scratch
//   - appending a scratch slice header to a slice (a spread copy,
//     append(dst, s...), copies the elements and is fine)
//   - returning scratch from an exported function or method — the
//     exported API boundary is where callers assume stable storage —
//     unless the function is annotated //detlint:scratch
//   - passing scratch to a function whose parameter escapes (via the
//     same parameter-escape engine handleflow uses)
var ScratchEscape = &Analyzer{
	Name:  "scratchescape",
	Doc:   "no retaining policies.Ctx.Scratch() storage in fields/globals or returning it across the exported API",
	Run:   runScratchEscape,
	facts: true,
}

const scratchAdvice = "scratch is valid only for the current scheduling pass; copy what must persist"

// scratchFacts is the whole-module scratch dataflow: which functions
// return scratch-derived values (per result index), plus parameter-escape
// summaries for reference-typed parameters.
type scratchFacts struct {
	named   *types.TypeName // policies.Scratch; nil disables the rule
	ef      *escapeFacts
	returns map[*types.Func]map[int]bool
}

// scratchSpec configures the escape engine for scratch values. Any
// reference-typed parameter is summarized — the summaries only matter at
// call sites where a scratch-derived argument actually flows in.
func scratchSpec(sf *scratchFacts) *handleSpec {
	return &handleSpec{
		rule:     ScratchEscape.Name,
		what:     "pass-scoped scratch slice",
		advice:   scratchAdvice,
		fields:   true,
		elements: true,
		channels: true,
		globals:  true,
		track: func(t types.Type) bool {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Pointer, *types.Map:
				return true
			}
			return false
		},
		exemptStore: func(pkg *Package, lhs ast.Expr) bool {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			return ok && sf.isScratchBundle(pkg.Info.TypeOf(sel.X))
		},
	}
}

// buildScratchFacts resolves the Scratch type and computes the returns
// facts to a fixed point (a function returning another function's
// scratch-derived result is itself scratch-returning).
func buildScratchFacts(cg *callGraph) *scratchFacts {
	sf := &scratchFacts{returns: make(map[*types.Func]map[int]bool)}
	pol := cg.mod.pkgs[cg.mod.Path+"/internal/policies"]
	if pol == nil {
		return sf
	}
	tn, _ := pol.Types.Scope().Lookup("Scratch").(*types.TypeName)
	if tn == nil {
		return sf
	}
	sf.named = tn
	sf.ef = buildEscapeFacts(cg, scratchSpec(sf))

	// Annotated functions seed the returns facts: every reference-typed
	// result of a //detlint:scratch function is scratch.
	for fn := range cg.mod.ann.scratch {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Results().Len(); i++ {
			switch sig.Results().At(i).Type().Underlying().(type) {
			case *types.Slice, *types.Pointer, *types.Map:
				sf.markReturn(fn, i)
			}
		}
	}
	// Propagate: re-derive each function until no new returns appear.
	for round := 0; round < 16; round++ {
		changed := false
		for _, fi := range cg.funcs {
			local := sf.derive(cg, fi)
			results := sf.returnedTracked(cg, fi, local)
			for _, ri := range results {
				if !sf.returns[fi.fn][ri] {
					sf.markReturn(fi.fn, ri)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return sf
}

func (sf *scratchFacts) markReturn(fn *types.Func, ri int) {
	m := sf.returns[fn]
	if m == nil {
		m = make(map[int]bool)
		sf.returns[fn] = m
	}
	m[ri] = true
}

// isScratchBundle reports whether t is policies.Scratch or a pointer to
// it.
func (sf *scratchFacts) isScratchBundle(t types.Type) bool {
	if t == nil || sf.named == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == sf.named
}

// isScratchOrigin reports whether call is a Scratch() method call
// returning the bundle — the Ctx boundary where pass-scoped storage is
// handed out.
func (sf *scratchFacts) isScratchOrigin(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Scratch" {
		return false
	}
	if _, ok := info.Selections[sel]; !ok {
		return false // qualified name, not a method call
	}
	return sf.isScratchBundle(info.TypeOf(call))
}

// tracked reports whether expr is scratch-derived given the local set:
// a tracked local, a field/reslice/element of a tracked value, a
// Scratch() origin call, or a call returning scratch (result 0 in
// single-value context; multi-value calls are handled at assignments).
func (sf *scratchFacts) tracked(cg *callGraph, info *types.Info, local map[types.Object]bool, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		return obj != nil && local[obj]
	case *ast.SelectorExpr:
		return sf.tracked(cg, info, local, e.X)
	case *ast.SliceExpr:
		return sf.tracked(cg, info, local, e.X)
	case *ast.IndexExpr:
		return sf.tracked(cg, info, local, e.X)
	case *ast.CallExpr:
		if sf.isScratchOrigin(info, e) {
			return true
		}
		for _, callee := range cg.resolveCall(info, e) {
			if sf.returns[callee][0] {
				return true
			}
		}
	}
	return false
}

// derive computes the set of local objects holding scratch-derived
// values, iterating the function's assignments to a fixed point.
func (sf *scratchFacts) derive(cg *callGraph, fi *funcInfo) map[types.Object]bool {
	info := fi.pkg.Info
	local := make(map[types.Object]bool)
	for round := 0; round < 8; round++ {
		changed := false
		mark := func(lhs ast.Expr) {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil && !local[obj] {
				local[obj] = true
				changed = true
			}
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if sf.tracked(cg, info, local, rhs) {
						mark(as.Lhs[i])
					}
				}
				return true
			}
			if len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range cg.resolveCall(info, call) {
				for ri := range sf.returns[callee] {
					if ri < len(as.Lhs) {
						mark(as.Lhs[ri])
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return local
}

// returnedTracked lists the result indices of fi's own return statements
// that yield tracked values. Returns inside function literals belong to
// the literal, not fi, and are skipped.
func (sf *scratchFacts) returnedTracked(cg *callGraph, fi *funcInfo, local map[types.Object]bool) []int {
	var out []int
	seen := make(map[int]bool)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				if !seen[i] && sf.tracked(cg, fi.pkg.Info, local, res) {
					seen[i] = true
					out = append(out, i)
				}
			}
		}
		return true
	}
	ast.Inspect(fi.decl.Body, walk)
	return out
}

func runScratchEscape(p *Pass) {
	sf := p.Module.facts.scratch
	if sf.named == nil {
		return
	}
	cg := p.Module.facts.cg
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			fi := cg.infos[fn]
			if fi == nil {
				continue
			}
			sf.checkFunc(p, cg, fi)
		}
	}
}

// checkFunc reports every scratch sink inside one function.
func (sf *scratchFacts) checkFunc(p *Pass, cg *callGraph, fi *funcInfo) {
	info := fi.pkg.Info
	local := sf.derive(cg, fi)
	spec := sf.ef.spec
	exported := fi.fn.Exported() && !cg.mod.ann.scratch[fi.fn]
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !sf.tracked(cg, info, local, rhs) {
					continue
				}
				if spec.exemptStore(fi.pkg, n.Lhs[i]) {
					continue
				}
				if why := classifyStore(spec, info, n.Lhs[i]); why != "" {
					p.Reportf(n.Lhs[i].Pos(), "%s scratch-derived storage; %s",
						strings.Replace(why, "stores it in", "retains scratch in", 1), scratchAdvice)
				}
			}
		case *ast.SendStmt:
			if sf.tracked(cg, info, local, n.Value) {
				p.Reportf(n.Pos(), "sending scratch-derived storage over a channel; %s", scratchAdvice)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if id, ok := ast.Unparen(v).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && local[obj] {
						p.Reportf(v.Pos(), "composite literal captures scratch-derived storage; %s", scratchAdvice)
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					for _, a := range n.Args[1:] {
						if n.Ellipsis.IsValid() && a == n.Args[len(n.Args)-1] {
							continue // append(dst, s...) copies the elements
						}
						if sf.tracked(cg, info, local, a) {
							p.Reportf(a.Pos(), "appending a scratch-derived slice header to a slice; %s", scratchAdvice)
						}
					}
					return true
				}
			}
			for _, callee := range cg.resolveCall(info, n) {
				esc := sf.ef.escapes[callee]
				if len(esc) == 0 {
					continue
				}
				for ai, arg := range n.Args {
					if !sf.tracked(cg, info, local, arg) {
						continue
					}
					if n.Ellipsis.IsValid() && arg == n.Args[len(n.Args)-1] {
						continue
					}
					pi, ok := calleeParamIndex(callee, ai)
					if !ok {
						continue
					}
					if pe := esc[pi]; pe != nil {
						p.Reportf(arg.Pos(), "passing scratch-derived storage to %s, which %s at %s; %s",
							cg.qualifiedName(callee, p.Pkg), pe.why, shortPos(pe.at), scratchAdvice)
					}
				}
			}
		}
		return true
	})
	// Returns across the exported API boundary.
	if exported {
		walk := func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if sf.tracked(cg, info, local, res) {
						p.Reportf(res.Pos(),
							"exported %s returns scratch-derived storage across the API boundary; %s (or annotate //detlint:scratch)",
							fi.fn.Name(), scratchAdvice)
					}
				}
			}
			return true
		}
		ast.Inspect(fi.decl.Body, walk)
	}
}
