package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoMapRange flags `range` over map-typed values in deterministic
// packages. Go randomizes map iteration order, so any map range whose
// effect can reach simulation output (a float sum, a report line, a
// scheduling decision) is a nondeterminism hazard.
//
// One shape is recognized as safe and not flagged: a loop whose body does
// nothing but append the key to one slice, where that slice is passed to
// a sort call (sort.Ints, sort.Strings, sort.Slice, slices.Sort, ...)
// later in the same block — the canonical collect-keys-then-sort idiom.
// Anything else needs either a rewrite over sorted keys or a
// //detlint:ignore nomaprange <reason> suppression.
var NoMapRange = &Analyzer{
	Name: "nomaprange",
	Doc:  "no ranging over maps in deterministic packages unless keys are collected and sorted",
	Run:  runNoMapRange,
}

func runNoMapRange(pass *Pass) {
	if !pass.Deterministic() {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		parents := buildParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isSortedKeyCollection(info, rs, parents) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s: iteration order is nondeterministic; iterate sorted keys or add //detlint:ignore nomaprange <reason>",
				types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
			return true
		})
	}
}

// buildParents records the syntactic parent of every node in file.
func buildParents(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// isSortedKeyCollection reports whether rs is the safe collect-then-sort
// idiom: the body only appends the key variable to a single slice
// (conditions and continue are allowed; anything with other effects is
// not), and a statement after the loop in the same block sorts that
// slice.
func isSortedKeyCollection(info *types.Info, rs *ast.RangeStmt, parents map[ast.Node]ast.Node) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := info.ObjectOf(keyID)
	if keyObj == nil {
		return false
	}
	var target types.Object
	var checkStmt func(st ast.Stmt) bool
	checkBlock := func(b *ast.BlockStmt) bool {
		for _, st := range b.List {
			if !checkStmt(st) {
				return false
			}
		}
		return true
	}
	checkStmt = func(st ast.Stmt) bool {
		switch s := st.(type) {
		case *ast.AssignStmt:
			// Must be exactly `t = append(t, key)`.
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || call.Ellipsis != token.NoPos || len(call.Args) != 2 {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" {
				return false
			}
			if _, isBuiltin := info.ObjectOf(fn).(*types.Builtin); !isBuiltin {
				return false
			}
			arg0, ok := call.Args[0].(*ast.Ident)
			if !ok || info.ObjectOf(arg0) != info.ObjectOf(lhs) {
				return false
			}
			arg1, ok := call.Args[1].(*ast.Ident)
			if !ok || info.ObjectOf(arg1) != keyObj {
				return false
			}
			tobj := info.ObjectOf(lhs)
			if target == nil {
				target = tobj
			} else if target != tobj {
				return false
			}
			return true
		case *ast.IfStmt:
			// The guard may read the value variable (e.g. `if w > 0`);
			// only the statement shapes inside are constrained.
			if s.Init != nil || !checkBlock(s.Body) {
				return false
			}
			switch e := s.Else.(type) {
			case nil:
				return true
			case *ast.BlockStmt:
				return checkBlock(e)
			case *ast.IfStmt:
				return checkStmt(e)
			default:
				return false
			}
		case *ast.BranchStmt:
			// continue keeps the collected set order-independent; break
			// would make it depend on which keys came first.
			return s.Tok == token.CONTINUE
		case *ast.EmptyStmt:
			return true
		case *ast.BlockStmt:
			return checkBlock(s)
		default:
			return false
		}
	}
	if !checkBlock(rs.Body) || target == nil {
		return false
	}
	return sortedAfter(info, rs, parents, target)
}

// sortCalls maps qualified sort functions to "sorts its first argument".
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Ints": true, "Strings": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether a statement after rs in its enclosing block
// sorts target.
func sortedAfter(info *types.Info, rs *ast.RangeStmt, parents map[ast.Node]ast.Node, target types.Object) bool {
	list := enclosingStmtList(rs, parents)
	idx := -1
	for i, st := range list {
		if st == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, st := range list[idx+1:] {
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			continue
		}
		fns, ok := sortCalls[pn.Imported().Path()]
		if !ok || !fns[sel.Sel.Name] {
			continue
		}
		arg := call.Args[0]
		// Unwrap a sort-interface conversion like sort.Sort(byX(ks)).
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = conv.Args[0]
		}
		if id, ok := arg.(*ast.Ident); ok && info.ObjectOf(id) == target {
			return true
		}
	}
	return false
}

// enclosingStmtList returns the statement list rs belongs to (a block or
// a switch/select case body), or nil.
func enclosingStmtList(rs *ast.RangeStmt, parents map[ast.Node]ast.Node) []ast.Stmt {
	switch p := parents[rs].(type) {
	case *ast.BlockStmt:
		return p.List
	case *ast.CaseClause:
		return p.Body
	case *ast.CommClause:
		return p.Body
	}
	return nil
}
