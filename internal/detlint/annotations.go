package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Function annotations extend the rule set with facts the analyzers
// cannot infer:
//
//	//detlint:noalloc — the function body must not heap-allocate; the
//	  noalloc analyzer verifies it against `go build -gcflags=-m` output.
//	//detlint:scratch — the function returns pass-scoped scratch storage
//	  (the profile returns its retained arrays); scratchescape tracks its
//	  results exactly like slices pulled from policies.Ctx.Scratch().
//
// An annotation goes in the function's doc comment (a comment group
// directly above the declaration). Anywhere else it silently does
// nothing, so a floating annotation is reported under the pseudo-rule
// "detlint".
const (
	noallocDirective = "detlint:noalloc"
	scratchDirective = "detlint:scratch"
)

// annotation records one annotated function.
type annotation struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	pos  token.Position // position of the directive comment
}

type annotations struct {
	noalloc []*annotation // deterministic collection order
	scratch map[*types.Func]bool
}

// collectAnnotations scans every loaded package (facts must cover call
// chains through non-target packages) and returns malformed-annotation
// findings for the target packages.
func collectAnnotations(mod *Module, targets []*Package) []Finding {
	ann := &annotations{scratch: make(map[*types.Func]bool)}
	target := make(map[*Package]bool, len(targets))
	for _, pkg := range targets {
		target[pkg] = true
	}
	var bad []Finding
	for _, pkg := range mod.allPackages() {
		for _, file := range pkg.Files {
			attached := make(map[*ast.Comment]bool)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					kind, ok := annotationKind(c)
					if !ok {
						continue
					}
					attached[c] = true
					pos := mod.Fset.Position(c.Pos())
					fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					if fn == nil {
						continue
					}
					switch kind {
					case noallocDirective:
						if fd.Body == nil {
							if target[pkg] {
								bad = append(bad, Finding{Rule: "detlint", Pos: pos,
									Msg: fmt.Sprintf("//%s on a bodyless declaration; the escape gate needs a Go body", kind)})
							}
							continue
						}
						ann.noalloc = append(ann.noalloc, &annotation{fn: fn, decl: fd, pkg: pkg, pos: pos})
					case scratchDirective:
						if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
							if target[pkg] {
								bad = append(bad, Finding{Rule: "detlint", Pos: pos,
									Msg: fmt.Sprintf("//%s on a function with no results; the annotation marks returned scratch", kind)})
							}
							continue
						}
						ann.scratch[fn] = true
					}
				}
			}
			if !target[pkg] {
				continue
			}
			for _, group := range file.Comments {
				for _, c := range group.List {
					if kind, ok := annotationKind(c); ok && !attached[c] {
						bad = append(bad, Finding{Rule: "detlint", Pos: mod.Fset.Position(c.Pos()),
							Msg: fmt.Sprintf("//%s is not attached to a function declaration; put it in the doc comment directly above func", kind)})
					}
				}
			}
		}
	}
	mod.ann = ann
	return bad
}

// annotationKind reports which annotation a comment carries, if any.
// Trailing prose after the directive word is allowed.
func annotationKind(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	for _, kind := range [2]string{noallocDirective, scratchDirective} {
		if text == kind || strings.HasPrefix(text, kind+" ") {
			return kind, true
		}
	}
	return "", false
}
