package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// This file is the interprocedural parameter-escape engine behind
// handleflow and scratchescape. For every module function it computes,
// per parameter of a tracked family (pooled sim.Event, arena-owned
// workload.Job, pass-scoped scratch storage), whether calling the
// function can store that argument somewhere that outlives the call —
// directly (a field, global, element, channel send, append, composite
// literal) or transitively (the parameter is forwarded to another module
// function whose parameter escapes). The summaries are propagated to a
// fixed point over the call graph, and each escaping parameter keeps a
// witness (the store site, or the forwarding hop) for the finding
// message.
//
// A store site that carries a //detlint:ignore directive for the
// family's rules is a documented-safe site: it does not mark the
// parameter escaping, and the engine credits the directive so the
// staleness pass does not report it.

// handleSpec configures the engine for one tracked-value family.
type handleSpec struct {
	rule   string // rule reported at call sites (and honored at stores)
	what   string // human name of the tracked value, for messages
	advice string // appended to findings
	owner  string // module-relative package exempt ("" for none): it implements the pool

	// Sink selection. A disabled sink kind is a legitimate store for
	// this family (jobs may sit in run-scoped fields, for example).
	fields, elements, channels, globals bool

	// spreadSink marks `f(xs...)` / `append(dst, xs...)` spreads of a
	// tracked slice as retaining: true when the slice's *contents* are
	// the hazard (handles), false when only the header is (scratch —
	// a spread copies the elements out).
	spreadSink bool

	// suppressAs lists additional rules whose directives sanction a
	// store site (the intraprocedural analyzers covering direct stores).
	suppressAs []string

	// track reports whether a parameter of this type carries the value.
	track func(t types.Type) bool

	// exemptStore, when set, approves an LHS the family considers its
	// own storage (writes back into the scratch bundle).
	exemptStore func(pkg *Package, lhs ast.Expr) bool
}

// paramEscape is the witness for one escaping parameter.
type paramEscape struct {
	why string
	at  token.Position
	via *types.Func // forwarding hop, nil for a direct store
}

// escapeFacts holds the finished summaries: escapes[fn][i] is non-nil
// when fn's i-th parameter (receiver excluded) escapes.
type escapeFacts struct {
	spec    *handleSpec
	escapes map[*types.Func]map[int]*paramEscape
}

// forward is one parameter-forwarding edge discovered during the scan.
type forward struct {
	caller      *funcInfo
	callerParam int
	callee      *types.Func
	calleeParam int
	pos         token.Pos
}

// buildEscapeFacts scans every module function and propagates escapes to
// a fixed point. Iteration follows the call graph's deterministic
// declaration order, so the recorded witnesses are stable.
func buildEscapeFacts(cg *callGraph, spec *handleSpec) *escapeFacts {
	ef := &escapeFacts{spec: spec, escapes: make(map[*types.Func]map[int]*paramEscape)}
	var edges []forward
	for _, fi := range cg.funcs {
		if spec.owner != "" && fi.pkg.Rel == spec.owner {
			continue
		}
		params := trackedParams(spec, fi)
		if len(params) == 0 {
			continue
		}
		ef.scanBody(cg, fi, params, &edges)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if ef.escapes[e.callee][e.calleeParam] == nil ||
				ef.escapes[e.caller.fn][e.callerParam] != nil {
				continue
			}
			pos := cg.mod.Fset.Position(e.pos)
			if cg.mod.sup.sanctions(pos, spec.rule) {
				continue
			}
			ef.record(e.caller.fn, e.callerParam, &paramEscape{
				why: fmt.Sprintf("forwarded to %s", cg.qualifiedName(e.callee, e.caller.pkg)),
				at:  pos,
				via: e.callee,
			})
			changed = true
		}
	}
	return ef
}

// trackedParams maps each tracked parameter object of fi to its index
// (receiver excluded; blank and unnamed parameters cannot be stored).
func trackedParams(spec *handleSpec, fi *funcInfo) map[types.Object]int {
	if fi.decl.Type.Params == nil {
		return nil
	}
	var m map[types.Object]int
	i := 0
	for _, field := range fi.decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			obj := fi.pkg.Info.Defs[name]
			if name.Name != "_" && obj != nil && spec.track(obj.Type()) {
				if m == nil {
					m = make(map[types.Object]int)
				}
				m[obj] = i
			}
			i++
		}
	}
	return m
}

// scanBody finds direct sinks of fi's tracked parameters and records
// forwarding edges for calls that pass them on.
func (ef *escapeFacts) scanBody(cg *callGraph, fi *funcInfo, params map[types.Object]int, edges *[]forward) {
	spec := ef.spec
	info := fi.pkg.Info
	paramIndex := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		obj := info.Uses[id]
		if obj == nil {
			return 0, false
		}
		i, ok := params[obj]
		return i, ok
	}
	sink := func(pi int, pos token.Pos, why string) {
		if ef.escapes[fi.fn][pi] != nil {
			return
		}
		p := cg.mod.Fset.Position(pos)
		rules := append([]string{spec.rule}, spec.suppressAs...)
		if cg.mod.sup.sanctions(p, rules...) {
			return
		}
		ef.record(fi.fn, pi, &paramEscape{why: why, at: p})
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				pi, ok := paramIndex(rhs)
				if !ok {
					continue
				}
				if spec.exemptStore != nil && spec.exemptStore(fi.pkg, n.Lhs[i]) {
					continue
				}
				if why := classifyStore(spec, info, n.Lhs[i]); why != "" {
					sink(pi, n.Lhs[i].Pos(), why)
				}
			}
		case *ast.SendStmt:
			if !spec.channels {
				return true
			}
			if pi, ok := paramIndex(n.Value); ok {
				sink(pi, n.Pos(), "sends it over a channel")
			}
		case *ast.CompositeLit:
			if !spec.elements {
				return true
			}
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if pi, ok := paramIndex(v); ok {
					sink(pi, v.Pos(), "stores it in a composite literal")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					if !spec.elements {
						return true
					}
					for _, a := range n.Args[1:] {
						if pi, ok := paramIndex(a); ok {
							if n.Ellipsis.IsValid() && a == n.Args[len(n.Args)-1] && !spec.spreadSink {
								continue // xs... copies the elements out
							}
							sink(pi, a.Pos(), "appends it to a slice")
						}
					}
					return true
				}
			}
			callees := cg.resolveCall(info, n)
			if len(callees) == 0 {
				return true
			}
			for ai, a := range n.Args {
				pi, ok := paramIndex(a)
				if !ok {
					continue
				}
				if n.Ellipsis.IsValid() && a == n.Args[len(n.Args)-1] && !spec.spreadSink {
					continue
				}
				for _, callee := range callees {
					cp, ok := calleeParamIndex(callee, ai)
					if !ok {
						continue
					}
					*edges = append(*edges, forward{
						caller: fi, callerParam: pi,
						callee: callee, calleeParam: cp,
						pos: a.Pos(),
					})
				}
			}
		}
		return true
	})
}

// calleeParamIndex maps argument position ai to the callee's parameter
// index, folding variadic tails onto the last parameter.
func calleeParamIndex(callee *types.Func, ai int) (int, bool) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	np := sig.Params().Len()
	if ai < np {
		return ai, true
	}
	if sig.Variadic() && np > 0 {
		return np - 1, true
	}
	return 0, false
}

// classifyStore describes the LHS of an assignment as a sink for spec,
// or returns "" when this store kind is permitted.
func classifyStore(spec *handleSpec, info *types.Info, lhs ast.Expr) string {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if spec.globals && isPackageLevelVar(info.Uses[lhs]) {
			return "stores it in a package-level variable"
		}
	case *ast.SelectorExpr:
		obj := info.Uses[lhs.Sel]
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.IsField() {
			if spec.fields {
				return "stores it in a struct field"
			}
			return ""
		}
		if spec.globals && isPackageLevelVar(obj) {
			return "stores it in a package-level variable"
		}
	case *ast.IndexExpr:
		if spec.elements {
			return "stores it in a slice, array, or map element"
		}
	}
	return ""
}

func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func (ef *escapeFacts) record(fn *types.Func, pi int, pe *paramEscape) {
	m := ef.escapes[fn]
	if m == nil {
		m = make(map[int]*paramEscape)
		ef.escapes[fn] = m
	}
	m[pi] = pe
}

// containsChecker decides whether a type transitively contains the named
// type (through pointers, slices, arrays, maps, channels, and structs).
type containsChecker struct {
	pkgPath string
	name    string
	memo    map[types.Type]bool
}

func newContainsChecker(pkgPath, name string) *containsChecker {
	return &containsChecker{pkgPath: pkgPath, name: name, memo: make(map[types.Type]bool)}
}

func (c *containsChecker) contains(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // terminate on recursive types
	v := c.containsUncached(t)
	c.memo[t] = v
	return v
}

func (c *containsChecker) containsUncached(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Name() == c.name && obj.Pkg() != nil && obj.Pkg().Path() == c.pkgPath {
			return true
		}
		return c.contains(t.Underlying())
	case *types.Alias:
		return c.contains(types.Unalias(t))
	case *types.Pointer:
		return c.contains(t.Elem())
	case *types.Slice:
		return c.contains(t.Elem())
	case *types.Array:
		return c.contains(t.Elem())
	case *types.Map:
		return c.contains(t.Key()) || c.contains(t.Elem())
	case *types.Chan:
		return c.contains(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.contains(t.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// shortPos renders a store-site position compactly for messages.
func shortPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
