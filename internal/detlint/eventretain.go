package detlint

import (
	"go/ast"
	"go/types"
)

// EventRetain flags code that stores sim.Event handles where they can
// outlive the event. The kernel recycles event slots through a
// generation-checked pool: the moment an event fires or is cancelled its
// slot is reused, and a retained handle silently goes stale (Cancel and
// Pending report false for the wrong reason, and a colliding generation
// would act on someone else's event). Handles are meant to be used
// immediately or not kept at all; durable state belongs in (time,
// payload) form.
//
// Flagged shapes, everywhere outside internal/sim and tests:
//
//   - struct fields whose type contains sim.Event
//   - package-level variables whose type contains sim.Event
//   - append to a slice whose element type contains sim.Event
//   - assignment into an index expression (slice, array, or map element)
//     whose type contains sim.Event
//   - composite literals of slice, array, or map types whose element or
//     key type contains sim.Event
var EventRetain = &Analyzer{
	Name: "eventretain",
	Doc:  "no storing pooled sim.Event handles in struct fields, slices, maps, or globals",
	Run:  runEventRetain,
}

const eventRetainAdvice = "pooled handles go stale once the event fires or is cancelled; act on the handle immediately or store (time, payload) instead"

func runEventRetain(pass *Pass) {
	simPath := pass.Module.Path + "/internal/sim"
	if pass.Pkg.ImportPath == simPath {
		return
	}
	c := eventChecker{simPath: simPath, memo: make(map[types.Type]bool)}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Package-level variables.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // a blank var discards the value
					}
					obj := info.Defs[name]
					if obj != nil && c.contains(obj.Type()) {
						pass.Reportf(name.Pos(),
							"package-level variable %s retains a sim.Event handle; %s", name.Name, eventRetainAdvice)
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					t := info.TypeOf(field.Type)
					if t != nil && c.contains(t) {
						pass.Reportf(field.Pos(),
							"struct field retains a sim.Event handle; %s", eventRetainAdvice)
					}
				}
			case *ast.CallExpr:
				fn, ok := n.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" {
					return true
				}
				if _, isBuiltin := info.ObjectOf(fn).(*types.Builtin); !isBuiltin {
					return true
				}
				if t := info.TypeOf(n); t != nil && c.contains(t) {
					pass.Reportf(n.Pos(),
						"append retains sim.Event handles in a slice; %s", eventRetainAdvice)
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					ix, ok := lhs.(*ast.IndexExpr)
					if !ok {
						continue
					}
					if t := info.TypeOf(ix); t != nil && c.contains(t) {
						pass.Reportf(ix.Pos(),
							"element assignment retains a sim.Event handle; %s", eventRetainAdvice)
					}
				}
			case *ast.CompositeLit:
				t := info.TypeOf(n)
				if t == nil {
					return true
				}
				switch u := t.Underlying().(type) {
				case *types.Slice:
					if c.contains(u.Elem()) {
						pass.Reportf(n.Pos(), "slice literal retains sim.Event handles; %s", eventRetainAdvice)
					}
				case *types.Array:
					if c.contains(u.Elem()) {
						pass.Reportf(n.Pos(), "array literal retains sim.Event handles; %s", eventRetainAdvice)
					}
				case *types.Map:
					if c.contains(u.Elem()) || c.contains(u.Key()) {
						pass.Reportf(n.Pos(), "map literal retains sim.Event handles; %s", eventRetainAdvice)
					}
				}
			}
			return true
		})
	}
}

// eventChecker decides whether a type transitively contains sim.Event.
type eventChecker struct {
	simPath string
	memo    map[types.Type]bool
}

func (c *eventChecker) contains(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	// Pre-seed false to terminate on recursive types.
	c.memo[t] = false
	v := c.containsUncached(t)
	c.memo[t] = v
	return v
}

func (c *eventChecker) containsUncached(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == c.simPath {
			return true
		}
		return c.contains(t.Underlying())
	case *types.Alias:
		return c.contains(types.Unalias(t))
	case *types.Pointer:
		return c.contains(t.Elem())
	case *types.Slice:
		return c.contains(t.Elem())
	case *types.Array:
		return c.contains(t.Elem())
	case *types.Map:
		return c.contains(t.Key()) || c.contains(t.Elem())
	case *types.Chan:
		return c.contains(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.contains(t.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return false
}
