// Package detlint is a small static-analysis framework that enforces the
// simulator's determinism and pooling invariants.
//
// The paper's results rest on bit-reproducible trace-driven simulation:
// parallel replications must be byte-identical to the serial loop, and the
// pooled event arena in internal/sim makes retained sim.Event handles a
// use-after-release hazard. Those invariants used to be enforced only by
// convention; detlint turns them into machine-checked rules that run on
// every `make verify` (see cmd/mclint).
//
// The framework is deliberately built on the standard library alone —
// go/ast, go/parser, go/token and go/types, with stdlib dependencies
// resolved by the go/importer "source" importer — so the module keeps its
// zero-dependency property.
//
// # Rules
//
// Five analyzers ship with the framework (see All):
//
//   - nowallclock: no wall-clock time (time.Now, time.Since, time.Sleep,
//     ...) in deterministic packages; simulations read sim.Engine.Now.
//   - noglobalrand: no math/rand or math/rand/v2 anywhere in non-test
//     code; all randomness flows through internal/rng seeded streams.
//   - nomaprange: no ranging over maps in deterministic packages unless
//     the loop only collects the keys into a slice that is sorted before
//     use, or the site carries a suppression.
//   - eventretain: no storing sim.Event handles into struct fields,
//     slices, maps, or package-level variables; pooled handles go stale
//     once the event fires or is cancelled.
//   - jobretain: no storing arena-owned workload.Job handles in
//     package-level variables or sending them over channels; the per-run
//     arena recycles every job when the run ends.
//
// # Suppressions
//
// A finding can be silenced with a directive comment on the same line or
// on the line directly above it:
//
//	//detlint:ignore <rule> <reason>
//
// The reason is mandatory: a suppression documents *why* the invariant
// holds at that site. Malformed directives (missing reason, unknown rule)
// are themselves reported under the pseudo-rule "detlint".
package detlint

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one lint rule: a stable identifier, a one-line description
// (shown by `mclint -help`), and a function applied to each loaded
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full rule set in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoWallClock, NoGlobalRand, NoMapRange, EventRetain, JobRetain}
}

// DeterministicPackages lists the module-relative import paths whose code
// must stay bit-reproducible across runs and across serial/parallel
// execution. nowallclock and nomaprange apply only inside this set;
// noglobalrand and eventretain apply module-wide.
var DeterministicPackages = []string{
	"internal/analysis",
	"internal/cluster",
	"internal/core",
	"internal/dastrace",
	"internal/dist",
	"internal/experiments",
	"internal/obs",
	"internal/plot",
	"internal/policies",
	"internal/queues",
	"internal/rng",
	"internal/sim",
	"internal/stats",
	"internal/wmodel",
	"internal/workload",
	"internal/workpool",
}

// Finding is one rule violation at one source position.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// Pass hands one loaded package to one analyzer and collects its reports.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Rule: p.Analyzer.Name,
		Pos:  p.Module.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Deterministic reports whether the package under analysis is in the
// deterministic set (DeterministicPackages, relative to the module root).
func (p *Pass) Deterministic() bool {
	for _, rel := range DeterministicPackages {
		if p.Pkg.Rel == rel {
			return true
		}
	}
	return false
}

// Config selects what Run analyzes.
type Config struct {
	// Dir is the base directory: any directory inside the target module.
	// Relative patterns are resolved against it.
	Dir string
	// Patterns name the packages to analyze: ".", a directory path, or a
	// recursive pattern like "./...". Defaults to "./..." when empty.
	Patterns []string
	// Analyzers defaults to All() when nil.
	Analyzers []*Analyzer
}

// Run loads the requested packages, applies the analyzers, filters
// suppressed findings, and returns the survivors sorted by position. It
// returns an error for load failures (no module, parse or type errors),
// not for findings.
func Run(cfg Config) ([]Finding, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	mod, pkgs, err := load(cfg.Dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Module: mod, Pkg: pkg, findings: &findings})
		}
	}
	sup, bad := collectSuppressions(mod, pkgs, analyzers)
	findings = append(findings, bad...)
	kept := findings[:0]
	for _, f := range findings {
		if sup.matches(f) {
			continue
		}
		kept = append(kept, f)
	}
	findings = kept
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	// Drop exact duplicates (two checks of one analyzer can hit one site).
	dedup := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup, nil
}

// ignoreDirective is the parsed form of one //detlint:ignore comment.
const ignorePrefix = "detlint:ignore"

// suppressions maps (file, line, rule) triples to "this finding is
// silenced". A directive on line L covers findings of its rule on L (the
// trailing-comment style) and on L+1 (the comment-above style).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, rule string) {
	byLine := s[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	for _, l := range [2]int{line, line + 1} {
		rules := byLine[l]
		if rules == nil {
			rules = make(map[string]bool)
			byLine[l] = rules
		}
		rules[rule] = true
	}
}

func (s suppressions) matches(f Finding) bool {
	return s[f.Pos.Filename][f.Pos.Line][f.Rule]
}

// collectSuppressions scans every comment of every loaded file for
// //detlint:ignore directives. Malformed directives — missing rule,
// missing reason, or a rule no active analyzer declares — are returned as
// findings under the pseudo-rule "detlint".
func collectSuppressions(mod *Module, pkgs []*Package, analyzers []*Analyzer) (suppressions, []Finding) {
	// Validate rule names against the full catalog, not just the active
	// analyzers: a directive for an inactive rule is dormant, not wrong.
	catalog := All()
	known := make(map[string]bool, len(catalog)+len(analyzers))
	for _, a := range catalog {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := make(suppressions)
	var bad []Finding
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Finding{Rule: "detlint", Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					if len(fields) == 0 {
						report(pos, "detlint:ignore without a rule name; use //detlint:ignore <rule> <reason>")
						continue
					}
					rule := fields[0]
					if !known[rule] {
						report(pos, "detlint:ignore names unknown rule %q (have %s)", rule, ruleNames(known))
						continue
					}
					if len(fields) < 2 {
						report(pos, "detlint:ignore %s without a reason; suppressions must document why the invariant holds", rule)
						continue
					}
					sup.add(pos.Filename, pos.Line, rule)
				}
			}
		}
	}
	return sup, bad
}

func ruleNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// quoteImportPath unquotes an import spec path, tolerating bad syntax.
func quoteImportPath(lit string) string {
	path, err := strconv.Unquote(lit)
	if err != nil {
		return lit
	}
	return path
}
