// Package detlint is a small static-analysis framework that enforces the
// simulator's determinism and pooling invariants.
//
// The paper's results rest on bit-reproducible trace-driven simulation:
// parallel replications must be byte-identical to the serial loop, and the
// pooled event arena in internal/sim makes retained sim.Event handles a
// use-after-release hazard. Those invariants used to be enforced only by
// convention; detlint turns them into machine-checked rules that run on
// every `make verify` (see cmd/mclint).
//
// The framework is deliberately built on the standard library alone —
// go/ast, go/parser, go/token and go/types, with stdlib dependencies
// resolved by the go/importer "source" importer — so the module keeps its
// zero-dependency property.
//
// # Rules
//
// Eleven analyzers ship with the framework (see All). The first five are
// syntactic, per-package rules:
//
//   - nowallclock: no wall-clock time (time.Now, time.Since, time.Sleep,
//     ...) in deterministic packages; simulations read sim.Engine.Now.
//   - noglobalrand: no math/rand or math/rand/v2 anywhere in non-test
//     code; all randomness flows through internal/rng seeded streams.
//   - nomaprange: no ranging over maps in deterministic packages unless
//     the loop only collects the keys into a slice that is sorted before
//     use, or the site carries a suppression.
//   - eventretain: no storing sim.Event handles into struct fields,
//     slices, maps, or package-level variables; pooled handles go stale
//     once the event fires or is cancelled.
//   - jobretain: no storing arena-owned workload.Job handles in
//     package-level variables or sending them over channels; the per-run
//     arena recycles every job when the run ends.
//
// The next five are semantic, whole-module rules built on a call graph
// over go/types (see callgraph.go and DESIGN.md §14):
//
//   - taintflow: a call, inside a deterministic package, to any module
//     function that transitively reaches the wall clock or math/rand —
//     the interprocedural closure of nowallclock/noglobalrand.
//   - handleflow: passing a pooled sim.Event or arena-owned workload.Job
//     handle to a function that stores it where it can outlive the
//     handle — the interprocedural closure of eventretain/jobretain.
//   - scratchescape: retaining a slice obtained from
//     policies.Ctx.Scratch() (or from a //detlint:scratch function) in a
//     field, global or element, or returning it across the exported API
//     boundary; scratch lifetime ends when the scheduling pass returns.
//   - closecheck: a statement-level Close() or Flush() call whose error
//     result is discarded; on buffered writers the Close error is the
//     write error.
//   - noalloc: a function annotated //detlint:noalloc must show no heap
//     allocation in `go build -gcflags=-m` escape-analysis output.
//
// Finally, stalesuppress reports //detlint:ignore directives that
// suppress nothing: a dead suppression hides the next real finding on
// its line and must be deleted. stalesuppress findings cannot themselves
// be suppressed.
//
// # Suppressions
//
// A finding can be silenced with a directive comment on the same line or
// on the line directly above it:
//
//	//detlint:ignore <rule> <reason>
//
// The reason is mandatory: a suppression documents *why* the invariant
// holds at that site. Malformed directives (missing reason, unknown rule)
// are themselves reported under the pseudo-rule "detlint".
//
// # Annotations
//
// Two function annotations extend the rule set. They go in the function's
// doc comment (or on the line directly above the declaration):
//
//	//detlint:noalloc — the function body must not allocate (see noalloc)
//	//detlint:scratch — the function returns pass-scoped scratch storage;
//	  scratchescape tracks its results like Ctx.Scratch() slices
package detlint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Analyzer is one lint rule: a stable identifier, a one-line description
// (shown by `mclint -help`), and a function applied to each loaded
// package. Rules with facts set need the whole-module dataflow facts
// (call graph, escape summaries) built before their Run executes.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)

	facts bool // needs Module facts (call graph + dataflow summaries)
}

// All returns the full rule set in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallClock, NoGlobalRand, NoMapRange, EventRetain, JobRetain,
		TaintFlow, HandleFlow, ScratchEscape, CloseCheck, NoAlloc,
		StaleSuppress,
	}
}

// StaleSuppress reports //detlint:ignore directives that matched no
// finding. The detection itself happens in Run after suppression
// filtering — every other analyzer has reported by then — so this
// Analyzer's Run is empty; the entry exists to name the rule, document
// it in the catalog, and let Config.Analyzers turn it off.
var StaleSuppress = &Analyzer{
	Name: "stalesuppress",
	Doc:  "no //detlint:ignore directives that suppress nothing; delete dead suppressions",
	Run:  func(*Pass) {},
}

// DeterministicPackages lists the module-relative import paths whose code
// must stay bit-reproducible across runs and across serial/parallel
// execution. nowallclock, nomaprange and taintflow apply only inside this
// set; the other rules apply module-wide.
var DeterministicPackages = []string{
	"internal/analysis",
	"internal/cluster",
	"internal/core",
	"internal/dastrace",
	"internal/dectrace",
	"internal/dist",
	"internal/experiments",
	"internal/obs",
	"internal/plot",
	"internal/policies",
	"internal/queues",
	"internal/rng",
	"internal/sim",
	"internal/stats",
	"internal/wmodel",
	"internal/workload",
	"internal/workpool",
}

// Finding is one rule violation at one source position.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// Pass hands one loaded package to one analyzer and collects its reports.
// Analyzer Runs for different packages execute concurrently; a Pass and
// its findings slice are confined to one goroutine, and the Module
// (including its facts) is immutable during the analysis phase.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Rule: p.Analyzer.Name,
		Pos:  p.Module.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

// reportAt records a finding at an already-resolved position. The
// noalloc analyzer maps compiler diagnostics, which arrive as file:line
// positions rather than token.Pos values.
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Rule: p.Analyzer.Name,
		Pos:  pos,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Deterministic reports whether the package under analysis is in the
// deterministic set (DeterministicPackages, relative to the module root).
func (p *Pass) Deterministic() bool {
	return deterministicRel(p.Pkg.Rel)
}

func deterministicRel(rel string) bool {
	for _, det := range DeterministicPackages {
		if rel == det {
			return true
		}
	}
	return false
}

// Config selects what Run analyzes.
type Config struct {
	// Dir is the base directory: any directory inside the target module.
	// Relative patterns are resolved against it.
	Dir string
	// Patterns name the packages to analyze: ".", a directory path, or a
	// recursive pattern like "./...". Defaults to "./..." when empty.
	Patterns []string
	// Analyzers defaults to All() when nil.
	Analyzers []*Analyzer
}

// Run loads the requested packages, applies the analyzers, filters
// suppressed findings, reports stale suppressions, and returns the
// survivors sorted by position. It returns an error for load failures
// (no module, parse or type errors, a failed escape-analysis probe), not
// for findings.
//
// Each package is loaded and type-checked exactly once and the result is
// shared by every analyzer; the per-package analyzer runs execute in
// parallel (bounded by GOMAXPROCS) and the merged output is sorted, so
// the findings are deterministic regardless of scheduling.
func Run(cfg Config) ([]Finding, error) {
	if len(cfg.Patterns) == 0 {
		cfg.Patterns = []string{"./..."}
	}
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	mod, pkgs, err := load(cfg.Dir, cfg.Patterns)
	if err != nil {
		return nil, err
	}
	sup, bad := collectSuppressions(mod, pkgs, analyzers)
	mod.sup = sup
	annBad := collectAnnotations(mod, pkgs)
	bad = append(bad, annBad...)
	needFacts := false
	for _, a := range analyzers {
		if a.facts {
			needFacts = true
		}
	}
	if needFacts {
		mod.buildFacts()
	}
	for _, a := range analyzers {
		if a == NoAlloc {
			if err := mod.buildNoAllocFacts(); err != nil {
				return nil, err
			}
		}
	}

	// Per-package analysis, in parallel. Findings are collected into a
	// per-package slice and merged in package order; the global sort
	// below makes the output independent of goroutine scheduling either
	// way.
	perPkg := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Finding
			for _, a := range analyzers {
				a.Run(&Pass{Analyzer: a, Module: mod, Pkg: pkg, findings: &local})
			}
			perPkg[i] = local
		}(i, pkg)
	}
	wg.Wait()
	var findings []Finding
	for _, local := range perPkg {
		findings = append(findings, local...)
	}
	findings = append(findings, bad...)

	// Filter suppressed findings, crediting every directive that covers
	// a match so the staleness pass below sees which directives earned
	// their keep.
	kept := findings[:0]
	for _, f := range findings {
		if ds := sup.covering(f); len(ds) > 0 {
			for _, d := range ds {
				d.used = true
			}
			continue
		}
		kept = append(kept, f)
	}
	findings = kept

	// Stale-suppression detection: a directive for an active rule that
	// matched nothing suppresses nothing — and would silently swallow
	// the next real finding on its line. Directives for inactive rules
	// are dormant, not stale.
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	if active[StaleSuppress.Name] {
		for _, d := range sup.all {
			if d.used || !active[d.rule] {
				continue
			}
			findings = append(findings, Finding{
				Rule: StaleSuppress.Name,
				Pos:  d.pos,
				Msg: fmt.Sprintf("//detlint:ignore %s suppresses no finding; delete the dead directive",
					d.rule),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	// Drop exact duplicates (two checks of one analyzer can hit one site).
	dedup := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	return dedup, nil
}

// ignorePrefix introduces one //detlint:ignore comment.
const ignorePrefix = "detlint:ignore"

// directive is one parsed //detlint:ignore comment. used is set during
// suppression filtering when a finding the directive covers was silenced,
// and by the dataflow engines when they honor a store-site suppression.
type directive struct {
	pos  token.Position
	rule string
	used bool
}

// suppressions indexes directives by the (file, line, rule) triples they
// cover. A directive on line L covers findings of its rule on L (the
// trailing-comment style) and on L+1 (the comment-above style).
type suppressions struct {
	cover map[string]map[int]map[string][]*directive
	all   []*directive
}

func newSuppressions() *suppressions {
	return &suppressions{cover: make(map[string]map[int]map[string][]*directive)}
}

func (s *suppressions) add(d *directive) {
	s.all = append(s.all, d)
	byLine := s.cover[d.pos.Filename]
	if byLine == nil {
		byLine = make(map[int]map[string][]*directive)
		s.cover[d.pos.Filename] = byLine
	}
	for _, l := range [2]int{d.pos.Line, d.pos.Line + 1} {
		rules := byLine[l]
		if rules == nil {
			rules = make(map[string][]*directive)
			byLine[l] = rules
		}
		rules[d.rule] = append(rules[d.rule], d)
	}
}

// covering returns the directives that silence f. stalesuppress findings
// are never suppressible: a dead directive must be deleted, not excused.
func (s *suppressions) covering(f Finding) []*directive {
	if f.Rule == StaleSuppress.Name {
		return nil
	}
	return s.cover[f.Pos.Filename][f.Pos.Line][f.Rule]
}

// sanctions reports whether a directive for any of the rules covers the
// given position, marking matching directives used. The dataflow engines
// call it at store sites: a suppressed store is a documented-safe store,
// so it must not taint the functions that reach it. Only safe during the
// single-threaded facts phase.
func (s *suppressions) sanctions(pos token.Position, rules ...string) bool {
	if s == nil {
		return false
	}
	ok := false
	for _, rule := range rules {
		for _, d := range s.cover[pos.Filename][pos.Line][rule] {
			d.used = true
			ok = true
		}
	}
	return ok
}

// collectSuppressions scans every comment of every loaded file for
// //detlint:ignore directives. Malformed directives — missing rule,
// missing reason, a rule no analyzer declares, or an attempt to suppress
// stalesuppress — are returned as findings under the pseudo-rule
// "detlint".
func collectSuppressions(mod *Module, pkgs []*Package, analyzers []*Analyzer) (*suppressions, []Finding) {
	// Validate rule names against the full catalog, not just the active
	// analyzers: a directive for an inactive rule is dormant, not wrong.
	catalog := All()
	known := make(map[string]bool, len(catalog)+len(analyzers))
	for _, a := range catalog {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := newSuppressions()
	var bad []Finding
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Finding{Rule: "detlint", Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
					if len(fields) == 0 {
						report(pos, "detlint:ignore without a rule name; use //detlint:ignore <rule> <reason>")
						continue
					}
					rule := fields[0]
					if !known[rule] {
						report(pos, "detlint:ignore names unknown rule %q (have %s)", rule, ruleNames(known))
						continue
					}
					if rule == StaleSuppress.Name {
						report(pos, "stalesuppress findings cannot be suppressed; delete the dead directive instead")
						continue
					}
					if len(fields) < 2 {
						report(pos, "detlint:ignore %s without a reason; suppressions must document why the invariant holds", rule)
						continue
					}
					sup.add(&directive{pos: pos, rule: rule})
				}
			}
		}
	}
	return sup, bad
}

func ruleNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		if n == StaleSuppress.Name {
			continue // not suppressible, so not offered
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// quoteImportPath unquotes an import spec path, tolerating bad syntax.
func quoteImportPath(lit string) string {
	path, err := strconv.Unquote(lit)
	if err != nil {
		return lit
	}
	return path
}
