module badsuppress

go 1.22
