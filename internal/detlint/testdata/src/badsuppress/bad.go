// Package badsuppress is a fixture for malformed suppression
// directives; each one below is reported under the pseudo-rule
// "detlint".
package badsuppress

//detlint:ignore
var a = 0

//detlint:ignore nomaprange
var b = 0

//detlint:ignore nosuchrule because reasons
var c = 0

//detlint:ignore stalesuppress it reports dead directives and cannot be silenced
var d = 0

//detlint:noalloc

var _ = a + b + c + d
