// Command tool is a fixture for rule scoping: cmd packages are outside
// the deterministic set, so wall-clock reads are fine here — but the
// rand ban is module-wide.
package main

import (
	"fmt"
	"time"

	"math/rand/v2" // want noglobalrand
)

func main() {
	fmt.Println(time.Now(), rand.Int())
}
