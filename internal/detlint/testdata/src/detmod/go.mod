module coalloc

go 1.22
