// Package out is a fixture for closecheck: error results of Close and
// Flush must not be silently discarded at statement position.
package out

type file struct{}

func (file) Close() error { return nil }
func (file) Flush() error { return nil }

// quiet has a Close with no error result; calling it bare is fine.
type quiet struct{}

func (quiet) Close() {}

func write(f file) {
	defer f.Close() // want closecheck
	f.Flush()       // want closecheck
}

func spawn(f file) {
	go f.Close() // want closecheck
}

// writeChecked discards visibly or returns the error; nothing flagged.
func writeChecked(f file) error {
	_ = f.Flush()
	return f.Close()
}

func hangup(q quiet) {
	q.Close()
	_ = write
	_ = spawn
	_ = writeChecked
}
