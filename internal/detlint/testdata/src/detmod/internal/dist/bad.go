// Package dist is a fixture for the module-wide rand ban.
package dist

import "math/rand" // want noglobalrand

// draw is flagged at the import: even a locally seeded Rand (not just
// the package-global source) must come from internal/rng instead.
func draw() float64 {
	r := rand.New(rand.NewSource(1))
	return r.Float64()
}

var _ = draw
