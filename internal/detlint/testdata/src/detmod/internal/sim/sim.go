// Package sim is a minimal stand-in for the real event kernel: just
// enough surface for the eventretain fixtures. Its import path matches
// the real one (module "coalloc", directory internal/sim), which is how
// the analyzer identifies the Event type.
package sim

// Event mirrors the pooled handle of the real kernel.
type Event struct {
	id  int32
	gen uint32
}

// Engine mirrors the executive.
type Engine struct{ now float64 }

// Now returns the virtual time.
func (e *Engine) Now() float64 { return e.now }

// After schedules a callback and returns its handle.
func (e *Engine) After(delay float64, fn func()) Event {
	_ = delay
	_ = fn
	return Event{}
}
