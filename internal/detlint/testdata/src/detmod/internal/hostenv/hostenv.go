// Package hostenv is a fixture helper outside the deterministic set: it
// may read the wall clock without any syntactic finding, which is
// exactly what makes it a taint source for the interprocedural
// taintflow rule — deterministic code calling Stamp launders time.Now
// through two hops.
package hostenv

import "time"

// nowUnix touches the wall clock directly.
func nowUnix() int64 {
	return time.Now().Unix()
}

// Stamp is the laundering hop: no time selector in sight, but calling
// it still reaches time.Now.
func Stamp() int64 {
	return nowUnix()
}

// Width is clean; calls to it must not be flagged.
func Width() int {
	return 80
}
