// Stale-suppression fixture: the directive below covers a loop the rule
// never flags (collect-then-sort is the sanctioned idiom), so it
// suppresses nothing and is itself reported.
package queues

import "sort"

func tidy(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//detlint:ignore nomaprange collect-then-sort needs no directive // want stalesuppress
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var _ = tidy
