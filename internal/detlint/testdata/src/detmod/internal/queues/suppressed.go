// Package queues is a fixture for suppression handling: every violation
// here carries a justified //detlint:ignore, so no finding survives.
package queues

// checksum uses the comment-above style.
func checksum(m map[int]int) int {
	s := 0
	//detlint:ignore nomaprange integer sum is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

// product uses the trailing-comment style.
func product(m map[int]int) int {
	p := 1
	for _, v := range m { //detlint:ignore nomaprange integer product is order-independent
		p *= v
	}
	return p
}

var _ = checksum
var _ = product
