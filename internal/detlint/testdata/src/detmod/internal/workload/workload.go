// Package workload is a minimal stand-in for the real job model: just
// enough surface for the jobretain fixtures. Its import path matches the
// real one (module "coalloc", directory internal/workload), which is how
// the analyzer identifies the Job type.
package workload

// Job mirrors the arena-allocated job of the real model.
type Job struct {
	ID         int64
	Components []int
}

// Arena mirrors the per-run allocator.
type Arena struct{ jobs []Job }

// Job hands out an arena-owned handle.
func (a *Arena) Job() *Job {
	a.jobs = append(a.jobs, Job{})
	return &a.jobs[len(a.jobs)-1]
}
