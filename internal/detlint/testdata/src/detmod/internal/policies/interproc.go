// Interprocedural fixtures: taint laundered through a helper package
// (taintflow) and pooled handles leaked through helper functions
// (handleflow). The direct stores inside the helpers are the syntactic
// findings; the calls handing the value over are the interprocedural
// ones.
package policies

import (
	"coalloc/internal/hostenv"
	"coalloc/internal/sim"
	"coalloc/internal/workload"
)

// stampArrival calls a clean-looking helper that reaches time.Now two
// hops away.
func stampArrival() int64 {
	return hostenv.Stamp() // want taintflow
}

// width calls a genuinely clean helper from the same package; no taint.
func width() int {
	return hostenv.Width()
}

// registry retains event handles; its add method is where the handle
// escapes, and every call passing a handle in is a handleflow finding.
type registry struct {
	evs []sim.Event // want eventretain
}

func (r *registry) add(ev sim.Event) {
	r.evs = append(r.evs, ev) // want eventretain
}

// stash forwards its handle to the retaining add; the forwarding call is
// itself a handleflow site, and stash's parameter escapes transitively.
func stash(r *registry, ev sim.Event) {
	r.add(ev) // want handleflow
}

func leakHandles(e *sim.Engine) {
	r := &registry{}
	ev := e.After(1, nil)
	r.add(ev)    // want handleflow
	stash(r, ev) // want handleflow
	_ = stampArrival
	_ = width
}

var archived *workload.Job // want jobretain

// record parks the job in a package-level variable — the store the
// jobretain sink model forbids — so passing a job to it is flagged.
func record(j *workload.Job) {
	archived = j
}

func leakViaRecord(a *workload.Arena) {
	record(a.Job()) // want handleflow
	_ = leakHandles
}
