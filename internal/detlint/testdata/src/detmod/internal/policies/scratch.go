// Scratch-lifetime fixtures: storage handed out by Ctx.Scratch() is
// valid only for the current pass. Deriving, forwarding, and annotated
// hand-out are each exercised, as are the permitted shapes (bundle
// write-back, spread copy).
package policies

// Scratch is the per-pass scratch bundle; the analyzer resolves it by
// name in this package, mirroring the real policies.Scratch.
type Scratch struct {
	Place []int
	Used  []bool
}

// Ctx hands out the bundle, mirroring the real policies.Ctx boundary.
type Ctx struct {
	s Scratch
}

// Scratch returns the pass-scoped bundle.
func (c *Ctx) Scratch() *Scratch {
	return &c.s
}

var (
	savedPlace []int
	savedWin   []int
	headers    [][]int
	drain      = make(chan []int, 1)
)

// remember parks a scratch slice in a package-level variable.
func remember(c *Ctx) {
	s := c.Scratch()
	savedPlace = s.Place // want scratchescape
}

// keeper retains whatever slice it is handed; passing scratch to keep is
// therefore an interprocedural escape.
type keeper struct {
	saved []int
}

func (k *keeper) keep(place []int) {
	k.saved = place
}

func retainViaKeep(c *Ctx, k *keeper) {
	k.keep(c.Scratch().Place) // want scratchescape
}

// Leak hands scratch across the exported API boundary without the
// annotation that documents the contract.
func Leak(c *Ctx) []int {
	return c.Scratch().Place // want scratchescape
}

// grab is an unexported passthrough: returning scratch is fine here, but
// the scratch-returning fact propagates to its callers.
func grab(c *Ctx) []int {
	return c.Scratch().Place
}

func rememberGrabbed(c *Ctx) {
	p := grab(c)
	savedPlace = p // want scratchescape
}

// Window hands out pass-scoped storage under the documented contract,
// like the real earliestStart: the annotation exempts the return and
// marks the result scratch for callers.
//
//detlint:scratch
func Window(c *Ctx) []int {
	return c.Scratch().Place
}

func rememberWindow(c *Ctx) {
	w := Window(c)
	savedWin = w // want scratchescape
}

// ship sends scratch to another goroutine; collect retains the slice
// header, while the spread copy right below it is the sanctioned way to
// persist the contents.
func ship(c *Ctx) {
	s := c.Scratch()
	drain <- s.Place // want scratchescape
}

func collect(c *Ctx) {
	s := c.Scratch()
	headers = append(headers, s.Place) // want scratchescape
	kept := make([]int, 0, len(s.Place))
	kept = append(kept, s.Place...)
	_ = kept
}

// reset writes back into the bundle itself — the scratch's own storage
// is exempt.
func reset(c *Ctx) {
	s := c.Scratch()
	s.Place = s.Place[:0]
	_ = remember
	_ = retainViaKeep
	_ = rememberGrabbed
	_ = rememberWindow
	_ = ship
	_ = collect
}
