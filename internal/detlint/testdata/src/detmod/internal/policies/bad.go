// Package policies is a fixture: internal/policies is in the
// deterministic set, so nowallclock and nomaprange apply here, and
// eventretain and jobretain apply everywhere outside internal/sim and
// internal/workload respectively.
package policies

import (
	"sort"
	"time"

	"coalloc/internal/sim"
	"coalloc/internal/workload"
)

type sched struct {
	timeout sim.Event   // want eventretain
	pending []sim.Event // want eventretain
	limit   int
}

type wrapper struct {
	inner sched // want eventretain
	label string
}

var global sim.Event // want eventretain

func stamp() int64 {
	return time.Now().Unix() // want nowallclock
}

func nap() {
	time.Sleep(time.Millisecond) // want nowallclock
}

// dur is fine: time constants and arithmetic are deterministic values.
func dur() time.Duration {
	return 3 * time.Second
}

// sortedKeys is the sanctioned idiom: collect the keys, sort, then use.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sortedPositiveKeys guards the append on the value; still safe, the
// collected set does not depend on iteration order.
func sortedPositiveKeys(m map[string]int) []string {
	var out []string
	for k, v := range m {
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func sum(m map[string]int) int {
	s := 0
	for _, v := range m { // want nomaprange
		s += v
	}
	return s
}

func firstKey(m map[string]int) string {
	for k := range m { // want nomaprange
		return k
	}
	return ""
}

func retain(e *sim.Engine) {
	var evs []sim.Event
	evs = append(evs, e.After(1, nil)) // want eventretain
	byID := map[int]sim.Event{}        // want eventretain
	byID[1] = e.After(2, nil)          // want eventretain
	_ = evs
	_ = byID
	_ = global
	_ = wrapper{}
	_ = stamp
	_ = nap
	_ = dur
	_ = sortedKeys
	_ = sortedPositiveKeys
	_ = sum
	_ = firstKey
}

var lastJob *workload.Job       // want jobretain
var history []*workload.Job     // want jobretain
var doneJobs chan *workload.Job // want jobretain

// queue is fine: struct fields hold jobs for the duration of the run.
type queue struct {
	jobs []*workload.Job
	head int
}

// mailbox is not: a channel hands the job to another goroutine.
type mailbox struct {
	ch chan []*workload.Job // want jobretain
}

func leakJob(a *workload.Arena) {
	j := a.Job()
	ch := make(chan *workload.Job, 1) // want jobretain
	ch <- j
	lastJob = j
	_ = ch
	_ = history
	_ = doneJobs
	_ = queue{}
	_ = mailbox{}
}
