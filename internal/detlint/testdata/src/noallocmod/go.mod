module noallocmod

go 1.22
