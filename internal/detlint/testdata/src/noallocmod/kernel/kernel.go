// Package kernel is a fixture for the noalloc escape gate: the
// annotated functions are checked against the compiler's -gcflags=-m
// diagnostics, so Grow's escaping make is a finding while Sum and the
// panic-only Checked stay clean.
package kernel

// Grow allocates: the make escapes into the returned slice.
//
//detlint:noalloc
func Grow(n int) []int {
	buf := make([]int, n) // want noalloc
	return buf
}

// Sum is allocation-free and must produce no finding.
//
//detlint:noalloc
func Sum(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

// Checked allocates only inside a panic argument — failure-path
// allocations are filtered, so this stays clean.
//
//detlint:noalloc
func Checked(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic(message("kernel: index out of range", i))
	}
	return xs[i]
}

// message builds a panic payload; it is not annotated, so its own
// allocations are unchecked.
func message(s string, i int) string {
	return s + ": " + string(rune('0'+i%10))
}
