package detlint

// NoGlobalRand forbids math/rand and math/rand/v2 anywhere in non-test
// code. All randomness must flow through internal/rng: its named,
// seed-derived streams are what keep every stochastic component on its
// own reproducible sequence (the common-random-numbers discipline behind
// the paper's policy comparisons). math/rand's global source is seeded
// per-process and shared across callers, so one stray call perturbs every
// downstream draw.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "no math/rand or math/rand/v2 in non-test code; use internal/rng seeded streams",
	Run:  runNoGlobalRand,
}

var forbiddenRandImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runNoGlobalRand(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path := quoteImportPath(imp.Path.Value)
			if forbiddenRandImports[path] {
				pass.Reportf(imp.Pos(),
					"import of %s: all randomness must flow through internal/rng seeded streams", path)
			}
		}
	}
}
