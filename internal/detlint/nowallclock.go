package detlint

import (
	"go/ast"
	"go/types"
)

// NoWallClock forbids reading the wall clock in deterministic packages.
// Simulated time comes from sim.Engine.Now; a single time.Now (for a
// timestamp, a timeout, a seed) silently couples results to the host
// machine and breaks replay.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "no time.Now/Since/Sleep/... in deterministic packages; use virtual time (sim.Engine.Now)",
	Run:  runNoWallClock,
}

// wallClockFuncs are the package-level time functions that observe or
// depend on the real clock. Pure constructors and constants (time.Date,
// time.Second) are allowed: they are deterministic values.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runNoWallClock(pass *Pass) {
	if !pass.Deterministic() {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in deterministic package %s; use virtual time (sim.Engine.Now)",
					sel.Sel.Name, pass.Pkg.ImportPath)
			}
			return true
		})
	}
}
