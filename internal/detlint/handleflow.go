package detlint

import (
	"go/ast"
)

// HandleFlow is the interprocedural closure of eventretain and
// jobretain: it flags a call that passes a pooled sim.Event or an
// arena-owned workload.Job to a function that retains it — directly, or
// through further forwarding — so the leak is reported where the handle
// leaves the caller's control, not only at the store buried in a helper.
// A store site suppressed with //detlint:ignore (the faultState registry
// with its invalidation discipline, for example) is documented-safe and
// does not make its function's parameter count as retaining.
var HandleFlow = &Analyzer{
	Name:  "handleflow",
	Doc:   "no passing pooled sim.Event / arena workload.Job handles to functions that retain them",
	Run:   runHandleFlow,
	facts: true,
}

// eventSpec configures the escape engine for pooled sim.Event handles:
// any persistent store is a sink, matching eventretain, and spreading a
// slice of handles retains its contents.
func eventSpec(mod *Module) *handleSpec {
	check := newContainsChecker(mod.Path+"/internal/sim", "Event")
	return &handleSpec{
		rule:       HandleFlow.Name,
		what:       "pooled sim.Event handle",
		advice:     eventRetainAdvice,
		owner:      "internal/sim",
		fields:     true,
		elements:   true,
		channels:   true,
		globals:    true,
		spreadSink: true,
		suppressAs: []string{EventRetain.Name},
		track:      check.contains,
	}
}

// jobSpec configures the engine for arena-owned workload.Job handles.
// Fields and elements are legitimate (run-scoped queues and registries
// die with the run, matching jobretain); the hazards are state that
// survives the run — globals and cross-goroutine channels.
func jobSpec(mod *Module) *handleSpec {
	check := newContainsChecker(mod.Path+"/internal/workload", "Job")
	return &handleSpec{
		rule:       HandleFlow.Name,
		what:       "arena-owned workload.Job handle",
		advice:     jobRetainAdvice,
		owner:      "internal/workload",
		channels:   true,
		globals:    true,
		spreadSink: true,
		suppressAs: []string{JobRetain.Name},
		track:      check.contains,
	}
}

func runHandleFlow(p *Pass) {
	facts := p.Module.facts
	reportHandleCalls(p, facts.event)
	reportHandleCalls(p, facts.job)
}

// reportHandleCalls flags calls in the target package whose handle-typed
// arguments reach an escaping parameter.
func reportHandleCalls(p *Pass, ef *escapeFacts) {
	if p.Pkg.Rel == ef.spec.owner {
		return
	}
	cg := p.Module.facts.cg
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range cg.resolveCall(info, call) {
				esc := ef.escapes[callee]
				if len(esc) == 0 {
					continue
				}
				for ai, arg := range call.Args {
					t := info.TypeOf(arg)
					if t == nil || !ef.spec.track(t) {
						continue
					}
					pi, ok := calleeParamIndex(callee, ai)
					if !ok {
						continue
					}
					pe := esc[pi]
					if pe == nil {
						continue
					}
					p.Reportf(arg.Pos(), "passing a %s to %s, which %s at %s; %s",
						ef.spec.what, cg.qualifiedName(callee, p.Pkg), pe.why, shortPos(pe.at),
						ef.spec.advice)
				}
			}
			return true
		})
	}
}
