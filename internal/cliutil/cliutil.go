// Package cliutil centralizes the flag validation shared by the commands,
// so mcsim, mcexp and mcreplay reject the same bad inputs with the same
// wording and the same exit status. Historically mcsim exited 1 via its
// fatalf helper while mcexp exited 2 via inline fprintf checks; flag
// errors now uniformly use status 2 (the conventional usage-error
// status), leaving status 1 for runtime failures.
package cliutil

import (
	"fmt"
	"math"
	"os"

	"coalloc/internal/faults"
)

// exit is swapped out by tests; the commands always exit the process.
var exit = os.Exit

// Failf prints "prog: message" to stderr and exits with status 2.
func Failf(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
	exit(2)
}

// CheckLookahead validates the -lookahead flag: 0 means "use the
// default" and is always accepted, explicit values must be >= 1, and an
// explicit value is rejected when nothing in the run uses conservative
// backfilling — a silently ignored bound reads as a measurement of a
// configuration that never ran. scope names what would have to be true
// for the flag to apply (e.g. "policy GS-CONS or SC-CONS").
func CheckLookahead(prog string, v int, applies bool, scope string) {
	if v == 0 {
		return
	}
	if v < 1 {
		Failf(prog, "-lookahead %d must be >= 1", v)
	}
	if !applies {
		Failf(prog, "-lookahead only applies to conservative backfilling; %s", scope)
	}
}

// CheckDecisions rejects -decisions when nothing in the run records
// scheduling decisions, for the same reason CheckLookahead rejects a
// dangling -lookahead. scope names what would have to be true for the
// flag to apply.
func CheckDecisions(prog string, on, applies bool, scope string) {
	if on && !applies {
		Failf(prog, "-decisions records per-decision placement traces of open-system simulations; %s", scope)
	}
}

// CheckRetryWindow validates the -retry-base/-retry-cap pair against the
// same defaulting the fault injector applies (0 means 10 s base, 600 s
// cap): after normalization the cap must be at least the base. Checking
// the normalized pair at the flag layer catches windows the raw-value
// check misses — e.g. an explicit base of 700 s with the default 600 s
// cap — before a sweep spends minutes to die on the same error inside
// the first run.
func CheckRetryWindow(prog string, base, cap float64) {
	for _, f := range []struct {
		name  string
		value float64
	}{{"-retry-base", base}, {"-retry-cap", cap}} {
		if f.value < 0 || math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			Failf(prog, "%s %g must be non-negative and finite", f.name, f.value)
		}
	}
	s := faults.Spec{RetryBase: base, RetryCap: cap}.Normalized()
	if s.RetryCap < s.RetryBase {
		Failf(prog, "retry window [%g s, %g s] is empty: the cap must be at least the base (0 means the %g s default)",
			s.RetryBase, s.RetryCap, 600.0)
	}
}
