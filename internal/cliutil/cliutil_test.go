package cliutil

import (
	"math"
	"testing"
)

type exitPanic int

// captureExit runs fn with the process exit intercepted and reports the
// status it attempted to exit with (-1 when it returned normally).
func captureExit(t *testing.T, fn func()) int {
	t.Helper()
	old := exit
	exit = func(c int) { panic(exitPanic(c)) }
	defer func() { exit = old }()
	code := -1
	func() {
		defer func() {
			if r := recover(); r != nil {
				c, ok := r.(exitPanic)
				if !ok {
					panic(r)
				}
				code = int(c)
			}
		}()
		fn()
	}()
	return code
}

func TestCheckLookahead(t *testing.T) {
	cases := []struct {
		v       int
		applies bool
		want    int
	}{
		{0, false, -1}, // default: always fine, even when inapplicable
		{0, true, -1},
		{1, true, -1},
		{32, true, -1},
		{-3, true, 2},  // explicit values must be >= 1
		{-3, false, 2}, // the bound check fires before applicability
		{5, false, 2},  // dangling bound: nothing backfills conservatively
	}
	for _, c := range cases {
		got := captureExit(t, func() {
			CheckLookahead("test", c.v, c.applies, "no conservative policy in this run")
		})
		if got != c.want {
			t.Errorf("CheckLookahead(%d, applies=%v) exit %d, want %d", c.v, c.applies, got, c.want)
		}
	}
}

func TestCheckDecisions(t *testing.T) {
	cases := []struct {
		on, applies bool
		want        int
	}{
		{false, false, -1},
		{false, true, -1},
		{true, true, -1},
		{true, false, 2},
	}
	for _, c := range cases {
		got := captureExit(t, func() {
			CheckDecisions("test", c.on, c.applies, "no simulations in this run")
		})
		if got != c.want {
			t.Errorf("CheckDecisions(on=%v, applies=%v) exit %d, want %d", c.on, c.applies, got, c.want)
		}
	}
}

func TestCheckRetryWindow(t *testing.T) {
	cases := []struct {
		base, cap float64
		want      int
	}{
		{0, 0, -1},    // both defaulted: 10 s under 600 s
		{10, 600, -1}, // explicit defaults
		{50, 50, -1},  // degenerate but non-empty window
		{700, 1000, -1},
		{0, 5, 2},    // cap below the defaulted 10 s base
		{700, 0, 2},  // explicit base above the defaulted 600 s cap
		{600, 50, 2}, // both explicit, inverted
		{-1, 600, 2},
		{10, math.NaN(), 2},
		{math.Inf(1), 0, 2},
	}
	for _, c := range cases {
		got := captureExit(t, func() {
			CheckRetryWindow("test", c.base, c.cap)
		})
		if got != c.want {
			t.Errorf("CheckRetryWindow(%g, %g) exit %d, want %d", c.base, c.cap, got, c.want)
		}
	}
}
