package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the interpolated sample quantile for reference.
func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	r := p * float64(len(s)-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return s[lo]
	}
	frac := r - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func TestP2AgainstExactUniform(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.9, 0.95} {
		q := NewP2Quantile(p)
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = r.Float64() * 100
			q.Add(xs[i])
		}
		want := exactQuantile(xs, p)
		if math.Abs(q.Value()-want) > 1.0 { // 1% of the range
			t.Errorf("p=%.2f: P2 %.2f, exact %.2f", p, q.Value(), want)
		}
	}
}

func TestP2AgainstExactExponential(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	q := NewP2Quantile(0.95)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.ExpFloat64() * 100
		q.Add(xs[i])
	}
	want := exactQuantile(xs, 0.95)
	if math.Abs(q.Value()-want)/want > 0.05 {
		t.Errorf("exp p95: P2 %.2f, exact %.2f", q.Value(), want)
	}
}

func TestP2SmallSamples(t *testing.T) {
	q := NewP2Quantile(0.5)
	if !math.IsNaN(q.Value()) {
		t.Error("empty estimator should report NaN")
	}
	q.Add(10)
	if q.Value() != 10 {
		t.Errorf("single observation median %g", q.Value())
	}
	q.Add(20)
	if got := q.Value(); got != 15 {
		t.Errorf("two-observation median %g, want 15", got)
	}
	q.Add(30)
	q.Add(40)
	if got := q.Value(); got != 25 {
		t.Errorf("four-observation median %g, want 25", got)
	}
}

func TestP2ExactlyFive(t *testing.T) {
	q := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 4, 2, 3} {
		q.Add(x)
	}
	if got := q.Value(); got != 3 {
		t.Errorf("median of 1..5 = %g, want 3", got)
	}
	if q.N() != 5 {
		t.Errorf("N = %d", q.N())
	}
}

func TestP2MonotoneData(t *testing.T) {
	q := NewP2Quantile(0.5)
	for i := 1; i <= 10001; i++ {
		q.Add(float64(i))
	}
	if math.Abs(q.Value()-5001) > 50 {
		t.Errorf("median of 1..10001 estimated %g", q.Value())
	}
}

func TestP2Reset(t *testing.T) {
	q := NewP2Quantile(0.9)
	for i := 0; i < 100; i++ {
		q.Add(float64(i))
	}
	q.Reset()
	if q.N() != 0 || !math.IsNaN(q.Value()) || q.P() != 0.9 {
		t.Error("Reset did not restore initial state")
	}
}

func TestP2Panics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() { recover() }()
			NewP2Quantile(p)
			t.Errorf("NewP2Quantile(%g) did not panic", p)
		}()
	}
}

func TestP2EstimateWithinObservedRange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	q := NewP2Quantile(0.9)
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 5000; i++ {
		x := r.NormFloat64()*10 + 50
		min = math.Min(min, x)
		max = math.Max(max, x)
		q.Add(x)
		if i >= 5 {
			if v := q.Value(); v < min || v > max {
				t.Fatalf("estimate %g escaped the observed range [%g, %g]", v, min, max)
			}
		}
	}
}

func TestQuantileSet(t *testing.T) {
	s := NewQuantileSet()
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Q50.Value()-0.5) > 0.02 {
		t.Errorf("median %g", s.Q50.Value())
	}
	if math.Abs(s.Q90.Value()-0.9) > 0.02 {
		t.Errorf("p90 %g", s.Q90.Value())
	}
	if math.Abs(s.Q95.Value()-0.95) > 0.02 {
		t.Errorf("p95 %g", s.Q95.Value())
	}
	if !(s.Q50.Value() < s.Q90.Value() && s.Q90.Value() < s.Q95.Value()) {
		t.Error("quantiles out of order")
	}
	s.Reset()
	if s.Q50.N() != 0 {
		t.Error("Reset did not clear the set")
	}
}
