package stats

import (
	"math"
	"testing"

	"coalloc/internal/rng"
)

// TestAddNEquivalence: the closed-form AddN must agree with count repeated
// Add calls to within floating-point noise, for mixed magnitudes and both
// orders of interleaving.
func TestAddNEquivalence(t *testing.T) {
	stream := rng.NewSource(7).Stream("test/addn")
	var batched, repeated Welford
	for i := 0; i < 50; i++ {
		x := stream.Exp(0.001) // spread over several orders of magnitude
		count := int64(1 + i%7)
		batched.AddN(x, count)
		for k := int64(0); k < count; k++ {
			repeated.Add(x)
		}
	}
	if batched.N() != repeated.N() {
		t.Fatalf("N = %d, want %d", batched.N(), repeated.N())
	}
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	approx("Mean", batched.Mean(), repeated.Mean())
	approx("Variance", batched.Variance(), repeated.Variance())
	approx("Sum", batched.Sum(), repeated.Sum())
	if batched.Min() != repeated.Min() || batched.Max() != repeated.Max() {
		t.Errorf("Min/Max = %g/%g, want %g/%g",
			batched.Min(), batched.Max(), repeated.Min(), repeated.Max())
	}
}

// TestAddNNonPositiveCount: count <= 0 must leave the accumulator untouched.
func TestAddNNonPositiveCount(t *testing.T) {
	var w Welford
	w.Add(3)
	w.AddN(100, 0)
	w.AddN(100, -5)
	if w.N() != 1 || w.Mean() != 3 {
		t.Fatalf("AddN with count<=0 mutated the accumulator: N=%d Mean=%g", w.N(), w.Mean())
	}
}

// TestTimeWeightedDecreasingReadPanics: reading the integral at a time
// before the last update is a caller bug (it silently dropped the final
// partial interval before this check existed) and must panic.
func TestTimeWeightedDecreasingReadPanics(t *testing.T) {
	for _, read := range []struct {
		name string
		call func(tw *TimeWeighted)
	}{
		{"Integral", func(tw *TimeWeighted) { tw.Integral(5) }},
		{"Average", func(tw *TimeWeighted) { tw.Average(5) }},
	} {
		t.Run(read.name, func(t *testing.T) {
			var tw TimeWeighted
			tw.StartAt(0, 2)
			tw.Set(10, 4)
			defer func() {
				if recover() == nil {
					t.Fatalf("%s at t=5 after update at t=10 did not panic", read.name)
				}
			}()
			read.call(&tw)
		})
	}
}

// TestTimeWeightedIntegralAtLastTime: reading exactly at the last update
// time is legal and returns the accumulated integral.
func TestTimeWeightedIntegralAtLastTime(t *testing.T) {
	var tw TimeWeighted
	tw.StartAt(0, 2)
	tw.Set(10, 4)
	if got := tw.Integral(10); got != 20 {
		t.Fatalf("Integral(10) = %g, want 20", got)
	}
	if got := tw.Integral(15); got != 40 {
		t.Fatalf("Integral(15) = %g, want 40", got)
	}
}
