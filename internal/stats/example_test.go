package stats_test

import (
	"fmt"

	"coalloc/internal/stats"
)

// Welford accumulates mean and variance in one pass.
func ExampleWelford() {
	var w stats.Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	fmt.Printf("n=%d mean=%.2f sd=%.2f\n", w.N(), w.Mean(), w.StdDev())
	// Output:
	// n=8 mean=5.00 sd=2.14
}

// TimeWeighted integrates a piecewise-constant level — utilization, queue
// length — over virtual time.
func ExampleTimeWeighted() {
	var tw stats.TimeWeighted
	tw.StartAt(0, 0)
	tw.Set(10, 64)  // 64 busy processors from t=10
	tw.Set(30, 128) // all 128 busy from t=30
	fmt.Printf("average busy over [0,40] = %.0f\n", tw.Average(40))
	// Output:
	// average busy over [0,40] = 64
}

// P2Quantile estimates percentiles of a stream in constant space.
func ExampleP2Quantile() {
	q := stats.NewP2Quantile(0.5)
	for i := 1; i <= 1001; i++ {
		q.Add(float64(i))
	}
	fmt.Printf("median of 1..1001 ~ %.0f\n", q.Value())
	// Output:
	// median of 1..1001 ~ 501
}
