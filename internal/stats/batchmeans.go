package stats

import "math"

// BatchMeans estimates a confidence interval for the steady-state mean of a
// correlated output sequence (per-job response times) by the method of
// nonoverlapping batch means: consecutive observations are grouped into
// batches, whose means are approximately independent when batches are long
// enough, and a Student-t interval is formed over the batch means.
type BatchMeans struct {
	batchSize int64
	current   Welford
	batches   Welford
}

// NewBatchMeans groups observations into batches of the given size.
func NewBatchMeans(batchSize int64) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: NewBatchMeans with non-positive batch size")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add incorporates one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.N() == b.batchSize {
		b.batches.Add(b.current.Mean())
		b.current.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth returns the half-width of the confidence interval at the given
// confidence level (e.g. 0.95). It returns +Inf with fewer than 2 batches.
func (b *BatchMeans) HalfWidth(confidence float64) float64 {
	k := b.batches.N()
	if k < 2 {
		return math.Inf(1)
	}
	t := TQuantile(k-1, confidence)
	return t * b.batches.StdDev() / math.Sqrt(float64(k))
}

// RelativeHalfWidth returns HalfWidth divided by the absolute mean, the
// usual stopping criterion for sequential simulation runs.
func (b *BatchMeans) RelativeHalfWidth(confidence float64) float64 {
	m := b.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return b.HalfWidth(confidence) / math.Abs(m)
}

// tEntry is one Student-t critical-value row: degrees of freedom and the
// two-sided critical value t_{df, (1+c)/2}.
type tEntry struct {
	df int64
	t  float64
}

// tTable95 and tTable99 hold the critical values for the 95% and 99%
// confidence levels in increasing df order; the normal limit covers
// df > 120. Sorted slices rather than maps keep the lookup scan
// deterministic (detlint rule nomaprange).
var tTable95 = []tEntry{
	{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
	{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
	{12, 2.179}, {15, 2.131}, {20, 2.086}, {25, 2.060}, {30, 2.042},
	{40, 2.021}, {60, 2.000}, {120, 1.980},
}

var tTable99 = []tEntry{
	{1, 63.657}, {2, 9.925}, {3, 5.841}, {4, 4.604}, {5, 4.032},
	{6, 3.707}, {7, 3.499}, {8, 3.355}, {9, 3.250}, {10, 3.169},
	{12, 3.055}, {15, 2.947}, {20, 2.845}, {25, 2.787}, {30, 2.750},
	{40, 2.704}, {60, 2.660}, {120, 2.617},
}

// TQuantile returns the two-sided Student-t critical value for the given
// degrees of freedom at confidence level 0.95 or 0.99 (other levels fall
// back to 0.95). Values between table entries use the next-lower df, which
// is conservative (wider interval).
func TQuantile(df int64, confidence float64) float64 {
	table := tTable95
	norm := 1.960
	if confidence >= 0.985 {
		table = tTable99
		norm = 2.576
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df > table[len(table)-1].df {
		return norm
	}
	// Largest tabulated df not exceeding the requested one.
	best := table[0]
	for _, e := range table {
		if e.df > df {
			break
		}
		best = e
	}
	return best.t
}
