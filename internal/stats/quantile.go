package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream in O(1) space with
// the P² algorithm of Jain and Chlamtac (1985). The simulator uses it for
// median and tail response times, which a plain mean hides — tail latency
// is where FCFS head-of-line blocking shows up first.
type P2Quantile struct {
	p       float64
	n       int64
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments
	initial []float64  // first five observations
}

// NewP2Quantile estimates the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: NewP2Quantile(%g)", p))
	}
	q := &P2Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q
}

// P returns the quantile being estimated.
func (q *P2Quantile) P() float64 { return q.p }

// N returns the number of observations.
func (q *P2Quantile) N() int64 { return q.n }

// Add incorporates one observation.
func (q *P2Quantile) Add(x float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, x)
		if q.n == 5 {
			sort.Float64s(q.initial)
			copy(q.heights[:], q.initial)
			q.pos = [5]float64{1, 2, 3, 4, 5}
			q.initial = nil
		}
		return
	}

	// Locate the cell containing x and clamp the extremes.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			h := q.parabolic(i, s)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

// parabolic applies the piecewise-parabolic prediction formula.
func (q *P2Quantile) parabolic(i int, s float64) float64 {
	return q.heights[i] + s/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+s)*(q.heights[i+1]-q.heights[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-s)*(q.heights[i]-q.heights[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear falls back to linear interpolation toward the neighbor.
func (q *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return q.heights[i] + s*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it interpolates the sorted sample; with none it returns NaN.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if q.n < 5 {
		s := append([]float64(nil), q.initial...)
		sort.Float64s(s)
		// Nearest-rank interpolation on the small sample.
		r := q.p * float64(len(s)-1)
		lo := int(math.Floor(r))
		hi := int(math.Ceil(r))
		if lo == hi {
			return s[lo]
		}
		frac := r - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return q.heights[2]
}

// Reset discards all observations.
func (q *P2Quantile) Reset() {
	p := q.p
	*q = *NewP2Quantile(p)
}

// QuantileSet bundles the response-time quantiles the experiment reports
// use: median, 90th and 95th percentile.
type QuantileSet struct {
	Q50, Q90, Q95 *P2Quantile
}

// NewQuantileSet returns estimators for the 50th, 90th and 95th percentile.
func NewQuantileSet() *QuantileSet {
	return &QuantileSet{
		Q50: NewP2Quantile(0.50),
		Q90: NewP2Quantile(0.90),
		Q95: NewP2Quantile(0.95),
	}
}

// Add feeds all three estimators.
func (s *QuantileSet) Add(x float64) {
	s.Q50.Add(x)
	s.Q90.Add(x)
	s.Q95.Add(x)
}

// Reset discards all observations.
func (s *QuantileSet) Reset() {
	s.Q50.Reset()
	s.Q90.Reset()
	s.Q95.Reset()
}
