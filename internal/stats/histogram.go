package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts observations in equal-width bins over [lo, hi). Values
// outside the range are tallied in underflow/overflow counters so no
// observation is silently dropped. It backs the density plots of Figs. 1
// and 2 of the paper.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram creates a histogram with bins equal-width bins on [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bin count")
	}
	if !(hi > lo) {
		panic("stats: NewHistogram with empty range")
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]int64, bins),
	}
}

// Add tallies one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.counts) { // guard against floating-point edge
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the tally of bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// BinRange returns the half-open interval covered by bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return lo, lo + h.width
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// Underflow and Overflow return the out-of-range tallies.
func (h *Histogram) Underflow() int64 { return h.underflow }
func (h *Histogram) Overflow() int64  { return h.overflow }

// Fraction returns the share of all observations that fell in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Render draws the histogram as rows of '#' characters, one row per bin,
// scaled so the fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	var max int64
	for _, c := range h.counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		lo, hi := h.BinRange(i)
		bar := 0
		if max > 0 {
			bar = int(math.Round(float64(c) / float64(max) * float64(width)))
		}
		fmt.Fprintf(&b, "[%8.1f,%8.1f) %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// IntCounter tallies integer-valued observations exactly, preserving every
// distinct value — the right shape for job-size densities where the paper
// distinguishes powers of two from all other sizes.
type IntCounter struct {
	counts map[int]int64
	total  int64
}

// NewIntCounter returns an empty counter.
func NewIntCounter() *IntCounter {
	return &IntCounter{counts: make(map[int]int64)}
}

// Add tallies one observation of value v.
func (c *IntCounter) Add(v int) {
	c.counts[v]++
	c.total++
}

// AddN tallies n observations of value v.
func (c *IntCounter) AddN(v int, n int64) {
	if n <= 0 {
		return
	}
	c.counts[v] += n
	c.total += n
}

// Count returns the tally for value v.
func (c *IntCounter) Count(v int) int64 { return c.counts[v] }

// Total returns the number of observations.
func (c *IntCounter) Total() int64 { return c.total }

// Fraction returns the share of observations equal to v.
func (c *IntCounter) Fraction(v int) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[v]) / float64(c.total)
}

// Distinct returns the number of distinct values observed.
func (c *IntCounter) Distinct() int { return len(c.counts) }

// Values returns the observed values in increasing order.
func (c *IntCounter) Values() []int {
	vs := make([]int, 0, len(c.counts))
	for v := range c.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Mean returns the sample mean of the observations.
func (c *IntCounter) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	var sum float64
	// Sorted iteration fixes the float accumulation order — and with it
	// the last-bit rounding — across runs (detlint rule nomaprange).
	for _, v := range c.Values() {
		sum += float64(v) * float64(c.counts[v])
	}
	return sum / float64(c.total)
}

// CV returns the coefficient of variation of the observations.
func (c *IntCounter) CV() float64 {
	if c.total == 0 {
		return 0
	}
	mean := c.Mean()
	if mean == 0 {
		return 0
	}
	var ss float64
	// Sorted iteration, as in Mean: deterministic rounding.
	for _, v := range c.Values() {
		d := float64(v) - mean
		ss += d * d * float64(c.counts[v])
	}
	return math.Sqrt(ss/float64(c.total)) / mean
}
