package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g, want 5", w.Mean())
	}
	// Population variance is 4, sample variance 32/7.
	if !almost(w.Variance(), 32.0/7, 1e-12) {
		t.Errorf("variance = %g, want %g", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %g/%g", w.Min(), w.Max())
	}
	if !almost(w.Sum(), 40, 1e-12) {
		t.Errorf("sum = %g", w.Sum())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.CV() != 0 {
		t.Error("empty accumulator should report zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3)
	if w.Variance() != 0 {
		t.Errorf("variance of one observation = %g", w.Variance())
	}
}

// TestWelfordMatchesNaive is a property test against the two-pass formulas.
func TestWelfordMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return almost(w.Mean(), mean, 1e-9) && almost(w.Variance(), naiveVar, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var whole, a, b Welford
		n := 1 + r.Intn(50)
		m := 1 + r.Intn(50)
		for i := 0; i < n; i++ {
			x := r.Float64() * 100
			whole.Add(x)
			a.Add(x)
		}
		for i := 0; i < m; i++ {
			x := r.Float64() * 100
			whole.Add(x)
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almost(a.Mean(), whole.Mean(), 1e-9) &&
			almost(a.Variance(), whole.Variance(), 1e-9) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b)
	if a != before {
		t.Error("merging an empty accumulator changed state")
	}
	b.Merge(&a)
	if b.Mean() != 2 {
		t.Errorf("merge into empty: mean %g", b.Mean())
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(5, 4)
	for i := 0; i < 4; i++ {
		b.Add(5)
	}
	if a.Mean() != b.Mean() || a.N() != b.N() || a.Variance() != b.Variance() {
		t.Error("AddN differs from repeated Add")
	}
}

func TestTimeWeightedUtilization(t *testing.T) {
	var tw TimeWeighted
	tw.StartAt(0, 0)
	tw.Set(10, 4) // level 0 for [0,10)
	tw.Set(20, 2) // level 4 for [10,20)
	tw.Set(40, 0) // level 2 for [20,40)
	// integral = 0*10 + 4*10 + 2*20 = 80; average over [0,50] with level 0 after 40.
	if got := tw.Integral(50); got != 80 {
		t.Errorf("integral = %g, want 80", got)
	}
	if got := tw.Average(50); !almost(got, 1.6, 1e-12) {
		t.Errorf("average = %g, want 1.6", got)
	}
	if tw.MaxLevel() != 4 {
		t.Errorf("max level = %g", tw.MaxLevel())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var tw TimeWeighted
	tw.StartAt(0, 1)
	tw.Add(5, 2)
	tw.Add(10, -3)
	if tw.Level() != 0 {
		t.Errorf("level = %g, want 0", tw.Level())
	}
	// 1*5 + 3*5 = 20
	if got := tw.Integral(10); got != 20 {
		t.Errorf("integral = %g, want 20", got)
	}
}

func TestTimeWeightedRestart(t *testing.T) {
	var tw TimeWeighted
	tw.StartAt(0, 3)
	tw.Set(10, 5)
	tw.StartAt(10, 5) // warmup reset
	tw.Set(20, 0)
	if got := tw.Average(20); !almost(got, 5, 1e-12) {
		t.Errorf("average after restart = %g, want 5", got)
	}
}

func TestTimeWeightedDecreasingTimePanics(t *testing.T) {
	var tw TimeWeighted
	tw.StartAt(10, 0)
	defer func() {
		if recover() == nil {
			t.Error("decreasing time did not panic")
		}
	}()
	tw.Set(5, 1)
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99, 10, -1, 100} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Underflow(), h.Overflow())
	}
	if h.Count(0) != 2 { // 0 and 1.9
		t.Errorf("bin 0 = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 { // 2
		t.Errorf("bin 1 = %d, want 1", h.Count(1))
	}
	if h.Count(4) != 1 { // 9.99
		t.Errorf("bin 4 = %d, want 1", h.Count(4))
	}
	lo, hi := h.BinRange(2)
	if lo != 4 || hi != 6 {
		t.Errorf("bin 2 range [%g,%g), want [4,6)", lo, hi)
	}
	if !almost(h.Fraction(0), 0.25, 1e-12) {
		t.Errorf("fraction = %g", h.Fraction(0))
	}
}

func TestHistogramConservation(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram(-5, 5, 1+r.Intn(20))
		n := 1 + r.Intn(500)
		for i := 0; i < n; i++ {
			h.Add(r.NormFloat64() * 4)
		}
		var inBins int64
		for i := 0; i < h.Bins(); i++ {
			inBins += h.Count(i)
		}
		return inBins+h.Underflow()+h.Overflow() == int64(n) && h.Total() == int64(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(1.5)
	out := h.Render(10)
	if out == "" {
		t.Error("empty render")
	}
}

func TestIntCounter(t *testing.T) {
	c := NewIntCounter()
	c.Add(1)
	c.Add(1)
	c.AddN(4, 2)
	if c.Total() != 4 || c.Distinct() != 2 {
		t.Errorf("total %d distinct %d", c.Total(), c.Distinct())
	}
	if c.Count(1) != 2 || c.Count(4) != 2 || c.Count(9) != 0 {
		t.Error("bad counts")
	}
	if !almost(c.Mean(), 2.5, 1e-12) {
		t.Errorf("mean = %g", c.Mean())
	}
	// variance = ((1-2.5)^2*2 + (4-2.5)^2*2)/4 = 2.25; CV = 1.5/2.5
	if !almost(c.CV(), 0.6, 1e-12) {
		t.Errorf("CV = %g", c.CV())
	}
	vs := c.Values()
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 4 {
		t.Errorf("values = %v", vs)
	}
	if !almost(c.Fraction(1), 0.5, 1e-12) {
		t.Errorf("fraction = %g", c.Fraction(1))
	}
}

func TestIntCounterAddNNonPositive(t *testing.T) {
	c := NewIntCounter()
	c.AddN(3, 0)
	c.AddN(3, -5)
	if c.Total() != 0 {
		t.Errorf("AddN with non-positive count changed the counter: %d", c.Total())
	}
}

func TestBatchMeansIID(t *testing.T) {
	// For i.i.d. observations the batch-means interval should cover the
	// true mean; with a fixed seed this is deterministic.
	r := rand.New(rand.NewSource(5))
	bm := NewBatchMeans(100)
	const trueMean = 7.0
	for i := 0; i < 10000; i++ {
		bm.Add(trueMean + r.NormFloat64())
	}
	if bm.Batches() != 100 {
		t.Errorf("batches = %d, want 100", bm.Batches())
	}
	hw := bm.HalfWidth(0.95)
	if math.Abs(bm.Mean()-trueMean) > hw {
		t.Errorf("interval %.3f +- %.3f misses true mean %g", bm.Mean(), hw, trueMean)
	}
	if hw <= 0 || hw > 0.1 {
		t.Errorf("implausible half-width %g", hw)
	}
	rel := bm.RelativeHalfWidth(0.95)
	if !almost(rel, hw/bm.Mean(), 1e-12) {
		t.Errorf("relative half-width %g", rel)
	}
}

func TestBatchMeansFewBatches(t *testing.T) {
	bm := NewBatchMeans(10)
	for i := 0; i < 15; i++ {
		bm.Add(1)
	}
	if bm.Batches() != 1 {
		t.Errorf("batches = %d", bm.Batches())
	}
	if !math.IsInf(bm.HalfWidth(0.95), 1) {
		t.Error("half-width with one batch should be +Inf")
	}
}

func TestTQuantile(t *testing.T) {
	if got := TQuantile(1, 0.95); got != 12.706 {
		t.Errorf("t(1, .95) = %g", got)
	}
	if got := TQuantile(10, 0.95); got != 2.228 {
		t.Errorf("t(10, .95) = %g", got)
	}
	// Between entries: conservative (next lower df).
	if got := TQuantile(13, 0.95); got != 2.179 {
		t.Errorf("t(13, .95) = %g, want the df=12 value", got)
	}
	if got := TQuantile(1000, 0.95); got != 1.960 {
		t.Errorf("t(1000, .95) = %g, want normal limit", got)
	}
	if got := TQuantile(5, 0.99); got != 4.032 {
		t.Errorf("t(5, .99) = %g", got)
	}
	if got := TQuantile(0, 0.95); !math.IsInf(got, 1) {
		t.Errorf("t(0) = %g, want +Inf", got)
	}
	// Monotone decreasing in df.
	prev := math.Inf(1)
	for df := int64(1); df <= 200; df++ {
		v := TQuantile(df, 0.95)
		if v > prev {
			t.Fatalf("TQuantile not nonincreasing at df=%d: %g > %g", df, v, prev)
		}
		prev = v
	}
}
