// Package stats provides the estimators used to turn raw simulation output
// into the numbers the paper reports: sample means and variances (Welford),
// time-weighted averages (utilization), fixed- and variable-width
// histograms (the density plots of Figs. 1 and 2), batch-means confidence
// intervals for steady-state response times, and percentile summaries.
package stats

import "math"

// Welford accumulates a sample mean and variance in one pass using
// Welford's numerically stable recurrence. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.sum += x
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN incorporates the same observation count times, in constant time.
// It is the Chan et al. merge with a degenerate (count, x, 0) accumulator:
// count identical observations contribute no within-group variance, so
// only the between-group term delta² · n·count/(n+count) enters m2.
// Non-positive counts are a no-op.
func (w *Welford) AddN(x float64, count int64) {
	if count <= 0 {
		return
	}
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	n := w.n + count
	delta := x - w.mean
	w.mean += delta * float64(count) / float64(n)
	w.m2 += delta * delta * float64(w.n) * float64(count) / float64(n)
	w.sum += x * float64(count)
	w.n = n
}

// Merge folds the other accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.sum += o.sum
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Sum returns the sum of the observations.
func (w *Welford) Sum() float64 { return w.sum }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 when empty.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 when empty.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// CV returns the coefficient of variation (stddev / mean), or 0 when the
// mean is 0.
func (w *Welford) CV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / math.Abs(w.mean)
}

// Reset returns the accumulator to its zero state.
func (w *Welford) Reset() { *w = Welford{} }

// TimeWeighted integrates a piecewise-constant function of virtual time,
// such as the number of busy processors. Average() over an interval is the
// time-average value — exactly the paper's utilization when the level is
// busy processors divided by capacity.
type TimeWeighted struct {
	started  bool
	start    float64
	last     float64
	level    float64
	integral float64
	maxLevel float64
}

// StartAt begins integration at time t with level 0, discarding any
// previous state. Use it to reset at the end of a warmup period.
func (tw *TimeWeighted) StartAt(t, level float64) {
	*tw = TimeWeighted{started: true, start: t, last: t, level: level, maxLevel: level}
}

// Set records that the level changed to v at time t. Times must be
// nondecreasing.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.StartAt(t, v)
		return
	}
	if t < tw.last {
		panic("stats: TimeWeighted.Set with decreasing time")
	}
	tw.integral += tw.level * (t - tw.last)
	tw.last = t
	tw.level = v
	if v > tw.maxLevel {
		tw.maxLevel = v
	}
}

// Add records a level change of +dv at time t.
func (tw *TimeWeighted) Add(t, dv float64) { tw.Set(t, tw.level+dv) }

// Level returns the current level.
func (tw *TimeWeighted) Level() float64 { return tw.level }

// MaxLevel returns the largest level seen since StartAt.
func (tw *TimeWeighted) MaxLevel() float64 { return tw.maxLevel }

// Integral returns the integral of the level from the start time to t.
// Like Set, it panics when t precedes the last recorded change: silently
// returning the stale integral would misreport every average computed
// with an out-of-order clock.
func (tw *TimeWeighted) Integral(t float64) float64 {
	if !tw.started {
		return 0
	}
	if t < tw.last {
		panic("stats: TimeWeighted.Integral with decreasing time")
	}
	return tw.integral + tw.level*(t-tw.last)
}

// Average returns the time-average level over [start, t], or 0 when the
// interval is empty.
func (tw *TimeWeighted) Average(t float64) float64 {
	d := t - tw.start
	if d <= 0 {
		return 0
	}
	return tw.Integral(t) / d
}
