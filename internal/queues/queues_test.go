package queues

import (
	"testing"
	"testing/quick"

	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

func job(id int64) *workload.Job { return &workload.Job{ID: id, Components: []int{1}} }

func TestFIFOOrder(t *testing.T) {
	var q FIFO
	if !q.Empty() || q.Len() != 0 || q.Head() != nil {
		t.Error("zero FIFO should be empty")
	}
	for i := int64(1); i <= 5; i++ {
		q.Push(job(i))
	}
	if q.Len() != 5 || q.Empty() {
		t.Errorf("len %d", q.Len())
	}
	if q.Head().ID != 1 {
		t.Errorf("head %d", q.Head().ID)
	}
	for i := int64(1); i <= 5; i++ {
		if got := q.Pop(); got.ID != i {
			t.Fatalf("pop %d, want %d", got.ID, i)
		}
	}
	if !q.Empty() {
		t.Error("not empty after draining")
	}
}

func TestFIFOPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty FIFO did not panic")
		}
	}()
	var q FIFO
	q.Pop()
}

func TestFIFOCompaction(t *testing.T) {
	var q FIFO
	// Interleave pushes and pops across the compaction threshold.
	next := int64(1)
	expect := int64(1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.Push(job(next))
			next++
		}
		for i := 0; i < 9; i++ {
			if got := q.Pop(); got.ID != expect {
				t.Fatalf("pop %d, want %d", got.ID, expect)
			}
			expect++
		}
	}
	if q.Len() != 50 {
		t.Errorf("len %d, want 50", q.Len())
	}
	for !q.Empty() {
		if got := q.Pop(); got.ID != expect {
			t.Fatalf("drain pop %d, want %d", got.ID, expect)
		}
		expect++
	}
}

// TestFIFOMatchesReference drives random push/pop sequences against a
// plain-slice reference implementation.
func TestFIFOMatchesReference(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		var q FIFO
		var ref []*workload.Job
		id := int64(0)
		for step := 0; step < 500; step++ {
			if r.Intn(2) == 0 || len(ref) == 0 {
				id++
				j := job(id)
				q.Push(j)
				ref = append(ref, j)
			} else {
				want := ref[0]
				ref = ref[1:]
				if q.Pop() != want {
					return false
				}
			}
			if q.Len() != len(ref) {
				return false
			}
			if len(ref) > 0 && q.Head() != ref[0] {
				return false
			}
			if len(ref) == 0 && q.Head() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnableSetInitial(t *testing.T) {
	s := NewEnableSet(4)
	if !s.AnyEnabled() || s.NumDisabled() != 0 {
		t.Error("fresh set should be fully enabled")
	}
	got := s.Enabled()
	if len(got) != 4 {
		t.Fatalf("enabled %v", got)
	}
	for i, q := range got {
		if q != i {
			t.Errorf("initial order %v", got)
		}
		if !s.IsEnabled(i) {
			t.Errorf("queue %d should be enabled", i)
		}
	}
}

func TestEnableSetDisableRemovesFromOrder(t *testing.T) {
	s := NewEnableSet(4)
	s.Disable(2)
	s.Disable(0)
	if s.IsEnabled(2) || s.IsEnabled(0) {
		t.Error("disabled queues still enabled")
	}
	got := s.Enabled()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("enabled %v, want [1 3]", got)
	}
	if s.NumDisabled() != 2 {
		t.Errorf("disabled count %d", s.NumDisabled())
	}
	// Disabling again is a no-op.
	s.Disable(2)
	if s.NumDisabled() != 2 {
		t.Error("double disable changed state")
	}
}

func TestEnableAllRestoresInDisableOrder(t *testing.T) {
	s := NewEnableSet(4)
	s.Disable(2)
	s.Disable(0)
	s.Disable(3)
	s.EnableAll()
	// Queue 1 never left the order; 2, 0, 3 rejoin in disable order.
	got := s.Enabled()
	want := []int{1, 2, 0, 3}
	if len(got) != 4 {
		t.Fatalf("enabled %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after EnableAll %v, want %v", got, want)
		}
	}
	for q := 0; q < 4; q++ {
		if !s.IsEnabled(q) {
			t.Errorf("queue %d still disabled after EnableAll", q)
		}
	}
	if s.NumDisabled() != 0 {
		t.Error("disabled list not cleared")
	}
}

func TestEnableSetAllDisabled(t *testing.T) {
	s := NewEnableSet(2)
	s.Disable(0)
	s.Disable(1)
	if s.AnyEnabled() {
		t.Error("AnyEnabled with everything disabled")
	}
	s.EnableAll()
	got := s.Enabled()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("order %v, want [0 1]", got)
	}
}

func TestEnableSetPanics(t *testing.T) {
	func() {
		defer func() { recover() }()
		NewEnableSet(0)
		t.Error("NewEnableSet(0) did not panic")
	}()
	func() {
		defer func() { recover() }()
		NewEnableSet(2).Disable(5)
		t.Error("Disable out of range did not panic")
	}()
}

// TestEnableSetInvariant: under random disable/enable sequences, the
// enabled list and state array always agree and no queue is duplicated.
func TestEnableSetInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 1 + r.Intn(8)
		s := NewEnableSet(n)
		for step := 0; step < 200; step++ {
			if r.Intn(4) == 0 {
				s.EnableAll()
			} else {
				s.Disable(r.Intn(n))
			}
			seen := map[int]bool{}
			for _, q := range s.Enabled() {
				if seen[q] || !s.IsEnabled(q) {
					return false
				}
				seen[q] = true
			}
			enabledCount := 0
			for q := 0; q < n; q++ {
				if s.IsEnabled(q) {
					enabledCount++
				}
			}
			if enabledCount != len(s.Enabled()) || enabledCount+s.NumDisabled() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEnableSetOrderMatchesReference drives random disable/enable-all
// sequences against a naive slice-based model of the paper's ordering
// contract and requires the intrusive-list implementation to report the
// exact same visit order at every step.
func TestEnableSetOrderMatchesReference(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 1 + r.Intn(8)
		s := NewEnableSet(n)
		// Reference model: the visit order as a slice, plus the disable
		// order.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		var disabled []int
		for step := 0; step < 300; step++ {
			switch r.Intn(6) {
			case 0:
				s.EnableAll()
				order = append(order, disabled...)
				disabled = disabled[:0]
			case 1:
				s.EnableAllSorted()
				order = order[:0]
				for i := 0; i < n; i++ {
					order = append(order, i)
				}
				disabled = disabled[:0]
			default:
				q := r.Intn(n)
				s.Disable(q)
				for i, v := range order {
					if v == q {
						order = append(order[:i], order[i+1:]...)
						disabled = append(disabled, q)
						break
					}
				}
			}
			got := s.Enabled()
			if len(got) != len(order) {
				return false
			}
			for i := range order {
				if got[i] != order[i] {
					return false
				}
			}
			if s.AnyEnabled() != (len(order) > 0) || s.NumDisabled() != len(disabled) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEnableSetDisableNoAlloc pins the hot-path property the intrusive
// list buys: in the steady state (disabled capacity warmed up), a
// disable/enable-all cycle allocates nothing.
func TestEnableSetDisableNoAlloc(t *testing.T) {
	s := NewEnableSet(8)
	// Warm the disabled slice's capacity and the order cache.
	for q := 0; q < 8; q++ {
		s.Disable(q)
	}
	s.EnableAll()
	s.Enabled()
	allocs := testing.AllocsPerRun(100, func() {
		s.Disable(3)
		s.Disable(6)
		s.Enabled()
		s.EnableAll()
		s.Enabled()
	})
	if allocs != 0 {
		t.Errorf("disable/enable-all cycle allocates %.1f times per run, want 0", allocs)
	}
}

func TestForEachWaiting(t *testing.T) {
	var q FIFO
	for i := int64(1); i <= 5; i++ {
		q.Push(job(i))
	}
	q.Pop() // drop job 1; remaining 2..5 with head index advanced
	var got []int64
	q.ForEachWaiting(func(idx int, j *workload.Job) bool {
		if int64(idx+2) != j.ID {
			t.Fatalf("index %d for job %d", idx, j.ID)
		}
		got = append(got, j.ID)
		return j.ID < 4 // stop early
	})
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Errorf("visited %v", got)
	}
}

func TestRemoveAll(t *testing.T) {
	var q FIFO
	jobs := make([]*workload.Job, 6)
	for i := range jobs {
		jobs[i] = job(int64(i + 1))
		q.Push(jobs[i])
	}
	q.Pop()                                                 // head advances past job 1
	q.RemoveAll([]*workload.Job{jobs[2], jobs[4], job(99)}) // 99 not present
	var got []int64
	q.ForEachWaiting(func(_ int, j *workload.Job) bool {
		got = append(got, j.ID)
		return true
	})
	want := []int64{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("remaining %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remaining %v, want %v", got, want)
		}
	}
	if q.Len() != 3 {
		t.Errorf("len %d", q.Len())
	}
	// Removing nothing is a no-op.
	q.RemoveAll(nil)
	if q.Len() != 3 {
		t.Error("RemoveAll(nil) changed the queue")
	}
	// Pop order preserved after removal.
	if q.Pop().ID != 2 || q.Pop().ID != 4 || q.Pop().ID != 6 {
		t.Error("pop order after RemoveAll")
	}
}

// TestRemoveAllMatchesReference drives random push/pop/remove sequences
// against a slice reference.
func TestRemoveAllMatchesReference(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		var q FIFO
		var ref []*workload.Job
		id := int64(0)
		for step := 0; step < 300; step++ {
			switch {
			case r.Intn(3) == 0 && len(ref) > 0:
				// Remove a random subset.
				var drop []*workload.Job
				var keep []*workload.Job
				for _, j := range ref {
					if r.Intn(4) == 0 {
						drop = append(drop, j)
					} else {
						keep = append(keep, j)
					}
				}
				q.RemoveAll(drop)
				ref = keep
			case r.Intn(2) == 0 && len(ref) > 0:
				if q.Pop() != ref[0] {
					return false
				}
				ref = ref[1:]
			default:
				id++
				j := job(id)
				q.Push(j)
				ref = append(ref, j)
			}
			if q.Len() != len(ref) {
				return false
			}
			i := 0
			ok := true
			q.ForEachWaiting(func(idx int, j *workload.Job) bool {
				if idx != i || j != ref[i] {
					ok = false
					return false
				}
				i++
				return true
			})
			if !ok || i != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEnableAllSorted(t *testing.T) {
	s := NewEnableSet(4)
	s.Disable(2)
	s.Disable(0)
	s.EnableAllSorted()
	got := s.Enabled()
	for i, q := range got {
		if q != i {
			t.Fatalf("sorted order %v", got)
		}
	}
	for q := 0; q < 4; q++ {
		if !s.IsEnabled(q) {
			t.Errorf("queue %d disabled after EnableAllSorted", q)
		}
	}
	if s.NumDisabled() != 0 {
		t.Error("disabled list not cleared")
	}
}

// TestRemoveAllLargeBatchClearsScratch exercises the map path (batches
// beyond removeAllScanLimit) and pins the scratch contract: the reusable
// map must be emptied after the pass so no job pointers outlive the call.
func TestRemoveAllLargeBatchClearsScratch(t *testing.T) {
	var q FIFO
	jobs := make([]*workload.Job, 2*removeAllScanLimit+4)
	for i := range jobs {
		jobs[i] = job(int64(i + 1))
		q.Push(jobs[i])
	}
	q.RemoveAll(jobs[:removeAllScanLimit+2]) // > scan limit: map path
	if q.Len() != len(jobs)-(removeAllScanLimit+2) {
		t.Fatalf("len %d after large-batch removal", q.Len())
	}
	if q.Head() != jobs[removeAllScanLimit+2] {
		t.Errorf("head %v after removal", q.Head())
	}
	if len(q.drop) != 0 {
		t.Errorf("scratch map retains %d job pointers after RemoveAll", len(q.drop))
	}
}

// TestRemoveAllSmallBatchZeroAlloc pins that scan-path removals — the
// common case in backfilling passes — allocate nothing.
func TestRemoveAllSmallBatchZeroAlloc(t *testing.T) {
	var q FIFO
	jobs := make([]*workload.Job, 64)
	for i := range jobs {
		jobs[i] = job(int64(i + 1))
	}
	batch := make([]*workload.Job, 0, removeAllScanLimit)
	cycle := func() {
		for _, j := range jobs {
			q.Push(j)
		}
		batch = append(batch[:0], jobs[3], jobs[17], jobs[40])
		q.RemoveAll(batch)
		for q.Len() > 0 {
			q.Pop()
		}
	}
	for i := 0; i < 10; i++ {
		cycle() // warm the backing slice
	}
	if a := testing.AllocsPerRun(100, cycle); a != 0 {
		t.Fatalf("small-batch RemoveAll cycle allocates %.2f per run, want 0", a)
	}
}
