package queues

import (
	"testing"

	"coalloc/internal/obs"
)

// TestEnableSetObserver checks that every disable and enable transition is
// reported exactly once, including the sorted-reset ablation path, and that
// redundant Disable calls on an already-disabled queue stay silent.
func TestEnableSetObserver(t *testing.T) {
	o := obs.New(nil)
	s := NewEnableSet(4)
	s.SetObserver(o)
	dis := o.Metrics.Counter("queues.disables")
	en := o.Metrics.Counter("queues.enables")

	s.Disable(2)
	s.Disable(0)
	s.Disable(2) // already disabled: no transition, no report
	if dis.Value() != 2 {
		t.Fatalf("disables = %d, want 2", dis.Value())
	}
	if en.Value() != 0 {
		t.Fatalf("enables = %d, want 0", en.Value())
	}

	s.EnableAll()
	if en.Value() != 2 {
		t.Fatalf("enables after EnableAll = %d, want 2", en.Value())
	}

	s.Disable(1)
	s.Disable(3)
	s.EnableAllSorted()
	if dis.Value() != 4 || en.Value() != 4 {
		t.Fatalf("after EnableAllSorted: disables/enables = %d/%d, want 4/4", dis.Value(), en.Value())
	}
	if !s.IsEnabled(1) || !s.IsEnabled(3) {
		t.Fatal("EnableAllSorted left queues disabled")
	}
}

// TestEnableSetNilObserver: an EnableSet without an observer (the default
// everywhere outside observed runs) must behave identically.
func TestEnableSetNilObserver(t *testing.T) {
	s := NewEnableSet(3)
	s.Disable(1)
	s.EnableAll()
	s.Disable(0)
	s.EnableAllSorted()
	for q := 0; q < 3; q++ {
		if !s.IsEnabled(q) {
			t.Fatalf("queue %d disabled after EnableAllSorted", q)
		}
	}
}
