// Package queues provides the FCFS job queues and the enable/disable
// bookkeeping the paper's multi-queue policies (LS, LP) are built from:
// a queue whose head job does not fit is disabled until the next job
// departs from the system, and at each departure queues are re-enabled in
// the order in which they were disabled.
package queues

import (
	"fmt"

	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

// FIFO is a first-come-first-served job queue. The zero value is an empty
// queue ready to use.
type FIFO struct {
	jobs []*workload.Job
	head int
	drop map[*workload.Job]bool // reusable RemoveAll scratch, cleared after use
}

// Push appends a job.
func (q *FIFO) Push(j *workload.Job) { q.jobs = append(q.jobs, j) }

// Head returns the oldest queued job, or nil when empty.
func (q *FIFO) Head() *workload.Job {
	if q.head >= len(q.jobs) {
		return nil
	}
	return q.jobs[q.head]
}

// Pop removes and returns the oldest queued job. It panics when empty.
func (q *FIFO) Pop() *workload.Job {
	if q.head >= len(q.jobs) {
		panic("queues: Pop from empty FIFO")
	}
	j := q.jobs[q.head]
	q.jobs[q.head] = nil // release for GC
	q.head++
	// Compact once the dead prefix dominates, keeping Pop amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.jobs) {
		n := copy(q.jobs, q.jobs[q.head:])
		for i := n; i < len(q.jobs); i++ {
			q.jobs[i] = nil
		}
		q.jobs = q.jobs[:n]
		q.head = 0
	}
	return j
}

// Len returns the number of queued jobs.
func (q *FIFO) Len() int { return len(q.jobs) - q.head }

// ForEachWaiting visits the queued jobs in FCFS order (index 0 = head).
// The callback returns false to stop early. The callback must not mutate
// the queue; collect and apply changes afterwards (see RemoveAll).
func (q *FIFO) ForEachWaiting(fn func(idx int, j *workload.Job) bool) {
	for i := q.head; i < len(q.jobs); i++ {
		if !fn(i-q.head, q.jobs[i]) {
			return
		}
	}
}

// removeAllScanLimit is the batch size up to which RemoveAll membership
// tests run as a linear identity scan. Backfilling passes start a handful
// of jobs at a time, so the scan covers the common case without touching
// the map at all.
const removeAllScanLimit = 8

// RemoveAll deletes the given jobs (compared by identity) from the queue,
// preserving the order of the remaining jobs. Jobs not present are
// ignored. Backfilling uses it to extract the candidates it started from
// the middle of the queue. RemoveAll allocates nothing in the steady
// state: small batches use a linear scan, larger ones a reusable map that
// is cleared — not dropped — after the pass, so no job pointers outlive
// the call.
func (q *FIFO) RemoveAll(jobs []*workload.Job) {
	if len(jobs) == 0 {
		return
	}
	kept := q.jobs[q.head:]
	out := kept[:0]
	if len(jobs) <= removeAllScanLimit {
		for _, j := range kept {
			found := false
			for _, d := range jobs {
				if d == j {
					found = true
					break
				}
			}
			if !found {
				out = append(out, j)
			}
		}
	} else {
		if q.drop == nil {
			q.drop = make(map[*workload.Job]bool, len(jobs))
		}
		for _, j := range jobs {
			q.drop[j] = true
		}
		for _, j := range kept {
			if !q.drop[j] {
				out = append(out, j)
			}
		}
		clear(q.drop)
	}
	for i := len(out); i < len(kept); i++ {
		kept[i] = nil
	}
	q.jobs = q.jobs[:q.head+len(out)]
}

// Empty reports whether the queue has no jobs.
func (q *FIFO) Empty() bool { return q.Len() == 0 }

// EnableSet tracks which of n queues are enabled, preserving the paper's
// ordering contract: the visit order is the enable order, a disabled queue
// leaves the order, and re-enabled queues rejoin it in the order they were
// disabled.
type EnableSet struct {
	enabled  []int // queue ids in visit order
	disabled []int // queue ids in the order they were disabled
	state    []bool
	n        int
	obs      *obs.Observer
}

// NewEnableSet returns an EnableSet over queues 0..n-1, all enabled, with
// initial visit order 0..n-1.
func NewEnableSet(n int) *EnableSet {
	if n <= 0 {
		panic(fmt.Sprintf("queues: NewEnableSet(%d)", n))
	}
	s := &EnableSet{state: make([]bool, n), n: n}
	for i := 0; i < n; i++ {
		s.enabled = append(s.enabled, i)
		s.state[i] = true
	}
	return s
}

// SetObserver attaches a run observer: every enable/disable transition is
// then counted and, when tracing, recorded with its virtual time. A nil
// observer detaches.
func (s *EnableSet) SetObserver(o *obs.Observer) { s.obs = o }

// Enabled returns the enabled queue ids in visit order. The slice is the
// set's internal state; callers must not retain it across mutations.
func (s *EnableSet) Enabled() []int { return s.enabled }

// IsEnabled reports whether queue q is enabled.
func (s *EnableSet) IsEnabled(q int) bool { return s.state[q] }

// Disable removes queue q from the visit order and records the disable
// order. Disabling a disabled queue is a no-op.
func (s *EnableSet) Disable(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("queues: Disable(%d) of %d queues", q, s.n))
	}
	if !s.state[q] {
		return
	}
	s.state[q] = false
	for i, id := range s.enabled {
		if id == q {
			s.enabled = append(s.enabled[:i], s.enabled[i+1:]...)
			break
		}
	}
	s.disabled = append(s.disabled, q)
	s.obs.QueueDisabled(q)
}

// EnableAll re-enables every disabled queue, appending them to the visit
// order in the order they were disabled ("at each job departure the queues
// are enabled in the same order in which they were disabled").
func (s *EnableSet) EnableAll() {
	for _, q := range s.disabled {
		s.state[q] = true
		s.enabled = append(s.enabled, q)
		s.obs.QueueEnabled(q)
	}
	s.disabled = s.disabled[:0]
}

// EnableAllSorted re-enables every queue and resets the visit order to
// 0..n-1, discarding the disable history. This is the ablation alternative
// to the paper's disable-order rule.
func (s *EnableSet) EnableAllSorted() {
	for _, q := range s.disabled {
		s.obs.QueueEnabled(q)
	}
	s.enabled = s.enabled[:0]
	s.disabled = s.disabled[:0]
	for q := 0; q < s.n; q++ {
		s.state[q] = true
		s.enabled = append(s.enabled, q)
	}
}

// AnyEnabled reports whether at least one queue is enabled.
func (s *EnableSet) AnyEnabled() bool { return len(s.enabled) > 0 }

// NumDisabled returns the number of disabled queues.
func (s *EnableSet) NumDisabled() int { return len(s.disabled) }
