// Package queues provides the FCFS job queues and the enable/disable
// bookkeeping the paper's multi-queue policies (LS, LP) are built from:
// a queue whose head job does not fit is disabled until the next job
// departs from the system, and at each departure queues are re-enabled in
// the order in which they were disabled.
package queues

import (
	"fmt"

	"coalloc/internal/obs"
	"coalloc/internal/workload"
)

// FIFO is a first-come-first-served job queue. The zero value is an empty
// queue ready to use.
type FIFO struct {
	jobs []*workload.Job
	head int
	drop map[*workload.Job]bool // reusable RemoveAll scratch, cleared after use
}

// Push appends a job.
func (q *FIFO) Push(j *workload.Job) { q.jobs = append(q.jobs, j) }

// Head returns the oldest queued job, or nil when empty.
func (q *FIFO) Head() *workload.Job {
	if q.head >= len(q.jobs) {
		return nil
	}
	return q.jobs[q.head]
}

// Pop removes and returns the oldest queued job. It panics when empty.
func (q *FIFO) Pop() *workload.Job {
	if q.head >= len(q.jobs) {
		panic("queues: Pop from empty FIFO")
	}
	j := q.jobs[q.head]
	q.jobs[q.head] = nil // release for GC
	q.head++
	// Compact once the dead prefix dominates, keeping Pop amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.jobs) {
		n := copy(q.jobs, q.jobs[q.head:])
		for i := n; i < len(q.jobs); i++ {
			q.jobs[i] = nil
		}
		q.jobs = q.jobs[:n]
		q.head = 0
	}
	return j
}

// Len returns the number of queued jobs.
func (q *FIFO) Len() int { return len(q.jobs) - q.head }

// ForEachWaiting visits the queued jobs in FCFS order (index 0 = head).
// The callback returns false to stop early. The callback must not mutate
// the queue; collect and apply changes afterwards (see RemoveAll).
func (q *FIFO) ForEachWaiting(fn func(idx int, j *workload.Job) bool) {
	for i := q.head; i < len(q.jobs); i++ {
		if !fn(i-q.head, q.jobs[i]) {
			return
		}
	}
}

// removeAllScanLimit is the batch size up to which RemoveAll membership
// tests run as a linear identity scan. Backfilling passes start a handful
// of jobs at a time, so the scan covers the common case without touching
// the map at all.
const removeAllScanLimit = 8

// RemoveAll deletes the given jobs (compared by identity) from the queue,
// preserving the order of the remaining jobs. Jobs not present are
// ignored. Backfilling uses it to extract the candidates it started from
// the middle of the queue. RemoveAll allocates nothing in the steady
// state: small batches use a linear scan, larger ones a reusable map that
// is cleared — not dropped — after the pass, so no job pointers outlive
// the call.
func (q *FIFO) RemoveAll(jobs []*workload.Job) {
	if len(jobs) == 0 {
		return
	}
	kept := q.jobs[q.head:]
	out := kept[:0]
	if len(jobs) <= removeAllScanLimit {
		for _, j := range kept {
			found := false
			for _, d := range jobs {
				if d == j {
					found = true
					break
				}
			}
			if !found {
				out = append(out, j)
			}
		}
	} else {
		if q.drop == nil {
			q.drop = make(map[*workload.Job]bool, len(jobs))
		}
		for _, j := range jobs {
			q.drop[j] = true
		}
		for _, j := range kept {
			if !q.drop[j] {
				out = append(out, j)
			}
		}
		clear(q.drop)
	}
	for i := len(out); i < len(kept); i++ {
		kept[i] = nil
	}
	q.jobs = q.jobs[:q.head+len(out)]
}

// Empty reports whether the queue has no jobs.
func (q *FIFO) Empty() bool { return q.Len() == 0 }

// EnableSet tracks which of n queues are enabled, preserving the paper's
// ordering contract: the visit order is the enable order, a disabled queue
// leaves the order, and re-enabled queues rejoin it in the order they were
// disabled.
//
// The visit order lives in an intrusive doubly linked list (index arrays
// over the queue ids plus one sentinel), so Disable — which sits on the
// LS/LP per-pass path, once per head miss — unlinks in O(1) instead of
// scanning and shifting an order slice. The flat []int view of the order
// is materialized lazily, only when Enabled is called after a mutation;
// the policies copy that view once per scheduling round, so the rebuild
// replaces a copy they paid for anyway.
type EnableSet struct {
	// next and prev chain the enabled queue ids in visit order through a
	// circular list anchored at sentinel index n. Entries of disabled
	// queues are meaningless until they are relinked.
	next, prev []int
	order      []int // cached visit order; rebuilt when stale
	stale      bool
	disabled   []int // queue ids in the order they were disabled
	state      []bool
	live       int // number of enabled queues
	n          int
	obs        *obs.Observer
}

// NewEnableSet returns an EnableSet over queues 0..n-1, all enabled, with
// initial visit order 0..n-1.
func NewEnableSet(n int) *EnableSet {
	if n <= 0 {
		panic(fmt.Sprintf("queues: NewEnableSet(%d)", n))
	}
	s := &EnableSet{
		next:  make([]int, n+1),
		prev:  make([]int, n+1),
		order: make([]int, 0, n),
		state: make([]bool, n),
		live:  n,
		n:     n,
	}
	for i := 0; i <= n; i++ {
		s.next[i] = (i + 1) % (n + 1)
		s.prev[i] = (i + n) % (n + 1)
	}
	for i := 0; i < n; i++ {
		s.order = append(s.order, i)
		s.state[i] = true
	}
	return s
}

// SetObserver attaches a run observer: every enable/disable transition is
// then counted and, when tracing, recorded with its virtual time. A nil
// observer detaches.
func (s *EnableSet) SetObserver(o *obs.Observer) { s.obs = o }

// Enabled returns the enabled queue ids in visit order. The slice is the
// set's internal state; callers must not retain it across mutations.
func (s *EnableSet) Enabled() []int {
	if s.stale {
		s.order = s.order[:0]
		for q := s.next[s.n]; q != s.n; q = s.next[q] {
			s.order = append(s.order, q)
		}
		s.stale = false
	}
	return s.order
}

// IsEnabled reports whether queue q is enabled.
func (s *EnableSet) IsEnabled(q int) bool { return s.state[q] }

// linkTail appends queue q to the end of the visit order.
func (s *EnableSet) linkTail(q int) {
	tail := s.prev[s.n]
	s.next[tail] = q
	s.prev[q] = tail
	s.next[q] = s.n
	s.prev[s.n] = q
}

// Disable removes queue q from the visit order and records the disable
// order. Disabling a disabled queue is a no-op.
func (s *EnableSet) Disable(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("queues: Disable(%d) of %d queues", q, s.n))
	}
	if !s.state[q] {
		return
	}
	s.state[q] = false
	s.next[s.prev[q]] = s.next[q]
	s.prev[s.next[q]] = s.prev[q]
	s.live--
	s.stale = true
	s.disabled = append(s.disabled, q)
	s.obs.QueueDisabled(q)
}

// EnableAll re-enables every disabled queue, appending them to the visit
// order in the order they were disabled ("at each job departure the queues
// are enabled in the same order in which they were disabled").
func (s *EnableSet) EnableAll() {
	if len(s.disabled) == 0 {
		return
	}
	for _, q := range s.disabled {
		s.state[q] = true
		s.linkTail(q)
		s.obs.QueueEnabled(q)
	}
	s.live += len(s.disabled)
	s.disabled = s.disabled[:0]
	s.stale = true
}

// EnableAllSorted re-enables every queue and resets the visit order to
// 0..n-1, discarding the disable history. This is the ablation alternative
// to the paper's disable-order rule.
func (s *EnableSet) EnableAllSorted() {
	for _, q := range s.disabled {
		s.obs.QueueEnabled(q)
	}
	s.disabled = s.disabled[:0]
	for i := 0; i <= s.n; i++ {
		s.next[i] = (i + 1) % (s.n + 1)
		s.prev[i] = (i + s.n) % (s.n + 1)
	}
	for q := 0; q < s.n; q++ {
		s.state[q] = true
	}
	s.live = s.n
	s.stale = true
}

// AnyEnabled reports whether at least one queue is enabled.
func (s *EnableSet) AnyEnabled() bool { return s.live > 0 }

// NumDisabled returns the number of disabled queues.
func (s *EnableSet) NumDisabled() int { return len(s.disabled) }
