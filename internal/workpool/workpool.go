// Package workpool provides one process-wide bounded worker pool shared by
// every layer of simulation parallelism — the utilization points of a
// sweep, the replications of a point — so that nested fan-out cannot
// multiply into GOMAXPROCS² goroutines, and a slow task in one layer never
// stalls unrelated work in another.
//
// The pool is a counting semaphore, not a fixed worker set: Do recruits a
// goroutine per free slot and the calling goroutine always participates in
// its own task list. That last property makes nesting deadlock-free — a
// caller that holds a slot while waiting for its children still executes
// those children itself, so progress never depends on slot availability.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// sem bounds the number of recruited worker goroutines process-wide.
var sem = make(chan struct{}, poolSize())

func poolSize() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Size returns the pool's slot count (the maximum recruited parallelism).
func Size() int { return cap(sem) }

// Do runs task(0) … task(n-1) and returns when all have completed. Tasks
// are claimed from a shared counter, so they start in index order and a
// slow task delays only itself. Parallelism is the number of free pool
// slots at call time plus the caller; with no free slots Do degrades to a
// plain serial loop on the caller's goroutine.
func Do(n int, task func(i int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	worker := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			task(int(i))
		}
	}
	var wg sync.WaitGroup
recruit:
	for k := 1; k < n; k++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				worker()
			}()
		default:
			break recruit // pool exhausted; the caller still makes progress
		}
	}
	worker()
	wg.Wait()
}
