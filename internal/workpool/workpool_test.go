package workpool

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsEveryTask(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		var ran atomic.Int64
		seen := make([]atomic.Bool, n+1)
		Do(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: task %d ran twice", n, i)
			}
			ran.Add(1)
		})
		if int(ran.Load()) != n {
			t.Errorf("n=%d: ran %d tasks", n, ran.Load())
		}
	}
}

// TestNestedDoCompletes exercises the deadlock-freedom property: every
// outer task runs an inner Do while the pool is saturated.
func TestNestedDoCompletes(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total atomic.Int64
		Do(4*Size(), func(i int) {
			Do(4, func(j int) {
				total.Add(1)
			})
		})
		if want := int64(16 * Size()); total.Load() != want {
			t.Errorf("nested Do ran %d inner tasks, want %d", total.Load(), want)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Do deadlocked")
	}
}

// TestThreeDeepNestedDoUnderSaturation is the sweep → replications →
// speculative-precision shape: three nested Do layers, started while the
// semaphore is already completely full, so no layer can ever recruit a
// worker. Every Do must degrade to a serial loop on its caller and the
// whole nest must still complete — the deadlock-freedom property the
// experiment scheduler, RunReplications, and RunUntilPrecision stack on
// top of each other.
func TestThreeDeepNestedDoUnderSaturation(t *testing.T) {
	// Saturate the pool: with every slot held, Do's recruit loop takes the
	// default branch immediately.
	for i := 0; i < cap(sem); i++ {
		sem <- struct{}{}
	}
	defer func() {
		for i := 0; i < cap(sem); i++ {
			<-sem
		}
	}()
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		Do(3, func(i int) { // sweep points
			Do(4, func(j int) { // replications per point
				Do(5, func(k int) { // speculative batch per replication
					total.Add(1)
				})
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("three-deep nested Do deadlocked on a saturated pool")
	}
	if total.Load() != 3*4*5 {
		t.Errorf("ran %d leaf tasks, want %d", total.Load(), 3*4*5)
	}
}

// TestThreeDeepNestedDoConcurrent runs the same three-layer nest with the
// pool free and many outer tasks, checking the task accounting stays exact
// when recruitment actually happens at every layer.
func TestThreeDeepNestedDoConcurrent(t *testing.T) {
	outer := 4 * Size()
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		Do(outer, func(i int) {
			Do(3, func(j int) {
				Do(2, func(k int) {
					total.Add(1)
				})
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("three-deep nested Do deadlocked")
	}
	if want := int64(outer * 3 * 2); total.Load() != want {
		t.Errorf("ran %d leaf tasks, want %d", total.Load(), want)
	}
}

// TestSlowTaskDoesNotStallOthers starts one slow task and checks the
// remaining tasks finish long before it.
func TestSlowTaskDoesNotStallOthers(t *testing.T) {
	if Size() < 2 {
		t.Skip("needs >= 2 pool slots")
	}
	release := make(chan struct{})
	var fastDone atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		Do(8, func(i int) {
			if i == 0 {
				<-release
				return
			}
			fastDone.Add(1)
		})
	}()
	deadline := time.After(10 * time.Second)
	for fastDone.Load() != 7 {
		select {
		case <-deadline:
			t.Fatal("fast tasks stalled behind the slow task")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	<-done
}
