package core

import (
	"bytes"
	"strings"
	"testing"

	"coalloc/internal/dectrace"
	"coalloc/internal/faults"
	"coalloc/internal/obs"
)

// decTestConfig is one small open-system point for the decision-trace
// guardrails.
func decTestConfig(t *testing.T, policy string) Config {
	t.Helper()
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       policy,
		WarmupJobs:   200,
		MeasureJobs:  1500,
		Seed:         11,
		ArrivalRate:  testSpecRate(t, 0.6),
	}
	if policy == "SC" || policy == "SC-EASY" || policy == "SC-CONS" {
		cfg.ClusterSizes = []int{128}
		cfg.Spec = testSpec(t, 16, 1)
	}
	return cfg
}

// stripRegret zeroes the decision-trace aggregates so a traced result can
// be compared field-for-field against an untraced one.
func stripRegret(r Result) Result {
	r.Decisions = 0
	r.RegretTotal = 0
	r.RegretMax = 0
	r.RegretDecisions = 0
	return r
}

// TestDecisionTracingLeavesRunBitIdentical is the zero-interference
// guardrail: enabling decision tracing must not change a single scheduling
// outcome — the traced run's Result, minus the regret aggregates
// themselves, is bit-identical to the untraced run, across the policy and
// fault matrix. The tracer only reads (placements probe into its own
// scratch) and draws from no random stream, so any divergence here means
// a probe mutated simulation state.
func TestDecisionTracingLeavesRunBitIdentical(t *testing.T) {
	faultSpecs := []*faults.Spec{nil, {MTBF: 1500, MTTR: 600}}
	for _, policy := range []string{"GS", "LS", "LP", "GS-SPF", "GS-EASY", "GS-CONS", "SC"} {
		for fi, fs := range faultSpecs {
			cfg := decTestConfig(t, policy)
			cfg.Faults = fs
			off, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s faults=%d off: %v", policy, fi, err)
			}
			cfg.Decisions = &dectrace.Options{}
			on, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s faults=%d on: %v", policy, fi, err)
			}
			if on.Decisions == 0 {
				t.Errorf("%s faults=%d: traced run recorded no decisions", policy, fi)
			}
			if resultKey(off) != resultKey(stripRegret(on)) {
				t.Errorf("%s faults=%d: decision tracing changed the run:\noff %s\non  %s",
					policy, fi, resultKey(off), resultKey(stripRegret(on)))
			}
		}
	}
}

// TestDecisionTracingMergesAcrossReplications covers the replicated path:
// tracing must not perturb the merged result either, and the regret
// aggregates must actually fold across replications.
func TestDecisionTracingMergesAcrossReplications(t *testing.T) {
	cfg := decTestConfig(t, "LS")
	off, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Decisions = &dectrace.Options{}
	on, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(off) != resultKey(stripRegret(on)) {
		t.Errorf("replicated decision tracing changed the run:\noff %s\non  %s",
			resultKey(off), resultKey(stripRegret(on)))
	}
	single, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.Decisions <= single.Decisions {
		t.Errorf("merged Decisions %d not folded over replications (single run: %d)",
			on.Decisions, single.Decisions)
	}
	if on.RegretMax < single.RegretMax {
		t.Errorf("merged RegretMax %g below the first replication's %g",
			on.RegretMax, single.RegretMax)
	}
}

// TestDecisionRecordsByteIdenticalPerSeed pins the determinism contract of
// the JSONL sink: two same-seed runs must produce byte-identical traces,
// decision records included.
func TestDecisionRecordsByteIdenticalPerSeed(t *testing.T) {
	for _, policy := range []string{"LS", "LP", "GS-EASY", "GS-CONS"} {
		run := func() string {
			var buf bytes.Buffer
			cfg := decTestConfig(t, policy)
			cfg.Decisions = &dectrace.Options{}
			cfg.Observer = obs.New(&buf)
			if _, err := Run(cfg); err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			if err := cfg.Observer.Close(); err != nil {
				t.Fatalf("%s close: %v", policy, err)
			}
			return buf.String()
		}
		first, second := run(), run()
		if first != second {
			t.Errorf("%s: decision trace differs between same-seed runs", policy)
		}
		if !strings.Contains(first, `"ev":"decision"`) {
			t.Errorf("%s: trace has no decision records", policy)
		}
	}
}

// TestDecisionTracingAddsOnlyDecisionRecords: the rest of the trace must
// not move when tracing turns on — removing the decision lines from a
// traced run's JSONL yields byte-for-byte the untraced run's JSONL.
func TestDecisionTracingAddsOnlyDecisionRecords(t *testing.T) {
	run := func(decisions bool) string {
		var buf bytes.Buffer
		cfg := decTestConfig(t, "GS-CONS")
		if decisions {
			cfg.Decisions = &dectrace.Options{}
		}
		cfg.Observer = obs.New(&buf)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Observer.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	off := run(false)
	on := run(true)
	var kept []string
	for _, line := range strings.SplitAfter(on, "\n") {
		if strings.Contains(line, `"ev":"decision"`) {
			continue
		}
		kept = append(kept, line)
	}
	if filtered := strings.Join(kept, ""); filtered != off {
		t.Error("decision tracing perturbed non-decision trace records")
	}
	if off == on {
		t.Error("traced run emitted no decision records")
	}
}
