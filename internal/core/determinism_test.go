package core

import (
	"fmt"
	"testing"
)

// resultKey renders a Result for equality checks. %v prints the shortest
// round-trippable representation of every float64, so equal strings mean
// bit-identical values — and NaN == NaN, which plain struct comparison
// would reject.
func resultKey(r Result) string { return fmt.Sprintf("%+v", r) }

// TestRunReplicationsDeterministic is the guardrail for the parallel
// replication runner: gathering the replications concurrently must produce
// exactly the result of running them one by one in seed order, run after
// run. Any scheduling-order dependence in the gather/merge split shows up
// here as a flaky mismatch.
func TestRunReplicationsDeterministic(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "GS",
		WarmupJobs:   200,
		MeasureJobs:  2000,
		Seed:         7,
		ArrivalRate:  testSpecRate(t, 0.5),
	}
	const n = 3
	par, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	// The serial reference: the same per-replication runs, one at a time,
	// merged in seed order — what RunReplications did before it went
	// parallel.
	serial := make([]Result, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.applyDefaults()
		c.Seed = cfg.Seed + uint64(i)*1000003
		serial[i], err = Run(c)
		if err != nil {
			t.Fatal(err)
		}
	}
	want := mergeReplications(serial)
	if resultKey(par) != resultKey(want) {
		t.Errorf("parallel replications diverge from serial:\nparallel %s\nserial   %s",
			resultKey(par), resultKey(want))
	}
	// And the parallel path must be repeatable against itself.
	again, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(par) != resultKey(again) {
		t.Errorf("parallel replications not repeatable:\nfirst  %s\nsecond %s",
			resultKey(par), resultKey(again))
	}
}
