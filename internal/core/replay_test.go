package core

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"coalloc/internal/dastrace"
	"coalloc/internal/workload"
)

func replayRecords(n int) []dastrace.Record {
	recs := dastrace.Generate(dastrace.GenConfig{NumJobs: n, Seed: 42})
	return recs
}

func TestReplayBasics(t *testing.T) {
	res, err := Replay(ReplayConfig{
		ClusterSizes:    []int{32, 32, 32, 32},
		Records:         replayRecords(3000),
		Policy:          "LS",
		ComponentLimit:  16,
		ExtensionFactor: workload.DefaultExtensionFactor,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 3000 {
		t.Errorf("replayed %d jobs", res.Jobs)
	}
	if res.MeanResponse <= 0 || res.Makespan <= 0 {
		t.Errorf("response %g makespan %g", res.MeanResponse, res.Makespan)
	}
	if res.GrossUtilization <= 0 || res.GrossUtilization > 1 {
		t.Errorf("gross utilization %g", res.GrossUtilization)
	}
	if res.NetUtilization >= res.GrossUtilization {
		t.Errorf("net %g should be below gross %g", res.NetUtilization, res.GrossUtilization)
	}
	if res.MedianResponse > res.P95Response {
		t.Errorf("median %g above p95 %g", res.MedianResponse, res.P95Response)
	}
	if res.MeanSlowdown < 1 {
		t.Errorf("mean slowdown %g below 1", res.MeanSlowdown)
	}
}

func TestReplayDeterministic(t *testing.T) {
	cfg := ReplayConfig{
		ClusterSizes:    []int{32, 32, 32, 32},
		Records:         replayRecords(1000),
		Policy:          "LP",
		ComponentLimit:  16,
		ExtensionFactor: 1.25,
		Seed:            7,
	}
	a, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse || a.Makespan != b.Makespan {
		t.Error("replays with identical inputs diverged")
	}
}

func TestReplayLoadFactorRaisesUtilization(t *testing.T) {
	base := ReplayConfig{
		ClusterSizes:    []int{32, 32, 32, 32},
		Records:         replayRecords(3000),
		Policy:          "GS",
		ComponentLimit:  16,
		ExtensionFactor: 1.25,
		Seed:            1,
	}
	slow, err := Replay(base)
	if err != nil {
		t.Fatal(err)
	}
	fast := base
	fast.LoadFactor = 8
	fastRes, err := Replay(fast)
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.GrossUtilization <= slow.GrossUtilization {
		t.Errorf("8x load compression: utilization %g -> %g should rise",
			slow.GrossUtilization, fastRes.GrossUtilization)
	}
	if fastRes.MeanResponse <= slow.MeanResponse {
		t.Errorf("8x load compression: response %g -> %g should rise",
			slow.MeanResponse, fastRes.MeanResponse)
	}
	if fastRes.Makespan >= slow.Makespan {
		t.Error("compressed replay should finish sooner")
	}
}

func TestReplayOutOfOrderRecords(t *testing.T) {
	recs := replayRecords(500)
	// Shuffle by reversing; Replay must sort by submit time.
	rev := make([]dastrace.Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	a, err := Replay(ReplayConfig{
		ClusterSizes: []int{32, 32, 32, 32}, Records: recs,
		Policy: "GS", ComponentLimit: 16, ExtensionFactor: 1.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(ReplayConfig{
		ClusterSizes: []int{32, 32, 32, 32}, Records: rev,
		Policy: "GS", ComponentLimit: 16, ExtensionFactor: 1.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse {
		t.Error("record order affected the replay")
	}
}

func TestReplayValidation(t *testing.T) {
	good := ReplayConfig{
		ClusterSizes: []int{32, 32, 32, 32}, Records: replayRecords(10),
		Policy: "GS", ComponentLimit: 16, ExtensionFactor: 1.25,
	}
	bad := []func(*ReplayConfig){
		func(c *ReplayConfig) { c.ClusterSizes = nil },
		func(c *ReplayConfig) { c.Records = nil },
		func(c *ReplayConfig) { c.Policy = "XX" },
		func(c *ReplayConfig) { c.ComponentLimit = 0 },
		func(c *ReplayConfig) { c.ExtensionFactor = 0.5 },
		func(c *ReplayConfig) { c.LoadFactor = -1 },
		func(c *ReplayConfig) {
			c.Records = []dastrace.Record{{ID: 1, Size: 500, Service: 10}}
		},
		func(c *ReplayConfig) {
			c.Records = []dastrace.Record{{ID: 1, Size: 0, Service: 10}}
		},
	}
	for i, f := range bad {
		c := good
		f(&c)
		if _, err := Replay(c); err == nil {
			t.Errorf("bad replay config %d accepted", i)
		}
	}
}

func TestReplayStuckJobDetected(t *testing.T) {
	// A single-component job of 33 can never fit on a 32-processor
	// cluster under SC with capacity 33 shared across... make capacity
	// 40 in one cluster but replay on 4x32 with limit 40: the job keeps
	// one 33-wide component that fits no cluster.
	recs := []dastrace.Record{{ID: 1, Submit: 0, Size: 33, Service: 10}}
	_, err := Replay(ReplayConfig{
		ClusterSizes: []int{32, 32, 32, 32}, Records: recs,
		Policy: "GS", ComponentLimit: 40, ExtensionFactor: 1.25,
	})
	if err == nil {
		t.Error("unschedulable job not reported")
	}
}

func TestReplaySCEquivalentWorkloads(t *testing.T) {
	// SC replay of total requests: mean response must be finite and the
	// utilization equals gross (no extension for single components).
	res, err := Replay(ReplayConfig{
		ClusterSizes: []int{128}, Records: replayRecords(2000),
		Policy: "SC", ComponentLimit: 128, ExtensionFactor: 1.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GrossUtilization-res.NetUtilization) > 1e-12 {
		t.Errorf("SC gross %g != net %g", res.GrossUtilization, res.NetUtilization)
	}
}

func TestReplayPoliciesComparable(t *testing.T) {
	// At a compressed load, LS should beat GS on the same trace (the
	// paper's headline claim, replayed rather than sampled).
	recs := replayRecords(4000)
	get := func(policy string) ReplayResult {
		res, err := Replay(ReplayConfig{
			ClusterSizes: []int{32, 32, 32, 32}, Records: recs,
			Policy: policy, ComponentLimit: 16, ExtensionFactor: 1.25,
			LoadFactor: 6, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gs, ls := get("GS"), get("LS")
	if ls.MeanResponse >= gs.MeanResponse {
		t.Errorf("LS %g should beat GS %g on the compressed trace", ls.MeanResponse, gs.MeanResponse)
	}
}

func TestReplayScheduleExport(t *testing.T) {
	var buf bytes.Buffer
	res, err := Replay(ReplayConfig{
		ClusterSizes:    []int{32, 32, 32, 32},
		Records:         replayRecords(200),
		Policy:          "LS",
		ComponentLimit:  16,
		ExtensionFactor: 1.25,
		ScheduleWriter:  &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != res.Jobs+1 {
		t.Fatalf("%d schedule lines for %d jobs", len(lines), res.Jobs)
	}
	if lines[0] != "id,size,components,arrival,start,finish,clusters" {
		t.Errorf("header %q", lines[0])
	}
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 7 {
			t.Fatalf("schedule row %q", line)
		}
		arrival, err1 := strconv.ParseFloat(fields[3], 64)
		start, err2 := strconv.ParseFloat(fields[4], 64)
		finish, err3 := strconv.ParseFloat(fields[5], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("unparsable row %q", line)
		}
		if !(arrival <= start && start < finish) {
			t.Fatalf("time ordering violated in %q", line)
		}
	}
}
