package core

import (
	"fmt"

	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/obs"
	"coalloc/internal/policies"
	"coalloc/internal/rng"
	"coalloc/internal/sim"
	"coalloc/internal/stats"
	"coalloc/internal/workload"
)

// BacklogConfig describes a closed-system run that measures the maximal
// utilization of a policy, following Section 4 of the paper: "we maintain
// a constant backlog and observe the time-average fraction of processors
// being busy, which yields the maximal gross utilization".
type BacklogConfig struct {
	// ClusterSizes, Spec, Policy, Fit, QueueWeights: as in Config.
	ClusterSizes []int
	Spec         workload.Spec
	Policy       string
	Fit          cluster.Fit
	QueueWeights []float64
	// Lookahead is the conservative-backfilling reservation bound (as in
	// Config.Lookahead; 0 = default).
	Lookahead int
	// Backlog is the number of jobs kept waiting at all times. Default 64.
	Backlog int
	// WarmupTime and MeasureTime bound the run in virtual seconds.
	// Defaults: 50_000 and 500_000.
	WarmupTime, MeasureTime float64
	// Seed selects the random streams.
	Seed uint64
}

func (c *BacklogConfig) applyDefaults() {
	if c.Backlog == 0 {
		c.Backlog = 64
	}
	if c.WarmupTime == 0 {
		c.WarmupTime = 50_000
	}
	if c.MeasureTime == 0 {
		c.MeasureTime = 500_000
	}
}

// BacklogResult reports the maximal utilizations measured under constant
// backlog.
type BacklogResult struct {
	Policy string
	// MaxGrossUtilization is the time-average fraction of busy
	// processors, counting extended service times.
	MaxGrossUtilization float64
	// MaxNetUtilization removes the wide-area communication share using
	// the workload's gross/net ratio, as the paper does ("the maximal
	// net utilizations are then computed with the ratios between the
	// two types of utilization").
	MaxNetUtilization float64
	// Throughput is the measured departure rate in jobs per second.
	Throughput float64
	// Jobs is the number of departures in the measurement window.
	Jobs int
}

// RunBacklog executes a constant-backlog simulation.
func RunBacklog(cfg BacklogConfig) (BacklogResult, error) {
	cfg.applyDefaults()
	if len(cfg.ClusterSizes) == 0 {
		return BacklogResult{}, fmt.Errorf("core: no clusters configured")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return BacklogResult{}, err
	}
	if cfg.Spec.Clusters != len(cfg.ClusterSizes) {
		return BacklogResult{}, fmt.Errorf("core: spec splits over %d clusters but system has %d",
			cfg.Spec.Clusters, len(cfg.ClusterSizes))
	}
	if cfg.Backlog <= 0 {
		return BacklogResult{}, fmt.Errorf("core: backlog %d must be positive", cfg.Backlog)
	}
	pol, err := buildPolicy(cfg.Policy, len(cfg.ClusterSizes), cfg.Fit, cfg.Lookahead)
	if err != nil {
		return BacklogResult{}, err
	}

	src := rng.NewSource(cfg.Seed)
	sizeStream := src.Stream("backlog/sizes")
	svcStream := src.Stream("backlog/services")
	routeStream := src.Stream("backlog/routing")

	cdf := routingCDF(cfg.QueueWeights, len(cfg.ClusterSizes))

	eng := sim.New()
	m := cluster.New(cfg.ClusterSizes)
	s := &backlogSim{
		eng:     eng,
		m:       m,
		ext:     cfg.Spec.ExtensionFactor,
		scratch: policies.NewScratch(len(cfg.ClusterSizes)),
	}
	eng.SetHandler(s.handleEvent)
	s.busy.StartAt(0, 0)

	var nextID int64
	route := func() int {
		if len(cdf) == 1 {
			return 0
		}
		u := routeStream.Float64()
		for i, c := range cdf {
			if u < c {
				return i
			}
		}
		return len(cdf) - 1
	}
	topUp := func() {
		for pol.Queued() < cfg.Backlog {
			j := cfg.Spec.Sample(sizeStream, svcStream)
			nextID++
			j.ID = nextID
			j.ArrivalTime = eng.Now()
			j.Queue = route()
			pol.Submit(s, j)
		}
	}
	s.pol = pol
	s.onDepart = topUp

	topUp()
	eng.RunUntil(cfg.WarmupTime)
	s.busy.StartAt(eng.Now(), float64(m.Busy()))
	s.departures = 0
	eng.RunUntil(cfg.WarmupTime + cfg.MeasureTime)

	window := eng.Now() - cfg.WarmupTime
	capacity := float64(m.Capacity())
	gross := s.busy.Average(eng.Now()) / capacity
	return BacklogResult{
		Policy:              cfg.Policy,
		MaxGrossUtilization: gross,
		MaxNetUtilization:   gross / cfg.Spec.GrossNetRatio(),
		Throughput:          float64(s.departures) / window,
		Jobs:                s.departures,
	}, nil
}

// backlogSim is the policies.Ctx for constant-backlog runs.
type backlogSim struct {
	eng        *sim.Engine
	m          *cluster.Multicluster
	pol        policies.Policy
	busy       stats.TimeWeighted
	scratch    *policies.Scratch
	departures int
	onDepart   func()
	ext        float64
}

var _ policies.Ctx = (*backlogSim)(nil)

func (s *backlogSim) Cluster() *cluster.Multicluster { return s.m }

func (s *backlogSim) Now() float64 { return s.eng.Now() }

// Obs returns nil: backlog runs are short calibration sweeps with no
// observability wiring.
func (s *backlogSim) Obs() *obs.Observer { return nil }

// Dec returns nil: backlog runs have no decision tracing either.
func (s *backlogSim) Dec() *dectrace.Tracer { return nil }

func (s *backlogSim) Scratch() *policies.Scratch { return s.scratch }

func (s *backlogSim) Dispatch(j *workload.Job, placement []int) {
	now := s.eng.Now()
	j.StartTime = now
	// placement may point into shared pass scratch; the job keeps a
	// stable copy for the release on departure.
	j.Placement = append([]int(nil), placement...)
	placement = j.Placement
	if j.Type == workload.Flexible {
		j.FinalizeFlexible(j.Components, s.ext)
	}
	s.m.Alloc(j.Components, placement)
	s.busy.Set(now, float64(s.m.Busy()))
	s.eng.ScheduleAfter(j.ExtendedServiceTime, evDeparture, j)
}

// handleEvent processes the typed departure events of a backlog run.
func (s *backlogSim) handleEvent(kind int32, payload any) {
	j := payload.(*workload.Job)
	t := s.eng.Now()
	j.FinishTime = t
	s.m.Release(j.Components, j.Placement)
	s.busy.Set(t, float64(s.m.Busy()))
	s.departures++
	s.pol.JobDeparted(s, j)
	s.onDepart()
}
