package core

import (
	"fmt"
	"math"
	"sync"

	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/dist"
	"coalloc/internal/obs"
	"coalloc/internal/policies"
	"coalloc/internal/rng"
	"coalloc/internal/sim"
	"coalloc/internal/stats"
	"coalloc/internal/workload"
	"coalloc/internal/workpool"
)

// Typed event kinds for the open-system hot loop. Arrivals and departures
// go through the engine's typed-payload path (one handler, job pointer as
// payload) so the simulation schedules no per-event closures.
const (
	evArrival int32 = iota
	evDeparture
	// Fault-injection events (scheduled only when Config.Faults is
	// enabled). The node events carry the cluster index as payload —
	// converting a small int to an interface is allocation-free.
	evNodeFail
	evNodeRepair
	evResubmit
)

// arenaPool recycles job arenas across runs: a finished run resets its
// arena (retaining the consolidated blocks) and returns it, so steady
// replication loops reuse warmed-up block storage instead of growing a
// fresh arena each time. Pooling is safe because Reset invalidates every
// handle and Job/Ints zero their slots before handing them out — a
// recycled arena is observationally identical to a fresh one.
var arenaPool = sync.Pool{New: func() any { return workload.NewArena() }}

// simulation implements policies.Ctx and carries one run's state.
type simulation struct {
	eng     *sim.Engine
	m       *cluster.Multicluster
	pol     policies.Policy
	spec    workload.Spec
	obs     *obs.Observer
	dec     *dectrace.Tracer
	fit     cluster.Fit
	arena   *workload.Arena
	scratch *policies.Scratch

	// cursor, when non-nil, replays a shared workload trace instead of
	// sampling jobs live; traceIdx is the next entry to consume.
	cursor   *traceCursor
	traceIdx int

	arrivalRate float64
	reqType     workload.RequestType
	arrivals    *rng.Stream
	sizeStream  *rng.Stream
	svcStream   *rng.Stream
	routeStream *rng.Stream
	placeStream *rng.Stream
	routeCDF    []float64

	nextID int64

	warmupJobs  int
	measureJobs int
	finished    int
	measuring   bool

	// Saturation cutoff (Config.SaturationCutoff). The monitor samples
	// the backlog at fixed measured-departure checkpoints — a pure read
	// of scheduler state keyed to the job count, never to wall clock —
	// and stops the engine once growth provably exceeds the end-of-run
	// saturation heuristic. See cutoffDiverged for the firing rule.
	cutoffOn     bool
	cutoffStride int64 // checkpoint spacing in measured departures
	cutoffNext   int64 // next checkpoint (respAll.N() value)
	cutoffPrev   int   // backlog growth at the previous checkpoint
	cutoffFired  bool

	busy        stats.TimeWeighted
	busyPer     []stats.TimeWeighted
	inSystem    stats.TimeWeighted
	respAll     stats.Welford
	respLocal   stats.Welford
	respGlobal  stats.Welford
	respByClass []stats.Welford
	slowdown    stats.Welford
	quantiles   *stats.QuantileSet
	batch       *stats.BatchMeans
	grossWork   float64
	netWork     float64
	measureFrom float64
	queueAtWarm int

	// Fault injection (nil / unused unless Config.Faults is enabled; the
	// fault-free hot path pays one nil compare per departure).
	flt      *faultState //detlint:ignore eventretain the registry inside drops each handle when its departure fires or is cancelled (see faultState)
	faultPol policies.FaultAware
	availCap stats.TimeWeighted
}

var _ policies.Ctx = (*simulation)(nil)

// Cluster returns the multicluster state (policies.Ctx).
func (s *simulation) Cluster() *cluster.Multicluster { return s.m }

// Now returns the current virtual time (policies.Ctx).
func (s *simulation) Now() float64 { return s.eng.Now() }

// Obs returns the run observer, nil when observability is off
// (policies.Ctx).
func (s *simulation) Obs() *obs.Observer { return s.obs }

// Dec returns the run's decision tracer, nil when decision tracing is off
// (policies.Ctx).
func (s *simulation) Dec() *dectrace.Tracer { return s.dec }

// Scratch returns the run's shared scheduling buffers (policies.Ctx).
func (s *simulation) Scratch() *policies.Scratch { return s.scratch }

// Dispatch allocates the placement and schedules the departure
// (policies.Ctx). The placement argument may live in pass scratch, so the
// stable per-job copy is carved from the run's arena.
//
//detlint:noalloc
func (s *simulation) Dispatch(j *workload.Job, placement []int) {
	now := s.eng.Now()
	j.StartTime = now
	j.Placement = s.arena.CopyInts(placement)
	placement = j.Placement
	if j.Type == workload.Flexible {
		// The scheduler chose the split; the extension factor applies
		// only if it actually spans clusters.
		j.FinalizeFlexible(j.Components, s.spec.ExtensionFactor)
	}
	// The tracer must see the pre-allocation idle vector — the exact state
	// the policy placed against — so the hook precedes Alloc. Nil-safe:
	// without -decisions this is one pointer compare.
	s.dec.Dispatch(now, j, s.m, s.fit, placement)
	s.m.Alloc(j.Components, placement)
	s.busy.Set(now, float64(s.m.Busy()))
	for i, c := range placement {
		s.busyPer[c].Add(now, float64(j.Components[i]))
	}
	// A checkpointed resubmission runs only its remainder and charges the
	// utilization integrals pro rata. The branch keeps the fault-free path
	// literally unchanged — Checkpointed is only ever nonzero when the
	// checkpoint fault model aborted this job past its first checkpoint.
	svc, net := j.ExtendedServiceTime, j.ServiceTime
	if j.Checkpointed > 0 {
		svc = j.RemainingTime()
		net = j.ServiceTime * (svc / j.ExtendedServiceTime)
	}
	if s.measuring {
		s.grossWork += float64(j.TotalSize) * svc
		s.netWork += float64(j.TotalSize) * net
	}
	s.obs.Start(now, j.ID, now-j.ArrivalTime, placement)
	ev := s.eng.ScheduleAfter(svc, evDeparture, j)
	if s.flt != nil {
		s.flt.track(j, ev)
	}
}

// handleEvent dispatches the typed events of the open-system loop.
func (s *simulation) handleEvent(kind int32, payload any) {
	switch kind {
	case evArrival:
		s.arrive()
	case evDeparture:
		s.depart(payload.(*workload.Job))
	case evNodeFail:
		s.nodeFail(payload.(int))
	case evNodeRepair:
		s.nodeRepair(payload.(int))
	case evResubmit:
		s.resubmit(payload.(*workload.Job))
	default:
		panic(fmt.Sprintf("core: unknown event kind %d", kind))
	}
}

// depart releases the job's processors, records metrics, and gives the
// policy a scheduling opportunity.
func (s *simulation) depart(j *workload.Job) {
	now := s.eng.Now()
	j.FinishTime = now
	if s.flt != nil {
		s.flt.untrack(j)
	}
	s.obs.Departure(now, j.ID, j.ResponseTime())
	s.m.Release(j.Components, j.Placement)
	s.busy.Set(now, float64(s.m.Busy()))
	for i, c := range j.Placement {
		s.busyPer[c].Add(now, -float64(j.Components[i]))
	}
	s.inSystem.Add(now, -1)
	s.finished++
	if s.measuring {
		r := j.ResponseTime()
		s.respAll.Add(r)
		s.batch.Add(r)
		s.quantiles.Add(r)
		s.respByClass[SizeClass(j.TotalSize)].Add(r)
		s.slowdown.Add(boundedSlowdown(r, j.ServiceTime))
		if j.Queue == workload.GlobalQueue {
			s.respGlobal.Add(r)
		} else {
			s.respLocal.Add(r)
		}
	}
	if !s.measuring && s.finished >= s.warmupJobs {
		s.startMeasuring(now)
	} else if s.measuring && s.respAll.N() >= int64(s.measureJobs) {
		s.eng.Stop()
		return
	} else if s.cutoffOn && s.measuring && s.respAll.N() >= s.cutoffNext {
		s.cutoffNext += s.cutoffStride
		if s.cutoffDiverged() {
			s.cutoffFired = true
			s.eng.Stop()
			return
		}
	}
	s.pol.JobDeparted(s, j)
	if s.obs.Enabled() {
		s.obs.QueueDepth(s.pol.Queued())
	}
}

// cutoffThreshold is the backlog growth at which a full-horizon run is
// declared saturated: the end-of-run heuristic in Run fires when growth
// exceeds both MeasureJobs/20 and 50, i.e. beyond max(MeasureJobs/20, 50).
func cutoffThreshold(measureJobs int) int {
	t := measureJobs / 20
	if t < 50 {
		t = 50
	}
	return t
}

// cutoffDiverged is the divergence monitor's firing rule, evaluated at
// checkpoints every cutoffStride measured departures: the backlog growth
// since warmup exceeds twice the end-of-run saturation threshold AND has
// not decreased since the previous checkpoint. A stable operating point
// cannot sustain that — the threshold sits at 5% of the measured horizon,
// far above steady-state queue excursions — so the monitor only ever
// fires on runs the full horizon would flag as saturated anyway (a fired
// run's growth already exceeds both legs of the end-of-run heuristic).
// The check reads scheduler state only: on the no-fire path the run's
// event sequence, stream draws, and statistics are untouched, which is
// the bit-identity guarantee for non-saturated runs.
func (s *simulation) cutoffDiverged() bool {
	queued := s.pol.Queued()
	if s.flt != nil {
		// Match the FinalQueue composition: aborted jobs waiting out
		// their backoff are backlog too.
		queued += s.flt.killedPending
	}
	growth := queued - s.queueAtWarm
	diverged := growth > 2*cutoffThreshold(s.measureJobs) && growth >= s.cutoffPrev
	s.cutoffPrev = growth
	return diverged
}

// startMeasuring resets all accumulators at the end of the warmup period.
func (s *simulation) startMeasuring(now float64) {
	s.measuring = true
	s.measureFrom = now
	s.busy.StartAt(now, float64(s.m.Busy()))
	for c := range s.busyPer {
		s.busyPer[c].StartAt(now, s.busyPer[c].Level())
	}
	s.inSystem.StartAt(now, s.inSystem.Level())
	s.respAll.Reset()
	s.respLocal.Reset()
	s.respGlobal.Reset()
	for i := range s.respByClass {
		s.respByClass[i].Reset()
	}
	s.slowdown.Reset()
	s.quantiles.Reset()
	s.grossWork, s.netWork = 0, 0
	s.queueAtWarm = s.pol.Queued()
	if s.flt != nil {
		s.availCap.StartAt(now, s.availCap.Level())
	}
}

// routeQueue samples a local queue index from the routing distribution.
func (s *simulation) routeQueue() int {
	if len(s.routeCDF) == 1 {
		return 0
	}
	u := s.routeStream.Float64()
	for i, c := range s.routeCDF {
		if u < c {
			return i
		}
	}
	return len(s.routeCDF) - 1
}

// arrive creates the next job, submits it, and schedules the following
// arrival. With a shared trace attached, the job's draws come from the
// trace record instead of the live streams; the job itself is still built
// in this run's arena.
func (s *simulation) arrive() {
	now := s.eng.Now()
	var j *workload.Job
	if s.cursor != nil {
		_, total, svc, queue := s.cursor.at(s.traceIdx)
		j = s.spec.JobFromDraws(s.arena, total, svc)
		j.Queue = queue
		s.traceIdx++
	} else {
		j = s.spec.SampleTypedInto(s.arena, s.reqType, s.sizeStream, s.svcStream, s.placeStream)
		j.Queue = s.routeQueue()
	}
	s.nextID++
	j.ID = s.nextID
	j.ArrivalTime = now
	s.obs.Arrival(now, j.ID, j.TotalSize, j.Components, j.Queue)
	s.inSystem.Add(now, 1)
	s.pol.Submit(s, j)
	if s.obs.Enabled() {
		s.obs.QueueDepth(s.pol.Queued())
	}
	if s.cursor != nil {
		next, _, _, _ := s.cursor.at(s.traceIdx)
		s.eng.Schedule(next, evArrival, nil)
	} else {
		s.eng.ScheduleAfter(s.arrivals.Exp(s.arrivalRate), evArrival, nil)
	}
}

// newSimulation wires up a run from its configuration. The caller must
// have normalized cfg with applyDefaults (Run does).
func newSimulation(cfg Config) (*simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pol, err := buildPolicy(cfg.Policy, len(cfg.ClusterSizes), cfg.Fit, cfg.Lookahead)
	if err != nil {
		return nil, err
	}
	src := rng.NewSource(cfg.Seed)
	cdf := routingCDF(cfg.QueueWeights, len(cfg.ClusterSizes))
	batchSize := int64(cfg.MeasureJobs / 30)
	if batchSize < 1 {
		batchSize = 1
	}
	s := &simulation{
		eng:         sim.New(),
		m:           cluster.New(cfg.ClusterSizes),
		busyPer:     make([]stats.TimeWeighted, len(cfg.ClusterSizes)),
		respByClass: make([]stats.Welford, len(SizeClassBounds)),
		pol:         pol,
		spec:        cfg.Spec,
		arena:       arenaPool.Get().(*workload.Arena),
		scratch:     policies.NewScratch(len(cfg.ClusterSizes)),
		arrivalRate: cfg.ArrivalRate,
		reqType:     cfg.RequestType,
		arrivals:    src.Stream("core/arrivals"),
		sizeStream:  src.Stream("core/sizes"),
		svcStream:   src.Stream("core/services"),
		routeStream: src.Stream("core/routing"),
		placeStream: src.Stream("core/placement"),
		routeCDF:    cdf,
		warmupJobs:  cfg.WarmupJobs,
		measureJobs: cfg.MeasureJobs,
		batch:       stats.NewBatchMeans(batchSize),
		quantiles:   stats.NewQuantileSet(),
	}
	if cfg.SaturationCutoff {
		s.cutoffOn = true
		s.cutoffStride = int64(cutoffThreshold(cfg.MeasureJobs))
		s.cutoffNext = s.cutoffStride
	}
	if cfg.Faults.Enabled() {
		// Validate vouched that the policy is fault-aware; the type
		// assertion re-checks the invariant at the wiring point.
		s.flt = newFaultState(*cfg.Faults, len(cfg.ClusterSizes), src)
		s.faultPol = pol.(policies.FaultAware)
	}
	s.fit = cfg.Fit
	if cfg.Decisions != nil {
		// Each run owns its tracer, so parallel replications never share
		// one; aggregates are folded into Result at the end of Run.
		s.dec = dectrace.New(*cfg.Decisions)
	}
	tr := cfg.Trace
	if tr == nil && cfg.TraceProvider != nil {
		tr = cfg.TraceProvider(cfg.Seed)
	}
	if tr != nil {
		if cfg.RequestType != workload.Unordered {
			return nil, fmt.Errorf("core: workload traces support unordered requests, not %s", cfg.RequestType)
		}
		if err := tr.matches(cfg); err != nil {
			return nil, err
		}
		s.cursor = newTraceCursor(tr)
	}
	s.eng.SetHandler(s.handleEvent)
	if cfg.Observer != nil {
		s.obs = cfg.Observer
		s.eng.SetObserver(s.obs)
		s.obs.SetClock(s.eng.Now)
		if setter, ok := pol.(policies.ObserverSetter); ok {
			setter.SetObserver(s.obs)
		}
		// With both tracing and observability on, decision records flow
		// into the run's JSONL trace and metrics. The observer serializes
		// the record synchronously, as the sink contract requires.
		if s.dec != nil {
			s.dec.SetSink(s.obs.Decision)
		}
	}
	return s, nil
}

// Run executes one open-system simulation and returns its metrics.
func Run(cfg Config) (Result, error) {
	cfg.applyDefaults()
	s, err := newSimulation(cfg)
	if err != nil {
		return Result{}, err
	}
	s.busy.StartAt(0, 0)
	if s.flt != nil {
		s.availCap.StartAt(0, float64(s.m.TotalAvail()))
		for c := 0; c < s.m.NumClusters(); c++ {
			s.eng.ScheduleAfter(s.flt.inj.NextFailure(c), evNodeFail, c)
		}
	}
	if s.warmupJobs == 0 {
		// No warmup: measure from time zero. Without this, measurement
		// would only begin at the first departure (startMeasuring is
		// otherwise reached from depart), silently dropping the first
		// job and skewing every time-weighted average.
		s.startMeasuring(0)
	}
	if s.cursor != nil {
		first, _, _, _ := s.cursor.at(0)
		s.eng.Schedule(first, evArrival, nil)
	} else {
		s.eng.ScheduleAfter(s.arrivals.Exp(s.arrivalRate), evArrival, nil)
	}
	s.eng.Run()
	s.eng.ReportStats()

	now := s.eng.Now()
	window := now - s.measureFrom
	capacity := float64(s.m.Capacity())
	res := Result{
		Policy:             cfg.Policy,
		MeanResponse:       s.respAll.Mean(),
		RespHalfWidth:      s.batch.HalfWidth(0.95),
		MeanResponseLocal:  meanOrNaN(&s.respLocal),
		MeanResponseGlobal: meanOrNaN(&s.respGlobal),
		MedianResponse:     s.quantiles.Q50.Value(),
		P95Response:        s.quantiles.Q95.Value(),
		MeanSlowdown:       s.slowdown.Mean(),
		ResponseBySizeClass: func() []float64 {
			out := make([]float64, len(s.respByClass))
			for i := range s.respByClass {
				out[i] = meanOrNaN(&s.respByClass[i])
			}
			return out
		}(),
		OfferedGross: cfg.ArrivalRate * cfg.Spec.MeanGrossWork() / capacity,
		Jobs:         int(s.respAll.N()),
		FinalQueue:   s.pol.Queued(),
		SimTime:      window,
	}
	if window > 0 {
		res.GrossUtilization = s.busy.Average(now) / capacity
		res.NetUtilization = s.netWork / (capacity * window)
		res.MeanJobsInSystem = s.inSystem.Average(now)
		res.Throughput = float64(res.Jobs) / window
		res.PerClusterUtilization = make([]float64, len(s.busyPer))
		min, max := math.Inf(1), math.Inf(-1)
		for c := range s.busyPer {
			u := s.busyPer[c].Average(now) / float64(s.m.Size(c))
			res.PerClusterUtilization[c] = u
			min = math.Min(min, u)
			max = math.Max(max, u)
		}
		res.UtilizationImbalance = max - min
	}
	if s.dec != nil {
		res.Decisions = s.dec.Decisions
		res.RegretTotal = s.dec.RegretTotal
		res.RegretMax = s.dec.RegretMax
		res.RegretDecisions = s.dec.RegretDecisions
	}
	res.MeanAvailableFraction = 1
	if s.flt != nil {
		st := s.flt.inj.Stats
		res.FailuresInjected = int(st.Failures)
		res.FailuresSkipped = int(st.Skipped)
		res.Repairs = int(st.Repairs)
		res.JobsKilled = int(st.Kills)
		res.Resubmits = int(st.Resubmits)
		res.WorkLost = st.WorkLost
		res.WorkSaved = st.WorkSaved
		// Aborted jobs whose backoff has not elapsed are still in the
		// system: count them with the backlog.
		res.FinalQueue += s.flt.killedPending
		if window > 0 {
			res.MeanAvailableFraction = s.availCap.Average(now) / capacity
		}
	}
	// Saturation heuristic: the backlog grew substantially over the
	// measurement window relative to the number of jobs served.
	growth := res.FinalQueue - s.queueAtWarm
	res.Saturated = growth > res.Jobs/20 && growth > 50
	if s.cutoffFired {
		// The divergence monitor stopped the run early; its firing
		// condition (growth > 2*max(MeasureJobs/20, 50), non-decreasing)
		// strictly implies the heuristic above, so Saturated is already
		// true — recording it explicitly keeps the invariant independent
		// of the heuristic's exact form.
		res.Saturated = true
		res.TruncatedJobs = cfg.MeasureJobs - res.Jobs
		s.obs.SaturationCutoff(res.TruncatedJobs)
	}
	// The run is over and Result holds no job handles, so every arena
	// allocation is dead: recycle the blocks for the next run.
	s.arena.Reset()
	arenaPool.Put(s.arena)
	s.arena = nil
	return res, nil
}

func meanOrNaN(w *stats.Welford) float64 {
	if w.N() == 0 {
		return math.NaN()
	}
	return w.Mean()
}

// slowdownBound is the short-job service-time floor of the bounded
// slowdown metric (Feitelson et al.): 10 seconds.
const slowdownBound = 10.0

// boundedSlowdown returns max(1, response / max(service, 10 s)).
func boundedSlowdown(response, service float64) float64 {
	d := service
	if d < slowdownBound {
		d = slowdownBound
	}
	s := response / d
	if s < 1 {
		return 1
	}
	return s
}

// RunAtUtilization is a convenience wrapper that sets the arrival rate to
// offer the given gross utilization before running.
func RunAtUtilization(cfg Config, grossUtil float64) (Result, error) {
	var capacity int
	for _, s := range cfg.ClusterSizes {
		capacity += s
	}
	cfg.ArrivalRate = cfg.Spec.ArrivalRateForGrossUtilization(grossUtil, capacity)
	return Run(cfg)
}

// RunReplications runs n independent replications (seeds Seed, Seed+1, ...)
// and merges the results. The response-time half-width is the 95% Student-t
// interval across replication means.
//
// Replications execute concurrently on the shared worker pool (package
// workpool), but the merge consumes their results in seed order, so the
// returned Result is bit-identical to running the replications serially.
func RunReplications(cfg Config, n int) (Result, error) {
	if n <= 0 {
		n = 1
	}
	results := make([]Result, n)
	errs := make([]error, n)
	runOne := func(i int) {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1000003
		results[i], errs[i] = Run(c)
	}
	if cfg.Observer != nil {
		// An Observer is single-threaded and its trace must be a
		// deterministic, byte-identical record of the event order:
		// observed replications run serially, in seed order.
		for i := 0; i < n; i++ {
			runOne(i)
		}
	} else {
		workpool.Do(n, runOne)
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	return mergeReplications(results), nil
}

// mergeReplications folds per-replication results, in order, into the
// across-replication summary. Keeping it separate from the (parallel)
// gathering pins down the determinism guarantee: the merge arithmetic sees
// the same values in the same order regardless of completion order.
func mergeReplications(results []Result) Result {
	n := len(results)
	var merged Result
	var resp, respLocal, respGlobal, gross, net stats.Welford
	var median, p95, slow, inSystem, throughput, imbalance stats.Welford
	var availFrac stats.Welford
	byClass := make([]stats.Welford, len(SizeClassBounds))
	var perCluster []stats.Welford
	var offered, simTime float64
	var jobs, finalQueue int
	saturated := false
	for i := 0; i < n; i++ {
		r := results[i]
		merged.FailuresInjected += r.FailuresInjected
		merged.FailuresSkipped += r.FailuresSkipped
		merged.Repairs += r.Repairs
		merged.JobsKilled += r.JobsKilled
		merged.Resubmits += r.Resubmits
		merged.WorkLost += r.WorkLost
		merged.WorkSaved += r.WorkSaved
		merged.Decisions += r.Decisions
		merged.RegretTotal += r.RegretTotal
		if r.RegretMax > merged.RegretMax {
			merged.RegretMax = r.RegretMax
		}
		merged.RegretDecisions += r.RegretDecisions
		availFrac.Add(r.MeanAvailableFraction)
		resp.Add(r.MeanResponse)
		if !math.IsNaN(r.MeanResponseLocal) {
			respLocal.Add(r.MeanResponseLocal)
		}
		if !math.IsNaN(r.MeanResponseGlobal) {
			respGlobal.Add(r.MeanResponseGlobal)
		}
		gross.Add(r.GrossUtilization)
		net.Add(r.NetUtilization)
		if !math.IsNaN(r.MedianResponse) {
			median.Add(r.MedianResponse)
		}
		if !math.IsNaN(r.P95Response) {
			p95.Add(r.P95Response)
		}
		slow.Add(r.MeanSlowdown)
		for ci, v := range r.ResponseBySizeClass {
			if !math.IsNaN(v) {
				byClass[ci].Add(v)
			}
		}
		inSystem.Add(r.MeanJobsInSystem)
		throughput.Add(r.Throughput)
		imbalance.Add(r.UtilizationImbalance)
		if perCluster == nil {
			perCluster = make([]stats.Welford, len(r.PerClusterUtilization))
		}
		for ci, u := range r.PerClusterUtilization {
			perCluster[ci].Add(u)
		}
		offered = r.OfferedGross
		jobs += r.Jobs
		merged.TruncatedJobs += r.TruncatedJobs
		finalQueue += r.FinalQueue
		simTime += r.SimTime
		saturated = saturated || r.Saturated
		merged.Policy = r.Policy
	}
	merged.MeanResponse = resp.Mean()
	if n >= 2 {
		merged.RespHalfWidth = stats.TQuantile(int64(n-1), 0.95) * resp.StdDev() / math.Sqrt(float64(n))
	} else {
		merged.RespHalfWidth = math.Inf(1)
	}
	merged.MeanResponseLocal = meanOrNaN(&respLocal)
	merged.MeanResponseGlobal = meanOrNaN(&respGlobal)
	merged.MedianResponse = meanOrNaN(&median)
	merged.P95Response = meanOrNaN(&p95)
	merged.MeanSlowdown = slow.Mean()
	merged.ResponseBySizeClass = make([]float64, len(byClass))
	for ci := range byClass {
		merged.ResponseBySizeClass[ci] = meanOrNaN(&byClass[ci])
	}
	merged.MeanJobsInSystem = inSystem.Mean()
	merged.Throughput = throughput.Mean()
	merged.UtilizationImbalance = imbalance.Mean()
	merged.PerClusterUtilization = make([]float64, len(perCluster))
	for ci := range perCluster {
		merged.PerClusterUtilization[ci] = perCluster[ci].Mean()
	}
	merged.GrossUtilization = gross.Mean()
	merged.NetUtilization = net.Mean()
	merged.MeanAvailableFraction = availFrac.Mean()
	merged.OfferedGross = offered
	merged.Jobs = jobs
	merged.FinalQueue = finalQueue
	merged.Saturated = saturated
	merged.SimTime = simTime
	return merged
}

// Sanity helpers -------------------------------------------------------------

// MM1Response returns the analytic M/M/1 mean response time for arrival
// rate lambda and service rate mu — used by the integration tests to
// validate the whole pipeline on a degenerate configuration (one cluster,
// one processor, unit-size jobs, exponential service).
func MM1Response(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// ExpService returns a workload spec for such a degenerate M/M/1 system.
func ExpService(mu float64) workload.Spec {
	return workload.Spec{
		Sizes:           dist.NewEmpiricalInt([]int{1}, []float64{1}),
		Service:         dist.NewExponential(mu),
		ComponentLimit:  1,
		Clusters:        1,
		ExtensionFactor: 1,
	}
}
