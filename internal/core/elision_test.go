package core

import (
	"strings"
	"testing"

	"coalloc/internal/faults"
	"coalloc/internal/policies"
)

// stripElisionLines removes the sched.passes_skipped and
// sched.passes_repaired counters — the only metrics allowed to differ
// between elided and full-pass runs.
func stripElisionLines(s string) string {
	lines := strings.Split(s, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.Contains(l, "sched.passes_skipped") || strings.Contains(l, "sched.passes_repaired") {
			continue
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// TestElisionEndToEndGuardrail pins the pass-elision machinery (the EASY
// stuck-head watermark and the conservative retained reservations with
// prefix repair) bit-identical across whole simulations: for every policy
// family, with and without fault injection, runs with elision on and off
// must produce equal Results, byte-identical JSONL traces, and identical
// metrics up to the elision counters themselves. This is the end-to-end
// statement of the policy-level equivalence tests, and the fault cases
// additionally cover kills and capacity changes arriving between passes.
func TestElisionEndToEndGuardrail(t *testing.T) {
	specs := map[string]*faults.Spec{
		"faultfree":   nil,
		"faulty":      {MTBF: 4000, MTTR: 600, RetryBase: 10, RetryCap: 600},
		"faulty-ckpt": {MTBF: 1000, MTTR: 600, RetryBase: 10, RetryCap: 600, CheckpointInterval: 120},
	}
	for _, policy := range []string{"GS-CONS", "GS-EASY", "GS", "GS-SPF", "LS", "LP"} {
		for label, fs := range specs {
			t.Run(policy+"/"+label, func(t *testing.T) {
				cfg := faultTestConfig(t, policy, fs)
				prev := policies.SetPassElision(false)
				resOff, traceOff, metricsOff := runObserved(t, cfg, 0.6)
				policies.SetPassElision(true)
				resOn, traceOn, metricsOn := runObserved(t, cfg, 0.6)
				policies.SetPassElision(prev)
				if !sameResult(resOff, resOn) {
					t.Errorf("pass elision changed the Result:\noff: %+v\non:  %+v", resOff, resOn)
				}
				if traceOff != traceOn {
					t.Error("pass elision changed the JSONL trace")
				}
				if a, b := stripElisionLines(metricsOff), stripElisionLines(metricsOn); a != b {
					t.Errorf("pass elision changed the metrics block:\noff:\n%s\non:\n%s", a, b)
				}
			})
		}
	}
}

// TestConservativeElisionObservable checks that the elision actually
// engages on a realistic run — a guardrail against the fast path silently
// rotting into "always take the full pass", which every equivalence test
// would still wave through.
func TestConservativeElisionObservable(t *testing.T) {
	cfg := faultTestConfig(t, "GS-CONS", nil)
	_, _, metrics := runObserved(t, cfg, 0.6)
	if !strings.Contains(metrics, "sched.passes_skipped") {
		t.Error("GS-CONS run elided no passes")
	}
	if !strings.Contains(metrics, "sched.passes_repaired") {
		t.Error("GS-CONS run repaired no stale passes")
	}
}
