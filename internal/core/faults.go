package core

import (
	"fmt"

	"coalloc/internal/faults"
	"coalloc/internal/rng"
	"coalloc/internal/sim"
	"coalloc/internal/workload"
)

// faultState carries the fault-injection machinery of one run: the injector
// (streams and stats) and a registry of every running job with its pending
// departure event. The registry exists because aborting a job on failure
// must cancel its departure — the one place the simulation needs to keep an
// event handle beyond the scheduling call.
type faultState struct {
	inj *faults.Injector

	// running and departures are parallel: departures[i] is the pending
	// departure event of running[i]. Entries leave the registry exactly
	// when the departure fires (untrack, from depart) or when an abort
	// cancels it (removeAt, from abortRunning) — a handle is never held
	// past its event's lifetime.
	running    []*workload.Job
	departures []sim.Event //detlint:ignore eventretain registry entries are removed when the departure fires or is cancelled; no handle outlives its event

	// killedPending counts jobs aborted by a failure whose resubmission
	// backoff has not yet elapsed. They are in the system but neither
	// queued nor running, so Result.FinalQueue adds this count.
	killedPending int
}

// newFaultState builds the injector from the run's RNG source. The fault
// streams are named independently of the workload streams, so attaching
// faults never perturbs the sampled job sequence.
func newFaultState(spec faults.Spec, clusters int, src *rng.Source) *faultState {
	return &faultState{inj: faults.NewInjector(spec, clusters, src)}
}

// track registers a dispatched job and its departure event.
func (f *faultState) track(j *workload.Job, ev sim.Event) {
	f.running = append(f.running, j)
	f.departures = append(f.departures, ev) //detlint:ignore eventretain handle is dropped in untrack (departure fired) or removeAt (abort cancelled it)
}

// untrack drops a departed job from the registry. The scan runs backward:
// departures correlate with recent dispatches, so the match is near the
// tail. A missing job is a bookkeeping bug and panics.
func (f *faultState) untrack(j *workload.Job) {
	for i := len(f.running) - 1; i >= 0; i-- {
		if f.running[i] == j {
			f.removeAt(i)
			return
		}
	}
	panic(fmt.Sprintf("core: departed job %d missing from the fault registry", j.ID))
}

// removeAt swap-removes registry entry i. Swap-remove perturbs the
// registry's order, which is safe because victim selection is a total order
// over the jobs themselves (start time, then ID) — see faults.SelectVictim.
func (f *faultState) removeAt(i int) {
	last := len(f.running) - 1
	f.running[i] = f.running[last]
	f.running[last] = nil
	f.running = f.running[:last]
	f.departures[i] = f.departures[last] //detlint:ignore eventretain swap-remove keeps the moved live handle; the vacated slot is cleared below
	f.departures[last] = sim.Event{}     //detlint:ignore eventretain zeroing the vacated slot so no stale handle is retained
	f.departures = f.departures[:last]
}

// nodeFail applies one failure event on cluster c: reschedule the cluster's
// next failure (the Poisson process never stops), then shrink capacity by
// one processor. An idle processor absorbs the failure silently; a fully
// busy cluster costs the most recently started occupant its job; a fully
// down cluster skips the failure. The repair is scheduled only when a
// processor actually went down.
func (s *simulation) nodeFail(c int) {
	now := s.eng.Now()
	s.eng.ScheduleAfter(s.flt.inj.NextFailure(c), evNodeFail, c)
	if s.m.Avail(c) == 0 {
		s.flt.inj.Stats.Skipped++
		s.obs.FaultSkipped(c)
		return
	}
	var victim *workload.Job
	if s.m.Idle(c) == 0 {
		idx := faults.SelectVictim(s.flt.running, c)
		victim = s.flt.running[idx]
		s.abortRunning(idx, c, now)
	}
	s.m.Fail(c)
	s.flt.inj.Stats.Failures++
	s.availCap.Set(now, float64(s.m.TotalAvail()))
	s.obs.NodeFailed(now, c, s.m.TotalAvail())
	s.eng.ScheduleAfter(s.flt.inj.RepairDelay(c), evNodeRepair, c)
	// Notified after Fail so the policy sees the post-failure capacity:
	// with a victim, the abort released its processors on every cluster
	// except the one the failure just consumed; without one, an idle
	// processor went down silently and only the capacity forecast of a
	// backfilling policy needs the news.
	if victim != nil {
		s.faultPol.JobKilled(s, victim, c)
		if s.obs.Enabled() {
			s.obs.QueueDepth(s.pol.Queued())
		}
	} else {
		s.faultPol.CapacityLost(s, c)
	}
}

// abortRunning kills registry entry idx because of a failure on cluster c:
// cancel its departure, release its processors, undo its work accounting,
// advance its checkpoint, and schedule its resubmission after a capped
// exponential backoff. The job keeps its original arrival time, so its
// eventual response time includes everything the failure cost it.
//
// With checkpointing enabled the kill forfeits only the progress since the
// last checkpoint: the job's total progress (preserved checkpoint plus the
// elapsed run) rounds down to a checkpoint multiple, which becomes the new
// Checkpointed — the resubmitted dispatch runs only the remainder. The
// accounting undo uses the checkpoint as it was when Dispatch charged the
// integrals, before the kill advances it.
func (s *simulation) abortRunning(idx, c int, now float64) {
	j := s.flt.running[idx]
	ev := s.flt.departures[idx]
	s.flt.removeAt(idx)
	if !s.eng.Cancel(ev) {
		panic(fmt.Sprintf("core: departure of aborted job %d was not pending", j.ID))
	}
	progress := j.Checkpointed + (now - j.StartTime)
	kept := s.flt.inj.Spec.Checkpointed(progress)
	lost := (progress - kept) * float64(j.TotalSize)
	saved := (kept - j.Checkpointed) * float64(j.TotalSize)
	s.m.Release(j.Components, j.Placement)
	s.busy.Set(now, float64(s.m.Busy()))
	for i, pc := range j.Placement {
		s.busyPer[pc].Add(now, -float64(j.Components[i]))
	}
	if s.measuring && j.StartTime >= s.measureFrom {
		// Dispatch charged the remaining service to the utilization
		// integrals; the job will be recharged when it is dispatched again.
		rem := j.RemainingTime()
		s.grossWork -= float64(j.TotalSize) * rem
		if j.Checkpointed > 0 {
			s.netWork -= float64(j.TotalSize) * j.ServiceTime * (rem / j.ExtendedServiceTime)
		} else {
			s.netWork -= float64(j.TotalSize) * j.ServiceTime
		}
	}
	j.Checkpointed = kept
	j.Retries++
	s.flt.inj.Stats.Kills++
	s.flt.inj.Stats.WorkLost += lost
	s.flt.inj.Stats.WorkSaved += saved
	s.flt.killedPending++
	s.obs.JobKilled(now, j.ID, c, lost, saved)
	s.eng.ScheduleAfter(s.flt.inj.Spec.Backoff(j.Retries), evResubmit, j)
}

// nodeRepair returns one processor of cluster c to service and gives the
// policy a scheduling opportunity under the departure ordering contract.
func (s *simulation) nodeRepair(c int) {
	now := s.eng.Now()
	s.m.Repair(c)
	s.flt.inj.Stats.Repairs++
	s.availCap.Set(now, float64(s.m.TotalAvail()))
	s.obs.NodeRepaired(now, c, s.m.TotalAvail())
	s.faultPol.CapacityRestored(s, c)
	if s.obs.Enabled() {
		s.obs.QueueDepth(s.pol.Queued())
	}
}

// resubmit re-queues an aborted job after its backoff. The job re-enters
// through the policy's normal Submit path (FCFS puts it at the tail — an
// abort forfeits the queue position along with the work).
func (s *simulation) resubmit(j *workload.Job) {
	now := s.eng.Now()
	s.flt.inj.Stats.Resubmits++
	s.flt.killedPending--
	s.obs.JobResubmitted(now, j.ID, j.Retries)
	s.pol.Submit(s, j)
	if s.obs.Enabled() {
		s.obs.QueueDepth(s.pol.Queued())
	}
}
