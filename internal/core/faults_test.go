package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"coalloc/internal/faults"
	"coalloc/internal/obs"
)

// sameResult compares two Results by their formatted rendering, which —
// unlike reflect.DeepEqual — treats the NaN placeholders of absent
// response breakdowns as equal.
func sameResult(a, b Result) bool {
	return fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b)
}

// faultTestConfig is a short multicluster run with observability attached:
// small enough to run for every policy, long enough to see kills at a
// nonzero failure rate.
func faultTestConfig(t *testing.T, policy string, spec *faults.Spec) Config {
	t.Helper()
	return Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       policy,
		WarmupJobs:   200,
		MeasureJobs:  2000,
		Seed:         99,
		Faults:       spec,
	}
}

// runObserved executes cfg at the given utilization with a fresh observer,
// returning the result, the JSONL trace, and the metrics summary block.
func runObserved(t *testing.T, cfg Config, util float64) (Result, string, string) {
	t.Helper()
	var trace bytes.Buffer
	cfg.Observer = obs.New(&trace)
	res, err := RunAtUtilization(cfg, util)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Observer.Flush(); err != nil {
		t.Fatal(err)
	}
	var metrics strings.Builder
	if err := cfg.Observer.WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	return res, trace.String(), metrics.String()
}

// TestFaultFreeGuardrail pins the zero-rate bit-identity contract: a nil
// fault spec and a disabled (zero-MTBF) spec must produce byte-identical
// traces, metrics, and equal Results for every fault-aware policy family.
func TestFaultFreeGuardrail(t *testing.T) {
	for _, policy := range []string{"GS", "LS", "LP", "GS-SPF", "GS-EASY", "GS-CONS"} {
		t.Run(policy, func(t *testing.T) {
			base := faultTestConfig(t, policy, nil)
			disabled := faultTestConfig(t, policy, &faults.Spec{MTBF: 0, MTTR: 900})
			resA, traceA, metricsA := runObserved(t, base, 0.5)
			resB, traceB, metricsB := runObserved(t, disabled, 0.5)
			if !sameResult(resA, resB) {
				t.Errorf("disabled fault spec changed the Result:\nnil:      %+v\ndisabled: %+v", resA, resB)
			}
			if traceA != traceB {
				t.Error("disabled fault spec changed the JSONL trace")
			}
			if metricsA != metricsB {
				t.Errorf("disabled fault spec changed the metrics block:\nnil:\n%s\ndisabled:\n%s", metricsA, metricsB)
			}
			if resA.MeanAvailableFraction != 1 {
				t.Errorf("fault-free MeanAvailableFraction = %g, want exactly 1", resA.MeanAvailableFraction)
			}
			if strings.Contains(metricsA, "faults.") {
				t.Error("fault-free metrics block contains fault metrics")
			}
		})
	}
}

// TestFaultInjectionDeterministic pins the nonzero-rate determinism
// contract: two runs of the same seed must be byte-identical in trace and
// metrics and equal in Result.
func TestFaultInjectionDeterministic(t *testing.T) {
	spec := &faults.Spec{MTBF: 2000, MTTR: 600}
	for _, policy := range []string{"GS", "LS", "LP", "GS-EASY", "GS-CONS"} {
		t.Run(policy, func(t *testing.T) {
			resA, traceA, metricsA := runObserved(t, faultTestConfig(t, policy, spec), 0.6)
			resB, traceB, metricsB := runObserved(t, faultTestConfig(t, policy, spec), 0.6)
			if !sameResult(resA, resB) {
				t.Errorf("same-seed fault runs differ:\n%+v\n%+v", resA, resB)
			}
			if traceA != traceB {
				t.Error("same-seed fault runs produced different JSONL traces")
			}
			if metricsA != metricsB {
				t.Error("same-seed fault runs produced different metrics blocks")
			}
		})
	}
}

// TestFaultInjectionKillsAndRepairs sanity-checks the injected process: at
// a high failure rate under load, failures are applied, some land on fully
// busy clusters (kills), repairs happen, and capacity visibly shrinks.
func TestFaultInjectionKillsAndRepairs(t *testing.T) {
	spec := &faults.Spec{MTBF: 500, MTTR: 900}
	res, trace, metrics := runObserved(t, faultTestConfig(t, "LS", spec), 0.7)
	if res.FailuresInjected == 0 {
		t.Fatal("no failures injected at MTBF 500")
	}
	if res.Repairs > res.FailuresInjected {
		t.Errorf("%d repairs exceed %d failures", res.Repairs, res.FailuresInjected)
	}
	if res.JobsKilled == 0 {
		t.Error("no jobs killed at utilization 0.7 with MTBF 500")
	}
	if res.Resubmits > res.JobsKilled {
		t.Errorf("%d resubmits exceed %d kills", res.Resubmits, res.JobsKilled)
	}
	if res.JobsKilled > 0 && res.WorkLost <= 0 {
		t.Errorf("%d kills lost %g processor-seconds", res.JobsKilled, res.WorkLost)
	}
	if !(res.MeanAvailableFraction > 0 && res.MeanAvailableFraction < 1) {
		t.Errorf("MeanAvailableFraction = %g, want in (0, 1) under sustained failures", res.MeanAvailableFraction)
	}
	for _, ev := range []string{`"ev":"fail"`, `"ev":"repair"`, `"ev":"kill"`, `"ev":"resubmit"`} {
		if !strings.Contains(trace, ev) {
			t.Errorf("trace has no %s record", ev)
		}
	}
	for _, m := range []string{"faults.failures", "faults.repairs", "faults.kills", "faults.avail_capacity"} {
		if !strings.Contains(metrics, m) {
			t.Errorf("metrics block has no %s", m)
		}
	}
}

// TestFaultConfigValidation accepts fault specs on every built-in policy
// (the backfilling pair became FaultAware) and rejects incomplete specs.
func TestFaultConfigValidation(t *testing.T) {
	for _, policy := range []string{"GS", "LS", "LP", "GS-SPF", "GS-EASY", "GS-CONS"} {
		ok := faultTestConfig(t, policy, &faults.Spec{MTBF: 1000, MTTR: 900})
		ok.ArrivalRate = 1
		if err := ok.Validate(); err != nil {
			t.Errorf("%s with faults rejected: %v", policy, err)
		}
	}
	noMTTR := faultTestConfig(t, "GS", &faults.Spec{MTBF: 1000})
	noMTTR.ArrivalRate = 1
	if err := noMTTR.Validate(); err == nil || !strings.Contains(err.Error(), "MTTR") {
		t.Errorf("missing MTTR validated, err = %v", err)
	}
	badCkpt := faultTestConfig(t, "GS-CONS", &faults.Spec{MTBF: 1000, MTTR: 900, CheckpointInterval: -60})
	badCkpt.ArrivalRate = 1
	if err := badCkpt.Validate(); err == nil || !strings.Contains(err.Error(), "checkpoint interval") {
		t.Errorf("negative checkpoint interval validated, err = %v", err)
	}
}

// TestCheckpointModel exercises the checkpoint/restart fault model
// end-to-end on the backfilling policies: checkpointing preserves work
// (WorkSaved > 0), the per-kill loss is structurally bounded by one
// interval of the largest job (lost < kills * interval * maxSize), the
// saved work shows up in the kill trace records, and disabling the
// interval keeps WorkSaved at exactly zero.
func TestCheckpointModel(t *testing.T) {
	// The interval is short relative to service times because victim
	// selection aborts the most recently started occupant: a long interval
	// would let every victim die before its first checkpoint and the test
	// would vacuously pass the zero case.
	const interval = 60.0
	for _, policy := range []string{"GS-EASY", "GS-CONS"} {
		t.Run(policy, func(t *testing.T) {
			spec := &faults.Spec{MTBF: 500, MTTR: 900, CheckpointInterval: interval}
			res, trace, metrics := runObserved(t, faultTestConfig(t, policy, spec), 0.7)
			if res.JobsKilled == 0 {
				t.Fatal("no kills at MTBF 500 / util 0.7; the scenario tests nothing")
			}
			if res.WorkSaved <= 0 {
				t.Errorf("WorkSaved = %g with %d kills and checkpointing on", res.WorkSaved, res.JobsKilled)
			}
			// Each kill forfeits strictly less than one checkpoint interval
			// of progress per processor; 128 is the workload's largest job.
			if bound := float64(res.JobsKilled) * interval * 128; res.WorkLost >= bound {
				t.Errorf("WorkLost = %g >= structural bound %g", res.WorkLost, bound)
			}
			if !strings.Contains(trace, `"saved":`) {
				t.Error("kill records carry no saved field")
			}
			if !strings.Contains(metrics, "faults.saved_work") {
				t.Error("metrics block has no faults.saved_work")
			}

			off, _, _ := runObserved(t, faultTestConfig(t, policy, &faults.Spec{MTBF: 500, MTTR: 900}), 0.7)
			if off.WorkSaved != 0 {
				t.Errorf("WorkSaved = %g without checkpointing, want exactly 0", off.WorkSaved)
			}
		})
	}
}

// TestFaultReplicationMerge checks that merged replications sum the fault
// counts and that the parallel merge is deterministic.
func TestFaultReplicationMerge(t *testing.T) {
	spec := &faults.Spec{MTBF: 1000, MTTR: 600}
	cfg := faultTestConfig(t, "LS", spec)
	cfg.ArrivalRate = testSpecRate(t, 0.5)
	const n = 3
	merged, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(merged, again) {
		t.Errorf("replicated fault runs differ:\n%+v\n%+v", merged, again)
	}
	var failures, kills int
	var lost float64
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1000003
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		failures += r.FailuresInjected
		kills += r.JobsKilled
		lost += r.WorkLost
	}
	if merged.FailuresInjected != failures || merged.JobsKilled != kills || merged.WorkLost != lost {
		t.Errorf("merge lost fault counts: got %d/%d/%g want %d/%d/%g",
			merged.FailuresInjected, merged.JobsKilled, merged.WorkLost, failures, kills, lost)
	}
}
