package core

import (
	"math"
	"testing"

	"coalloc/internal/workload"
)

// These tests pin the paper's qualitative results — the whole point of the
// reproduction — at moderate fidelity. They are regression tests: a change
// to the policies or the workload that silently flips one of the paper's
// findings fails here. Skipped under -short.

func paperRun(t *testing.T, policy string, clusters []int, spec workload.Spec,
	weights []float64, util float64) Result {
	t.Helper()
	cfg := Config{
		ClusterSizes: clusters,
		Spec:         spec,
		Policy:       policy,
		QueueWeights: weights,
		WarmupJobs:   1000,
		MeasureJobs:  12000,
		Seed:         1,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(util, capacityOf(clusters)),
	}
	res, err := RunReplications(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func capacityOf(clusters []int) int {
	n := 0
	for _, c := range clusters {
		n += c
	}
	return n
}

var multi = []int{32, 32, 32, 32}

// TestLittlesLaw validates L = lambda * W on a stable run — an end-to-end
// consistency check across the arrival process, the queueing, and the
// metric plumbing.
func TestLittlesLaw(t *testing.T) {
	spec := testSpec(t, 16, 4)
	cfg := Config{
		ClusterSizes: multi,
		Spec:         spec,
		Policy:       "LS",
		WarmupJobs:   2000,
		MeasureJobs:  30000,
		Seed:         8,
	}
	res, err := RunAtUtilization(cfg, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Throughput * res.MeanResponse
	if res.MeanJobsInSystem <= 0 || want <= 0 {
		t.Fatalf("L = %g, lambda*W = %g", res.MeanJobsInSystem, want)
	}
	if math.Abs(res.MeanJobsInSystem-want)/want > 0.06 {
		t.Errorf("Little's law: L = %.2f but lambda*W = %.2f", res.MeanJobsInSystem, want)
	}
}

// TestPaperShapeLSBestMulticlusterAtLimit16 (Fig. 3, left panel): at
// component-size limit 16, LS beats GS and LP near saturation.
func TestPaperShapeLSBestMulticlusterAtLimit16(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression")
	}
	spec := testSpec(t, 16, 4)
	const util = 0.58
	ls := paperRun(t, "LS", multi, spec, nil, util)
	gs := paperRun(t, "GS", multi, spec, nil, util)
	lp := paperRun(t, "LP", multi, spec, nil, util)
	if !(ls.MeanResponse < gs.MeanResponse && ls.MeanResponse < lp.MeanResponse) {
		t.Errorf("LS %.0f should beat GS %.0f and LP %.0f at %.2f",
			ls.MeanResponse, gs.MeanResponse, lp.MeanResponse, util)
	}
}

// TestPaperShapeLimit24Worst (Fig. 6 / Sect. 3.3): the component-size
// limit 24 is the worst choice for every policy — size-64 jobs split
// (22, 21, 21) and pack terribly.
func TestPaperShapeLimit24Worst(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression")
	}
	const util = 0.48
	for _, policy := range []string{"GS", "LS"} {
		resp := map[int]float64{}
		for _, limit := range []int{16, 24, 32} {
			spec := testSpec(t, limit, 4)
			resp[limit] = paperRun(t, policy, multi, spec, nil, util).MeanResponse
		}
		if !(resp[24] > resp[16] && resp[24] > resp[32]) {
			t.Errorf("%s: limit 24 (%.0f) should be worst (16: %.0f, 32: %.0f)",
				policy, resp[24], resp[16], resp[32])
		}
	}
}

// TestPaperShapeSizeCapHelps (Fig. 5): cutting the total job size at 64
// improves SC dramatically and LS clearly.
func TestPaperShapeSizeCapHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression")
	}
	der := workload.DeriveDefault()
	mk := func(sizes string) (workload.Spec, workload.Spec) {
		sd := der.Sizes128
		if sizes == "64" {
			sd = der.Sizes64
		}
		multiSpec := workload.Spec{
			Sizes: sd, Service: der.Service,
			ComponentLimit: 16, Clusters: 4,
			ExtensionFactor: workload.DefaultExtensionFactor,
		}
		scSpec := workload.Spec{
			Sizes: sd, Service: der.Service,
			ComponentLimit: sd.Max(), Clusters: 1,
			ExtensionFactor: workload.DefaultExtensionFactor,
		}
		return multiSpec, scSpec
	}
	m128, s128 := mk("128")
	m64, s64 := mk("64")
	const util = 0.6
	sc128 := paperRun(t, "SC", []int{128}, s128, nil, util)
	sc64 := paperRun(t, "SC", []int{128}, s64, nil, util)
	if sc64.MeanResponse >= sc128.MeanResponse {
		t.Errorf("SC: cap at 64 did not help (%.0f vs %.0f)", sc64.MeanResponse, sc128.MeanResponse)
	}
	ls128 := paperRun(t, "LS", multi, m128, nil, util)
	ls64 := paperRun(t, "LS", multi, m64, nil, util)
	if ls64.MeanResponse >= ls128.MeanResponse {
		t.Errorf("LS: cap at 64 did not help (%.0f vs %.0f)", ls64.MeanResponse, ls128.MeanResponse)
	}
}

// TestPaperShapeUnbalanceHurtsLSMost (Sect. 3.1.2): unbalanced local
// queues worsen LS more at larger component-size limits (more local jobs).
func TestPaperShapeUnbalanceHurtsLS(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression")
	}
	const util = 0.5
	spec := testSpec(t, 32, 4)
	bal := paperRun(t, "LS", multi, spec, nil, util)
	unb := paperRun(t, "LS", multi, spec, Unbalanced(4), util)
	if unb.MeanResponse <= bal.MeanResponse {
		t.Errorf("unbalanced LS (%.0f) should be worse than balanced (%.0f) at limit 32",
			unb.MeanResponse, bal.MeanResponse)
	}
}

// TestPaperShapeGrossNetGapGrowsAsLimitShrinks (Fig. 7 / Sect. 4).
func TestPaperShapeGrossNetGapGrowsAsLimitShrinks(t *testing.T) {
	gaps := map[int]float64{}
	for _, limit := range []int{16, 24, 32} {
		spec := testSpec(t, limit, 4)
		gaps[limit] = spec.GrossNetRatio()
	}
	if !(gaps[16] > gaps[24] && gaps[24] > gaps[32]) {
		t.Errorf("gross/net ratios %v should decrease with the limit", gaps)
	}
}

// TestPaperShapeLPGlobalQueueIsBottleneck (Fig. 4): near saturation, LP's
// global-queue mean response dwarfs its local queues'.
func TestPaperShapeLPGlobalQueueIsBottleneck(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape regression")
	}
	spec := testSpec(t, 16, 4)
	res := paperRun(t, "LP", multi, spec, nil, 0.58)
	if !(res.MeanResponseGlobal > 3*res.MeanResponseLocal) {
		t.Errorf("LP global mean %.0f should dwarf local mean %.0f near saturation",
			res.MeanResponseGlobal, res.MeanResponseLocal)
	}
}
