package core

import (
	"math"
	"testing"

	"coalloc/internal/workload"
)

// TestMM1Sanity validates the full pipeline against the analytic M/M/1
// mean response time on a degenerate configuration: one cluster with one
// processor, unit-size jobs, exponential service.
func TestMM1Sanity(t *testing.T) {
	const mu, rho = 1.0, 0.6
	cfg := Config{
		ClusterSizes: []int{1},
		Spec:         ExpService(mu),
		Policy:       "SC",
		ArrivalRate:  rho * mu,
		WarmupJobs:   5000,
		MeasureJobs:  60000,
		Seed:         42,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := MM1Response(cfg.ArrivalRate, mu)
	if math.Abs(res.MeanResponse-want)/want > 0.08 {
		t.Errorf("M/M/1 mean response = %.3f, want %.3f (+-8%%)", res.MeanResponse, want)
	}
	if math.Abs(res.GrossUtilization-rho) > 0.03 {
		t.Errorf("utilization = %.3f, want %.3f", res.GrossUtilization, rho)
	}
	if math.Abs(res.NetUtilization-res.GrossUtilization) > 0.02 {
		t.Errorf("net %.3f and gross %.3f should coincide without extension",
			res.NetUtilization, res.GrossUtilization)
	}
}

// TestAllPoliciesSmoke runs each policy briefly on the paper's system and
// checks basic invariants of the results.
func TestAllPoliciesSmoke(t *testing.T) {
	der := workload.DeriveDefault()
	for _, pol := range []string{"GS", "LS", "LP"} {
		spec := workload.Spec{
			Sizes:           der.Sizes128,
			Service:         der.Service,
			ComponentLimit:  16,
			Clusters:        4,
			ExtensionFactor: workload.DefaultExtensionFactor,
		}
		cfg := Config{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         spec,
			Policy:       pol,
			WarmupJobs:   500,
			MeasureJobs:  4000,
			Seed:         7,
		}
		res, err := RunAtUtilization(cfg, 0.3)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.MeanResponse <= 0 {
			t.Errorf("%s: non-positive mean response %g", pol, res.MeanResponse)
		}
		if res.GrossUtilization < 0.2 || res.GrossUtilization > 0.4 {
			t.Errorf("%s: gross utilization %.3f far from offered 0.3", pol, res.GrossUtilization)
		}
		if res.NetUtilization >= res.GrossUtilization {
			t.Errorf("%s: net %.3f should be below gross %.3f (extension factor active)",
				pol, res.NetUtilization, res.GrossUtilization)
		}
		t.Logf("%s: resp=%.0f gross=%.3f net=%.3f", pol, res.MeanResponse, res.GrossUtilization, res.NetUtilization)
	}
}

// TestBacklogSmoke checks the constant-backlog saturation measurement.
func TestBacklogSmoke(t *testing.T) {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	res, err := RunBacklog(BacklogConfig{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupTime:   20000,
		MeasureTime:  100000,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxGrossUtilization <= 0.3 || res.MaxGrossUtilization > 1 {
		t.Errorf("maximal gross utilization %.3f out of plausible range", res.MaxGrossUtilization)
	}
	if res.MaxNetUtilization >= res.MaxGrossUtilization {
		t.Errorf("net %.3f should be below gross %.3f", res.MaxNetUtilization, res.MaxGrossUtilization)
	}
	t.Logf("GS backlog: gross=%.3f net=%.3f thru=%.4f jobs=%d",
		res.MaxGrossUtilization, res.MaxNetUtilization, res.Throughput, res.Jobs)
}
