package core

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"coalloc/internal/cluster"
	"coalloc/internal/dastrace"
	"coalloc/internal/dectrace"
	"coalloc/internal/obs"
	"coalloc/internal/policies"
	"coalloc/internal/rng"
	"coalloc/internal/sim"
	"coalloc/internal/stats"
	"coalloc/internal/workload"
)

// ReplayConfig describes a trace-replay simulation: instead of sampling a
// synthetic arrival process, the recorded submit times, sizes and service
// times of a job log are fed through a policy directly. This is the other
// sense of "trace-based" simulation, and lets archive traces (read via
// dastrace.ReadSWF) be replayed against any of the policies.
type ReplayConfig struct {
	// ClusterSizes gives the processors per cluster.
	ClusterSizes []int
	// Records is the job log, in any order; it is replayed by submit
	// time. Records with non-positive size or service time, or a size
	// exceeding the total capacity, are rejected with an error.
	Records []dastrace.Record
	// Policy is one of GS, LS, LS-sorted, LP, SC.
	Policy string
	// Fit is the placement rule.
	Fit cluster.Fit
	// Lookahead is the conservative-backfilling reservation bound (as in
	// Config.Lookahead; 0 = default).
	Lookahead int
	// ComponentLimit splits each recorded size into components, exactly
	// as the synthetic workload does. Use the largest recorded size (or
	// the single-cluster capacity) to replay total requests.
	ComponentLimit int
	// ExtensionFactor multiplies the service time of multi-component
	// jobs (>= 1).
	ExtensionFactor float64
	// LoadFactor compresses (>1) or dilates (<1) the recorded
	// interarrival gaps: arrival time = submit / LoadFactor. The same
	// jobs offered faster produce a higher utilization — the standard
	// way to sweep load in trace-driven studies. 0 means 1.
	LoadFactor float64
	// QueueWeights routes jobs to local queues (nil = balanced).
	QueueWeights []float64
	// Seed drives queue routing (the only randomness in a replay).
	Seed uint64
	// ScheduleWriter, when non-nil, receives one CSV row per completed
	// job: id,size,components,arrival,start,finish,clusters — the data
	// for a Gantt-style visualization of the replayed schedule.
	ScheduleWriter io.Writer
	// Observer, when non-nil, receives the replay's metrics and
	// (optionally) its JSONL event trace.
	Observer *obs.Observer
}

// ReplayResult reports the metrics of a finite replay run.
type ReplayResult struct {
	Policy string
	// Jobs is the number of jobs replayed to completion.
	Jobs int
	// MeanResponse, MedianResponse, P95Response summarize response
	// times over all replayed jobs.
	MeanResponse   float64
	MedianResponse float64
	P95Response    float64
	// MeanSlowdown is the mean bounded slowdown.
	MeanSlowdown float64
	// Makespan is the span from the first arrival to the last departure.
	Makespan float64
	// GrossUtilization and NetUtilization are measured over the
	// makespan.
	GrossUtilization float64
	NetUtilization   float64
	// MaxQueue is the largest number of waiting jobs observed.
	MaxQueue int
}

// Replay runs a trace through a policy and returns its metrics.
func Replay(cfg ReplayConfig) (ReplayResult, error) {
	if len(cfg.ClusterSizes) == 0 {
		return ReplayResult{}, fmt.Errorf("core: replay with no clusters")
	}
	if len(cfg.Records) == 0 {
		return ReplayResult{}, fmt.Errorf("core: replay with no records")
	}
	if cfg.ComponentLimit <= 0 {
		return ReplayResult{}, fmt.Errorf("core: replay component limit %d", cfg.ComponentLimit)
	}
	if cfg.ExtensionFactor < 1 {
		return ReplayResult{}, fmt.Errorf("core: replay extension factor %g", cfg.ExtensionFactor)
	}
	load := cfg.LoadFactor
	if load == 0 {
		load = 1
	}
	if load <= 0 {
		return ReplayResult{}, fmt.Errorf("core: replay load factor %g", cfg.LoadFactor)
	}
	pol, err := buildPolicy(cfg.Policy, len(cfg.ClusterSizes), cfg.Fit, cfg.Lookahead)
	if err != nil {
		return ReplayResult{}, err
	}
	m := cluster.New(cfg.ClusterSizes)
	clusters := len(cfg.ClusterSizes)
	capacity := m.Capacity()

	recs := make([]dastrace.Record, len(cfg.Records))
	copy(recs, cfg.Records)
	sort.SliceStable(recs, func(a, b int) bool { return recs[a].Submit < recs[b].Submit })
	for _, r := range recs {
		if r.Size <= 0 || r.Service <= 0 {
			return ReplayResult{}, fmt.Errorf("core: replay record %d has size %d, service %g", r.ID, r.Size, r.Service)
		}
		if r.Size > capacity {
			return ReplayResult{}, fmt.Errorf("core: replay record %d needs %d of %d processors", r.ID, r.Size, capacity)
		}
	}

	cdf := routingCDF(cfg.QueueWeights, clusters)
	routeStream := rng.NewSource(cfg.Seed).Stream("replay/routing")
	route := func() int {
		if len(cdf) == 1 {
			return 0
		}
		u := routeStream.Float64()
		for i, c := range cdf {
			if u < c {
				return i
			}
		}
		return len(cdf) - 1
	}

	eng := sim.New()
	var busy stats.TimeWeighted
	busy.StartAt(0, 0)
	var resp, slow stats.Welford
	quantiles := stats.NewQuantileSet()
	var grossWork, netWork float64
	var firstArrival, lastFinish float64
	firstArrival = math.Inf(1)
	maxQueue := 0

	var sched *bufio.Writer
	if cfg.ScheduleWriter != nil {
		sched = bufio.NewWriter(cfg.ScheduleWriter)
		fmt.Fprintln(sched, "id,size,components,arrival,start,finish,clusters")
	}
	rs := &replaySim{
		eng: eng,
		m:   m,
		onDispatch: func(j *workload.Job) {
			grossWork += float64(j.TotalSize) * j.ExtendedServiceTime
			netWork += float64(j.TotalSize) * j.ServiceTime
		},
		onDepart: func(j *workload.Job) {
			r := j.ResponseTime()
			resp.Add(r)
			quantiles.Add(r)
			slow.Add(boundedSlowdown(r, j.ServiceTime))
			if j.FinishTime > lastFinish {
				lastFinish = j.FinishTime
			}
			if sched != nil {
				fmt.Fprintf(sched, "%d,%d,%s,%.2f,%.2f,%.2f,%s\n",
					j.ID, j.TotalSize, intsDash(j.Components),
					j.ArrivalTime, j.StartTime, j.FinishTime, intsDash(j.Placement))
			}
		},
		busy:    &busy,
		pol:     pol,
		obs:     cfg.Observer,
		scratch: policies.NewScratch(clusters),
	}
	rs.onArrive = func(j *workload.Job) {
		j.ArrivalTime = eng.Now()
		j.Queue = route()
		rs.obs.Arrival(j.ArrivalTime, j.ID, j.TotalSize, j.Components, j.Queue)
		pol.Submit(rs, j)
		if q := pol.Queued(); q > maxQueue {
			maxQueue = q
		}
		if rs.obs.Enabled() {
			rs.obs.QueueDepth(pol.Queued())
		}
	}
	eng.SetHandler(rs.handleEvent)
	if cfg.Observer != nil {
		eng.SetObserver(cfg.Observer)
		cfg.Observer.SetClock(eng.Now)
		if setter, ok := pol.(policies.ObserverSetter); ok {
			setter.SetObserver(cfg.Observer)
		}
	}

	// Jobs are pre-built during setup; the arrival event carries the job
	// pointer and only stamps the arrival-time-dependent fields when it
	// fires, so the replay loop itself schedules no closures.
	for i := range recs {
		r := recs[i]
		at := r.Submit / load
		if at < firstArrival {
			firstArrival = at
		}
		j := &workload.Job{
			ID:          int64(r.ID),
			TotalSize:   r.Size,
			Components:  workload.Split(r.Size, cfg.ComponentLimit, clusters),
			ServiceTime: r.Service,
		}
		j.ExtendedServiceTime = j.ServiceTime
		if j.Multi() {
			j.ExtendedServiceTime *= cfg.ExtensionFactor
		}
		eng.Schedule(at, evArrival, j)
	}
	eng.Run()
	eng.ReportStats()

	if q := pol.Queued(); q > 0 {
		return ReplayResult{}, fmt.Errorf("core: replay ended with %d jobs stuck in queue", q)
	}
	if sched != nil {
		if err := sched.Flush(); err != nil {
			return ReplayResult{}, fmt.Errorf("core: writing schedule: %w", err)
		}
	}
	res := ReplayResult{
		Policy:         cfg.Policy,
		Jobs:           int(resp.N()),
		MeanResponse:   resp.Mean(),
		MedianResponse: quantiles.Q50.Value(),
		P95Response:    quantiles.Q95.Value(),
		MeanSlowdown:   slow.Mean(),
		Makespan:       lastFinish - firstArrival,
		MaxQueue:       maxQueue,
	}
	if res.Makespan > 0 {
		res.GrossUtilization = grossWork / (float64(capacity) * res.Makespan)
		res.NetUtilization = netWork / (float64(capacity) * res.Makespan)
	}
	return res, nil
}

// intsDash renders an int slice as dash-separated values (CSV-safe).
func intsDash(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, "-")
}

// replaySim is the policies.Ctx for replay runs.
type replaySim struct {
	eng        *sim.Engine
	m          *cluster.Multicluster
	pol        policies.Policy
	busy       *stats.TimeWeighted
	obs        *obs.Observer
	scratch    *policies.Scratch
	onDispatch func(*workload.Job)
	onArrive   func(*workload.Job)
	onDepart   func(*workload.Job)
}

var _ policies.Ctx = (*replaySim)(nil)

func (s *replaySim) Cluster() *cluster.Multicluster { return s.m }

func (s *replaySim) Now() float64 { return s.eng.Now() }

func (s *replaySim) Obs() *obs.Observer { return s.obs }

// Dec returns nil: replay runs re-execute a recorded schedule and record no
// new decisions.
func (s *replaySim) Dec() *dectrace.Tracer { return nil }

func (s *replaySim) Scratch() *policies.Scratch { return s.scratch }

func (s *replaySim) Dispatch(j *workload.Job, placement []int) {
	now := s.eng.Now()
	j.StartTime = now
	// placement may point into shared pass scratch; the job keeps a
	// stable copy for the schedule CSV and the release on departure.
	j.Placement = append([]int(nil), placement...)
	placement = j.Placement
	s.m.Alloc(j.Components, placement)
	s.busy.Set(now, float64(s.m.Busy()))
	s.obs.Start(now, j.ID, now-j.ArrivalTime, placement)
	s.onDispatch(j)
	s.eng.ScheduleAfter(j.ExtendedServiceTime, evDeparture, j)
}

// handleEvent dispatches the typed arrival/departure events of a replay.
func (s *replaySim) handleEvent(kind int32, payload any) {
	j := payload.(*workload.Job)
	switch kind {
	case evArrival:
		s.onArrive(j)
	case evDeparture:
		t := s.eng.Now()
		j.FinishTime = t
		s.obs.Departure(t, j.ID, j.ResponseTime())
		s.m.Release(j.Components, j.Placement)
		s.busy.Set(t, float64(s.m.Busy()))
		s.onDepart(j)
		s.pol.JobDeparted(s, j)
	default:
		panic(fmt.Sprintf("core: unknown replay event kind %d", kind))
	}
}
