package core

import (
	"fmt"
	"sync"

	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

// Trace is a compact record of the workload one replication would sample:
// per job, the absolute arrival time, the total size, the net service
// time, and the routed local queue. A sweep generates it once per
// (seed, utilization) point and replays it into every policy's run — the
// paper's methodology of comparing all policies on the same workload
// (common random numbers), and a large saving when four-plus policies
// would otherwise regenerate identical jobs.
//
// The record is append-only with an immutable prefix: policies consume
// different numbers of arrivals before their measurement windows close,
// so the trace extends itself lazily, in chunks, under a mutex. Already
// published entries never change, and ensure hands out snapshot slice
// headers, so concurrent runs (parallel replications, parallel sweep
// points) share one trace without locking on the read path.
//
// Bit-identity with live sampling holds by construction: the generator
// draws from streams with the same names ("core/arrivals", "core/sizes",
// "core/services", "core/routing") and seed as the live run, in the same
// per-stream order, and accumulates arrival times with the same
// floating-point additions the event clock would perform. Consumption
// rebuilds each job through workload.Spec.JobFromDraws — the same
// arithmetic live sampling uses. TestSharedTraceMatchesSampling and the
// experiments-level sweep guardrail pin this.
type Trace struct {
	seed uint64
	rate float64

	mu       sync.Mutex
	arrivals []float64
	sizes    []int32
	services []float64
	queues   []int32

	spec        workload.Spec
	routeCDF    []float64
	arrivalsRng *rng.Stream
	sizesRng    *rng.Stream
	servicesRng *rng.Stream
	routeRng    *rng.Stream
	lastArrival float64
}

// traceChunk is the growth granularity of the lazy extension.
const traceChunk = 4096

// NewTrace prepares the workload trace one replication of cfg would
// sample at the given seed. Entries are generated on demand; building a
// Trace is cheap. Only Unordered requests can be traced — the other
// request types draw placement randomness interleaved with scheduling.
func NewTrace(cfg Config, seed uint64) (*Trace, error) {
	if cfg.RequestType != workload.Unordered {
		return nil, fmt.Errorf("core: workload traces support unordered requests, not %s", cfg.RequestType)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.ArrivalRate <= 0 {
		return nil, fmt.Errorf("core: trace arrival rate %g must be positive", cfg.ArrivalRate)
	}
	src := rng.NewSource(seed)
	return &Trace{
		seed:        seed,
		rate:        cfg.ArrivalRate,
		spec:        cfg.Spec,
		routeCDF:    routingCDF(cfg.QueueWeights, len(cfg.ClusterSizes)),
		arrivalsRng: src.Stream("core/arrivals"),
		sizesRng:    src.Stream("core/sizes"),
		servicesRng: src.Stream("core/services"),
		routeRng:    src.Stream("core/routing"),
	}, nil
}

// ensure extends the trace to cover at least index k and returns snapshot
// slice headers. The returned slices are append-only prefixes: their
// contents never change after publication, so callers may read them
// without holding the lock.
func (t *Trace) ensure(k int) (arrivals []float64, sizes []int32, services []float64, queues []int32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.arrivals) <= k {
		target := len(t.arrivals) + traceChunk
		for len(t.arrivals) < target {
			// Mirrors one live arrival: the event clock adds each Exp
			// interarrival to the previous arrival's timestamp.
			t.lastArrival += t.arrivalsRng.Exp(t.rate)
			t.arrivals = append(t.arrivals, t.lastArrival)
			t.sizes = append(t.sizes, int32(t.spec.Sizes.Sample(t.sizesRng)))
			t.services = append(t.services, t.spec.Service.Sample(t.servicesRng))
			q := 0
			if len(t.routeCDF) > 1 {
				u := t.routeRng.Float64()
				q = len(t.routeCDF) - 1
				for i, c := range t.routeCDF {
					if u < c {
						q = i
						break
					}
				}
			}
			t.queues = append(t.queues, int32(q))
		}
	}
	return t.arrivals, t.sizes, t.services, t.queues
}

// matches reports whether the trace was generated for this configuration
// point; Run refuses mismatched traces instead of silently simulating a
// different workload.
func (t *Trace) matches(cfg Config) error {
	if t.seed != cfg.Seed {
		return fmt.Errorf("core: trace generated for seed %d, run wants %d", t.seed, cfg.Seed)
	}
	if t.rate != cfg.ArrivalRate {
		return fmt.Errorf("core: trace generated at arrival rate %g, run wants %g", t.rate, cfg.ArrivalRate)
	}
	return nil
}

// traceCursor is one run's read position in a shared trace. It holds
// snapshot slice headers so the steady-state read path touches no lock:
// refresh (which does lock) runs only when the run outpaces the
// already-generated prefix.
type traceCursor struct {
	tr       *Trace
	arrivals []float64
	sizes    []int32
	services []float64
	queues   []int32
}

func newTraceCursor(tr *Trace) *traceCursor {
	c := &traceCursor{tr: tr}
	c.refresh(0)
	return c
}

func (c *traceCursor) refresh(k int) {
	c.arrivals, c.sizes, c.services, c.queues = c.tr.ensure(k)
}

// at returns entry k, extending the trace as needed.
func (c *traceCursor) at(k int) (arrival float64, total int, svc float64, queue int) {
	if k >= len(c.arrivals) {
		c.refresh(k)
	}
	return c.arrivals[k], int(c.sizes[k]), c.services[k], int(c.queues[k])
}

// routingCDF normalizes queue weights (nil = balanced over n queues) into
// the cumulative distribution the routing draw walks. Factored out so the
// live simulation and the trace generator share the identical arithmetic
// — the CDF values must be bit-equal for the routing draws to agree.
func routingCDF(weights []float64, n int) []float64 {
	if weights == nil {
		weights = Balanced(n)
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	cdf := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / wsum
		cdf[i] = acc
	}
	return cdf
}
