package core

import (
	"fmt"
	"math"

	"coalloc/internal/stats"
)

// PrecisionConfig wraps a Config with a sequential stopping rule: run
// independent replications until the 95% confidence half-width of the mean
// response time drops below the requested relative precision. This is the
// standard discipline for publication-grade simulation points (the CSIM
// runs behind the paper's curves would have used the same idea).
type PrecisionConfig struct {
	// Run is the base configuration; its Seed starts the replication
	// sequence.
	Run Config
	// RelativePrecision is the target half-width divided by the mean
	// (e.g. 0.05 for +-5%). Must be positive.
	RelativePrecision float64
	// MinReplications and MaxReplications bound the sequential
	// procedure. Defaults: 3 and 20.
	MinReplications, MaxReplications int
}

func (c *PrecisionConfig) applyDefaults() {
	if c.MinReplications == 0 {
		c.MinReplications = 3
	}
	if c.MaxReplications == 0 {
		c.MaxReplications = 20
	}
}

// PrecisionResult extends the merged Result with the stopping diagnosis.
type PrecisionResult struct {
	Result
	// Replications is the number of replications actually run.
	Replications int
	// AchievedRelative is the final relative half-width.
	AchievedRelative float64
	// Converged reports whether the target precision was met within
	// MaxReplications. A saturated configuration typically does not
	// converge — its "mean response time" is not a steady-state
	// quantity.
	Converged bool
}

// RunUntilPrecision runs replications until the confidence target is met.
func RunUntilPrecision(cfg PrecisionConfig) (PrecisionResult, error) {
	if cfg.MinReplications == 1 {
		// Checked before the defaults fill in: the generic bounds error
		// below would blame the pair ("bounds 1..20") when the actual
		// problem is that a single replication has no variance estimate.
		return PrecisionResult{}, fmt.Errorf(
			"core: MinReplications 1 cannot estimate a confidence half-width; use at least 2, or leave it 0 for the default of 3")
	}
	cfg.applyDefaults()
	if cfg.RelativePrecision <= 0 {
		return PrecisionResult{}, fmt.Errorf("core: relative precision %g must be positive", cfg.RelativePrecision)
	}
	if cfg.MinReplications < 2 || cfg.MaxReplications < cfg.MinReplications {
		return PrecisionResult{}, fmt.Errorf("core: replication bounds %d..%d",
			cfg.MinReplications, cfg.MaxReplications)
	}

	var resp, gross, net, slow stats.Welford
	var merged PrecisionResult
	saturated := false
	jobs := 0
	for n := 1; n <= cfg.MaxReplications; n++ {
		c := cfg.Run
		c.Seed = cfg.Run.Seed + uint64(n-1)*1000003
		res, err := Run(c)
		if err != nil {
			return PrecisionResult{}, err
		}
		resp.Add(res.MeanResponse)
		gross.Add(res.GrossUtilization)
		net.Add(res.NetUtilization)
		slow.Add(res.MeanSlowdown)
		jobs += res.Jobs
		saturated = saturated || res.Saturated
		merged.Policy = res.Policy
		merged.OfferedGross = res.OfferedGross

		if n < cfg.MinReplications {
			continue
		}
		hw := stats.TQuantile(resp.N()-1, 0.95) * resp.StdDev() / math.Sqrt(float64(resp.N()))
		rel := math.Inf(1)
		if resp.Mean() != 0 {
			rel = hw / math.Abs(resp.Mean())
		}
		if rel <= cfg.RelativePrecision || n == cfg.MaxReplications {
			merged.MeanResponse = resp.Mean()
			merged.RespHalfWidth = hw
			merged.GrossUtilization = gross.Mean()
			merged.NetUtilization = net.Mean()
			merged.MeanSlowdown = slow.Mean()
			merged.Jobs = jobs
			merged.Saturated = saturated
			merged.Replications = n
			merged.AchievedRelative = rel
			merged.Converged = rel <= cfg.RelativePrecision
			return merged, nil
		}
	}
	panic("core: unreachable") // the loop always returns at MaxReplications
}
