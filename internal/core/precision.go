package core

import (
	"fmt"
	"math"

	"coalloc/internal/stats"
	"coalloc/internal/workpool"
)

// PrecisionConfig wraps a Config with a sequential stopping rule: run
// independent replications until the 95% confidence half-width of the mean
// response time drops below the requested relative precision. This is the
// standard discipline for publication-grade simulation points (the CSIM
// runs behind the paper's curves would have used the same idea).
type PrecisionConfig struct {
	// Run is the base configuration; its Seed starts the replication
	// sequence.
	Run Config
	// RelativePrecision is the target half-width divided by the mean
	// (e.g. 0.05 for +-5%). Must be positive.
	RelativePrecision float64
	// MinReplications and MaxReplications bound the sequential
	// procedure. Defaults: 3 and 20.
	MinReplications, MaxReplications int
}

func (c *PrecisionConfig) applyDefaults() {
	if c.MinReplications == 0 {
		c.MinReplications = 3
	}
	if c.MaxReplications == 0 {
		c.MaxReplications = 20
	}
}

// PrecisionResult extends the merged Result with the stopping diagnosis.
type PrecisionResult struct {
	Result
	// Replications is the number of replications actually run — i.e. the
	// number the stopping rule consumed; speculative replications beyond
	// the stopping point are discarded and not counted.
	Replications int
	// AchievedRelative is the final relative half-width.
	AchievedRelative float64
	// Converged reports whether the target precision was met within
	// MaxReplications. A saturated configuration typically does not
	// converge — its "mean response time" is not a steady-state
	// quantity.
	Converged bool
}

// RunUntilPrecision runs replications until the confidence target is met.
//
// Replications execute speculatively in batches on the shared worker pool:
// the first MinReplications (which the stopping rule must consume no
// matter what) launch together, and each further batch spans the pool's
// width. The stopping decision itself consumes results strictly in seed
// order, evaluating the same Welford recurrence and half-width formula the
// serial loop would, so both the replication count at which it stops and
// the merged PrecisionResult are bit-identical to running the sequential
// procedure one replication at a time — speculation only ever runs
// replications the serial loop might not have needed, and those are
// discarded unread. With an Observer attached (single-threaded by
// contract) the batches degenerate to one replication at a time, serially,
// so no speculative run ever pollutes the trace.
//
// The merged Result carries every Result field, folded across the consumed
// replications exactly as RunReplications does.
func RunUntilPrecision(cfg PrecisionConfig) (PrecisionResult, error) {
	if cfg.MinReplications == 1 {
		// Checked before the defaults fill in: the generic bounds error
		// below would blame the pair ("bounds 1..20") when the actual
		// problem is that a single replication has no variance estimate.
		return PrecisionResult{}, fmt.Errorf(
			"core: MinReplications 1 cannot estimate a confidence half-width; use at least 2, or leave it 0 for the default of 3")
	}
	cfg.applyDefaults()
	if cfg.RelativePrecision <= 0 {
		return PrecisionResult{}, fmt.Errorf("core: relative precision %g must be positive", cfg.RelativePrecision)
	}
	if cfg.MinReplications < 2 || cfg.MaxReplications < cfg.MinReplications {
		return PrecisionResult{}, fmt.Errorf("core: replication bounds %d..%d",
			cfg.MinReplications, cfg.MaxReplications)
	}

	results := make([]Result, cfg.MaxReplications)
	errs := make([]error, cfg.MaxReplications)
	ran := 0 // replications launched (and completed) so far
	serial := cfg.Run.Observer != nil
	batch := workpool.Size()
	if serial || batch < 1 {
		batch = 1
	}
	// ensure runs replications [ran, n) — concurrently on the pool unless
	// an Observer forces the serial path — and waits for them.
	ensure := func(n int) {
		if n > cfg.MaxReplications {
			n = cfg.MaxReplications
		}
		if n <= ran {
			return
		}
		lo := ran
		runOne := func(k int) {
			i := lo + k
			c := cfg.Run
			c.Seed = cfg.Run.Seed + uint64(i)*1000003
			results[i], errs[i] = Run(c)
		}
		if serial {
			for k := 0; k < n-lo; k++ {
				runOne(k)
			}
		} else {
			workpool.Do(n-lo, runOne)
		}
		ran = n
	}

	// The stopping rule consumes no result before MinReplications, so
	// those are not speculative — launch them as one batch.
	ensure(cfg.MinReplications)

	var resp stats.Welford
	for n := 1; n <= cfg.MaxReplications; n++ {
		if n > ran {
			ensure(ran + batch)
		}
		if errs[n-1] != nil {
			return PrecisionResult{}, errs[n-1]
		}
		resp.Add(results[n-1].MeanResponse)
		if n < cfg.MinReplications {
			continue
		}
		hw := stats.TQuantile(resp.N()-1, 0.95) * resp.StdDev() / math.Sqrt(float64(resp.N()))
		rel := math.Inf(1)
		if resp.Mean() != 0 {
			rel = hw / math.Abs(resp.Mean())
		}
		if rel <= cfg.RelativePrecision || n == cfg.MaxReplications {
			// mergeReplications computes the across-replication mean and
			// half-width with the same recurrence and formula as the
			// decision loop above, so the merged MeanResponse and
			// RespHalfWidth are bitwise the values the rule stopped on.
			merged := PrecisionResult{
				Result:           mergeReplications(results[:n]),
				Replications:     n,
				AchievedRelative: rel,
				Converged:        rel <= cfg.RelativePrecision,
			}
			return merged, nil
		}
	}
	panic("core: unreachable") // the loop always returns at MaxReplications
}
