package core

import (
	"fmt"
	"math"
	"testing"

	"coalloc/internal/stats"
)

// serialRunUntilPrecision reimplements the pre-speculation sequential
// stopping procedure — one replication at a time, strictly in seed order —
// as the reference the speculative engine must match bit for bit.
func serialRunUntilPrecision(t *testing.T, cfg PrecisionConfig) PrecisionResult {
	t.Helper()
	cfg.applyDefaults()
	var resp stats.Welford
	var results []Result
	for n := 1; n <= cfg.MaxReplications; n++ {
		c := cfg.Run
		c.Seed = cfg.Run.Seed + uint64(n-1)*1000003
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		resp.Add(res.MeanResponse)
		if n < cfg.MinReplications {
			continue
		}
		hw := stats.TQuantile(resp.N()-1, 0.95) * resp.StdDev() / math.Sqrt(float64(resp.N()))
		rel := math.Inf(1)
		if resp.Mean() != 0 {
			rel = hw / math.Abs(resp.Mean())
		}
		if rel <= cfg.RelativePrecision || n == cfg.MaxReplications {
			return PrecisionResult{
				Result:           mergeReplications(results),
				Replications:     n,
				AchievedRelative: rel,
				Converged:        rel <= cfg.RelativePrecision,
			}
		}
	}
	t.Fatal("serial reference did not terminate")
	return PrecisionResult{}
}

// TestRunUntilPrecisionSpeculativeMatchesSerial is the speculation
// guardrail: across a grid of seeds and precision targets, the speculative
// batched engine must stop at the same replication count and return a
// bit-identical merged PrecisionResult as the one-at-a-time serial
// procedure. Speculative replications beyond the stopping point must leave
// no trace in the result.
func TestRunUntilPrecisionSpeculativeMatchesSerial(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   100,
		MeasureJobs:  800, // small runs: enough variance that targets differ
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.4, 128),
	}
	for _, seed := range []uint64{1, 5, 42} {
		for _, target := range []float64{0.25, 0.08, 0.02} {
			cfg := PrecisionConfig{Run: base, RelativePrecision: target, MaxReplications: 12}
			cfg.Run.Seed = seed
			spec, err := RunUntilPrecision(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := serialRunUntilPrecision(t, cfg)
			if spec.Replications != ref.Replications {
				t.Errorf("seed %d target %g: speculative stopped at %d replications, serial at %d",
					seed, target, spec.Replications, ref.Replications)
				continue
			}
			if spec.Converged != ref.Converged || spec.AchievedRelative != ref.AchievedRelative {
				t.Errorf("seed %d target %g: diagnosis differs: (%v, %g) vs (%v, %g)",
					seed, target, spec.Converged, spec.AchievedRelative, ref.Converged, ref.AchievedRelative)
			}
			if a, b := fmt.Sprintf("%+v", spec.Result), fmt.Sprintf("%+v", ref.Result); a != b {
				t.Errorf("seed %d target %g: merged Result differs:\n  speculative: %s\n  serial:      %s",
					seed, target, a, b)
			}
		}
	}
}

// TestRunUntilPrecisionCarriesAllResultFields pins the full-field merge:
// the PrecisionResult's embedded Result must equal, field for field, what
// RunReplications produces for the same config and replication count — not
// just the mean response and half-width.
func TestRunUntilPrecisionCarriesAllResultFields(t *testing.T) {
	spec := testSpec(t, 16, 4)
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "LS",
		WarmupJobs:   200,
		MeasureJobs:  2000,
		Seed:         9,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.35, 128),
	}
	pr, err := RunUntilPrecision(PrecisionConfig{Run: cfg, RelativePrecision: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunReplications(cfg, pr.Replications)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fmt.Sprintf("%+v", pr.Result), fmt.Sprintf("%+v", want); a != b {
		t.Errorf("PrecisionResult.Result != RunReplications(%d):\n  precision:    %s\n  replications: %s",
			pr.Replications, a, b)
	}
	// Spot-check a few fields the old implementation dropped, so a future
	// regression fails loudly even if the formats happen to collide.
	if pr.GrossUtilization <= 0 || pr.NetUtilization <= 0 {
		t.Errorf("utilizations not carried: gross %g net %g", pr.GrossUtilization, pr.NetUtilization)
	}
	if len(pr.PerClusterUtilization) != len(cfg.ClusterSizes) {
		t.Errorf("per-cluster utilization has %d entries", len(pr.PerClusterUtilization))
	}
	if pr.MeanSlowdown < 1 {
		t.Errorf("slowdown %g not carried", pr.MeanSlowdown)
	}
	if pr.Throughput <= 0 || pr.SimTime <= 0 {
		t.Errorf("throughput %g / simtime %g not carried", pr.Throughput, pr.SimTime)
	}
}
