// Package core is the simulator proper: it wires the workload model, the
// multicluster, and a scheduling policy to the discrete-event engine and
// produces the metrics the paper reports — mean response times (total and
// per queue), gross and net utilization, and the maximal utilization
// reached under a constant backlog.
package core

import (
	"fmt"

	"coalloc/internal/cluster"
	"coalloc/internal/dectrace"
	"coalloc/internal/faults"
	"coalloc/internal/obs"
	"coalloc/internal/policies"
	"coalloc/internal/workload"
)

// Config describes one open-system simulation run: Poisson arrivals at a
// fixed rate into a multicluster under one policy.
type Config struct {
	// ClusterSizes gives the processor count of each cluster. The
	// paper's multicluster is {32, 32, 32, 32}; the SC reference
	// is {128}.
	ClusterSizes []int
	// Spec is the workload (sizes, service times, splitting, extension).
	// Spec.Clusters must equal len(ClusterSizes).
	Spec workload.Spec
	// Policy is one of "GS", "LS", "LP", "SC".
	Policy string
	// RequestType selects the request structure (default Unordered).
	// Ordered, Flexible and Total requests are supported by the GS and
	// SC policies only.
	RequestType workload.RequestType
	// Fit is the placement rule (the paper uses Worst Fit, the zero value).
	Fit cluster.Fit
	// Lookahead bounds the number of queued jobs that receive
	// reservations per conservative-backfilling pass. 0 means the default
	// (policies.DefaultLookahead, 32); explicit values must be >= 1. A
	// pass that truncates the queue at the cap reports it under the
	// sched.lookahead_truncated counter, so the bound is never silent.
	Lookahead int
	// ArrivalRate is the Poisson arrival rate in jobs per second. Set it
	// directly or via Spec.ArrivalRateForGrossUtilization.
	ArrivalRate float64
	// QueueWeights routes jobs to local queues. Its length must equal
	// the number of clusters; it is normalized. Nil means balanced.
	// The paper's unbalanced case is {0.4, 0.2, 0.2, 0.2}.
	QueueWeights []float64
	// WarmupJobs is the number of departures discarded before
	// measurement starts. Default 2000; set NoWarmup to measure from
	// time zero instead (WarmupJobs == 0 alone means "use the default").
	WarmupJobs int
	// NoWarmup disables the warmup period entirely: measurement starts
	// at virtual time zero, before the first arrival.
	NoWarmup bool
	// MeasureJobs is the number of measured departures. Default 20000.
	MeasureJobs int
	// Seed selects the random streams.
	Seed uint64
	// Observer, when non-nil, receives the run's metrics and (optionally)
	// its JSONL event trace. An Observer is single-threaded: attaching
	// one makes RunReplications execute its replications serially.
	Observer *obs.Observer
	// Trace, when non-nil, replays a pre-generated workload record (see
	// NewTrace) instead of sampling jobs live. The trace's seed and
	// arrival rate must match the run's; sweeps use this to run every
	// policy on the identical job stream (common random numbers). Only
	// Unordered requests can be traced.
	Trace *Trace
	// TraceProvider, consulted when Trace is nil, resolves a shared trace
	// for the run's seed. RunReplications derives a distinct seed per
	// replication, so a provider (rather than a single Trace) is how a
	// replicated run shares workloads: return nil to fall back to live
	// sampling for that seed.
	TraceProvider func(seed uint64) *Trace
	// SaturationCutoff enables the early divergence monitor: the run
	// samples its backlog growth at fixed completed-job checkpoints and
	// halts as soon as the growth provably exceeds the end-of-run
	// saturation heuristic (see run.go). A run the monitor stops is
	// marked Saturated with TruncatedJobs > 0; a run the monitor never
	// stops is bit-identical to one with the monitor off — the
	// checkpoints only read state, they never draw from a stream or
	// schedule an event. Off by default: sweeps that use saturated
	// points purely as curve terminators opt in.
	SaturationCutoff bool
	// Faults, when non-nil with a positive MTBF, injects per-cluster
	// processor failure/repair processes into the run (see package
	// faults). The fault draws come from their own named streams, so a
	// workload trace stays valid under any failure rate. A nil or
	// zero-rate spec leaves the run bit-identical to a fault-free one —
	// pinned by a guardrail test. Every built-in policy is fault-aware,
	// including the backfilling pair (GS-EASY, GS-CONS), which repair
	// their availability profiles on kills and capacity changes; Validate
	// still rejects the combination for any future policy that does not
	// implement policies.FaultAware.
	Faults *faults.Spec
	// Decisions, when non-nil, enables the decision-trace layer (package
	// dectrace): every dispatch, head miss, reservation and backfill
	// rejection is recorded with its unchosen alternatives, regret
	// aggregates land in Result, and — with an Observer attached —
	// decision records flow into the JSONL trace. Nil keeps the run
	// bit-identical to a build without the layer (the disabled path is
	// one pointer compare per hook), pinned by a guardrail test.
	Decisions *dectrace.Options
}

func (c *Config) applyDefaults() {
	if c.NoWarmup {
		c.WarmupJobs = 0
	} else if c.WarmupJobs == 0 {
		c.WarmupJobs = 2000
	}
	if c.MeasureJobs == 0 {
		c.MeasureJobs = 20000
	}
	if c.Faults != nil && !c.Faults.Enabled() {
		// A zero-rate spec is "no faults": normalizing it to nil here
		// guarantees the simulation takes the exact fault-free code
		// path, not merely an equivalent one.
		c.Faults = nil
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if len(c.ClusterSizes) == 0 {
		return fmt.Errorf("core: no clusters configured")
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Spec.Clusters != len(c.ClusterSizes) {
		return fmt.Errorf("core: spec splits over %d clusters but system has %d",
			c.Spec.Clusters, len(c.ClusterSizes))
	}
	if c.ArrivalRate <= 0 {
		return fmt.Errorf("core: arrival rate %g must be positive", c.ArrivalRate)
	}
	if c.QueueWeights != nil && len(c.QueueWeights) != len(c.ClusterSizes) {
		return fmt.Errorf("core: %d queue weights for %d clusters",
			len(c.QueueWeights), len(c.ClusterSizes))
	}
	if c.WarmupJobs < 0 || c.MeasureJobs <= 0 {
		return fmt.Errorf("core: warmup %d / measure %d jobs", c.WarmupJobs, c.MeasureJobs)
	}
	if c.Lookahead < 0 {
		return fmt.Errorf("core: lookahead %d must be >= 1 (or 0 for the default)", c.Lookahead)
	}
	pol, err := buildPolicy(c.Policy, len(c.ClusterSizes), c.Fit, c.Lookahead)
	if err != nil {
		return err
	}
	if c.RequestType != workload.Unordered && c.Policy != "GS" && c.Policy != "SC" {
		return fmt.Errorf("core: %s requests require the GS or SC policy, not %s",
			c.RequestType, c.Policy)
	}
	if (c.Trace != nil || c.TraceProvider != nil) && c.RequestType != workload.Unordered {
		return fmt.Errorf("core: workload traces support unordered requests, not %s", c.RequestType)
	}
	if c.Faults.Enabled() {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if _, ok := pol.(policies.FaultAware); !ok {
			return fmt.Errorf("core: policy %s does not implement policies.FaultAware (abort handling, capacity-change repair of any retained scheduling state), so it cannot run with fault injection", c.Policy)
		}
	}
	return nil
}

// buildPolicy constructs a policy by its paper abbreviation. lookahead is
// the conservative-backfilling reservation bound; 0 selects the default.
func buildPolicy(name string, clusters int, fit cluster.Fit, lookahead int) (policies.Policy, error) {
	if lookahead == 0 {
		lookahead = policies.DefaultLookahead
	}
	if lookahead < 1 {
		return nil, fmt.Errorf("core: lookahead %d must be >= 1", lookahead)
	}
	switch name {
	case "GS":
		return policies.NewGS(fit), nil
	case "SC":
		if clusters != 1 {
			return nil, fmt.Errorf("core: SC needs a single cluster, got %d", clusters)
		}
		return policies.NewSC(), nil
	case "GS-EASY":
		return policies.NewEASY(fit), nil
	case "GS-CONS":
		return policies.NewConservative(fit, lookahead), nil
	case "GS-SPF":
		return policies.NewSPF(fit), nil
	case "SC-CONS":
		if clusters != 1 {
			return nil, fmt.Errorf("core: SC-CONS needs a single cluster, got %d", clusters)
		}
		return policies.NewSCConservative(lookahead), nil
	case "SC-EASY":
		if clusters != 1 {
			return nil, fmt.Errorf("core: SC-EASY needs a single cluster, got %d", clusters)
		}
		return policies.NewSCEASY(), nil
	case "LS":
		return policies.NewLS(clusters, fit), nil
	case "LS-sorted":
		// Ablation variant: queues re-enabled in fixed index order.
		return policies.NewLSSortedReenable(clusters, fit), nil
	case "LP":
		return policies.NewLP(clusters, fit), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (want GS, LS, LS-sorted, LP or SC)", name)
	}
}

// SizeClassBounds gives the inclusive upper bound of each job-size class
// used by Result.ResponseBySizeClass: 1-8, 9-16, 17-32, 33-64, 65-128+
// (the last class absorbs anything larger).
var SizeClassBounds = []int{8, 16, 32, 64, 128}

// SizeClass returns the class index of a total job size.
func SizeClass(size int) int {
	for i, b := range SizeClassBounds {
		if size <= b {
			return i
		}
	}
	return len(SizeClassBounds) - 1
}

// SizeClassLabel renders a class as "lo-hi".
func SizeClassLabel(i int) string {
	lo := 1
	if i > 0 {
		lo = SizeClassBounds[i-1] + 1
	}
	return fmt.Sprintf("%d-%d", lo, SizeClassBounds[i])
}

// Balanced returns uniform queue weights for n queues.
func Balanced(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Unbalanced returns the paper's unbalanced routing for n queues: the
// first queue receives twice the share of each of the others (40%/20% for
// four clusters).
func Unbalanced(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = 2
	return w
}

// Result summarizes one run (or the merge of several replications).
type Result struct {
	Policy string
	// MeanResponse is the mean response time over measured jobs, in
	// seconds; the paper's main metric.
	MeanResponse float64
	// RespHalfWidth is the 95% confidence half-width of MeanResponse
	// (batch means within a run; across replications when merged).
	RespHalfWidth float64
	// MeanResponseLocal and MeanResponseGlobal break the mean down by
	// queue type; either may be NaN when the policy lacks that queue
	// type or no such job was measured.
	MeanResponseLocal  float64
	MeanResponseGlobal float64
	// MedianResponse and P95Response are streaming (P-squared) estimates
	// of the response-time distribution's 50th and 95th percentiles.
	MedianResponse float64
	P95Response    float64
	// MeanSlowdown is the mean bounded slowdown,
	// max(1, response / max(service, 10 s)), the standard job-scheduling
	// metric that caps the influence of very short jobs.
	MeanSlowdown float64
	// GrossUtilization is the measured time-average fraction of busy
	// processors (extended service times — includes wide-area
	// communication).
	GrossUtilization float64
	// NetUtilization counts only computation and fast local
	// communication (the non-extended service times).
	NetUtilization float64
	// OfferedGross is the gross load offered by the arrival process:
	// lambda * E[gross work] / capacity.
	OfferedGross float64
	// Jobs is the number of measured departures.
	Jobs int
	// FinalQueue is the number of jobs still queued when the run ended.
	FinalQueue int
	// Saturated reports the heuristic that the system could not keep up
	// with the offered load (the queue kept growing).
	Saturated bool
	// TruncatedJobs is the number of measured departures the saturation
	// cutoff skipped: MeasureJobs minus Jobs for a run the divergence
	// monitor halted early. Zero when Config.SaturationCutoff is off or
	// the monitor never fired; merged replications sum it. TruncatedJobs
	// > 0 implies Saturated.
	TruncatedJobs int
	// SimTime is the virtual length of the measurement window in seconds.
	SimTime float64
	// ResponseBySizeClass breaks the mean response time down by total
	// job size, over the classes of SizeClassBounds — the view behind
	// the paper's Section 3.2 argument that a few very large jobs
	// dominate FCFS performance. Entries with no measured jobs are NaN.
	ResponseBySizeClass []float64
	// MeanJobsInSystem is the time-average number of jobs present
	// (queued or running) over the measurement window. By Little's law
	// it equals throughput times mean response time in steady state —
	// an end-to-end consistency check the tests enforce.
	MeanJobsInSystem float64
	// Throughput is the measured departure rate in jobs per second.
	Throughput float64
	// PerClusterUtilization is the measured gross utilization of each
	// cluster over the window — the imbalance view behind the paper's
	// balanced/unbalanced comparison.
	PerClusterUtilization []float64
	// UtilizationImbalance is the spread max - min of the per-cluster
	// utilizations.
	UtilizationImbalance float64
	// Fault-injection outcomes (zero when Config.Faults is nil). The
	// counts cover the whole run, warmup included — failures do not stop
	// during warmup, so a windowed count would misstate the injected
	// process. Merged replications sum them.
	FailuresInjected int
	FailuresSkipped  int
	Repairs          int
	JobsKilled       int
	Resubmits        int
	// WorkLost is the processor-seconds of service discarded by aborts
	// over the whole run.
	WorkLost float64
	// WorkSaved is the processor-seconds of in-flight service that
	// checkpointing preserved across aborts; zero unless the fault spec
	// enables a checkpoint interval.
	WorkSaved float64
	// MeanAvailableFraction is the time-average fraction of processors
	// not down over the measurement window; 1 exactly when faults are
	// disabled.
	MeanAvailableFraction float64
	// Decision-trace aggregates (zero when Config.Decisions is nil; merged
	// replications sum them, except RegretMax which takes the maximum).
	// Decisions counts recorded decision records of every kind.
	Decisions int
	// RegretTotal is the summed per-job regret over dispatches: seconds a
	// job waited beyond the earliest start an unchosen alternative
	// placement offered it (see package dectrace).
	RegretTotal float64
	// RegretMax is the largest single-dispatch regret.
	RegretMax float64
	// RegretDecisions counts dispatches with nonzero regret.
	RegretDecisions int
}
