package core

import (
	"fmt"
	"testing"
)

// TestSaturationCutoffBitIdenticalWhenStable is the cutoff's bit-identity
// guardrail: on a run the divergence monitor never fires on, enabling
// Config.SaturationCutoff must not change a single field of the Result.
// The monitor only reads scheduler state at count-based checkpoints, so
// the event sequence and every stream draw are untouched.
func TestSaturationCutoffBitIdenticalWhenStable(t *testing.T) {
	for _, pol := range []string{"GS", "LS", "GS-EASY"} {
		cfg := Config{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         testSpec(t, 16, 4),
			Policy:       pol,
			WarmupJobs:   300,
			MeasureJobs:  4000,
			Seed:         3,
		}
		plain, err := RunAtUtilization(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		cfg.SaturationCutoff = true
		cut, err := RunAtUtilization(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Saturated || cut.TruncatedJobs != 0 {
			t.Fatalf("%s: stable run saturated=%v truncated=%d", pol, plain.Saturated, cut.TruncatedJobs)
		}
		// Sprintf equality covers every field, including NaN-valued ones
		// that == would reject.
		a, b := fmt.Sprintf("%+v", plain), fmt.Sprintf("%+v", cut)
		if a != b {
			t.Errorf("%s: cutoff changed a stable run's Result:\n  off: %s\n  on:  %s", pol, a, b)
		}
	}
}

// TestSaturationCutoffTruncatesSaturatedRun checks the monitor actually
// fires on a deeply saturated run: the result is flagged Saturated, the
// truncation is recorded, and the job accounting is consistent.
func TestSaturationCutoffTruncatesSaturatedRun(t *testing.T) {
	cfg := Config{
		ClusterSizes:     []int{32, 32, 32, 32},
		Spec:             testSpec(t, 16, 4),
		Policy:           "GS",
		WarmupJobs:       200,
		MeasureJobs:      8000,
		Seed:             3,
		SaturationCutoff: true,
	}
	res, err := RunAtUtilization(cfg, 0.95) // far beyond GS's ~0.62 maximum
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("cutoff run not flagged as saturated")
	}
	if res.TruncatedJobs <= 0 {
		t.Errorf("TruncatedJobs = %d, want > 0 for a deeply saturated run", res.TruncatedJobs)
	}
	if res.Jobs >= cfg.MeasureJobs {
		t.Errorf("Jobs = %d, want < MeasureJobs %d after the early stop", res.Jobs, cfg.MeasureJobs)
	}
	if res.Jobs+res.TruncatedJobs != cfg.MeasureJobs {
		t.Errorf("Jobs %d + TruncatedJobs %d != MeasureJobs %d", res.Jobs, res.TruncatedJobs, cfg.MeasureJobs)
	}
	// The full-horizon run must agree on the saturation verdict.
	cfg.SaturationCutoff = false
	full, err := RunAtUtilization(cfg, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Saturated {
		t.Error("full-horizon run disagrees: not saturated")
	}
	if full.Jobs != cfg.MeasureJobs {
		t.Errorf("full-horizon run measured %d jobs, want %d", full.Jobs, cfg.MeasureJobs)
	}
}

// TestSaturationCutoffDeterministic pins that the truncated run itself is
// reproducible: same config, same seed, same truncation point.
func TestSaturationCutoffDeterministic(t *testing.T) {
	cfg := Config{
		ClusterSizes:     []int{32, 32, 32, 32},
		Spec:             testSpec(t, 16, 4),
		Policy:           "GS",
		WarmupJobs:       200,
		MeasureJobs:      8000,
		Seed:             7,
		SaturationCutoff: true,
	}
	a, err := RunAtUtilization(cfg, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAtUtilization(cfg, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b); sa != sb {
		t.Errorf("truncated run not deterministic:\n  first:  %s\n  second: %s", sa, sb)
	}
}

// TestSaturationCutoffMergedReplications checks that merged replications
// sum the per-replication truncations and keep the Saturated flag.
func TestSaturationCutoffMergedReplications(t *testing.T) {
	cfg := Config{
		ClusterSizes:     []int{32, 32, 32, 32},
		Spec:             testSpec(t, 16, 4),
		Policy:           "GS",
		WarmupJobs:       200,
		MeasureJobs:      6000,
		Seed:             3,
		SaturationCutoff: true,
	}
	cfg.ArrivalRate = cfg.Spec.ArrivalRateForGrossUtilization(0.95, 128)
	const n = 3
	merged, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Saturated {
		t.Error("merged saturated replications not flagged")
	}
	var wantTrunc int
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*1000003
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		wantTrunc += r.TruncatedJobs
	}
	if wantTrunc <= 0 {
		t.Fatal("no replication truncated; config not saturated enough for the test")
	}
	if merged.TruncatedJobs != wantTrunc {
		t.Errorf("merged TruncatedJobs = %d, want the per-replication sum %d", merged.TruncatedJobs, wantTrunc)
	}
}
