package core

import (
	"math"
	"strings"
	"testing"

	"coalloc/internal/dist"
	"coalloc/internal/workload"
)

func testSpec(t *testing.T, limit, clusters int) workload.Spec {
	t.Helper()
	der := workload.DeriveDefault()
	sizes := der.Sizes128
	if clusters == 1 {
		return workload.Spec{
			Sizes:           sizes,
			Service:         der.Service,
			ComponentLimit:  sizes.Max(),
			Clusters:        1,
			ExtensionFactor: workload.DefaultExtensionFactor,
		}
	}
	return workload.Spec{
		Sizes:           sizes,
		Service:         der.Service,
		ComponentLimit:  limit,
		Clusters:        clusters,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "LS",
		WarmupJobs:   200,
		MeasureJobs:  2000,
		Seed:         77,
	}
	a, err := RunAtUtilization(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAtUtilization(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse || a.GrossUtilization != b.GrossUtilization {
		t.Errorf("same seed gave %v vs %v", a.MeanResponse, b.MeanResponse)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "GS",
		WarmupJobs:   200,
		MeasureJobs:  2000,
	}
	cfg.Seed = 1
	a, err := RunAtUtilization(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := RunAtUtilization(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse == b.MeanResponse {
		t.Error("different seeds produced identical mean responses")
	}
}

// TestWorkloadIdenticalAcrossPolicies: the common-random-numbers design —
// the job stream depends only on the seed, not on the policy.
func TestWorkloadIdenticalAcrossPolicies(t *testing.T) {
	get := func(policy string) Result {
		cfg := Config{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         testSpec(t, 16, 4),
			Policy:       policy,
			WarmupJobs:   100,
			MeasureJobs:  1000,
			Seed:         5,
		}
		res, err := RunAtUtilization(cfg, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := get("GS"), get("LS")
	// Same offered load and (nearly) the same measured utilization: both
	// policies process the same jobs at a stable load.
	if a.OfferedGross != b.OfferedGross {
		t.Errorf("offered loads differ: %g vs %g", a.OfferedGross, b.OfferedGross)
	}
	if math.Abs(a.GrossUtilization-b.GrossUtilization) > 0.02 {
		t.Errorf("measured utilizations differ: %g vs %g", a.GrossUtilization, b.GrossUtilization)
	}
}

func TestSaturationDetected(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "GS",
		WarmupJobs:   200,
		MeasureJobs:  4000,
		Seed:         3,
	}
	res, err := RunAtUtilization(cfg, 0.95) // far beyond GS's ~0.62 maximum
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Errorf("95%% offered load not flagged as saturated (queue %d)", res.FinalQueue)
	}
	if res.GrossUtilization >= 0.9 {
		t.Errorf("measured utilization %.3f should fall short of offered 0.95", res.GrossUtilization)
	}
}

func TestStableRunNotSaturated(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "LS",
		WarmupJobs:   500,
		MeasureJobs:  5000,
		Seed:         3,
	}
	res, err := RunAtUtilization(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("30% load flagged as saturated")
	}
	if math.Abs(res.GrossUtilization-0.3) > 0.05 {
		t.Errorf("measured %.3f at offered 0.3", res.GrossUtilization)
	}
}

func TestMeasuredUtilizationTracksOffered(t *testing.T) {
	for _, util := range []float64{0.2, 0.4, 0.5} {
		cfg := Config{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         testSpec(t, 24, 4),
			Policy:       "GS",
			WarmupJobs:   500,
			MeasureJobs:  8000,
			Seed:         9,
		}
		res, err := RunAtUtilization(cfg, util)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.GrossUtilization-util) > 0.04 {
			t.Errorf("offered %.2f, measured %.3f", util, res.GrossUtilization)
		}
		wantNet := res.GrossUtilization / cfg.Spec.GrossNetRatio()
		if math.Abs(res.NetUtilization-wantNet) > 0.03 {
			t.Errorf("net %.3f, want ~%.3f (gross/ratio)", res.NetUtilization, wantNet)
		}
	}
}

func TestResponseBreakdownByQueueType(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "LP",
		WarmupJobs:   300,
		MeasureJobs:  4000,
		Seed:         13,
	}
	res, err := RunAtUtilization(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MeanResponseLocal) || math.IsNaN(res.MeanResponseGlobal) {
		t.Fatal("LP must report both local and global means")
	}
	// The total mean lies between the two partial means.
	lo := math.Min(res.MeanResponseLocal, res.MeanResponseGlobal)
	hi := math.Max(res.MeanResponseLocal, res.MeanResponseGlobal)
	if res.MeanResponse < lo || res.MeanResponse > hi {
		t.Errorf("total %g outside [%g, %g]", res.MeanResponse, lo, hi)
	}

	// GS reports only a global mean; LS only a local one.
	cfg.Policy = "GS"
	gs, err := RunAtUtilization(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(gs.MeanResponseLocal) || math.IsNaN(gs.MeanResponseGlobal) {
		t.Error("GS queue-type breakdown")
	}
	cfg.Policy = "LS"
	ls, err := RunAtUtilization(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ls.MeanResponseLocal) || !math.IsNaN(ls.MeanResponseGlobal) {
		t.Error("LS queue-type breakdown")
	}
}

func TestRunReplicationsMerges(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "GS",
		WarmupJobs:   200,
		MeasureJobs:  2000,
		Seed:         1,
		ArrivalRate:  testSpecRate(t, 0.4),
	}
	res, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 3*2000 {
		t.Errorf("merged jobs %d", res.Jobs)
	}
	if math.IsInf(res.RespHalfWidth, 1) || res.RespHalfWidth <= 0 {
		t.Errorf("half-width %g", res.RespHalfWidth)
	}
	single, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replication mean should be near a single run's mean.
	if math.Abs(res.MeanResponse-single.MeanResponse)/single.MeanResponse > 0.5 {
		t.Errorf("replication mean %g vs single %g", res.MeanResponse, single.MeanResponse)
	}
	// The merged result carries every derived metric.
	if res.MeanJobsInSystem <= 0 || res.Throughput <= 0 {
		t.Errorf("merged L=%g, throughput=%g", res.MeanJobsInSystem, res.Throughput)
	}
	if len(res.PerClusterUtilization) != 4 {
		t.Errorf("merged per-cluster utilizations %v", res.PerClusterUtilization)
	}
	if len(res.ResponseBySizeClass) != len(SizeClassBounds) {
		t.Errorf("merged size classes %v", res.ResponseBySizeClass)
	}
	for ci, v := range res.ResponseBySizeClass {
		if math.IsNaN(v) || v <= 0 {
			t.Errorf("size class %s mean %g", SizeClassLabel(ci), v)
		}
	}
}

func TestSizeClassHelpers(t *testing.T) {
	cases := map[int]int{1: 0, 8: 0, 9: 1, 16: 1, 17: 2, 32: 2, 33: 3, 64: 3, 65: 4, 128: 4, 500: 4}
	for size, want := range cases {
		if got := SizeClass(size); got != want {
			t.Errorf("SizeClass(%d) = %d, want %d", size, got, want)
		}
	}
	if SizeClassLabel(0) != "1-8" || SizeClassLabel(4) != "65-128" {
		t.Errorf("labels %q %q", SizeClassLabel(0), SizeClassLabel(4))
	}
}

func testSpecRate(t *testing.T, util float64) float64 {
	t.Helper()
	spec := testSpec(t, 16, 4)
	return spec.ArrivalRateForGrossUtilization(util, 128)
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "GS",
		ArrivalRate:  0.01,
	}
	good.applyDefaults()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	mutate := []func(*Config){
		func(c *Config) { c.ClusterSizes = nil },
		func(c *Config) { c.Policy = "XX" },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.QueueWeights = []float64{1, 2} },
		func(c *Config) { c.Spec.Clusters = 2 },
		func(c *Config) { c.MeasureJobs = -1 },
	}
	for i, f := range mutate {
		c := good
		f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// SC on multiple clusters is invalid.
	c := good
	c.Policy = "SC"
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "single cluster") {
		t.Errorf("SC on 4 clusters: %v", err)
	}
}

func TestBalancedUnbalancedWeights(t *testing.T) {
	b := Balanced(4)
	for _, w := range b {
		if w != 1 {
			t.Errorf("balanced weights %v", b)
		}
	}
	u := Unbalanced(4)
	if u[0] != 2 || u[1] != 1 || u[2] != 1 || u[3] != 1 {
		t.Errorf("unbalanced weights %v", u)
	}
}

func TestUnbalancedRoutingShiftsLoad(t *testing.T) {
	// With unbalanced routing, LS saturates earlier (the paper's
	// Sect. 3.1.2); at a moderately high load the unbalanced case must
	// show a clearly higher mean response.
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "LS",
		WarmupJobs:   500,
		MeasureJobs:  10000,
		Seed:         21,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.62, 128),
	}
	bal, err := RunReplications(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	unb := base
	unb.QueueWeights = Unbalanced(4)
	unbRes, err := RunReplications(unb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if unbRes.MeanResponse <= bal.MeanResponse {
		t.Errorf("unbalanced %g should exceed balanced %g near saturation (0.62)",
			unbRes.MeanResponse, bal.MeanResponse)
	}
}

func TestMMCAgainstErlangC(t *testing.T) {
	// Four processors in one cluster, unit-size jobs, exponential
	// service: an M/M/4 queue. Compare with the Erlang-C formula.
	const mu, rho, c = 1.0, 0.7, 4
	spec := workload.Spec{
		Sizes:           dist.NewEmpiricalInt([]int{1}, []float64{1}),
		Service:         dist.NewExponential(mu),
		ComponentLimit:  1,
		Clusters:        1,
		ExtensionFactor: 1,
	}
	cfg := Config{
		ClusterSizes: []int{c},
		Spec:         spec,
		Policy:       "SC",
		ArrivalRate:  rho * mu * c,
		WarmupJobs:   5000,
		MeasureJobs:  80000,
		Seed:         2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := mmcResponse(rho*mu*c, mu, c)
	if math.Abs(res.MeanResponse-want)/want > 0.08 {
		t.Errorf("M/M/4 mean response %.4f, want %.4f", res.MeanResponse, want)
	}
}

// mmcResponse returns the analytic M/M/c mean response time.
func mmcResponse(lambda, mu float64, c int) float64 {
	a := lambda / mu
	rho := a / float64(c)
	// Erlang C probability of waiting.
	sum := 0.0
	fact := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		sum += math.Pow(a, float64(k)) / fact
	}
	factC := fact * float64(c)
	pc := math.Pow(a, float64(c)) / (factC * (1 - rho))
	pWait := pc / (sum + pc)
	wq := pWait / (float64(c)*mu - lambda)
	return wq + 1/mu
}

func TestGSAndSCIdenticalOnOneCluster(t *testing.T) {
	// SC is GS on a single cluster; with the same seed they must produce
	// byte-identical results.
	spec := testSpec(t, 16, 1)
	cfg := Config{
		ClusterSizes: []int{128},
		Spec:         spec,
		WarmupJobs:   200,
		MeasureJobs:  3000,
		Seed:         4,
	}
	cfg.Policy = "GS"
	gs, err := RunAtUtilization(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = "SC"
	sc, err := RunAtUtilization(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gs.MeanResponse != sc.MeanResponse || gs.GrossUtilization != sc.GrossUtilization {
		t.Errorf("GS %v vs SC %v on one cluster", gs.MeanResponse, sc.MeanResponse)
	}
}

func TestBacklogValidation(t *testing.T) {
	spec := testSpec(t, 16, 4)
	bad := []BacklogConfig{
		{Spec: spec, Policy: "GS"},
		{ClusterSizes: []int{32, 32, 32, 32}, Spec: spec, Policy: "XX"},
		{ClusterSizes: []int{32, 32}, Spec: spec, Policy: "GS"},
		{ClusterSizes: []int{32, 32, 32, 32}, Spec: spec, Policy: "GS", Backlog: -1},
	}
	for i, cfg := range bad {
		if _, err := RunBacklog(cfg); err == nil {
			t.Errorf("bad backlog config %d accepted", i)
		}
	}
}

func TestBacklogDeterministic(t *testing.T) {
	cfg := BacklogConfig{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "GS",
		WarmupTime:   5000,
		MeasureTime:  30000,
		Seed:         6,
	}
	a, err := RunBacklog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBacklog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxGrossUtilization != b.MaxGrossUtilization || a.Jobs != b.Jobs {
		t.Error("backlog runs with equal seeds diverged")
	}
}

func TestBacklogOrderingAcrossLimits(t *testing.T) {
	// The paper's Table 3 shape: limit 24 yields the lowest maximal
	// utilization (size-64 jobs split (22,21,21) pack poorly).
	max := map[int]float64{}
	for _, limit := range []int{16, 24, 32} {
		res, err := RunBacklog(BacklogConfig{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         testSpec(t, limit, 4),
			Policy:       "GS",
			WarmupTime:   20000,
			MeasureTime:  200000,
			Seed:         8,
		})
		if err != nil {
			t.Fatal(err)
		}
		max[limit] = res.MaxGrossUtilization
	}
	if !(max[24] < max[16] && max[24] < max[32]) {
		t.Errorf("limit 24 should be worst: %v", max)
	}
}

func TestMM1ResponseHelper(t *testing.T) {
	if got := MM1Response(0.5, 1); got != 2 {
		t.Errorf("MM1Response(0.5, 1) = %g", got)
	}
	if !math.IsInf(MM1Response(1, 1), 1) {
		t.Error("unstable M/M/1 should report +Inf")
	}
}

func TestPerClusterUtilization(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "LS",
		WarmupJobs:   500,
		MeasureJobs:  8000,
		Seed:         33,
	}
	bal, err := RunAtUtilization(base, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bal.PerClusterUtilization) != 4 {
		t.Fatalf("per-cluster utilizations %v", bal.PerClusterUtilization)
	}
	var sum float64
	for _, u := range bal.PerClusterUtilization {
		if u < 0 || u > 1 {
			t.Errorf("cluster utilization %g outside [0,1]", u)
		}
		sum += u
	}
	// The mean of per-cluster utilizations equals the system utilization
	// (equal cluster sizes).
	if math.Abs(sum/4-bal.GrossUtilization) > 0.01 {
		t.Errorf("per-cluster mean %.3f vs system %.3f", sum/4, bal.GrossUtilization)
	}

	// Unbalanced routing must visibly skew the per-cluster loads.
	unb := base
	unb.QueueWeights = Unbalanced(4)
	unbRes, err := RunAtUtilization(unb, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if unbRes.UtilizationImbalance <= bal.UtilizationImbalance {
		t.Errorf("unbalanced imbalance %.3f not above balanced %.3f",
			unbRes.UtilizationImbalance, bal.UtilizationImbalance)
	}
	// Queue 0 receives 40% of the jobs: its cluster runs hottest.
	hottest := 0
	for c, u := range unbRes.PerClusterUtilization {
		if u > unbRes.PerClusterUtilization[hottest] {
			hottest = c
		}
	}
	if hottest != 0 {
		t.Errorf("hottest cluster %d, want 0 (the 40%% queue)", hottest)
	}
}

func TestConservativeBetweenFCFSAndEASY(t *testing.T) {
	// At a load beyond plain GS saturation, conservative backfilling
	// should be stable like EASY, while (weakly) more conservative.
	spec := testSpec(t, 16, 4)
	run := func(policy string) Result {
		cfg := Config{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         spec,
			Policy:       policy,
			WarmupJobs:   500,
			MeasureJobs:  8000,
			Seed:         19,
		}
		res, err := RunAtUtilization(cfg, 0.65)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cons, easy := run("GS-CONS"), run("GS-EASY")
	if cons.Saturated {
		t.Error("GS-CONS saturated at 0.65")
	}
	if easy.MeanResponse > cons.MeanResponse*1.5 {
		t.Errorf("EASY %g far above conservative %g — unexpected ordering",
			easy.MeanResponse, cons.MeanResponse)
	}
	t.Logf("GS-CONS %.0f s, GS-EASY %.0f s at 0.65", cons.MeanResponse, easy.MeanResponse)
}

func TestBuildPolicyNames(t *testing.T) {
	// Every registered name builds on a suitable system; unknown names fail.
	multi := []string{"GS", "GS-EASY", "GS-CONS", "GS-SPF", "LS", "LS-sorted", "LP"}
	for _, name := range multi {
		if _, err := buildPolicy(name, 4, 0, 0); err != nil {
			t.Errorf("buildPolicy(%s, 4): %v", name, err)
		}
	}
	for _, name := range []string{"SC", "SC-EASY", "SC-CONS"} {
		if _, err := buildPolicy(name, 1, 0, 0); err != nil {
			t.Errorf("buildPolicy(%s, 1): %v", name, err)
		}
		if _, err := buildPolicy(name, 4, 0, 0); err == nil {
			t.Errorf("buildPolicy(%s, 4) accepted a multicluster", name)
		}
	}
	if _, err := buildPolicy("NOPE", 4, 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}
