package core

import (
	"math"
	"strings"
	"testing"
)

func TestRunUntilPrecisionConverges(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   500,
		MeasureJobs:  6000,
		Seed:         3,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.35, 128),
	}
	res, err := RunUntilPrecision(PrecisionConfig{
		Run:               base,
		RelativePrecision: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge: achieved %.3f in %d replications",
			res.AchievedRelative, res.Replications)
	}
	if res.Replications < 3 || res.Replications > 20 {
		t.Errorf("replications %d outside bounds", res.Replications)
	}
	if res.AchievedRelative > 0.10 {
		t.Errorf("achieved %.3f, target 0.10", res.AchievedRelative)
	}
	if res.MeanResponse <= 0 || math.IsInf(res.RespHalfWidth, 1) {
		t.Errorf("mean %g half-width %g", res.MeanResponse, res.RespHalfWidth)
	}
	if res.Jobs != res.Replications*6000 {
		t.Errorf("jobs %d for %d replications", res.Jobs, res.Replications)
	}
}

func TestRunUntilPrecisionTighterTargetNeedsMoreReplications(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   300,
		MeasureJobs:  3000,
		Seed:         5,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.45, 128),
	}
	loose, err := RunUntilPrecision(PrecisionConfig{Run: base, RelativePrecision: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunUntilPrecision(PrecisionConfig{Run: base, RelativePrecision: 0.03, MaxReplications: 30})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Replications < loose.Replications {
		t.Errorf("tight target used %d replications, loose used %d",
			tight.Replications, loose.Replications)
	}
}

func TestRunUntilPrecisionCapsAtMax(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   100,
		MeasureJobs:  500, // tiny runs: high variance
		Seed:         7,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.5, 128),
	}
	res, err := RunUntilPrecision(PrecisionConfig{
		Run:               base,
		RelativePrecision: 0.0001, // unreachable
		MaxReplications:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged at an unreachable precision")
	}
	if res.Replications != 4 {
		t.Errorf("replications %d, want the cap 4", res.Replications)
	}
}

func TestRunUntilPrecisionValidation(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		ArrivalRate:  0.01,
	}
	if _, err := RunUntilPrecision(PrecisionConfig{Run: base, RelativePrecision: 0}); err == nil {
		t.Error("zero precision accepted")
	}
	if _, err := RunUntilPrecision(PrecisionConfig{
		Run: base, RelativePrecision: 0.1, MinReplications: 1, MaxReplications: 2,
	}); err == nil {
		t.Error("min replications below 2 accepted")
	}
	// An explicit single replication must get the specific diagnosis, not
	// the generic bounds error (which used to read "bounds 1..20" and
	// suggested the pair was malformed rather than the 1 itself).
	_, err := RunUntilPrecision(PrecisionConfig{Run: base, RelativePrecision: 0.1, MinReplications: 1})
	if err == nil {
		t.Fatal("MinReplications 1 accepted")
	}
	if !strings.Contains(err.Error(), "confidence half-width") || strings.Contains(err.Error(), "bounds") {
		t.Errorf("MinReplications 1 error = %q, want the half-width explanation", err)
	}
}

// TestRunUntilPrecisionNonConvergedAtMinBound pins the non-converged path
// at the smallest legal configuration: exactly 2 replications with an
// unreachable target must report Converged == false with a finite achieved
// precision, not an error.
func TestRunUntilPrecisionNonConvergedAtMinBound(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   100,
		MeasureJobs:  500,
		Seed:         11,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.4, 128),
	}
	res, err := RunUntilPrecision(PrecisionConfig{
		Run:               base,
		RelativePrecision: 1e-9,
		MinReplications:   2,
		MaxReplications:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged at a 1e-9 relative precision in 2 replications")
	}
	if res.Replications != 2 {
		t.Errorf("replications %d, want 2", res.Replications)
	}
	if math.IsInf(res.AchievedRelative, 0) || math.IsNaN(res.AchievedRelative) || res.AchievedRelative <= 0 {
		t.Errorf("achieved relative precision %g, want finite positive", res.AchievedRelative)
	}
}
