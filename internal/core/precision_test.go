package core

import (
	"math"
	"testing"
)

func TestRunUntilPrecisionConverges(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   500,
		MeasureJobs:  6000,
		Seed:         3,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.35, 128),
	}
	res, err := RunUntilPrecision(PrecisionConfig{
		Run:               base,
		RelativePrecision: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge: achieved %.3f in %d replications",
			res.AchievedRelative, res.Replications)
	}
	if res.Replications < 3 || res.Replications > 20 {
		t.Errorf("replications %d outside bounds", res.Replications)
	}
	if res.AchievedRelative > 0.10 {
		t.Errorf("achieved %.3f, target 0.10", res.AchievedRelative)
	}
	if res.MeanResponse <= 0 || math.IsInf(res.RespHalfWidth, 1) {
		t.Errorf("mean %g half-width %g", res.MeanResponse, res.RespHalfWidth)
	}
	if res.Jobs != res.Replications*6000 {
		t.Errorf("jobs %d for %d replications", res.Jobs, res.Replications)
	}
}

func TestRunUntilPrecisionTighterTargetNeedsMoreReplications(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   300,
		MeasureJobs:  3000,
		Seed:         5,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.45, 128),
	}
	loose, err := RunUntilPrecision(PrecisionConfig{Run: base, RelativePrecision: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunUntilPrecision(PrecisionConfig{Run: base, RelativePrecision: 0.03, MaxReplications: 30})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Replications < loose.Replications {
		t.Errorf("tight target used %d replications, loose used %d",
			tight.Replications, loose.Replications)
	}
}

func TestRunUntilPrecisionCapsAtMax(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		WarmupJobs:   100,
		MeasureJobs:  500, // tiny runs: high variance
		Seed:         7,
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.5, 128),
	}
	res, err := RunUntilPrecision(PrecisionConfig{
		Run:               base,
		RelativePrecision: 0.0001, // unreachable
		MaxReplications:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("converged at an unreachable precision")
	}
	if res.Replications != 4 {
		t.Errorf("replications %d, want the cap 4", res.Replications)
	}
}

func TestRunUntilPrecisionValidation(t *testing.T) {
	spec := testSpec(t, 16, 4)
	base := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS",
		ArrivalRate:  0.01,
	}
	if _, err := RunUntilPrecision(PrecisionConfig{Run: base, RelativePrecision: 0}); err == nil {
		t.Error("zero precision accepted")
	}
	if _, err := RunUntilPrecision(PrecisionConfig{
		Run: base, RelativePrecision: 0.1, MinReplications: 1, MaxReplications: 2,
	}); err == nil {
		t.Error("min replications below 2 accepted")
	}
}
