package core

import "testing"

// TestEASYDominatesFCFS: at a load beyond plain GS's saturation point,
// GS-EASY must remain stable with a far lower mean response time.
func TestEASYDominatesFCFS(t *testing.T) {
	spec := testSpec(t, 16, 4)
	run := func(policy string) Result {
		cfg := Config{
			ClusterSizes: []int{32, 32, 32, 32},
			Spec:         spec,
			Policy:       policy,
			WarmupJobs:   500,
			MeasureJobs:  8000,
			Seed:         17,
		}
		res, err := RunAtUtilization(cfg, 0.65) // beyond GS's ~0.60 maximum
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gs, easy := run("GS"), run("GS-EASY")
	if !gs.Saturated {
		t.Log("note: GS unexpectedly stable at 0.65")
	}
	if easy.Saturated {
		t.Error("GS-EASY saturated at 0.65; backfilling should absorb this load")
	}
	if easy.MeanResponse >= gs.MeanResponse {
		t.Errorf("GS-EASY %g should beat GS %g at 0.65", easy.MeanResponse, gs.MeanResponse)
	}
}

// TestSCEASYMaximalUtilization: EASY removes nearly all of SC's
// head-of-line waste under constant backlog.
func TestSCEASYMaximalUtilization(t *testing.T) {
	spec := testSpec(t, 16, 1)
	run := func(policy string) BacklogResult {
		res, err := RunBacklog(BacklogConfig{
			ClusterSizes: []int{128},
			Spec:         spec,
			Policy:       policy,
			WarmupTime:   20000,
			MeasureTime:  150000,
			Seed:         2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sc, easy := run("SC"), run("SC-EASY")
	if easy.MaxGrossUtilization <= sc.MaxGrossUtilization+0.05 {
		t.Errorf("SC-EASY max %0.3f should clearly beat SC %0.3f",
			easy.MaxGrossUtilization, sc.MaxGrossUtilization)
	}
	if easy.MaxGrossUtilization < 0.8 {
		t.Errorf("SC-EASY max %0.3f implausibly low", easy.MaxGrossUtilization)
	}
}

// TestEASYDeterministic: the backfilling path is deterministic in the seed.
func TestEASYDeterministic(t *testing.T) {
	spec := testSpec(t, 16, 4)
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "GS-EASY",
		WarmupJobs:   200,
		MeasureJobs:  3000,
		Seed:         4,
	}
	a, err := RunAtUtilization(cfg, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAtUtilization(cfg, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponse != b.MeanResponse {
		t.Error("GS-EASY runs with equal seeds diverged")
	}
}

// TestSCEASYValidation: SC-EASY requires a single cluster.
func TestSCEASYValidation(t *testing.T) {
	cfg := Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "SC-EASY",
		ArrivalRate:  0.01,
	}
	cfg.applyDefaults()
	if err := cfg.Validate(); err == nil {
		t.Error("SC-EASY on four clusters accepted")
	}
}
