package core

import (
	"sync"
	"testing"

	"coalloc/internal/workload"
)

// traceTestConfig is one small open-system point shared by the trace
// guardrails below.
func traceTestConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         testSpec(t, 16, 4),
		Policy:       "GS",
		WarmupJobs:   200,
		MeasureJobs:  1500,
		Seed:         11,
		ArrivalRate:  testSpecRate(t, 0.5),
	}
}

// TestSharedTraceMatchesSampling is the determinism guardrail for the
// shared-workload path: replaying one pre-generated trace through every
// policy must be bit-identical to each policy sampling the workload live
// from its own streams. One Trace serves all policies — that sharing is
// the point of the mechanism, and this test pins that it changes nothing.
func TestSharedTraceMatchesSampling(t *testing.T) {
	base := traceTestConfig(t)
	tr, err := NewTrace(base, base.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"GS", "LS", "LP", "GS-EASY", "GS-CONS", "GS-SPF"} {
		cfg := base
		cfg.Policy = pol
		live, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s live: %v", pol, err)
		}
		cfg.Trace = tr
		replayed, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s traced: %v", pol, err)
		}
		if resultKey(live) != resultKey(replayed) {
			t.Errorf("%s: shared trace diverges from live sampling:\nlive   %s\ntraced %s",
				pol, resultKey(live), resultKey(replayed))
		}
	}
}

// TestTraceProviderMatchesSampling covers the replicated variant: a
// provider resolving one cached trace per replication seed must reproduce
// the plain RunReplications result exactly.
func TestTraceProviderMatchesSampling(t *testing.T) {
	cfg := traceTestConfig(t)
	cfg.Policy = "LS"
	const n = 3
	live, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	traces := map[uint64]*Trace{}
	cfg.TraceProvider = func(seed uint64) *Trace {
		mu.Lock()
		defer mu.Unlock()
		if tr, ok := traces[seed]; ok {
			return tr
		}
		tr, err := NewTrace(cfg, seed)
		if err != nil {
			return nil
		}
		traces[seed] = tr
		return tr
	}
	shared, err := RunReplications(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(live) != resultKey(shared) {
		t.Errorf("trace provider diverges from live sampling:\nlive   %s\nshared %s",
			resultKey(live), resultKey(shared))
	}
	if len(traces) != n {
		t.Errorf("provider resolved %d traces for %d replications", len(traces), n)
	}
}

// TestRunRepeatableAcrossArenaReuse pins that recycling job arenas through
// the run pool leaves no state behind: the same configuration must produce
// the identical result on every consecutive run.
func TestRunRepeatableAcrossArenaReuse(t *testing.T) {
	cfg := traceTestConfig(t)
	cfg.Policy = "GS-EASY"
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(first) != resultKey(again) {
			t.Fatalf("run %d differs after arena reuse:\nfirst %s\nagain %s",
				i+2, resultKey(first), resultKey(again))
		}
	}
}

// TestTraceMismatchRejected: Run must refuse a trace generated for a
// different seed or arrival rate instead of silently simulating the wrong
// workload.
func TestTraceMismatchRejected(t *testing.T) {
	cfg := traceTestConfig(t)
	tr, err := NewTrace(cfg, cfg.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = tr
	if _, err := Run(cfg); err == nil {
		t.Error("seed-mismatched trace accepted")
	}
	cfg = traceTestConfig(t)
	tr, err = NewTrace(cfg, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = tr
	cfg.ArrivalRate *= 2
	if _, err := Run(cfg); err == nil {
		t.Error("rate-mismatched trace accepted")
	}
}

// TestTraceRequiresUnordered: the trace mechanism records only the draws
// of unordered requests; every other request type must be rejected both at
// generation and at validation.
func TestTraceRequiresUnordered(t *testing.T) {
	cfg := traceTestConfig(t)
	cfg.RequestType = workload.Ordered
	if _, err := NewTrace(cfg, cfg.Seed); err == nil {
		t.Error("NewTrace accepted ordered requests")
	}
	tr, err := NewTrace(traceTestConfig(t), cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = tr
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a trace with ordered requests")
	}
}
