package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"coalloc/internal/obs"
	"coalloc/internal/rng"
)

// obsRunConfig is a small observed LS run exercising arrivals, starts,
// departures and queue enable/disable transitions.
func obsRunConfig(t *testing.T) Config {
	t.Helper()
	spec := testSpec(t, 16, 4)
	return Config{
		ClusterSizes: []int{32, 32, 32, 32},
		Spec:         spec,
		Policy:       "LS",
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.6, 128),
		WarmupJobs:   100,
		MeasureJobs:  800,
		Seed:         11,
	}
}

// TestTraceByteIdentical pins the determinism guarantee of the trace sink:
// two runs of the same configuration and seed produce byte-identical JSONL.
func TestTraceByteIdentical(t *testing.T) {
	runOnce := func() []byte {
		var buf bytes.Buffer
		cfg := obsRunConfig(t)
		cfg.Observer = obs.New(&buf)
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := cfg.Observer.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed traces differ: %d vs %d bytes", len(a), len(b))
	}
	// Every line is one of the five record kinds.
	for _, line := range strings.Split(strings.TrimRight(string(a), "\n"), "\n") {
		if !strings.HasPrefix(line, `{"t":`) || !strings.Contains(line, `"ev":`) {
			t.Fatalf("malformed trace line: %s", line)
		}
	}
}

// TestObserverMetricsConsistent checks the invariants the counters must
// satisfy on any completed open-system run.
func TestObserverMetricsConsistent(t *testing.T) {
	cfg := obsRunConfig(t)
	o := obs.New(nil)
	cfg.Observer = o
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := o.Metrics
	arrivals := m.Counter("jobs.arrivals").Value()
	starts := m.Counter("jobs.starts").Value()
	departures := m.Counter("jobs.departures").Value()
	if departures != uint64(cfg.WarmupJobs+res.Jobs) {
		t.Fatalf("departures = %d, want warmup+measured = %d", departures, cfg.WarmupJobs+res.Jobs)
	}
	if starts < departures || arrivals < starts {
		t.Fatalf("want arrivals >= starts >= departures, got %d/%d/%d", arrivals, starts, departures)
	}
	if m.Counter("sched.passes").Value() == 0 {
		t.Fatal("no scheduling passes recorded")
	}
	// LS disables a queue on every head miss; every disable is matched by
	// at most one enable (the run can end with queues still disabled).
	dis, en := m.Counter("queues.disables").Value(), m.Counter("queues.enables").Value()
	if dis == 0 {
		t.Fatal("no queue disables recorded at 60% load")
	}
	if en > dis {
		t.Fatalf("enables %d exceed disables %d", en, dis)
	}
	if m.Counter("sched.head_misses").Value() != dis {
		t.Fatalf("LS head misses %d != disables %d", m.Counter("sched.head_misses").Value(), dis)
	}
	if m.Counter("sim.events").Value() == 0 || m.Counter("sim.scheduled").Value() == 0 {
		t.Fatal("engine stats were not reported")
	}
}

// TestZeroWarmupLindley checks the NoWarmup path against a hand-computed
// schedule: with one unit-size processor and FCFS service the response
// times follow the Lindley recursion start_i = max(arrival_i, finish_i-1),
// and measurement from time zero must reproduce their mean exactly —
// including the first job, which the old departure-triggered start of
// measurement silently dropped.
func TestZeroWarmupLindley(t *testing.T) {
	const (
		seed   = uint64(42)
		n      = 500
		lambda = 0.5
		mu     = 1.0
	)
	cfg := Config{
		ClusterSizes: []int{1},
		Spec:         ExpService(mu),
		Policy:       "SC",
		ArrivalRate:  lambda,
		NoWarmup:     true,
		MeasureJobs:  n,
		Seed:         seed,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Jobs != n {
		t.Fatalf("measured %d jobs, want %d", res.Jobs, n)
	}

	// Replicate the simulator's named streams and sampling order: the
	// next interarrival gap is drawn before each arrival, and each job's
	// size and service are drawn at its arrival.
	src := rng.NewSource(seed)
	arr := src.Stream("core/arrivals")
	sizeStream := src.Stream("core/sizes")
	svcStream := src.Stream("core/services")
	spec := ExpService(mu)
	var at, finish, sum float64
	for i := 0; i < n; i++ {
		at += arr.Exp(lambda)
		j := spec.Sample(sizeStream, svcStream)
		start := math.Max(at, finish)
		finish = start + j.ServiceTime
		sum += finish - at
	}
	want := sum / n
	if diff := math.Abs(res.MeanResponse - want); diff > 1e-9*want {
		t.Fatalf("MeanResponse = %g, Lindley schedule gives %g (diff %g)", res.MeanResponse, want, diff)
	}
}

// TestNoWarmupDeterministic pins that two NoWarmup runs agree bit-for-bit.
func TestNoWarmupDeterministic(t *testing.T) {
	cfg := obsRunConfig(t)
	cfg.WarmupJobs = 0
	cfg.NoWarmup = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.MeanResponse != b.MeanResponse || a.GrossUtilization != b.GrossUtilization || a.Jobs != b.Jobs {
		t.Fatalf("NoWarmup runs differ: %+v vs %+v", a, b)
	}
}

// TestMergeReplicationsAllNaN: metrics that were NaN in every replication
// (no local jobs, no quantile samples) must stay NaN after the merge
// rather than silently becoming 0.
func TestMergeReplicationsAllNaN(t *testing.T) {
	nan := math.NaN()
	mk := func(mean float64) Result {
		return Result{
			Policy:              "GS",
			MeanResponse:        mean,
			MeanResponseLocal:   nan,
			MeanResponseGlobal:  nan,
			MedianResponse:      nan,
			P95Response:         nan,
			ResponseBySizeClass: []float64{nan, nan, nan, nan, nan},
		}
	}
	merged := mergeReplications([]Result{mk(100), mk(120), mk(110)})
	if merged.MeanResponse != 110 {
		t.Fatalf("MeanResponse = %g, want 110", merged.MeanResponse)
	}
	for name, v := range map[string]float64{
		"MeanResponseLocal":  merged.MeanResponseLocal,
		"MeanResponseGlobal": merged.MeanResponseGlobal,
		"MedianResponse":     merged.MedianResponse,
		"P95Response":        merged.P95Response,
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s = %g, want NaN", name, v)
		}
	}
	for i, v := range merged.ResponseBySizeClass {
		if !math.IsNaN(v) {
			t.Errorf("ResponseBySizeClass[%d] = %g, want NaN", i, v)
		}
	}
}

// TestMergeReplicationsSingleHalfWidth: one replication gives no
// across-replication variance estimate, so the half-width must be +Inf,
// never 0 (which would claim perfect confidence).
func TestMergeReplicationsSingleHalfWidth(t *testing.T) {
	merged := mergeReplications([]Result{{Policy: "GS", MeanResponse: 100}})
	if !math.IsInf(merged.RespHalfWidth, 1) {
		t.Fatalf("single-replication RespHalfWidth = %g, want +Inf", merged.RespHalfWidth)
	}
	if merged.MeanResponse != 100 {
		t.Fatalf("MeanResponse = %g, want 100", merged.MeanResponse)
	}
}

// TestRunReplicationsObservedSerialMatchesParallel: attaching an Observer
// switches RunReplications to the serial path; the merged Result must be
// bit-identical to the parallel run without one.
func TestRunReplicationsObservedSerialMatchesParallel(t *testing.T) {
	cfg := obsRunConfig(t)
	cfg.MeasureJobs = 400
	parallel, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatalf("RunReplications: %v", err)
	}
	cfg.Observer = obs.New(nil)
	serial, err := RunReplications(cfg, 3)
	if err != nil {
		t.Fatalf("RunReplications (observed): %v", err)
	}
	if parallel.MeanResponse != serial.MeanResponse || parallel.Jobs != serial.Jobs ||
		parallel.GrossUtilization != serial.GrossUtilization {
		t.Fatalf("observed serial merge differs from parallel: %+v vs %+v", serial, parallel)
	}
	if cfg.Observer.Metrics.Counter("jobs.departures").Value() == 0 {
		t.Fatal("observer saw no departures across replications")
	}
}
