// Package rng provides deterministic pseudo-random number streams for the
// simulator.
//
// Every stochastic component of a simulation (arrival process, job sizes,
// service times, queue routing) draws from its own independent stream so
// that changing one component — for example, swapping the scheduling policy
// or adding a sampler — never perturbs the random numbers seen by the
// others. This "common random numbers" discipline is what makes the
// policy-comparison curves in the paper meaningful: all policies are fed
// byte-for-byte identical workloads.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by Blackman and Vigna. It is small, allocation-free, passes
// BigCrush, and is fully reproducible across platforms, unlike math/rand's
// global source.
package rng

import "math"

// Stream is a deterministic random number generator. It is NOT safe for
// concurrent use; give each goroutine its own Stream (see Source.Stream).
type Stream struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand seeds into full xoshiro state vectors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns a Stream seeded from seed. Distinct seeds give
// statistically independent streams.
func NewStream(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	// A xoshiro state of all zeros is a fixed point; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform variate in the open interval (0, 1),
// suitable for inversion formulas that take a logarithm of the result.
func (r *Stream) OpenFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(r.OpenFloat64()) / rate
}

// Normal returns a standard normal variate via Marsaglia's polar method.
func (r *Stream) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Source derives independent Streams from a master seed. Components ask for
// streams by name; the same (seed, name) pair always yields the same stream,
// regardless of the order in which streams are requested.
type Source struct {
	seed uint64
}

// NewSource returns a stream factory rooted at seed.
func NewSource(seed uint64) *Source { return &Source{seed: seed} }

// Seed returns the master seed of the source.
func (s *Source) Seed() uint64 { return s.seed }

// Stream returns the stream identified by name. Calling Stream twice with
// the same name returns two streams in identical states.
func (s *Source) Stream(name string) *Stream {
	h := fnv1a(name)
	// Mix the master seed and the name hash through SplitMix64 so that
	// related seeds (seed, seed+1) still give unrelated streams.
	sm := s.seed ^ rotl(h, 31)
	_ = splitMix64(&sm)
	return NewStream(splitMix64(&sm))
}

// fnv1a hashes a string with the 64-bit FNV-1a function.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
