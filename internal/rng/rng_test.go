package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(12345)
	b := NewStream(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewStream(seed)
		for i := 0; i < 100; i++ {
			u := r.Float64()
			if u < 0 || u >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewStream(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %.4f, want 0.5", mean)
	}
}

func TestOpenFloat64Positive(t *testing.T) {
	r := NewStream(3)
	for i := 0; i < 100000; i++ {
		if u := r.OpenFloat64(); u <= 0 || u >= 1 {
			t.Fatalf("OpenFloat64 = %g outside (0,1)", u)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewStream(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewStream(13)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("Intn(%d): value %d drawn %d times, want ~%.0f", n, v, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	r := NewStream(17)
	const rate, n = 2.5, 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x < 0 {
			t.Fatalf("negative exponential variate %g", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if math.Abs(mean-1/rate)/(1/rate) > 0.02 {
		t.Errorf("exp mean = %.4f, want %.4f", mean, 1/rate)
	}
	variance := sumSq/n - mean*mean
	wantVar := 1 / (rate * rate)
	if math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Errorf("exp variance = %.4f, want %.4f", variance, wantVar)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	NewStream(1).Exp(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewStream(19)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %.4f, want 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %.4f, want 1", variance)
	}
}

func TestSourceStreamsReproducible(t *testing.T) {
	s := NewSource(99)
	a := s.Stream("arrivals")
	b := s.Stream("arrivals")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-name streams from one source diverged")
		}
	}
}

func TestSourceStreamsIndependent(t *testing.T) {
	s := NewSource(99)
	a := s.Stream("arrivals")
	b := s.Stream("services")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs from differently named streams", same)
	}
}

func TestSourceSeedSensitivity(t *testing.T) {
	a := NewSource(1).Stream("x")
	b := NewSource(2).Stream("x")
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Error("streams from adjacent seeds look identical")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64MatchesBigProperty(t *testing.T) {
	// Cross-check mul64 against 32x32 multiplication identities.
	if err := quick.Check(func(a, b uint32) bool {
		hi, lo := mul64(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := NewStream(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := NewStream(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}
