// Package plot renders experiment output: ASCII line charts for the
// terminal (the response-time-versus-utilization curves of Figs. 3-7) and
// CSV / gnuplot-ready data files for external plotting.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// Saturated marks the last point as a saturation terminator: the
	// run behind it diverged, so its measured values depend on how far
	// the run was allowed to proceed. Plots still draw it (the curve
	// visibly shooting up is the paper's idiom), but summaries must not
	// treat it as a stable operating point.
	Saturated bool
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart draws the series on a width x height character grid with labelled
// axes. Non-finite points are skipped. An empty chart renders a note
// instead of axes.
func Chart(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if points == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
			grid[row][col] = mark
		}
	}
	yaxisw := 10
	for r, row := range grid {
		var label string
		switch r {
		case 0:
			label = fmtTick(ymax)
		case height - 1:
			label = fmtTick(ymin)
		case height / 2:
			label = fmtTick((ymin + ymax) / 2)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yaxisw, label, string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yaxisw, "", strings.Repeat("-", width))
	lo, hi := fmtTick(xmin), fmtTick(xmax)
	pad := width - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s\n", yaxisw, "", lo, strings.Repeat(" ", pad), hi)
	if xlabel != "" || ylabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s, y: %s\n", yaxisw, "", xlabel, ylabel)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%*s  legend: %s\n", yaxisw, "", strings.Join(legend, "   "))
	return b.String()
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// WriteCSV emits the series in long form: series,x,y — one row per point.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table renders rows with left-aligned, padded columns. The first row is
// treated as the header and underlined.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w
			}
			b.WriteString(strings.Repeat("-", total+2*(cols-1)))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SortByX returns a copy of the series with points ordered by x.
func SortByX(s Series) Series {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	out := Series{Name: s.Name, X: make([]float64, len(s.X)), Y: make([]float64, len(s.Y))}
	for i, j := range idx {
		out.X[i], out.Y[i] = s.X[j], s.Y[j]
	}
	return out
}
