package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Errorf("series %+v", s)
	}
}

func TestChartContainsMarksAndLegend(t *testing.T) {
	series := []Series{
		{Name: "alpha", X: []float64{0, 0.5, 1}, Y: []float64{10, 20, 30}},
		{Name: "beta", X: []float64{0, 0.5, 1}, Y: []float64{30, 20, 10}},
	}
	out := Chart("test chart", "util", "resp", series, 40, 10)
	for _, want := range []string{"test chart", "alpha", "beta", "x: util, y: resp", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// 10 grid rows + axis + labels.
	if lines := strings.Count(out, "\n"); lines < 13 {
		t.Errorf("chart has %d lines", lines)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("t", "x", "y", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart rendering: %q", out)
	}
}

func TestChartSkipsNonFinite(t *testing.T) {
	series := []Series{{
		Name: "s",
		X:    []float64{0, 1, 2},
		Y:    []float64{1, math.NaN(), math.Inf(1)},
	}}
	out := Chart("", "x", "y", series, 30, 8)
	if strings.Contains(out, "no data") {
		t.Error("finite point should render")
	}
}

func TestChartSinglePoint(t *testing.T) {
	series := []Series{{Name: "s", X: []float64{5}, Y: []float64{7}}}
	out := Chart("", "", "", series, 30, 8)
	if !strings.Contains(out, "*") {
		t.Error("single point not drawn")
	}
}

func TestChartDegenerateDimensions(t *testing.T) {
	series := []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}}
	out := Chart("", "", "", series, 1, 1) // clamped to sane minimums
	if out == "" {
		t.Error("degenerate chart empty")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Series{
		{Name: "a,b", X: []float64{1}, Y: []float64{2}},
		{Name: "plain", X: []float64{3.5}, Y: []float64{4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "series,x,y\n\"a,b\",1,2\nplain,3.5,4\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":     "plain",
		"a,b":       `"a,b"`,
		`quo"te`:    `"quo""te"`,
		"line\nfee": "\"line\nfee\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"name", "value"},
		{"alpha", "1"},
		{"b", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: %q", out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator %q", lines[1])
	}
	// Ragged rows are padded, not dropped.
	out = Table([][]string{{"a", "b"}, {"only"}})
	if !strings.Contains(out, "only") {
		t.Error("ragged row missing")
	}
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
}

func TestSortByX(t *testing.T) {
	s := Series{Name: "s", X: []float64{3, 1, 2}, Y: []float64{30, 10, 20}}
	sorted := SortByX(s)
	wantX := []float64{1, 2, 3}
	wantY := []float64{10, 20, 30}
	for i := range wantX {
		if sorted.X[i] != wantX[i] || sorted.Y[i] != wantY[i] {
			t.Fatalf("sorted = %v/%v", sorted.X, sorted.Y)
		}
	}
	// Original untouched.
	if s.X[0] != 3 {
		t.Error("SortByX mutated its input")
	}
}
