package dist

import (
	"fmt"
	"math"
	"sort"

	"coalloc/internal/rng"
)

// EmpiricalInt is a discrete distribution over integer values with given
// probabilities, sampled in O(1) by Walker's alias method. The paper's
// DAS-s-128 and DAS-s-64 job-size distributions are EmpiricalInt values
// built from the trace.
type EmpiricalInt struct {
	values []int
	probs  []float64
	// alias tables
	prob  []float64
	alias []int
}

// NewEmpiricalInt builds a distribution from parallel value/weight slices.
// Weights need not sum to one; they are normalized. Duplicate values are
// merged. It panics on empty input, negative weights, or all-zero weights.
func NewEmpiricalInt(values []int, weights []float64) *EmpiricalInt {
	if len(values) == 0 || len(values) != len(weights) {
		panic("dist: NewEmpiricalInt needs matching non-empty values and weights")
	}
	merged := make(map[int]float64, len(values))
	var total float64
	for i, v := range values {
		w := weights[i]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("dist: NewEmpiricalInt weight %g for value %d", w, v))
		}
		merged[v] += w
		total += w
	}
	if total <= 0 {
		panic("dist: NewEmpiricalInt weights sum to zero")
	}
	// Collect and sort the keys before any further use: map iteration
	// order is nondeterministic and must not reach the support layout
	// (detlint rule nomaprange).
	keys := make([]int, 0, len(merged))
	for v := range merged {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	vs := keys[:0]
	for _, v := range keys {
		if merged[v] > 0 {
			vs = append(vs, v)
		}
	}
	d := &EmpiricalInt{
		values: vs,
		probs:  make([]float64, len(vs)),
	}
	for i, v := range vs {
		d.probs[i] = merged[v] / total
	}
	d.buildAlias()
	return d
}

// buildAlias constructs Walker alias tables from d.probs.
func (d *EmpiricalInt) buildAlias() {
	n := len(d.probs)
	d.prob = make([]float64, n)
	d.alias = make([]int, n)
	scaled := make([]float64, n)
	var small, large []int
	for i, p := range d.probs {
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.prob[s] = scaled[s]
		d.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		d.prob[i] = 1
		d.alias[i] = i
	}
	for _, i := range small { // numerical leftovers
		d.prob[i] = 1
		d.alias[i] = i
	}
}

// Sample draws a value in O(1).
func (d *EmpiricalInt) Sample(r *rng.Stream) int {
	i := r.Intn(len(d.values))
	if r.Float64() < d.prob[i] {
		return d.values[i]
	}
	return d.values[d.alias[i]]
}

// Values returns the support in increasing order. The slice is shared; do
// not modify it.
func (d *EmpiricalInt) Values() []int { return d.values }

// Prob returns the probability of value v (0 if outside the support).
func (d *EmpiricalInt) Prob(v int) float64 {
	i := sort.SearchInts(d.values, v)
	if i < len(d.values) && d.values[i] == v {
		return d.probs[i]
	}
	return 0
}

// Mean returns the expected value.
func (d *EmpiricalInt) Mean() float64 {
	var m float64
	for i, v := range d.values {
		m += float64(v) * d.probs[i]
	}
	return m
}

// Variance returns the distribution variance.
func (d *EmpiricalInt) Variance() float64 {
	m := d.Mean()
	var s float64
	for i, v := range d.values {
		dv := float64(v) - m
		s += dv * dv * d.probs[i]
	}
	return s
}

// CV returns the coefficient of variation.
func (d *EmpiricalInt) CV() float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return math.Sqrt(d.Variance()) / m
}

// Max returns the largest value in the support.
func (d *EmpiricalInt) Max() int { return d.values[len(d.values)-1] }

// Min returns the smallest value in the support.
func (d *EmpiricalInt) Min() int { return d.values[0] }

// CutAt returns a new distribution with all mass above max removed and the
// remainder renormalized — the paper's construction of DAS-s-64 from
// DAS-s-128 ("the log cut at 64").
func (d *EmpiricalInt) CutAt(max int) *EmpiricalInt {
	var vs []int
	var ws []float64
	for i, v := range d.values {
		if v <= max {
			vs = append(vs, v)
			ws = append(ws, d.probs[i])
		}
	}
	if len(vs) == 0 {
		panic(fmt.Sprintf("dist: CutAt(%d) removes the whole support", max))
	}
	return NewEmpiricalInt(vs, ws)
}

// MassAbove returns the probability that a variate exceeds max — the
// fraction of jobs the cut excludes.
func (d *EmpiricalInt) MassAbove(max int) float64 {
	var m float64
	for i, v := range d.values {
		if v > max {
			m += d.probs[i]
		}
	}
	return m
}

// EmpiricalCont resamples a fixed set of real observations uniformly — the
// bootstrap reading of "we use for the service-time distribution the
// distribution derived from the log". Building it from per-job trace
// records makes the simulation trace-based in the paper's sense.
type EmpiricalCont struct {
	sample []float64
	mean   float64
	cv     float64
	max    float64
}

// NewEmpiricalCont builds a resampling distribution from observations.
// It panics on empty or non-finite input.
func NewEmpiricalCont(obs []float64) *EmpiricalCont {
	if len(obs) == 0 {
		panic("dist: NewEmpiricalCont with no observations")
	}
	s := make([]float64, len(obs))
	copy(s, obs)
	var sum, max float64
	for _, x := range s {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			panic("dist: NewEmpiricalCont with non-finite observation")
		}
		sum += x
		if x > max {
			max = x
		}
	}
	mean := sum / float64(len(s))
	var ss float64
	for _, x := range s {
		d := x - mean
		ss += d * d
	}
	cv := 0.0
	if mean != 0 {
		cv = math.Sqrt(ss/float64(len(s))) / mean
	}
	return &EmpiricalCont{sample: s, mean: mean, cv: cv, max: max}
}

// Sample draws one of the observations uniformly at random.
func (d *EmpiricalCont) Sample(r *rng.Stream) float64 {
	return d.sample[r.Intn(len(d.sample))]
}

// Mean returns the sample mean of the observations.
func (d *EmpiricalCont) Mean() float64 { return d.mean }

// CV returns the coefficient of variation of the observations.
func (d *EmpiricalCont) CV() float64 { return d.cv }

// Max returns the largest observation.
func (d *EmpiricalCont) Max() float64 { return d.max }

// Len returns the number of observations.
func (d *EmpiricalCont) Len() int { return len(d.sample) }

// CutAt returns a new distribution keeping only observations <= max.
func (d *EmpiricalCont) CutAt(max float64) *EmpiricalCont {
	var kept []float64
	for _, x := range d.sample {
		if x <= max {
			kept = append(kept, x)
		}
	}
	if len(kept) == 0 {
		panic(fmt.Sprintf("dist: CutAt(%g) removes every observation", max))
	}
	return NewEmpiricalCont(kept)
}
