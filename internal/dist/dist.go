// Package dist provides the random-variate generators the workload model
// draws from: the exponential interarrival times of the paper's open
// system, empirical distributions sampled from the (synthetic) DAS trace,
// and a set of parametric distributions used to synthesize the trace and to
// run sensitivity ablations.
package dist

import (
	"fmt"
	"math"

	"coalloc/internal/rng"
)

// Continuous is a real-valued distribution.
type Continuous interface {
	// Sample draws one variate using the given stream.
	Sample(r *rng.Stream) float64
	// Mean returns the expected value.
	Mean() float64
}

// Discrete is an integer-valued distribution.
type Discrete interface {
	// Sample draws one variate using the given stream.
	Sample(r *rng.Stream) int
	// Mean returns the expected value.
	Mean() float64
}

// Exponential is the exponential distribution with the given rate
// (mean 1/Rate). The paper uses it for job interarrival times.
type Exponential struct {
	Rate float64
}

// NewExponential returns an exponential distribution; it panics unless
// rate > 0.
func NewExponential(rate float64) Exponential {
	if rate <= 0 {
		panic(fmt.Sprintf("dist: exponential rate %g must be positive", rate))
	}
	return Exponential{Rate: rate}
}

// Sample draws an exponential variate by inversion.
func (d Exponential) Sample(r *rng.Stream) float64 { return r.Exp(d.Rate) }

// Mean returns 1/Rate.
func (d Exponential) Mean() float64 { return 1 / d.Rate }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws a uniform variate.
func (d Uniform) Sample(r *rng.Stream) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Mean returns the midpoint of the interval.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Deterministic always returns Value. Useful for sanity checks against
// closed-form queueing results.
type Deterministic struct {
	Value float64
}

// Sample returns the constant value.
func (d Deterministic) Sample(*rng.Stream) float64 { return d.Value }

// Mean returns the constant value.
func (d Deterministic) Mean() float64 { return d.Value }

// Lognormal is the distribution of exp(N(Mu, Sigma^2)). The synthetic DAS
// service-time density uses a truncated lognormal body: multiprocessor
// service times are strongly right-skewed.
type Lognormal struct {
	Mu, Sigma float64
}

// Sample draws a lognormal variate.
func (d Lognormal) Sample(r *rng.Stream) float64 {
	return math.Exp(d.Mu + d.Sigma*r.Normal())
}

// Mean returns exp(Mu + Sigma^2/2).
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Hyperexponential is a probabilistic mixture of exponentials — the
// classic high-variance service model; used in ablations.
type Hyperexponential struct {
	Probs []float64
	Rates []float64
}

// NewHyperexponential validates and returns a mixture of exponentials.
func NewHyperexponential(probs, rates []float64) Hyperexponential {
	if len(probs) != len(rates) || len(probs) == 0 {
		panic("dist: hyperexponential needs matching non-empty probs and rates")
	}
	var sum float64
	for i, p := range probs {
		if p < 0 || rates[i] <= 0 {
			panic("dist: hyperexponential needs non-negative probs and positive rates")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("dist: hyperexponential probs sum to %g, want 1", sum))
	}
	return Hyperexponential{Probs: probs, Rates: rates}
}

// Sample draws from the mixture.
func (d Hyperexponential) Sample(r *rng.Stream) float64 {
	u := r.Float64()
	var acc float64
	for i, p := range d.Probs {
		acc += p
		if u < acc {
			return r.Exp(d.Rates[i])
		}
	}
	return r.Exp(d.Rates[len(d.Rates)-1])
}

// Mean returns the mixture mean.
func (d Hyperexponential) Mean() float64 {
	var m float64
	for i, p := range d.Probs {
		m += p / d.Rates[i]
	}
	return m
}

// Erlang is the sum of K independent exponentials of the given rate —
// a low-variance service model used in ablations.
type Erlang struct {
	K    int
	Rate float64
}

// Sample draws an Erlang variate as a sum of exponentials.
func (d Erlang) Sample(r *rng.Stream) float64 {
	var sum float64
	for i := 0; i < d.K; i++ {
		sum += r.Exp(d.Rate)
	}
	return sum
}

// Mean returns K/Rate.
func (d Erlang) Mean() float64 { return float64(d.K) / d.Rate }

// Gamma is the gamma distribution with the given shape and rate (mean
// Shape/Rate). Sampling uses the Marsaglia-Tsang squeeze method, with the
// standard boost for shapes below one.
type Gamma struct {
	Shape, Rate float64
}

// NewGamma validates and returns a gamma distribution.
func NewGamma(shape, rate float64) Gamma {
	if shape <= 0 || rate <= 0 {
		panic(fmt.Sprintf("dist: Gamma(%g, %g) needs positive parameters", shape, rate))
	}
	return Gamma{Shape: shape, Rate: rate}
}

// Sample draws a gamma variate.
func (d Gamma) Sample(r *rng.Stream) float64 {
	shape := d.Shape
	boost := 1.0
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a).
		boost = math.Pow(r.OpenFloat64(), 1/shape)
		shape++
	}
	dd := shape - 1.0/3
	c := 1 / math.Sqrt(9*dd)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.OpenFloat64()
		if u < 1-0.0331*x*x*x*x {
			return boost * dd * v / d.Rate
		}
		if math.Log(u) < 0.5*x*x+dd*(1-v+math.Log(v)) {
			return boost * dd * v / d.Rate
		}
	}
}

// Mean returns Shape/Rate.
func (d Gamma) Mean() float64 { return d.Shape / d.Rate }

// Variance returns Shape/Rate^2.
func (d Gamma) Variance() float64 { return d.Shape / (d.Rate * d.Rate) }

// TruncatedAbove resamples Base until the variate does not exceed Max. It
// models the DAS's 15-minute working-hours kill limit: the published
// DAS-t-900 distribution is the log cut off at 900 seconds.
type TruncatedAbove struct {
	Base Continuous
	Max  float64
}

// Sample draws by rejection; it panics after a bounded number of attempts
// so that an impossible truncation is diagnosed instead of looping forever.
func (d TruncatedAbove) Sample(r *rng.Stream) float64 {
	for i := 0; i < 1_000_000; i++ {
		x := d.Base.Sample(r)
		if x <= d.Max {
			return x
		}
	}
	panic(fmt.Sprintf("dist: truncation at %g rejected 1e6 samples", d.Max))
}

// Mean estimates the truncated mean by quadrature over a large sample; the
// estimate is deterministic because it uses a fixed internal stream.
func (d TruncatedAbove) Mean() float64 {
	r := rng.NewStream(0x7ac0_beef)
	var w float64
	const n = 200_000
	for i := 0; i < n; i++ {
		w += d.Sample(r)
	}
	return w / n
}
