package dist

import (
	"math"
	"testing"
	"testing/quick"

	"coalloc/internal/rng"
)

func sampleMeanCV(d Continuous, n int, seed uint64) (mean, cv float64) {
	r := rng.NewStream(seed)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(r)
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

func TestExponential(t *testing.T) {
	d := NewExponential(0.5)
	if d.Mean() != 2 {
		t.Errorf("mean = %g", d.Mean())
	}
	mean, cv := sampleMeanCV(d, 200000, 1)
	if math.Abs(mean-2)/2 > 0.02 {
		t.Errorf("sample mean = %g, want 2", mean)
	}
	if math.Abs(cv-1) > 0.03 {
		t.Errorf("exponential CV = %g, want 1", cv)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewExponential(-1) did not panic")
		}
	}()
	NewExponential(-1)
}

func TestUniform(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 6}
	if d.Mean() != 4 {
		t.Errorf("mean = %g", d.Mean())
	}
	r := rng.NewStream(2)
	for i := 0; i < 10000; i++ {
		x := d.Sample(r)
		if x < 2 || x >= 6 {
			t.Fatalf("uniform sample %g outside [2,6)", x)
		}
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 3.5}
	r := rng.NewStream(1)
	if d.Sample(r) != 3.5 || d.Mean() != 3.5 {
		t.Error("deterministic distribution is not deterministic")
	}
}

func TestLognormalMean(t *testing.T) {
	d := Lognormal{Mu: 1, Sigma: 0.5}
	want := math.Exp(1 + 0.125)
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Errorf("analytic mean = %g, want %g", d.Mean(), want)
	}
	mean, _ := sampleMeanCV(d, 400000, 3)
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("sample mean = %g, want %g", mean, want)
	}
}

func TestHyperexponential(t *testing.T) {
	d := NewHyperexponential([]float64{0.7, 0.3}, []float64{2, 0.1})
	want := 0.7/2 + 0.3/0.1
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Errorf("mean = %g, want %g", d.Mean(), want)
	}
	mean, cv := sampleMeanCV(d, 300000, 4)
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("sample mean = %g, want %g", mean, want)
	}
	if cv <= 1 {
		t.Errorf("hyperexponential CV = %g, want > 1", cv)
	}
}

func TestHyperexponentialValidation(t *testing.T) {
	for _, c := range []struct {
		probs, rates []float64
	}{
		{[]float64{0.5}, []float64{1, 2}},
		{nil, nil},
		{[]float64{0.5, 0.4}, []float64{1, 2}},
		{[]float64{0.5, 0.5}, []float64{1, -1}},
	} {
		func() {
			defer func() { recover() }()
			NewHyperexponential(c.probs, c.rates)
			t.Errorf("NewHyperexponential(%v, %v) did not panic", c.probs, c.rates)
		}()
	}
}

func TestErlang(t *testing.T) {
	d := Erlang{K: 4, Rate: 2}
	if d.Mean() != 2 {
		t.Errorf("mean = %g", d.Mean())
	}
	mean, cv := sampleMeanCV(d, 200000, 5)
	if math.Abs(mean-2)/2 > 0.02 {
		t.Errorf("sample mean = %g", mean)
	}
	// Erlang-k CV = 1/sqrt(k) = 0.5.
	if math.Abs(cv-0.5) > 0.02 {
		t.Errorf("CV = %g, want 0.5", cv)
	}
}

func TestTruncatedAbove(t *testing.T) {
	d := TruncatedAbove{Base: NewExponential(0.01), Max: 50}
	r := rng.NewStream(6)
	for i := 0; i < 50000; i++ {
		if x := d.Sample(r); x > 50 {
			t.Fatalf("truncated sample %g > 50", x)
		}
	}
	if m := d.Mean(); m <= 0 || m >= 50 {
		t.Errorf("truncated mean %g outside (0, 50)", m)
	}
}

func TestEmpiricalIntProbabilities(t *testing.T) {
	d := NewEmpiricalInt([]int{1, 2, 4}, []float64{1, 2, 1})
	if got := d.Prob(2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(2) = %g, want 0.5", got)
	}
	if got := d.Prob(3); got != 0 {
		t.Errorf("P(3) = %g, want 0", got)
	}
	if d.Mean() != (1*0.25 + 2*0.5 + 4*0.25) {
		t.Errorf("mean = %g", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 4 {
		t.Errorf("support [%d,%d]", d.Min(), d.Max())
	}
}

func TestEmpiricalIntMergesDuplicates(t *testing.T) {
	d := NewEmpiricalInt([]int{5, 5, 7}, []float64{1, 1, 2})
	if got := d.Prob(5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(5) = %g, want 0.5", got)
	}
	if len(d.Values()) != 2 {
		t.Errorf("support size %d, want 2", len(d.Values()))
	}
}

func TestEmpiricalIntSampleFrequencies(t *testing.T) {
	d := NewEmpiricalInt([]int{1, 2, 3, 4}, []float64{0.1, 0.2, 0.3, 0.4})
	r := rng.NewStream(7)
	const n = 400000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	for _, v := range d.Values() {
		got := float64(counts[v]) / n
		want := d.Prob(v)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(%d): sampled %.4f, want %.4f", v, got, want)
		}
	}
}

// TestEmpiricalIntAliasProperty: alias sampling reproduces arbitrary
// random weight vectors.
func TestEmpiricalIntAliasProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 2 + r.Intn(8)
		values := make([]int, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = i
			weights[i] = r.Float64() + 0.01
		}
		d := NewEmpiricalInt(values, weights)
		const draws = 100000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[d.Sample(r)]++
		}
		for i, v := range values {
			if math.Abs(float64(counts[i])/draws-d.Prob(v)) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalIntNormalization(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		n := 1 + r.Intn(20)
		values := make([]int, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = r.Intn(100)
			weights[i] = r.Float64() * 10
		}
		// Ensure at least one positive weight.
		weights[0] += 0.5
		d := NewEmpiricalInt(values, weights)
		var total float64
		for _, v := range d.Values() {
			total += d.Prob(v)
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalIntValidation(t *testing.T) {
	cases := []struct {
		values  []int
		weights []float64
	}{
		{nil, nil},
		{[]int{1}, []float64{1, 2}},
		{[]int{1}, []float64{-1}},
		{[]int{1, 2}, []float64{0, 0}},
		{[]int{1}, []float64{math.NaN()}},
	}
	for _, c := range cases {
		func() {
			defer func() { recover() }()
			NewEmpiricalInt(c.values, c.weights)
			t.Errorf("NewEmpiricalInt(%v, %v) did not panic", c.values, c.weights)
		}()
	}
}

func TestEmpiricalIntCutAt(t *testing.T) {
	d := NewEmpiricalInt([]int{1, 64, 128}, []float64{0.5, 0.3, 0.2})
	cut := d.CutAt(64)
	if cut.Max() != 64 {
		t.Errorf("cut max = %d", cut.Max())
	}
	if got := cut.Prob(1); math.Abs(got-0.5/0.8) > 1e-12 {
		t.Errorf("renormalized P(1) = %g, want %g", got, 0.5/0.8)
	}
	if got := d.MassAbove(64); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("mass above 64 = %g", got)
	}
	func() {
		defer func() { recover() }()
		d.CutAt(0)
		t.Error("CutAt removing whole support did not panic")
	}()
}

func TestEmpiricalContBasics(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	d := NewEmpiricalCont(obs)
	if d.Mean() != 2.5 || d.Max() != 4 || d.Len() != 4 {
		t.Errorf("mean/max/len = %g/%g/%d", d.Mean(), d.Max(), d.Len())
	}
	r := rng.NewStream(9)
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		x := d.Sample(r)
		seen[x] = true
		found := false
		for _, o := range obs {
			if o == x {
				found = true
			}
		}
		if !found {
			t.Fatalf("sample %g not among observations", x)
		}
	}
	if len(seen) != 4 {
		t.Errorf("only %d distinct values resampled", len(seen))
	}
}

func TestEmpiricalContCutAt(t *testing.T) {
	d := NewEmpiricalCont([]float64{100, 500, 1000, 2000})
	cut := d.CutAt(900)
	if cut.Len() != 2 || cut.Max() != 500 {
		t.Errorf("cut len %d max %g", cut.Len(), cut.Max())
	}
	func() {
		defer func() { recover() }()
		d.CutAt(1)
		t.Error("CutAt removing all observations did not panic")
	}()
}

func TestEmpiricalContImmutable(t *testing.T) {
	obs := []float64{1, 2, 3}
	d := NewEmpiricalCont(obs)
	obs[0] = 100
	if d.Mean() != 2 {
		t.Error("NewEmpiricalCont did not copy its input")
	}
}

func TestEmpiricalContValidation(t *testing.T) {
	func() {
		defer func() { recover() }()
		NewEmpiricalCont(nil)
		t.Error("empty observations did not panic")
	}()
	func() {
		defer func() { recover() }()
		NewEmpiricalCont([]float64{math.Inf(1)})
		t.Error("non-finite observation did not panic")
	}()
}

func TestGammaMoments(t *testing.T) {
	for _, c := range []struct{ shape, rate float64 }{
		{0.5, 1}, {1, 2}, {2.5, 0.5}, {9, 3},
	} {
		d := NewGamma(c.shape, c.rate)
		wantMean := c.shape / c.rate
		wantVar := c.shape / (c.rate * c.rate)
		if d.Mean() != wantMean || d.Variance() != wantVar {
			t.Errorf("Gamma(%g,%g) analytic moments", c.shape, c.rate)
		}
		r := rng.NewStream(11)
		var sum, sumSq float64
		const n = 300000
		for i := 0; i < n; i++ {
			x := d.Sample(r)
			if x <= 0 {
				t.Fatalf("non-positive gamma variate %g", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-wantMean)/wantMean > 0.02 {
			t.Errorf("Gamma(%g,%g) sample mean %.4f, want %.4f", c.shape, c.rate, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.05 {
			t.Errorf("Gamma(%g,%g) sample variance %.4f, want %.4f", c.shape, c.rate, variance, wantVar)
		}
	}
}

func TestGammaShapeOneIsExponential(t *testing.T) {
	d := NewGamma(1, 2)
	r := rng.NewStream(12)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	if math.Abs(sum/n-0.5) > 0.01 {
		t.Errorf("Gamma(1,2) mean %.4f, want 0.5", sum/n)
	}
}

func TestGammaPanics(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() { recover() }()
			NewGamma(c[0], c[1])
			t.Errorf("NewGamma(%g, %g) did not panic", c[0], c[1])
		}()
	}
}

func TestEmpiricalIntVarianceCV(t *testing.T) {
	d := NewEmpiricalInt([]int{2, 4}, []float64{0.5, 0.5})
	// mean 3, variance 1, CV 1/3.
	if d.Variance() != 1 {
		t.Errorf("variance %g", d.Variance())
	}
	if math.Abs(d.CV()-1.0/3) > 1e-12 {
		t.Errorf("CV %g", d.CV())
	}
}

func TestEmpiricalContCV(t *testing.T) {
	d := NewEmpiricalCont([]float64{1, 3})
	// mean 2, population sd 1, CV 0.5.
	if math.Abs(d.CV()-0.5) > 1e-12 {
		t.Errorf("CV %g", d.CV())
	}
}
