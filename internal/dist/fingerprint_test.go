package dist

import (
	"strings"
	"testing"
)

func TestEmpiricalIntFingerprintValueIdentity(t *testing.T) {
	a := NewEmpiricalInt([]int{1, 2, 4}, []float64{0.5, 0.3, 0.2})
	b := NewEmpiricalInt([]int{1, 2, 4}, []float64{0.5, 0.3, 0.2})
	if a == b {
		t.Fatal("want distinct allocations")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("value-equal EmpiricalInt distributions fingerprint differently")
	}
	c := NewEmpiricalInt([]int{1, 2, 4}, []float64{0.5, 0.2, 0.3})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different probabilities share a fingerprint")
	}
	d := NewEmpiricalInt([]int{1, 2, 8}, []float64{0.5, 0.3, 0.2})
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("different supports share a fingerprint")
	}
}

func TestEmpiricalContFingerprintValueIdentity(t *testing.T) {
	a := NewEmpiricalCont([]float64{1, 5, 9})
	b := NewEmpiricalCont([]float64{1, 5, 9})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("value-equal EmpiricalCont distributions fingerprint differently")
	}
	// Sampling picks by index, so order is part of the identity.
	c := NewEmpiricalCont([]float64{9, 5, 1})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("reordered observations share a fingerprint")
	}
}

func TestFingerprintOf(t *testing.T) {
	a := FingerprintOf(NewEmpiricalCont([]float64{1, 2}))
	b := FingerprintOf(NewEmpiricalCont([]float64{1, 2}))
	if a != b {
		t.Errorf("value-equal empirical: %q vs %q", a, b)
	}
	if FingerprintOf(NewExponential(1)) != FingerprintOf(NewExponential(1)) {
		t.Error("equal parametric distributions render differently")
	}
	if FingerprintOf(NewExponential(1)) == FingerprintOf(NewExponential(2)) {
		t.Error("different rates render identically")
	}
	// TruncatedAbove must recurse, not print the wrapped pointer.
	w1 := FingerprintOf(TruncatedAbove{Base: NewEmpiricalCont([]float64{1, 2}), Max: 900})
	w2 := FingerprintOf(TruncatedAbove{Base: NewEmpiricalCont([]float64{1, 2}), Max: 900})
	if w1 != w2 {
		t.Errorf("value-equal truncations render differently: %q vs %q", w1, w2)
	}
	if strings.Contains(w1, "0x") {
		t.Errorf("truncation identity leaks a pointer: %q", w1)
	}
}
