package dist_test

import (
	"fmt"

	"coalloc/internal/dist"
	"coalloc/internal/rng"
)

// An empirical discrete distribution samples integer values with given
// weights in O(1) via the alias method — the representation of the paper's
// DAS-s-128 job-size distribution.
func ExampleNewEmpiricalInt() {
	d := dist.NewEmpiricalInt([]int{1, 64, 128}, []float64{0.5, 0.4, 0.1})
	fmt.Printf("mean %.1f, P(64) = %.2f\n", d.Mean(), d.Prob(64))

	// CutAt renormalizes after removing large values — the paper's
	// DAS-s-64 construction.
	cut := d.CutAt(64)
	fmt.Printf("cut mean %.1f, max %d\n", cut.Mean(), cut.Max())
	// Output:
	// mean 38.9, P(64) = 0.40
	// cut mean 29.0, max 64
}

// Deterministic sampling: the same seed always yields the same variates.
func ExampleExponential() {
	d := dist.NewExponential(0.5)
	a := d.Sample(rng.NewStream(1))
	b := d.Sample(rng.NewStream(1))
	fmt.Println(a == b, d.Mean())
	// Output:
	// true 2
}
