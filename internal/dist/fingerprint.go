package dist

import (
	"fmt"
	"math"
)

// Fingerprinter is implemented by distributions whose identity is their
// data rather than their parameters. Two distributions with equal
// fingerprints sample identically from identical stream states, so caches
// may treat them as the same distribution.
//
// The parametric distributions (Exponential, Lognormal, ...) are plain
// value types whose parameters print completely — FingerprintOf covers
// them without this interface.
type Fingerprinter interface {
	Fingerprint() uint64
}

// FNV-1a, 64-bit. Hand-rolled over float bits so the hash is a pure
// function of the sample data, with no intermediate string allocation.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvFloat(h uint64, f float64) uint64 { return fnvUint64(h, math.Float64bits(f)) }

// Fingerprint hashes the support and probabilities. Two EmpiricalInt
// values built from the same data hash equally even when they are distinct
// allocations — the property the experiment trace cache keys on.
func (d *EmpiricalInt) Fingerprint() uint64 {
	h := fnvUint64(fnvOffset, uint64(len(d.values)))
	for i, v := range d.values {
		h = fnvUint64(h, uint64(int64(v)))
		h = fnvFloat(h, d.probs[i])
	}
	return h
}

// Fingerprint hashes the observation sample in order. Construction order
// matters to sampling (index draws pick observations), so it matters to
// the fingerprint too.
func (d *EmpiricalCont) Fingerprint() uint64 {
	h := fnvUint64(fnvOffset, uint64(len(d.sample)))
	for _, x := range d.sample {
		h = fnvFloat(h, x)
	}
	return h
}

// FingerprintOf renders a comparable identity string for any distribution:
// the dynamic type plus either the data fingerprint (Fingerprinter) or the
// printed parameters (the parametric value types, whose fields are all
// exported-equivalent under %+v). Two distributions with equal identity
// strings produce identical draws from identical stream states.
func FingerprintOf(d any) string {
	if fp, ok := d.(Fingerprinter); ok {
		return fmt.Sprintf("%T#%016x", d, fp.Fingerprint())
	}
	if t, ok := d.(TruncatedAbove); ok {
		// Recurse into the wrapped base: printing it with %+v would
		// render interface-held pointers as addresses.
		return fmt.Sprintf("dist.TruncatedAbove{Base:%s Max:%g}", FingerprintOf(t.Base), t.Max)
	}
	return fmt.Sprintf("%T%+v", d, d)
}
