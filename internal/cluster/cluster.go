// Package cluster models the multicluster's processors: per-cluster idle
// counts, allocation and release, and the placement rules that decide which
// clusters receive the components of an unordered request.
//
// The paper's rule (Section 2.3): try to schedule the components in
// decreasing order of their sizes on distinct clusters, choosing clusters
// by Worst Fit — the cluster with the largest number of idle processors.
// First Fit and Best Fit are provided for the ablation benchmarks.
package cluster

import (
	"fmt"
	"sort"
)

// Fit selects a placement rule.
type Fit int

// Placement rules.
const (
	WorstFit Fit = iota // largest idle count first (the paper's rule)
	FirstFit            // lowest cluster index that fits
	BestFit             // smallest sufficient idle count
)

// String returns the rule name.
func (f Fit) String() string {
	switch f {
	case WorstFit:
		return "WF"
	case FirstFit:
		return "FF"
	case BestFit:
		return "BF"
	default:
		return fmt.Sprintf("Fit(%d)", int(f))
	}
}

// Multicluster tracks the processors of C clusters. Processors are in one
// of three states: idle, busy, or down (failed, awaiting repair); idle
// never counts down processors, so the placement rules need no knowledge
// of failures.
type Multicluster struct {
	sizes     []int
	idle      []int
	down      []int // failed processors per cluster
	busy      int   // total busy processors, cached
	downTotal int   // total failed processors, cached
	cap       int

	// Reusable scratch so the per-event Fits/Alloc/Release checks are
	// allocation-free. A Multicluster is single-simulation state and is
	// never shared across goroutines, so plain fields suffice.
	scrPlace []int
	scrUsed  []bool
	scrSeen  []bool
	scrRel   []int
}

// New returns a multicluster with the given per-cluster processor counts.
func New(sizes []int) *Multicluster {
	if len(sizes) == 0 {
		panic("cluster: New with no clusters")
	}
	m := &Multicluster{
		sizes:    make([]int, len(sizes)),
		idle:     make([]int, len(sizes)),
		down:     make([]int, len(sizes)),
		scrPlace: make([]int, len(sizes)),
		scrUsed:  make([]bool, len(sizes)),
		scrSeen:  make([]bool, len(sizes)),
		scrRel:   make([]int, len(sizes)),
	}
	for i, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("cluster: cluster %d has non-positive size %d", i, s))
		}
		m.sizes[i] = s
		m.idle[i] = s
		m.cap += s
	}
	return m
}

// Uniform returns a multicluster of n clusters with size processors each.
func Uniform(n, size int) *Multicluster {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = size
	}
	return New(sizes)
}

// NumClusters returns the number of clusters.
func (m *Multicluster) NumClusters() int { return len(m.sizes) }

// Capacity returns the total number of processors.
func (m *Multicluster) Capacity() int { return m.cap }

// Size returns the processor count of cluster c.
func (m *Multicluster) Size(c int) int { return m.sizes[c] }

// Idle returns the idle processor count of cluster c.
func (m *Multicluster) Idle(c int) int { return m.idle[c] }

// Busy returns the total number of busy processors.
func (m *Multicluster) Busy() int { return m.busy }

// TotalIdle returns the total number of idle processors.
func (m *Multicluster) TotalIdle() int { return m.cap - m.busy - m.downTotal }

// Down returns the failed (not yet repaired) processor count of cluster c.
func (m *Multicluster) Down(c int) int { return m.down[c] }

// Avail returns the number of up processors of cluster c: its size minus
// its failed processors, whether idle or busy.
func (m *Multicluster) Avail(c int) int { return m.sizes[c] - m.down[c] }

// TotalAvail returns the number of up processors across all clusters.
func (m *Multicluster) TotalAvail() int { return m.cap - m.downTotal }

// Fail marks one idle processor of cluster c as failed. The processor must
// be idle: a failure that lands on a fully busy cluster must first abort a
// running job there so its processors are released — Fail panics otherwise,
// which is exactly the invariant check on that victim-selection step (the
// victim must have had a component on c).
func (m *Multicluster) Fail(c int) {
	if c < 0 || c >= len(m.sizes) {
		panic(fmt.Sprintf("cluster: Fail names cluster %d of %d", c, len(m.sizes)))
	}
	if m.idle[c] <= 0 {
		panic(fmt.Sprintf("cluster: Fail on cluster %d with no idle processor (abort a victim first)", c))
	}
	m.idle[c]--
	m.down[c]++
	m.downTotal++
}

// Repair returns one failed processor of cluster c to the idle pool. It
// panics when cluster c has no failed processor.
func (m *Multicluster) Repair(c int) {
	if c < 0 || c >= len(m.sizes) {
		panic(fmt.Sprintf("cluster: Repair names cluster %d of %d", c, len(m.sizes)))
	}
	if m.down[c] <= 0 {
		panic(fmt.Sprintf("cluster: Repair on cluster %d with no failed processor", c))
	}
	m.down[c]--
	m.downTotal--
	m.idle[c]++
}

// Place chooses distinct clusters for the components (which must be in
// nonincreasing order) under the given fit rule. It returns the cluster
// index per component and true, or nil and false when the request does not
// fit. Place does not allocate; pair it with Alloc.
func (m *Multicluster) Place(components []int, fit Fit) ([]int, bool) {
	if len(components) > len(m.sizes) {
		return nil, false
	}
	placement := make([]int, len(components))
	used := make([]bool, len(m.sizes))
	if !m.PlaceInto(components, fit, placement, used) {
		return nil, false
	}
	return placement, true
}

// PlaceInto is Place writing into caller-provided buffers, for schedulers
// that probe placements in a loop: placement needs room for one entry per
// component and used for one entry per cluster. On success the chosen
// cluster indices are in placement[:len(components)]; both buffers hold
// unspecified values otherwise. PlaceInto never touches the heap.
func (m *Multicluster) PlaceInto(components []int, fit Fit, placement []int, used []bool) bool {
	if len(components) == 0 {
		panic("cluster: Place with no components")
	}
	if len(components) > len(m.sizes) {
		return false
	}
	used = used[:len(m.sizes)]
	for c := range used {
		used[c] = false
	}
	for ci, need := range components {
		best := -1
		for c := range m.sizes {
			if used[c] || m.idle[c] < need {
				continue
			}
			switch fit {
			case WorstFit:
				if best < 0 || m.idle[c] > m.idle[best] {
					best = c
				}
			case BestFit:
				if best < 0 || m.idle[c] < m.idle[best] {
					best = c
				}
			case FirstFit:
				if best < 0 {
					best = c
				}
			default:
				panic(fmt.Sprintf("cluster: unknown fit rule %d", int(fit)))
			}
			if fit == FirstFit && best >= 0 {
				break
			}
		}
		if best < 0 {
			return false
		}
		used[best] = true
		placement[ci] = best
	}
	return true
}

// Fits reports whether the components could be placed right now under the
// given fit rule, without allocating.
//
// Note that with distinct-cluster placement, greedy fitting of the largest
// component to the emptiest cluster is exactly what the paper's scheduler
// does; Fits deliberately reproduces that greedy test rather than solving
// the (bipartite matching) feasibility problem optimally.
func (m *Multicluster) Fits(components []int, fit Fit) bool {
	if len(components) > len(m.sizes) {
		return false
	}
	return m.PlaceInto(components, fit, m.scrPlace, m.scrUsed)
}

// FitsOn reports whether a single component of the given size fits on
// cluster c.
func (m *Multicluster) FitsOn(c, size int) bool { return m.idle[c] >= size }

// FitsOrdered reports whether components fit on the fixed clusters named
// by placement (an ordered request). The placement must name distinct
// clusters.
func (m *Multicluster) FitsOrdered(components, placement []int) bool {
	if len(components) != len(placement) {
		panic(fmt.Sprintf("cluster: FitsOrdered with %d components but %d placements",
			len(components), len(placement)))
	}
	for i, c := range placement {
		if c < 0 || c >= len(m.sizes) {
			panic(fmt.Sprintf("cluster: FitsOrdered names cluster %d of %d", c, len(m.sizes)))
		}
		if m.idle[c] < components[i] {
			return false
		}
	}
	return true
}

// CarveFlexible splits a flexible request of the given total size over the
// clusters, taking greedily from the cluster with the most idle processors
// first (Worst Fit in spirit: it keeps the load spread). It returns the
// chosen component sizes (nonincreasing) with their clusters, or ok=false
// when the total exceeds the idle capacity of the whole system.
func (m *Multicluster) CarveFlexible(total int) (components, placement []int, ok bool) {
	if total <= 0 {
		panic(fmt.Sprintf("cluster: CarveFlexible(%d)", total))
	}
	if total > m.TotalIdle() {
		return nil, nil, false
	}
	// Order clusters by idle count, descending (stable by index).
	order := make([]int, len(m.sizes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.idle[order[a]] > m.idle[order[b]]
	})
	remaining := total
	for _, c := range order {
		if remaining == 0 {
			break
		}
		take := m.idle[c]
		if take > remaining {
			take = remaining
		}
		if take == 0 {
			continue
		}
		components = append(components, take)
		placement = append(placement, c)
		remaining -= take
	}
	return components, placement, true
}

// Alloc takes the processors named by placement: components[i] processors
// on cluster placement[i]. It panics if the allocation is infeasible or the
// placement reuses a cluster, catching scheduler bugs at their source.
func (m *Multicluster) Alloc(components, placement []int) {
	if len(components) != len(placement) {
		panic(fmt.Sprintf("cluster: Alloc with %d components but %d placements",
			len(components), len(placement)))
	}
	seen := m.scrSeen
	for i := range seen {
		seen[i] = false
	}
	for i, c := range placement {
		if c < 0 || c >= len(m.sizes) {
			panic(fmt.Sprintf("cluster: Alloc placement %d names cluster %d of %d", i, c, len(m.sizes)))
		}
		if seen[c] {
			panic(fmt.Sprintf("cluster: Alloc places two components on cluster %d", c))
		}
		seen[c] = true
		if m.idle[c] < components[i] {
			panic(fmt.Sprintf("cluster: Alloc of %d on cluster %d with %d idle",
				components[i], c, m.idle[c]))
		}
	}
	for i, c := range placement {
		m.idle[c] -= components[i]
		m.busy += components[i]
	}
}

// Release returns the processors named by placement. It panics on
// over-release: releasing a placement that was never allocated must fail
// loudly, not corrupt the idle counts. The check accumulates the released
// processors per cluster before applying anything — a per-component test
// alone would accept a placement naming the same cluster twice whose
// components individually fit under the size but cumulatively do not.
func (m *Multicluster) Release(components, placement []int) {
	if len(components) != len(placement) {
		panic(fmt.Sprintf("cluster: Release with %d components but %d placements",
			len(components), len(placement)))
	}
	add := m.scrRel
	for i := range add {
		add[i] = 0
	}
	total := 0
	for i, c := range placement {
		if c < 0 || c >= len(m.sizes) {
			panic(fmt.Sprintf("cluster: Release placement %d names cluster %d of %d",
				i, c, len(m.sizes)))
		}
		add[c] += components[i]
		total += components[i]
		if m.idle[c]+add[c] > m.sizes[c]-m.down[c] {
			panic(fmt.Sprintf("cluster: Release of %d on cluster %d with %d idle exceeds its %d up processors",
				add[c], c, m.idle[c], m.sizes[c]-m.down[c]))
		}
	}
	if total > m.busy {
		panic(fmt.Sprintf("cluster: Release of %d processors with only %d busy", total, m.busy))
	}
	for i, c := range placement {
		m.idle[c] += components[i]
		m.busy -= components[i]
	}
}

// Reset marks every processor idle and repairs every failed one.
func (m *Multicluster) Reset() {
	for i := range m.idle {
		m.idle[i] = m.sizes[i]
		m.down[i] = 0
	}
	m.busy = 0
	m.downTotal = 0
}
