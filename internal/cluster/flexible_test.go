package cluster

import (
	"testing"
	"testing/quick"

	"coalloc/internal/rng"
)

func TestFitsOrdered(t *testing.T) {
	m := New([]int{32, 32, 32, 32})
	m.Alloc([]int{30}, []int{1})
	if !m.FitsOrdered([]int{16, 16}, []int{0, 2}) {
		t.Error("fitting ordered request rejected")
	}
	if m.FitsOrdered([]int{16, 16}, []int{0, 1}) {
		t.Error("ordered request accepted on a full cluster")
	}
	func() {
		defer func() { recover() }()
		m.FitsOrdered([]int{16}, []int{0, 1})
		t.Error("mismatched ordered request did not panic")
	}()
	func() {
		defer func() { recover() }()
		m.FitsOrdered([]int{16}, []int{9})
		t.Error("out-of-range cluster did not panic")
	}()
}

func TestCarveFlexibleSpansGreedily(t *testing.T) {
	m := New([]int{32, 32, 32, 32})
	m.Alloc([]int{20}, []int{0}) // idle: 12, 32, 32, 32
	comps, placement, ok := m.CarveFlexible(70)
	if !ok {
		t.Fatal("70 processors must fit in 108 idle")
	}
	// Greedy from the emptiest: 32 (c1), 32 (c2), 6 (c3) — cluster
	// order among ties is stable (1, 2, 3).
	wantComps := []int{32, 32, 6}
	wantPlace := []int{1, 2, 3}
	if len(comps) != 3 {
		t.Fatalf("carve %v on %v", comps, placement)
	}
	for i := range wantComps {
		if comps[i] != wantComps[i] || placement[i] != wantPlace[i] {
			t.Fatalf("carve %v on %v, want %v on %v", comps, placement, wantComps, wantPlace)
		}
	}
}

func TestCarveFlexibleSingleCluster(t *testing.T) {
	m := New([]int{32, 32})
	comps, placement, ok := m.CarveFlexible(10)
	if !ok || len(comps) != 1 || comps[0] != 10 {
		t.Fatalf("carve %v on %v ok=%v", comps, placement, ok)
	}
}

func TestCarveFlexibleRejectsOverflow(t *testing.T) {
	m := New([]int{8, 8})
	if _, _, ok := m.CarveFlexible(17); ok {
		t.Error("17 processors carved out of 16 idle")
	}
	if _, _, ok := m.CarveFlexible(16); !ok {
		t.Error("exact-capacity carve rejected")
	}
}

func TestCarveFlexiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CarveFlexible(0) did not panic")
		}
	}()
	New([]int{8}).CarveFlexible(0)
}

// TestCarveFlexibleProperty: any successful carve sums to the total, uses
// distinct clusters, respects idle counts, and is nonincreasing; the carve
// succeeds exactly when total <= idle capacity.
func TestCarveFlexibleProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		m := Uniform(1+r.Intn(5), 8+r.Intn(40))
		// Random pre-load.
		for c := 0; c < m.NumClusters(); c++ {
			if n := r.Intn(m.Size(c) + 1); n > 0 {
				m.Alloc([]int{n}, []int{c})
			}
		}
		total := 1 + r.Intn(m.Capacity())
		comps, placement, ok := m.CarveFlexible(total)
		if ok != (total <= m.TotalIdle()) {
			return false
		}
		if !ok {
			return true
		}
		sum := 0
		seen := map[int]bool{}
		for i, c := range comps {
			if c <= 0 || c > m.Idle(placement[i]) || seen[placement[i]] {
				return false
			}
			if i > 0 && comps[i] > comps[i-1] {
				return false
			}
			seen[placement[i]] = true
			sum += c
		}
		if sum != total {
			return false
		}
		m.Alloc(comps, placement) // must not panic
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
