package cluster

import (
	"testing"
	"testing/quick"

	"coalloc/internal/rng"
)

func TestNewAndAccessors(t *testing.T) {
	m := New([]int{32, 16, 8})
	if m.NumClusters() != 3 || m.Capacity() != 56 {
		t.Errorf("clusters %d capacity %d", m.NumClusters(), m.Capacity())
	}
	if m.Size(1) != 16 || m.Idle(1) != 16 {
		t.Errorf("cluster 1 size/idle %d/%d", m.Size(1), m.Idle(1))
	}
	if m.Busy() != 0 || m.TotalIdle() != 56 {
		t.Errorf("busy %d idle %d", m.Busy(), m.TotalIdle())
	}
}

func TestUniform(t *testing.T) {
	m := Uniform(4, 32)
	if m.NumClusters() != 4 || m.Capacity() != 128 {
		t.Errorf("uniform: %d clusters, capacity %d", m.NumClusters(), m.Capacity())
	}
}

func TestNewPanics(t *testing.T) {
	for _, sizes := range [][]int{nil, {}, {32, 0}, {-1}} {
		func() {
			defer func() { recover() }()
			New(sizes)
			t.Errorf("New(%v) did not panic", sizes)
		}()
	}
}

func TestWorstFitPicksEmptiest(t *testing.T) {
	m := New([]int{32, 32, 32, 32})
	// Make idle counts 32, 24, 28, 16.
	m.Alloc([]int{8}, []int{1})
	m.Alloc([]int{4}, []int{2})
	m.Alloc([]int{16}, []int{3})
	placement, ok := m.Place([]int{10, 10}, WorstFit)
	if !ok {
		t.Fatal("placement failed")
	}
	// Worst Fit: first component to cluster 0 (32 idle), second to 2 (28).
	if placement[0] != 0 || placement[1] != 2 {
		t.Errorf("placement = %v, want [0 2]", placement)
	}
}

func TestBestFitPicksTightest(t *testing.T) {
	m := New([]int{32, 32, 32, 32})
	m.Alloc([]int{8}, []int{1})  // idle 24
	m.Alloc([]int{4}, []int{2})  // idle 28
	m.Alloc([]int{16}, []int{3}) // idle 16
	placement, ok := m.Place([]int{10}, BestFit)
	if !ok {
		t.Fatal("placement failed")
	}
	if placement[0] != 3 { // 16 idle is the tightest fit >= 10
		t.Errorf("placement = %v, want [3]", placement)
	}
}

func TestFirstFitPicksLowestIndex(t *testing.T) {
	m := New([]int{32, 32, 32, 32})
	m.Alloc([]int{30}, []int{0}) // cluster 0 has 2 idle
	placement, ok := m.Place([]int{10}, FirstFit)
	if !ok {
		t.Fatal("placement failed")
	}
	if placement[0] != 1 {
		t.Errorf("placement = %v, want [1]", placement)
	}
}

func TestPlaceDistinctClusters(t *testing.T) {
	m := New([]int{32, 32, 32, 32})
	placement, ok := m.Place([]int{16, 16, 16, 16}, WorstFit)
	if !ok {
		t.Fatal("four components of 16 must fit on an empty 4x32 system")
	}
	seen := map[int]bool{}
	for _, c := range placement {
		if seen[c] {
			t.Fatalf("placement %v reuses a cluster", placement)
		}
		seen[c] = true
	}
}

func TestPlaceRejects(t *testing.T) {
	m := New([]int{32, 32, 32, 32})
	// A fifth component cannot get a distinct cluster.
	if _, ok := m.Place([]int{1, 1, 1, 1, 1}, WorstFit); ok {
		t.Error("five components placed on four clusters")
	}
	// One oversized component.
	if _, ok := m.Place([]int{33}, WorstFit); ok {
		t.Error("33 processors placed on a 32-cluster")
	}
	// Total fits but distinct clusters do not: two components of 20.
	m.Alloc([]int{20}, []int{0})
	m.Alloc([]int{20}, []int{1})
	m.Alloc([]int{20}, []int{2})
	if _, ok := m.Place([]int{20, 20}, WorstFit); ok {
		t.Error("two 20s placed when only one cluster has 20 idle")
	}
	if !m.Fits([]int{20}, WorstFit) {
		t.Error("a single 20 should still fit")
	}
}

func TestGreedyWFNotOptimal(t *testing.T) {
	// The paper's greedy rule can reject feasible placements: components
	// (16, 16) on idle (24, 16): WF puts 16 on the 24-idle cluster, then
	// the second 16 only fits on... the 16-idle cluster. Here greedy
	// works. A true counterexample needs the big component to block:
	// components (10, 8) with idle (9, 18): decreasing order places 10
	// on the 18-idle cluster, 8 on the 9-idle one — fine again. Greedy
	// with distinct clusters and decreasing sizes is in fact safe for
	// two components; document the deliberate greedy semantics instead.
	m := New([]int{24, 16})
	m.Alloc([]int{8}, []int{1}) // idle 24, 8
	placement, ok := m.Place([]int{16, 8}, WorstFit)
	if !ok || placement[0] != 0 || placement[1] != 1 {
		t.Errorf("placement %v ok=%v, want [0 1]", placement, ok)
	}
}

func TestAllocReleaseCycle(t *testing.T) {
	m := New([]int{32, 32})
	m.Alloc([]int{16, 8}, []int{0, 1})
	if m.Idle(0) != 16 || m.Idle(1) != 24 || m.Busy() != 24 {
		t.Errorf("after alloc: idle %d/%d busy %d", m.Idle(0), m.Idle(1), m.Busy())
	}
	m.Release([]int{16, 8}, []int{0, 1})
	if m.Idle(0) != 32 || m.Idle(1) != 32 || m.Busy() != 0 {
		t.Errorf("after release: idle %d/%d busy %d", m.Idle(0), m.Idle(1), m.Busy())
	}
}

func TestAllocPanics(t *testing.T) {
	cases := []struct {
		name       string
		components []int
		placement  []int
	}{
		{"mismatched lengths", []int{8}, []int{0, 1}},
		{"bad cluster index", []int{8}, []int{5}},
		{"negative cluster", []int{8}, []int{-1}},
		{"duplicate cluster", []int{8, 8}, []int{0, 0}},
		{"over capacity", []int{33}, []int{0}},
	}
	for _, c := range cases {
		func() {
			defer func() { recover() }()
			m := New([]int{32, 32})
			m.Alloc(c.components, c.placement)
			t.Errorf("%s: Alloc did not panic", c.name)
		}()
	}
}

func TestReleasePanics(t *testing.T) {
	m := New([]int{32})
	func() {
		defer func() { recover() }()
		m.Release([]int{1}, []int{0})
		t.Error("over-release did not panic")
	}()
	func() {
		defer func() { recover() }()
		m.Release([]int{1, 2}, []int{0})
		t.Error("mismatched release did not panic")
	}()
}

// TestReleaseDuplicateClusterPanics pins the cumulative overflow check: a
// placement naming the same cluster twice, whose components individually
// fit under the cluster size but together exceed it, must panic — and must
// leave the counts untouched, because the check runs before any mutation.
// (A per-component check alone would accept this placement: each 20 fits
// within 12 idle + 20 <= 32, and the 40 total does not exceed the 40 busy.)
func TestReleaseDuplicateClusterPanics(t *testing.T) {
	m := New([]int{32, 32})
	m.Alloc([]int{20}, []int{0})
	m.Alloc([]int{20}, []int{1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate-cluster over-release did not panic")
			}
		}()
		m.Release([]int{20, 20}, []int{0, 0})
	}()
	if m.Idle(0) != 12 || m.Idle(1) != 12 || m.Busy() != 40 {
		t.Errorf("rejected release mutated state: idle %d/%d busy %d",
			m.Idle(0), m.Idle(1), m.Busy())
	}
}

func TestFailRepair(t *testing.T) {
	m := New([]int{4, 4})
	m.Fail(0)
	if m.Down(0) != 1 || m.Idle(0) != 3 || m.Avail(0) != 3 {
		t.Errorf("after Fail: down %d idle %d avail %d", m.Down(0), m.Idle(0), m.Avail(0))
	}
	if m.TotalAvail() != 7 || m.TotalIdle() != 7 {
		t.Errorf("after Fail: total avail %d idle %d", m.TotalAvail(), m.TotalIdle())
	}
	m.Alloc([]int{3}, []int{0})
	if m.TotalIdle() != 4 || m.Avail(0) != 3 {
		t.Errorf("after Alloc on degraded cluster: total idle %d avail %d", m.TotalIdle(), m.Avail(0))
	}
	m.Repair(0)
	if m.Down(0) != 0 || m.Idle(0) != 1 || m.Avail(0) != 4 || m.TotalAvail() != 8 {
		t.Errorf("after Repair: down %d idle %d avail %d total %d",
			m.Down(0), m.Idle(0), m.Avail(0), m.TotalAvail())
	}
}

func TestFailRepairPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Multicluster)
	}{
		{"Fail out of range", func(m *Multicluster) { m.Fail(2) }},
		{"Repair out of range", func(m *Multicluster) { m.Repair(-1) }},
		{"Repair with nothing down", func(m *Multicluster) { m.Repair(0) }},
		{"Fail with no idle", func(m *Multicluster) {
			m.Alloc([]int{4}, []int{0})
			m.Fail(0)
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f(New([]int{4, 4}))
		}()
	}
}

func TestResetRepairsFailures(t *testing.T) {
	m := New([]int{4, 4})
	m.Fail(0)
	m.Fail(1)
	m.Reset()
	if m.Down(0) != 0 || m.Down(1) != 0 || m.TotalAvail() != 8 || m.TotalIdle() != 8 {
		t.Error("Reset left processors down")
	}
}

func TestFitsOn(t *testing.T) {
	m := New([]int{32, 32})
	m.Alloc([]int{30}, []int{0})
	if m.FitsOn(0, 3) {
		t.Error("3 should not fit on a cluster with 2 idle")
	}
	if !m.FitsOn(0, 2) || !m.FitsOn(1, 32) {
		t.Error("legitimate fits rejected")
	}
}

func TestReset(t *testing.T) {
	m := New([]int{32, 32})
	m.Alloc([]int{10, 10}, []int{0, 1})
	m.Reset()
	if m.Busy() != 0 || m.Idle(0) != 32 || m.Idle(1) != 32 {
		t.Error("Reset did not restore full idleness")
	}
}

func TestPlaceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Place with no components did not panic")
		}
	}()
	New([]int{32}).Place(nil, WorstFit)
}

func TestFitString(t *testing.T) {
	if WorstFit.String() != "WF" || FirstFit.String() != "FF" || BestFit.String() != "BF" {
		t.Error("fit rule names")
	}
	if Fit(42).String() == "" {
		t.Error("unknown fit rule should render something")
	}
}

// TestRandomAllocReleaseConservation drives random placement/allocation/
// release sequences and checks the bookkeeping invariants throughout:
// 0 <= idle <= size per cluster, busy + totalIdle == capacity.
func TestRandomAllocReleaseConservation(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		sizes := make([]int, 1+r.Intn(6))
		for i := range sizes {
			sizes[i] = 4 + r.Intn(40)
		}
		m := New(sizes)
		type alloc struct{ comps, placement []int }
		var live []alloc
		fits := []Fit{WorstFit, FirstFit, BestFit}
		for step := 0; step < 300; step++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				n := 1 + r.Intn(len(sizes))
				comps := make([]int, n)
				for i := range comps {
					comps[i] = 1 + r.Intn(20)
				}
				// Components must be nonincreasing for Place.
				for i := 1; i < n; i++ {
					if comps[i] > comps[i-1] {
						comps[i] = comps[i-1]
					}
				}
				if placement, ok := m.Place(comps, fits[r.Intn(3)]); ok {
					m.Alloc(comps, placement)
					live = append(live, alloc{comps, placement})
				}
			} else {
				i := r.Intn(len(live))
				m.Release(live[i].comps, live[i].placement)
				live = append(live[:i], live[i+1:]...)
			}
			total := 0
			for c := range sizes {
				if m.Idle(c) < 0 || m.Idle(c) > m.Size(c) {
					return false
				}
				total += m.Idle(c)
			}
			if total != m.TotalIdle() || m.Busy()+total != m.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPlaceNeverOverfills: any accepted placement is actually feasible.
func TestPlaceNeverOverfills(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.NewStream(seed)
		m := Uniform(4, 32)
		// Random pre-load.
		for c := 0; c < 4; c++ {
			if n := r.Intn(33); n > 0 {
				m.Alloc([]int{n}, []int{c})
			}
		}
		n := 1 + r.Intn(4)
		comps := make([]int, n)
		for i := range comps {
			comps[i] = 1 + r.Intn(32)
		}
		for i := 1; i < n; i++ {
			if comps[i] > comps[i-1] {
				comps[i] = comps[i-1]
			}
		}
		placement, ok := m.Place(comps, WorstFit)
		if !ok {
			return true
		}
		for i, c := range placement {
			if m.Idle(c) < comps[i] {
				return false
			}
		}
		m.Alloc(comps, placement) // must not panic
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
