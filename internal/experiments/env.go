// Package experiments reproduces every table and figure of the paper's
// evaluation: it sweeps arrival rates, runs the policies, and renders the
// same rows and curves the paper reports. Each experiment has a runner
// keyed by the paper's artifact name (table1..table3, fig1..fig7, ratio).
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"coalloc/internal/cluster"
	"coalloc/internal/core"
	"coalloc/internal/dectrace"
	"coalloc/internal/dist"
	"coalloc/internal/faults"
	"coalloc/internal/obs"
	"coalloc/internal/plot"
	"coalloc/internal/workload"
)

// MulticlusterSizes is the paper's system: 4 clusters of 32 processors.
var MulticlusterSizes = []int{32, 32, 32, 32}

// SingleClusterSizes is the reference system: one 128-processor cluster.
var SingleClusterSizes = []int{128}

// Limits are the paper's job-component-size limits.
var Limits = []int{16, 24, 32}

// Params controls the fidelity/cost of the experiment runs.
type Params struct {
	// Seed is the master seed; replications use Seed, Seed+1, ...
	Seed uint64
	// WarmupJobs and MeasureJobs per run (see core.Config).
	WarmupJobs, MeasureJobs int
	// Replications per point; the reported value is the mean.
	Replications int
	// Precision, when positive, replaces the fixed replication count
	// with the sequential stopping rule of core.RunUntilPrecision: each
	// point runs replications until the 95% half-width of the mean
	// response time drops below this relative precision (e.g. 0.05 for
	// +-5%). Replications then sets the minimum replication count (when
	// >= 2) and MaxReplications the cap.
	Precision float64
	// MaxReplications bounds the sequential procedure when Precision is
	// set (0 = the core default, 20).
	MaxReplications int
	// SaturationCutoff enables the early divergence monitor of
	// core.Config.SaturationCutoff for every sweep run: saturated points
	// stop as soon as their backlog growth provably exceeds the
	// saturation heuristic instead of running the full horizon. The
	// experiments use saturated points only as curve terminators, so the
	// figures keep their shape while their most expensive points get
	// cheaper; non-saturated points are bit-identical either way. Both
	// parameter presets enable it.
	SaturationCutoff bool
	// Schedule selects how sweep points are laid out on the worker pool
	// (see ScheduleMode); the zero value is the straggler-free
	// figure-level schedule. The rendered output is byte-identical
	// across modes.
	Schedule ScheduleMode
	// Utilizations is the gross-utilization sweep grid for the
	// response-time curves.
	Utilizations []float64
	// ResponseCap stops a sweep once the mean response time exceeds it
	// (the paper plots up to 10000 s).
	ResponseCap float64
	// BacklogWarmup and BacklogMeasure are the virtual durations of the
	// constant-backlog (maximal utilization) runs.
	BacklogWarmup, BacklogMeasure float64
	// DataDir, when non-empty, receives one CSV file per experiment.
	DataDir string
	// Progress, when non-nil, receives one line per completed sweep
	// point — the long sweeps behind the figures otherwise run for
	// minutes with no output.
	Progress io.Writer
	// Observer, when non-nil, receives the metrics (and optional trace)
	// of every simulation run. An Observer is single-threaded, so sweeps
	// and replications then execute serially, in deterministic order.
	Observer *obs.Observer
	// FaultMTTR is the mean time to repair a failed processor, in virtual
	// seconds, used by the fault-injection experiments. Zero means the
	// 900 s default.
	FaultMTTR float64
	// FaultMTBF is the per-cluster mean time between failures, in virtual
	// seconds, for the checkpoint experiment (the degradation experiment
	// sweeps its own MTBF grid). Zero means the 1000 s default.
	FaultMTBF float64
	// FaultRetryBase and FaultRetryCap override the resubmission backoff
	// of killed jobs (zeros mean the 10 s / 600 s defaults; see
	// faults.Spec).
	FaultRetryBase, FaultRetryCap float64
	// FaultCheckpointInterval enables checkpoint/restart in the
	// degradation experiment: kills then forfeit only the work since the
	// last checkpoint. Zero (the default) disables checkpointing there;
	// the checkpoint experiment sweeps its own interval grid.
	FaultCheckpointInterval float64
	// Lookahead bounds the number of queued jobs that receive
	// reservations per conservative-backfilling pass (as in
	// core.Config.Lookahead; 0 = the default 32, explicit values must be
	// >= 1).
	Lookahead int
	// PerPolicyWorkload disables the shared workload trace: each policy
	// run then regenerates its jobs from the random streams instead of
	// replaying the per-(seed, utilization) record. The results are
	// bit-identical either way (the trace generator mirrors the live
	// sampler draw for draw — pinned by the sweep guardrail test), so
	// this exists as an ablation/debugging switch, not a fidelity knob.
	PerPolicyWorkload bool
	// Decisions, when non-nil, enables decision tracing (core
	// Config.Decisions) for every sweep run: regret aggregates land in
	// each point's Result. The regret experiment forces this on for its
	// own sweep; nil everywhere else keeps all runs bit-identical to a
	// build without the dectrace layer.
	Decisions *dectrace.Options
}

// DefaultParams returns publication-fidelity settings.
func DefaultParams() Params {
	return Params{
		Seed:             1,
		WarmupJobs:       3000,
		MeasureJobs:      30000,
		Replications:     3,
		Utilizations:     grid(0.10, 0.95, 0.05),
		ResponseCap:      10000,
		BacklogWarmup:    100_000,
		BacklogMeasure:   1_000_000,
		SaturationCutoff: true,
	}
}

// QuickParams returns reduced settings for tests and benchmarks.
func QuickParams() Params {
	return Params{
		Seed:             1,
		WarmupJobs:       300,
		MeasureJobs:      3000,
		Replications:     1,
		Utilizations:     grid(0.15, 0.85, 0.10),
		ResponseCap:      10000,
		BacklogWarmup:    20_000,
		BacklogMeasure:   100_000,
		SaturationCutoff: true,
	}
}

func grid(lo, hi, step float64) []float64 {
	var g []float64
	for u := lo; u <= hi+1e-9; u += step {
		g = append(g, math.Round(u*1000)/1000)
	}
	return g
}

// Env bundles the parameters with the workload distributions derived from
// the synthetic DAS trace; all experiments share one Env.
type Env struct {
	Params
	Derived workload.Derived

	// traces shares each (seed, utilization) point's workload record
	// between the policies that sweep it (common random numbers).
	traces traceCache
}

// NewEnv derives the canonical workload and returns a ready environment.
func NewEnv(p Params) *Env {
	return &Env{Params: p, Derived: workload.DeriveDefault()}
}

// MultiSpec returns the multicluster workload for a component-size limit,
// with the given total-size distribution (Sizes128 or Sizes64).
func (e *Env) MultiSpec(limit int, sizes *dist.EmpiricalInt) workload.Spec {
	return workload.Spec{
		Sizes:           sizes,
		Service:         e.Derived.Service,
		ComponentLimit:  limit,
		Clusters:        len(MulticlusterSizes),
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
}

// SCSpec returns the single-cluster reference workload (total requests, no
// splitting, no extension).
func (e *Env) SCSpec(sizes *dist.EmpiricalInt) workload.Spec {
	return workload.Spec{
		Sizes:           sizes,
		Service:         e.Derived.Service,
		ComponentLimit:  sizes.Max(),
		Clusters:        1,
		ExtensionFactor: workload.DefaultExtensionFactor, // never applied: 1 component
	}
}

// CurveSpec names one response-time-versus-utilization curve.
type CurveSpec struct {
	Label        string
	Policy       string
	ClusterSizes []int
	Spec         workload.Spec
	QueueWeights []float64 // nil = balanced
	Fit          cluster.Fit
}

// curveJobs builds the sweep jobs of a set of curve specs over the
// utilization grid.
func (e *Env) curveJobs(specs []CurveSpec) []curveJob {
	jobs := make([]curveJob, len(specs))
	for i := range specs {
		cs := specs[i]
		jobs[i] = curveJob{
			label: cs.Label,
			grid:  e.Utilizations,
			fn: func(u float64) (core.Result, error) {
				return e.point(cs, u)
			},
		}
	}
	return jobs
}

// CurveSet sweeps the utilization grid for several configurations as one
// scheduling unit (see ScheduleMode) and returns each curve's raw results
// in grid order, ending at the curve's first saturated point.
func (e *Env) CurveSet(specs []CurveSpec) ([][]core.Result, error) {
	return e.sweepSet(e.curveJobs(specs))
}

// Curves is CurveSet rendered into the measured (gross utilization, mean
// response time) series of each curve. Batching a figure's curves into
// one call lets the scheduler interleave their points; the series are
// identical to sweeping each curve alone.
func (e *Env) Curves(specs []CurveSpec) ([]plot.Series, error) {
	sets, err := e.CurveSet(specs)
	if err != nil {
		return nil, err
	}
	out := make([]plot.Series, len(specs))
	for i := range specs {
		out[i] = e.series(specs[i].Label, sets[i])
	}
	return out, nil
}

// series renders one curve's results, ending at the first saturated point
// or once the response cap is exceeded, as in the paper's plots.
func (e *Env) series(name string, results []core.Result) plot.Series {
	s := plot.Series{Name: name}
	for _, res := range results {
		s.Add(res.GrossUtilization, res.MeanResponse)
		if res.Saturated {
			// The terminator's measured values are horizon-dependent
			// (doubly so under the saturation cutoff); flag it so
			// summaries exclude it from stable-point ranks.
			s.Saturated = true
			break
		}
		if res.MeanResponse > e.ResponseCap {
			break
		}
	}
	return s
}

// Curve sweeps the utilization grid for one configuration and returns the
// measured (gross utilization, mean response time) series. The points run
// concurrently (see parallel.go); the curve still ends at the first
// saturated point or once the response cap is exceeded.
func (e *Env) Curve(cs CurveSpec) (plot.Series, error) {
	out, err := e.Curves([]CurveSpec{cs})
	if err != nil {
		return plot.Series{Name: cs.Label}, err
	}
	return out[0], nil
}

// CurveNet is like Curve but returns two series over the same runs: the
// response time against the measured gross utilization and against the
// measured net utilization (for Fig. 7).
func (e *Env) CurveNet(cs CurveSpec) (gross, net plot.Series, err error) {
	gross = plot.Series{Name: cs.Label + " gross"}
	net = plot.Series{Name: cs.Label + " net"}
	results, err := e.sweep(cs.Label, e.Utilizations, func(u float64) (core.Result, error) {
		return e.point(cs, u)
	})
	if err != nil {
		return gross, net, err
	}
	gross, net = e.netSeries(cs.Label, results)
	return gross, net, nil
}

// netSeries renders one curve's results into the gross- and
// net-utilization series of Fig. 7.
func (e *Env) netSeries(label string, results []core.Result) (gross, net plot.Series) {
	gross = plot.Series{Name: label + " gross"}
	net = plot.Series{Name: label + " net"}
	for _, res := range results {
		gross.Add(res.GrossUtilization, res.MeanResponse)
		net.Add(res.NetUtilization, res.MeanResponse)
		if res.Saturated {
			gross.Saturated = true
			net.Saturated = true
			break
		}
		if res.MeanResponse > e.ResponseCap {
			break
		}
	}
	return gross, net
}

// Point runs one configuration at one offered gross utilization.
func (e *Env) Point(cs CurveSpec, util float64) (core.Result, error) {
	return e.point(cs, util)
}

func (e *Env) point(cs CurveSpec, util float64) (core.Result, error) {
	return e.runPoint(e.pointConfig(cs, util))
}

// runPoint runs one point's replications: a fixed count by default, or
// the sequential stopping rule when Params.Precision is set.
func (e *Env) runPoint(cfg core.Config) (core.Result, error) {
	if e.Precision > 0 {
		min := 0 // 0 = the core default (3)
		if e.Replications >= 2 {
			min = e.Replications
		}
		pr, err := core.RunUntilPrecision(core.PrecisionConfig{
			Run:               cfg,
			RelativePrecision: e.Precision,
			MinReplications:   min,
			MaxReplications:   e.MaxReplications,
		})
		return pr.Result, err
	}
	return core.RunReplications(cfg, e.Replications)
}

// pointConfig builds the run configuration of one sweep point, with the
// shared workload trace attached when enabled.
func (e *Env) pointConfig(cs CurveSpec, util float64) core.Config {
	var capacity int
	for _, s := range cs.ClusterSizes {
		capacity += s
	}
	cfg := core.Config{
		ClusterSizes:     cs.ClusterSizes,
		Spec:             cs.Spec,
		Policy:           cs.Policy,
		Fit:              cs.Fit,
		ArrivalRate:      cs.Spec.ArrivalRateForGrossUtilization(util, capacity),
		QueueWeights:     cs.QueueWeights,
		WarmupJobs:       e.WarmupJobs,
		MeasureJobs:      e.MeasureJobs,
		Seed:             e.Seed,
		Observer:         e.Observer,
		Lookahead:        e.Lookahead,
		SaturationCutoff: e.SaturationCutoff,
		Decisions:        e.Decisions,
	}
	if !e.PerPolicyWorkload && cfg.RequestType == workload.Unordered {
		cfg.TraceProvider = e.traces.provider(cfg)
	}
	return cfg
}

// FaultPoint is Point with fault injection (nil fs = fault-free). The
// workload trace is shared with every other rate at this point, failure
// draws come from their own streams, so the whole degradation grid runs on
// a common job sequence and differences are purely the failures.
func (e *Env) FaultPoint(cs CurveSpec, util float64, fs *faults.Spec) (core.Result, error) {
	cfg := e.pointConfig(cs, util)
	cfg.Faults = fs
	return e.runPoint(cfg)
}

// SaveCSV writes the series of an experiment to DataDir (when configured).
func (e *Env) SaveCSV(name string, series []plot.Series) error {
	if e.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(e.DataDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(e.DataDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := plot.WriteCSV(f, series); err != nil {
		f.Close() //detlint:ignore closecheck error path: the write failure being returned supersedes any close error
		return err
	}
	// The Close error is the write error for buffered file data: dropping
	// it can silently truncate the CSV (full disk, quota).
	return f.Close()
}

// standardCurves returns the four policy curves of Fig. 3 for one
// component-size limit and queue balance.
func (e *Env) standardCurves(limit int, weights []float64) []CurveSpec {
	spec := e.MultiSpec(limit, e.Derived.Sizes128)
	return []CurveSpec{
		{Label: "SC", Policy: "SC", ClusterSizes: SingleClusterSizes, Spec: e.SCSpec(e.Derived.Sizes128)},
		{Label: "GS", Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
		{Label: "LS", Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec, QueueWeights: weights},
		{Label: "LP", Policy: "LP", ClusterSizes: MulticlusterSizes, Spec: spec, QueueWeights: weights},
	}
}

// balanceName labels the two routing cases.
func balanceName(weights []float64) string {
	if weights == nil {
		return "balanced"
	}
	return "unbalanced"
}

// fmtF renders a float with 3 decimals, or "-" for NaN.
func fmtF(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// fmtResp renders a response time in seconds, or "-" for NaN.
func fmtResp(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
