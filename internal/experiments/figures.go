package experiments

import (
	"fmt"
	"math"
	"strings"

	"coalloc/internal/core"
	"coalloc/internal/dastrace"
	"coalloc/internal/plot"
)

// Fig1 reproduces Fig. 1: the density of job-request sizes in the DAS log,
// split into powers of two and other sizes.
func Fig1(e *Env) (string, error) {
	recs := dastrace.Default()
	sizes, counts := dastrace.SizeDensity(recs)
	var b strings.Builder
	b.WriteString("Fig. 1 — density of job-request sizes (synthetic DAS log, 128-proc cluster)\n\n")
	var maxCount int64
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	pow := map[int]bool{1: true, 2: true, 4: true, 8: true, 16: true, 32: true, 64: true, 128: true}
	for i, s := range sizes {
		bar := int(float64(counts[i]) / float64(maxCount) * 60)
		tag := " "
		if pow[s] {
			tag = "P" // power of two
		}
		fmt.Fprintf(&b, "%4d %s %7d %s\n", s, tag, counts[i], strings.Repeat("#", bar))
	}
	b.WriteString("\n(P marks powers of two; the paper's log shows the same preference for\nsmall sizes and powers of two, with a dominant spike at 64.)\n")
	series := []plot.Series{{Name: "jobs"}}
	for i, s := range sizes {
		series[0].Add(float64(s), float64(counts[i]))
	}
	if err := e.SaveCSV("fig1", series); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Fig2 reproduces Fig. 2: the density of service times on the DAS, shown
// for the cut log (DAS-t-900).
func Fig2(e *Env) (string, error) {
	recs := dastrace.Default()
	h := dastrace.ServiceHistogram(recs, 900, 30)
	ls := dastrace.Analyze(recs)
	var b strings.Builder
	b.WriteString("Fig. 2 — density of service times (synthetic DAS log, cut at 900 s)\n\n")
	b.WriteString(h.Render(60))
	fmt.Fprintf(&b, "\nfull log: mean service %.1f s, CV %.2f; %.1f%% of jobs below the 900 s\nworking-hours kill limit (the mass at 900 s is the killed jobs).\n",
		ls.MeanService, ls.ServiceCV, 100*ls.FracServiceUnderKill)
	series := []plot.Series{{Name: "jobs"}}
	for i := 0; i < h.Bins(); i++ {
		lo, hi := h.BinRange(i)
		series[0].Add((lo+hi)/2, float64(h.Count(i)))
	}
	if err := e.SaveCSV("fig2", series); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Fig3 reproduces Fig. 3: mean response time versus utilization for the
// four policies, for component-size limits 16, 24 and 32, with balanced
// (top row) and unbalanced (bottom row) local queues.
func Fig3(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Fig. 3 — response time vs gross utilization, all policies\n")
	// Gather the specs of all six panels first: batching the 24 curves
	// into one Curves call lets the scheduler interleave every point of
	// the figure instead of running panel after panel.
	type panelSpec struct {
		weights []float64
		limit   int
	}
	var panels []panelSpec
	var specs []CurveSpec
	for _, weights := range [][]float64{nil, core.Unbalanced(len(MulticlusterSizes))} {
		for _, limit := range Limits {
			panels = append(panels, panelSpec{weights, limit})
			specs = append(specs, e.standardCurves(limit, weights)...)
		}
	}
	series, err := e.Curves(specs)
	if err != nil {
		return "", err
	}
	perPanel := len(specs) / len(panels)
	var all []plot.Series
	for pi, p := range panels {
		panel := series[pi*perPanel : (pi+1)*perPanel]
		for _, s := range panel {
			tagged := s
			tagged.Name = fmt.Sprintf("%s limit=%d %s", s.Name, p.limit, balanceName(p.weights))
			all = append(all, tagged)
		}
		title := fmt.Sprintf("\n--- component-size limit %d, %s local queues ---",
			p.limit, balanceName(p.weights))
		b.WriteString(title + "\n")
		b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 18))
		b.WriteString(rankSummary(panel))
	}
	if err := e.SaveCSV("fig3", all); err != nil {
		return "", err
	}
	return b.String(), nil
}

// rankSummary prints the maximal utilization each curve reached before
// saturating — the right-to-left performance ordering of the paper's
// legends. A saturation terminator never ranks as stable, no matter what
// partial response it measured: its values depend on how far the
// diverging run was allowed to proceed (the saturation cutoff stops it
// early), and "max stable" must be horizon-independent. A curve with no
// stable point at all — its very first grid point was a saturation
// terminator, or every measured response exceeded the plot cap — gets an
// explicit "never stable" entry rather than a fabricated 0.00.
func rankSummary(panel []plot.Series) string {
	var b strings.Builder
	b.WriteString("max stable gross utilization: ")
	for i, s := range panel {
		if i > 0 {
			b.WriteString(", ")
		}
		stable := s.Y
		if s.Saturated && len(stable) > 0 {
			stable = stable[:len(stable)-1]
		}
		last := math.NaN()
		for j, y := range stable {
			if y <= 10000 {
				last = s.X[j]
			}
		}
		if math.IsNaN(last) {
			fmt.Fprintf(&b, "%s never stable", s.Name)
		} else {
			fmt.Fprintf(&b, "%s %.2f", s.Name, last)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Fig4 reproduces Fig. 4: for each component-size limit, the average
// response times split into local-queue, global-queue and total averages,
// at a utilization close to LP's saturation point, with the gross and net
// utilizations of that operating point.
func Fig4(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Fig. 4 — response times near LP's saturation point\n")
	for _, weights := range [][]float64{nil, core.Unbalanced(len(MulticlusterSizes))} {
		for _, limit := range Limits {
			spec := e.MultiSpec(limit, e.Derived.Sizes128)
			lpCurve := CurveSpec{Policy: "LP", ClusterSizes: MulticlusterSizes, Spec: spec, QueueWeights: weights}
			util, err := e.saturationUtil(lpCurve)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "\n--- limit %d, %s queues, gross utilization %.2f ---\n",
				limit, balanceName(weights), util)
			rows := [][]string{{"policy", "local avg", "global avg", "total avg", "gross util", "net util"}}
			for _, cs := range e.standardCurves(limit, weights) {
				res, err := e.Point(cs, util)
				if err != nil {
					return "", err
				}
				rows = append(rows, []string{
					cs.Label,
					fmtResp(res.MeanResponseLocal),
					fmtResp(res.MeanResponseGlobal),
					fmtResp(res.MeanResponse),
					fmtF(res.GrossUtilization),
					fmtF(res.NetUtilization),
				})
			}
			b.WriteString(plot.Table(rows))
		}
	}
	b.WriteString("\n(paper shape: for LP the global-queue average far exceeds the local ones.)\n")
	return b.String(), nil
}

// saturationUtil returns the highest grid utilization at which the given
// configuration is still stable — "chosen so that at least one of the
// policies approaches saturation". The grid points run concurrently.
func (e *Env) saturationUtil(cs CurveSpec) (float64, error) {
	results, err := e.sweep(cs.Label+" (saturation scan)", e.Utilizations, func(u float64) (core.Result, error) {
		return e.Point(cs, u)
	})
	if err != nil {
		return 0, err
	}
	last := e.Utilizations[0]
	for i, res := range results {
		if res.Saturated || res.MeanResponse > e.ResponseCap {
			return last, nil
		}
		last = e.Utilizations[i]
	}
	return last, nil
}

// Fig5 reproduces Fig. 5: the effect of limiting the total job size —
// DAS-s-64 versus DAS-s-128 for all four policies at component-size limit
// 16 with balanced local queues (the configuration where LS beat SC).
func Fig5(e *Env) (string, error) {
	const limit = 16
	var b strings.Builder
	b.WriteString("Fig. 5 — maximal total job size 64 vs 128 (limit 16, balanced queues)\n\n")
	var specs []CurveSpec
	for _, v := range []struct {
		tag   string
		sizes int
	}{{"128", 128}, {"64", 64}} {
		sizeDist := e.Derived.Sizes128
		if v.sizes == 64 {
			sizeDist = e.Derived.Sizes64
		}
		spec := e.MultiSpec(limit, sizeDist)
		specs = append(specs,
			CurveSpec{Label: "SC " + v.tag, Policy: "SC", ClusterSizes: SingleClusterSizes, Spec: e.SCSpec(sizeDist)},
			CurveSpec{Label: "GS " + v.tag, Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
			CurveSpec{Label: "LS " + v.tag, Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec},
			CurveSpec{Label: "LP " + v.tag, Policy: "LP", ClusterSizes: MulticlusterSizes, Spec: spec},
		)
	}
	panel, err := e.Curves(specs)
	if err != nil {
		return "", err
	}
	all := append([]plot.Series(nil), panel...)
	b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 20))
	b.WriteString(rankSummary(panel))
	b.WriteString("\n(paper shape: every policy improves with the size-64 cap; SC improves most.)\n")
	if err := e.SaveCSV("fig5", all); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Fig6 reproduces Fig. 6: per-policy sensitivity to the component-size
// limit for LS, LP and GS; LS and LP in both the balanced and unbalanced
// cases.
func Fig6(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Fig. 6 — sensitivity to the job-component-size limit\n")
	var all []plot.Series
	type panelSpec struct {
		policy  string
		weights []float64
	}
	panels := []panelSpec{
		{"LS", nil}, {"LP", nil}, {"GS", nil},
		{"LS", core.Unbalanced(len(MulticlusterSizes))},
		{"LP", core.Unbalanced(len(MulticlusterSizes))},
	}
	var specs []CurveSpec
	for _, p := range panels {
		for _, limit := range Limits {
			specs = append(specs, CurveSpec{
				Label:        fmt.Sprintf("%s %d", p.policy, limit),
				Policy:       p.policy,
				ClusterSizes: MulticlusterSizes,
				Spec:         e.MultiSpec(limit, e.Derived.Sizes128),
				QueueWeights: p.weights,
			})
		}
	}
	series, err := e.Curves(specs)
	if err != nil {
		return "", err
	}
	for pi, p := range panels {
		panel := series[pi*len(Limits) : (pi+1)*len(Limits)]
		for _, s := range panel {
			tagged := s
			tagged.Name = fmt.Sprintf("%s %s", s.Name, balanceName(p.weights))
			all = append(all, tagged)
		}
		fmt.Fprintf(&b, "\n--- %s, %s local queues ---\n", p.policy, balanceName(p.weights))
		b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 16))
		b.WriteString(rankSummary(panel))
	}
	b.WriteString("\n(paper shape: LS strongly prefers limit 16; 24 is worst for every policy;\nGS is nearly indifferent between 16 and 32 with a slight edge for 32.)\n")
	if err := e.SaveCSV("fig6", all); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Fig7 reproduces Fig. 7: mean response time as a function of both the
// gross and the net utilization for LS, LP and GS at each component-size
// limit (balanced queues).
func Fig7(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Fig. 7 — response time vs gross and net utilization\n")
	var specs []CurveSpec
	var limits []int
	for _, policy := range []string{"LS", "LP", "GS"} {
		for _, limit := range Limits {
			specs = append(specs, CurveSpec{
				Label:        fmt.Sprintf("%s %d", policy, limit),
				Policy:       policy,
				ClusterSizes: MulticlusterSizes,
				Spec:         e.MultiSpec(limit, e.Derived.Sizes128),
			})
			limits = append(limits, limit)
		}
	}
	sets, err := e.CurveSet(specs)
	if err != nil {
		return "", err
	}
	var all []plot.Series
	for si, cs := range specs {
		gross, net := e.netSeries(cs.Label, sets[si])
		all = append(all, gross, net)
		fmt.Fprintf(&b, "\n--- %s, limit %d (analytic gross/net ratio %.4f) ---\n",
			cs.Policy, limits[si], cs.Spec.GrossNetRatio())
		b.WriteString(plot.Chart("", "utilization", "mean response time (s)",
			[]plot.Series{gross, net}, 64, 14))
	}
	b.WriteString("\n(paper shape: the gross-net gap grows as the limit shrinks; largest for LS 16.)\n")
	if err := e.SaveCSV("fig7", all); err != nil {
		return "", err
	}
	return b.String(), nil
}
