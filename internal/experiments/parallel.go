package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"coalloc/internal/core"
	"coalloc/internal/workpool"
)

// The utilization sweeps behind each figure are embarrassingly parallel:
// every (configuration, utilization) point is an independent simulation.
// This file fans the points of a whole figure — every (curve, utilization)
// pair — out over the process-wide worker pool while preserving the
// sequential early-stop semantics: each curve still ends at the first
// saturated (or failed) point, exactly as a serial sweep would, because
// results are consumed per curve in grid order.

// ScheduleMode selects how the points of an experiment are laid out on the
// shared worker pool.
type ScheduleMode int

const (
	// ScheduleFigure — the default — enumerates every (curve, point)
	// task of a figure up front and claims the expected-longest points
	// first (descending grid index: the grids are ordered from cheap to
	// expensive, low utilization to high, low failure rate to high), so
	// no per-curve barrier ever leaves the pool idle behind one straggler
	// curve. The merge consumes results per curve in grid order, so the
	// rendered output is byte-identical to the serial schedule — pinned
	// by a guardrail test.
	ScheduleFigure ScheduleMode = iota
	// SchedulePerCurve restores the pre-overhaul behavior: one parallel
	// sweep per curve, with a barrier between curves.
	SchedulePerCurve
	// ScheduleSerial runs every point serially in grid order. An
	// attached Observer forces this mode: an Observer — and its trace —
	// is single-threaded.
	ScheduleSerial
)

// curveJob is one curve's worth of sweep points: a labelled grid and the
// function that runs one point.
type curveJob struct {
	label string
	grid  []float64
	fn    func(u float64) (core.Result, error)
}

// progress serializes the per-point progress lines and tracks the
// effective point count: when an early stop shrinks a curve, the skipped
// points leave the denominator, so a long sweep never appears stalled at
// "7/18" after saturation ended it at 7.
type progress struct {
	mu      sync.Mutex
	w       io.Writer
	done    int
	skipped int
	total   int
}

// newProgress returns nil when no progress writer is configured; every
// method is nil-safe.
func newProgress(w io.Writer, total int) *progress {
	if w == nil {
		return nil
	}
	return &progress{w: w, total: total}
}

// point prints one completed point. The denominator is the effective
// count total - skipped, clamped from below by done: points that were
// already in flight when their curve's stop marker shrank still complete
// and report, and the denominator must never read less than the numerator.
func (p *progress) point(label string, u float64, res core.Result, err error) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done++
	eff := p.total - p.skipped
	if eff < p.done {
		eff = p.done
	}
	switch {
	case err != nil:
		fmt.Fprintf(p.w, "%s: util %.2f failed: %v\n", label, u, err)
	case res.Saturated:
		fmt.Fprintf(p.w, "%s: util %.2f saturated (%d/%d points)\n", label, u, p.done, eff)
	default:
		fmt.Fprintf(p.w, "%s: util %.2f -> response %.0f s (%d/%d points)\n",
			label, u, res.MeanResponse, p.done, eff)
	}
	p.mu.Unlock()
}

// skip removes n points from the effective count.
func (p *progress) skip(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.skipped += n
	p.mu.Unlock()
}

// runSet runs every (curve, point) task of the job set on the shared
// workpool and returns each curve's results in grid order. Tasks are
// enumerated up front and claimed in descending grid-index order (the
// expected-longest points first), interleaving the curves, so the pool
// drains the whole figure without per-curve barriers: one slow curve
// never idles the workers the other curves could use. Each curve keeps
// its own stop marker: when a point saturates or fails, points of that
// curve at or beyond it are never started, and the wasted work is bounded
// by the points already in flight. Each returned slice may therefore be
// shorter than its grid; it always extends at least through the curve's
// first saturated point, because the marker only ever shrinks to just
// past a completed point — every index below the final marker ran.
func runSet(jobs []curveJob, prog *progress) ([][]core.Result, error) {
	results := make([][]core.Result, len(jobs))
	errs := make([][]error, len(jobs))
	stopAt := make([]atomic.Int64, len(jobs))
	maxLen := 0
	for c := range jobs {
		n := len(jobs[c].grid)
		results[c] = make([]core.Result, n)
		errs[c] = make([]error, n)
		stopAt[c].Store(int64(n))
		if n > maxLen {
			maxLen = n
		}
	}
	type task struct{ c, i int }
	tasks := make([]task, 0, maxLen*len(jobs))
	for i := maxLen - 1; i >= 0; i-- {
		for c := range jobs {
			if i < len(jobs[c].grid) {
				tasks = append(tasks, task{c, i})
			}
		}
	}
	workpool.Do(len(tasks), func(k int) {
		t := tasks[k]
		job := &jobs[t.c]
		if int64(t.i) >= stopAt[t.c].Load() {
			return
		}
		res, err := job.fn(job.grid[t.i])
		results[t.c][t.i], errs[t.c][t.i] = res, err
		if err != nil || res.Saturated {
			// Shrink the curve's marker to min(marker, i+1) and retire
			// the newly cut points from the effective progress count —
			// before printing this point, so its line already shows the
			// shrunken denominator.
			for {
				cur := stopAt[t.c].Load()
				if cur <= int64(t.i)+1 {
					break
				}
				if stopAt[t.c].CompareAndSwap(cur, int64(t.i)+1) {
					prog.skip(int(cur) - (t.i + 1))
					break
				}
			}
		}
		prog.point(job.label, job.grid[t.i], res, err)
	})
	// Consume per curve in grid order; the first error in curve-then-grid
	// order wins, deterministically.
	out := make([][]core.Result, len(jobs))
	for c := range jobs {
		limit := int(stopAt[c].Load())
		for i := 0; i < limit; i++ {
			if errs[c][i] != nil {
				return nil, errs[c][i]
			}
			out[c] = append(out[c], results[c][i])
			if results[c][i].Saturated {
				break
			}
		}
	}
	return out, nil
}

// runPoints runs fn over the grid of a single curve on the shared
// workpool and returns results in grid order — runSet for one curve.
func runPoints(grid []float64, fn func(util float64) (core.Result, error)) ([]core.Result, error) {
	out, err := runSet([]curveJob{{grid: grid, fn: fn}}, nil)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// sweepSet runs a set of curves under the environment's schedule mode and
// returns each curve's results in grid order. The three modes produce
// identical result sets — the scheduler only changes completion order,
// and the merge consumes in grid order regardless — so the rendered
// figures are byte-identical across modes (pinned by a guardrail test).
func (e *Env) sweepSet(jobs []curveJob) ([][]core.Result, error) {
	mode := e.Schedule
	if e.Observer != nil {
		mode = ScheduleSerial
	}
	switch mode {
	case ScheduleSerial:
		out := make([][]core.Result, len(jobs))
		for c := range jobs {
			job := &jobs[c]
			prog := newProgress(e.Progress, len(job.grid))
			for i, u := range job.grid {
				res, err := job.fn(u)
				if err != nil {
					prog.point(job.label, u, res, err)
					return nil, err
				}
				if res.Saturated {
					prog.skip(len(job.grid) - i - 1)
				}
				prog.point(job.label, u, res, err)
				out[c] = append(out[c], res)
				if res.Saturated {
					break
				}
			}
		}
		return out, nil
	case SchedulePerCurve:
		out := make([][]core.Result, len(jobs))
		for c := range jobs {
			one, err := runSet(jobs[c:c+1], newProgress(e.Progress, len(jobs[c].grid)))
			if err != nil {
				return nil, err
			}
			out[c] = one[0]
		}
		return out, nil
	default: // ScheduleFigure
		total := 0
		for c := range jobs {
			total += len(jobs[c].grid)
		}
		return runSet(jobs, newProgress(e.Progress, total))
	}
}

// sweep runs one labelled curve sweep over the grid under the
// environment's schedule mode.
func (e *Env) sweep(label string, grid []float64, fn func(util float64) (core.Result, error)) ([]core.Result, error) {
	out, err := e.sweepSet([]curveJob{{label: label, grid: grid, fn: fn}})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}
