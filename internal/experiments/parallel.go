package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"coalloc/internal/core"
	"coalloc/internal/workpool"
)

// The utilization sweeps behind each figure are embarrassingly parallel:
// every (configuration, utilization) point is an independent simulation.
// runPoints fans the points of one curve out over the process-wide worker
// pool while preserving the sweep's sequential early-stop semantics: the
// curve still ends at the first saturated (or failed) point, exactly as
// the serial sweep would, because results are consumed in grid order.

// runPoints runs fn over the grid on the shared workpool and returns
// results in grid order. The points are claimed work-stealing style from a
// single shared counter, so one slow point never stalls the others — the
// remaining workers keep draining the grid. When a point saturates or
// fails, the stop marker shrinks and points at or beyond it are never
// started; the wasted work of the parallel sweep is bounded by the points
// already in flight, at most one pool's width past the stop. The returned
// slice may therefore be shorter than the grid; it always extends at least
// through the first saturated point.
func runPoints(grid []float64, fn func(util float64) (core.Result, error)) ([]core.Result, error) {
	results := make([]core.Result, len(grid))
	errs := make([]error, len(grid))
	var stopAt atomic.Int64 // index after the first saturated/failed point
	stopAt.Store(int64(len(grid)))
	workpool.Do(len(grid), func(i int) {
		if int64(i) >= stopAt.Load() {
			return
		}
		results[i], errs[i] = fn(grid[i])
		if errs[i] != nil || results[i].Saturated {
			// Shrink stopAt to min(stopAt, i+1): the sweep ends here
			// unless an earlier point also stops it.
			for {
				cur := stopAt.Load()
				if cur <= int64(i)+1 || stopAt.CompareAndSwap(cur, int64(i)+1) {
					break
				}
			}
		}
	})
	// Consume in grid order: every index below the final stop marker ran
	// (the marker only shrinks to just past a completed point, and tasks
	// skip only indexes at or beyond it).
	out := results[:0]
	for i := 0; int64(i) < stopAt.Load(); i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i])
		if results[i].Saturated {
			break
		}
	}
	return out, nil
}

// sweep runs one labelled curve sweep over the grid. Without an Observer
// the points fan out over the shared workpool (runPoints); with one they
// run serially in grid order, because an Observer — and its trace — is
// single-threaded. Progress, when configured, receives one line per
// completed point; completion order is arrival order in the parallel case.
func (e *Env) sweep(label string, grid []float64, fn func(util float64) (core.Result, error)) ([]core.Result, error) {
	run := fn
	if e.Progress != nil {
		var mu sync.Mutex
		done := 0
		run = func(u float64) (core.Result, error) {
			res, err := fn(u)
			mu.Lock()
			done++
			switch {
			case err != nil:
				fmt.Fprintf(e.Progress, "%s: util %.2f failed: %v\n", label, u, err)
			case res.Saturated:
				fmt.Fprintf(e.Progress, "%s: util %.2f saturated (%d/%d points)\n", label, u, done, len(grid))
			default:
				fmt.Fprintf(e.Progress, "%s: util %.2f -> response %.0f s (%d/%d points)\n",
					label, u, res.MeanResponse, done, len(grid))
			}
			mu.Unlock()
			return res, err
		}
	}
	if e.Observer == nil {
		return runPoints(grid, run)
	}
	var out []core.Result
	for _, u := range grid {
		res, err := run(u)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		if res.Saturated {
			break
		}
	}
	return out, nil
}
