package experiments

import (
	"runtime"
	"sync"

	"coalloc/internal/core"
)

// The utilization sweeps behind each figure are embarrassingly parallel:
// every (configuration, utilization) point is an independent simulation.
// runPoints fans the points of one curve out over a bounded worker pool
// while preserving the sweep's sequential early-stop semantics: the curve
// still ends at the first saturated (or over-cap) point, exactly as the
// serial sweep would, because results are consumed in grid order.

// pointResult pairs a grid index with its simulation outcome.
type pointResult struct {
	idx int
	res core.Result
	err error
}

// maxWorkers bounds the sweep parallelism.
func maxWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// runPoints runs fn over the grid in windows of maxWorkers() concurrent
// points and returns results in grid order. After each window it checks
// for a saturated (or failed) point: points beyond the first saturated one
// are never launched, so the wasted work of a parallel sweep is bounded by
// one window past saturation — super-saturated simulations are the most
// expensive ones, and the serial sweep's early stop is preserved up to
// window granularity. The returned slice may therefore be shorter than the
// grid; it always extends at least through the first saturated point.
func runPoints(grid []float64, fn func(util float64) (core.Result, error)) ([]core.Result, error) {
	w := maxWorkers()
	results := make([]core.Result, 0, len(grid))
	for start := 0; start < len(grid); start += w {
		end := start + w
		if end > len(grid) {
			end = len(grid)
		}
		window := make([]core.Result, end-start)
		errs := make([]error, end-start)
		var wg sync.WaitGroup
		for i := start; i < end; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				window[i-start], errs[i-start] = fn(grid[i])
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		results = append(results, window...)
		for _, res := range window {
			if res.Saturated {
				return results, nil
			}
		}
	}
	return results, nil
}
