package experiments

import (
	"sync/atomic"

	"coalloc/internal/core"
	"coalloc/internal/workpool"
)

// The utilization sweeps behind each figure are embarrassingly parallel:
// every (configuration, utilization) point is an independent simulation.
// runPoints fans the points of one curve out over the process-wide worker
// pool while preserving the sweep's sequential early-stop semantics: the
// curve still ends at the first saturated (or failed) point, exactly as
// the serial sweep would, because results are consumed in grid order.

// runPoints runs fn over the grid on the shared workpool and returns
// results in grid order. The points are claimed work-stealing style from a
// single shared counter, so one slow point never stalls the others — the
// remaining workers keep draining the grid. When a point saturates or
// fails, the stop marker shrinks and points at or beyond it are never
// started; the wasted work of the parallel sweep is bounded by the points
// already in flight, at most one pool's width past the stop. The returned
// slice may therefore be shorter than the grid; it always extends at least
// through the first saturated point.
func runPoints(grid []float64, fn func(util float64) (core.Result, error)) ([]core.Result, error) {
	results := make([]core.Result, len(grid))
	errs := make([]error, len(grid))
	var stopAt atomic.Int64 // index after the first saturated/failed point
	stopAt.Store(int64(len(grid)))
	workpool.Do(len(grid), func(i int) {
		if int64(i) >= stopAt.Load() {
			return
		}
		results[i], errs[i] = fn(grid[i])
		if errs[i] != nil || results[i].Saturated {
			// Shrink stopAt to min(stopAt, i+1): the sweep ends here
			// unless an earlier point also stops it.
			for {
				cur := stopAt.Load()
				if cur <= int64(i)+1 || stopAt.CompareAndSwap(cur, int64(i)+1) {
					break
				}
			}
		}
	})
	// Consume in grid order: every index below the final stop marker ran
	// (the marker only shrinks to just past a completed point, and tasks
	// skip only indexes at or beyond it).
	out := results[:0]
	for i := 0; int64(i) < stopAt.Load(); i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i])
		if results[i].Saturated {
			break
		}
	}
	return out, nil
}
