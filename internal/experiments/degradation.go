package experiments

import (
	"fmt"
	"strings"

	"coalloc/internal/core"
	"coalloc/internal/faults"
	"coalloc/internal/plot"
)

// The degradation experiment extends the paper's evaluation to unreliable
// processors: each cluster suffers an independent Poisson failure process,
// a failure takes one processor down for an exponential repair time, and a
// failure landing on a fully busy cluster aborts the most recently started
// job there (resubmitted after a capped backoff). The question is graceful
// degradation: how fast does each policy's mean response time grow as the
// failure rate rises, at a load every policy handles comfortably when the
// hardware is reliable?
//
// The sweep uses the DAS-s-64 size distribution deliberately. Under
// DAS-s-128 a full-machine job (total size 128) can only start in a window
// where every processor is simultaneously up and idle; any nonzero failure
// rate makes such windows rare (one processor down anywhere blocks the job),
// and once started the job occupies every cluster, so the next failure
// anywhere kills it and forfeits all its work. The job camps at its FCFS
// queue head for hundreds of thousands of virtual seconds, everything behind
// it queues, and every policy saturates at every nonzero rate — a real
// starvation effect worth knowing about, but one that swamps the scheduler
// comparison this experiment is after. Capping total sizes at half the
// machine keeps the failure response in the regime where the policies
// differ.

// defaultFaultMTTR is the repair time scale when Params.FaultMTTR is zero:
// 15 minutes, the scale of a node reboot.
const defaultFaultMTTR = 900

// faultMTBFGrid is the per-cluster mean-time-between-failures grid, in
// seconds, from reliable hardware (0 = no failures) to a failure every
// ~8 minutes per cluster. Ordered by increasing failure rate so the sweep's
// early-stop ends the curve at the first saturated point.
var faultMTBFGrid = []float64{0, 5000, 2000, 1000, 500}

// Degradation sweeps the failure rate for the GS, LS, LP and backfilling
// policies at a fixed moderate load and reports the response-time
// degradation curve with the fault accounting behind it.
func Degradation(e *Env) (string, error) {
	mttr := e.FaultMTTR
	if mttr == 0 {
		mttr = defaultFaultMTTR
	}
	const util = 0.4
	spec := e.MultiSpec(16, e.Derived.Sizes64)
	var b strings.Builder
	b.WriteString("Extension — response-time degradation under processor failures\n")
	fmt.Fprintf(&b, "(offered gross utilization %.2f, MTTR %.0f s, per-cluster Poisson failures,\nmulticluster %v, limit 16, DAS-s-64)\n\n", util, mttr, MulticlusterSizes)
	fmt.Fprintf(&b, "%-7s %8s %11s %9s %7s %10s %13s %7s\n",
		"policy", "MTBF(s)", "fail/hr/cl", "resp(s)", "kills", "resubmits", "lost(proc-s)", "avail")
	policies := []string{"GS", "LS", "LP", "GS-EASY", "GS-CONS"}
	jobs := make([]curveJob, len(policies))
	for pi, pol := range policies {
		cs := CurveSpec{Label: pol, Policy: pol, ClusterSizes: MulticlusterSizes, Spec: spec}
		jobs[pi] = curveJob{
			label: pol + " degradation",
			grid:  faultMTBFGrid,
			fn: func(mtbf float64) (core.Result, error) {
				var fs *faults.Spec
				if mtbf > 0 {
					fs = &faults.Spec{
						MTBF:               mtbf,
						MTTR:               mttr,
						RetryBase:          e.FaultRetryBase,
						RetryCap:           e.FaultRetryCap,
						CheckpointInterval: e.FaultCheckpointInterval,
					}
				}
				return e.FaultPoint(cs, util, fs)
			},
		}
	}
	sets, err := e.sweepSet(jobs)
	if err != nil {
		return "", err
	}
	var panel []plot.Series
	for pi, pol := range policies {
		results := sets[pi]
		s := plot.Series{Name: pol}
		for i, res := range results {
			mtbf := faultMTBFGrid[i]
			perHour := 0.0
			if mtbf > 0 {
				perHour = 3600 / mtbf
			}
			s.Add(perHour, res.MeanResponse)
			resp := fmtResp(res.MeanResponse)
			if res.Saturated {
				resp += "*"
			}
			fmt.Fprintf(&b, "%-7s %8.0f %11.2f %9s %7d %10d %13.0f %7.4f\n",
				pol, mtbf, perHour, resp, res.JobsKilled, res.Resubmits,
				res.WorkLost, res.MeanAvailableFraction)
		}
		panel = append(panel, s)
		b.WriteByte('\n')
	}
	b.WriteString(plot.Chart("", "failures per hour per cluster", "mean response time (s)", panel, 64, 16))
	b.WriteString("\n(* = saturated. Lost work is re-run after resubmission, so the effective\nload rises with the failure rate even though the offered load is fixed;\nthe single global queue of GS funnels every retry through one backlog,\nwhile LS and LP spread both the capacity loss and the retries. Sizes are\nDAS-s-64: under DAS-s-128 a full-machine job needs every processor up and\nidle at once, so any nonzero failure rate starves it at its FCFS queue\nhead and saturates every policy.)\n")
	if err := e.SaveCSV("faults", panel); err != nil {
		return "", err
	}
	return b.String(), nil
}
