package experiments

import (
	"fmt"
	"strings"

	"coalloc/internal/core"
	"coalloc/internal/dastrace"
)

// Table1 reproduces the paper's Table 1: the fractions of jobs with total
// sizes that are powers of two, measured on the synthetic DAS log.
func Table1(e *Env) (string, error) {
	ls := dastrace.Analyze(dastrace.Default())
	var b strings.Builder
	b.WriteString("Table 1 — fractions of jobs with sizes powers of two\n\n")
	b.WriteString(dastrace.FormatTable1(ls))
	fmt.Fprintf(&b, "\nlog: %d jobs, %d distinct sizes in [%d, %d], mean size %.2f, CV %.2f\n",
		ls.Jobs, ls.DistinctSizes, ls.MinSize, ls.MaxSize, ls.MeanSize, ls.SizeCV)
	return b.String(), nil
}

// paperTable2 holds the published component-count fractions per limit.
// The limit-16 row is printed as OCR'd in our source except for its third
// entry, which must read 0.009 for the row to sum to 1 and to be
// consistent with the other rows (see internal/dastrace).
var paperTable2 = map[int][4]float64{
	16: {0.513, 0.267, 0.009, 0.211},
	24: {0.738, 0.051, 0.194, 0.017},
	32: {0.780, 0.200, 0.003, 0.017},
}

// Table2 reproduces Table 2: the fractions of jobs with 1..4 components
// for the DAS-s-128 distribution under each component-size limit.
func Table2(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Table 2 — fractions of jobs per number of components (DAS-s-128)\n\n")
	b.WriteString("limit   1 comp            2 comps           3 comps           4 comps\n")
	b.WriteString("        ours    paper     ours    paper     ours    paper     ours    paper\n")
	for _, limit := range Limits {
		spec := e.MultiSpec(limit, e.Derived.Sizes128)
		fr := spec.ComponentCountFractions()
		p := paperTable2[limit]
		fmt.Fprintf(&b, "%5d", limit)
		for i := 0; i < 4; i++ {
			f := 0.0
			if i < len(fr) {
				f = fr[i]
			}
			fmt.Fprintf(&b, "   %.3f   %.3f ", f, p[i])
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nmulti-component job fractions: ")
	for _, limit := range Limits {
		spec := e.MultiSpec(limit, e.Derived.Sizes128)
		fmt.Fprintf(&b, "limit %d: %.1f%%  ", limit, 100*spec.MultiComponentFraction())
	}
	b.WriteByte('\n')
	return b.String(), nil
}

// Table3 reproduces Table 3: the maximal gross and net utilizations of the
// GS policy per component-size limit, measured under a constant backlog,
// plus the SC single-cluster reference the paper quotes alongside.
func Table3(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Table 3 — maximal utilizations under constant backlog (GS policy)\n\n")
	b.WriteString("job-component-size limit   max gross util   max net util\n")
	for _, limit := range Limits {
		res, err := core.RunBacklog(core.BacklogConfig{
			ClusterSizes: MulticlusterSizes,
			Spec:         e.MultiSpec(limit, e.Derived.Sizes128),
			Policy:       "GS",
			WarmupTime:   e.BacklogWarmup,
			MeasureTime:  e.BacklogMeasure,
			Seed:         e.Seed,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%24d   %14.3f   %12.3f\n",
			limit, res.MaxGrossUtilization, res.MaxNetUtilization)
	}
	scRes, err := core.RunBacklog(core.BacklogConfig{
		ClusterSizes: SingleClusterSizes,
		Spec:         e.SCSpec(e.Derived.Sizes128),
		Policy:       "SC",
		WarmupTime:   e.BacklogWarmup,
		MeasureTime:  e.BacklogMeasure,
		Seed:         e.Seed,
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nSC reference (single 128-processor cluster, total requests): maximal utilization %.3f\n",
		scRes.MaxGrossUtilization)
	b.WriteString("\npaper shape: maximal utilization ordering 16 > 32 > 24; SC above all net values.\n")
	return b.String(), nil
}

// Ratio reproduces the Section 4 computation: the analytic ratio between
// gross and net utilization per component-size limit, policy-independent.
func Ratio(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Gross/net utilization ratios (DAS-s-128, extension factor 1.25)\n\n")
	b.WriteString("limit   multi-component fraction   gross/net ratio\n")
	for _, limit := range Limits {
		spec := e.MultiSpec(limit, e.Derived.Sizes128)
		fmt.Fprintf(&b, "%5d   %24.3f   %15.4f\n",
			limit, spec.MultiComponentFraction(), spec.GrossNetRatio())
	}
	b.WriteString("\nThe ratio is the mean total job size weighted by 1.25 for multi-component\n")
	b.WriteString("jobs, divided by the unweighted mean; it shrinks as the limit grows.\n")
	return b.String(), nil
}

// WorkloadSummary is an extra report describing the derived distributions.
func WorkloadSummary(e *Env) (string, error) {
	var b strings.Builder
	d := e.Derived
	b.WriteString("Derived workload distributions (from the synthetic DAS log)\n\n")
	fmt.Fprintf(&b, "DAS-s-128: mean %.2f, CV %.2f, support [%d, %d], %d sizes\n",
		d.Sizes128.Mean(), d.Sizes128.CV(), d.Sizes128.Min(), d.Sizes128.Max(), len(d.Sizes128.Values()))
	fmt.Fprintf(&b, "DAS-s-64:  mean %.2f, CV %.2f, support [%d, %d]; cut excludes %.2f%% of jobs\n",
		d.Sizes64.Mean(), d.Sizes64.CV(), d.Sizes64.Min(), d.Sizes64.Max(), 100*d.ExcludedBy64)
	fmt.Fprintf(&b, "DAS-t-900: mean %.1f s, CV %.2f, max %.1f s, %d observations\n",
		d.Service.Mean(), d.Service.CV(), d.Service.Max(), d.Service.Len())
	return b.String(), nil
}
