package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coalloc/internal/core"
	"coalloc/internal/plot"
)

// TestScheduleModesRenderByteIdentical is the figure-level scheduling
// guardrail: a figure rendered under the serial, per-curve-parallel, and
// figure-level schedules must produce byte-identical report text and CSV
// data. The scheduler only changes which simulation runs when; every
// point is an independently seeded run and the merge consumes results per
// curve in grid order.
func TestScheduleModesRenderByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(mode ScheduleMode) (string, string) {
		t.Helper()
		dir := t.TempDir()
		p := tinyParams()
		p.Utilizations = []float64{0.3, 0.9} // 0.9 saturates the GS curves
		p.DataDir = dir
		p.Schedule = mode
		env := NewEnv(p)
		out, err := Run("fig5", env)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return out, string(data)
	}
	refText, refCSV := run(ScheduleSerial)
	for _, m := range []ScheduleMode{SchedulePerCurve, ScheduleFigure} {
		text, csv := run(m)
		if text != refText {
			t.Errorf("schedule mode %d: figure text differs from serial:\n--- mode %d ---\n%s\n--- serial ---\n%s",
				m, m, text, refText)
		}
		if csv != refCSV {
			t.Errorf("schedule mode %d: CSV differs from serial:\n--- mode %d ---\n%s\n--- serial ---\n%s",
				m, m, csv, refCSV)
		}
	}
}

// TestCurveSetModesMatch pins the same property at the API level, on the
// fault-injection path too: CurveSet under every schedule mode returns the
// same per-curve result sequences.
func TestCurveSetModesMatch(t *testing.T) {
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.9, 0.95}
	curves := func(mode ScheduleMode) [][]core.Result {
		t.Helper()
		p.Schedule = mode
		env := NewEnv(p)
		spec := env.MultiSpec(16, env.Derived.Sizes128)
		sets, err := env.CurveSet([]CurveSpec{
			{Label: "GS", Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
			{Label: "LS", Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sets
	}
	ref := curves(ScheduleSerial)
	for _, m := range []ScheduleMode{SchedulePerCurve, ScheduleFigure} {
		got := curves(m)
		if len(got) != len(ref) {
			t.Fatalf("mode %d: %d curves, want %d", m, len(got), len(ref))
		}
		for c := range ref {
			if len(got[c]) != len(ref[c]) {
				t.Errorf("mode %d curve %d: %d points, want %d", m, c, len(got[c]), len(ref[c]))
				continue
			}
			for i := range ref[c] {
				// Sprintf covers every field (Result holds slices and
				// NaN-able floats, so == is unavailable and unwanted).
				a := fmt.Sprintf("%+v", got[c][i])
				b := fmt.Sprintf("%+v", ref[c][i])
				if a != b {
					t.Errorf("mode %d curve %d point %d differs:\n  mode:   %s\n  serial: %s", m, c, i, a, b)
				}
			}
		}
	}
}

// TestProgressEffectiveCount checks the sweep progress accounting after an
// early stop: once saturation ends a curve, the skipped points leave the
// denominator, so the final line reads n/n instead of stalling at n/total.
func TestProgressEffectiveCount(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	var buf strings.Builder
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.9, 0.95} // 0.9 saturates GS
	p.Progress = &buf
	p.Schedule = ScheduleSerial
	env := NewEnv(p)
	cs := CurveSpec{
		Label:        "GS",
		Policy:       "GS",
		ClusterSizes: MulticlusterSizes,
		Spec:         env.MultiSpec(16, env.Derived.Sizes128),
	}
	if _, err := env.Curve(cs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(1/3 points)") {
		t.Errorf("first point should report against the full grid:\n%s", out)
	}
	if !strings.Contains(out, "saturated (2/2 points)") {
		t.Errorf("saturating point should shrink the denominator to the effective count:\n%s", out)
	}
	if strings.Contains(out, "2/3") {
		t.Errorf("progress still reports the stale denominator after the early stop:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Errorf("expected 2 progress lines (the curve stops at its 2nd point), got %d:\n%s", lines, out)
	}
}

// TestProgressFigureModeCountsAllCurves checks the figure-level schedule
// reports one line per completed point across the whole job set and never
// prints a denominator below its numerator, even with points in flight
// when a curve's stop marker shrinks.
func TestProgressFigureModeCountsAllCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// The progress mutex serializes all writes, so a plain Builder is safe.
	var buf strings.Builder
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.9, 0.95}
	p.Progress = &buf
	p.Schedule = ScheduleFigure
	env := NewEnv(p)
	spec := env.MultiSpec(16, env.Derived.Sizes128)
	if _, err := env.CurveSet([]CurveSpec{
		{Label: "GS", Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
		{Label: "LS", Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec},
	}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var done, eff int
		open := strings.LastIndexByte(line, '(')
		if open < 0 {
			t.Errorf("malformed progress line %q", line)
			continue
		}
		if _, err := fmt.Sscanf(line[open:], "(%d/%d points)", &done, &eff); err != nil {
			t.Errorf("malformed progress line %q: %v", line, err)
			continue
		}
		if done > eff {
			t.Errorf("progress line %q: numerator exceeds denominator", line)
		}
	}
}

// TestRankSummaryCutoffInvariant pins the horizon-independence of the
// "max stable gross utilization" summary: the saturation cutoff changes a
// terminator point's partial measurements (it stops the diverging run
// early), but because rankSummary excludes the terminator from the stable
// rank, the summary must be byte-identical with the cutoff on and off.
func TestRankSummaryCutoffInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	panel := func(cutoff bool) (string, int) {
		t.Helper()
		p := tinyParams()
		p.MeasureJobs = 3000 // deep enough for the divergence monitor to fire
		p.Utilizations = []float64{0.3, 0.9, 0.95}
		p.SaturationCutoff = cutoff
		env := NewEnv(p)
		spec := env.MultiSpec(16, env.Derived.Sizes128)
		specs := []CurveSpec{
			{Label: "GS", Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
			{Label: "LS", Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec},
		}
		sets, err := env.CurveSet(specs)
		if err != nil {
			t.Fatal(err)
		}
		truncated := 0
		series := make([]plot.Series, len(specs))
		for i := range specs {
			for _, res := range sets[i] {
				truncated += res.TruncatedJobs
			}
			series[i] = env.series(specs[i].Label, sets[i])
		}
		return rankSummary(series), truncated
	}
	full, fullTrunc := panel(false)
	cut, cutTrunc := panel(true)
	if fullTrunc != 0 {
		t.Fatalf("cutoff off truncated %d jobs", fullTrunc)
	}
	if cutTrunc == 0 {
		t.Fatal("cutoff on truncated nothing; the invariance check is vacuous")
	}
	if cut != full {
		t.Errorf("rank summary depends on the cutoff:\n  cutoff on:  %s  cutoff off: %s", cut, full)
	}
}
