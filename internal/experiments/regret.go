package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"coalloc/internal/dectrace"
	"coalloc/internal/plot"
)

// Regret runs the Fig. 5 grid (all four policies, total-size caps 128 and
// 64, component-size limit 16, balanced queues) with decision tracing
// forced on and reports the counterfactual regret of each policy: the mean
// number of seconds per job that the dispatched placement started later
// than the best unchosen alternative the policy itself considered (see
// DESIGN.md section 17). The per-curve series — mean regret per job versus
// measured gross utilization — land in regret.csv under the data
// directory.
func Regret(e *Env) (string, error) {
	const limit = 16
	var b strings.Builder
	b.WriteString("Regret — counterfactual start-time regret per job (Fig. 5 grid, limit 16, balanced queues)\n\n")
	var specs []CurveSpec
	for _, v := range []struct {
		tag   string
		sizes int
	}{{"128", 128}, {"64", 64}} {
		sizeDist := e.Derived.Sizes128
		if v.sizes == 64 {
			sizeDist = e.Derived.Sizes64
		}
		spec := e.MultiSpec(limit, sizeDist)
		specs = append(specs,
			CurveSpec{Label: "SC " + v.tag, Policy: "SC", ClusterSizes: SingleClusterSizes, Spec: e.SCSpec(sizeDist)},
			CurveSpec{Label: "GS " + v.tag, Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
			CurveSpec{Label: "LS " + v.tag, Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec},
			CurveSpec{Label: "LP " + v.tag, Policy: "LP", ClusterSizes: MulticlusterSizes, Spec: spec},
		)
	}

	// Force decision tracing on for this sweep only; every other
	// experiment keeps Decisions nil and stays bit-identical to a build
	// without the dectrace layer. Experiments run one at a time, so the
	// save/restore brackets every point of this sweep and nothing else.
	saved := e.Decisions
	e.Decisions = &dectrace.Options{}
	sets, err := e.CurveSet(specs)
	e.Decisions = saved
	if err != nil {
		return "", err
	}

	type rank struct {
		name string
		// mean regret per measured job over the curve's stable points
		mean float64
		// share of dispatches that paid nonzero regret
		share float64
		// largest single-dispatch regret anywhere on the curve
		max float64
	}
	series := make([]plot.Series, len(specs))
	ranks := make([]rank, len(specs))
	for i := range specs {
		s := plot.Series{Name: specs[i].Label}
		var total float64
		var jobs, decisions, withRegret int
		var worst float64
		for _, res := range sets[i] {
			mean := 0.0
			if res.Jobs > 0 {
				mean = res.RegretTotal / float64(res.Jobs)
			}
			s.Add(res.GrossUtilization, mean)
			if res.RegretMax > worst {
				worst = res.RegretMax
			}
			if res.Saturated {
				// The terminator's regret is horizon-dependent, exactly
				// like its response time: flag it and keep it out of the
				// cross-grid means below.
				s.Saturated = true
				break
			}
			total += res.RegretTotal
			jobs += res.Jobs
			decisions += res.Decisions
			withRegret += res.RegretDecisions
			if res.MeanResponse > e.ResponseCap {
				break
			}
		}
		series[i] = s
		r := rank{name: specs[i].Label, mean: math.NaN(), share: math.NaN(), max: worst}
		if jobs > 0 {
			r.mean = total / float64(jobs)
		}
		if decisions > 0 {
			r.share = float64(withRegret) / float64(decisions)
		}
		ranks[i] = r
	}

	b.WriteString(plot.Chart("", "gross utilization", "mean regret per job (s)", series, 64, 20))
	b.WriteString("\npolicy        mean regret/job  regret share  max regret\n")
	ordered := append([]rank(nil), ranks...)
	sort.SliceStable(ordered, func(a, z int) bool {
		// NaN (no stable points) sorts last; otherwise ascending mean.
		am, zm := ordered[a].mean, ordered[z].mean
		if math.IsNaN(zm) {
			return !math.IsNaN(am)
		}
		if math.IsNaN(am) {
			return false
		}
		return am < zm
	})
	for _, r := range ordered {
		fmt.Fprintf(&b, "%-12s  %15s  %12s  %10.0f\n",
			r.name, fmtF(r.mean), fmtF(r.share), r.max)
	}
	b.WriteString("\nmean regret per job over stable points: ")
	for i, r := range ordered {
		if i > 0 {
			b.WriteString(", ")
		}
		if math.IsNaN(r.mean) {
			fmt.Fprintf(&b, "%s never stable", r.name)
		} else {
			fmt.Fprintf(&b, "%s %.1f", r.name, r.mean)
		}
	}
	b.WriteString("\n\n(regret counts only alternatives the policy itself evaluated against\nthe same availability state — other placement rules, other clusters,\nrejected backfill holes — so it isolates the cost of the placement\nchoice from the cost of the queueing discipline.)\n")
	if err := e.SaveCSV("regret", series); err != nil {
		return "", err
	}
	return b.String(), nil
}
