package experiments

import (
	"testing"

	"coalloc/internal/core"
	"coalloc/internal/workload"
)

// traceTestConfig builds a small sweep-point config from a freshly derived
// workload, so two calls share no distribution pointers.
func traceTestConfig() core.Config {
	der := workload.DeriveDefault()
	spec := workload.Spec{
		Sizes:           der.Sizes128,
		Service:         der.Service,
		ComponentLimit:  16,
		Clusters:        4,
		ExtensionFactor: workload.DefaultExtensionFactor,
	}
	return core.Config{
		ClusterSizes: MulticlusterSizes,
		Spec:         spec,
		Policy:       "GS",
		ArrivalRate:  spec.ArrivalRateForGrossUtilization(0.3, 128),
		WarmupJobs:   10,
		MeasureJobs:  50,
		Seed:         7,
	}
}

// TestTraceCacheSharesValueEqualConfigs pins the cache's reason to exist:
// two configurations that are equal by value — but built independently, so
// every distribution pointer differs — must resolve to the same *core.Trace.
// Keying on pointer identity used to split these and silently regenerate
// the workload per policy.
func TestTraceCacheSharesValueEqualConfigs(t *testing.T) {
	var tc traceCache
	a := tc.provider(traceTestConfig())(7)
	b := tc.provider(traceTestConfig())(7)
	if a == nil || b == nil {
		t.Fatal("provider failed to build a trace")
	}
	if a != b {
		t.Error("value-equal configs resolved to distinct traces (no sharing)")
	}
	if got := len(tc.cache); got != 1 {
		t.Errorf("cache holds %d entries for one logical key", got)
	}
	// A different seed is a different record.
	if c := tc.provider(traceTestConfig())(8); c == a {
		t.Error("different seeds share a trace")
	}
}

// TestTraceCacheEvictionBoundsMemory pins the FIFO eviction: the cache must
// hold at most traceCacheCap traces, and the order slice's backing array
// must not grow without bound (the old reslice-eviction pinned its head and
// let append extend the same array forever).
func TestTraceCacheEvictionBoundsMemory(t *testing.T) {
	var tc traceCache
	cfg := traceTestConfig()
	p := tc.provider(cfg)
	const extra = 40
	for seed := uint64(0); seed < traceCacheCap+extra; seed++ {
		if p(seed) == nil {
			t.Fatalf("seed %d: provider failed", seed)
		}
	}
	if len(tc.cache) > traceCacheCap {
		t.Errorf("cache grew to %d entries, cap is %d", len(tc.cache), traceCacheCap)
	}
	if len(tc.order) != len(tc.cache) {
		t.Errorf("order tracks %d keys for %d cached traces", len(tc.order), len(tc.cache))
	}
	if cap(tc.order) > 2*traceCacheCap {
		t.Errorf("order backing array grew to %d slots for a cap of %d", cap(tc.order), traceCacheCap)
	}
	// The oldest keys are gone, the newest survive.
	if p(0) == nil {
		t.Fatal("regenerating an evicted seed failed")
	}
}
