package experiments

import (
	"fmt"
	"sync"

	"coalloc/internal/core"
	"coalloc/internal/dist"
)

// traceKey identifies the workload record one replication draws: the seed
// and arrival rate pin the stream state and interarrival scale, the
// distribution identities pin the size/service draws, and the cluster
// count plus routing weights pin the queue draws. Everything else in a
// Config (policy, fit, component limit, warmup) only affects how the
// recorded jobs are scheduled, not the record itself — which is exactly
// why policies sharing a key can share a trace.
// The distributions are identified by value fingerprints, not pointers:
// experiments rebuild their Specs per point, so pointer identity would
// split value-equal configurations into distinct keys and silently disable
// the sharing (every policy would regenerate its own trace — correct
// results, but no common random numbers and no cache hits).
type traceKey struct {
	seed     uint64
	rate     float64
	sizes    uint64
	service  string
	clusters int
	weights  string
}

// traceCacheCap bounds the cache. A sweep touches one key per
// (seed, utilization) pair per system, and keys stop being useful the
// moment every policy's curve has passed the point, so a small FIFO
// window over the in-flight points is enough; evicted traces simply
// regenerate if a straggler still wants them.
const traceCacheCap = 64

// traceCache shares workload traces between the policy runs of a sweep.
// It is safe for concurrent use: sweep points run in parallel, and the
// traces themselves support concurrent extension.
type traceCache struct {
	mu    sync.Mutex
	cache map[traceKey]*core.Trace
	order []traceKey // insertion order, for FIFO eviction
}

// provider returns a core.Config.TraceProvider resolving traces for cfg's
// configuration point at any replication seed. A nil return from the
// provider (trace construction failed — e.g. a request type that cannot
// be traced) falls back to live sampling inside core.
func (tc *traceCache) provider(cfg core.Config) func(seed uint64) *core.Trace {
	return func(seed uint64) *core.Trace {
		key := traceKey{
			seed:     seed,
			rate:     cfg.ArrivalRate,
			sizes:    cfg.Spec.Sizes.Fingerprint(),
			service:  dist.FingerprintOf(cfg.Spec.Service),
			clusters: len(cfg.ClusterSizes),
			weights:  fmt.Sprint(cfg.QueueWeights),
		}
		tc.mu.Lock()
		defer tc.mu.Unlock()
		if tr, ok := tc.cache[key]; ok {
			return tr
		}
		tr, err := core.NewTrace(cfg, seed)
		if err != nil {
			return nil
		}
		if tc.cache == nil {
			tc.cache = make(map[traceKey]*core.Trace, traceCacheCap)
		}
		for len(tc.order) >= traceCacheCap {
			delete(tc.cache, tc.order[0])
			// Copy-down rather than reslice: order[1:] would keep the
			// same backing array, whose dead head entries pin evicted
			// keys (and the append below would keep growing it).
			n := copy(tc.order, tc.order[1:])
			tc.order[n] = traceKey{}
			tc.order = tc.order[:n]
		}
		tc.cache[key] = tr
		tc.order = append(tc.order, key)
		return tr
	}
}
