package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coalloc/internal/core"
	"coalloc/internal/plot"
)

// tinyParams keeps integration runs fast while still exercising the full
// pipeline.
func tinyParams() Params {
	p := QuickParams()
	p.WarmupJobs = 100
	p.MeasureJobs = 800
	p.Utilizations = []float64{0.2, 0.4, 0.6}
	p.BacklogWarmup = 5000
	p.BacklogMeasure = 30000
	return p
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"backfill", "checkpoint", "discipline", "extsweep", "faults", "fig1",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fits", "ratio", "reenable",
		"regret", "reqtypes", "sizeclasses", "table1", "table2", "table3", "workload"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		if Describe(n) == "" {
			t.Errorf("experiment %s lacks a description", n)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	env := NewEnv(tinyParams())
	if _, err := Run("nope", env); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCheapExperimentsRender(t *testing.T) {
	env := NewEnv(tinyParams())
	expect := map[string][]string{
		"table1":   {"Table 1", "0.190"},
		"table2":   {"Table 2", "paper"},
		"fig1":     {"Fig. 1", "64"},
		"fig2":     {"Fig. 2", "900"},
		"ratio":    {"gross/net", "1.2"},
		"workload": {"DAS-s-128", "DAS-t-900"},
	}
	for name, wants := range expect {
		out, err := Run(name, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q", name, w)
			}
		}
	}
}

func TestFig3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	env := NewEnv(tinyParams())
	out, err := Run("fig3", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"limit 16", "limit 24", "limit 32", "balanced", "unbalanced", "SC", "LS", "GS", "LP"} {
		if !strings.Contains(out, w) {
			t.Errorf("fig3 output missing %q", w)
		}
	}
}

func TestFig4Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.5}
	env := NewEnv(p)
	out, err := Run("fig4", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"local avg", "global avg", "gross util", "net util", "LP"} {
		if !strings.Contains(out, w) {
			t.Errorf("fig4 output missing %q", w)
		}
	}
}

func TestFig5Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	env := NewEnv(tinyParams())
	out, err := Run("fig5", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"SC 64", "SC 128", "LS 64", "LS 128"} {
		if !strings.Contains(out, w) {
			t.Errorf("fig5 output missing %q", w)
		}
	}
}

func TestFig6And7Render(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.5}
	env := NewEnv(p)
	out6, err := Run("fig6", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"LS 16", "LS 24", "LS 32", "GS 16"} {
		if !strings.Contains(out6, w) {
			t.Errorf("fig6 output missing %q", w)
		}
	}
	out7, err := Run("fig7", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"gross", "net", "ratio"} {
		if !strings.Contains(out7, w) {
			t.Errorf("fig7 output missing %q", w)
		}
	}
}

func TestTable3Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	env := NewEnv(tinyParams())
	out, err := Run("table3", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Table 3", "16", "24", "32", "SC reference"} {
		if !strings.Contains(out, w) {
			t.Errorf("table3 output missing %q", w)
		}
	}
}

func TestCurveStopsAtSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.9, 0.95} // 0.9 saturates GS
	env := NewEnv(p)
	cs := CurveSpec{
		Label:        "GS",
		Policy:       "GS",
		ClusterSizes: MulticlusterSizes,
		Spec:         env.MultiSpec(16, env.Derived.Sizes128),
	}
	s, err := env.Curve(cs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("curve has %d points; the sweep should stop at the first saturated point", s.Len())
	}
}

func TestSaveCSVWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := tinyParams()
	p.DataDir = dir
	env := NewEnv(p)
	if _, err := Run("fig1", env); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y") {
		t.Errorf("CSV header missing: %q", string(data[:20]))
	}
}

func TestDefaultAndQuickParams(t *testing.T) {
	d := DefaultParams()
	q := QuickParams()
	if d.MeasureJobs <= q.MeasureJobs {
		t.Error("default params should be heavier than quick")
	}
	if len(d.Utilizations) == 0 || d.Utilizations[0] != 0.10 {
		t.Errorf("default grid %v", d.Utilizations)
	}
	last := d.Utilizations[len(d.Utilizations)-1]
	if last < 0.9 || last > 0.96 {
		t.Errorf("default grid ends at %g", last)
	}
}

func TestBalanceName(t *testing.T) {
	if balanceName(nil) != "balanced" || balanceName([]float64{2, 1}) != "unbalanced" {
		t.Error("balance names")
	}
}

func TestRunPointsOrderAndErrors(t *testing.T) {
	env := NewEnv(tinyParams())
	cs := CurveSpec{
		Policy:       "GS",
		ClusterSizes: MulticlusterSizes,
		Spec:         env.MultiSpec(16, env.Derived.Sizes128),
	}
	grid := []float64{0.2, 0.3, 0.4}
	results, err := runPoints(grid, func(u float64) (core.Result, error) {
		return env.point(cs, u)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(grid) {
		t.Fatalf("%d results for %d points", len(results), len(grid))
	}
	// Results are in grid order: offered load increases monotonically.
	for i := 1; i < len(results); i++ {
		if results[i].OfferedGross <= results[i-1].OfferedGross {
			t.Errorf("results out of grid order: %v then %v",
				results[i-1].OfferedGross, results[i].OfferedGross)
		}
	}
	// Errors propagate.
	_, err = runPoints(grid, func(u float64) (core.Result, error) {
		if u == 0.3 {
			return core.Result{}, errSentinel
		}
		return core.Result{}, nil
	})
	if err != errSentinel {
		t.Errorf("error not propagated: %v", err)
	}
}

var errSentinel = errors.New("sentinel")

func TestParallelSweepMatchesSerial(t *testing.T) {
	// The parallel sweep must produce byte-identical curves to a serial
	// evaluation of the same points (each point is an independent,
	// seeded simulation).
	env := NewEnv(tinyParams())
	cs := CurveSpec{
		Label:        "GS",
		Policy:       "GS",
		ClusterSizes: MulticlusterSizes,
		Spec:         env.MultiSpec(16, env.Derived.Sizes128),
	}
	par, err := env.Curve(cs)
	if err != nil {
		t.Fatal(err)
	}
	var serial plot.Series
	for _, u := range env.Utilizations {
		res, err := env.point(cs, u)
		if err != nil {
			t.Fatal(err)
		}
		serial.Add(res.GrossUtilization, res.MeanResponse)
		if res.Saturated || res.MeanResponse > env.ResponseCap {
			break
		}
	}
	if par.Len() != serial.Len() {
		t.Fatalf("parallel %d points, serial %d", par.Len(), serial.Len())
	}
	for i := range serial.X {
		if par.X[i] != serial.X[i] || par.Y[i] != serial.Y[i] {
			t.Fatalf("point %d differs: (%g,%g) vs (%g,%g)",
				i, par.X[i], par.Y[i], serial.X[i], serial.Y[i])
		}
	}
}

func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.5}
	p.BacklogWarmup = 2000
	p.BacklogMeasure = 10000
	env := NewEnv(p)
	expect := map[string][]string{
		"reqtypes":    {"unordered", "ordered", "flexible", "total"},
		"fits":        {"WF", "FF", "BF"},
		"extsweep":    {"1.00", "1.25", "1.50", "SC reference"},
		"reenable":    {"disable order", "fixed order"},
		"backfill":    {"GS-EASY", "GS-CONS", "SC-EASY"},
		"discipline":  {"FCFS", "SPF", "EASY"},
		"sizeclasses": {"65-128", "SC", "LS"},
	}
	for name, wants := range expect {
		out, err := Run(name, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q", name, w)
			}
		}
	}
}

func TestDegradationRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	env := NewEnv(tinyParams())
	out, err := Run("faults", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"degradation under processor failures",
		"MTTR 900 s",
		"fail/hr", "kills", "avail",
		"GS", "LS", "LP",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("degradation output missing %q", w)
		}
	}
	// The grid's fault-free anchor point must be present.
	if !strings.Contains(out, "0.00") {
		t.Error("degradation output missing the zero-failure-rate row")
	}
}

// TestCheckpointRenders runs the checkpoint-interval sweep at test fidelity
// and checks the report carries both policies, the no-checkpointing
// baseline, and the saved-work accounting.
func TestCheckpointRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	env := NewEnv(tinyParams())
	out, err := Run("checkpoint", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{
		"work lost vs checkpoint interval",
		"MTBF 1000 s", "MTTR 900 s",
		"saved(proc-s)", "lost/kill",
		"GS-EASY", "GS-CONS",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("checkpoint output missing %q", w)
		}
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	p := tinyParams()
	p.Utilizations = []float64{0.3}
	p.MeasureJobs = 400
	p.WarmupJobs = 50
	p.BacklogWarmup = 1000
	p.BacklogMeasure = 5000
	env := NewEnv(p)
	out, err := All(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		if !strings.Contains(out, "================ "+name+" ================") {
			t.Errorf("All output missing section %q", name)
		}
	}
}

// TestSweepSharedTraceMatchesPerPolicy is the sweep-level common-random-
// numbers guardrail: running the standard policy curves against the shared
// per-point workload traces must produce exactly the curves of the
// per-policy generation path (PerPolicyWorkload). Both modes feed every
// run the same draws; only where the draws happen differs.
func TestSweepSharedTraceMatchesPerPolicy(t *testing.T) {
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.5}
	p.Replications = 2

	curves := func(env *Env) []plot.Series {
		spec := env.MultiSpec(16, env.Derived.Sizes128)
		var out []plot.Series
		for _, cs := range []CurveSpec{
			{Label: "GS", Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
			{Label: "LS", Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec},
			{Label: "LP", Policy: "LP", ClusterSizes: MulticlusterSizes, Spec: spec},
			{Label: "LS-unbal", Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec,
				QueueWeights: core.Unbalanced(len(MulticlusterSizes))},
		} {
			s, err := env.Curve(cs)
			if err != nil {
				t.Fatalf("%s: %v", cs.Label, err)
			}
			out = append(out, s)
		}
		return out
	}

	shared := curves(NewEnv(p))
	p.PerPolicyWorkload = true
	pergen := curves(NewEnv(p))

	for ci := range shared {
		a, b := shared[ci], pergen[ci]
		if a.Len() != b.Len() {
			t.Fatalf("%s: shared %d points, per-policy %d", a.Name, a.Len(), b.Len())
		}
		for i := range a.X {
			if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
				t.Fatalf("%s point %d differs: shared (%g,%g) vs per-policy (%g,%g)",
					a.Name, i, a.X[i], a.Y[i], b.X[i], b.Y[i])
			}
		}
	}
}

func TestRegistryMetadata(t *testing.T) {
	if Known("nope") {
		t.Error("Known accepted an unregistered name")
	}
	if UsesSimulations("nope") || UsesConservative("nope") {
		t.Error("unknown experiment claims flag applicability")
	}
	for _, n := range []string{"fig3", "fig5", "regret", "backfill"} {
		if !Known(n) || !UsesSimulations(n) {
			t.Errorf("%s should be a known simulation experiment", n)
		}
	}
	for _, n := range []string{"table1", "fig1", "ratio", "workload"} {
		if UsesSimulations(n) {
			t.Errorf("%s runs no simulations but claims -decisions applies", n)
		}
	}
	for _, n := range []string{"backfill", "faults", "checkpoint"} {
		if !UsesConservative(n) {
			t.Errorf("%s runs GS-CONS but claims -lookahead does not apply", n)
		}
	}
	if UsesConservative("fig3") || UsesConservative("regret") {
		t.Error("non-backfilling experiments claim -lookahead applies")
	}
}

func TestRankSummaryNeverStable(t *testing.T) {
	stable := plot.Series{Name: "ok", X: []float64{0.2, 0.4}, Y: []float64{10, 20}}

	// A curve whose very first grid point was a saturation terminator has
	// no stable points at all; it must rank as "never stable", not 0.00.
	allSat := plot.Series{Name: "sat", X: []float64{0.2}, Y: []float64{50000}, Saturated: true}
	out := rankSummary([]plot.Series{stable, allSat})
	if !strings.Contains(out, "ok 0.40") {
		t.Errorf("stable curve misranked: %q", out)
	}
	if !strings.Contains(out, "sat never stable") {
		t.Errorf("all-saturated curve not reported as never stable: %q", out)
	}
	if strings.Contains(out, "sat 0.00") {
		t.Errorf("all-saturated curve got a fabricated rank: %q", out)
	}

	// Every measured response above the plot cap: also never stable.
	overCap := plot.Series{Name: "cap", X: []float64{0.2, 0.4}, Y: []float64{20000, 30000}}
	if out := rankSummary([]plot.Series{overCap}); !strings.Contains(out, "cap never stable") {
		t.Errorf("over-cap curve not reported as never stable: %q", out)
	}

	// Degenerate: a marked-saturated series with zero points must not
	// panic on the terminator slice.
	empty := plot.Series{Name: "empty", Saturated: true}
	if out := rankSummary([]plot.Series{empty}); !strings.Contains(out, "empty never stable") {
		t.Errorf("empty saturated curve: %q", out)
	}
}

func TestRegretExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	dir := t.TempDir()
	p := tinyParams()
	p.Utilizations = []float64{0.3, 0.6}
	p.DataDir = dir
	env := NewEnv(p)
	out, err := Run("regret", env)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"Regret —", "mean regret per job", "GS 128", "LS 64"} {
		if !strings.Contains(out, w) {
			t.Errorf("regret output missing %q", w)
		}
	}
	if env.Decisions != nil {
		t.Error("regret experiment leaked Decisions into the shared Env")
	}
	data, err := os.ReadFile(filepath.Join(dir, "regret.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "GS 128") {
		t.Errorf("regret.csv missing series header: %s", data)
	}
}
