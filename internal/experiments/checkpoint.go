package experiments

import (
	"fmt"
	"strings"

	"coalloc/internal/core"
	"coalloc/internal/faults"
	"coalloc/internal/plot"
)

// The checkpoint experiment quantifies the checkpoint/restart extension on
// the backfilling policies: at a fixed failure rate, how much of the work a
// kill would forfeit does periodic checkpointing preserve, as a function of
// the checkpoint interval? The model charges nothing for taking a
// checkpoint, so a shorter interval is strictly better here; the curve
// shows the diminishing returns a real system would weigh against the
// checkpoint overhead. Every point shares the workload trace and the fault
// streams, so the differences between intervals are purely how much of each
// killed job's progress survives.

// defaultCheckpointMTBF is the per-cluster failure rate of the checkpoint
// sweep when Params.FaultMTBF is zero: one failure every ~17 minutes per
// cluster, the harshest point of the degradation grid.
const defaultCheckpointMTBF = 1000

// checkpointIntervalGrid is the sweep grid in seconds, from aggressive
// (every 30 s of extended-service progress) to nearly useless (half an
// hour, longer than most victims live). Zero is the no-checkpointing
// baseline.
var checkpointIntervalGrid = []float64{0, 1800, 600, 300, 120, 60, 30}

// Checkpoint sweeps the checkpoint interval for the backfilling policies at
// a fixed failure rate and reports the lost-versus-saved work trade-off.
func Checkpoint(e *Env) (string, error) {
	mttr := e.FaultMTTR
	if mttr == 0 {
		mttr = defaultFaultMTTR
	}
	mtbf := e.FaultMTBF
	if mtbf == 0 {
		mtbf = defaultCheckpointMTBF
	}
	const util = 0.4
	spec := e.MultiSpec(16, e.Derived.Sizes64)
	var b strings.Builder
	b.WriteString("Extension — checkpoint/restart: work lost vs checkpoint interval\n")
	fmt.Fprintf(&b, "(offered gross utilization %.2f, MTBF %.0f s, MTTR %.0f s,\nmulticluster %v, limit 16, DAS-s-64; interval 0 = no checkpointing)\n\n",
		util, mtbf, mttr, MulticlusterSizes)
	fmt.Fprintf(&b, "%-7s %11s %7s %13s %14s %11s %9s\n",
		"policy", "interval(s)", "kills", "lost(proc-s)", "saved(proc-s)", "lost/kill", "resp(s)")
	policies := []string{"GS-EASY", "GS-CONS"}
	jobs := make([]curveJob, len(policies))
	for pi, pol := range policies {
		cs := CurveSpec{Label: pol, Policy: pol, ClusterSizes: MulticlusterSizes, Spec: spec}
		jobs[pi] = curveJob{
			label: pol + " checkpoint",
			grid:  checkpointIntervalGrid,
			fn: func(interval float64) (core.Result, error) {
				fs := &faults.Spec{
					MTBF:               mtbf,
					MTTR:               mttr,
					RetryBase:          e.FaultRetryBase,
					RetryCap:           e.FaultRetryCap,
					CheckpointInterval: interval,
				}
				return e.FaultPoint(cs, util, fs)
			},
		}
	}
	sets, err := e.sweepSet(jobs)
	if err != nil {
		return "", err
	}
	var panel []plot.Series
	for pi, pol := range policies {
		results := sets[pi]
		s := plot.Series{Name: pol}
		for i, res := range results {
			interval := checkpointIntervalGrid[i]
			perKill := 0.0
			if res.JobsKilled > 0 {
				perKill = res.WorkLost / float64(res.JobsKilled)
			}
			if interval > 0 {
				s.Add(interval, res.WorkLost)
			}
			resp := fmtResp(res.MeanResponse)
			if res.Saturated {
				resp += "*"
			}
			fmt.Fprintf(&b, "%-7s %11.0f %7d %13.0f %14.0f %11.0f %9s\n",
				pol, interval, res.JobsKilled, res.WorkLost, res.WorkSaved, perKill, resp)
		}
		panel = append(panel, s)
		b.WriteByte('\n')
	}
	b.WriteString("(Checkpoints cost nothing in this model, so lost work shrinks\nmonotonically with the interval; the flattening toward small intervals is\nthe bound a real checkpoint overhead would trade against. Long intervals\napproach the no-checkpointing baseline because victims — the most recently\nstarted occupants — rarely live long enough to reach their first\ncheckpoint.)\n")
	if err := e.SaveCSV("checkpoint", panel); err != nil {
		return "", err
	}
	return b.String(), nil
}
