package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Runner reproduces one paper artifact and returns its rendered report.
type Runner func(*Env) (string, error)

// registry maps experiment ids to runners, plus the metadata the CLIs use
// to validate flag combinations: sims marks experiments that run
// open-system simulations (the runs decision tracing applies to), cons
// marks experiments that run conservative-backfilling policies (the runs
// -lookahead applies to).
var registry = map[string]struct {
	run  Runner
	desc string
	sims bool
	cons bool
}{
	"table1":   {run: Table1, desc: "fractions of jobs with power-of-two sizes"},
	"table2":   {run: Table2, desc: "component-count fractions per size limit"},
	"table3":   {run: Table3, desc: "maximal gross/net utilization under constant backlog"},
	"fig1":     {run: Fig1, desc: "density of job-request sizes"},
	"fig2":     {run: Fig2, desc: "density of service times"},
	"fig3":     {run: Fig3, desc: "response time vs utilization, all policies and limits", sims: true},
	"fig4":     {run: Fig4, desc: "response-time breakdown near LP saturation", sims: true},
	"fig5":     {run: Fig5, desc: "total-job-size cap: DAS-s-64 vs DAS-s-128", sims: true},
	"fig6":     {run: Fig6, desc: "sensitivity to the component-size limit", sims: true},
	"fig7":     {run: Fig7, desc: "gross vs net utilization curves", sims: true},
	"ratio":    {run: Ratio, desc: "analytic gross/net utilization ratios"},
	"workload": {run: WorkloadSummary, desc: "derived distribution summary"},
	// Ablations beyond the paper (see DESIGN.md section 6).
	"reqtypes":    {run: ReqTypes, desc: "ablation: unordered vs ordered vs flexible vs total requests", sims: true},
	"fits":        {run: FitRules, desc: "ablation: Worst Fit vs First Fit vs Best Fit placement", sims: true},
	"extsweep":    {run: ExtSweep, desc: "ablation: wide-area extension factor sweep", sims: true},
	"reenable":    {run: Reenable, desc: "ablation: LS queue re-enable order", sims: true},
	"backfill":    {run: Backfill, desc: "ablation: EASY/conservative backfilling vs plain FCFS", sims: true, cons: true},
	"discipline":  {run: Discipline, desc: "ablation: FCFS vs SPF vs EASY queue discipline", sims: true},
	"sizeclasses": {run: SizeClasses, desc: "ablation: response time by total-job-size class", sims: true},
	"faults":      {run: Degradation, desc: "extension: response-time degradation under processor failures", sims: true, cons: true},
	"checkpoint":  {run: Checkpoint, desc: "extension: checkpoint/restart work-loss vs checkpoint interval", sims: true, cons: true},
	"regret":      {run: Regret, desc: "extension: counterfactual start-time regret per policy", sims: true},
}

// Names returns the experiment ids in a stable order.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string { return registry[name].desc }

// Known reports whether name is a registered experiment id.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// UsesSimulations reports whether the named experiment runs open-system
// simulations — the runs decision tracing (-decisions) applies to.
// Unknown names report false.
func UsesSimulations(name string) bool { return registry[name].sims }

// UsesConservative reports whether the named experiment runs
// conservative-backfilling policies — the runs -lookahead applies to.
// Unknown names report false.
func UsesConservative(name string) bool { return registry[name].cons }

// Run executes one experiment by id.
func Run(name string, e *Env) (string, error) {
	r, ok := registry[name]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return r.run(e)
}

// All runs every experiment in a deterministic order and concatenates the
// reports.
func All(e *Env) (string, error) {
	order := []string{
		"workload", "table1", "fig1", "fig2", "table2", "ratio",
		"fig3", "fig4", "fig5", "fig6", "fig7", "table3",
		"reqtypes", "fits", "extsweep", "reenable", "backfill", "discipline",
		"sizeclasses", "faults", "checkpoint", "regret",
	}
	var b strings.Builder
	for _, name := range order {
		out, err := Run(name, e)
		if err != nil {
			return "", fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(&b, "================ %s ================\n\n%s\n", name, out)
	}
	return b.String(), nil
}
