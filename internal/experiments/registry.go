package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Runner reproduces one paper artifact and returns its rendered report.
type Runner func(*Env) (string, error)

// registry maps experiment ids to runners.
var registry = map[string]struct {
	run  Runner
	desc string
}{
	"table1":   {Table1, "fractions of jobs with power-of-two sizes"},
	"table2":   {Table2, "component-count fractions per size limit"},
	"table3":   {Table3, "maximal gross/net utilization under constant backlog"},
	"fig1":     {Fig1, "density of job-request sizes"},
	"fig2":     {Fig2, "density of service times"},
	"fig3":     {Fig3, "response time vs utilization, all policies and limits"},
	"fig4":     {Fig4, "response-time breakdown near LP saturation"},
	"fig5":     {Fig5, "total-job-size cap: DAS-s-64 vs DAS-s-128"},
	"fig6":     {Fig6, "sensitivity to the component-size limit"},
	"fig7":     {Fig7, "gross vs net utilization curves"},
	"ratio":    {Ratio, "analytic gross/net utilization ratios"},
	"workload": {WorkloadSummary, "derived distribution summary"},
	// Ablations beyond the paper (see DESIGN.md section 6).
	"reqtypes":    {ReqTypes, "ablation: unordered vs ordered vs flexible vs total requests"},
	"fits":        {FitRules, "ablation: Worst Fit vs First Fit vs Best Fit placement"},
	"extsweep":    {ExtSweep, "ablation: wide-area extension factor sweep"},
	"reenable":    {Reenable, "ablation: LS queue re-enable order"},
	"backfill":    {Backfill, "ablation: EASY/conservative backfilling vs plain FCFS"},
	"discipline":  {Discipline, "ablation: FCFS vs SPF vs EASY queue discipline"},
	"sizeclasses": {SizeClasses, "ablation: response time by total-job-size class"},
	"faults":      {Degradation, "extension: response-time degradation under processor failures"},
	"checkpoint":  {Checkpoint, "extension: checkpoint/restart work-loss vs checkpoint interval"},
}

// Names returns the experiment ids in a stable order.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string { return registry[name].desc }

// Run executes one experiment by id.
func Run(name string, e *Env) (string, error) {
	r, ok := registry[name]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return r.run(e)
}

// All runs every experiment in a deterministic order and concatenates the
// reports.
func All(e *Env) (string, error) {
	order := []string{
		"workload", "table1", "fig1", "fig2", "table2", "ratio",
		"fig3", "fig4", "fig5", "fig6", "fig7", "table3",
		"reqtypes", "fits", "extsweep", "reenable", "backfill", "discipline",
		"sizeclasses", "faults", "checkpoint",
	}
	var b strings.Builder
	for _, name := range order {
		out, err := Run(name, e)
		if err != nil {
			return "", fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(&b, "================ %s ================\n\n%s\n", name, out)
	}
	return b.String(), nil
}
