package experiments

import (
	"fmt"
	"strings"

	"coalloc/internal/cluster"
	"coalloc/internal/core"
	"coalloc/internal/plot"
	"coalloc/internal/workload"
)

// The ablation experiments probe design choices the paper fixes: the
// request structure (its companion-paper taxonomy), the Worst Fit
// placement rule, the 1.25 extension factor, and the LS queue re-enable
// order. They extend the reproduction beyond the published figures.

// ReqTypes compares request structures under the GS policy: unordered
// (the paper's subject), ordered (fixed clusters) and flexible (scheduler
// splits freely), plus total requests on the single-cluster reference.
// Expected ordering by maximal utilization: flexible > unordered > ordered.
func ReqTypes(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — request structure (GS policy, limit 16, DAS-s-128)\n\n")
	spec := e.MultiSpec(16, e.Derived.Sizes128)
	// The three typed sweeps and the single-cluster reference curve form
	// one scheduling unit.
	var jobs []curveJob
	for _, rt := range []workload.RequestType{workload.Unordered, workload.Ordered, workload.Flexible} {
		rt := rt
		jobs = append(jobs, curveJob{
			label: rt.String(),
			grid:  e.Utilizations,
			fn: func(u float64) (core.Result, error) {
				return e.pointTyped(CurveSpec{
					Policy:       "GS",
					ClusterSizes: MulticlusterSizes,
					Spec:         spec,
				}, rt, u)
			},
		})
	}
	// Total requests on the reference cluster for context.
	scCS := CurveSpec{
		Label: "total (SC)", Policy: "SC", ClusterSizes: SingleClusterSizes,
		Spec: e.SCSpec(e.Derived.Sizes128),
	}
	jobs = append(jobs, e.curveJobs([]CurveSpec{scCS})...)
	sets, err := e.sweepSet(jobs)
	if err != nil {
		return "", err
	}
	var panel []plot.Series
	for ji, job := range jobs {
		panel = append(panel, e.series(job.label, sets[ji]))
	}
	b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 16))
	b.WriteString(rankSummary(panel))
	b.WriteString("\n(expected: flexible requests fit best, ordered requests worst —\nplacement freedom is worth real utilization.)\n")
	if err := e.SaveCSV("reqtypes", panel); err != nil {
		return "", err
	}
	return b.String(), nil
}

// pointTyped is Point with a request type.
func (e *Env) pointTyped(cs CurveSpec, rt workload.RequestType, util float64) (core.Result, error) {
	var capacity int
	for _, s := range cs.ClusterSizes {
		capacity += s
	}
	cfg := core.Config{
		ClusterSizes:     cs.ClusterSizes,
		Spec:             cs.Spec,
		Policy:           cs.Policy,
		Fit:              cs.Fit,
		RequestType:      rt,
		ArrivalRate:      cs.Spec.ArrivalRateForGrossUtilization(util, capacity),
		QueueWeights:     cs.QueueWeights,
		WarmupJobs:       e.WarmupJobs,
		MeasureJobs:      e.MeasureJobs,
		Seed:             e.Seed,
		Observer:         e.Observer,
		SaturationCutoff: e.SaturationCutoff,
	}
	return e.runPoint(cfg)
}

// FitRules compares Worst Fit (the paper's rule) with First Fit and Best
// Fit placement for the GS policy.
func FitRules(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — placement rule (GS policy, limit 16, DAS-s-128)\n\n")
	spec := e.MultiSpec(16, e.Derived.Sizes128)
	var specs []CurveSpec
	for _, fit := range []cluster.Fit{cluster.WorstFit, cluster.FirstFit, cluster.BestFit} {
		specs = append(specs, CurveSpec{
			Label:        fit.String(),
			Policy:       "GS",
			ClusterSizes: MulticlusterSizes,
			Spec:         spec,
			Fit:          fit,
		})
	}
	panel, err := e.Curves(specs)
	if err != nil {
		return "", err
	}
	b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 16))
	b.WriteString(rankSummary(panel))
	b.WriteString("\n(the paper fixes Worst Fit; WF spreads load and dominates BF/FF here.)\n")
	if err := e.SaveCSV("fits", panel); err != nil {
		return "", err
	}
	return b.String(), nil
}

// ExtSweep sweeps the wide-area extension factor and reports the LS
// policy's maximal gross and net utilization next to the SC reference —
// the quantitative basis for the paper's "viable while the extension
// factor is 1.25" conclusion.
func ExtSweep(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — wide-area extension factor (LS, limit 16, constant backlog)\n\n")
	scRes, err := core.RunBacklog(core.BacklogConfig{
		ClusterSizes: SingleClusterSizes,
		Spec:         e.SCSpec(e.Derived.Sizes128),
		Policy:       "SC",
		WarmupTime:   e.BacklogWarmup,
		MeasureTime:  e.BacklogMeasure,
		Seed:         e.Seed,
	})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "SC reference maximal utilization: %.3f\n\n", scRes.MaxGrossUtilization)
	rows := [][]string{{"ext", "LS max gross", "LS max net", "net - SC"}}
	for _, ext := range []float64{1.00, 1.10, 1.20, 1.25, 1.30, 1.40, 1.50} {
		spec := e.MultiSpec(16, e.Derived.Sizes128)
		spec.ExtensionFactor = ext
		res, err := core.RunBacklog(core.BacklogConfig{
			ClusterSizes: MulticlusterSizes,
			Spec:         spec,
			Policy:       "LS",
			WarmupTime:   e.BacklogWarmup,
			MeasureTime:  e.BacklogMeasure,
			Seed:         e.Seed,
		})
		if err != nil {
			return "", err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", ext),
			fmt.Sprintf("%.3f", res.MaxGrossUtilization),
			fmt.Sprintf("%.3f", res.MaxNetUtilization),
			fmt.Sprintf("%+.3f", res.MaxNetUtilization-scRes.MaxGrossUtilization),
		})
	}
	b.WriteString(plot.Table(rows))
	b.WriteString("\n(gross utilization barely moves; the net — computational — share decays\nroughly linearly in the extension factor.)\n")
	return b.String(), nil
}

// Backfill compares plain FCFS scheduling with EASY backfilling, in the
// multicluster (GS vs GS-EASY vs LS) and on the single-cluster reference
// (SC vs SC-EASY). The paper attributes LS's advantage to "a form of
// backfilling with a window equal to the number of clusters"; EASY removes
// the window limit and shows how much head-of-line blocking really costs.
func Backfill(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — EASY backfilling (limit 16, DAS-s-128, balanced queues)\n\n")
	spec := e.MultiSpec(16, e.Derived.Sizes128)
	scSpec := e.SCSpec(e.Derived.Sizes128)
	curves := []CurveSpec{
		{Label: "GS", Policy: "GS", ClusterSizes: MulticlusterSizes, Spec: spec},
		{Label: "GS-CONS", Policy: "GS-CONS", ClusterSizes: MulticlusterSizes, Spec: spec},
		{Label: "GS-EASY", Policy: "GS-EASY", ClusterSizes: MulticlusterSizes, Spec: spec},
		{Label: "LS", Policy: "LS", ClusterSizes: MulticlusterSizes, Spec: spec},
		{Label: "SC", Policy: "SC", ClusterSizes: SingleClusterSizes, Spec: scSpec},
		{Label: "SC-EASY", Policy: "SC-EASY", ClusterSizes: SingleClusterSizes, Spec: scSpec},
	}
	panel, err := e.Curves(curves)
	if err != nil {
		return "", err
	}
	b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 16))
	b.WriteString(rankSummary(panel))
	b.WriteString("\n(EASY dominates its FCFS counterpart; the backfilled single cluster is\nthe strongest system of all — co-allocation's fragmentation costs real\nutilization once head-of-line blocking is gone. Reservations here use\nexact runtimes, so this is an upper bound on EASY's benefit.)\n")
	if err := e.SaveCSV("backfill", panel); err != nil {
		return "", err
	}
	return b.String(), nil
}

// SizeClasses breaks the mean response time down by total job size at one
// operating point per policy — the quantitative view behind the paper's
// Section 3.2 observation that "a very small percentage of very large jobs
// can significantly worsen the performance": under FCFS, the near-system-
// size jobs wait for the machine to drain and everything queued behind
// them pays too.
func SizeClasses(e *Env) (string, error) {
	var b strings.Builder
	const util = 0.55
	fmt.Fprintf(&b, "Ablation — response time by job-size class (limit 16, gross util %.2f)\n\n", util)
	header := []string{"policy"}
	for i := range core.SizeClassBounds {
		header = append(header, core.SizeClassLabel(i))
	}
	rows := [][]string{header}
	for _, cs := range e.standardCurves(16, nil) {
		res, err := e.Point(cs, util)
		if err != nil {
			return "", err
		}
		row := []string{cs.Label}
		for _, v := range res.ResponseBySizeClass {
			row = append(row, fmtResp(v))
		}
		rows = append(rows, row)
	}
	b.WriteString(plot.Table(rows))
	b.WriteString("\n(mean response time in seconds per total-size class; the 65-128 class\ncarries the paper's 'very large jobs'. SC serves them only by draining\nthe whole machine; LS postpones them behind its other queues instead.)\n")
	return b.String(), nil
}

// Discipline compares queue service orders under the global scheduler:
// FCFS (the paper's order), shortest-processing-first, and EASY
// backfilling — separating how much of the FCFS gap is service order and
// how much is packing.
func Discipline(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — queue discipline (GS, limit 16, DAS-s-128)\n\n")
	spec := e.MultiSpec(16, e.Derived.Sizes128)
	var specs []CurveSpec
	for _, p := range []struct{ label, policy string }{
		{"FCFS", "GS"},
		{"SPF", "GS-SPF"},
		{"EASY", "GS-EASY"},
	} {
		specs = append(specs, CurveSpec{
			Label:        p.label,
			Policy:       p.policy,
			ClusterSizes: MulticlusterSizes,
			Spec:         spec,
		})
	}
	panel, err := e.Curves(specs)
	if err != nil {
		return "", err
	}
	b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 16))
	b.WriteString(rankSummary(panel))
	b.WriteString("\n(SPF cuts the mean by serving short jobs first but still head-blocks on\nthe shortest non-fitting job; EASY fixes the blocking itself and wins.\nSPF is unfair to long jobs — mean response hides their starvation.)\n")
	if err := e.SaveCSV("discipline", panel); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Reenable compares the paper's disable-order queue re-enabling in LS with
// a fixed index order — a design-choice check: the paper's rule exists for
// fairness, and its performance impact should be small.
func Reenable(e *Env) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation — LS queue re-enable order (limit 16, unbalanced queues)\n\n")
	spec := e.MultiSpec(16, e.Derived.Sizes128)
	weights := core.Unbalanced(len(MulticlusterSizes))
	var specs []CurveSpec
	for _, p := range []struct{ label, policy string }{
		{"disable order (paper)", "LS"},
		{"fixed order", "LS-sorted"},
	} {
		specs = append(specs, CurveSpec{
			Label:        p.label,
			Policy:       p.policy,
			ClusterSizes: MulticlusterSizes,
			Spec:         spec,
			QueueWeights: weights,
		})
	}
	panel, err := e.Curves(specs)
	if err != nil {
		return "", err
	}
	b.WriteString(plot.Chart("", "gross utilization", "mean response time (s)", panel, 64, 14))
	b.WriteString(rankSummary(panel))
	b.WriteString("\n(at low loads the orders coincide; near saturation with unbalanced\nrouting the paper's disable-order rotation clearly outperforms a fixed\norder, which keeps handing the first start of every round to the same\noverloaded queue — the rule earns its keep.)\n")
	return b.String(), nil
}
