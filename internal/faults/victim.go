package faults

import (
	"fmt"

	"coalloc/internal/workload"
)

// SelectVictim picks the running job to abort when a processor of cluster
// c fails while every up processor of c is busy. The rule is a
// deterministic total order — among the running jobs holding a component
// on c, the one that started most recently loses (it forfeits the least
// completed work), with the higher job ID breaking start-time ties.
// Iteration order of the registry therefore cannot influence the choice.
//
// SelectVictim checks the invariants the capacity bookkeeping relies on:
// every running job must hold a placement, and a fully busy cluster must
// be occupied by at least one running job. Either violation is a simulator
// bug and panics. The returned value indexes running.
func SelectVictim(running []*workload.Job, c int) int {
	best := -1
	for i, j := range running {
		if len(j.Placement) != len(j.Components) {
			panic(fmt.Sprintf("faults: running job %d has %d placements for %d components",
				j.ID, len(j.Placement), len(j.Components)))
		}
		occupies := false
		for _, pc := range j.Placement {
			if pc == c {
				occupies = true
				break
			}
		}
		if !occupies {
			continue
		}
		if best < 0 || later(j, running[best]) {
			best = i
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("faults: no running job occupies fully busy cluster %d", c))
	}
	return best
}

// later reports whether a ranks after b in the victim order: strictly
// later start, or an equal start with the higher ID.
func later(a, b *workload.Job) bool {
	if a.StartTime != b.StartTime {
		return a.StartTime > b.StartTime
	}
	return a.ID > b.ID
}
