// Package faults implements deterministic processor failure and repair
// injection for the multicluster simulation. Each cluster has its own
// Poisson failure process and exponential repair times, drawn from named
// RNG streams ("faults/fail/<c>", "faults/repair/<c>") so the draws are a
// pure function of the run seed: the workload streams never see a fault
// draw, a shared workload trace stays valid under any failure rate, and a
// same-seed run replays byte-identically.
//
// The semantics are the simplest model that exercises co-allocation under
// capacity flap: a failure takes one processor of the cluster down. If the
// cluster has an idle processor the failure is absorbed silently by the
// schedulers (capacity shrinks); if every up processor is busy, the most
// recently started job with a component on the cluster is aborted — losing
// its completed work — and resubmitted after a capped exponential backoff.
// If the whole cluster is already down the failure is skipped (counted,
// but the process keeps ticking). Repairs return processors to the idle
// pool and give the policy a scheduling opportunity under the same
// ordering contract as a departure.
//
// An optional checkpoint/restart model (Spec.CheckpointInterval) softens
// the abort: a job checkpoints every interval of extended-service runtime,
// a kill forfeits only the progress since the last checkpoint, and the
// resubmitted job runs only its remainder.
package faults

import (
	"fmt"
	"math"
	"strconv"

	"coalloc/internal/rng"
)

// Spec configures the per-cluster failure and repair processes. The zero
// value (and a nil pointer) disables fault injection entirely; the
// simulator guarantees that a disabled spec leaves a run bit-identical to
// one configured without faults.
type Spec struct {
	// MTBF is the mean time between failures of one cluster, in virtual
	// seconds. Each cluster's failures form an independent Poisson
	// process of rate 1/MTBF. Zero disables fault injection.
	MTBF float64
	// MTTR is the mean time to repair one failed processor, in virtual
	// seconds. Required (positive) when MTBF is positive.
	MTTR float64
	// RetryBase and RetryCap bound the virtual-time backoff before an
	// aborted job is resubmitted: the k-th abort of a job delays its
	// resubmission by min(RetryBase * 2^(k-1), RetryCap) seconds.
	// Zero values default to 10 s and 600 s.
	RetryBase float64
	RetryCap  float64
	// CheckpointInterval, when positive, enables periodic checkpointing:
	// a running job checkpoints its progress every CheckpointInterval
	// seconds of extended-service runtime, and a kill forfeits only the
	// work since the last checkpoint. The preserved progress shortens the
	// job's next dispatch (workload.Job.RemainingTime). Zero disables
	// checkpointing — a kill forfeits everything, the pre-checkpoint
	// semantics.
	CheckpointInterval float64
}

// Enabled reports whether the spec injects any failures. It is safe on a
// nil receiver.
func (s *Spec) Enabled() bool { return s != nil && s.MTBF > 0 }

// Normalized returns the spec with the retry defaults filled in.
func (s Spec) Normalized() Spec {
	if s.RetryBase == 0 {
		s.RetryBase = 10
	}
	if s.RetryCap == 0 {
		s.RetryCap = 600
	}
	return s
}

// Validate reports errors in an enabled spec. Retry defaults are applied
// before checking, so a spec straight from a config is acceptable.
func (s Spec) Validate() error {
	s = s.Normalized()
	if s.MTBF <= 0 || math.IsNaN(s.MTBF) || math.IsInf(s.MTBF, 0) {
		return fmt.Errorf("faults: MTBF %g must be positive and finite", s.MTBF)
	}
	if s.MTTR <= 0 || math.IsNaN(s.MTTR) || math.IsInf(s.MTTR, 0) {
		return fmt.Errorf("faults: MTTR %g must be positive and finite", s.MTTR)
	}
	if s.RetryBase <= 0 || math.IsNaN(s.RetryBase) || math.IsInf(s.RetryBase, 0) {
		return fmt.Errorf("faults: retry base %g must be positive and finite", s.RetryBase)
	}
	if s.RetryCap < s.RetryBase || math.IsNaN(s.RetryCap) || math.IsInf(s.RetryCap, 0) {
		return fmt.Errorf("faults: retry cap %g must be finite and at least the base %g",
			s.RetryCap, s.RetryBase)
	}
	if s.CheckpointInterval < 0 || math.IsNaN(s.CheckpointInterval) || math.IsInf(s.CheckpointInterval, 0) {
		return fmt.Errorf("faults: checkpoint interval %g must be non-negative and finite (0 disables checkpointing)",
			s.CheckpointInterval)
	}
	return nil
}

// Checkpointed returns the progress that survives an abort of a job that
// has accumulated the given extended-service progress: the largest
// checkpoint multiple not exceeding it, or 0 when checkpointing is
// disabled. The result is monotone in progress and antitone in the
// interval — a shorter interval never loses more work on the same kill.
func (s Spec) Checkpointed(progress float64) float64 {
	if s.CheckpointInterval <= 0 || progress <= 0 {
		return 0
	}
	return math.Floor(progress/s.CheckpointInterval) * s.CheckpointInterval
}

// Backoff returns the resubmission delay after a job's retry-th abort
// (1-based): RetryBase doubling per retry, capped at RetryCap. Retry
// defaults are applied first — on a spec that skipped Normalized, a zero
// cap would otherwise clamp every backoff to zero.
//
// The doubling uses Ldexp with the exponent clamped to the float64
// range, so very large retry counts saturate at the cap. The clamp is
// load-bearing: Ldexp adds the exponent to the base's own exponent with
// plain int arithmetic, so an exponent near MaxInt wraps negative and
// returns 0 — an unbounded retry storm with zero delay.
func (s Spec) Backoff(retry int) float64 {
	s = s.Normalized()
	if retry < 1 {
		retry = 1
	}
	e := retry - 1
	if e > 2098 { // smallest subnormal (2^-1074) doubled this often is +Inf
		return s.RetryCap
	}
	d := math.Ldexp(s.RetryBase, e)
	if !(d < s.RetryCap) { // catches overflow to +Inf too
		return s.RetryCap
	}
	return d
}

// Stats counts what the injector did over one run. Counts cover the whole
// run including warmup: they diagnose the injection process itself, not
// the measured steady state.
type Stats struct {
	// Failures is the number of failures applied (a processor went down).
	Failures uint64
	// Skipped counts failure events that found the whole cluster already
	// down and changed nothing.
	Skipped uint64
	// Repairs is the number of processors returned to service.
	Repairs uint64
	// Kills is the number of running jobs aborted by a failure.
	Kills uint64
	// Resubmits is the number of aborted jobs whose backoff elapsed and
	// that re-entered their queue (at most Kills; the run can end first).
	Resubmits uint64
	// WorkLost is the processor-seconds of completed-then-discarded
	// service across all kills.
	WorkLost float64
	// WorkSaved is the processor-seconds of progress that checkpointing
	// preserved across kills: per kill, the work run since dispatch that
	// survives into the resubmission. Zero without checkpointing;
	// WorkLost + WorkSaved is the total work in flight at kill times.
	WorkSaved float64
}

// Injector drives the failure and repair processes of one run. It owns the
// per-cluster RNG streams and the running Stats; the simulator owns the
// event scheduling and the capacity bookkeeping.
type Injector struct {
	// Spec is the normalized, validated configuration.
	Spec Spec
	// Stats accumulates what happened; read it after the run.
	Stats Stats

	fail   []*rng.Stream
	repair []*rng.Stream
}

// NewInjector returns an injector for the given cluster count, drawing
// from named streams of src. It panics on an invalid spec or cluster
// count — the simulator validates configs before construction.
func NewInjector(spec Spec, clusters int, src *rng.Source) *Injector {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	if clusters <= 0 {
		panic(fmt.Sprintf("faults: NewInjector with %d clusters", clusters))
	}
	inj := &Injector{
		Spec:   spec,
		fail:   make([]*rng.Stream, clusters),
		repair: make([]*rng.Stream, clusters),
	}
	for c := 0; c < clusters; c++ {
		inj.fail[c] = src.Stream("faults/fail/" + strconv.Itoa(c))
		inj.repair[c] = src.Stream("faults/repair/" + strconv.Itoa(c))
	}
	return inj
}

// NextFailure draws the delay until cluster c's next failure.
func (in *Injector) NextFailure(c int) float64 { return in.fail[c].Exp(1 / in.Spec.MTBF) }

// RepairDelay draws the repair duration for a failure on cluster c.
func (in *Injector) RepairDelay(c int) float64 { return in.repair[c].Exp(1 / in.Spec.MTTR) }
