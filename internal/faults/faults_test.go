package faults

import (
	"math"
	"strings"
	"testing"

	"coalloc/internal/rng"
	"coalloc/internal/workload"
)

func TestSpecEnabled(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() {
		t.Error("nil spec reports enabled")
	}
	if (&Spec{}).Enabled() {
		t.Error("zero spec reports enabled")
	}
	if !(&Spec{MTBF: 100}).Enabled() {
		t.Error("positive MTBF reports disabled")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid", Spec{MTBF: 1000, MTTR: 900}, true},
		{"explicit retries", Spec{MTBF: 1000, MTTR: 900, RetryBase: 5, RetryCap: 50}, true},
		{"zero MTBF", Spec{MTTR: 900}, false},
		{"missing MTTR", Spec{MTBF: 1000}, false},
		{"negative MTTR", Spec{MTBF: 1000, MTTR: -1}, false},
		{"cap below base", Spec{MTBF: 1000, MTTR: 900, RetryBase: 100, RetryCap: 10}, false},
		{"explicit base above defaulted cap", Spec{MTBF: 1000, MTTR: 900, RetryBase: 700}, false},
		{"explicit cap below defaulted base", Spec{MTBF: 1000, MTTR: 900, RetryCap: 5}, false},
		{"base equals cap", Spec{MTBF: 1000, MTTR: 900, RetryBase: 50, RetryCap: 50}, true},
		{"negative base", Spec{MTBF: 1000, MTTR: 900, RetryBase: -1}, false},
		{"NaN base", Spec{MTBF: 1000, MTTR: 900, RetryBase: math.NaN()}, false},
		{"infinite cap", Spec{MTBF: 1000, MTTR: 900, RetryCap: math.Inf(1)}, false},
		{"checkpointing", Spec{MTBF: 1000, MTTR: 900, CheckpointInterval: 300}, true},
		{"negative checkpoint interval", Spec{MTBF: 1000, MTTR: 900, CheckpointInterval: -1}, false},
		{"NaN checkpoint interval", Spec{MTBF: 1000, MTTR: 900, CheckpointInterval: math.NaN()}, false},
		{"infinite checkpoint interval", Spec{MTBF: 1000, MTTR: 900, CheckpointInterval: math.Inf(1)}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	s := Spec{MTBF: 1000, MTTR: 900}.Normalized()
	want := []float64{10, 20, 40, 80, 160, 320, 600, 600}
	for i, w := range want {
		if got := s.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %g, want %g", i+1, got, w)
		}
	}
	if got := s.Backoff(0); got != 10 {
		t.Errorf("Backoff(0) = %g, want the base", got)
	}
	// Huge retry counts must saturate at the cap, not overflow: Ldexp
	// with these exponents is +Inf, which the cap comparison absorbs.
	for _, retry := range []int{5000, 1 << 40, math.MaxInt} {
		got := s.Backoff(retry)
		if got != 600 {
			t.Errorf("Backoff(%d) = %g, want 600", retry, got)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("Backoff(%d) = %g escaped the cap", retry, got)
		}
	}
	// Nonsensical retry counts clamp to the first-retry base.
	for _, retry := range []int{0, -3, math.MinInt} {
		if got := s.Backoff(retry); got != 10 {
			t.Errorf("Backoff(%d) = %g, want the base", retry, got)
		}
	}
	// A spec that skipped Normalized still backs off with the defaults —
	// a raw zero cap must not clamp every delay to zero.
	raw := Spec{MTBF: 1000, MTTR: 900}
	if got := raw.Backoff(1); got != 10 {
		t.Errorf("un-normalized Backoff(1) = %g, want the 10 s default base", got)
	}
	if got := raw.Backoff(100); got != 600 {
		t.Errorf("un-normalized Backoff(100) = %g, want the 600 s default cap", got)
	}
	// Base equal to cap saturates immediately and stays there.
	flat := Spec{MTBF: 1000, MTTR: 900, RetryBase: 600, RetryCap: 600}
	if got := flat.Backoff(1); got != 600 {
		t.Errorf("flat-window Backoff(1) = %g, want 600", got)
	}
}

func TestNewInjectorRejectsEmptyRetryWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewInjector accepted a base above the defaulted cap")
		}
	}()
	// RetryCap defaults to 600 s, below the explicit 700 s base: every
	// construction path must reject the empty window, not silently run
	// with cap < base.
	NewInjector(Spec{MTBF: 1000, MTTR: 900, RetryBase: 700}, 2, rng.NewSource(1))
}

// TestCheckpointedArithmetic pins the floor-to-multiple rule and its two
// disabled cases (zero interval, non-positive progress).
func TestCheckpointedArithmetic(t *testing.T) {
	s := Spec{MTBF: 1000, MTTR: 900, CheckpointInterval: 100}
	cases := []struct{ progress, want float64 }{
		{0, 0},
		{-5, 0},
		{99.999, 0},
		{100, 100},
		{250, 200},
		{300, 300},
		{1e6 + 50, 1e6},
	}
	for _, c := range cases {
		if got := s.Checkpointed(c.progress); got != c.want {
			t.Errorf("Checkpointed(%g) = %g, want %g", c.progress, got, c.want)
		}
	}
	off := Spec{MTBF: 1000, MTTR: 900}
	if got := off.Checkpointed(500); got != 0 {
		t.Errorf("disabled Checkpointed(500) = %g, want 0", got)
	}
}

// TestInjectorDeterminism pins the determinism contract: same seed, same
// draw sequence; distinct clusters draw from distinct streams.
func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{MTBF: 2000, MTTR: 600}
	a := NewInjector(spec, 3, rng.NewSource(7))
	b := NewInjector(spec, 3, rng.NewSource(7))
	for i := 0; i < 100; i++ {
		for c := 0; c < 3; c++ {
			if a.NextFailure(c) != b.NextFailure(c) {
				t.Fatalf("failure draw %d cluster %d diverged between same-seed injectors", i, c)
			}
			if a.RepairDelay(c) != b.RepairDelay(c) {
				t.Fatalf("repair draw %d cluster %d diverged between same-seed injectors", i, c)
			}
		}
	}
	c0 := NewInjector(spec, 2, rng.NewSource(7))
	if c0.NextFailure(0) == c0.NextFailure(1) {
		t.Error("clusters 0 and 1 drew the same first failure time: streams not distinct")
	}
}

func TestNewInjectorPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewInjector accepted a disabled spec")
		}
	}()
	NewInjector(Spec{}, 2, rng.NewSource(1))
}

func job(id int64, start float64, placement []int) *workload.Job {
	comps := make([]int, len(placement))
	for i := range comps {
		comps[i] = 1
	}
	return &workload.Job{ID: id, Components: comps, Placement: placement, StartTime: start}
}

func TestSelectVictimMostRecentStart(t *testing.T) {
	running := []*workload.Job{
		job(1, 10, []int{0, 1}),
		job(2, 30, []int{1, 2}),
		job(3, 20, []int{1}),
		job(4, 50, []int{0}), // most recent overall, but not on cluster 1
	}
	if got := SelectVictim(running, 1); got != 1 {
		t.Errorf("SelectVictim picked index %d (job %d), want index 1 (job 2)",
			got, running[got].ID)
	}
}

func TestSelectVictimTieBreaksOnID(t *testing.T) {
	running := []*workload.Job{
		job(9, 10, []int{0}),
		job(4, 10, []int{0}),
	}
	if got := SelectVictim(running, 0); running[got].ID != 9 {
		t.Errorf("SelectVictim picked job %d, want the higher ID 9", running[got].ID)
	}
}

func TestSelectVictimOrderIndependent(t *testing.T) {
	fwd := []*workload.Job{job(1, 5, []int{2}), job(2, 7, []int{2}), job(3, 6, []int{2})}
	rev := []*workload.Job{fwd[2], fwd[1], fwd[0]}
	if fwd[SelectVictim(fwd, 2)].ID != rev[SelectVictim(rev, 2)].ID {
		t.Error("victim choice depends on registry order")
	}
}

func TestSelectVictimPanicsWithoutOccupant(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SelectVictim accepted a cluster no running job occupies")
		}
		if !strings.Contains(r.(string), "no running job") {
			t.Errorf("unexpected panic %v", r)
		}
	}()
	SelectVictim([]*workload.Job{job(1, 0, []int{0})}, 3)
}

func TestSelectVictimPanicsOnMissingPlacement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SelectVictim accepted a running job without a placement")
		}
	}()
	SelectVictim([]*workload.Job{{ID: 1, Components: []int{4}}}, 0)
}
