package dastrace

import (
	"fmt"
	"sort"
	"strings"

	"coalloc/internal/stats"
)

// LogStats summarizes a job log the way Section 2.4 of the paper does.
type LogStats struct {
	Jobs          int
	DistinctSizes int
	MinSize       int
	MaxSize       int
	MeanSize      float64
	SizeCV        float64
	// PowerOfTwo maps each power-of-two size to the fraction of jobs
	// requesting exactly that size (the paper's Table 1).
	PowerOfTwo map[int]float64
	// PowerOfTwoMass is the total fraction of jobs with power-of-two sizes.
	PowerOfTwoMass float64
	MeanService    float64
	ServiceCV      float64
	MaxService     float64
	// FracServiceUnderKill is the fraction of jobs with service time below
	// the 900 s kill limit.
	FracServiceUnderKill float64
}

// Analyze computes summary statistics for a log.
func Analyze(recs []Record) LogStats {
	sizeCount := stats.NewIntCounter()
	var svc stats.Welford
	var under int
	for _, r := range recs {
		sizeCount.Add(r.Size)
		svc.Add(r.Service)
		if r.Service < 900 {
			under++
		}
	}
	ls := LogStats{
		Jobs:          len(recs),
		DistinctSizes: sizeCount.Distinct(),
		MeanSize:      sizeCount.Mean(),
		SizeCV:        sizeCount.CV(),
		PowerOfTwo:    make(map[int]float64),
		MeanService:   svc.Mean(),
		ServiceCV:     svc.CV(),
		MaxService:    svc.Max(),
	}
	if len(recs) > 0 {
		vs := sizeCount.Values()
		ls.MinSize, ls.MaxSize = vs[0], vs[len(vs)-1]
		ls.FracServiceUnderKill = float64(under) / float64(len(recs))
	}
	for p := 1; p <= ls.MaxSize; p *= 2 {
		f := sizeCount.Fraction(p)
		ls.PowerOfTwo[p] = f
		ls.PowerOfTwoMass += f
	}
	return ls
}

// SizeDensity returns, for each distinct size, the number of jobs with that
// size — the data behind Fig. 1 of the paper.
func SizeDensity(recs []Record) (sizes []int, counts []int64) {
	c := stats.NewIntCounter()
	for _, r := range recs {
		c.Add(r.Size)
	}
	sizes = c.Values()
	counts = make([]int64, len(sizes))
	for i, s := range sizes {
		counts[i] = c.Count(s)
	}
	return sizes, counts
}

// ServiceHistogram bins the service times of jobs with service <= limit
// into the given number of equal-width bins — the data behind Fig. 2.
func ServiceHistogram(recs []Record, limit float64, bins int) *stats.Histogram {
	h := stats.NewHistogram(0, limit, bins)
	for _, r := range recs {
		if r.Service <= limit {
			h.Add(r.Service)
		}
	}
	return h
}

// FormatTable1 renders the power-of-two size fractions of a log next to the
// paper's Table 1 values.
func FormatTable1(ls LogStats) string {
	var b strings.Builder
	b.WriteString("total job size   fraction (this log)   fraction (paper Table 1)\n")
	powers := make([]int, 0, len(Table1))
	for p := range Table1 {
		powers = append(powers, p)
	}
	sort.Ints(powers)
	for _, p := range powers {
		fmt.Fprintf(&b, "%14d   %19.3f   %24.3f\n", p, ls.PowerOfTwo[p], Table1[p])
	}
	fmt.Fprintf(&b, "%14s   %19.3f   %24.3f\n", "total", ls.PowerOfTwoMass, 0.705)
	return b.String()
}
