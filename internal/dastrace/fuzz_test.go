package dastrace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSWF checks that the SWF parser never panics on arbitrary input
// and that every record it does produce satisfies the documented
// invariants (positive size and service time).
func FuzzReadSWF(f *testing.F) {
	f.Add("1 0 -1 100.0 4 -1 -1 4 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("; comment only\n")
	f.Add("")
	f.Add("1 2 3\n")
	f.Add("x y z w v u t s r\n")
	f.Add("1 0 -1 1e308 4 -1 -1 4 -1\n")
	f.Add("-1 -1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Fuzz(func(t *testing.T, input string) {
		recs, err := ReadSWF(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Size <= 0 || r.Service <= 0 {
				t.Errorf("parser produced invalid record %+v from %q", r, input)
			}
		}
	})
}

// FuzzSWFRoundTrip checks Write-then-Read stability for arbitrary record
// values within the format's domain.
func FuzzSWFRoundTrip(f *testing.F) {
	f.Add(1, 100.0, 16, 350.5)
	f.Add(9999, 0.0, 1, 0.01)
	f.Fuzz(func(t *testing.T, id int, submit float64, size int, service float64) {
		if id <= 0 || size <= 0 || size > 1<<20 || service <= 0 ||
			submit < 0 || submit > 1e12 || service > 1e12 {
			t.Skip()
		}
		rec := Record{ID: id, Submit: submit, Size: size, Service: service}
		var buf bytes.Buffer
		if err := WriteSWF(&buf, []Record{rec}, ""); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSWF(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(got) != 1 || got[0].ID != id || got[0].Size != size {
			t.Fatalf("round trip: %+v -> %+v", rec, got)
		}
	})
}
