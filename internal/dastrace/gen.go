// Package dastrace synthesizes and analyzes a DAS1-like job log.
//
// The paper derives its workload from the log of the largest (128-processor)
// DAS1 cluster: 3 months, tens of thousands of jobs, 58 distinct request
// sizes in [1, 128], a strong preference for small sizes and powers of two
// (Table 1 of the paper), and service times shaped by the DAS's 15-minute
// working-hours kill limit (Fig. 2). That log is not publicly available, so
// this package reconstructs a statistically equivalent synthetic log:
//
//   - the power-of-two size fractions are exactly the paper's Table 1;
//   - the remaining probability mass (0.295) is spread over 50 further
//     "human" sizes, giving 58 distinct sizes in [1, 128]. The mass per
//     size band is reverse-engineered from the paper's Table 2: the
//     component-count fractions for limits 16, 24 and 32 pin down how much
//     non-power-of-two probability lies in (0,16], (16,24], (24,32],
//     (32,48], (48,64], (64,72] and (96,128). (The published limit-16 row
//     sums to 1.081 as OCR'd; with its third entry read as 0.009 instead
//     of 0.090 it sums to 1.000 and becomes consistent with the other two
//     rows, so that reading is used.) Within a band, weights are inversely
//     proportional to size (small-size preference);
//   - service times follow a right-skewed lognormal body; jobs submitted
//     during working hours (a configurable fraction) are killed at exactly
//     900 s, producing the characteristic mass at the kill limit, and the
//     published DAS-t-900 distribution is the log cut off at 900 s.
//
// Everything the simulations consume is an empirical distribution sampled
// from this log, mirroring the paper's own procedure ("by sampling the
// job-size distribution as measured on the DAS1 we derive two
// distributions which we use in our simulations").
package dastrace

import (
	"fmt"
	"math"
	"sort"

	"coalloc/internal/rng"
)

// Record is one job in the log.
type Record struct {
	ID      int     // 1-based job number
	Submit  float64 // submission time, seconds from the start of the log
	Size    int     // number of processors requested
	Service float64 // service (run) time in seconds
	Killed  bool    // true if the job hit the 15-minute working-hours limit
}

// Table1 holds the paper's measured fractions of jobs whose total size is a
// power of two (Table 1 of the paper). The remaining mass, 0.295, is spread
// over non-power-of-two sizes.
var Table1 = map[int]float64{
	1:   0.091,
	2:   0.130,
	4:   0.087,
	8:   0.066,
	16:  0.090,
	32:  0.039,
	64:  0.190,
	128: 0.012,
}

// nonPowerBands places the non-power-of-two probability mass. The per-band
// masses are the unique values consistent with the paper's Tables 1 and 2
// (see the package comment); the 50 support values inside the bands are
// chosen to follow the usual cluster-log pattern of small counts and
// multiples of 2, 4 and 10, and together with the 8 powers of two give the
// 58 distinct sizes the paper reports.
var nonPowerBands = []struct {
	sizes []int
	mass  float64
}{
	{[]int{3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15}, 0.049},
	{[]int{17, 18, 19, 20, 21, 22, 23, 24}, 0.225},
	{[]int{25, 26, 27, 28, 30, 31}, 0.003},
	{[]int{33, 34, 36, 40, 42, 44, 45, 48}, 0.009},
	{[]int{49, 50, 52, 56, 60, 63}, 0.001},
	{[]int{65, 66, 68, 70, 72}, 0.003},
	{[]int{97, 100, 104, 110, 112, 120}, 0.005},
}

// SizeSpec returns the full synthetic size distribution as parallel
// value/probability slices: Table 1 for powers of two, and the
// Table-2-derived band masses over the non-power sizes with within-band
// weights proportional to 1/size.
func SizeSpec() (values []int, probs []float64) {
	powers := make([]int, 0, len(Table1))
	for v := range Table1 {
		powers = append(powers, v)
	}
	sort.Ints(powers)
	for _, v := range powers {
		values = append(values, v)
		probs = append(probs, Table1[v])
	}
	for _, band := range nonPowerBands {
		var invSum float64
		for _, v := range band.sizes {
			invSum += 1 / float64(v)
		}
		for _, v := range band.sizes {
			values = append(values, v)
			probs = append(probs, band.mass/float64(v)/invSum)
		}
	}
	return values, probs
}

// GenConfig parameterizes the synthetic log.
type GenConfig struct {
	// NumJobs is the number of records to generate. The OCR of the paper
	// lost the exact count ("over a period of three months ... ran NN NNN
	// jobs"); the default 39356 is of the right magnitude.
	NumJobs int
	// Span is the length of the log in seconds. Default: 90 days.
	Span float64
	// Seed selects the random streams. The same seed always yields the
	// same log.
	Seed uint64
	// KillLimit is the working-hours service cap in seconds. Default 900
	// (the DAS's 15 minutes).
	KillLimit float64
	// WorkingHoursFrac is the fraction of jobs subject to the kill limit.
	// Default 0.7.
	WorkingHoursFrac float64
	// ServiceMu and ServiceSigma are the lognormal parameters of the raw
	// service-time body. Defaults ln(40) and 1.75 give a cut-log mean of
	// roughly 150 s with a strongly right-skewed density like Fig. 2.
	ServiceMu, ServiceSigma float64
}

func (c *GenConfig) applyDefaults() {
	if c.NumJobs == 0 {
		c.NumJobs = 39356
	}
	if c.Span == 0 {
		c.Span = 90 * 24 * 3600
	}
	if c.KillLimit == 0 {
		c.KillLimit = 900
	}
	if c.WorkingHoursFrac == 0 {
		c.WorkingHoursFrac = 0.7
	}
	if c.ServiceMu == 0 {
		c.ServiceMu = math.Log(40)
	}
	if c.ServiceSigma == 0 {
		c.ServiceSigma = 1.75
	}
}

// DefaultConfig returns the configuration used throughout the reproduction.
func DefaultConfig() GenConfig {
	c := GenConfig{Seed: 20030622} // HPDC'03 opened June 22, 2003
	c.applyDefaults()
	return c
}

// Generate synthesizes a log according to cfg.
func Generate(cfg GenConfig) []Record {
	cfg.applyDefaults()
	if cfg.NumJobs <= 0 {
		panic(fmt.Sprintf("dastrace: NumJobs %d must be positive", cfg.NumJobs))
	}
	src := rng.NewSource(cfg.Seed)
	arrivals := src.Stream("dastrace/arrivals")
	sizes := src.Stream("dastrace/sizes")
	services := src.Stream("dastrace/services")
	hours := src.Stream("dastrace/hours")

	values, probs := SizeSpec()
	cdf := make([]float64, len(probs))
	var acc float64
	for i, p := range probs {
		acc += p
		cdf[i] = acc
	}
	sampleSize := func() int {
		u := sizes.Float64()
		i := sort.SearchFloat64s(cdf, u)
		if i >= len(values) {
			i = len(values) - 1
		}
		return values[i]
	}

	rate := float64(cfg.NumJobs) / cfg.Span
	recs := make([]Record, cfg.NumJobs)
	var t float64
	for i := range recs {
		t += arrivals.Exp(rate)
		svc := math.Exp(cfg.ServiceMu + cfg.ServiceSigma*services.Normal())
		killed := false
		if hours.Float64() < cfg.WorkingHoursFrac && svc > cfg.KillLimit {
			svc = cfg.KillLimit
			killed = true
		}
		recs[i] = Record{
			ID:      i + 1,
			Submit:  t,
			Size:    sampleSize(),
			Service: svc,
			Killed:  killed,
		}
	}
	return recs
}

// Default generates the canonical synthetic log used by the experiments.
func Default() []Record { return Generate(DefaultConfig()) }
