package dastrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace file format follows the Standard Workload Format (SWF) used by
// the Parallel Workloads Archive: one job per line, 18 whitespace-separated
// fields, -1 for unknown values, and ';' comment lines carrying header
// metadata. Only the fields the model needs are populated:
//
//	 1 job number
//	 2 submit time (s)
//	 4 run time (s)
//	 5 number of allocated processors
//	 8 requested number of processors
//
// All other fields are written as -1. The reader accepts any SWF file and
// extracts the same fields, so real archive traces can be inspected with
// cmd/mctrace as well.

const swfFields = 18

// WriteSWF writes records to w in Standard Workload Format.
func WriteSWF(w io.Writer, recs []Record, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
			if _, err := fmt.Fprintf(bw, "; %s\n", line); err != nil {
				return err
			}
		}
	}
	for _, r := range recs {
		fields := make([]string, swfFields)
		for i := range fields {
			fields[i] = "-1"
		}
		fields[0] = strconv.Itoa(r.ID)
		fields[1] = strconv.FormatFloat(r.Submit, 'f', 0, 64)
		fields[3] = strconv.FormatFloat(r.Service, 'f', 2, 64)
		fields[4] = strconv.Itoa(r.Size)
		fields[7] = strconv.Itoa(r.Size)
		if _, err := fmt.Fprintln(bw, strings.Join(fields, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSWF parses a Standard Workload Format stream. Comment lines (';' or
// '#') are skipped. Jobs with unknown (-1) or non-positive size or run time
// are dropped, as is conventional when deriving distributions from archive
// traces. It returns an error for structurally malformed lines.
func ReadSWF(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var recs []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 8 {
			return nil, fmt.Errorf("dastrace: line %d: %d fields, want >= 8", lineNo, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dastrace: line %d: job number %q: %v", lineNo, fields[0], err)
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dastrace: line %d: submit time %q: %v", lineNo, fields[1], err)
		}
		run, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("dastrace: line %d: run time %q: %v", lineNo, fields[3], err)
		}
		procs, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("dastrace: line %d: processors %q: %v", lineNo, fields[4], err)
		}
		if procs <= 0 {
			// Fall back to the requested processor count (field 8).
			if req, err := strconv.Atoi(fields[7]); err == nil {
				procs = req
			}
		}
		if procs <= 0 || run <= 0 {
			continue
		}
		recs = append(recs, Record{ID: id, Submit: submit, Size: procs, Service: run})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
