package dastrace

// Filtering helpers for job logs, mirroring the selections the paper makes
// on its trace (cutting at a maximum size, restricting to a time window)
// so the same operations are available for real archive traces.

// FilterMaxSize returns the records whose size does not exceed max — the
// trace-level analogue of the DAS-s-64 cut.
func FilterMaxSize(recs []Record, max int) []Record {
	var out []Record
	for _, r := range recs {
		if r.Size <= max {
			out = append(out, r)
		}
	}
	return out
}

// FilterMaxService returns the records whose service time does not exceed
// max seconds — the trace-level analogue of the DAS-t-900 cut.
func FilterMaxService(recs []Record, max float64) []Record {
	var out []Record
	for _, r := range recs {
		if r.Service <= max {
			out = append(out, r)
		}
	}
	return out
}

// FilterWindow returns the records submitted in [from, to), with submit
// times rebased so the window starts at zero.
func FilterWindow(recs []Record, from, to float64) []Record {
	var out []Record
	for _, r := range recs {
		if r.Submit >= from && r.Submit < to {
			r.Submit -= from
			out = append(out, r)
		}
	}
	return out
}

// Renumber assigns consecutive 1-based IDs, preserving order — useful
// after filtering so downstream tools see a dense log.
func Renumber(recs []Record) []Record {
	out := make([]Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].ID = i + 1
	}
	return out
}
