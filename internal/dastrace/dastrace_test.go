package dastrace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSizeSpecNormalized(t *testing.T) {
	values, probs := SizeSpec()
	if len(values) != len(probs) {
		t.Fatal("mismatched spec slices")
	}
	if len(values) != 58 {
		t.Errorf("%d distinct sizes, want the paper's 58", len(values))
	}
	var total float64
	seen := map[int]bool{}
	for i, v := range values {
		if v < 1 || v > 128 {
			t.Errorf("size %d outside [1,128]", v)
		}
		if seen[v] {
			t.Errorf("duplicate size %d", v)
		}
		seen[v] = true
		if probs[i] <= 0 {
			t.Errorf("size %d has non-positive probability %g", v, probs[i])
		}
		total += probs[i]
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", total)
	}
}

func TestSizeSpecMatchesTable1(t *testing.T) {
	values, probs := SizeSpec()
	for i, v := range values {
		if want, ok := Table1[v]; ok {
			if math.Abs(probs[i]-want) > 1e-12 {
				t.Errorf("P(%d) = %g, want Table 1 value %g", v, probs[i], want)
			}
		}
	}
}

// TestSizeSpecMatchesTable2Bands checks the band masses reverse-engineered
// from the paper's Table 2 (see the package comment).
func TestSizeSpecMatchesTable2Bands(t *testing.T) {
	values, probs := SizeSpec()
	mass := func(lo, hi int) float64 { // non-powers in (lo, hi]
		var m float64
		for i, v := range values {
			if _, pow := Table1[v]; pow {
				continue
			}
			if v > lo && v <= hi {
				m += probs[i]
			}
		}
		return m
	}
	cases := []struct {
		lo, hi int
		want   float64
	}{
		{0, 16, 0.049},
		{16, 24, 0.225},
		{24, 32, 0.003},
		{32, 48, 0.009},
		{48, 64, 0.001},
		{64, 96, 0.003},
		{96, 128, 0.005},
	}
	for _, c := range cases {
		if got := mass(c.lo, c.hi); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("non-power mass in (%d,%d] = %g, want %g", c.lo, c.hi, got, c.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{NumJobs: 500, Seed: 5})
	b := Generate(GenConfig{NumJobs: 500, Seed: 5})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records %d differ: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(GenConfig{NumJobs: 100, Seed: 1})
	b := Generate(GenConfig{NumJobs: 100, Seed: 2})
	same := 0
	for i := range a {
		if a[i].Size == b[i].Size && a[i].Service == b[i].Service {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical logs")
	}
}

func TestGenerateShape(t *testing.T) {
	recs := Default()
	if len(recs) != 39356 {
		t.Errorf("default log has %d jobs", len(recs))
	}
	prev := 0.0
	for i, r := range recs {
		if r.ID != i+1 {
			t.Fatalf("record %d has ID %d", i, r.ID)
		}
		if r.Submit < prev {
			t.Fatal("submit times not nondecreasing")
		}
		prev = r.Submit
		if r.Size < 1 || r.Size > 128 {
			t.Fatalf("size %d out of range", r.Size)
		}
		if r.Service <= 0 {
			t.Fatalf("non-positive service %g", r.Service)
		}
		if r.Killed && r.Service != 900 {
			t.Fatalf("killed job with service %g", r.Service)
		}
	}
}

func TestAnalyzeAgainstPaper(t *testing.T) {
	ls := Analyze(Default())
	if ls.DistinctSizes != 58 {
		t.Errorf("%d distinct sizes, want 58", ls.DistinctSizes)
	}
	if ls.MinSize != 1 || ls.MaxSize != 128 {
		t.Errorf("size range [%d,%d]", ls.MinSize, ls.MaxSize)
	}
	// Sampled fractions should match Table 1 to within binomial noise.
	for p, want := range Table1 {
		if got := ls.PowerOfTwo[p]; math.Abs(got-want) > 0.01 {
			t.Errorf("power %d fraction %.3f, want %.3f", p, got, want)
		}
	}
	if math.Abs(ls.PowerOfTwoMass-0.705) > 0.02 {
		t.Errorf("power-of-two mass %.3f, want ~0.705", ls.PowerOfTwoMass)
	}
	if ls.MeanSize < 22 || ls.MeanSize > 26 {
		t.Errorf("mean size %.2f outside the plausible window around 24", ls.MeanSize)
	}
	if ls.FracServiceUnderKill < 0.85 || ls.FracServiceUnderKill > 1 {
		t.Errorf("fraction under 900 s = %.3f", ls.FracServiceUnderKill)
	}
}

func TestSizeDensity(t *testing.T) {
	recs := []Record{{Size: 1}, {Size: 1}, {Size: 64}}
	sizes, counts := SizeDensity(recs)
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 64 {
		t.Fatalf("sizes = %v", sizes)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestServiceHistogram(t *testing.T) {
	recs := []Record{{Service: 10}, {Service: 890}, {Service: 1500}}
	h := ServiceHistogram(recs, 900, 9)
	if h.Total() != 2 {
		t.Errorf("histogram counted %d jobs, want 2 (<=900)", h.Total())
	}
}

func TestFormatTable1(t *testing.T) {
	out := FormatTable1(Analyze(Default()))
	if !strings.Contains(out, "total") || !strings.Contains(out, "0.190") {
		t.Errorf("unexpected Table 1 rendering:\n%s", out)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	recs := Generate(GenConfig{NumJobs: 200, Seed: 8})
	var buf bytes.Buffer
	if err := WriteSWF(&buf, recs, "test header\nsecond line"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || got[i].Size != recs[i].Size {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
		if math.Abs(got[i].Service-recs[i].Service) > 0.01 {
			t.Fatalf("record %d service %g vs %g", i, got[i].Service, recs[i].Service)
		}
		if math.Abs(got[i].Submit-recs[i].Submit) > 1 {
			t.Fatalf("record %d submit %g vs %g", i, got[i].Submit, recs[i].Submit)
		}
	}
}

func TestReadSWFSkipsCommentsAndInvalidJobs(t *testing.T) {
	in := `; header comment
# another comment

1 0 -1 100.0 4 -1 -1 4 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
2 5 -1 -1 4 -1 -1 4 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
3 9 -1 50.0 -1 -1 -1 8 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
`
	recs, err := ReadSWF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 has unknown run time and is dropped; job 3 falls back to the
	// requested processor count.
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	if recs[1].Size != 8 {
		t.Errorf("job 3 size %d, want fallback 8", recs[1].Size)
	}
}

func TestReadSWFErrors(t *testing.T) {
	cases := []string{
		"1 2 3",                  // too few fields
		"x 0 -1 1 1 -1 -1 1 -1",  // bad job id
		"1 y -1 1 1 -1 -1 1 -1",  // bad submit
		"1 0 -1 zz 1 -1 -1 1 -1", // bad run time
		"1 0 -1 1 pp -1 -1 1 -1", // bad processors
	}
	for _, in := range cases {
		if _, err := ReadSWF(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSWF(%q) succeeded, want error", in)
		}
	}
}

// TestGenerateConfigProperty: any sane config yields records respecting
// the kill limit semantics.
func TestGenerateConfigProperty(t *testing.T) {
	check := func(seed uint64) bool {
		cfg := GenConfig{NumJobs: 200, Seed: seed, KillLimit: 600, WorkingHoursFrac: 0.5}
		for _, r := range Generate(cfg) {
			if r.Killed && r.Service != 600 {
				return false
			}
			if r.Size < 1 || r.Size > 128 || r.Service <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative NumJobs did not panic")
		}
	}()
	Generate(GenConfig{NumJobs: -5})
}

func TestFilterMaxSize(t *testing.T) {
	recs := []Record{{ID: 1, Size: 10}, {ID: 2, Size: 64}, {ID: 3, Size: 65}, {ID: 4, Size: 128}}
	out := FilterMaxSize(recs, 64)
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 2 {
		t.Errorf("filtered %v", out)
	}
}

func TestFilterMaxService(t *testing.T) {
	recs := []Record{{ID: 1, Service: 100}, {ID: 2, Service: 900}, {ID: 3, Service: 901}}
	out := FilterMaxService(recs, 900)
	if len(out) != 2 {
		t.Errorf("filtered %v", out)
	}
}

func TestFilterWindowRebases(t *testing.T) {
	recs := []Record{
		{ID: 1, Submit: 50},
		{ID: 2, Submit: 100},
		{ID: 3, Submit: 150},
		{ID: 4, Submit: 200},
	}
	out := FilterWindow(recs, 100, 200)
	if len(out) != 2 {
		t.Fatalf("filtered %v", out)
	}
	if out[0].Submit != 0 || out[1].Submit != 50 {
		t.Errorf("rebase: %v", out)
	}
	// Original untouched.
	if recs[1].Submit != 100 {
		t.Error("FilterWindow mutated its input")
	}
}

func TestRenumber(t *testing.T) {
	recs := []Record{{ID: 17}, {ID: 3}, {ID: 99}}
	out := Renumber(recs)
	for i, r := range out {
		if r.ID != i+1 {
			t.Errorf("renumbered %v", out)
		}
	}
	if recs[0].ID != 17 {
		t.Error("Renumber mutated its input")
	}
}

func TestFiltersComposeLikeTheDerivation(t *testing.T) {
	// Cutting the trace at size 64 and deriving must equal deriving and
	// cutting the size distribution: the DAS-s-64 equivalence.
	recs := Default()
	cut := FilterMaxSize(recs, 64)
	for _, r := range cut {
		if r.Size > 64 {
			t.Fatal("filter leaked a large job")
		}
	}
	if len(cut) >= len(recs) {
		t.Error("cut removed nothing")
	}
	frac := 1 - float64(len(cut))/float64(len(recs))
	if frac <= 0 || frac > 0.05 {
		t.Errorf("cut removed %.3f of jobs, expected a small fraction", frac)
	}
}
