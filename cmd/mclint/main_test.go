package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLinter compiles mclint once into a temp dir and returns the
// binary path.
func buildLinter(t *testing.T) string {
	t.Helper()
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "mclint")
	cmd := exec.Command(gobin, "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a file map as a temp Go module and returns
// its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runLinter executes the binary in dir and returns stdout, stderr, and
// the exit code.
func runLinter(t *testing.T, bin, dir string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v", bin, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// violatingModule is a module named like the real one, with one
// violation per rule at known positions.
var violatingModule = map[string]string{
	"go.mod": "module coalloc\n\ngo 1.22\n",
	"internal/sim/sim.go": `package sim

type Event struct{ id int32 }

type Engine struct{}

func (e *Engine) After(d float64, fn func()) Event { return Event{} }
`,
	"internal/policies/bad.go": `package policies

import (
	"math/rand"
	"time"

	"coalloc/internal/sim"
)

type sched struct {
	ev sim.Event
}

func now() int64 { return time.Now().Unix() }

func pick(m map[int]int) int {
	for k := range m {
		return k + int(rand.Int63())
	}
	return 0
}

var _ = sched{}
var _ = now
var _ = pick
`,
}

func TestEndToEndViolations(t *testing.T) {
	bin := buildLinter(t)
	mod := writeModule(t, violatingModule)
	stdout, stderr, code := runLinter(t, bin, mod, "./...")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	// Rule IDs and positions, in sorted-by-position order.
	badfile := filepath.FromSlash("internal/policies/bad.go")
	for _, want := range []string{
		badfile + ":4:2: noglobalrand:",
		badfile + ":11:2: eventretain:",
		badfile + ":14:27: nowallclock:",
		badfile + ":17:2: nomaprange:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q\nstdout:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "4 finding(s)") {
		t.Errorf("stderr missing finding count: %q", stderr)
	}
	// Findings must come out sorted by position.
	var lines []string
	for _, l := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(l, badfile) {
			lines = append(lines, l)
		}
	}
	if len(lines) != 4 {
		t.Fatalf("got %d finding lines, want 4:\n%s", len(lines), stdout)
	}
	for i, rule := range []string{"noglobalrand", "eventretain", "nowallclock", "nomaprange"} {
		if !strings.Contains(lines[i], rule) {
			t.Errorf("finding %d = %q, want rule %s", i, lines[i], rule)
		}
	}
}

// TestJSONOutput checks the -json wire format: a dirty tree emits a
// parseable array (exit 1), a clean tree emits an empty array (exit 0).
func TestJSONOutput(t *testing.T) {
	bin := buildLinter(t)
	mod := writeModule(t, violatingModule)
	stdout, stderr, code := runLinter(t, bin, mod, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	var out []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(out) != 4 {
		t.Fatalf("got %d JSON findings, want 4: %v", len(out), out)
	}
	if out[0].Rule != "noglobalrand" || out[0].Line != 4 {
		t.Errorf("first finding = %+v, want noglobalrand at line 4", out[0])
	}
	for _, f := range out {
		if f.File == "" || f.Rule == "" || f.Msg == "" || f.Line <= 0 || f.Col <= 0 {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if !strings.Contains(stderr, "4 finding(s)") {
		t.Errorf("stderr missing finding count: %q", stderr)
	}

	clean := writeModule(t, map[string]string{
		"go.mod":                  "module coalloc\n\ngo 1.22\n",
		"internal/policies/ok.go": "package policies\n\nfunc ok() int { return 1 }\n\nvar _ = ok\n",
	})
	stdout, _, code = runLinter(t, bin, clean, "-json", "./...")
	if code != 0 {
		t.Fatalf("clean -json exit code %d, want 0\nstdout:\n%s", code, stdout)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json stdout = %q, want []", stdout)
	}
}

// TestTypeErrorExitCode pins the exit-code contract's failure half: a
// module that fails to type-check is a load error (exit 2), not a
// finding (exit 1).
func TestTypeErrorExitCode(t *testing.T) {
	bin := buildLinter(t)
	mod := writeModule(t, map[string]string{
		"go.mod":                      "module coalloc\n\ngo 1.22\n",
		"internal/policies/broken.go": "package policies\n\nfunc f() int { return \"nope\" }\n",
	})
	stdout, stderr, code := runLinter(t, bin, mod, "./...")
	if code != 2 {
		t.Fatalf("exit code %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "mclint:") {
		t.Errorf("stderr missing error report: %q", stderr)
	}
	if stdout != "" {
		t.Errorf("stdout not empty on load failure: %q", stdout)
	}
}

func TestEndToEndSuppressions(t *testing.T) {
	bin := buildLinter(t)
	mod := writeModule(t, map[string]string{
		"go.mod": "module coalloc\n\ngo 1.22\n",
		"internal/policies/ok.go": `package policies

func sum(m map[int]int) int {
	s := 0
	//detlint:ignore nomaprange integer sum is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

var _ = sum
`,
	})
	stdout, stderr, code := runLinter(t, bin, mod, "./...")
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("stdout not empty: %q", stdout)
	}

	// Removing the reason degrades the suppression to a malformed
	// directive: the original finding returns, plus the detlint report.
	path := filepath.Join(mod, "internal", "policies", "ok.go")
	content, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.Replace(string(content),
		"//detlint:ignore nomaprange integer sum is order-independent",
		"//detlint:ignore nomaprange", 1)
	if err := os.WriteFile(path, []byte(stripped), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _, code = runLinter(t, bin, mod, "./...")
	if code != 1 {
		t.Fatalf("exit code %d after stripping reason, want 1\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "nomaprange") || !strings.Contains(stdout, "detlint:") {
		t.Errorf("stdout missing revived finding or directive report:\n%s", stdout)
	}
}

func TestEndToEndCleanTree(t *testing.T) {
	bin := buildLinter(t)
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runLinter(t, bin, repoRoot, "./...")
	if code != 0 {
		t.Fatalf("repo tree not clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestListAndHelp(t *testing.T) {
	bin := buildLinter(t)
	rules := []string{
		"nowallclock", "noglobalrand", "nomaprange", "eventretain", "jobretain",
		"taintflow", "handleflow", "scratchescape", "closecheck", "noalloc",
		"stalesuppress",
	}

	stdout, _, code := runLinter(t, bin, ".", "-list")
	if code != 0 {
		t.Fatalf("-list exit code %d, want 0", code)
	}
	for _, r := range rules {
		if !strings.Contains(stdout, r) {
			t.Errorf("-list output missing rule %s:\n%s", r, stdout)
		}
	}

	_, stderr, code := runLinter(t, bin, ".", "-help")
	if code != 0 {
		t.Fatalf("-help exit code %d, want 0", code)
	}
	for _, r := range rules {
		if !strings.Contains(stderr, r) {
			t.Errorf("-help output missing rule %s:\n%s", r, stderr)
		}
	}
	if !strings.Contains(stderr, "detlint:ignore <rule> <reason>") {
		t.Errorf("-help output missing suppression syntax:\n%s", stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	bin := buildLinter(t)
	if _, _, code := runLinter(t, bin, t.TempDir(), "./..."); code != 2 {
		t.Errorf("outside a module: exit %d, want 2", code)
	}
	if _, _, code := runLinter(t, bin, ".", "-nosuchflag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
